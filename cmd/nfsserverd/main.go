// Command nfsserverd runs the repository's NFSv2 protocol stack as a real
// UDP server over the in-memory UFS filesystem. It exists to demonstrate
// the wire protocol end to end; use examples/realnet or any tool that can
// speak the NFSv2 framing to exercise it.
//
// Usage:
//
//	nfsserverd -addr 127.0.0.1:20049
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/realnfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:20049", "UDP address to listen on")
	flag.Parse()

	srv, err := realnfs.New(*addr)
	if err != nil {
		log.Fatalf("nfsserverd: %v", err)
	}
	fmt.Printf("nfsserverd: serving NFSv2/UDP on %s\n", srv.Addr())
	fmt.Printf("nfsserverd: root file handle fsid=%d ino=%d\n", srv.RootFH().FSID(), srv.RootFH().Ino())
	if err := srv.Serve(); err != nil {
		log.Fatalf("nfsserverd: %v", err)
	}
}
