// Command nfsbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	nfsbench -run table1            # one table
//	nfsbench -run table1,table3     # several
//	nfsbench -run all               # tables 1-6, figures 1-3, scale, crash
//	nfsbench -run figure2 -quick    # coarser LADDIS sweep
//	nfsbench -run scale             # clients x sharded-servers grid
//	nfsbench -run crash             # crash/recovery durability check
//	nfsbench -mb 4                  # smaller copies (faster, same rates)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	run := flag.String("run", "all", "experiments to run: tableN, figureN, comma separated, or 'all'")
	mb := flag.Int("mb", 10, "file copy size in MB (the paper used 10)")
	quick := flag.Bool("quick", false, "coarser LADDIS sweeps for figures 2-3")
	flag.Parse()

	want := map[string]bool{}
	if *run == "all" {
		for _, n := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "figure1", "figure2", "figure3", "scale", "crash"} {
			want[n] = true
		}
	} else {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	specs := experiments.TableSpecs()
	var names []string
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	ran := 0
	for _, n := range names {
		if !want[n] {
			continue
		}
		spec := specs[n]
		spec.FileMB = *mb
		tbl := experiments.RunCopyTable(spec)
		fmt.Println(tbl.Render())
		ran++
	}

	if want["figure1"] {
		for _, gather := range []bool{false, true} {
			out, _ := experiments.RunFigure1(experiments.DefaultFigure1(gather))
			fmt.Println(out)
		}
		ran++
	}
	for _, fig := range []struct {
		name string
		spec experiments.FigureSpec
	}{
		{"figure2", experiments.Figure2Spec()},
		{"figure3", experiments.Figure3Spec()},
	} {
		if !want[fig.name] {
			continue
		}
		spec := fig.spec
		if *quick {
			spec.Loads = spec.Loads[:len(spec.Loads)/2*1]
			half := spec.Loads[:0:0]
			for i, l := range fig.spec.Loads {
				if i%2 == 0 {
					half = append(half, l)
				}
			}
			spec.Loads = half
			spec.Measure = 5 * sim.Second
		}
		wo, wi := experiments.RunFigure(spec)
		fmt.Println(experiments.RenderFigure(spec, wo, wi))
		ran++
	}

	if want["scale"] {
		spec := experiments.DefaultScaleSpec()
		if *quick {
			spec.Measure = 2 * sim.Second
		}
		fmt.Println(experiments.RenderScaleSweep(spec, experiments.RunScaleSweep(spec)))
		ran++
	}
	if want["crash"] {
		for _, presto := range []bool{false, true} {
			spec := experiments.DefaultCrashSpec(presto)
			fmt.Println(experiments.RenderCrashRecovery(spec, experiments.RunCrashRecovery(spec)))
		}
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nfsbench: nothing matched -run %q\n", *run)
		os.Exit(2)
	}
}
