// Command nfsbench regenerates the paper's evaluation artifacts and runs
// declarative scenarios.
//
// Usage:
//
//	nfsbench -list                  # print the scenario registry
//	nfsbench -run table1            # one experiment (legacy renderer)
//	nfsbench -run table1,table3     # several
//	nfsbench -run all               # tables 1-6, figures 1-3, scale, crash
//	nfsbench -run partialcrash      # any registered scenario by name
//	nfsbench -dump figure2          # emit a scenario spec as JSON
//	nfsbench -dump figure2 > f.json; vi f.json
//	nfsbench -validate f.json       # parse + validate without running
//	nfsbench -scenario f.json       # run an edited spec
//	nfsbench -run figure2 -quick    # coarser LADDIS sweep
//	nfsbench -mb 4                  # smaller copies (faster, same rates)
//	nfsbench -fuzz 200 -seed 7      # seed-driven scenario fuzzing; on a
//	                                # failure prints the shrunk spec and
//	                                # exits 1
//	nfsbench -run figure2 -j 8      # sweep cells across 8 workers
//	nfsbench -j 1 ...               # force the sequential engine
//
// -j sets the worker-pool size for sweep cells, registry scenarios and
// fuzz runs (default GOMAXPROCS). Every output byte is identical at any
// -j: cells are independent sims gathered in deterministic order, and
// only the wall-time lines (which report real time) differ.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// traceOut and probesOut are the -trace / -probes destinations; either
// being set forces the observe plane on for every scenario runSpec
// executes (when several scenarios run, the last one's artifacts win).
var traceOut, probesOut string

func main() {
	run := flag.String("run", "", "experiments to run: tableN, figureN, scale, crash, any registered scenario, comma separated, or 'all'")
	list := flag.Bool("list", false, "list the scenario registry and exit")
	dump := flag.String("dump", "", "print the named scenario's spec as JSON and exit")
	scenarioFile := flag.String("scenario", "", "run a scenario spec from a JSON file")
	validate := flag.String("validate", "", "parse and validate a scenario spec file without running it")
	mb := flag.Int("mb", 10, "file copy size in MB (the paper used 10)")
	quick := flag.Bool("quick", false, "coarser LADDIS sweeps for figures 2-3")
	fuzz := flag.Int("fuzz", 0, "run N fuzzed scenarios against the durability and leak invariants")
	seed := flag.Int64("seed", 1, "fuzzing campaign seed (with -fuzz)")
	jobs := flag.Int("j", 0, "worker-pool size for sweep cells, registry scenarios and fuzz runs (default GOMAXPROCS; 1 forces the sequential engine)")
	flag.StringVar(&traceOut, "trace", "", "write a Chrome trace_event JSON file for scenario runs (view in chrome://tracing or ui.perfetto.dev); forces the observe plane on")
	flag.StringVar(&probesOut, "probes", "", "write the periodic probe time-series as CSV for scenario runs; forces the observe plane on")
	flag.Parse()
	scenario.SetWorkers(*jobs)
	wall := time.Now()

	switch {
	case *fuzz > 0:
		runFuzz(*fuzz, *seed)
		return
	case *list:
		listScenarios()
		return
	case *dump != "":
		dumpScenario(*dump)
		return
	case *validate != "":
		validateScenarioFile(*validate)
		return
	case *scenarioFile != "":
		runScenarioFile(*scenarioFile)
		return
	}
	if *run == "" {
		*run = "all"
	}

	want := map[string]bool{}
	if *run == "all" {
		// Every registry entry: the legacy names render through their
		// historical formatters below, and the remaining registry
		// scenarios run through the uniform engine (in parallel at -j>1).
		for _, e := range scenario.Registry() {
			want[e.Name] = true
		}
	} else {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	specs := experiments.TableSpecs()
	var names []string
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !want[n] {
			continue
		}
		spec := specs[n]
		spec.FileMB = *mb
		tbl := experiments.RunCopyTable(spec)
		fmt.Println(tbl.Render())
		delete(want, n)
	}

	if want["figure1"] {
		for _, gather := range []bool{false, true} {
			out, _ := experiments.RunFigure1(experiments.DefaultFigure1(gather))
			fmt.Println(out)
		}
		delete(want, "figure1")
	}
	for _, fig := range []struct {
		name string
		spec experiments.FigureSpec
	}{
		{"figure2", experiments.Figure2Spec()},
		{"figure3", experiments.Figure3Spec()},
	} {
		if !want[fig.name] {
			continue
		}
		spec := fig.spec
		if *quick {
			half := spec.Loads[:0:0]
			for i, l := range fig.spec.Loads {
				if i%2 == 0 {
					half = append(half, l)
				}
			}
			spec.Loads = half
			spec.Measure = 5 * sim.Second
		}
		wo, wi := experiments.RunFigure(spec)
		fmt.Println(experiments.RenderFigure(spec, wo, wi))
		delete(want, fig.name)
	}

	if want["scale"] {
		spec := experiments.DefaultScaleSpec()
		if *quick {
			spec.Measure = 2 * sim.Second
		}
		fmt.Println(experiments.RenderScaleSweep(spec, experiments.RunScaleSweep(spec)))
		delete(want, "scale")
	}
	if want["crash"] {
		for _, presto := range []bool{false, true} {
			spec := experiments.DefaultCrashSpec(presto)
			fmt.Println(experiments.RenderCrashRecovery(spec, experiments.RunCrashRecovery(spec)))
		}
		delete(want, "crash")
	}

	// Anything left is a registry scenario (the names above are rendered
	// by their legacy formatters; everything else gets the uniform one).
	var rest []string
	for n := range want {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	specsToRun := make([]scenario.Spec, len(rest))
	for i, n := range rest {
		spec, ok := scenario.Lookup(n)
		if !ok {
			fmt.Fprintf(os.Stderr, "nfsbench: no experiment or scenario named %q; known names: %s\n",
				n, strings.Join(knownNames(), ", "))
			os.Exit(2)
		}
		specsToRun[i] = spec
	}
	runRegistryScenarios(rest, specsToRun)
	fmt.Printf("nfsbench: total wall time %.2f s\n", time.Since(wall).Seconds())
}

// runRegistryScenarios executes the registry scenarios, concurrently when
// the worker pool allows: each scenario renders into its own buffer and
// the buffers print in name order, so the transcript is byte-identical
// to the sequential loop (wall-time lines aside). The -trace/-probes
// artifact path keeps the sequential loop — its last-scenario-wins file
// semantics are inherently ordered.
func runRegistryScenarios(names []string, specs []scenario.Spec) {
	workers := scenario.Workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 || traceOut != "" || probesOut != "" {
		for _, spec := range specs {
			runSpec(spec)
		}
		return
	}
	outs := make([]string, len(specs))
	errs := make([]error, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				_, outs[i], errs[i] = execSpec(specs[i])
			}
		}()
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", names[i], errs[i])
			os.Exit(1)
		}
		fmt.Print(outs[i])
	}
}

// knownNames lists every runnable name: the registry carries all of them
// (the legacy experiment names are registry keys too).
func knownNames() []string {
	var names []string
	for _, e := range scenario.Registry() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

func listScenarios() {
	for _, e := range scenario.Registry() {
		fmt.Printf("%-14s %s\n", e.Name, e.Description)
	}
}

func dumpScenario(name string) {
	spec, ok := scenario.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "nfsbench: no scenario named %q (try -list)\n", name)
		os.Exit(2)
	}
	blob, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(blob))
}

func runScenarioFile(path string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Decode(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", path, err)
		os.Exit(1)
	}
	runSpec(spec)
}

// validateScenarioFile parses and validates a spec file without running
// it: decode errors (unknown fields, malformed JSON) and typed validation
// errors print with the offending spec path, and the exit status is
// nonzero on any problem — the CI-able lint for hand-edited specs.
func validateScenarioFile(path string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %v\n", err)
		os.Exit(1)
	}
	spec, err := scenario.Decode(blob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", path, err)
		os.Exit(1)
	}
	cells := len(spec.Cells)
	if cells == 0 {
		cells = 1
	}
	fmt.Printf("%s: spec %q valid (%d cells, workload %s)\n", path, spec.Name, cells, spec.Workload.Kind)
}

// runFuzz executes a fuzzing campaign. On a failure the minimal
// reproducing spec prints as runnable JSON (feed it back through
// -scenario) and the exit status is 1.
func runFuzz(runs int, seed int64) {
	failure := scenario.Fuzz(scenario.FuzzConfig{
		Runs: runs,
		Seed: seed,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if failure != nil {
		fmt.Fprintln(os.Stderr, failure.String())
		// Persist the repro with its observability artifacts: the shrunken
		// spec as runnable JSON, plus the instrumented replay's span trace
		// and probe time-series (partial when the replay panics).
		writeRepro("fuzz-repro.json", []byte(failure.JSON()+"\n"))
		writeRepro("fuzz-repro.trace.json", failure.TraceJSON)
		writeRepro("fuzz-repro.series.csv", failure.SeriesCSV)
		os.Exit(1)
	}
	fmt.Printf("fuzz: %d runs, seed %d: all clean (durability and block accounting held)\n", runs, seed)
}

func writeRepro(name string, blob []byte) {
	if len(blob) == 0 {
		return
	}
	if err := os.WriteFile(name, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: write %s: %v\n", name, err)
		return
	}
	fmt.Fprintf(os.Stderr, "nfsbench: wrote %s\n", name)
}

// execSpec runs one scenario and renders its full report — the result
// table, the per-cell wall times, and the wall+sim summary — into a
// string, so concurrent scenario runs can buffer output and print in
// deterministic order.
func execSpec(spec scenario.Spec) (*scenario.Result, string, error) {
	if traceOut != "" || probesOut != "" {
		o := scenario.Observe{}
		if spec.Observe != nil {
			o = *spec.Observe
		}
		if traceOut != "" {
			o.Trace = true
		}
		if probesOut != "" {
			o.Probes = true
		}
		o.Histograms = true
		spec.Observe = &o
	}
	wall := time.Now()
	res, err := scenario.Run(spec)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, res.Render())
	var simTotal sim.Duration
	for _, c := range res.Cells {
		simTotal += c.SimTime
	}
	if len(res.Cells) > 1 {
		for _, c := range res.Cells {
			fmt.Fprintf(&b, "  cell %-28s %8.3f s wall\n", c.Label, c.Wall.Seconds())
		}
	}
	fmt.Fprintf(&b, "%s: %.2f s wall, %.2f s simulated (%d cells, %d workers)\n",
		spec.Name, time.Since(wall).Seconds(), simTotal.Seconds(), len(res.Cells), scenario.Workers())
	return res, b.String(), nil
}

func runSpec(spec scenario.Spec) {
	res, out, err := execSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
	if traceOut != "" {
		var traces []*obs.Trace
		for i := range res.Cells {
			if t := res.Cells[i].Trace; t != nil {
				traces = append(traces, t)
			}
		}
		writeArtifact(traceOut, func(f *os.File) error { return obs.WriteTraces(f, traces) })
	}
	if probesOut != "" {
		var series []*obs.TimeSeries
		for i := range res.Cells {
			if s := res.Cells[i].Series; s != nil {
				series = append(series, s)
			}
		}
		writeArtifact(probesOut, func(f *os.File) error { return obs.WriteSeriesCSV(f, series) })
	}
}

func writeArtifact(path string, emit func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = emit(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("nfsbench: wrote %s\n", path)
}
