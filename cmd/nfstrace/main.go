// Command nfstrace prints the paper's Figure 1: the message/disk timeline
// of a 4-biod sequential writer against a standard server and against a
// write-gathering server, >100K into the file.
//
// Usage:
//
//	nfstrace            # both timelines
//	nfstrace -gather    # gathering server only
//	nfstrace -standard  # standard server only
//	nfstrace -biods 7
//	nfstrace -capture ops.json   # save the client op timeline as a
//	                             # replayable capture (openload replay)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	gatherOnly := flag.Bool("gather", false, "show only the gathering server")
	standardOnly := flag.Bool("standard", false, "show only the standard server")
	biods := flag.Int("biods", 4, "client biod count")
	capture := flag.String("capture", "",
		"write the client op timeline to this file as a replayable capture "+
			"(JSON; replays via the scenario engine's openload workload)")
	flag.Parse()

	if *capture != "" {
		cfg := experiments.DefaultFigure1(*gatherOnly)
		cfg.Biods = *biods
		tr, err := experiments.CaptureFigure1(cfg)
		if err == nil {
			err = trace.SaveOps(*capture, tr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nfstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("captured %d ops over %v to %s (%s)\n",
			len(tr.Ops), tr.Duration(), *capture, tr.Name)
		return
	}

	show := func(gathering bool) {
		cfg := experiments.DefaultFigure1(gathering)
		cfg.Biods = *biods
		out, log := experiments.RunFigure1(cfg)
		fmt.Println(out)
		sum := log.Summary(0, 1<<62)
		fmt.Printf("totals: client sends=%d replies=%d disk ops=%d\n\n",
			sum["client:8K"], sum["client:<-"], countPrefix(sum, "disk:"))
	}
	if !*gatherOnly {
		show(false)
	}
	if !*standardOnly {
		show(true)
	}
}

func countPrefix(m map[string]int, prefix string) int {
	n := 0
	for k, v := range m {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			n += v
		}
	}
	return n
}
