// Package block provides the refcounted, pooled payload buffer the data
// path shares across layers: client write staging, netsim datagram bodies,
// the ufs buffer cache, NVRAM dirty entries and the disk platter store all
// hold references to the same fixed-size buffer instead of copying 8K
// payloads at every ownership boundary.
//
// Ownership rules (the per-layer detail lives in DESIGN.md):
//
//   - Get/GetZero return a buffer with one reference, owned by the caller.
//   - A layer that retains a buffer past the call that handed it over must
//     take its own reference with Ref and pair it with Release.
//   - A layer that mutates a buffer must hold the only reference
//     (Unique()); shared buffers are copy-on-write — replace them via a
//     fresh Get plus Copy.
//   - Release of the last reference returns the buffer to its origin pool
//     and bumps its generation, which invalidates outstanding Handles.
//
// Accounting (live buffers, total references, payload copies) is kept per
// Accounting handle: each simulation instance owns one, so concurrently
// executing sims never perturb each other's leak audits or copy budgets.
// Pools made with plain NewPool charge the process-global handle, which
// keeps single-sim tests and direct assemblies working unchanged; counters
// are atomic so the -race smoke of the kernel and cluster suites stays
// clean even when a handle is shared.
package block

import (
	"fmt"
	"sync/atomic"
)

// Size is the payload buffer size: one NFS MaxData transfer / one ufs
// block.
const Size = 8192

// Debug enables paranoid lifecycle checking process-wide: stale Handle
// dereferences panic instead of returning old bytes. Refcount underflow
// always panics. Per-sim debug rides Accounting.Debug instead.
var Debug bool

// Accounting is one simulation's buffer ledger. Every pool charges
// exactly one Accounting, fixed at pool creation; a scenario cell creates
// its own so its leak audit reads its own sim's counters exactly —
// immune to whatever other cells, goroutines or tests do to theirs.
type Accounting struct {
	// live counts buffers currently checked out of any of this ledger's
	// pools (so a leak check does not need to reach every layer's pool).
	live atomic.Int64
	// totalRefs counts outstanding references across all live buffers
	// (Get and Ref increment, Release decrements). Distinct from live:
	// one buffer shared by the ufs cache, the NVRAM dirty map and the
	// platter store is 1 live buffer carrying 3 references.
	totalRefs atomic.Int64
	// copies counts payload bytes memmoved by the data path (CountCopy
	// calls); the copy-budget guard reads it around a write burst.
	copies atomic.Int64
	// Debug enables paranoid lifecycle checking for this ledger's
	// buffers, like the package-level flag but scoped to one sim. Set it
	// before the sim runs; it is read on the data path.
	Debug bool
}

// global is the process-wide default ledger: pools made with NewPool (and
// nil Accounting handles passed to constructors) charge it, preserving
// the historical package-level counters.
var global Accounting

// Global returns the process-wide default ledger.
func Global() *Accounting { return &global }

// NewAccounting returns a fresh, empty ledger.
func NewAccounting() *Accounting { return &Accounting{} }

// Or resolves an optional handle: a, or the global ledger when a is nil.
// Constructors that take an optional *Accounting call it once.
func Or(a *Accounting) *Accounting {
	if a == nil {
		return &global
	}
	return a
}

// Live reports how many buffers are currently out of this ledger's pools.
// At quiesce this must equal the number of DISTINCT buffers retained by
// long-lived structures (caches, platter stores, NVRAM dirty maps).
func (a *Accounting) Live() int64 { return a.live.Load() }

// TotalRefs reports the outstanding references across all live buffers.
// At quiesce this must equal the total retained SLOTS across long-lived
// structures — every reference attributable, none leaked by a dead
// datagram or an unwound process.
func (a *Accounting) TotalRefs() int64 { return a.totalRefs.Load() }

// Copies reports cumulative payload bytes copied through CountCopy.
func (a *Accounting) Copies() int64 { return a.copies.Load() }

// CountCopy records n payload bytes memmoved; data-path copy sites call it
// so the copy-count budget is testable. It returns n so it can wrap copy().
func (a *Accounting) CountCopy(n int) int {
	a.copies.Add(int64(n))
	return n
}

// Live, TotalRefs, Copies and CountCopy are the process-global ledger's
// counters — the historical package API, used by tests and assemblies
// that run one sim at a time.
func Live() int64      { return global.Live() }
func TotalRefs() int64 { return global.TotalRefs() }
func Copies() int64    { return global.Copies() }
func CountCopy(n int) int {
	return global.CountCopy(n)
}

// Buf is one refcounted payload buffer. The zero value is not usable;
// buffers come from a Pool.
type Buf struct {
	pool *Pool
	data []byte
	refs int32
	gen  uint32
}

// Pool is a free list of buffers. Buffers return to the pool they were
// allocated from regardless of which layer releases the last reference, so
// layers may each own a pool and still exchange buffers freely. Every
// pool charges exactly one Accounting, fixed at creation.
type Pool struct {
	acct *Accounting
	free []*Buf
	gets uint64
}

// NewPool returns an empty pool charging the process-global ledger.
func NewPool() *Pool { return global.NewPool() }

// NewPool returns an empty pool charging this ledger.
func (a *Accounting) NewPool() *Pool { return &Pool{acct: a} }

// Acct returns the ledger this pool charges.
func (p *Pool) Acct() *Accounting { return p.acct }

// Get returns a buffer with one reference. Contents are unspecified (the
// recycled bytes of an earlier tenant); callers that overwrite the whole
// buffer — device reads, full-block copies, pattern fills — use it
// directly, others want GetZero.
func (p *Pool) Get() *Buf {
	p.acct.live.Add(1)
	p.acct.totalRefs.Add(1)
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.refs = 1
		return b
	}
	return &Buf{pool: p, data: make([]byte, Size), refs: 1}
}

// GetZero is Get with the buffer cleared, for partially-filled fresh
// blocks whose remainder must read back as zeros.
func (p *Pool) GetZero() *Buf {
	b := p.Get()
	clear(b.data)
	return b
}

// Gets reports how many buffers have been taken from this pool.
func (p *Pool) Gets() uint64 { return p.gets }

// FreeLen reports how many buffers are parked in the free list.
func (p *Pool) FreeLen() int { return len(p.free) }

// Data returns the buffer's full Size-byte payload slice.
func (b *Buf) Data() []byte { return b.data }

// Refs reports the current reference count (diagnostics and tests).
func (b *Buf) Refs() int32 { return b.refs }

// Unique reports whether the caller holds the only reference, i.e. the
// buffer may be mutated in place. Shared buffers are copy-on-write.
func (b *Buf) Unique() bool { return b.refs == 1 }

// Ref takes an additional reference and returns b for chaining.
func (b *Buf) Ref() *Buf {
	if b.refs <= 0 {
		panic("block: Ref of released buffer")
	}
	b.refs++
	b.pool.acct.totalRefs.Add(1)
	return b
}

// Release drops one reference; the last one returns the buffer to its
// origin pool and bumps the generation, invalidating outstanding Handles.
func (b *Buf) Release() {
	if b.refs <= 0 {
		panic("block: double release")
	}
	b.refs--
	b.pool.acct.totalRefs.Add(-1)
	if b.refs > 0 {
		return
	}
	b.gen++
	b.pool.acct.live.Add(-1)
	b.pool.free = append(b.pool.free, b)
}

// Pin is a device-write snapshot: one reference to each buffer of a
// transfer, taken at issue time (the point a DMA engine would capture the
// contents — before the service-time sleep, so a copy-on-write during the
// transfer cannot change what lands). The caller defers Release; a store
// that takes over the references calls Transfer first. Centralizing the
// idiom keeps every Device implementation's kill-unwind path identical:
// an unwound transfer drops its snapshot, a completed one hands it over.
type Pin struct {
	bufs []*Buf
	done bool
}

// TakePin references every buffer in bufs and returns the pin by value
// (no allocation on the device hot path).
func TakePin(bufs []*Buf) Pin {
	for _, b := range bufs {
		b.Ref()
	}
	return Pin{bufs: bufs}
}

// Transfer marks the snapshot's references as handed over to a store;
// the deferred Release becomes a no-op.
func (p *Pin) Transfer() { p.done = true }

// Release drops the snapshot references unless Transfer ran.
func (p *Pin) Release() {
	if p.done {
		return
	}
	for _, b := range p.bufs {
		b.Release()
	}
}

// Handle is a generation-checked reference to one buffer occurrence, in
// the style of the kernel's Event handles: it does not pin the buffer, and
// once every real reference is released and the buffer recycles, the
// handle goes stale instead of silently aliasing the next tenant.
type Handle struct {
	b   *Buf
	gen uint32
}

// Handle returns a generation-checked handle to the buffer's current
// occupancy.
func (b *Buf) Handle() Handle { return Handle{b: b, gen: b.gen} }

// Valid reports whether the handle still refers to the same occupancy.
func (h Handle) Valid() bool { return h.b != nil && h.b.gen == h.gen && h.b.refs > 0 }

// Buf returns the referenced buffer, nil if the handle is stale or zero.
// Under Debug (package-wide or the buffer ledger's) a stale dereference
// panics, naming the misuse.
func (h Handle) Buf() *Buf {
	if !h.Valid() {
		if (Debug || (h.b != nil && h.b.pool.acct.Debug)) && h.b != nil {
			panic(fmt.Sprintf("block: stale handle (gen %d, buffer at gen %d, refs %d)",
				h.gen, h.b.gen, h.b.refs))
		}
		return nil
	}
	return h.b
}
