package block

import "testing"

// TestPoolRecycle: release of the last reference returns the buffer to its
// origin pool; the next Get reuses it without allocating.
func TestPoolRecycle(t *testing.T) {
	p := NewPool()
	base := Live()
	b := p.Get()
	if Live() != base+1 {
		t.Fatalf("Live = %d, want %d", Live(), base+1)
	}
	b.Data()[0] = 0xAB
	b.Release()
	if Live() != base {
		t.Fatalf("Live after release = %d, want %d", Live(), base)
	}
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d, want 1", p.FreeLen())
	}
	b2 := p.Get()
	if b2 != b {
		t.Fatal("pool did not recycle the released buffer")
	}
	b2.Release()
}

// TestCrossPoolRelease: a buffer released by a layer holding a different
// pool still returns to its origin pool.
func TestCrossPoolRelease(t *testing.T) {
	origin, other := NewPool(), NewPool()
	b := origin.Get()
	_ = other // the releasing layer's own pool is irrelevant
	b.Release()
	if origin.FreeLen() != 1 || other.FreeLen() != 0 {
		t.Fatalf("buffer landed in the wrong pool: origin=%d other=%d",
			origin.FreeLen(), other.FreeLen())
	}
}

// TestRefCounting: Ref/Release pairs keep the buffer live until the last
// reference; Unique tracks shared state for the copy-on-write discipline.
func TestRefCounting(t *testing.T) {
	p := NewPool()
	b := p.Get()
	if !b.Unique() {
		t.Fatal("fresh buffer not unique")
	}
	b.Ref()
	if b.Unique() {
		t.Fatal("shared buffer reported unique")
	}
	b.Release()
	if !b.Unique() || p.FreeLen() != 0 {
		t.Fatal("buffer freed while a reference remained")
	}
	b.Release()
	if p.FreeLen() != 1 {
		t.Fatal("buffer not freed on last release")
	}
}

// TestDoubleReleasePanics: refcount underflow is always a panic, Debug or
// not — a double release means two layers think they own the same buffer.
func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

// TestHandleGoesStale: recycling a buffer invalidates handles to the old
// occupancy, exactly like the kernel's pooled Event handles.
func TestHandleGoesStale(t *testing.T) {
	p := NewPool()
	b := p.Get()
	h := b.Handle()
	if !h.Valid() || h.Buf() != b {
		t.Fatal("fresh handle invalid")
	}
	b.Release()
	if h.Valid() {
		t.Fatal("handle survived the release")
	}
	b2 := p.Get() // same record, next generation
	if h.Valid() || h.Buf() != nil {
		t.Fatal("stale handle aliases the recycled buffer")
	}
	if !b2.Handle().Valid() {
		t.Fatal("fresh handle on recycled buffer invalid")
	}
	b2.Release()
}

// TestHandleDebugPanics: under Debug, dereferencing a stale handle panics
// instead of returning nil.
func TestHandleDebugPanics(t *testing.T) {
	Debug = true
	defer func() { Debug = false }()
	p := NewPool()
	b := p.Get()
	h := b.Handle()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("stale handle dereference did not panic under Debug")
		}
	}()
	h.Buf()
}

// TestGetZero: a zeroed buffer really is zero even after a dirty tenant.
func TestGetZero(t *testing.T) {
	p := NewPool()
	b := p.Get()
	for i := range b.Data() {
		b.Data()[i] = 0xFF
	}
	b.Release()
	z := p.GetZero()
	for i, v := range z.Data() {
		if v != 0 {
			t.Fatalf("GetZero left byte %d = %#x", i, v)
		}
	}
	z.Release()
}

// TestCopyAccounting: CountCopy feeds the global copy counter the budget
// guard reads.
func TestCopyAccounting(t *testing.T) {
	before := Copies()
	src := make([]byte, 100)
	dst := make([]byte, 100)
	CountCopy(copy(dst, src))
	if Copies()-before != 100 {
		t.Fatalf("Copies delta = %d, want 100", Copies()-before)
	}
}

// TestSteadyStateZeroAlloc: a warmed pool's Get/Release cycle allocates
// nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool()
	for i := 0; i < 8; i++ {
		p.Get().Release()
	}
	n := testing.AllocsPerRun(100, func() {
		bufs := [8]*Buf{}
		for i := range bufs {
			bufs[i] = p.Get()
		}
		for _, b := range bufs {
			b.Release()
		}
	})
	if n > 0 {
		t.Fatalf("Get/Release allocated %.1f objects per run, want 0", n)
	}
}
