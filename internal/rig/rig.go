// Package rig assembles one single-server testbed (client hosts, network,
// server, device stack) — the hardware/software configuration matrix of
// the paper's Tables 1-6 and Figures 1-3. internal/scenario builds rigs
// from declarative specs; internal/experiments re-exports the types for
// compatibility with pre-scenario callers.
package rig

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nvram"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// Config selects one hardware/software configuration.
type Config struct {
	// Net selects the LAN (hw.Ethernet() or hw.FDDI()).
	Net hw.NetParams
	// Segments, when non-empty, replaces the single Net medium with a
	// bridged fabric of named segments (see netsim.Fabric).
	Segments []netsim.SegmentSpec
	// ServerSegment places the server (default: the root segment).
	ServerSegment string
	// ClientSegment places the client hosts (default: the root).
	ClientSegment string
	// Presto interposes an NVRAM board in front of the disk stack.
	Presto bool
	// Gathering enables the write gathering engine.
	Gathering bool
	// GatherOverride replaces the default engine policy when non-nil
	// (ablations).
	GatherOverride *core.Config
	// StripeDisks selects the spindle count: 1 for a lone RZ26, 3 for the
	// paper's stripe set.
	StripeDisks int
	// NumNfsds is the server daemon count (paper: 8 for copies, 32 for
	// LADDIS).
	NumNfsds int
	// Clients is the number of client hosts to attach.
	Clients int
	// Biods per client.
	Biods int
	// CPUScale divides every CPU cost (the FDDI tables ran on a ~1.8x
	// faster DEC 3800).
	CPUScale float64
	// Seed drives all randomness.
	Seed int64
	// RecordReplies enables the server's crash-audit reply log.
	RecordReplies bool
	// Inodes sizes the filesystem's inode table (default 512).
	Inodes int
	// Acct is the buffer ledger every pool in the rig charges (nil = the
	// process-global one). The scenario engine gives each cell its own,
	// so cells executing in parallel keep exact, independent accounting.
	Acct *block.Accounting
}

// Rig is an assembled testbed.
type Rig struct {
	Sim *sim.Sim
	// Net is the server's segment: the lone medium without a fabric.
	Net *netsim.Network
	// Fabric is the bridged segment tree (nil without Config.Segments).
	Fabric  *netsim.Fabric
	Disks   []*disk.Disk
	Stripe  *disk.Stripe
	Presto  *nvram.Presto
	FS      *ufs.FS
	Server  *server.Server
	Clients []*client.Client

	cfg       Config
	costs     hw.CPUParams
	cpuMark   sim.Duration
	transMark uint64
	bytesMark uint64
	timeMark  sim.Time
}

// New builds the full stack for cfg.
func New(cfg Config) *Rig {
	if cfg.StripeDisks == 0 {
		cfg.StripeDisks = 1
	}
	if cfg.NumNfsds == 0 {
		cfg.NumNfsds = 8
	}
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	if cfg.Inodes == 0 {
		cfg.Inodes = 512
	}
	s := sim.New(cfg.Seed)
	var fabric *netsim.Fabric
	var n *netsim.Network
	if len(cfg.Segments) > 0 {
		fabric = netsim.NewFabric(s, cfg.Segments)
		n = fabric.Segment(cfg.ServerSegment)
	} else {
		n = netsim.New(s, cfg.Net)
	}
	costs := hw.DEC3000CPU()
	if cfg.CPUScale > 1 {
		costs = costs.Scale(cfg.CPUScale)
	}
	r := &Rig{Sim: s, Net: n, Fabric: fabric, cfg: cfg, costs: costs}

	// Device stack, bottom up: disks -> (stripe) -> CPU charging ->
	// (Presto -> CPU charging) -> UFS.
	srvCPU := sim.NewResource(s, 1)
	var raw disk.Device
	for i := 0; i < cfg.StripeDisks; i++ {
		r.Disks = append(r.Disks, disk.New(s, hw.RZ26(), cfg.Acct))
	}
	if cfg.StripeDisks > 1 {
		r.Stripe = disk.NewStripe(s, r.Disks, 8) // 64K stripe unit
		raw = r.Stripe
	} else {
		raw = r.Disks[0]
	}
	dev := disk.Device(server.NewChargedDevice(raw, srvCPU, costs.DriverTrip))
	if cfg.Presto {
		r.Presto = nvram.New(s, hw.Prestoserve(), dev, cfg.Acct)
		dev = server.NewChargedNVRAM(r.Presto, srvCPU, costs.DriverTrip,
			costs.NVRAMCopyPer8K, hw.Prestoserve().MaxIO)
	}
	fs, err := ufs.Format(s, dev, 1, cfg.Inodes, cfg.Acct)
	if err != nil {
		panic("rig: " + err.Error())
	}
	r.FS = fs

	scfg := server.Config{
		NumNfsds:      cfg.NumNfsds,
		Gathering:     cfg.Gathering,
		Costs:         costs,
		Accelerated:   cfg.Presto,
		RecordReplies: cfg.RecordReplies,
		CPU:           srvCPU,
	}
	if cfg.Gathering {
		if cfg.GatherOverride != nil {
			scfg.Gather = *cfg.GatherOverride
		} else {
			scfg.Gather = core.DefaultConfig(cfg.Presto, n.Params().Procrastinate)
		}
	}
	r.Server = server.New(s, n, fs, scfg)
	fs.ChargeMeta = func(p *sim.Proc) { r.Server.CPU().Use(p, costs.MetaUpdate) }
	if fabric != nil {
		fabric.Place("server", cfg.ServerSegment)
	}

	cnet := n
	if fabric != nil {
		cnet = fabric.Segment(cfg.ClientSegment)
	}
	for i := 0; i < cfg.Clients; i++ {
		name := fmt.Sprintf("client%d", i+1)
		r.Clients = append(r.Clients, client.New(s, cnet, name, "server", hw.DEC3000Client(), cfg.Biods, cfg.Acct))
		if fabric != nil {
			fabric.Place(name, cfg.ClientSegment)
		}
	}
	return r
}

// MarkInterval starts a measurement interval: disk and CPU counters are
// snapshotted so rates cover only the measured phase.
func (r *Rig) MarkInterval() {
	r.timeMark = r.Sim.Now()
	r.cpuMark = r.Server.CPUBusy()
	r.transMark, r.bytesMark = r.diskTotals()
}

func (r *Rig) diskTotals() (uint64, uint64) {
	var trans, bytes uint64
	for _, d := range r.Disks {
		trans += d.Stats().Trans()
		bytes += d.Stats().Bytes()
	}
	return trans, bytes
}

// IntervalStats reports CPU %, disk KB/s and disk trans/s over the
// interval since MarkInterval. Disk rates count spindle-level
// transactions, as the paper's tables do.
func (r *Rig) IntervalStats() (cpuPct, diskKBps, diskTps float64) {
	elapsed := r.Sim.Now().Sub(r.timeMark)
	if elapsed <= 0 {
		return 0, 0, 0
	}
	sec := elapsed.Seconds()
	trans, bytes := r.diskTotals()
	cpuPct = 100 * float64(r.Server.CPUBusy()-r.cpuMark) / float64(elapsed)
	diskKBps = float64(bytes-r.bytesMark) / 1024 / sec
	diskTps = float64(trans-r.transMark) / sec
	return cpuPct, diskKBps, diskTps
}
