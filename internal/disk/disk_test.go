package disk

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
)

func testDisk(s *sim.Sim) *Disk {
	return New(s, hw.RZ26(), nil)
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var got []byte
	s.Spawn("io", func(p *sim.Proc) {
		d.WriteBlocks(p, 100, data)
		got = make([]byte, 8192)
		d.ReadBlocks(p, 100, got)
	})
	s.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	if d.Stats().Writes != 1 || d.Stats().Reads != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	var got []byte
	s.Spawn("io", func(p *sim.Proc) {
		got = make([]byte, 8192)
		got[0] = 0xFF
		d.ReadBlocks(p, 55, got)
	})
	s.Run(0)
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestMultiBlockTransfer(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	data := make([]byte, 8*8192) // 64K cluster
	for i := range data {
		data[i] = byte(i)
	}
	var got []byte
	s.Spawn("io", func(p *sim.Proc) {
		d.WriteBlocks(p, 200, data)
		got = make([]byte, len(data))
		d.ReadBlocks(p, 200, got)
	})
	s.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatal("64K round trip mismatch")
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("cluster counted as %d transactions, want 1", d.Stats().Writes)
	}
}

func TestServiceTimeScalesWithSize(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	var t8k, t64k sim.Duration
	s.Spawn("io", func(p *sim.Proc) {
		// Same position both times so seek/rotation contributions use the
		// same RNG distribution; measure with a fresh position each time.
		start := p.Now()
		d.WriteBlocks(p, 1000, make([]byte, 8192))
		t8k = p.Now().Sub(start)
		start = p.Now()
		d.WriteBlocks(p, 50000, make([]byte, 64*1024))
		t64k = p.Now().Sub(start)
	})
	s.Run(0)
	// 64K moves 8x the data; the transfer component alone adds ~21ms at
	// 2.6MB/s, so the larger transfer must take longer.
	if t64k <= t8k {
		t.Fatalf("64K (%v) not slower than 8K (%v)", t64k, t8k)
	}
	// But not 8x longer: fixed costs amortize. This is the entire point of
	// clustering.
	if float64(t64k) > 7.9*float64(t8k) {
		t.Fatalf("no fixed-cost amortization: 8K %v vs 64K %v", t8k, t64k)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	s := sim.New(2)
	d := testDisk(s)
	var seqTime, rndTime sim.Duration
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		start := p.Now()
		for i := 0; i < 50; i++ {
			d.WriteBlocks(p, int64(3000+i), buf)
		}
		seqTime = p.Now().Sub(start)
		start = p.Now()
		for i := 0; i < 50; i++ {
			d.WriteBlocks(p, int64((i*37)%100000), buf)
		}
		rndTime = p.Now().Sub(start)
	})
	s.Run(0)
	if seqTime >= rndTime {
		t.Fatalf("sequential (%v) not faster than random (%v)", seqTime, rndTime)
	}
}

func TestQueueSerializesRequests(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	finished := 0
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn("io", func(p *sim.Proc) {
			d.WriteBlocks(p, int64(1000*i), make([]byte, 8192))
			finished++
		})
	}
	end := s.Run(0)
	if finished != 4 {
		t.Fatalf("finished = %d", finished)
	}
	// Four serialized ops must take at least 4x a minimal service time.
	if end < sim.Time(4*2*sim.Millisecond) {
		t.Fatalf("4 ops finished suspiciously fast: %v", end)
	}
}

func TestUnalignedTransferPanics(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	panicked := false
	s.Spawn("io", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.WriteBlocks(p, 0, make([]byte, 100))
	})
	s.Run(0)
	if !panicked {
		t.Fatal("unaligned write did not panic")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	panicked := false
	s.Spawn("io", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		d.WriteBlocks(p, d.NumBlocks(), make([]byte, 8192))
	})
	s.Run(0)
	if !panicked {
		t.Fatal("out-of-range write did not panic")
	}
}

func TestPeekAndInject(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	data := make([]byte, 8192)
	data[17] = 0xAB
	d.InjectBlock(42, data)
	got := d.PeekBlock(42)
	if got[17] != 0xAB {
		t.Fatal("inject/peek mismatch")
	}
	if d.Stats().Trans() != 0 {
		t.Fatal("peek/inject counted as transactions")
	}
}

func newStripe(s *sim.Sim, n int) (*Stripe, []*Disk) {
	members := make([]*Disk, n)
	for i := range members {
		members[i] = New(s, hw.RZ26(), nil)
	}
	return NewStripe(s, members, 8), members
}

func TestStripeRoundTrip(t *testing.T) {
	s := sim.New(1)
	st, _ := newStripe(s, 3)
	data := make([]byte, 24*8192)
	for i := range data {
		data[i] = byte(i * 13)
	}
	var got []byte
	s.Spawn("io", func(p *sim.Proc) {
		st.WriteBlocks(p, 16, data)
		got = make([]byte, len(data))
		st.ReadBlocks(p, 16, got)
	})
	s.Run(0)
	if !bytes.Equal(got, data) {
		t.Fatal("stripe round trip mismatch")
	}
}

func TestStripeQuickRoundTrip(t *testing.T) {
	f := func(seed int64, blkRaw uint16, nBlocksRaw uint8, fill byte) bool {
		s := sim.New(seed)
		st, _ := newStripe(s, 3)
		blk := int64(blkRaw % 1000)
		n := int(nBlocksRaw%16) + 1
		data := make([]byte, n*8192)
		for i := range data {
			data[i] = fill ^ byte(i)
		}
		ok := false
		s.Spawn("io", func(p *sim.Proc) {
			st.WriteBlocks(p, blk, data)
			got := make([]byte, len(data))
			st.ReadBlocks(p, blk, got)
			ok = bytes.Equal(got, data)
		})
		s.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeParallelism(t *testing.T) {
	// A 24-block write spanning 3 members should complete in roughly the
	// time of one 8-block member write, not three.
	sOne := sim.New(1)
	single := New(sOne, hw.RZ26(), nil)
	var tSingle sim.Duration
	sOne.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		single.WriteBlocks(p, 0, make([]byte, 24*8192))
		tSingle = p.Now().Sub(start)
	})
	sOne.Run(0)

	sStr := sim.New(1)
	st, _ := newStripe(sStr, 3)
	var tStripe sim.Duration
	sStr.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		st.WriteBlocks(p, 0, make([]byte, 24*8192))
		tStripe = p.Now().Sub(start)
	})
	sStr.Run(0)
	if float64(tStripe) > 0.8*float64(tSingle) {
		t.Fatalf("stripe write (%v) not meaningfully faster than single disk (%v)", tStripe, tSingle)
	}
}

func TestStripeMapping(t *testing.T) {
	s := sim.New(1)
	st, members := newStripe(s, 3)
	// Write three consecutive stripe units; each should land on a
	// different member.
	s.Spawn("io", func(p *sim.Proc) {
		for u := int64(0); u < 3; u++ {
			st.WriteBlocks(p, u*8, make([]byte, 8*8192))
		}
	})
	s.Run(0)
	for i, m := range members {
		if m.Stats().Writes != 1 {
			t.Fatalf("member %d has %d writes, want 1", i, m.Stats().Writes)
		}
	}
}

func TestStripeMemberAggregates(t *testing.T) {
	s := sim.New(1)
	st, _ := newStripe(s, 3)
	s.Spawn("io", func(p *sim.Proc) {
		st.WriteBlocks(p, 0, make([]byte, 24*8192))
	})
	s.Run(0)
	if st.MemberTrans() != 3 {
		t.Fatalf("MemberTrans = %d, want 3", st.MemberTrans())
	}
	if st.MemberBytes() != 24*8192 {
		t.Fatalf("MemberBytes = %d", st.MemberBytes())
	}
	if st.Stats().Writes != 1 {
		t.Fatalf("logical writes = %d, want 1", st.Stats().Writes)
	}
}

func TestStatsInterval(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	s.Spawn("io", func(p *sim.Proc) {
		d.WriteBlocks(p, 0, make([]byte, 8192))
		d.Stats().Reset()
		d.WriteBlocks(p, 8, make([]byte, 8192))
		d.WriteBlocks(p, 16, make([]byte, 8192))
	})
	s.Run(0)
	if d.Stats().IntervalTrans() != 2 {
		t.Fatalf("IntervalTrans = %d, want 2", d.Stats().IntervalTrans())
	}
	if d.Stats().IntervalBytes() != 2*8192 {
		t.Fatalf("IntervalBytes = %d", d.Stats().IntervalBytes())
	}
	if d.Stats().Trans() != 3 {
		t.Fatalf("total Trans = %d, want 3", d.Stats().Trans())
	}
}
