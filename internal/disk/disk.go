// Package disk simulates block storage devices with realistic service
// times: a moving-head disk (seek + rotation + transfer), and a stripe
// driver that spreads blocks across several disks. Devices store real
// bytes, so the filesystem above them is genuinely durable within the
// simulation — a crash test can discard all volatile state and re-read the
// platters.
package disk

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Device is synchronous block storage. Addresses are in filesystem blocks
// (BlockSize bytes); a transfer may span multiple contiguous blocks, which
// is how UFS clustering reaches 64K per transaction.
type Device interface {
	// ReadBlocks reads len(buf) bytes starting at block blk, blocking p
	// for the service time. len(buf) must be a multiple of BlockSize. A
	// non-nil error (ErrMedia, ErrFailed) means the transfer failed and
	// buf contents are undefined.
	ReadBlocks(p *sim.Proc, blk int64, buf []byte) error
	// WriteBlocks writes data starting at block blk, blocking p for the
	// service time. len(data) must be a multiple of BlockSize. This is the
	// copying path; the buffer cache uses WriteBufs.
	WriteBlocks(p *sim.Proc, blk int64, data []byte) error
	// WriteBufs writes one refcounted buffer per block starting at blk,
	// blocking p for the service time of the combined transfer. The device
	// takes its own references at entry (the point-in-time snapshot a DMA
	// would capture) and stores them instead of copying the payload; a
	// caller that mutates a buffer afterwards must follow the
	// copy-on-write discipline (block.Buf.Unique).
	WriteBufs(p *sim.Proc, blk int64, bufs []*block.Buf) error
	// BlockSize is the block size in bytes.
	BlockSize() int
	// NumBlocks is the device capacity in blocks.
	NumBlocks() int64
	// Stats returns the device's cumulative transfer statistics.
	Stats() *Stats
}

// Stats counts device transactions, matching the paper's "server disk
// (KB/sec)" and "server disk (trans/sec)" rows.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadBytes  uint64
	WriteBytes uint64
	BusyTime   sim.Duration

	markReads, markWrites         uint64
	markReadBytes, markWriteBytes uint64
}

// Trans reports total transactions.
func (s *Stats) Trans() uint64 { return s.Reads + s.Writes }

// Bytes reports total bytes moved.
func (s *Stats) Bytes() uint64 { return s.ReadBytes + s.WriteBytes }

// Reset marks the beginning of a measurement interval.
func (s *Stats) Reset() {
	s.markReads, s.markWrites = s.Reads, s.Writes
	s.markReadBytes, s.markWriteBytes = s.ReadBytes, s.WriteBytes
}

// IntervalTrans reports transactions since Reset.
func (s *Stats) IntervalTrans() uint64 {
	return s.Reads - s.markReads + s.Writes - s.markWrites
}

// IntervalBytes reports bytes since Reset.
func (s *Stats) IntervalBytes() uint64 {
	return s.ReadBytes - s.markReadBytes + s.WriteBytes - s.markWriteBytes
}

// Disk is a single moving-head disk with a FIFO request queue. The
// platter store holds references to the refcounted buffers written through
// it — a buffer written from the buffer cache is shared, not copied, until
// one side overwrites it.
type Disk struct {
	sim   *sim.Sim
	p     hw.DiskParams
	arm   *sim.Resource // serializes the actuator
	pos   int64         // current head position, block number
	data  map[int64]*block.Buf
	pool  *block.Pool // backs []byte writes and injections
	stats Stats
	fp    *plane // injectable fault plane; nil on a healthy disk
	// OnOp, when non-nil, observes every completed transfer (tracing);
	// svc is the service time the arm spent, so [now-svc, now] is the
	// transfer's occupancy window.
	OnOp func(write bool, blk int64, n int, svc sim.Duration)
}

// New returns a disk with the given parameters. acct is the buffer
// ledger the platter store charges (nil = the process-global one); a
// scenario cell passes its own so concurrently executing cells keep
// exact, independent accounting.
func New(s *sim.Sim, p hw.DiskParams, acct *block.Accounting) *Disk {
	if p.BlockSize != block.Size {
		panic(fmt.Sprintf("disk: block size %d, want %d", p.BlockSize, block.Size))
	}
	return &Disk{
		sim:  s,
		p:    p,
		arm:  sim.NewResource(s, 1),
		data: make(map[int64]*block.Buf),
		pool: block.Or(acct).NewPool(),
	}
}

// StoredBufs reports how many platter blocks hold a buffer reference
// (leak-check accounting).
func (d *Disk) StoredBufs() int { return len(d.data) }

// BlockSize implements Device.
func (d *Disk) BlockSize() int { return d.p.BlockSize }

// NumBlocks implements Device.
func (d *Disk) NumBlocks() int64 { return d.p.NumBlocks }

// Stats implements Device.
func (d *Disk) Stats() *Stats { return &d.stats }

// serviceTime computes seek + rotational latency + transfer for an access
// of n bytes at block blk given the current head position.
func (d *Disk) serviceTime(blk int64, n int) sim.Duration {
	dist := blk - d.pos
	if dist < 0 {
		dist = -dist
	}
	var seek sim.Duration
	switch {
	case dist == 0:
		seek = 0
	case dist <= 16:
		seek = d.p.TrackSeek
	default:
		// Scale toward the average seek with distance; cap at ~1.6x the
		// average for full-stroke movements.
		frac := float64(dist) / float64(d.p.NumBlocks)
		seek = d.p.TrackSeek + sim.Duration(float64(d.p.AvgSeek-d.p.TrackSeek)*(0.6+frac))
		if max := d.p.AvgSeek * 8 / 5; seek > max {
			seek = max
		}
	}
	// Rotational latency: uniform over one revolution unless the access is
	// sequential with the last one (dist == 0 means the head is already
	// there mid-track; assume minimal rotation).
	var rot sim.Duration
	if dist == 0 {
		rot = d.p.RotationTime / 16
	} else {
		rot = sim.Duration(d.sim.Rand().Int63n(int64(d.p.RotationTime)))
	}
	xfer := sim.Duration(int64(n) * int64(sim.Second) / (int64(d.p.MediaRateKBps) * 1024))
	return d.p.CtlOverhead + seek + rot + xfer
}

// check panics on malformed transfers (programming errors) and returns
// ErrFailed for I/O against a fail-stopped device.
func (d *Disk) check(blk int64, n int) error {
	if n%d.p.BlockSize != 0 {
		panic(fmt.Sprintf("disk: transfer of %d bytes not block aligned", n))
	}
	if blk < 0 || blk+int64(n/d.p.BlockSize) > d.p.NumBlocks {
		panic(fmt.Sprintf("disk: access beyond device: blk %d len %d", blk, n))
	}
	if d.fp != nil && d.fp.failStop {
		return ErrFailed
	}
	return nil
}

// service computes the transfer's service time, degraded if a fault
// window covers the current instant.
func (d *Disk) service(blk int64, n int) sim.Duration {
	st := d.serviceTime(blk, n)
	if d.fp != nil {
		st = d.fp.scale(d.sim.Now(), st)
	}
	return st
}

// ReadBlocks implements Device. A transfer overlapping an armed media-error
// rule occupies the arm for the full service time, then fails.
func (d *Disk) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	if err := d.check(blk, len(buf)); err != nil {
		return err
	}
	d.arm.Acquire(p)
	defer d.arm.Release()
	st := d.service(blk, len(buf))
	p.Sleep(st)
	d.stats.BusyTime += st
	nb := int64(len(buf) / d.p.BlockSize)
	if d.fp != nil {
		if err := d.fp.readErr(blk, nb); err != nil {
			d.pos = blk
			d.stats.Reads++
			return err
		}
	}
	for i := int64(0); i < nb; i++ {
		src := d.data[blk+i]
		dst := buf[i*int64(d.p.BlockSize) : (i+1)*int64(d.p.BlockSize)]
		if src == nil {
			for j := range dst {
				dst[j] = 0
			}
		} else {
			copy(dst, src.Data())
		}
	}
	d.pos = blk + nb
	d.stats.Reads++
	d.stats.ReadBytes += uint64(len(buf))
	if d.OnOp != nil {
		d.OnOp(false, blk, len(buf), st)
	}
	return nil
}

// WriteBlocks implements Device. A process killed while the transfer is in
// flight (a server crash mid-I/O) unwinds out of the Sleep: the deferred
// release frees the arm, and the bytes never reach the platters — the
// conservative power-failure model.
func (d *Disk) WriteBlocks(p *sim.Proc, blk int64, data []byte) error {
	if err := d.check(blk, len(data)); err != nil {
		return err
	}
	d.arm.Acquire(p)
	defer d.arm.Release()
	st := d.service(blk, len(data))
	p.Sleep(st)
	d.stats.BusyTime += st
	d.storeBytes(blk, data)
	d.pos = blk + int64(len(data)/d.p.BlockSize)
	d.stats.Writes++
	d.stats.WriteBytes += uint64(len(data))
	if d.OnOp != nil {
		d.OnOp(true, blk, len(data), st)
	}
	return nil
}

// WriteBufs implements Device: the zero-copy write path. References are
// taken before the service-time sleep — the snapshot a DMA engine would
// capture at issue — so a buffer rewritten (copy-on-write) while the arm
// is busy does not change what lands; on a mid-transfer kill the deferred
// release drops the snapshot and nothing lands at all — unless the
// torn-write failure mode is armed, in which case a strict prefix of the
// blocks is already on the platters when the power dies.
func (d *Disk) WriteBufs(p *sim.Proc, blk int64, bufs []*block.Buf) error {
	n := len(bufs) * d.p.BlockSize
	if err := d.check(blk, n); err != nil {
		return err
	}
	pin := block.TakePin(bufs)
	defer pin.Release()
	landed := false
	if d.fp != nil && d.fp.tornArmed {
		defer func() {
			if landed {
				return
			}
			// The process was killed mid-transfer: land the prefix the
			// firmware had already committed. This runs before the pin
			// release (defers are LIFO), so the snapshot refs are still
			// held and each stored block takes a fresh reference.
			k := d.fp.intn(len(bufs))
			for i := 0; i < k; i++ {
				if old := d.data[blk+int64(i)]; old != nil {
					old.Release()
				}
				d.data[blk+int64(i)] = bufs[i].Ref()
			}
			if k > 0 {
				d.fp.torn++
			}
		}()
	}
	d.arm.Acquire(p)
	defer d.arm.Release()
	st := d.service(blk, n)
	p.Sleep(st)
	d.stats.BusyTime += st
	for i, b := range bufs {
		if old := d.data[blk+int64(i)]; old != nil {
			old.Release()
		}
		d.data[blk+int64(i)] = b // ownership of the snapshot ref transfers here
	}
	pin.Transfer()
	landed = true
	d.pos = blk + int64(len(bufs))
	d.stats.Writes++
	d.stats.WriteBytes += uint64(n)
	if d.OnOp != nil {
		d.OnOp(true, blk, n, st)
	}
	return nil
}

// storeBytes copies raw bytes into platter-owned buffers (the []byte write
// and injection path; the buffer-cache path shares buffers instead).
func (d *Disk) storeBytes(blk int64, data []byte) {
	nb := int64(len(data) / d.p.BlockSize)
	for i := int64(0); i < nb; i++ {
		b := d.data[blk+i]
		if b == nil || !b.Unique() {
			// First write, or the stored buffer is shared with a cache
			// above: replace it rather than mutate history out from under
			// the sharer.
			if b != nil {
				b.Release()
			}
			b = d.pool.Get()
			d.data[blk+i] = b
		}
		d.pool.Acct().CountCopy(copy(b.Data(), data[i*int64(d.p.BlockSize):(i+1)*int64(d.p.BlockSize)]))
	}
}

// PeekBlock returns the stored contents of one block without simulating
// I/O time. It is the crash-recovery inspection hook: what is on the
// platters, regardless of any volatile cache above.
func (d *Disk) PeekBlock(blk int64) []byte {
	out := make([]byte, d.p.BlockSize)
	if b := d.data[blk]; b != nil {
		copy(out, b.Data())
	}
	return out
}

// InjectBlock stores contents directly (test setup helper).
func (d *Disk) InjectBlock(blk int64, data []byte) { d.storeBytes(blk, data) }

// Stripe interleaves blocks across several member disks RAID-0 style.
// A transfer spanning multiple members proceeds on them in parallel,
// which is how a 3-disk stripe set triples sequential bandwidth.
type Stripe struct {
	sim        *sim.Sim
	members    []*Disk
	unitBlocks int64 // stripe unit in blocks
	stats      Stats
	segPool    [][]segment // scratch for segments (rw yields, so pooled)
}

// NewStripe builds a stripe set over members with the given stripe unit in
// blocks (e.g. 8 blocks = 64K for 8K blocks).
func NewStripe(s *sim.Sim, members []*Disk, unitBlocks int64) *Stripe {
	if len(members) == 0 {
		panic("disk: empty stripe set")
	}
	if unitBlocks <= 0 {
		panic("disk: non-positive stripe unit")
	}
	bs := members[0].BlockSize()
	for _, m := range members {
		if m.BlockSize() != bs {
			panic("disk: mixed block sizes in stripe set")
		}
	}
	return &Stripe{sim: s, members: members, unitBlocks: unitBlocks}
}

// BlockSize implements Device.
func (st *Stripe) BlockSize() int { return st.members[0].BlockSize() }

// NumBlocks implements Device.
func (st *Stripe) NumBlocks() int64 {
	min := st.members[0].NumBlocks()
	for _, m := range st.members {
		if m.NumBlocks() < min {
			min = m.NumBlocks()
		}
	}
	return min * int64(len(st.members))
}

// Stats implements Device. The stripe set reports aggregate member
// transactions, matching the paper's "server disks" rows.
func (st *Stripe) Stats() *Stats { return &st.stats }

// map translates a logical block to (member, physical block).
func (st *Stripe) mapBlock(blk int64) (member int, phys int64) {
	stripe := blk / st.unitBlocks
	within := blk % st.unitBlocks
	member = int(stripe % int64(len(st.members)))
	row := stripe / int64(len(st.members))
	return member, row*st.unitBlocks + within
}

type segment struct {
	member int
	phys   int64
	off    int // byte offset within the caller's buffer
	n      int // byte length
}

// segments splits a logical transfer into per-member contiguous pieces.
func (st *Stripe) getSegs() []segment {
	if n := len(st.segPool); n > 0 {
		s := st.segPool[n-1]
		st.segPool = st.segPool[:n-1]
		return s[:0]
	}
	return make([]segment, 0, 8)
}

func (st *Stripe) segments(blk int64, n int) []segment {
	bs := int64(st.BlockSize())
	segs := st.getSegs()
	remaining := int64(n) / bs
	cur := blk
	off := 0
	for remaining > 0 {
		m, phys := st.mapBlock(cur)
		// blocks left in this stripe unit
		unitLeft := st.unitBlocks - cur%st.unitBlocks
		take := unitLeft
		if take > remaining {
			take = remaining
		}
		// extend across contiguous units on the same member when the
		// logical range continues there (single-member stripe sets).
		segs = append(segs, segment{member: m, phys: phys, off: off, n: int(take * bs)})
		cur += take
		off += int(take * bs)
		remaining -= take
	}
	// Merge physically contiguous segments on the same member.
	merged := segs[:0]
	for _, s := range segs {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.member == s.member && last.phys+int64(last.n/st.BlockSize()) == s.phys && last.off+last.n == s.off {
				last.n += s.n
				continue
			}
		}
		merged = append(merged, s)
	}
	return merged
}

// Members exposes the member disks (fault targeting and tests).
func (st *Stripe) Members() []*Disk { return st.members }

// ReadBlocks implements Device. A member failure fails the whole logical
// transfer; unaffected members complete their segments normally.
func (st *Stripe) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	err := st.rw(p, blk, buf, false)
	st.stats.Reads++
	st.stats.ReadBytes += uint64(len(buf))
	return err
}

// WriteBlocks implements Device.
func (st *Stripe) WriteBlocks(p *sim.Proc, blk int64, data []byte) error {
	err := st.rw(p, blk, data, true)
	st.stats.Writes++
	st.stats.WriteBytes += uint64(len(data))
	return err
}

// WriteBufs implements Device: per-member zero-copy writes. The stripe
// takes the snapshot references at entry — before the member fan-out gets
// a chance to interleave with other processes — so all members land the
// same point-in-time contents.
func (st *Stripe) WriteBufs(p *sim.Proc, blk int64, bufs []*block.Buf) error {
	pin := block.TakePin(bufs)
	defer pin.Release()
	segs := st.segments(blk, len(bufs)*st.BlockSize())
	defer func() { st.segPool = append(st.segPool, segs) }()
	bs := st.BlockSize()
	var ioErr error
	if len(segs) == 1 {
		s := segs[0]
		ioErr = st.members[s.member].WriteBufs(p, s.phys, bufs[s.off/bs:(s.off+s.n)/bs])
	} else {
		// Parallel member I/O, children so a crash takes the in-flight
		// member transfers down (see rw).
		done := sim.NewCond(p.Sim())
		pending := len(segs)
		for _, s := range segs {
			s := s
			p.Sim().SpawnChild(p, "stripe-io", func(q *sim.Proc) {
				if err := st.members[s.member].WriteBufs(q, s.phys, bufs[s.off/bs:(s.off+s.n)/bs]); err != nil && ioErr == nil {
					ioErr = err
				}
				pending--
				if pending == 0 {
					done.Signal()
				}
			})
		}
		for pending > 0 {
			done.Wait(p)
		}
	}
	st.stats.Writes++
	st.stats.WriteBytes += uint64(len(bufs) * bs)
	return ioErr
}

func (st *Stripe) rw(p *sim.Proc, blk int64, buf []byte, write bool) error {
	if len(buf)%st.BlockSize() != 0 {
		panic("disk: stripe transfer not block aligned")
	}
	segs := st.segments(blk, len(buf))
	defer func() { st.segPool = append(st.segPool, segs) }()
	if len(segs) == 1 {
		s := segs[0]
		if write {
			return st.members[s.member].WriteBlocks(p, s.phys, buf[s.off:s.off+s.n])
		}
		return st.members[s.member].ReadBlocks(p, s.phys, buf[s.off:s.off+s.n])
	}
	// Parallel member I/O: spawn a child process per segment, wait for
	// all. Children so a crash that kills the issuing process takes the
	// in-flight member transfers down with it (no posthumous writes).
	// A failing member fails the logical transfer; the other members
	// still complete their segments.
	done := sim.NewCond(p.Sim())
	pending := len(segs)
	var ioErr error
	for _, s := range segs {
		s := s
		p.Sim().SpawnChild(p, "stripe-io", func(q *sim.Proc) {
			var err error
			if write {
				err = st.members[s.member].WriteBlocks(q, s.phys, buf[s.off:s.off+s.n])
			} else {
				err = st.members[s.member].ReadBlocks(q, s.phys, buf[s.off:s.off+s.n])
			}
			if err != nil && ioErr == nil {
				ioErr = err
			}
			pending--
			if pending == 0 {
				done.Signal()
			}
		})
	}
	for pending > 0 {
		done.Wait(p)
	}
	return ioErr
}

// InjectBlock stores contents directly on the owning members (crash
// recovery replay and test setup; no simulated time).
func (st *Stripe) InjectBlock(blk int64, data []byte) {
	bs := int64(st.BlockSize())
	nb := int64(len(data)) / bs
	for i := int64(0); i < nb; i++ {
		m, phys := st.mapBlock(blk + i)
		st.members[m].InjectBlock(phys, data[i*bs:(i+1)*bs])
	}
}

// MemberTrans sums member-level transactions; the paper's per-disk
// transaction rates for stripe sets count each spindle's operations.
func (st *Stripe) MemberTrans() uint64 {
	var n uint64
	for _, m := range st.members {
		n += m.Stats().Trans()
	}
	return n
}

// MemberBytes sums member-level bytes.
func (st *Stripe) MemberBytes() uint64 {
	var n uint64
	for _, m := range st.members {
		n += m.Stats().Bytes()
	}
	return n
}
