package disk

import (
	"errors"
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

func TestInjectReadErrorOneShot(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	d.InjectReadError(100, 101, 0, 0)
	var errs []error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		errs = append(errs, d.WriteBlocks(p, 100, buf)) // writes unaffected
		errs = append(errs, d.ReadBlocks(p, 100, buf))  // the one-shot error
		errs = append(errs, d.ReadBlocks(p, 100, buf))  // rule spent
		errs = append(errs, d.ReadBlocks(p, 200, buf))  // never targeted
	})
	s.Run(0)
	want := []error{nil, ErrMedia, nil, nil}
	for i, e := range errs {
		if !errors.Is(e, want[i]) {
			t.Fatalf("op %d: err = %v, want %v", i, e, want[i])
		}
	}
}

func TestInjectReadErrorAfterOpsAndTimes(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	d.InjectReadError(0, 0, 2, 3) // whole disk: 2 ops succeed, then 3 fail
	var errs []error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		for i := 0; i < 7; i++ {
			errs = append(errs, d.ReadBlocks(p, int64(i), buf))
		}
	})
	s.Run(0)
	want := []error{nil, nil, ErrMedia, ErrMedia, ErrMedia, nil, nil}
	for i, e := range errs {
		if !errors.Is(e, want[i]) {
			t.Fatalf("op %d: err = %v, want %v", i, e, want[i])
		}
	}
}

func TestInjectReadErrorRangeTargeted(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	d.InjectReadError(10, 20, 0, 99)
	var inRange, below, above, spanning error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		below = d.ReadBlocks(p, 9, buf)
		above = d.ReadBlocks(p, 20, buf)
		inRange = d.ReadBlocks(p, 15, buf)
		// A multi-block transfer overlapping the range fails as a whole.
		spanning = d.ReadBlocks(p, 18, make([]byte, 4*8192))
	})
	s.Run(0)
	if below != nil || above != nil {
		t.Fatalf("reads outside [10,20) failed: below=%v above=%v", below, above)
	}
	if !errors.Is(inRange, ErrMedia) || !errors.Is(spanning, ErrMedia) {
		t.Fatalf("reads overlapping [10,20) did not fail: in=%v span=%v", inRange, spanning)
	}
}

func TestDegradeScalesServiceTime(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	// Same transfer inside and outside the window; the degraded one must
	// take measurably longer on an otherwise idle disk.
	d.Degrade(0, sim.Time(1*sim.Second), 4)
	var inWin, outWin sim.Duration
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		t0 := p.Sim().Now()
		d.ReadBlocks(p, 100, buf)
		inWin = p.Sim().Now().Sub(t0)
		p.Sleep(2 * sim.Second)   // window expires
		d.ReadBlocks(p, 100, buf) // same block: no seek, same base time
		t1 := p.Sim().Now()
		d.ReadBlocks(p, 100, buf)
		outWin = p.Sim().Now().Sub(t1)
	})
	s.Run(0)
	if inWin < 3*outWin {
		t.Fatalf("degraded transfer took %v, healthy %v; want ~4x", inWin, outWin)
	}
}

func TestFailStopReturnsErrorsNotPanics(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	var before, read, write, wbufs error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		before = d.WriteBlocks(p, 5, buf)
		d.Fail()
		read = d.ReadBlocks(p, 5, buf)
		write = d.WriteBlocks(p, 5, buf)
		b := block.NewPool().GetZero()
		wbufs = d.WriteBufs(p, 5, []*block.Buf{b})
		b.Release()
	})
	s.Run(0)
	if before != nil {
		t.Fatalf("pre-failure write errored: %v", before)
	}
	for i, e := range []error{read, write, wbufs} {
		if !errors.Is(e, ErrFailed) {
			t.Fatalf("post-Fail op %d: err = %v, want ErrFailed", i, e)
		}
	}
}

func TestHealClearsRules(t *testing.T) {
	s := sim.New(1)
	d := testDisk(s)
	d.InjectReadError(0, 0, 0, 99)
	d.Fail()
	d.ArmTornWrite()
	d.Heal()
	var err error
	s.Spawn("io", func(p *sim.Proc) {
		err = d.ReadBlocks(p, 0, make([]byte, 8192))
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("healed disk still errors: %v", err)
	}
	if d.TornWrites() != 0 {
		t.Fatalf("healed disk recorded torn writes: %d", d.TornWrites())
	}
}

// tornWriteKill runs one 8-block WriteBufs against a disk and kills the
// writing process mid-transfer, returning how many of the 8 blocks landed.
func tornWriteKill(t *testing.T, arm bool, seed int64) int {
	t.Helper()
	s := sim.New(seed)
	d := testDisk(s)
	if arm {
		d.ArmTornWrite()
	}
	pool := block.NewPool()
	bufs := make([]*block.Buf, 8)
	for i := range bufs {
		bufs[i] = pool.GetZero()
		bufs[i].Data()[0] = byte(i + 1)
	}
	p := s.Spawn("writer", func(p *sim.Proc) {
		d.WriteBufs(p, 64, bufs)
	})
	s.At(1*sim.Millisecond, func() { s.Kill(p) }) // well inside the ~11ms transfer
	s.Run(0)
	landed := 0
	for i := int64(0); i < 8; i++ {
		if b := d.PeekBlock(64 + i); b != nil && b[0] == byte(i+1) {
			landed++
		}
	}
	return landed
}

func TestTornWriteLandsPrefixOnKill(t *testing.T) {
	// The prefix length is drawn from the plane's own RNG; over a few
	// seeds at least one kill must land a non-empty strict prefix, and
	// none may land the full transfer.
	sawPartial := false
	for seed := int64(1); seed <= 8; seed++ {
		n := tornWriteKill(t, true, seed)
		if n == 8 {
			t.Fatalf("seed %d: torn write landed the full transfer", seed)
		}
		if n > 0 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("no seed landed a torn prefix; arming had no effect")
	}
}

func TestUnarmedKillLandsNothing(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		if n := tornWriteKill(t, false, seed); n != 0 {
			t.Fatalf("seed %d: unarmed interrupted write landed %d blocks, want 0", seed, n)
		}
	}
}

func TestFaultPlaneZeroCostWhenAbsent(t *testing.T) {
	// A healthy disk (nil plane) and a disk whose plane only ever held an
	// already-expired degrade window must produce identical service times.
	run := func(prep func(*Disk)) sim.Time {
		s := sim.New(7)
		d := testDisk(s)
		prep(d)
		s.Spawn("io", func(p *sim.Proc) {
			buf := make([]byte, 4*8192)
			for i := 0; i < 32; i++ {
				d.WriteBlocks(p, int64(i*4), buf)
				d.ReadBlocks(p, int64(i*4), buf)
			}
		})
		s.Run(0)
		return s.Now()
	}
	healthy := run(func(d *Disk) {})
	spent := run(func(d *Disk) {
		d.InjectReadError(10_000, 10_001, 0, 1) // never-touched range
	})
	if healthy != spent {
		t.Fatalf("fault plane perturbed healthy timing: %v vs %v", healthy, spent)
	}
}

func newTestStripe(s *sim.Sim, n int) (*Stripe, []*Disk) {
	var members []*Disk
	for i := 0; i < n; i++ {
		members = append(members, New(s, hw.RZ26(), nil))
	}
	return NewStripe(s, members, 8), members
}

func TestStripeMemberReadErrorFailsLogicalRange(t *testing.T) {
	s := sim.New(1)
	st, members := newTestStripe(s, 3)
	// With an 8-block stripe unit, logical blocks [8,16) live on member 1.
	members[1].InjectReadError(0, 0, 0, 99)
	var onMember, offMember, spanning error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		st.WriteBlocks(p, 0, make([]byte, 24*8192))
		onMember = st.ReadBlocks(p, 8, buf)                   // member 1
		offMember = st.ReadBlocks(p, 0, buf)                  // member 0, unaffected
		spanning = st.ReadBlocks(p, 0, make([]byte, 24*8192)) // all members
	})
	s.Run(0)
	if !errors.Is(onMember, ErrMedia) {
		t.Fatalf("read on faulted member: err = %v, want ErrMedia", onMember)
	}
	if offMember != nil {
		t.Fatalf("read on healthy member errored: %v", offMember)
	}
	if !errors.Is(spanning, ErrMedia) {
		t.Fatalf("logical transfer spanning the faulted member: err = %v, want ErrMedia", spanning)
	}
}

func TestStripeHealthyMembersUnaffectedByFailStop(t *testing.T) {
	s := sim.New(1)
	st, members := newTestStripe(s, 2)
	var preFail, postFailOther, postFailOn error
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		preFail = st.WriteBlocks(p, 0, buf)
		members[1].Fail()
		postFailOther = st.ReadBlocks(p, 0, buf) // member 0 only
		postFailOn = st.ReadBlocks(p, 8, buf)    // member 1, fail-stopped
	})
	s.Run(0)
	if preFail != nil || postFailOther != nil {
		t.Fatalf("healthy-member I/O errored: %v %v", preFail, postFailOther)
	}
	if !errors.Is(postFailOn, ErrFailed) {
		t.Fatalf("fail-stopped member: err = %v, want ErrFailed", postFailOn)
	}
}
