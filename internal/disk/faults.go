package disk

import (
	"errors"
	"math/rand"

	"repro/internal/sim"
)

// Storage fault errors. ErrMedia is an unrecoverable media error on a
// targeted block range; ErrFailed is a fail-stop controller failure (every
// subsequent operation errors).
var (
	ErrMedia  = errors.New("disk: unrecoverable media error")
	ErrFailed = errors.New("disk: device failed")
)

// plane is the injectable error/latency plane of one disk. A healthy disk
// carries a nil plane, so the unfaulted I/O path pays exactly one nil
// check — recorded benchmarks are byte-identical with the plane compiled
// in. The plane's RNG (torn-write prefix draws only) is created lazily at
// the first tear, seeded from the sim stream at that instant: merely
// arming rules that never fire consumes no randomness and leaves the
// run's service-time draws untouched.
type plane struct {
	sim       *sim.Sim
	failStop  bool
	readRules []*readRule
	degraded  []degradeWindow
	tornArmed bool
	torn      int
	rng       *rand.Rand
}

// intn draws a torn-prefix length, creating the plane RNG on first use.
func (fp *plane) intn(n int) int {
	if fp.rng == nil {
		fp.rng = rand.New(rand.NewSource(fp.sim.Rand().Int63()))
	}
	return fp.rng.Intn(n)
}

// readRule makes ReadBlocks transfers overlapping [from,to) fail with
// ErrMedia. The first afterOps matching transfers succeed (errors after N
// ops); the next times transfers fail; then the rule is spent.
type readRule struct {
	from, to int64
	afterOps int
	times    int
}

// degradeWindow multiplies the service time of every transfer issued
// within [from,to) by factor — a disk in recovery/remap mode.
type degradeWindow struct {
	from, to sim.Time
	factor   float64
}

func (d *Disk) plane() *plane {
	if d.fp == nil {
		d.fp = &plane{sim: d.sim}
	}
	return d.fp
}

// InjectReadError arms a media-error rule on blocks [from,to) (to <= 0
// means the end of the device): the first afterOps overlapping reads
// succeed, then the next times reads fail with ErrMedia (times <= 0 means
// one-shot). Writes are unaffected — a real media error is discovered on
// read-back.
func (d *Disk) InjectReadError(from, to int64, afterOps, times int) {
	if to <= 0 {
		to = d.p.NumBlocks
	}
	if times <= 0 {
		times = 1
	}
	if afterOps < 0 {
		afterOps = 0
	}
	d.plane().readRules = append(d.plane().readRules, &readRule{from: from, to: to, afterOps: afterOps, times: times})
}

// Degrade multiplies the service time of transfers issued within [from,to)
// by factor (a disk doing internal recovery). Factor <= 1 is a no-op.
func (d *Disk) Degrade(from, to sim.Time, factor float64) {
	if factor <= 1 {
		return
	}
	d.plane().degraded = append(d.plane().degraded, degradeWindow{from: from, to: to, factor: factor})
}

// ArmTornWrite arms the torn-write failure mode: a multi-block WriteBufs
// interrupted by a crash persists a prefix of its blocks instead of
// nothing (the conservative default). It stays armed until Heal.
func (d *Disk) ArmTornWrite() { d.plane().tornArmed = true }

// Fail is the fail-stop case of the fault plane: every subsequent
// operation returns ErrFailed (a dead controller).
func (d *Disk) Fail() { d.plane().failStop = true }

// Heal clears armed read-error rules, torn-write arming and fail-stop so a
// post-run durability audit reads the platters unimpeded. Degrade windows
// are time-bounded and expire on their own.
func (d *Disk) Heal() {
	if d.fp == nil {
		return
	}
	d.fp.readRules = nil
	d.fp.tornArmed = false
	d.fp.failStop = false
}

// TornWrites reports how many interrupted transfers landed a torn prefix.
func (d *Disk) TornWrites() int {
	if d.fp == nil {
		return 0
	}
	return d.fp.torn
}

// readErr consumes at most one matching read rule for a transfer of nb
// blocks at blk and reports whether the transfer fails.
func (fp *plane) readErr(blk int64, nb int64) error {
	for i := 0; i < len(fp.readRules); i++ {
		r := fp.readRules[i]
		if blk >= r.to || blk+nb <= r.from {
			continue
		}
		if r.afterOps > 0 {
			r.afterOps--
			return nil
		}
		r.times--
		if r.times <= 0 {
			fp.readRules = append(fp.readRules[:i], fp.readRules[i+1:]...)
		}
		return ErrMedia
	}
	return nil
}

// scale applies any degrade window covering now to st.
func (fp *plane) scale(now sim.Time, st sim.Duration) sim.Duration {
	for _, w := range fp.degraded {
		if now >= w.from && now < w.to {
			st = sim.Duration(float64(st) * w.factor)
		}
	}
	return st
}
