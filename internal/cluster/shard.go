package cluster

import (
	"repro/internal/client"
	"repro/internal/nfsproto"
)

// ShardMap is the deterministic export-sharding map: it fixes, for any
// file handle or placement key, which server shard owns it. Handles
// resolve by their FSID (a handle is born on exactly one export); new
// placements resolve by an FNV-1a hash of the key over the shard count, so
// every participant — clients placing files, experiments reading results,
// the fault injector picking victims — computes the same placement with no
// coordination.
type ShardMap struct {
	nodes  []*Node
	byFSID map[uint32]*Node
}

func newShardMap(nodes []*Node) *ShardMap {
	m := &ShardMap{nodes: nodes, byFSID: make(map[uint32]*Node, len(nodes))}
	for _, n := range nodes {
		m.byFSID[n.FSID] = n
	}
	return m
}

// Len reports the shard count.
func (m *ShardMap) Len() int { return len(m.nodes) }

// ByHandle resolves the node currently serving a file handle (nil for an
// unknown export). After a failover this is the adopter, not the dead
// shard the handle was born on — handles keep their FSID across the
// migration.
func (m *ShardMap) ByHandle(fh nfsproto.FH) *Node { return m.byFSID[fh.FSID()] }

// reassign moves an export's ownership to a new serving node (failover).
func (m *ShardMap) reassign(fsid uint32, n *Node) { m.byFSID[fsid] = n }

// ByKey places a key (typically a file name) on its shard, using the
// cluster-wide placement function (client.ShardIndex) that workloads use
// to spread working sets.
func (m *ShardMap) ByKey(key string) *Node {
	return m.nodes[client.ShardIndex(key, len(m.nodes))]
}
