// Package cluster composes scale-out testbeds: N LADDIS-class clients and
// M NFS server shards on one simulated medium. Each server exports its own
// filesystem (a distinct FSID); a deterministic shard map places working
// files on exports and routes every RPC to the server owning its handle.
//
// Nodes are built to be crashed: all volatile state (nfsd pool, socket
// buffer, buffer cache, dup cache) hangs off per-boot objects that a crash
// discards, while the platters — and, with Presto, the battery-backed
// NVRAM dirty map — survive and seed the reboot. internal/fault drives the
// crash/recovery schedule; this package owns the structural transitions.
package cluster

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/nvram"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/vfs"
)

// Config selects one cluster build.
type Config struct {
	// Net selects the LAN (hw.Ethernet() or hw.FDDI()).
	Net hw.NetParams
	// Segments, when non-empty, replaces the single Net medium with a
	// bridged fabric of named segments (see netsim.Fabric). Hosts land
	// on the root segment unless placed elsewhere by ServerSegment,
	// ClientSegment, a NodeConfig or a ClientGroup.
	Segments []netsim.SegmentSpec
	// ServerSegment places the server shards (default: the root).
	ServerSegment string
	// ClientSegment places the homogeneous client population when
	// ClientGroups is empty (default: the root).
	ClientSegment string
	// Clients and Servers are the node counts.
	Clients int
	Servers int
	// Presto interposes an NVRAM board in front of every server's disks.
	Presto bool
	// Gathering enables the write gathering engine on every server.
	Gathering bool
	// GatherOverride replaces the default engine policy when non-nil.
	GatherOverride *core.Config
	// StripeDisks is the spindle count per server (1 = lone RZ26).
	StripeDisks int
	// NumNfsds is the daemon pool size per server.
	NumNfsds int
	// Biods per client (0 = fully synchronous writes).
	Biods int
	// CPUScale divides every server CPU cost.
	CPUScale float64
	// Seed drives all randomness.
	Seed int64
	// Inodes sizes each server's inode table (default 512).
	Inodes int
	// RecordReplies keeps per-server WRITE reply logs for crash audits.
	RecordReplies bool
	// ClientRetries overrides the clients' RPC attempt bound; crash rigs
	// raise it so calls ride out a server outage (default 8).
	ClientRetries int
	// Nodes optionally deviates individual servers from the homogeneous
	// settings above (index-aligned; missing or nil entries keep the
	// defaults). Overrides survive crash/reboot cycles: a node rebuilds
	// its device stack and daemon pool from its own resolved settings.
	Nodes []NodeConfig
	// ClientGroups optionally replaces Clients/Biods/ClientRetries with
	// heterogeneous client populations. Client numbering is continuous
	// across groups (client1, client2, ...), so a single-group spec is
	// identical to the homogeneous form.
	ClientGroups []ClientGroup
	// Acct is the buffer ledger every pool in the cluster charges (nil =
	// the process-global one). The scenario engine gives each cell its
	// own, making the per-cell leak audit exact and immune to whatever
	// concurrently executing cells do to their own ledgers.
	Acct *block.Accounting
	// OnServerUp, when non-nil, fires every time a server instance starts
	// serving — initial boot, reboot, and adoption takeover — with the
	// instance and the NVRAM board (nil without Presto) of its boot.
	// Server instances are replaced wholesale on these transitions, so
	// observers use this to (re)install their hooks on the fresh objects.
	OnServerUp func(srv *server.Server, presto *nvram.Presto)
}

// NodeConfig is one server's deviation from the cluster-wide settings.
// Nil fields inherit the homogeneous Config value.
type NodeConfig struct {
	Presto      *bool
	StripeDisks *int
	NumNfsds    *int
	Inodes      *int
	// Segment places this shard on a named fabric segment, overriding
	// Config.ServerSegment. Requires Config.Segments.
	Segment *string
}

// ClientGroup is one homogeneous client population.
type ClientGroup struct {
	// Count is the number of client hosts in the group.
	Count int
	// Biods per client (0 = fully synchronous writes).
	Biods int
	// MaxRetries overrides the RPC attempt bound (0 keeps the default).
	MaxRetries int
	// Segment places the group's hosts on a named fabric segment
	// (default: the root). Requires Config.Segments.
	Segment string
}

// AdoptedExport is a dead peer's filesystem served by a surviving node
// after a shard failover: the peer's platters (and battery-backed NVRAM
// dirty map, already replayed) mounted under the adopter, with a fresh
// server instance on its own endpoint sharing the adopter's CPU. The
// export keeps its FSID, so every file handle born on the dead shard
// stays valid — clients just reroute.
type AdoptedExport struct {
	FSID   uint32
	From   *Node // the dead shard the platters came from
	FS     *ufs.FS
	Server *server.Server
	Presto *nvram.Presto
}

// Node is one server shard with its full device stack.
type Node struct {
	Name  string
	Index int
	FSID  uint32
	// Boots counts completed boot cycles (1 after New).
	Boots int
	// Down is true between Crash and the end of Reboot.
	Down bool
	// Rebooting is true while a Reboot is remounting (Down still true):
	// the window where a failover must not adopt the same platters.
	Rebooting bool
	// RecoveredBlocks totals NVRAM dirty blocks replayed onto the
	// platters across all reboots (0 without Presto).
	RecoveredBlocks int
	// DroppedNVRAMBlocks totals dirty blocks a lying NVRAM board discarded
	// at a power event instead of replaying (the acked data it lost).
	DroppedNVRAMBlocks int

	Server *server.Server
	FS     *ufs.FS
	Disks  []*disk.Disk
	Stripe *disk.Stripe
	Presto *nvram.Presto
	// Adopted lists dead peers' exports this node took over (Adopt). They
	// are part of the node's volatile serving state: a crash of the
	// adopter drops them (the platters survive on the dead peer, but
	// nobody serves them again).
	Adopted []*AdoptedExport

	c *Cluster
	// net is the segment this shard's NIC attaches to (the cluster-wide
	// network without a fabric).
	net *netsim.Network
	// mkfs is the boot-time image flusher (only meaningful for the first
	// boot; killed by Crash like every other host process).
	mkfs *sim.Proc

	// Resolved per-node build settings (Config defaults plus this node's
	// NodeConfig overrides); Crash/Reboot rebuilds from these.
	presto      bool
	stripeDisks int
	numNfsds    int
	inodes      int
	segment     string

	// Measurement marks (IntervalStats).
	cpuMark   sim.Duration
	transMark uint64
	bytesMark uint64
}

// Cluster is an assembled scale-out testbed.
type Cluster struct {
	Sim *sim.Sim
	// Net is the servers' default segment: the lone medium without a
	// fabric, the ServerSegment (or root) network with one.
	Net *netsim.Network
	// Fabric is the bridged segment tree (nil without Config.Segments).
	Fabric  *netsim.Fabric
	Nodes   []*Node
	Clients []*client.Client
	Shards  *ShardMap

	cfg      Config
	costs    hw.CPUParams
	timeMark sim.Time
}

// New builds the full cluster for cfg. Every node's on-disk image is made
// mountable immediately (superblock and root inode flushed at t=0), so a
// crash injector may fire at any time.
func New(cfg Config) *Cluster {
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	if cfg.Servers == 0 {
		cfg.Servers = 1
	}
	if cfg.StripeDisks == 0 {
		cfg.StripeDisks = 1
	}
	if cfg.NumNfsds == 0 {
		cfg.NumNfsds = 8
	}
	if cfg.Inodes == 0 {
		cfg.Inodes = 512
	}
	s := sim.New(cfg.Seed)
	costs := hw.DEC3000CPU()
	if cfg.CPUScale > 1 {
		costs = costs.Scale(cfg.CPUScale)
	}
	c := &Cluster{
		Sim:   s,
		cfg:   cfg,
		costs: costs,
	}
	if len(cfg.Segments) > 0 {
		c.Fabric = netsim.NewFabric(s, cfg.Segments)
		c.Net = c.Fabric.Segment(cfg.ServerSegment)
	} else {
		c.Net = netsim.New(s, cfg.Net)
	}

	for i := 0; i < cfg.Servers; i++ {
		n := &Node{
			Name:        serverName(i),
			Index:       i,
			FSID:        uint32(i + 1),
			c:           c,
			presto:      cfg.Presto,
			stripeDisks: cfg.StripeDisks,
			numNfsds:    cfg.NumNfsds,
			inodes:      cfg.Inodes,
			segment:     cfg.ServerSegment,
		}
		if i < len(cfg.Nodes) {
			o := cfg.Nodes[i]
			if o.Presto != nil {
				n.presto = *o.Presto
			}
			if o.StripeDisks != nil && *o.StripeDisks > 0 {
				n.stripeDisks = *o.StripeDisks
			}
			if o.NumNfsds != nil && *o.NumNfsds > 0 {
				n.numNfsds = *o.NumNfsds
			}
			if o.Inodes != nil && *o.Inodes > 0 {
				n.inodes = *o.Inodes
			}
			if o.Segment != nil && *o.Segment != "" {
				n.segment = *o.Segment
			}
		}
		n.net = c.Net
		if c.Fabric != nil {
			n.net = c.Fabric.Segment(n.segment)
			c.Fabric.Place(n.Name, n.segment)
		}
		for d := 0; d < n.stripeDisks; d++ {
			n.Disks = append(n.Disks, disk.New(s, hw.RZ26(), cfg.Acct))
		}
		if n.stripeDisks > 1 {
			n.Stripe = disk.NewStripe(s, n.Disks, 8) // 64K stripe unit
		}
		dev, cpu := n.buildDeviceStack()
		fs, err := ufs.Format(s, dev, n.FSID, n.inodes, cfg.Acct)
		if err != nil {
			panic("cluster: " + err.Error())
		}
		n.FS = fs
		n.startServer(fs, cpu)
		// Make the fresh image crash-mountable: flush the superblock and
		// the root inode before any load arrives. The flusher is part of
		// the node's volatile state — a crash in the first instants must
		// kill it too, or it would land platter writes posthumously.
		n.mkfs = s.Spawn(n.Name+"-mkfs", func(p *sim.Proc) {
			// A storage fault can fail the initial flush; retry briefly
			// (consuming transient media-error rules) before giving up.
			for attempt := 0; ; attempt++ {
				err := fs.WriteSuper(p)
				if err == nil {
					err = fs.Fsync(p, fs.Root(), vfs.FWrite|vfs.FWriteMetadata)
				}
				if err == nil {
					return
				}
				if attempt >= 4 {
					panic("cluster: initial root flush: " + err.Error())
				}
				p.Sleep(10 * sim.Millisecond)
			}
		})
		c.Nodes = append(c.Nodes, n)
	}
	c.Shards = newShardMap(c.Nodes)

	groups := cfg.ClientGroups
	if len(groups) == 0 {
		groups = []ClientGroup{{Count: cfg.Clients, Biods: cfg.Biods,
			MaxRetries: cfg.ClientRetries, Segment: cfg.ClientSegment}}
	}
	idx := 0
	for _, g := range groups {
		cnet := c.Net
		if c.Fabric != nil {
			cnet = c.Fabric.Segment(g.Segment)
		}
		for i := 0; i < g.Count; i++ {
			idx++
			name := fmt.Sprintf("client%d", idx)
			cli := client.New(s, cnet, name, c.Nodes[0].Name,
				hw.DEC3000Client(), g.Biods, cfg.Acct)
			if c.Fabric != nil {
				c.Fabric.Place(name, g.Segment)
			}
			for _, n := range c.Nodes {
				cli.AddRoute(n.FSID, n.Name)
			}
			if g.MaxRetries > 0 {
				cli.MaxRetries = g.MaxRetries
			}
			c.Clients = append(c.Clients, cli)
		}
	}
	return c
}

func serverName(i int) string { return fmt.Sprintf("server%d", i+1) }

// mountRetry mounts with a bounded retry: a transient media error during
// the superblock or inode-region read is absorbed the way disk firmware
// absorbs it (retry the transfer); a persistent failure surfaces to the
// caller. Healthy devices mount on the first attempt, identically to
// before.
func mountRetry(s *sim.Sim, p *sim.Proc, dev disk.Device, acct *block.Accounting) (*ufs.FS, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var fs *ufs.FS
		fs, err = ufs.Mount(s, p, dev, acct)
		if err == nil {
			return fs, nil
		}
	}
	return nil, err
}

// raw returns the bottom of the node's device stack (the persistent part).
func (n *Node) raw() disk.Device {
	if n.Stripe != nil {
		return n.Stripe
	}
	return n.Disks[0]
}

// buildDeviceStack assembles the per-boot device stack over the persistent
// disks: CPU charge wrappers and, when configured, a fresh Presto board.
// It returns the nfsd-visible device and the boot's CPU resource.
func (n *Node) buildDeviceStack() (disk.Device, *sim.Resource) {
	s := n.c.Sim
	costs := n.c.costs
	cpu := sim.NewResource(s, 1)
	dev := disk.Device(server.NewChargedDevice(n.raw(), cpu, costs.DriverTrip))
	if n.presto {
		n.Presto = nvram.New(s, hw.Prestoserve(), dev, n.c.cfg.Acct)
		dev = server.NewChargedNVRAM(n.Presto, cpu, costs.DriverTrip,
			costs.NVRAMCopyPer8K, hw.Prestoserve().MaxIO)
	}
	return dev, cpu
}

// newServer builds one server instance over fs — a node's boot or an
// adopted export's takeover instance. It is the single source of the
// config defaulting, gather policy, boot-verifier formula (index and
// boot count identify the export's instance; clients detect the change
// and know the dup cache died) and metadata charge hook, so rebooted and
// adopted servers can never silently diverge.
func (c *Cluster) newServer(net *netsim.Network, name string, fs *ufs.FS, cpu *sim.Resource, nfsds int, presto bool, index, boots int) *server.Server {
	cfg := c.cfg
	costs := c.costs
	scfg := server.Config{
		Name:          name,
		NumNfsds:      nfsds,
		Gathering:     cfg.Gathering,
		Costs:         costs,
		Accelerated:   presto,
		RecordReplies: cfg.RecordReplies,
		CPU:           cpu,
		BootVerifier:  uint64(index+1)<<32 | uint64(boots+1),
	}
	if cfg.Gathering {
		if cfg.GatherOverride != nil {
			scfg.Gather = *cfg.GatherOverride
		} else {
			scfg.Gather = core.DefaultConfig(presto, net.Params().Procrastinate)
		}
	}
	srv := server.New(c.Sim, net, fs, scfg)
	fs.ChargeMeta = func(p *sim.Proc) { srv.CPU().Use(p, costs.MetaUpdate) }
	return srv
}

// startServer attaches a fresh server instance (a boot) over fs.
func (n *Node) startServer(fs *ufs.FS, cpu *sim.Resource) {
	n.Server = n.c.newServer(n.net, n.Name, fs, cpu, n.numNfsds, n.presto, n.Index, n.Boots)
	n.Boots++
	n.Down = false
	if n.c.cfg.OnServerUp != nil {
		n.c.cfg.OnServerUp(n.Server, n.Presto)
	}
}

// Crash kills the node instantaneously: nfsd state, socket buffers, the
// buffer cache and the dup cache are lost; the platters and the NVRAM
// dirty map survive. In-flight disk transfers die mid-air (their bytes
// never land) exactly as a power failure would lose them.
func (n *Node) Crash() {
	if n.Down {
		return
	}
	s := n.c.Sim
	for _, pr := range n.Server.Procs() {
		s.Kill(pr)
	}
	if n.Presto != nil {
		for _, pr := range n.Presto.Procs() {
			s.Kill(pr)
		}
	}
	s.Kill(n.mkfs)
	n.net.Detach(n.Name)
	// Adopted exports are volatile serving state: the dead peers' platters
	// survive (they are the peers'), but this host's server instances,
	// caches and replacement NVRAM boards die with it, and nothing brings
	// the exports back — a rebooted adopter does not re-adopt.
	for _, ex := range n.Adopted {
		for _, pr := range ex.Server.Procs() {
			s.Kill(pr)
		}
		if ex.Presto != nil {
			for _, pr := range ex.Presto.Procs() {
				s.Kill(pr)
			}
			// The replacement board sits on the dead peer's tray: its
			// battery-backed dirty map survives this host's crash, carried
			// by the peer again (and replayed if that box ever powers on).
			ex.From.Presto = ex.Presto
			ex.Presto = nil
		}
		n.net.Detach(ex.Server.Endpoint().Name)
		ex.FS.DropCaches()
		ex.FS = nil
		ex.Server = nil
	}
	n.Adopted = nil
	// The in-core filesystem dies with the host; Reboot remounts from the
	// platters. DropCaches releases the buffer cache's block references
	// (host memory is gone; contents shared with the platter store and the
	// battery-backed NVRAM dirty map live on there). The old Presto board
	// object survives only as the carrier of that dirty map.
	n.FS.DropCaches()
	n.FS = nil
	n.Server = nil
	n.Down = true
}

// Reboot brings the node back: the NVRAM recovery flush replays the dirty
// map onto the platters (battery-backed, no host time), then the boot
// remounts the filesystem — reading the inode region back at real device
// speed, which is the recovery time the experiment reports — and starts a
// fresh server instance with a new boot verifier. The caller provides the
// boot process.
func (n *Node) Reboot(p *sim.Proc) error {
	if !n.Down {
		return fmt.Errorf("cluster: reboot of running node %s", n.Name)
	}
	n.Rebooting = true
	defer func() { n.Rebooting = false }()
	if n.Presto != nil {
		if n.Presto.Lying() {
			// A lying board's "battery-backed" dirty map evaporates at the
			// power event: the acked writes it held are gone.
			n.DroppedNVRAMBlocks += n.Presto.DropDirty()
		} else {
			// The replay targets the same device bottom the new stack mounts
			// (disk and stripe both take platter-level injections).
			n.RecoveredBlocks += n.Presto.Recover(n.raw().(nvram.BlockInjector))
		}
		n.Presto = nil
	}
	dev, cpu := n.buildDeviceStack()
	fs, err := mountRetry(n.c.Sim, p, dev, n.c.cfg.Acct)
	if err != nil {
		return fmt.Errorf("cluster: remount %s: %w", n.Name, err)
	}
	n.FS = fs
	n.startServer(fs, cpu)
	return nil
}

// Adopt mounts a dead peer's disks under this node — the shard-failover
// recovery step. The peer's battery-backed NVRAM dirty map replays onto
// its platters first (the board travels with the disk tray), then the
// adopter remounts the filesystem at device speed and starts a dedicated
// server instance for it on its own endpoint, sharing this node's CPU:
// the takeover is free in hardware but every adopted RPC now contends
// with the adopter's own load. The export keeps the dead shard's FSID,
// so existing file handles stay valid; the cluster reroutes every client
// and reassigns shard-map ownership. The caller provides the takeover
// process (its elapsed time is the remount, as for Reboot).
func (n *Node) Adopt(p *sim.Proc, dead *Node) error {
	if n.Down {
		return fmt.Errorf("cluster: %s cannot adopt while down", n.Name)
	}
	if !dead.Down {
		return fmt.Errorf("cluster: adopting running node %s", dead.Name)
	}
	if dead.Presto != nil {
		if dead.Presto.Lying() {
			dead.DroppedNVRAMBlocks += dead.Presto.DropDirty()
		} else {
			dead.RecoveredBlocks += dead.Presto.Recover(dead.raw().(nvram.BlockInjector))
		}
		dead.Presto = nil
	}
	s := n.c.Sim
	costs := n.c.costs
	cpu := n.Server.CPU()
	dev := disk.Device(server.NewChargedDevice(dead.raw(), cpu, costs.DriverTrip))
	ex := &AdoptedExport{FSID: dead.FSID, From: dead}
	if dead.presto {
		ex.Presto = nvram.New(s, hw.Prestoserve(), dev, n.c.cfg.Acct)
		dev = server.NewChargedNVRAM(ex.Presto, cpu, costs.DriverTrip,
			costs.NVRAMCopyPer8K, hw.Prestoserve().MaxIO)
	}
	fs, err := mountRetry(s, p, dev, n.c.cfg.Acct)
	if err != nil {
		return fmt.Errorf("cluster: adopt %s on %s: %w", dead.Name, n.Name, err)
	}
	ex.FS = fs
	// The adoption is the export's next boot — same verifier formula as a
	// reboot, so clients that talked to the dead shard see the change and
	// know the dup cache is gone.
	name := fmt.Sprintf("%s+%s", n.Name, dead.Name)
	ex.Server = n.c.newServer(n.net, name, fs, cpu, dead.numNfsds, dead.presto, dead.Index, dead.Boots)
	// The adopted export lives on the adopter's segment now; re-placing
	// it repoints every other segment's route at the survivor, so the
	// dead shard's handles stay reachable across bridges.
	if n.c.Fabric != nil {
		n.c.Fabric.Place(name, n.segment)
	}
	// The new endpoint rides the adopter's NIC: if that attachment is
	// currently severed, the adopted export is born cut off too.
	if n.Server.Endpoint().LinkDown() {
		n.net.SetLinkDown(name, true)
	}
	n.Adopted = append(n.Adopted, ex)
	n.c.Shards.reassign(dead.FSID, n)
	for _, cli := range n.c.Clients {
		cli.AddRoute(dead.FSID, name)
	}
	if n.c.cfg.OnServerUp != nil {
		n.c.cfg.OnServerUp(ex.Server, ex.Presto)
	}
	return nil
}

// SetHostLinkDown severs or restores a host NIC by name, wherever the
// host lives: on the fabric it sweeps every segment (unknown names are
// a no-op per segment), without one it acts on the lone medium.
func (c *Cluster) SetHostLinkDown(name string, down bool) {
	if c.Fabric != nil {
		c.Fabric.SetLinkDown(name, down)
		return
	}
	c.Net.SetLinkDown(name, down)
}

// SetUplinkDown severs or restores a fabric segment's uplink port,
// partitioning the whole segment from the rest of the tree. It reports
// whether the segment exists and has an uplink (false without a fabric
// or for the root).
func (c *Cluster) SetUplinkDown(segment string, down bool) bool {
	if c.Fabric == nil {
		return false
	}
	return c.Fabric.SetUplinkDown(segment, down)
}

// FSByFSID resolves the mounted filesystem currently serving an export:
// the owning node's own filesystem, or the adopter's mounted copy after
// a failover. Nil when nobody serves it (the owner is down with no
// adopter, or the adopter crashed).
func (c *Cluster) FSByFSID(fsid uint32) *ufs.FS {
	n := c.Shards.byFSID[fsid]
	if n == nil {
		return nil
	}
	if n.FSID == fsid {
		return n.FS
	}
	for _, ex := range n.Adopted {
		if ex.FSID == fsid {
			return ex.FS
		}
	}
	return nil
}

// NodeByFSID resolves the owning node of an export.
func (c *Cluster) NodeByFSID(fsid uint32) *Node {
	for _, n := range c.Nodes {
		if n.FSID == fsid {
			return n
		}
	}
	return nil
}

// Roots returns one exported root handle per node, in node order — the
// shard roots a sharded workload spreads its files across.
func (c *Cluster) Roots() []nfsproto.FH {
	roots := make([]nfsproto.FH, len(c.Nodes))
	for i, n := range c.Nodes {
		roots[i] = nfsproto.NewFH(n.FSID, uint64(n.FS.Root()), 0)
	}
	return roots
}

// AccountedRefs sums the buffer references the cluster's long-lived
// structures legitimately retain — buffer caches, platter stores and
// NVRAM dirty maps, own and adopted. After a full quiesce, the process
// block-reference total minus the pre-build baseline must equal exactly
// this sum: any surplus is a reference leaked through an unwind path,
// any deficit a double release. The scenario runner audits it per cell.
func (c *Cluster) AccountedRefs() int64 {
	var n int64
	for _, node := range c.Nodes {
		if node.FS != nil {
			n += int64(node.FS.CachedBufs())
		}
		for _, d := range node.Disks {
			n += int64(d.StoredBufs())
		}
		if node.Presto != nil {
			n += int64(node.Presto.DirtyBufs())
		}
		for _, ex := range node.Adopted {
			if ex.FS != nil {
				n += int64(ex.FS.CachedBufs())
			}
			if ex.Presto != nil {
				n += int64(ex.Presto.DirtyBufs())
			}
		}
	}
	return n
}

// MarkInterval starts a measurement interval on every node.
func (c *Cluster) MarkInterval() {
	c.timeMark = c.Sim.Now()
	for _, n := range c.Nodes {
		if n.Server != nil {
			n.cpuMark = n.Server.CPUBusy()
		} else {
			n.cpuMark = 0
		}
		n.transMark, n.bytesMark = n.diskTotals()
	}
}

func (n *Node) diskTotals() (uint64, uint64) {
	var trans, bytes uint64
	for _, d := range n.Disks {
		trans += d.Stats().Trans()
		bytes += d.Stats().Bytes()
	}
	return trans, bytes
}

// NodeStats is one node's interval roll-up.
type NodeStats struct {
	Name       string
	CPUPercent float64
	DiskKBps   float64
	DiskTps    float64
	Boots      int
}

// Stats is the cluster-wide interval roll-up.
type Stats struct {
	Nodes []NodeStats
	// CPUMeanPercent and CPUMaxPercent summarize server CPU load across
	// shards; skew between them exposes an unbalanced shard map.
	CPUMeanPercent float64
	CPUMaxPercent  float64
	DiskKBps       float64
	DiskTps        float64
	// Retransmissions sums client retransmissions (outages inflate it).
	Retransmissions uint64
	// RebootsSeen sums boot-verifier changes clients observed.
	RebootsSeen uint64
}

// IntervalStats reports per-node and aggregate rates since MarkInterval.
// A node rebooted mid-interval reports the CPU busy time of its current
// boot only (clamped, never negative).
func (c *Cluster) IntervalStats() Stats {
	elapsed := c.Sim.Now().Sub(c.timeMark)
	var st Stats
	if elapsed <= 0 {
		return st
	}
	sec := elapsed.Seconds()
	for _, n := range c.Nodes {
		ns := NodeStats{Name: n.Name, Boots: n.Boots}
		if n.Server != nil {
			busy := n.Server.CPUBusy() - n.cpuMark
			if busy < 0 {
				busy = n.Server.CPUBusy()
			}
			ns.CPUPercent = 100 * float64(busy) / float64(elapsed)
		}
		trans, bytes := n.diskTotals()
		ns.DiskKBps = float64(bytes-n.bytesMark) / 1024 / sec
		ns.DiskTps = float64(trans-n.transMark) / sec
		st.Nodes = append(st.Nodes, ns)
		st.CPUMeanPercent += ns.CPUPercent
		if ns.CPUPercent > st.CPUMaxPercent {
			st.CPUMaxPercent = ns.CPUPercent
		}
		st.DiskKBps += ns.DiskKBps
		st.DiskTps += ns.DiskTps
	}
	st.CPUMeanPercent /= float64(len(c.Nodes))
	for _, cli := range c.Clients {
		st.Retransmissions += cli.Retransmissions
		st.RebootsSeen += cli.RebootsSeen
	}
	return st
}
