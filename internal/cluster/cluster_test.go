package cluster

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestShardMapDeterministic: placement is stable across builds and spreads
// keys over every shard.
func TestShardMapDeterministic(t *testing.T) {
	build := func() []int {
		c := New(Config{Net: hw.FDDI(), Clients: 1, Servers: 4, Seed: 3})
		var idx []int
		for i := 0; i < 64; i++ {
			idx = append(idx, c.Shards.ByKey(fmt.Sprintf("file-%d", i)).Index)
		}
		return idx
	}
	a, b := build(), build()
	hit := make(map[int]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement of key %d differs across builds: %d vs %d", i, a[i], b[i])
		}
		hit[a[i]] = true
	}
	if len(hit) != 4 {
		t.Fatalf("64 keys covered only %d of 4 shards", len(hit))
	}
}

// TestMultiClientMultiServerCopies: four clients copy files onto two
// sharded servers concurrently; every byte reads back, and both shards
// carry load.
func TestMultiClientMultiServerCopies(t *testing.T) {
	c := New(Config{
		Net: hw.FDDI(), Clients: 4, Servers: 2,
		Gathering: true, Biods: 4, Seed: 11,
	})
	roots := c.Roots()
	const size = 256 * 1024
	done := 0
	for i, cli := range c.Clients {
		i, cli := i, cli
		c.Sim.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("copy-%d.dat", i)
			root := roots[c.Shards.ByKey(name).Index]
			if _, err := workload.FileCopy(p, cli, root, name, size); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			done++
		})
	}
	c.Sim.Run(0)
	if done != 4 {
		t.Fatalf("only %d/4 copies completed", done)
	}

	// Both shards should have executed writes.
	for _, n := range c.Nodes {
		writes := uint64(0)
		if ctr, ok := n.Server.OpCounts[nfsproto.ProcWrite]; ok {
			writes = ctr.Ops
		}
		if writes == 0 {
			t.Errorf("%s executed no writes; shard map did not spread load", n.Name)
		}
	}
	stats := c.IntervalStats()
	if len(stats.Nodes) != 2 {
		t.Fatalf("stats cover %d nodes", len(stats.Nodes))
	}

	// Verify one file's bytes server-side through the owning shard.
	name := "copy-0.dat"
	n := c.Shards.ByKey(name)
	var verified bool
	c.Sim.Spawn("verify", func(p *sim.Proc) {
		ino, err := n.FS.Lookup(p, n.FS.Root(), name)
		if err != nil {
			t.Errorf("lookup on shard: %v", err)
			return
		}
		buf := make([]byte, 8192)
		want := make([]byte, 8192)
		for off := 0; off < size; off += 8192 {
			if _, err := n.FS.Read(p, ino, uint32(off), buf); err != nil {
				t.Errorf("read at %d: %v", off, err)
				return
			}
			fillPattern(want, uint32(off))
			for j := range buf {
				if buf[j] != want[j] {
					t.Errorf("byte %d mismatch", off+j)
					return
				}
			}
		}
		verified = true
	})
	c.Sim.Run(0)
	if !verified {
		t.Fatal("content verification did not complete")
	}
}

// fillPattern mirrors client.FillPattern's reference form.
func fillPattern(buf []byte, off uint32) {
	for i := range buf {
		x := off + uint32(i)
		buf[i] = byte(x*2654435761 + x>>13)
	}
}

// TestCrashRebootRoundTrip: a node crashes mid-idle, reboots, and serves
// again; pre-crash durable files survive, and the client observes the new
// boot verifier.
func TestCrashRebootRoundTrip(t *testing.T) {
	c := New(Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Seed: 5, ClientRetries: 20,
	})
	cli := c.Clients[0]
	node := c.Nodes[0]
	root := c.Roots()[0]

	var phase2 nfsproto.FH
	ok := false
	c.Sim.Spawn("app", func(p *sim.Proc) {
		// Phase 1: durable write before the crash.
		cres, err := cli.Create(p, root, "pre.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		fh := cres.File
		buf := make([]byte, 8192)
		fillPattern(buf, 0)
		if err := cli.WriteSync(p, fh, 0, buf); err != nil {
			t.Errorf("write: %v", err)
			return
		}

		// Crash + 200 ms outage + reboot.
		node.Crash()
		if !node.Down {
			t.Error("node not down after crash")
		}
		p.Sleep(200 * sim.Millisecond)
		if err := node.Reboot(p); err != nil {
			t.Errorf("reboot: %v", err)
			return
		}
		if node.Boots != 2 {
			t.Errorf("boots = %d, want 2", node.Boots)
		}

		// Phase 2: the same handle must still resolve (same ino/gen on the
		// remounted fs), and new work must succeed.
		res, err := cli.Getattr(p, fh)
		if err != nil || res.Status != nfsproto.OK {
			t.Errorf("getattr after reboot: %v %v", err, res)
			return
		}
		if res.Attr.Size != 8192 {
			t.Errorf("post-reboot size = %d, want 8192", res.Attr.Size)
		}
		cres2, err := cli.Create(p, root, "post.dat", 0644)
		if err != nil || cres2.Status != nfsproto.OK {
			t.Errorf("create after reboot: %v %v", err, cres2)
			return
		}
		phase2 = cres2.File
		if err := cli.WriteSync(p, phase2, 0, buf); err != nil {
			t.Errorf("write after reboot: %v", err)
			return
		}
		ok = true
	})
	c.Sim.Run(0)
	if !ok {
		t.Fatal("crash/reboot round trip did not complete")
	}
	if cli.RebootsSeen != 1 {
		t.Fatalf("client saw %d reboots, want 1 (boot verifier change)", cli.RebootsSeen)
	}

	// The durability core: pre-crash acked bytes are on the remounted fs.
	var bytesOK bool
	c.Sim.Spawn("verify", func(p *sim.Proc) {
		ino, err := node.FS.Lookup(p, node.FS.Root(), "pre.dat")
		if err != nil {
			t.Errorf("pre.dat lost across crash: %v", err)
			return
		}
		buf := make([]byte, 8192)
		want := make([]byte, 8192)
		if _, err := node.FS.Read(p, ino, 0, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		fillPattern(want, 0)
		for j := range buf {
			if buf[j] != want[j] {
				t.Errorf("pre-crash acked byte %d corrupted", j)
				return
			}
		}
		bytesOK = true
	})
	c.Sim.Run(0)
	if !bytesOK {
		t.Fatal("post-crash verification did not complete")
	}
}
