package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Ablations probe the design choices the paper discusses:
//
//   - reply order (§6.7): FIFO vs the abandoned LIFO;
//   - the procrastination interval (§6.6): the paper derived 8 ms/5 ms
//     empirically and admits "I wish I could say I know how to calculate
//     the right number";
//   - the [SIVA93] first-write-as-latency-device policy (§6.6);
//   - the mbuf hunter (§6.5), which matters most under NVRAM;
//   - gathering with a single nfsd (§6.1's claim that the architecture
//     achieves optimal gathering with as few as one daemon).

// AblationResult is one labelled copy measurement.
type AblationResult struct {
	Label      string
	ClientKBps float64
	CPUPercent float64
	DiskTps    float64
	MeanBatch  float64
}

func meanBatch(g core.Stats) float64 {
	if g.Gathers == 0 {
		return 0
	}
	return float64(g.GatheredWrites) / float64(g.Gathers)
}

// runWithPolicy executes a 2MB FDDI copy with 7 biods under the given
// engine policy (nil = standard server).
func runWithPolicy(label string, policy *core.Config, nfsds int) AblationResult {
	spec := Table3Spec()
	spec.FileMB = 2
	spec.GatherOverride = policy
	cfg := RigConfig{
		Net: spec.Net, Gathering: policy != nil, GatherOverride: policy,
		NumNfsds: nfsds, Biods: 7, CPUScale: 1.8, Seed: 313,
	}
	r := NewRig(cfg)
	var elapsed sim.Duration
	r.Sim.Spawn("copy", func(p *sim.Proc) {
		cres, err := r.Clients[0].Create(p, r.Server.RootFH(), "abl.dat", 0644)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		r.MarkInterval()
		elapsed, _ = r.Clients[0].WriteFile(p, cres.File, 2*1024*1024)
	})
	r.Sim.Run(0)
	res := AblationResult{Label: label}
	res.ClientKBps = 2 * 1024 / elapsed.Seconds()
	res.CPUPercent, _, res.DiskTps = r.IntervalStats()
	if eng := r.Server.Engine(); eng != nil {
		res.MeanBatch = meanBatch(eng.Stats())
	}
	return res
}

// AblationReplyOrder compares FIFO and LIFO reply delivery (§6.7).
func AblationReplyOrder() []AblationResult {
	fifo := core.DefaultConfig(false, hw.FDDI().Procrastinate)
	lifo := fifo
	lifo.LIFOReplies = true
	return []AblationResult{
		runWithPolicy("FIFO replies (paper)", &fifo, 8),
		runWithPolicy("LIFO replies (abandoned)", &lifo, 8),
	}
}

// AblationProcrastination sweeps the gather wait (§6.6).
func AblationProcrastination() []AblationResult {
	var out []AblationResult
	for _, ms := range []int{0, 1, 2, 5, 8, 12, 20} {
		cfg := core.DefaultConfig(false, sim.Duration(ms)*sim.Millisecond)
		if ms == 0 {
			cfg.MaxProcrastinations = 0
		}
		out = append(out, runWithPolicy(fmt.Sprintf("procrastinate %dms", ms), &cfg, 8))
	}
	return out
}

// AblationFirstWriteLatency compares the paper's procrastination against
// the [SIVA93] policy of using the first write's disk I/O as the latency
// device.
func AblationFirstWriteLatency() []AblationResult {
	paper := core.DefaultConfig(false, hw.FDDI().Procrastinate)
	siva := paper
	siva.FirstWriteLatency = true
	return []AblationResult{
		runWithPolicy("procrastinate (paper)", &paper, 8),
		runWithPolicy("first-write latency [SIVA93]", &siva, 8),
		runWithPolicy("standard server", nil, 8),
	}
}

// AblationHunter measures the socket-buffer scan's contribution, which the
// paper argues is essential under NVRAM acceleration (§6.5).
func AblationHunter(presto bool) []AblationResult {
	on := core.DefaultConfig(presto, hw.FDDI().Procrastinate)
	off := on
	off.MbufHunter = false
	spec := Table3Spec()
	if presto {
		spec = Table4Spec()
	}
	spec.FileMB = 2
	run := func(label string, pol core.Config) AblationResult {
		cfg := RigConfig{
			Net: spec.Net, Presto: presto, Gathering: true, GatherOverride: &pol,
			NumNfsds: 8, Biods: 7, CPUScale: 1.8, Seed: 313,
		}
		r := NewRig(cfg)
		var elapsed sim.Duration
		r.Sim.Spawn("copy", func(p *sim.Proc) {
			cres, err := r.Clients[0].Create(p, r.Server.RootFH(), "abl.dat", 0644)
			if err != nil {
				panic("experiments: " + err.Error())
			}
			r.MarkInterval()
			elapsed, _ = r.Clients[0].WriteFile(p, cres.File, 2*1024*1024)
		})
		r.Sim.Run(0)
		res := AblationResult{Label: label}
		res.ClientKBps = 2 * 1024 / elapsed.Seconds()
		res.CPUPercent, _, res.DiskTps = r.IntervalStats()
		res.MeanBatch = meanBatch(r.Server.Engine().Stats())
		return res
	}
	return []AblationResult{
		run("mbuf hunter on (paper)", on),
		run("mbuf hunter off", off),
	}
}

// AblationOneNfsd verifies §6.1: the detached-reply architecture gathers
// optimally with a single nfsd.
func AblationOneNfsd() []AblationResult {
	pol := core.DefaultConfig(false, hw.FDDI().Procrastinate)
	return []AblationResult{
		runWithPolicy("8 nfsds", &pol, 8),
		runWithPolicy("1 nfsd", &pol, 1),
	}
}

// RenderAblation formats a result set.
func RenderAblation(title string, rows []AblationResult) string {
	out := title + "\n"
	out += fmt.Sprintf("  %-32s %10s %8s %10s %10s\n", "", "KB/s", "cpu %", "disk t/s", "batch")
	for _, r := range rows {
		out += fmt.Sprintf("  %-32s %10.0f %8.1f %10.0f %10.2f\n",
			r.Label, r.ClientKBps, r.CPUPercent, r.DiskTps, r.MeanBatch)
	}
	return out
}
