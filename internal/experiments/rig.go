// Package experiments reruns the paper's evaluation: Tables 1-6 (10MB
// file copies across Ethernet/FDDI, plain/Presto, single/striped disks,
// biod sweeps), Figure 1 (the traffic timeline), Figures 2-3 (LADDIS
// throughput/latency curves), the scale-out and crash/recovery sweeps,
// and the ablations DESIGN.md lists.
//
// Every entry point here is a thin adapter over internal/scenario: it
// builds a declarative scenario.Spec, delegates to scenario.Run, and maps
// the uniform result back onto its historical return type. New experiment
// shapes should be written as scenario specs directly (see
// scenario.Registry); these adapters exist so pre-scenario callers and the
// recorded benchmark baselines keep working unchanged.
package experiments

import "repro/internal/rig"

// RigConfig selects one hardware/software configuration.
//
// Deprecated-in-place: the testbed assembly lives in internal/rig (the
// scenario engine builds rigs from specs); this alias keeps pre-scenario
// callers compiling.
type RigConfig = rig.Config

// Rig is an assembled single-server testbed (see internal/rig).
type Rig = rig.Rig

// NewRig builds the full stack for cfg.
func NewRig(cfg RigConfig) *Rig { return rig.New(cfg) }
