package experiments

import "testing"

// TestCalibrationTable3Shape: FDDI, plain disk. Paper: without gathering
// the curve is utterly flat (~207-209 KB/s, spindle-bound); with gathering
// it scales to ~1085 KB/s at 15 biods (5x), with low CPU throughout.
func TestCalibrationTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table3Spec()
	spec.FileMB = 4
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())
	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	if wo[last].ClientKBps > wo[0].ClientKBps*1.25 {
		t.Errorf("FDDI no-gather curve not flat: %v -> %v", wo[0].ClientKBps, wo[last].ClientKBps)
	}
	if wi[last].ClientKBps < 3*wo[last].ClientKBps {
		t.Errorf("FDDI gathering gain < 3x: %v vs %v", wi[last].ClientKBps, wo[last].ClientKBps)
	}
	if wi[0].ClientKBps >= wo[0].ClientKBps {
		t.Errorf("0-biod gathering should lose: %v vs %v", wi[0].ClientKBps, wo[0].ClientKBps)
	}
}

// TestCalibrationTable4Shape: FDDI + Presto. Paper: without gathering the
// client runs at near raw-device speed (~1.9 MB/s) flat; gathering matches
// it at >=3 biods while halving CPU; at 0 biods gathering halves speed.
func TestCalibrationTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table4Spec()
	spec.FileMB = 4
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())
	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	// Much faster than plain-disk FDDI (~210).
	if wo[last].ClientKBps < 800 {
		t.Errorf("Presto FDDI no-gather too slow: %v", wo[last].ClientKBps)
	}
	// Gathering catches up at high biod counts (within 25%).
	if wi[last].ClientKBps < 0.75*wo[last].ClientKBps {
		t.Errorf("gathering at 15 biods too slow: %v vs %v", wi[last].ClientKBps, wo[last].ClientKBps)
	}
	// And saves CPU.
	if wi[last].CPUPercent >= wo[last].CPUPercent {
		t.Errorf("gathering did not save CPU: %v vs %v", wi[last].CPUPercent, wo[last].CPUPercent)
	}
}

// TestCalibrationTable5Shape: FDDI + 3-disk stripe. Paper: without
// gathering ~200-313 KB/s; with gathering it keeps scaling with biods
// (1618 KB/s at 23 biods, 5x) because striping lifts the spindle ceiling.
func TestCalibrationTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table5Spec()
	spec.FileMB = 4
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())
	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	if wi[last].ClientKBps < 3*wo[last].ClientKBps {
		t.Errorf("stripe gathering gain < 3x: %v vs %v", wi[last].ClientKBps, wo[last].ClientKBps)
	}
	// The stripe must beat the single-disk gathering ceiling (Table 3 tops
	// out near the single spindle's sequential bandwidth).
	single := RunCopy(Table3Spec(), 23, true)
	if wi[last].ClientKBps <= single.ClientKBps {
		t.Errorf("stripe (%v) did not beat single disk (%v)", wi[last].ClientKBps, single.ClientKBps)
	}
	// More biods keep helping with gathering.
	if wi[last].ClientKBps <= wi[2].ClientKBps {
		t.Errorf("gathering stopped scaling: %v -> %v", wi[2].ClientKBps, wi[last].ClientKBps)
	}
}

// TestCalibrationTable6Shape: FDDI + Presto + stripe. Paper: standard hits
// ~3.4-3.5 MB/s; gathering reaches ~3 MB/s (-10-20%) with ~40% less CPU.
func TestCalibrationTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table6Spec()
	spec.FileMB = 4
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())
	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	if wo[last].ClientKBps < 1.5*RunCopy(Table4Spec(), 15, false).ClientKBps {
		t.Logf("note: stripe+Presto standard not much faster than single+Presto")
	}
	if wi[last].CPUPercent >= wo[last].CPUPercent {
		t.Errorf("gathering did not save CPU: %v vs %v", wi[last].CPUPercent, wo[last].CPUPercent)
	}
	if wi[last].ClientKBps < 0.6*wo[last].ClientKBps {
		t.Errorf("gathering throughput collapse: %v vs %v", wi[last].ClientKBps, wo[last].ClientKBps)
	}
}
