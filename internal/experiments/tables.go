package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FileCopyMB is the paper's transfer size: a 10MB file.
const FileCopyMB = 10

// CopyResult is one cell group of a Tables 1-6 column.
type CopyResult struct {
	Biods        int
	ClientKBps   float64
	CPUPercent   float64
	DiskKBps     float64
	DiskTransSec float64
	Elapsed      sim.Duration
	Gather       core.Stats
}

// CopySpec names one table's configuration.
type CopySpec struct {
	Name        string
	Net         hw.NetParams
	Presto      bool
	StripeDisks int
	Biods       []int
	FileMB      int
	// CPUScale selects the faster DEC 3800 host for FDDI configurations.
	CPUScale float64
	// GatherOverride applies an ablation policy to the gathering run.
	GatherOverride *core.Config
}

// StandardBiods is the biod sweep of Tables 1-4.
func StandardBiods() []int { return []int{0, 3, 7, 11, 15} }

// StripeBiods is the extended sweep of Tables 5-6.
func StripeBiods() []int { return []int{0, 3, 7, 11, 15, 19, 23} }

// RunCopy executes one 10MB file copy and returns the measured cell group.
func RunCopy(spec CopySpec, biods int, gathering bool) CopyResult {
	cfg := RigConfig{
		Net:            spec.Net,
		Presto:         spec.Presto,
		Gathering:      gathering,
		GatherOverride: spec.GatherOverride,
		StripeDisks:    spec.StripeDisks,
		NumNfsds:       8,
		Biods:          biods,
		CPUScale:       spec.CPUScale,
		Seed:           int64(biods)*131 + 17,
	}
	r := NewRig(cfg)
	size := spec.FileMB
	if size == 0 {
		size = FileCopyMB
	}
	size *= 1024 * 1024

	res := CopyResult{Biods: biods}
	r.Sim.Spawn("copy", func(p *sim.Proc) {
		// Create outside the measured interval, as the paper measures the
		// transfer.
		cres, err := r.Clients[0].Create(p, r.Server.RootFH(), "copy.dat", 0644)
		if err != nil {
			panic("experiments: create failed: " + err.Error())
		}
		r.MarkInterval()
		start := p.Now()
		if _, err := r.Clients[0].WriteFile(p, cres.File, size); err != nil {
			panic("experiments: copy failed: " + err.Error())
		}
		res.Elapsed = p.Now().Sub(start)
	})
	r.Sim.Run(0)

	res.ClientKBps = float64(size) / 1024 / res.Elapsed.Seconds()
	res.CPUPercent, res.DiskKBps, res.DiskTransSec = r.IntervalStats()
	if eng := r.Server.Engine(); eng != nil {
		res.Gather = eng.Stats()
	}
	return res
}

// CopyTable holds both halves of one paper table.
type CopyTable struct {
	Spec    CopySpec
	Without []CopyResult
	With    []CopyResult
}

// RunCopyTable sweeps the biod counts with and without gathering.
func RunCopyTable(spec CopySpec) *CopyTable {
	t := &CopyTable{Spec: spec}
	for _, b := range spec.Biods {
		t.Without = append(t.Without, RunCopy(spec, b, false))
	}
	for _, b := range spec.Biods {
		t.With = append(t.With, RunCopy(spec, b, true))
	}
	return t
}

// Render formats the table in the paper's layout.
func (t *CopyTable) Render() string {
	cols := make([]string, len(t.Spec.Biods))
	for i, b := range t.Spec.Biods {
		cols[i] = fmt.Sprintf("%d", b)
	}
	tab := &stats.Table{Title: t.Spec.Name, Columns: cols}
	tab.AddRow("# of Client Biods")
	emit := func(label string, rows []CopyResult) {
		tab.AddRow(label)
		kb := make([]float64, len(rows))
		cpu := make([]float64, len(rows))
		dkb := make([]float64, len(rows))
		dtps := make([]float64, len(rows))
		for i, r := range rows {
			kb[i] = r.ClientKBps
			cpu[i] = r.CPUPercent
			dkb[i] = r.DiskKBps
			dtps[i] = r.DiskTransSec
		}
		tab.AddFloatRow("client write speed (KB/sec.)", 0, kb...)
		tab.AddFloatRow("server cpu util. (%)", 0, cpu...)
		tab.AddFloatRow("server disk (KB/sec)", 0, dkb...)
		tab.AddFloatRow("server disk (trans/sec)", 0, dtps...)
	}
	emit("Without Write Gathering", t.Without)
	emit("With Write Gathering", t.With)
	return tab.String()
}

// Table1 is the Ethernet single-disk copy (paper Table 1).
func Table1Spec() CopySpec {
	return CopySpec{
		Name: "Table 1. NFS 10MB file copy: Ethernet",
		Net:  hw.Ethernet(), Biods: StandardBiods(), StripeDisks: 1,
	}
}

// Table2Spec is Ethernet + Presto (paper Table 2).
func Table2Spec() CopySpec {
	return CopySpec{
		Name: "Table 2. NFS 10MB file copy: Ethernet, Presto",
		Net:  hw.Ethernet(), Presto: true, Biods: StandardBiods(), StripeDisks: 1,
	}
}

// Table3Spec is FDDI single-disk (paper Table 3).
func Table3Spec() CopySpec {
	return CopySpec{
		Name: "Table 3. NFS 10MB file copy: FDDI",
		Net:  hw.FDDI(), Biods: StandardBiods(), StripeDisks: 1, CPUScale: 1.8,
	}
}

// Table4Spec is FDDI + Presto (paper Table 4).
func Table4Spec() CopySpec {
	return CopySpec{
		Name: "Table 4. NFS 10MB file copy: FDDI, Presto",
		Net:  hw.FDDI(), Presto: true, Biods: StandardBiods(), StripeDisks: 1, CPUScale: 1.8,
	}
}

// Table5Spec is FDDI with the 3-disk stripe set (paper Table 5).
func Table5Spec() CopySpec {
	return CopySpec{
		Name: "Table 5. NFS 10MB file copy: FDDI, 3 striped drives",
		Net:  hw.FDDI(), Biods: StripeBiods(), StripeDisks: 3, CPUScale: 1.8,
	}
}

// Table6Spec is FDDI + Presto with the stripe set (paper Table 6).
func Table6Spec() CopySpec {
	return CopySpec{
		Name: "Table 6. NFS 10MB file copy: FDDI, Presto, 3 striped drives",
		Net:  hw.FDDI(), Presto: true, Biods: StripeBiods(), StripeDisks: 3, CPUScale: 1.8,
	}
}

// TableSpecs maps experiment ids to their specs.
func TableSpecs() map[string]CopySpec {
	return map[string]CopySpec{
		"table1": Table1Spec(),
		"table2": Table2Spec(),
		"table3": Table3Spec(),
		"table4": Table4Spec(),
		"table5": Table5Spec(),
		"table6": Table6Spec(),
	}
}
