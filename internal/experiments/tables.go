package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FileCopyMB is the paper's transfer size: a 10MB file.
const FileCopyMB = 10

// CopyResult is one cell group of a Tables 1-6 column.
type CopyResult struct {
	Biods        int
	ClientKBps   float64
	CPUPercent   float64
	DiskKBps     float64
	DiskTransSec float64
	Elapsed      sim.Duration
	Gather       core.Stats
}

// CopySpec names one table's configuration.
type CopySpec struct {
	Name        string
	Net         hw.NetParams
	Presto      bool
	StripeDisks int
	Biods       []int
	FileMB      int
	// CPUScale selects the faster DEC 3800 host for FDDI configurations.
	CPUScale float64
	// GatherOverride applies an ablation policy to the gathering run.
	GatherOverride *core.Config
}

// StandardBiods is the biod sweep of Tables 1-4.
func StandardBiods() []int { return scenario.StandardBiods() }

// StripeBiods is the extended sweep of Tables 5-6.
func StripeBiods() []int { return scenario.StripeBiods() }

// netName maps the legacy hw.NetParams selection onto the scenario
// medium vocabulary. Only the two canonical media are expressible in a
// spec; a hand-tuned NetParams would be silently replaced by its
// canonical namesake inside the engine, so it is rejected loudly here.
func netName(net hw.NetParams) string {
	switch net {
	case hw.Ethernet():
		return "ethernet"
	case hw.FDDI():
		return "fddi"
	}
	panic(fmt.Sprintf("experiments: NetParams %q is not a canonical scenario medium (use hw.Ethernet() or hw.FDDI() unmodified)", net.Name))
}

// Scenario returns the declarative spec this table configuration maps
// to: the base topology/workload without sweep cells.
func (spec CopySpec) Scenario() scenario.Spec {
	fileMB := spec.FileMB
	if fileMB == 0 {
		fileMB = FileCopyMB
	}
	return scenario.Copy(spec.Name, "", netName(spec.Net),
		spec.Presto, spec.StripeDisks, spec.CPUScale, fileMB, spec.GatherOverride)
}

func copyResultFromCell(biods int, c scenario.CellResult) CopyResult {
	return CopyResult{
		Biods:        biods,
		ClientKBps:   c.ClientKBps,
		CPUPercent:   c.CPUPercent,
		DiskKBps:     c.DiskKBps,
		DiskTransSec: c.DiskTps,
		Elapsed:      c.Elapsed,
		Gather:       c.Gather,
	}
}

// RunCopy executes one 10MB file copy and returns the measured cell group.
func RunCopy(spec CopySpec, biods int, gathering bool) CopyResult {
	s := spec.Scenario()
	s.Cells = []scenario.Cell{scenario.CopyCell(biods, gathering)}
	res := scenario.MustRun(s)
	return copyResultFromCell(biods, res.Cells[0])
}

// CopyTable holds both halves of one paper table.
type CopyTable struct {
	Spec    CopySpec
	Without []CopyResult
	With    []CopyResult
}

// RunCopyTable sweeps the biod counts with and without gathering.
func RunCopyTable(spec CopySpec) *CopyTable {
	res := scenario.MustRun(scenario.CopySweep(spec.Scenario(), spec.Biods))
	t := &CopyTable{Spec: spec}
	n := len(spec.Biods)
	for i, b := range spec.Biods {
		t.Without = append(t.Without, copyResultFromCell(b, res.Cells[i]))
		t.With = append(t.With, copyResultFromCell(b, res.Cells[n+i]))
	}
	return t
}

// Render formats the table in the paper's layout.
func (t *CopyTable) Render() string {
	cols := make([]string, len(t.Spec.Biods))
	for i, b := range t.Spec.Biods {
		cols[i] = fmt.Sprintf("%d", b)
	}
	tab := &stats.Table{Title: t.Spec.Name, Columns: cols}
	tab.AddRow("# of Client Biods")
	emit := func(label string, rows []CopyResult) {
		tab.AddRow(label)
		kb := make([]float64, len(rows))
		cpu := make([]float64, len(rows))
		dkb := make([]float64, len(rows))
		dtps := make([]float64, len(rows))
		for i, r := range rows {
			kb[i] = r.ClientKBps
			cpu[i] = r.CPUPercent
			dkb[i] = r.DiskKBps
			dtps[i] = r.DiskTransSec
		}
		tab.AddFloatRow("client write speed (KB/sec.)", 0, kb...)
		tab.AddFloatRow("server cpu util. (%)", 0, cpu...)
		tab.AddFloatRow("server disk (KB/sec)", 0, dkb...)
		tab.AddFloatRow("server disk (trans/sec)", 0, dtps...)
	}
	emit("Without Write Gathering", t.Without)
	emit("With Write Gathering", t.With)
	return tab.String()
}

// Table1 is the Ethernet single-disk copy (paper Table 1).
func Table1Spec() CopySpec {
	return CopySpec{
		Name: "Table 1. NFS 10MB file copy: Ethernet",
		Net:  hw.Ethernet(), Biods: StandardBiods(), StripeDisks: 1,
	}
}

// Table2Spec is Ethernet + Presto (paper Table 2).
func Table2Spec() CopySpec {
	return CopySpec{
		Name: "Table 2. NFS 10MB file copy: Ethernet, Presto",
		Net:  hw.Ethernet(), Presto: true, Biods: StandardBiods(), StripeDisks: 1,
	}
}

// Table3Spec is FDDI single-disk (paper Table 3).
func Table3Spec() CopySpec {
	return CopySpec{
		Name: "Table 3. NFS 10MB file copy: FDDI",
		Net:  hw.FDDI(), Biods: StandardBiods(), StripeDisks: 1, CPUScale: 1.8,
	}
}

// Table4Spec is FDDI + Presto (paper Table 4).
func Table4Spec() CopySpec {
	return CopySpec{
		Name: "Table 4. NFS 10MB file copy: FDDI, Presto",
		Net:  hw.FDDI(), Presto: true, Biods: StandardBiods(), StripeDisks: 1, CPUScale: 1.8,
	}
}

// Table5Spec is FDDI with the 3-disk stripe set (paper Table 5).
func Table5Spec() CopySpec {
	return CopySpec{
		Name: "Table 5. NFS 10MB file copy: FDDI, 3 striped drives",
		Net:  hw.FDDI(), Biods: StripeBiods(), StripeDisks: 3, CPUScale: 1.8,
	}
}

// Table6Spec is FDDI + Presto with the stripe set (paper Table 6).
func Table6Spec() CopySpec {
	return CopySpec{
		Name: "Table 6. NFS 10MB file copy: FDDI, Presto, 3 striped drives",
		Net:  hw.FDDI(), Presto: true, Biods: StripeBiods(), StripeDisks: 3, CPUScale: 1.8,
	}
}

// TableSpecs maps experiment ids to their specs.
func TableSpecs() map[string]CopySpec {
	return map[string]CopySpec{
		"table1": Table1Spec(),
		"table2": Table2Spec(),
		"table3": Table3Spec(),
		"table4": Table4Spec(),
		"table5": Table5Spec(),
		"table6": Table6Spec(),
	}
}
