package experiments

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestRigAssemblyVariants(t *testing.T) {
	cases := []RigConfig{
		{Net: hw.Ethernet(), Seed: 1},
		{Net: hw.FDDI(), Gathering: true, Seed: 1},
		{Net: hw.FDDI(), Presto: true, Gathering: true, Seed: 1},
		{Net: hw.FDDI(), StripeDisks: 3, Seed: 1},
		{Net: hw.FDDI(), Clients: 3, Biods: 4, Seed: 1},
	}
	for i, cfg := range cases {
		r := NewRig(cfg)
		if r.Server == nil || r.FS == nil || len(r.Clients) == 0 {
			t.Fatalf("case %d: incomplete rig", i)
		}
		if cfg.Presto && r.Presto == nil {
			t.Fatalf("case %d: missing presto", i)
		}
		if cfg.StripeDisks == 3 && (r.Stripe == nil || len(r.Disks) != 3) {
			t.Fatalf("case %d: missing stripe", i)
		}
		if cfg.Gathering != (r.Server.Engine() != nil) {
			t.Fatalf("case %d: gathering mismatch", i)
		}
	}
}

func TestIntervalStatsExcludePrehistory(t *testing.T) {
	r := NewRig(RigConfig{Net: hw.FDDI(), Seed: 1})
	r.Sim.Spawn("app", func(p *sim.Proc) {
		cres, _ := r.Clients[0].Create(p, r.Server.RootFH(), "a", 0644)
		r.Clients[0].WriteSync(p, cres.File, 0, make([]byte, 8192))
		r.MarkInterval()
		// Nothing after the mark.
		p.Sleep(sim.Second)
	})
	r.Sim.Run(0)
	cpu, kbps, tps := r.IntervalStats()
	if cpu != 0 || kbps != 0 || tps != 0 {
		t.Fatalf("interval stats include prehistory: %v %v %v", cpu, kbps, tps)
	}
}

func TestRunCopySmall(t *testing.T) {
	spec := Table1Spec()
	spec.FileMB = 1
	res := RunCopy(spec, 3, true)
	if res.ClientKBps <= 0 || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Gather.Writes != 128 {
		t.Fatalf("gather writes = %d, want 128 (1MB/8K)", res.Gather.Writes)
	}
}

func TestRenderTableShape(t *testing.T) {
	spec := Table1Spec()
	spec.FileMB = 1
	spec.Biods = []int{0, 3}
	tbl := RunCopyTable(spec)
	out := tbl.Render()
	for _, want := range []string{
		"Table 1", "Without Write Gathering", "With Write Gathering",
		"client write speed (KB/sec.)", "server cpu util. (%)",
		"server disk (KB/sec)", "server disk (trans/sec)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableSpecsComplete(t *testing.T) {
	specs := TableSpecs()
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		if _, ok := specs[id]; !ok {
			t.Fatalf("missing spec %s", id)
		}
	}
	if !specs["table2"].Presto || specs["table2"].Net.Name != "Ethernet" {
		t.Fatal("table2 misconfigured")
	}
	if specs["table5"].StripeDisks != 3 || len(specs["table5"].Biods) != 7 {
		t.Fatal("table5 misconfigured")
	}
}

func TestFigure1ProducesTimeline(t *testing.T) {
	out, log := RunFigure1(Figure1Config{Gathering: true, FileKB: 160, Biods: 4, Seed: 3})
	if !strings.Contains(out, "Gathering Server") {
		t.Fatalf("title missing:\n%.200s", out)
	}
	sum := log.Summary(0, 1<<62)
	if sum["client:8K"] == 0 {
		t.Fatal("no client writes in trace")
	}
	disk := 0
	for k, v := range sum {
		if strings.HasPrefix(k, "disk:") {
			disk += v
		}
	}
	if disk == 0 {
		t.Fatal("no disk ops in trace")
	}
}

func TestFigure1GatheringReducesDiskOps(t *testing.T) {
	_, std := RunFigure1(Figure1Config{Gathering: false, FileKB: 160, Biods: 4, Seed: 3})
	_, wg := RunFigure1(Figure1Config{Gathering: true, FileKB: 160, Biods: 4, Seed: 3})
	count := func(l interface {
		Summary(a, b sim.Time) map[string]int
	}) int {
		n := 0
		for k, v := range l.Summary(0, 1<<62) {
			if strings.HasPrefix(k, "disk:") {
				n += v
			}
		}
		return n
	}
	sOps, gOps := count(std), count(wg)
	if gOps >= sOps {
		t.Fatalf("gathering disk ops %d not below standard %d", gOps, sOps)
	}
	// Figure 1's point: roughly 3N -> N.
	if float64(sOps) < 2*float64(gOps) {
		t.Fatalf("reduction below 2x: %d vs %d", sOps, gOps)
	}
}

func TestLADDISPointRuns(t *testing.T) {
	spec := Figure2Spec()
	spec.Clients = 2
	spec.Procs = 4
	spec.Measure = 2 * sim.Second
	pt := RunLADDISPoint(spec, 100, true)
	if pt.AchievedOpsPerSec <= 0 || pt.AvgLatencyMs <= 0 {
		t.Fatalf("point = %+v", pt)
	}
	if pt.Errors != 0 {
		t.Fatalf("errors = %d", pt.Errors)
	}
}

func TestLADDISCurveCapacity(t *testing.T) {
	c := &LADDISCurve{Points: []LADDISPoint{
		{AchievedOpsPerSec: 100, AvgLatencyMs: 10},
		{AchievedOpsPerSec: 200, AvgLatencyMs: 40},
		{AchievedOpsPerSec: 250, AvgLatencyMs: 90},
	}}
	ops, lat := c.Capacity(50)
	if ops != 200 || lat != 40 {
		t.Fatalf("capacity = %v @ %v", ops, lat)
	}
}

func TestAblationOneNfsdStillGathers(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs are long")
	}
	rows := AblationOneNfsd()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	one := rows[1]
	if one.MeanBatch < 2 {
		t.Fatalf("single nfsd failed to gather: batch %.2f (§6.1 claims it can)", one.MeanBatch)
	}
}

func TestAblationRenderer(t *testing.T) {
	out := RenderAblation("T", []AblationResult{{Label: "x", ClientKBps: 100}})
	if !strings.Contains(out, "T") || !strings.Contains(out, "x") {
		t.Fatalf("render: %s", out)
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec := Table3Spec()
	spec.FileMB = 1
	a := RunCopy(spec, 7, true)
	b := RunCopy(spec, 7, true)
	if a.ClientKBps != b.ClientKBps || a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic experiment: %v vs %v", a, b)
	}
}

// TestCaptureFigure1 converts the Figure-1 timeline into a replayable op
// capture: one record per client write send, sorted, starting at zero —
// the artifact `nfstrace -capture` hands to the openload replay path.
func TestCaptureFigure1(t *testing.T) {
	tr, err := CaptureFigure1(DefaultFigure1(false))
	if err != nil {
		t.Fatal(err)
	}
	// 256KB sequential file in 8K writes: 32 sends.
	if len(tr.Ops) != 32 {
		t.Fatalf("captured %d ops, want 32", len(tr.Ops))
	}
	if tr.Ops[0].At != 0 {
		t.Errorf("capture does not start at zero: %v", tr.Ops[0].At)
	}
	offs := map[uint32]bool{}
	for i, r := range tr.Ops {
		if r.Op != "write" || r.N != 8*1024 {
			t.Errorf("op %d: got %s/%d bytes, want a write/8192", i, r.Op, r.N)
		}
		if i > 0 && r.At < tr.Ops[i-1].At {
			t.Errorf("op %d arrives before op %d", i, i-1)
		}
		offs[r.Off] = true
	}
	if len(offs) != 32 {
		t.Errorf("captured %d distinct offsets, want 32 (one per 8K block)", len(offs))
	}
	if tr.Duration() <= 0 {
		t.Error("capture spans no time")
	}
}
