package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ScaleSpec parameterizes the scale-out sweep: a clients × servers grid of
// LADDIS runs, each cell measured for both server builds. The offered load
// is per client, so the grid answers the two questions the paper's
// single-rig evaluation could not: how response time degrades as load
// generators multiply, and how much of it a second (sharded) server buys
// back.
type ScaleSpec struct {
	Name string
	// ClientCounts and ServerCounts span the grid.
	ClientCounts []int
	ServerCounts []int
	// Presto interposes NVRAM boards on every server.
	Presto bool
	// OfferedPerClient is the open-loop request rate each client offers.
	OfferedPerClient float64
	// Procs is generator processes per client.
	Procs int
	// Nfsds is the daemon pool per server.
	Nfsds int
	// Disks is the spindle count per server.
	Disks int
	// Files and FileBlocks size each client's working set.
	Files      int
	FileBlocks int
	// Measure bounds the measured phase.
	Measure sim.Duration
	Seed    int64
}

// DefaultScaleSpec is the recorded sweep: clients 1/2/4 against servers
// 1/2 on FDDI.
func DefaultScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "Scale-out sweep: LADDIS clients x sharded servers, FDDI",
		ClientCounts:     []int{1, 2, 4},
		ServerCounts:     []int{1, 2},
		OfferedPerClient: 250,
		Procs:            8,
		Nfsds:            16,
		Disks:            2,
		Files:            24,
		FileBlocks:       8,
		Measure:          4 * sim.Second,
		Seed:             9494,
	}
}

// ScaleCell is one grid cell's measurement.
type ScaleCell struct {
	Clients   int
	Servers   int
	Gathering bool
	Presto    bool

	OfferedOpsPerSec  float64
	AchievedOpsPerSec float64
	AvgLatencyMs      float64
	P95LatencyMs      float64
	CPUMeanPercent    float64
	CPUMaxPercent     float64
	DiskTps           float64
	Errors            int
}

// RunScaleCell measures one cell: nclients LADDIS clients, their working
// sets sharded across nservers exports, one server build.
func RunScaleCell(spec ScaleSpec, nclients, nservers int, gathering bool) ScaleCell {
	c := cluster.New(cluster.Config{
		Net:         hw.FDDI(),
		Clients:     nclients,
		Servers:     nservers,
		Presto:      spec.Presto,
		Gathering:   gathering,
		StripeDisks: spec.Disks,
		NumNfsds:    spec.Nfsds,
		Biods:       0, // LADDIS load processes issue synchronous ops
		CPUScale:    1.8,
		Seed:        spec.Seed + int64(nclients*100+nservers*10),
		Inodes:      2048,
	})
	roots := c.Roots()

	gens := make([]*workload.LADDIS, nclients)
	results := make([]workload.LADDISResult, nclients)
	finished := 0
	for i, cli := range c.Clients {
		i, cli := i, cli
		gens[i] = workload.NewLADDIS(cli, roots[0], workload.LADDISConfig{
			Files:            spec.Files,
			FileBlocks:       spec.FileBlocks,
			OfferedOpsPerSec: spec.OfferedPerClient,
			Procs:            spec.Procs,
			Duration:         spec.Measure,
			Seed:             spec.Seed + int64(i),
			Roots:            roots,
		})
		c.Sim.Spawn(fmt.Sprintf("laddis-driver-%d", i), func(p *sim.Proc) {
			if err := gens[i].Setup(p); err != nil {
				panic("experiments: scale setup: " + err.Error())
			}
			// Barrier: measurement starts together, well past setup. A
			// setup that overruns the barrier would silently skew the
			// interval stats (clients starting staggered, MarkInterval
			// mid-load), so it is a hard error: grow the barrier with the
			// working set, don't ignore it.
			const barrier = sim.Time(20 * sim.Second)
			wait := barrier.Sub(p.Now())
			if wait < 0 {
				panic(fmt.Sprintf("experiments: scale setup for client %d ran %v past the %v barrier; working set too large for the barrier",
					i, -wait, sim.Duration(barrier)))
			}
			p.Sleep(wait)
			if i == 0 {
				c.MarkInterval()
			}
			results[i] = gens[i].Run(p)
			finished++
		})
	}
	c.Sim.Run(0)
	if finished != nclients {
		panic("experiments: scale drivers did not finish")
	}

	cell := ScaleCell{
		Clients: nclients, Servers: nservers,
		Gathering: gathering, Presto: spec.Presto,
		OfferedOpsPerSec: spec.OfferedPerClient * float64(nclients),
	}
	var latSum, n float64
	var p95 float64
	for _, res := range results {
		cell.AchievedOpsPerSec += res.AchievedOpsPerSec
		latSum += res.AvgLatencyMs * res.AchievedOpsPerSec
		n += res.AchievedOpsPerSec
		if res.P95LatencyMs > p95 {
			p95 = res.P95LatencyMs
		}
		cell.Errors += res.Errors
	}
	if n > 0 {
		cell.AvgLatencyMs = latSum / n
	}
	cell.P95LatencyMs = p95
	st := c.IntervalStats()
	cell.CPUMeanPercent = st.CPUMeanPercent
	cell.CPUMaxPercent = st.CPUMaxPercent
	cell.DiskTps = st.DiskTps
	return cell
}

// RunScaleSweep measures the full grid for both server builds (standard
// first, gathering second, cell-major), mirroring RunFigure's pairing.
func RunScaleSweep(spec ScaleSpec) []ScaleCell {
	var cells []ScaleCell
	for _, nc := range spec.ClientCounts {
		for _, ns := range spec.ServerCounts {
			cells = append(cells, RunScaleCell(spec, nc, ns, false))
			cells = append(cells, RunScaleCell(spec, nc, ns, true))
		}
	}
	return cells
}

// CellTag names a cell compactly (benchmark metric prefixes).
func (c ScaleCell) CellTag() string {
	b := "std"
	if c.Gathering {
		b = "wg"
	}
	return fmt.Sprintf("c%ds%d-%s", c.Clients, c.Servers, b)
}

// RenderScaleSweep formats the grid.
func RenderScaleSweep(spec ScaleSpec, cells []ScaleCell) string {
	out := spec.Name + "\n"
	out += fmt.Sprintf("%-10s %8s  %9s %8s %8s %8s %8s %9s %7s\n",
		"cell", "offered", "achieved", "avg ms", "p95 ms", "cpu avg", "cpu max", "disk t/s", "errors")
	for _, c := range cells {
		out += fmt.Sprintf("%-10s %8.0f  %9.1f %8.2f %8.2f %7.1f%% %7.1f%% %9.0f %7d\n",
			c.CellTag(), c.OfferedOpsPerSec, c.AchievedOpsPerSec,
			c.AvgLatencyMs, c.P95LatencyMs, c.CPUMeanPercent, c.CPUMaxPercent,
			c.DiskTps, c.Errors)
	}
	return out
}
