package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// ScaleSpec parameterizes the scale-out sweep: a clients × servers grid of
// LADDIS runs, each cell measured for both server builds. The offered load
// is per client, so the grid answers the two questions the paper's
// single-rig evaluation could not: how response time degrades as load
// generators multiply, and how much of it a second (sharded) server buys
// back.
type ScaleSpec struct {
	Name string
	// ClientCounts and ServerCounts span the grid.
	ClientCounts []int
	ServerCounts []int
	// Presto interposes NVRAM boards on every server.
	Presto bool
	// OfferedPerClient is the open-loop request rate each client offers.
	OfferedPerClient float64
	// Procs is generator processes per client.
	Procs int
	// Nfsds is the daemon pool per server.
	Nfsds int
	// Disks is the spindle count per server.
	Disks int
	// Files and FileBlocks size each client's working set.
	Files      int
	FileBlocks int
	// Measure bounds the measured phase.
	Measure sim.Duration
	Seed    int64
}

// DefaultScaleSpec is the recorded sweep: clients 1/2/4 against servers
// 1/2 on FDDI.
func DefaultScaleSpec() ScaleSpec {
	return ScaleSpec{
		Name:             "Scale-out sweep: LADDIS clients x sharded servers, FDDI",
		ClientCounts:     []int{1, 2, 4},
		ServerCounts:     []int{1, 2},
		OfferedPerClient: 250,
		Procs:            8,
		Nfsds:            16,
		Disks:            2,
		Files:            24,
		FileBlocks:       8,
		Measure:          4 * sim.Second,
		Seed:             9494,
	}
}

// Scenario returns the declarative spec this sweep configuration maps
// to: the base topology/workload without grid cells.
func (spec ScaleSpec) Scenario() scenario.Spec {
	return scenario.ScaleBase(spec.Name, "", spec.Presto, spec.OfferedPerClient,
		spec.Procs, spec.Nfsds, spec.Disks, spec.Files, spec.FileBlocks, spec.Measure, spec.Seed)
}

// ScaleCell is one grid cell's measurement.
type ScaleCell struct {
	Clients   int
	Servers   int
	Gathering bool
	Presto    bool

	OfferedOpsPerSec  float64
	AchievedOpsPerSec float64
	AvgLatencyMs      float64
	P95LatencyMs      float64
	CPUMeanPercent    float64
	CPUMaxPercent     float64
	DiskTps           float64
	Errors            int
}

func scaleCellFromCell(spec ScaleSpec, nclients, nservers int, gathering bool, c scenario.CellResult) ScaleCell {
	return ScaleCell{
		Clients: nclients, Servers: nservers,
		Gathering: gathering, Presto: spec.Presto,
		OfferedOpsPerSec:  c.OfferedOpsPerSec,
		AchievedOpsPerSec: c.AchievedOpsPerSec,
		AvgLatencyMs:      c.AvgLatencyMs,
		P95LatencyMs:      c.P95LatencyMs,
		CPUMeanPercent:    c.CPUPercent,
		CPUMaxPercent:     c.CPUMaxPercent,
		DiskTps:           c.DiskTps,
		Errors:            c.Errors,
	}
}

// RunScaleCell measures one cell: nclients LADDIS clients, their working
// sets sharded across nservers exports, one server build.
func RunScaleCell(spec ScaleSpec, nclients, nservers int, gathering bool) ScaleCell {
	s := spec.Scenario()
	s.Cells = []scenario.Cell{scenario.ScaleCell(spec.Seed, nclients, nservers, gathering)}
	res := scenario.MustRun(s)
	return scaleCellFromCell(spec, nclients, nservers, gathering, res.Cells[0])
}

// RunScaleSweep measures the full grid for both server builds (standard
// first, gathering second, cell-major), mirroring RunFigure's pairing.
func RunScaleSweep(spec ScaleSpec) []ScaleCell {
	res := scenario.MustRun(scenario.ScaleSweep(spec.Scenario(), spec.ClientCounts, spec.ServerCounts))
	var cells []ScaleCell
	i := 0
	for _, nc := range spec.ClientCounts {
		for _, ns := range spec.ServerCounts {
			cells = append(cells,
				scaleCellFromCell(spec, nc, ns, false, res.Cells[i]),
				scaleCellFromCell(spec, nc, ns, true, res.Cells[i+1]))
			i += 2
		}
	}
	return cells
}

// CellTag names a cell compactly (benchmark metric prefixes).
func (c ScaleCell) CellTag() string {
	b := "std"
	if c.Gathering {
		b = "wg"
	}
	return fmt.Sprintf("c%ds%d-%s", c.Clients, c.Servers, b)
}

// RenderScaleSweep formats the grid.
func RenderScaleSweep(spec ScaleSpec, cells []ScaleCell) string {
	out := spec.Name + "\n"
	out += fmt.Sprintf("%-10s %8s  %9s %8s %8s %8s %8s %9s %7s\n",
		"cell", "offered", "achieved", "avg ms", "p95 ms", "cpu avg", "cpu max", "disk t/s", "errors")
	for _, c := range cells {
		out += fmt.Sprintf("%-10s %8.0f  %9.1f %8.2f %8.2f %7.1f%% %7.1f%% %9.0f %7d\n",
			c.CellTag(), c.OfferedOpsPerSec, c.AchievedOpsPerSec,
			c.AvgLatencyMs, c.P95LatencyMs, c.CPUMeanPercent, c.CPUMaxPercent,
			c.DiskTps, c.Errors)
	}
	return out
}
