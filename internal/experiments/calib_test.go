package experiments

import (
	"testing"
)

// TestCalibrationTable1Shape checks the qualitative shape of Table 1
// against the paper: without gathering throughput is flat and
// spindle-bound (~165-205 KB/s band); with gathering it scales with biods
// and the 15-biod case is several times faster; disk transactions per
// second drop sharply; 0 biods loses modestly.
func TestCalibrationTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table1Spec()
	spec.FileMB = 4 // smaller file, same steady-state rates
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())

	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	// Flat without gathering: 15-biod within 35% of 0-biod.
	if wo[last].ClientKBps > wo[0].ClientKBps*1.35 {
		t.Errorf("no-gather curve not flat: %v vs %v", wo[0].ClientKBps, wo[last].ClientKBps)
	}
	// Gathering at 15 biods at least 2x the standard server.
	if wi[last].ClientKBps < 2*wo[last].ClientKBps {
		t.Errorf("gathering gain too small: %v vs %v", wi[last].ClientKBps, wo[last].ClientKBps)
	}
	// Zero-biod penalty: gathering slower but not catastrophically.
	if wi[0].ClientKBps >= wo[0].ClientKBps {
		t.Errorf("0-biod gathering should lose: %v vs %v", wi[0].ClientKBps, wo[0].ClientKBps)
	}
	// Disk transaction rate collapses with gathering at high biods.
	if wi[last].DiskTransSec > 0.6*wo[last].DiskTransSec {
		t.Errorf("disk trans/s did not drop: %v vs %v", wi[last].DiskTransSec, wo[last].DiskTransSec)
	}
}

func TestCalibrationTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are long")
	}
	spec := Table2Spec()
	spec.FileMB = 4
	tbl := RunCopyTable(spec)
	t.Log("\n" + tbl.Render())

	wo, wi := tbl.Without, tbl.With
	last := len(wo) - 1
	// Presto without gathering is much faster than plain disk (compare
	// against the known plain-disk band, ~200 KB/s).
	if wo[last].ClientKBps < 500 {
		t.Errorf("Presto no-gather too slow: %v", wo[last].ClientKBps)
	}
	// With gathering: lower CPU per unit of work at modest throughput cost.
	cpuPerKB := func(r CopyResult) float64 { return r.CPUPercent / r.ClientKBps }
	if cpuPerKB(wi[2]) >= cpuPerKB(wo[2]) {
		t.Errorf("gathering did not improve CPU efficiency under Presto: %v vs %v",
			cpuPerKB(wi[2]), cpuPerKB(wo[2]))
	}
	if wi[last].ClientKBps > wo[last].ClientKBps {
		t.Logf("note: gathering beat standard under Presto (paper shows a modest loss)")
	}
}
