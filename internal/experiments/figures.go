package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LADDISPoint is one offered-load sample for Figures 2 and 3.
type LADDISPoint struct {
	OfferedOpsPerSec  float64
	AchievedOpsPerSec float64
	AvgLatencyMs      float64
	CPUPercent        float64
	Errors            int
}

// LADDISCurve is the throughput/latency curve for one server build.
type LADDISCurve struct {
	Name   string
	Points []LADDISPoint
}

// Capacity reports the highest achieved ops/s with average latency at or
// below capMs (SPEC SFS 1.0 reported capacity at a 50 ms average).
func (c *LADDISCurve) Capacity(capMs float64) (opsPerSec, latencyAt float64) {
	for _, p := range c.Points {
		if p.AvgLatencyMs <= capMs && p.AchievedOpsPerSec > opsPerSec {
			opsPerSec = p.AchievedOpsPerSec
			latencyAt = p.AvgLatencyMs
		}
	}
	return
}

// Series converts to a plottable stats.Series.
func (c *LADDISCurve) Series() *stats.Series {
	s := &stats.Series{Name: c.Name}
	for _, p := range c.Points {
		s.Add(p.AchievedOpsPerSec, p.AvgLatencyMs)
	}
	return s
}

// FigureSpec parameterizes a Figure 2/3 run. The paper used 5 clients x 4
// load processes against a DEC 3800 with 32 nfsds and 20 disks on 5 SCSI
// buses; the simulated testbed is scaled down (fewer spindles) but sweeps
// the same way.
type FigureSpec struct {
	Name    string
	Presto  bool
	Clients int
	Procs   int
	Nfsds   int
	Disks   int
	Loads   []float64 // offered ops/sec points
	Measure sim.Duration
	Seed    int64
}

// Scenario returns the declarative spec this figure configuration maps
// to: the base topology/workload without sweep cells.
func (spec FigureSpec) Scenario() scenario.Spec {
	return scenario.LADDISRig(spec.Name, "", spec.Presto,
		spec.Clients, spec.Procs, spec.Nfsds, spec.Disks, spec.Measure, spec.Seed)
}

// Figure2Spec is the plain-disk LADDIS sweep (paper Figure 2).
func Figure2Spec() FigureSpec {
	return FigureSpec{
		Name:    "Figure 2. SPEC SFS 1.0 baseline",
		Clients: 4,
		Procs:   16,
		Nfsds:   32,
		Disks:   8,
		Loads:   []float64{200, 400, 600, 800, 1000, 1200, 1400, 1600},
		Measure: 8 * sim.Second,
		Seed:    4242,
	}
}

// Figure3Spec is the Presto LADDIS sweep (paper Figure 3).
func Figure3Spec() FigureSpec {
	s := Figure2Spec()
	s.Name = "Figure 3. SPEC SFS 1.0 baseline, Prestoserve"
	s.Presto = true
	s.Loads = []float64{400, 800, 1200, 1600, 2000, 2400, 2800, 3200}
	return s
}

func pointFromCell(c scenario.CellResult) LADDISPoint {
	return LADDISPoint{
		OfferedOpsPerSec:  c.OfferedOpsPerSec,
		AchievedOpsPerSec: c.AchievedOpsPerSec,
		AvgLatencyMs:      c.AvgLatencyMs,
		CPUPercent:        c.CPUPercent,
		Errors:            c.Errors,
	}
}

// RunLADDISPoint executes one offered-load level against one server build.
func RunLADDISPoint(spec FigureSpec, offered float64, gathering bool) LADDISPoint {
	return runLADDISPoint(spec, offered, gathering, nil)
}

type logger interface{ Logf(string, ...any) }

// RunLADDISPointDebug runs one point and logs engine internals.
func RunLADDISPointDebug(spec FigureSpec, offered float64, gathering bool, lg logger) LADDISPoint {
	return runLADDISPoint(spec, offered, gathering, lg)
}

func runLADDISPoint(spec FigureSpec, offered float64, gathering bool, lg logger) LADDISPoint {
	s := spec.Scenario()
	s.Cells = []scenario.Cell{scenario.LADDISCell(spec.Seed, offered, gathering)}
	res := scenario.MustRun(s)
	cell := res.Cells[0]
	if lg != nil {
		if gathering {
			st := cell.Gather
			lg.Logf("engine: writes=%d gathers=%d mean batch=%.2f max=%d procr=%d hunter=%d handoffs=%d adoptions=%d",
				st.Writes, st.Gathers, float64(st.GatheredWrites)/float64(st.Gathers),
				st.MaxBatch, st.Procrastinations, st.HunterHits, st.HandoffsToActive, st.Adoptions)
		}
		lg.Logf("cpu=%.1f%% disk=%.0fKB/s trans=%.0f/s drops=%d retrans(sum)=%d",
			cell.CPUPercent, cell.DiskKBps, cell.DiskTps, cell.Drops, cell.Retransmissions)
		for _, res := range cell.ClientResults {
			lg.Logf("client: achieved=%.1f avg=%.2fms p95=%.2fms errors=%d perOp=%v",
				res.AchievedOpsPerSec, res.AvgLatencyMs, res.P95LatencyMs, res.Errors, res.PerOp)
		}
	}
	return pointFromCell(cell)
}

// RunFigure sweeps the offered loads for both server builds as one
// scenario sweep (per load: standard first, then gathering).
func RunFigure(spec FigureSpec) (without, with *LADDISCurve) {
	res := scenario.MustRun(scenario.LADDISSweep(spec.Scenario(), spec.Loads))
	without = &LADDISCurve{Name: spec.Name + " — without write gathering"}
	with = &LADDISCurve{Name: spec.Name + " — with write gathering"}
	for i := range spec.Loads {
		without.Points = append(without.Points, pointFromCell(res.Cells[2*i]))
		with.Points = append(with.Points, pointFromCell(res.Cells[2*i+1]))
	}
	return without, with
}

// RenderFigure formats both curves side by side.
func RenderFigure(spec FigureSpec, without, with *LADDISCurve) string {
	out := spec.Name + "\n"
	out += fmt.Sprintf("%10s  %28s  %28s\n", "", "WITHOUT GATHERING", "WITH GATHERING")
	out += fmt.Sprintf("%10s  %10s %8s %8s  %10s %8s %8s\n",
		"offered", "achieved", "avg ms", "cpu %", "achieved", "avg ms", "cpu %")
	for i := range without.Points {
		a, b := without.Points[i], with.Points[i]
		out += fmt.Sprintf("%10.0f  %10.1f %8.2f %8.1f  %10.1f %8.2f %8.1f\n",
			a.OfferedOpsPerSec,
			a.AchievedOpsPerSec, a.AvgLatencyMs, a.CPUPercent,
			b.AchievedOpsPerSec, b.AvgLatencyMs, b.CPUPercent)
	}
	capW, latW := without.Capacity(50)
	capG, latG := with.Capacity(50)
	out += fmt.Sprintf("capacity @50ms: without=%.0f ops/s (%.1f ms)  with=%.0f ops/s (%.1f ms)  delta=%+.1f%%\n",
		capW, latW, capG, latG, 100*(capG-capW)/capW)
	return out
}
