package experiments

import (
	"testing"

	"repro/internal/sim"
)

// TestScaleSweepSmoke runs one grid cell end to end (the CI smoke): two
// clients sharded across two servers with gathering on must move load on
// every shard without errors.
func TestScaleSweepSmoke(t *testing.T) {
	spec := DefaultScaleSpec()
	spec.Measure = 1 * sim.Second
	cell := RunScaleCell(spec, 2, 2, true)
	if cell.AchievedOpsPerSec <= 0 {
		t.Fatalf("cell achieved no throughput: %+v", cell)
	}
	if cell.Errors != 0 {
		t.Fatalf("cell had %d op errors", cell.Errors)
	}
	if cell.AvgLatencyMs <= 0 {
		t.Fatalf("cell recorded no latency: %+v", cell)
	}
	t.Logf("%s: %.1f ops/s, %.2f ms avg, cpu %.1f%%/%.1f%%",
		cell.CellTag(), cell.AchievedOpsPerSec, cell.AvgLatencyMs,
		cell.CPUMeanPercent, cell.CPUMaxPercent)
}

// TestScaleCellDeterministic: the same cell at the same seed reports
// byte-identical metrics.
func TestScaleCellDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism re-run is covered by the full sweep benchmarks")
	}
	spec := DefaultScaleSpec()
	spec.Measure = 1 * sim.Second
	a := RunScaleCell(spec, 2, 1, true)
	b := RunScaleCell(spec, 2, 1, true)
	if a != b {
		t.Fatalf("scale cell not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestCrashRecoveryDurability is the acceptance gate: zero acked-write
// loss with gathering on, with and without Presto.
func TestCrashRecoveryDurability(t *testing.T) {
	for _, presto := range []bool{false, true} {
		spec := DefaultCrashSpec(presto)
		if testing.Short() {
			spec.Crashes = 1
			spec.FileMB = 1
		}
		r := RunCrashRecovery(spec)
		if r.LostBytes != 0 {
			t.Fatalf("presto=%v: %d acked bytes lost (%s)", presto, r.LostBytes, r.FirstLoss)
		}
		if r.Crashes == 0 || r.Reboots != r.Crashes {
			t.Fatalf("presto=%v: crashes=%d reboots=%d", presto, r.Crashes, r.Reboots)
		}
		if r.AckedWrites == 0 {
			t.Fatalf("presto=%v: empty journal", presto)
		}
		if r.RebootsSeen == 0 {
			t.Errorf("presto=%v: clients never detected the reboot", presto)
		}
		t.Logf("%s", RenderCrashRecovery(spec, r))
	}
}
