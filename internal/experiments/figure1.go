package experiments

import (
	"repro/internal/scenario"
	"repro/internal/trace"
)

// Figure1Config reproduces the paper's Figure 1 scenario: a DEC 3500-class
// client with 4 biods writing a sequential file to a DEC 3800-class server
// with one RZ26 over FDDI; the trace window opens after the client is
// >100K into the file.
type Figure1Config struct {
	Gathering bool
	FileKB    int
	Biods     int
	Seed      int64
}

// DefaultFigure1 returns the paper's parameters.
func DefaultFigure1(gathering bool) Figure1Config {
	return Figure1Config{Gathering: gathering, FileKB: 256, Biods: 4, Seed: 99}
}

// Scenario returns the declarative spec this configuration maps to (one
// cell for the selected server build).
func (cfg Figure1Config) Scenario() scenario.Spec {
	s := scenario.Trace("figure1", "", cfg.FileKB, cfg.Biods, cfg.Seed)
	gathering := cfg.Gathering
	s.Cells = []scenario.Cell{{Label: "trace", Gathering: &gathering}}
	return s
}

// RunFigure1 executes the scenario and returns the rendered timeline for a
// window starting >100K into the transfer, plus the raw log.
func RunFigure1(cfg Figure1Config) (string, *trace.Log) {
	res := scenario.MustRun(cfg.Scenario())
	return res.Cells[0].TraceText, res.Cells[0].TraceLog
}
