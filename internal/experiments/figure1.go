package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure1Config reproduces the paper's Figure 1 scenario: a DEC 3500-class
// client with 4 biods writing a sequential file to a DEC 3800-class server
// with one RZ26 over FDDI; the trace window opens after the client is
// >100K into the file.
type Figure1Config struct {
	Gathering bool
	FileKB    int
	Biods     int
	Seed      int64
}

// DefaultFigure1 returns the paper's parameters.
func DefaultFigure1(gathering bool) Figure1Config {
	return Figure1Config{Gathering: gathering, FileKB: 256, Biods: 4, Seed: 99}
}

// RunFigure1 executes the scenario and returns the rendered timeline for a
// window starting >100K into the transfer, plus the raw log.
func RunFigure1(cfg Figure1Config) (string, *trace.Log) {
	rig := NewRig(RigConfig{
		Net:       hw.FDDI(),
		Gathering: cfg.Gathering,
		NumNfsds:  8,
		Biods:     cfg.Biods,
		CPUScale:  1.8,
		Seed:      cfg.Seed,
	})
	log := &trace.Log{}
	cli := rig.Clients[0]
	cli.OnWriteEvent = func(ev string, off uint32, n int) {
		switch ev {
		case "send":
			log.Add(rig.Sim.Now(), "client", "8K Write off=%dK ->", off/1024)
		case "reply":
			log.Add(rig.Sim.Now(), "client", "<- Write Reply off=%dK", off/1024)
		}
	}
	for i, d := range rig.Disks {
		i, d := i, d
		d.OnOp = func(write bool, blk int64, n int) {
			kind := "read"
			if write {
				kind = "write"
			}
			what := "data"
			if blk < 20 { // inode region of this filesystem
				what = "metadata"
			}
			log.Add(rig.Sim.Now(), "disk", "%dK %s to disk (%s) [d%d]", n/1024, kind, what, i)
		}
	}

	// Mark gather commits via the engine's stats transitions: poll cheaply
	// from a watcher process.
	if eng := rig.Server.Engine(); eng != nil {
		rig.Sim.Spawn("gather-watch", func(p *sim.Proc) {
			last := eng.Stats().Gathers
			for {
				p.Sleep(500 * sim.Microsecond)
				st := eng.Stats()
				if st.Gathers != last {
					log.Add(p.Now(), "server", "Gather commit #%d (batch so far %d writes)",
						st.Gathers, st.GatheredWrites)
					last = st.Gathers
				}
				if p.Now() > sim.Time(60*sim.Second) {
					return
				}
			}
		})
	}

	var windowStart sim.Time
	rig.Sim.Spawn("copy", func(p *sim.Proc) {
		cres, err := rig.Clients[0].Create(p, rig.Server.RootFH(), "figure1.dat", 0644)
		if err != nil {
			panic("experiments: figure1 create: " + err.Error())
		}
		// Track when the transfer passes 100K to set the window.
		inner := cli.OnWriteEvent
		cli.OnWriteEvent = func(ev string, off uint32, n int) {
			if windowStart == 0 && ev == "send" && off >= 100*1024 {
				windowStart = p.Sim().Now()
			}
			inner(ev, off, n)
		}
		if _, err := cli.WriteFile(p, cres.File, cfg.FileKB*1024); err != nil {
			panic("experiments: figure1 copy: " + err.Error())
		}
	})
	rig.Sim.Run(sim.Time(60 * sim.Second))

	mode := "Standard Server"
	if cfg.Gathering {
		mode = "Gathering Server"
	}
	title := fmt.Sprintf("Figure 1 (%s): client with %d biods, sequential writer, >100K into file",
		mode, cfg.Biods)
	out := log.Render(title, windowStart, windowStart.Add(60*sim.Millisecond))
	return out, log
}
