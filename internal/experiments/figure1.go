package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure1Config reproduces the paper's Figure 1 scenario: a DEC 3500-class
// client with 4 biods writing a sequential file to a DEC 3800-class server
// with one RZ26 over FDDI; the trace window opens after the client is
// >100K into the file.
type Figure1Config struct {
	Gathering bool
	FileKB    int
	Biods     int
	Seed      int64
}

// DefaultFigure1 returns the paper's parameters.
func DefaultFigure1(gathering bool) Figure1Config {
	return Figure1Config{Gathering: gathering, FileKB: 256, Biods: 4, Seed: 99}
}

// Scenario returns the declarative spec this configuration maps to (one
// cell for the selected server build).
func (cfg Figure1Config) Scenario() scenario.Spec {
	s := scenario.Trace("figure1", "", cfg.FileKB, cfg.Biods, cfg.Seed)
	gathering := cfg.Gathering
	s.Cells = []scenario.Cell{{Label: "trace", Gathering: &gathering}}
	return s
}

// RunFigure1 executes the scenario and returns the rendered timeline for a
// window starting >100K into the transfer, plus the raw log.
func RunFigure1(cfg Figure1Config) (string, *trace.Log) {
	res := scenario.MustRun(cfg.Scenario())
	return res.Cells[0].TraceText, res.Cells[0].TraceLog
}

// CaptureFigure1 runs the Figure-1 scenario and converts its client-lane
// write sends into a replayable op capture: each "8K Write off=NK ->"
// event becomes one record at its recorded instant, relative to the
// first send. The capture replays through the scenario engine's openload
// workload, re-offering the exact Figure-1 write timeline — same
// inter-arrival gaps — against any rig.
func CaptureFigure1(cfg Figure1Config) (*trace.OpTrace, error) {
	_, log := RunFigure1(cfg)
	name := "figure1-standard"
	if cfg.Gathering {
		name = "figure1-gathering"
	}
	tr := &trace.OpTrace{Name: name}
	var first sim.Time
	for _, e := range log.Events {
		if e.Lane != "client" {
			continue
		}
		var offKB int
		if _, err := fmt.Sscanf(e.Label, "8K Write off=%dK ->", &offKB); err != nil {
			continue
		}
		if len(tr.Ops) == 0 {
			first = e.T
		}
		tr.Ops = append(tr.Ops, trace.OpRecord{
			At:   e.T.Sub(first),
			Op:   "write",
			File: 0,
			Off:  uint32(offKB) * 1024,
			N:    8 * 1024,
		})
	}
	if len(tr.Ops) == 0 {
		return nil, fmt.Errorf("experiments: figure-1 log has no client write sends to capture")
	}
	tr.Sort()
	return tr, nil
}
