package experiments

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// These tests guard the compatibility shim: every legacy Run* entry
// point must produce byte-identical metric columns to a scenario.Run of
// a hand-built spec. The specs below are written out literally — not via
// the shared builders — so drift in either the adapters or the builders
// breaks the comparison.

func ptr[T any](v T) *T { return &v }

func TestCopyAdapterEquivalence(t *testing.T) {
	spec := Table1Spec()
	spec.FileMB = 1
	legacy := RunCopy(spec, 3, true)

	hand := scenario.Spec{
		Name: "hand-table1",
		Topology: scenario.Topology{
			Net:     "ethernet",
			Clients: []scenario.ClientGroup{{Count: 1}},
			Servers: scenario.Servers{Count: 1, Nfsds: 8, StripeDisks: 1},
		},
		Workload: scenario.Workload{Kind: scenario.KindCopy, Copy: &scenario.CopyWorkload{FileMB: 1}},
		Cells: []scenario.Cell{{
			Seed: ptr(int64(3)*131 + 17), Biods: ptr(3), Gathering: ptr(true),
		}},
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	got := CopyResult{
		Biods: 3, ClientKBps: c.ClientKBps, CPUPercent: c.CPUPercent,
		DiskKBps: c.DiskKBps, DiskTransSec: c.DiskTps, Elapsed: c.Elapsed, Gather: c.Gather,
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("adapter and hand-built scenario diverge:\nlegacy: %+v\nhand:   %+v", legacy, got)
	}
}

func TestCopyTableAdapterEquivalence(t *testing.T) {
	spec := Table3Spec()
	spec.FileMB = 1
	spec.Biods = []int{0, 7}
	tbl := RunCopyTable(spec)

	hand := scenario.Spec{
		Name: "hand-table3",
		Topology: scenario.Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []scenario.ClientGroup{{Count: 1}},
			Servers:  scenario.Servers{Count: 1, Nfsds: 8, StripeDisks: 1},
		},
		Workload: scenario.Workload{Kind: scenario.KindCopy, Copy: &scenario.CopyWorkload{FileMB: 1}},
	}
	for _, g := range []bool{false, true} {
		for _, b := range []int{0, 7} {
			hand.Cells = append(hand.Cells, scenario.Cell{
				Seed: ptr(int64(b)*131 + 17), Biods: ptr(b), Gathering: ptr(g),
			})
		}
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range []int{0, 7} {
		pairs := []struct {
			legacy CopyResult
			cell   scenario.CellResult
		}{
			{tbl.Without[i], res.Cells[i]},
			{tbl.With[i], res.Cells[2+i]},
		}
		for _, p := range pairs {
			if p.legacy.ClientKBps != p.cell.ClientKBps ||
				p.legacy.CPUPercent != p.cell.CPUPercent ||
				p.legacy.DiskKBps != p.cell.DiskKBps ||
				p.legacy.DiskTransSec != p.cell.DiskTps ||
				p.legacy.Elapsed != p.cell.Elapsed {
				t.Errorf("biods=%d: columns diverge:\nlegacy: %+v\ncell:   %+v", b, p.legacy, p.cell.Metrics)
			}
		}
	}
}

func TestLADDISPointAdapterEquivalence(t *testing.T) {
	spec := Figure2Spec()
	spec.Measure = 1 * sim.Second
	legacy := RunLADDISPoint(spec, 400, true)

	hand := scenario.Spec{
		Name: "hand-figure2",
		Seed: 4242,
		Topology: scenario.Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []scenario.ClientGroup{{Count: 4}},
			Servers:  scenario.Servers{Count: 1, Nfsds: 32, StripeDisks: 8, Inodes: 2048},
		},
		Workload: scenario.Workload{Kind: scenario.KindLADDIS, LADDIS: &scenario.LADDISWorkload{
			Files: 32, FileBlocks: 8, Procs: 16,
			Measure: 1 * sim.Second, Seed: 4242,
		}},
		Cells: []scenario.Cell{{
			Seed: ptr(int64(4242 + 400)), OfferedOpsPerSec: ptr(400.0), Gathering: ptr(true),
		}},
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	got := LADDISPoint{
		OfferedOpsPerSec:  c.OfferedOpsPerSec,
		AchievedOpsPerSec: c.AchievedOpsPerSec,
		AvgLatencyMs:      c.AvgLatencyMs,
		CPUPercent:        c.CPUPercent,
		Errors:            c.Errors,
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("adapter and hand-built scenario diverge:\nlegacy: %+v\nhand:   %+v", legacy, got)
	}
}

func TestFigure1AdapterEquivalence(t *testing.T) {
	cfg := Figure1Config{Gathering: true, FileKB: 160, Biods: 4, Seed: 3}
	legacyText, legacyLog := RunFigure1(cfg)

	hand := scenario.Spec{
		Name: "hand-figure1",
		Seed: 3,
		Topology: scenario.Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []scenario.ClientGroup{{Count: 1, Biods: 4}},
			Servers:  scenario.Servers{Count: 1, Nfsds: 8},
		},
		Workload: scenario.Workload{Kind: scenario.KindTrace, Trace: &scenario.TraceWorkload{FileKB: 160}},
		Cells:    []scenario.Cell{{Gathering: ptr(true)}},
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.TraceText != legacyText {
		t.Errorf("rendered timelines diverge:\nlegacy:\n%s\nhand:\n%s", legacyText, c.TraceText)
	}
	if !reflect.DeepEqual(legacyLog.Summary(0, 1<<62), c.TraceLog.Summary(0, 1<<62)) {
		t.Errorf("trace summaries diverge: %v vs %v",
			legacyLog.Summary(0, 1<<62), c.TraceLog.Summary(0, 1<<62))
	}
}

func TestScaleCellAdapterEquivalence(t *testing.T) {
	spec := DefaultScaleSpec()
	spec.Measure = 1 * sim.Second
	legacy := RunScaleCell(spec, 2, 2, true)

	hand := scenario.Spec{
		Name: "hand-scale",
		Seed: 9494,
		Topology: scenario.Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Assembly: scenario.AssemblyCluster,
			Clients:  []scenario.ClientGroup{{Count: 1}},
			Servers:  scenario.Servers{Count: 1, Nfsds: 16, StripeDisks: 2, Inodes: 2048},
		},
		Workload: scenario.Workload{Kind: scenario.KindLADDIS, LADDIS: &scenario.LADDISWorkload{
			Files: 24, FileBlocks: 8, Procs: 8,
			OfferedOpsPerSec: 250, OfferedIsPerClient: true,
			Measure: 1 * sim.Second, Seed: 9494,
		}},
		Cells: []scenario.Cell{{
			Seed:    ptr(int64(9494 + 2*100 + 2*10)),
			Clients: ptr(2), Servers: ptr(2), Gathering: ptr(true),
		}},
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	got := ScaleCell{
		Clients: 2, Servers: 2, Gathering: true, Presto: false,
		OfferedOpsPerSec:  c.OfferedOpsPerSec,
		AchievedOpsPerSec: c.AchievedOpsPerSec,
		AvgLatencyMs:      c.AvgLatencyMs,
		P95LatencyMs:      c.P95LatencyMs,
		CPUMeanPercent:    c.CPUPercent,
		CPUMaxPercent:     c.CPUMaxPercent,
		DiskTps:           c.DiskTps,
		Errors:            c.Errors,
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("adapter and hand-built scenario diverge:\nlegacy: %+v\nhand:   %+v", legacy, got)
	}
}

func TestCrashAdapterEquivalence(t *testing.T) {
	spec := DefaultCrashSpec(true)
	spec.FileMB = 1
	legacy := RunCrashRecovery(spec)

	hand := scenario.Spec{
		Name: "hand-crash",
		Seed: 777,
		Topology: scenario.Topology{
			Net:      "fddi",
			Assembly: scenario.AssemblyCluster,
			Clients:  []scenario.ClientGroup{{Count: 2, Biods: 4, MaxRetries: 50}},
			Servers:  scenario.Servers{Count: 1, Presto: true, Gathering: true},
		},
		Workload: scenario.Workload{Kind: scenario.KindStream, Stream: &scenario.StreamWorkload{FileMB: 1}},
		Faults: scenario.Faults{
			CheckDurability: true,
			Crashes: []scenario.CrashTrain{{
				Node: 0, At: 500 * sim.Millisecond, Period: 1500 * sim.Millisecond,
				Outage: 400 * sim.Millisecond, Count: 2,
			}},
		},
	}
	res, err := scenario.Run(hand)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	d := c.Durability
	got := CrashResult{
		AckedWrites: d.AckedWrites, AckedBytes: d.AckedBytes,
		LostBytes: d.LostBytes, FirstLoss: d.FirstLoss,
		Crashes: d.Crashes, Reboots: d.Reboots,
		MeanRecoveryMs:       d.MeanRecoveryMs,
		RecoveredNVRAMBlocks: d.RecoveredNVRAMBlocks,
		Retransmissions:      c.Retransmissions, RebootsSeen: c.RebootsSeen,
		ElapsedSec: c.ElapsedSec, ClientKBps: c.ClientKBps,
	}
	if !reflect.DeepEqual(legacy, got) {
		t.Errorf("adapter and hand-built scenario diverge:\nlegacy: %+v\nhand:   %+v", legacy, got)
	}
	if legacy.LostBytes != 0 {
		t.Errorf("durability violated: %s", legacy.FirstLoss)
	}
}

// TestRegistryMatchesAdapters pins the built-in registry to the legacy
// spec constructors: the named scenarios must describe the same
// topology, workload and sweep cells the adapters build, so `nfsbench
// -scenario` reruns the recorded experiments exactly.
func TestRegistryMatchesAdapters(t *testing.T) {
	cases := []struct {
		name string
		want scenario.Spec
	}{
		{"table1", scenario.CopySweep(Table1Spec().Scenario(), Table1Spec().Biods)},
		{"table5", scenario.CopySweep(Table5Spec().Scenario(), Table5Spec().Biods)},
		{"figure2", scenario.LADDISSweep(Figure2Spec().Scenario(), Figure2Spec().Loads)},
		{"figure3", scenario.LADDISSweep(Figure3Spec().Scenario(), Figure3Spec().Loads)},
		{"scale", scenario.ScaleSweep(DefaultScaleSpec().Scenario(), DefaultScaleSpec().ClientCounts, DefaultScaleSpec().ServerCounts)},
	}
	for _, tc := range cases {
		got, ok := scenario.Lookup(tc.name)
		if !ok {
			t.Errorf("%s: not registered", tc.name)
			continue
		}
		// Names and descriptions are presentation; the physics must match.
		got.Name, got.Description = "", ""
		tc.want.Name, tc.want.Description = "", ""
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: registry spec drifted from the adapter spec:\nregistry: %+v\nadapter:  %+v",
				tc.name, got, tc.want)
		}
	}

	// The crash registry entry sweeps plain+presto around the same base
	// the adapter uses.
	got, ok := scenario.Lookup("crash")
	if !ok {
		t.Fatal("crash: not registered")
	}
	want := DefaultCrashSpec(false).Scenario()
	got.Name, got.Description, got.Cells = "", "", nil
	want.Name, want.Description = "", ""
	if !reflect.DeepEqual(got, want) {
		t.Errorf("crash: registry base drifted from the adapter spec:\nregistry: %+v\nadapter:  %+v", got, want)
	}
}
