package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// CrashSpec parameterizes a crash/recovery run: clients stream sequential
// writes through a gathering server that crashes mid-stream (possibly
// repeatedly) and reboots after an outage; every client-acked write is
// journaled and verified against the recovered filesystem. This is the
// experiment the paper never ran: direct evidence that write gathering
// defers metadata without ever acking ahead of stable storage — the §6.8
// invariant — with and without Presto NVRAM in the stack.
type CrashSpec struct {
	Name      string
	Presto    bool
	Gathering bool
	Clients   int
	// FileMB is the per-client stream size.
	FileMB int
	// CrashAt is the first crash instant; Crashes cycles repeat every
	// Period with the given Outage.
	CrashAt sim.Duration
	Period  sim.Duration
	Outage  sim.Duration
	Crashes int
	Seed    int64
}

// DefaultCrashSpec is the recorded configuration: two clients streaming
// 2 MB each through one gathering server that crashes twice.
func DefaultCrashSpec(presto bool) CrashSpec {
	spec := CrashSpec{
		Name:      "Crash/recovery durability, write gathering",
		Presto:    presto,
		Gathering: true,
		Clients:   2,
		FileMB:    2,
		CrashAt:   500 * sim.Millisecond,
		Period:    1500 * sim.Millisecond,
		Outage:    400 * sim.Millisecond,
		Crashes:   2,
		Seed:      777,
	}
	if presto {
		spec.Name += ", Presto"
	}
	return spec
}

// Scenario returns the declarative spec this configuration maps to.
func (spec CrashSpec) Scenario() scenario.Spec {
	return scenario.StreamCrash(spec.Name, "", spec.Presto, spec.Gathering,
		spec.Clients, spec.FileMB, spec.CrashAt, spec.Period, spec.Outage, spec.Crashes, spec.Seed)
}

// CrashResult is one run's outcome.
type CrashResult struct {
	// AckedWrites/AckedBytes is the journal the checker verified.
	AckedWrites int
	AckedBytes  int64
	// LostBytes must be zero: acked data that did not survive recovery.
	LostBytes int64
	FirstLoss string
	// Crashes and Reboots actually performed.
	Crashes int
	Reboots int
	// MeanRecoveryMs is the average remount time (reading the inode
	// region back at device speed).
	MeanRecoveryMs float64
	// RecoveredNVRAMBlocks counts battery-backed blocks replayed.
	RecoveredNVRAMBlocks int
	// Retransmissions and RebootsSeen are the client-side view of the
	// outages.
	Retransmissions uint64
	RebootsSeen     uint64
	// ElapsedSec is total simulated time; ClientKBps the effective stream
	// rate including outages.
	ElapsedSec float64
	ClientKBps float64
}

// RunCrashRecovery executes one crash/recovery durability run.
func RunCrashRecovery(spec CrashSpec) CrashResult {
	res := scenario.MustRun(spec.Scenario())
	c := res.Cells[0]
	d := c.Durability
	return CrashResult{
		AckedWrites:          d.AckedWrites,
		AckedBytes:           d.AckedBytes,
		LostBytes:            d.LostBytes,
		FirstLoss:            d.FirstLoss,
		Crashes:              d.Crashes,
		Reboots:              d.Reboots,
		MeanRecoveryMs:       d.MeanRecoveryMs,
		RecoveredNVRAMBlocks: d.RecoveredNVRAMBlocks,
		Retransmissions:      c.Retransmissions,
		RebootsSeen:          c.RebootsSeen,
		ElapsedSec:           c.ElapsedSec,
		ClientKBps:           c.ClientKBps,
	}
}

// RenderCrashRecovery formats one run.
func RenderCrashRecovery(spec CrashSpec, r CrashResult) string {
	out := spec.Name + "\n"
	out += fmt.Sprintf("  crashes=%d reboots=%d  mean recovery=%.1fms  nvram replay=%d blocks\n",
		r.Crashes, r.Reboots, r.MeanRecoveryMs, r.RecoveredNVRAMBlocks)
	out += fmt.Sprintf("  acked: %d writes / %d KB   lost: %d bytes",
		r.AckedWrites, r.AckedBytes/1024, r.LostBytes)
	if r.LostBytes > 0 {
		out += "  DURABILITY VIOLATED: " + r.FirstLoss
	}
	out += fmt.Sprintf("\n  client view: %d retransmissions, %d reboot detections, %.0f KB/s over %.2fs\n",
		r.Retransmissions, r.RebootsSeen, r.ClientKBps, r.ElapsedSec)
	return out
}
