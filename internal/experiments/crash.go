package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// CrashSpec parameterizes a crash/recovery run: clients stream sequential
// writes through a gathering server that crashes mid-stream (possibly
// repeatedly) and reboots after an outage; every client-acked write is
// journaled and verified against the recovered filesystem. This is the
// experiment the paper never ran: direct evidence that write gathering
// defers metadata without ever acking ahead of stable storage — the §6.8
// invariant — with and without Presto NVRAM in the stack.
type CrashSpec struct {
	Name      string
	Presto    bool
	Gathering bool
	Clients   int
	// FileMB is the per-client stream size.
	FileMB int
	// CrashAt is the first crash instant; Crashes cycles repeat every
	// Period with the given Outage.
	CrashAt sim.Duration
	Period  sim.Duration
	Outage  sim.Duration
	Crashes int
	Seed    int64
}

// DefaultCrashSpec is the recorded configuration: two clients streaming
// 2 MB each through one gathering server that crashes twice.
func DefaultCrashSpec(presto bool) CrashSpec {
	spec := CrashSpec{
		Name:      "Crash/recovery durability, write gathering",
		Presto:    presto,
		Gathering: true,
		Clients:   2,
		FileMB:    2,
		CrashAt:   500 * sim.Millisecond,
		Period:    1500 * sim.Millisecond,
		Outage:    400 * sim.Millisecond,
		Crashes:   2,
		Seed:      777,
	}
	if presto {
		spec.Name += ", Presto"
	}
	return spec
}

// CrashResult is one run's outcome.
type CrashResult struct {
	// AckedWrites/AckedBytes is the journal the checker verified.
	AckedWrites int
	AckedBytes  int64
	// LostBytes must be zero: acked data that did not survive recovery.
	LostBytes int64
	FirstLoss string
	// Crashes and Reboots actually performed.
	Crashes int
	Reboots int
	// MeanRecoveryMs is the average remount time (reading the inode
	// region back at device speed).
	MeanRecoveryMs float64
	// RecoveredNVRAMBlocks counts battery-backed blocks replayed.
	RecoveredNVRAMBlocks int
	// Retransmissions and RebootsSeen are the client-side view of the
	// outages.
	Retransmissions uint64
	RebootsSeen     uint64
	// ElapsedSec is total simulated time; ClientKBps the effective stream
	// rate including outages.
	ElapsedSec float64
	ClientKBps float64
}

// RunCrashRecovery executes one crash/recovery durability run.
func RunCrashRecovery(spec CrashSpec) CrashResult {
	c := cluster.New(cluster.Config{
		Net:           hw.FDDI(),
		Clients:       spec.Clients,
		Servers:       1,
		Presto:        spec.Presto,
		Gathering:     spec.Gathering,
		Biods:         4,
		Seed:          spec.Seed,
		ClientRetries: 50,
	})
	j := fault.NewJournal()
	for _, cli := range c.Clients {
		j.Attach(cli)
	}
	in := fault.NewInjector(c)
	in.ScheduleEvery(0, sim.Time(spec.CrashAt), spec.Period, spec.Outage, spec.Crashes)

	roots := c.Roots()
	size := spec.FileMB << 20
	done := 0
	var bytesWritten int64
	for i, cli := range c.Clients {
		i, cli := i, cli
		c.Sim.Spawn(fmt.Sprintf("stream-%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("stream-%d.dat", i)
			cres, err := cli.Create(p, roots[0], name, 0644)
			if err != nil || cres.Status != nfsproto.OK {
				panic(fmt.Sprintf("experiments: crash-rig create: %v %v", err, cres))
			}
			if _, err := cli.WriteFile(p, cres.File, size); err != nil {
				panic("experiments: crash-rig stream: " + err.Error())
			}
			bytesWritten += int64(size)
			done++
		})
	}
	// elapsed is the stream phase only: the durability audit below also
	// consumes simulated device time and must not dilute the reported
	// stream rate.
	elapsed := c.Sim.Run(0)
	if done != spec.Clients {
		panic("experiments: crash-rig streams did not finish")
	}

	var check fault.CheckResult
	c.Sim.Spawn("verify", func(p *sim.Proc) { check = j.Verify(p, c) })
	c.Sim.Run(0)

	res := CrashResult{
		AckedWrites: check.AckedWrites,
		AckedBytes:  check.AckedBytes,
		LostBytes:   check.LostBytes,
		FirstLoss:   check.FirstLoss,
		Crashes:     in.Crashes,
		Reboots:     in.Reboots,
		ElapsedSec:  elapsed.Seconds(),
	}
	if len(in.RecoveryTimes) > 0 {
		var sum sim.Duration
		for _, d := range in.RecoveryTimes {
			sum += d
		}
		res.MeanRecoveryMs = (sum / sim.Duration(len(in.RecoveryTimes))).Millis()
	}
	for _, cli := range c.Clients {
		res.Retransmissions += cli.Retransmissions
		res.RebootsSeen += cli.RebootsSeen
	}
	res.RecoveredNVRAMBlocks = c.Nodes[0].RecoveredBlocks
	if res.ElapsedSec > 0 {
		res.ClientKBps = float64(bytesWritten) / 1024 / res.ElapsedSec
	}
	return res
}

// RenderCrashRecovery formats one run.
func RenderCrashRecovery(spec CrashSpec, r CrashResult) string {
	out := spec.Name + "\n"
	out += fmt.Sprintf("  crashes=%d reboots=%d  mean recovery=%.1fms  nvram replay=%d blocks\n",
		r.Crashes, r.Reboots, r.MeanRecoveryMs, r.RecoveredNVRAMBlocks)
	out += fmt.Sprintf("  acked: %d writes / %d KB   lost: %d bytes",
		r.AckedWrites, r.AckedBytes/1024, r.LostBytes)
	if r.LostBytes > 0 {
		out += "  DURABILITY VIOLATED: " + r.FirstLoss
	}
	out += fmt.Sprintf("\n  client view: %d retransmissions, %d reboot detections, %.0f KB/s over %.2fs\n",
		r.Retransmissions, r.RebootsSeen, r.ClientKBps, r.ElapsedSec)
	return out
}
