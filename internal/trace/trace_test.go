package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWindowFiltersAndOrders(t *testing.T) {
	var l Log
	l.Add(sim.Time(30*sim.Millisecond), "client", "late")
	l.Add(sim.Time(10*sim.Millisecond), "client", "early")
	l.Add(sim.Time(20*sim.Millisecond), "server", "middle")
	w := l.Window(sim.Time(5*sim.Millisecond), sim.Time(25*sim.Millisecond))
	if len(w) != 2 {
		t.Fatalf("window = %+v", w)
	}
	if w[0].Label != "early" || w[1].Label != "middle" {
		t.Fatalf("order = %+v", w)
	}
}

func TestSameInstantPreservesInsertionOrder(t *testing.T) {
	var l Log
	l.Add(sim.Time(sim.Millisecond), "client", "first")
	l.Add(sim.Time(sim.Millisecond), "client", "second")
	w := l.Window(0, sim.Time(sim.Second))
	if w[0].Label != "first" || w[1].Label != "second" {
		t.Fatalf("order = %+v", w)
	}
}

func TestRenderLanes(t *testing.T) {
	var l Log
	l.Add(sim.Time(sim.Millisecond), "client", "8K Write ->")
	l.Add(sim.Time(2*sim.Millisecond), "disk", "64K write")
	out := l.Render("title", 0, sim.Time(sim.Second))
	if !strings.Contains(out, "title") || !strings.Contains(out, "8K Write") || !strings.Contains(out, "64K write") {
		t.Fatalf("render:\n%s", out)
	}
	// Client events render in the client column (before server column).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "8K Write") && strings.Index(line, "8K Write") > 50 {
			t.Fatalf("client event in wrong column: %q", line)
		}
	}
}

func TestRenderRelativeTimes(t *testing.T) {
	var l Log
	l.Add(sim.Time(105*sim.Millisecond), "client", "x")
	out := l.Render("t", sim.Time(100*sim.Millisecond), sim.Time(200*sim.Millisecond))
	if !strings.Contains(out, "5.000") {
		t.Fatalf("relative time missing:\n%s", out)
	}
}

func TestSummaryCounts(t *testing.T) {
	var l Log
	l.Add(1, "disk", "8K write")
	l.Add(2, "disk", "64K write")
	l.Add(3, "client", "8K Write ->")
	sum := l.Summary(0, sim.Time(sim.Second))
	if sum["disk:8K"] != 1 || sum["disk:64K"] != 1 || sum["client:8K"] != 1 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestFormatArgs(t *testing.T) {
	var l Log
	l.Add(1, "server", "gather of %d writes", 7)
	if l.Events[0].Label != "gather of 7 writes" {
		t.Fatalf("label = %q", l.Events[0].Label)
	}
}
