package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/sim"
)

// OpRecord is one captured operation: what was done, to which file of
// the working set, at what offset, and when (relative to the capture
// start). Captures replay open-loop through the scenario engine's
// "openload" workload, which re-emits each record at its recorded
// (optionally speed-scaled) instant.
type OpRecord struct {
	// At is the arrival instant relative to the capture start.
	At sim.Duration `json:"at_ns"`
	// Op is the operation name (workload op vocabulary: "lookup",
	// "read", "write", "getattr", ...).
	Op string `json:"op"`
	// File indexes the working-set file the op targets.
	File int `json:"file"`
	// Off is the byte offset for read/write ops.
	Off uint32 `json:"off,omitempty"`
	// N is the transfer size in bytes for read/write ops.
	N int `json:"n,omitempty"`
}

// OpTrace is a captured op timeline, the replayable artifact behind
// `nfstrace -capture` and the openload workload's replay mode.
type OpTrace struct {
	// Name labels the capture (source scenario or trace).
	Name string `json:"name,omitempty"`
	// Ops is the timeline, sorted by At.
	Ops []OpRecord `json:"ops"`
}

// Duration reports the recorded span: the arrival instant of the last
// op (0 for an empty capture).
func (t *OpTrace) Duration() sim.Duration {
	if len(t.Ops) == 0 {
		return 0
	}
	return t.Ops[len(t.Ops)-1].At
}

// MaxFile reports the highest file index referenced (-1 when empty).
func (t *OpTrace) MaxFile() int {
	max := -1
	for _, r := range t.Ops {
		if r.File > max {
			max = r.File
		}
	}
	return max
}

// Sort orders the timeline by arrival instant, preserving the relative
// order of simultaneous records.
func (t *OpTrace) Sort() {
	sort.SliceStable(t.Ops, func(i, j int) bool { return t.Ops[i].At < t.Ops[j].At })
}

// SaveOps writes the capture as indented JSON.
func SaveOps(path string, t *OpTrace) error {
	blob, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return fmt.Errorf("trace: encode op capture: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadOps reads a capture written by SaveOps, validating that the
// timeline is non-empty and sorted (it sorts a shuffled one rather than
// failing — hand-edited captures stay usable).
func LoadOps(path string) (*OpTrace, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read op capture: %w", err)
	}
	var t OpTrace
	if err := json.Unmarshal(blob, &t); err != nil {
		return nil, fmt.Errorf("trace: decode op capture %s: %w", path, err)
	}
	if len(t.Ops) == 0 {
		return nil, fmt.Errorf("trace: op capture %s has no ops", path)
	}
	t.Sort()
	return &t, nil
}
