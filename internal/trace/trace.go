// Package trace records timestamped events from a simulation run and
// renders them as a message-sequence timeline, reproducing the paper's
// Figure 1 comparison of standard and gathering servers.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Event is one recorded occurrence.
type Event struct {
	T     sim.Time
	Lane  string // "client", "server", "disk"
	Label string
	seq   int
}

// Log collects events.
type Log struct {
	Events []Event
	seq    int
}

// Add records an event.
func (l *Log) Add(t sim.Time, lane, format string, args ...any) {
	l.Events = append(l.Events, Event{T: t, Lane: lane, Label: fmt.Sprintf(format, args...), seq: l.seq})
	l.seq++
}

// Window returns the events within [from, to), time-ordered.
func (l *Log) Window(from, to sim.Time) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.T >= from && e.T < to {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// Render draws a three-lane sequence timeline for [from, to). Times are
// shown relative to from, in milliseconds.
func (l *Log) Render(title string, from, to sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%9s  %-34s %-38s %s\n", "time(ms)", "CLIENT", "SERVER", "DISK")
	fmt.Fprintf(&b, "%9s  %-34s %-38s %s\n", "--------", strings.Repeat("-", 30), strings.Repeat("-", 34), strings.Repeat("-", 20))
	for _, e := range l.Window(from, to) {
		rel := e.T.Sub(from).Millis()
		c, s, d := "", "", ""
		switch e.Lane {
		case "client":
			c = e.Label
		case "server":
			s = e.Label
		default:
			d = e.Label
		}
		fmt.Fprintf(&b, "%9.3f  %-34s %-38s %s\n", rel, c, s, d)
	}
	return b.String()
}

// Summary counts events per lane prefix (first word of label).
func (l *Log) Summary(from, to sim.Time) map[string]int {
	out := make(map[string]int)
	for _, e := range l.Window(from, to) {
		key := e.Lane + ":" + strings.Fields(e.Label)[0]
		out[key]++
	}
	return out
}
