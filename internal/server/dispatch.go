package server

import (
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// nfsd is one server daemon: it drains the socket buffer forever,
// processing one request at a time (§4.2).
func (s *Server) nfsd(p *sim.Proc, id int) {
	for {
		s.serveOne(p, id, s.ep.Inbox.Get(p))
	}
}

// serveOne handles one datagram. The release is deferred so a crash that
// kills the nfsd mid-request (unwinding out of a device sleep or a
// procrastination) still drops the datagram's payload reference — without
// this, every request in flight at a crash would leak its body buffer.
func (s *Server) serveOne(p *sim.Proc, id int, dg *netsim.Datagram) {
	defer dg.Release()
	if s.OnServe != nil {
		queued, start := dg.Sent, p.Now()
		s.handle(p, id, dg)
		// The parse memoized by handle carries proc/xid; a call too
		// mangled to decode reports zeros. Placed after handle returns
		// (not deferred), so a crash that unwinds the nfsd mid-request
		// leaves no span — matching what the dead daemon got done.
		var proc nfsproto.Proc
		var xid uint32
		if pc, ok := dg.Parsed.(*parsedCall); ok && !pc.bad {
			proc, xid = pc.proc, pc.call.XID
		}
		s.OnServe(id, proc, xid, queued, start, p.Now())
	} else {
		s.handle(p, id, dg)
	}
	// The datagram record and its parse are dead once handled (decoded
	// slices alias the payload, not the records); recycle them. Write
	// parses are exempt only on a gathering server, where a detached
	// reply closure may still hold the WriteArgs after the handler
	// returns; the standard server always replies synchronously.
	if pc, ok := dg.Parsed.(*parsedCall); ok && (pc.write == nil || s.engine == nil) {
		s.putPC(pc)
	}
}

// parsedCall is the memoized decode of a queued datagram, shared between
// the dispatch path and the mbuf hunter. Records are pooled on the server
// and embed their decode targets, so the steady-state request path does
// not allocate per message.
type parsedCall struct {
	call     oncrpc.CallMsg
	proc     nfsproto.Proc
	write    *nfsproto.WriteArgs // non-nil for WRITE calls
	writeBuf nfsproto.WriteArgs
	// body is the datagram's refcounted payload segment for a split WRITE
	// (writeBuf.Data aliases it). It is a borrow of the datagram's
	// reference, valid only while the datagram is live; the filesystem
	// takes its own reference if it adopts the buffer.
	body *block.Buf
	bad  bool
}

// getPC takes a parse record from the pool.
func (s *Server) getPC() *parsedCall {
	if n := len(s.freePC); n > 0 {
		pc := s.freePC[n-1]
		s.freePC = s.freePC[:n-1]
		pc.write = nil
		pc.body = nil
		pc.bad = false
		return pc
	}
	return &parsedCall{}
}

func (s *Server) putPC(pc *parsedCall) {
	pc.body = nil
	s.freePC = append(s.freePC, pc)
}

// peek decodes a datagram once, caching the result on the datagram. A
// split WRITE decodes its argument head from the contiguous payload and
// aliases the data straight out of the datagram's body buffer.
func (s *Server) peek(dg *netsim.Datagram) *parsedCall {
	if pc, ok := dg.Parsed.(*parsedCall); ok {
		return pc
	}
	pc := s.getPC()
	if err := oncrpc.DecodeCallInto(dg.Payload, &pc.call); err != nil {
		pc.bad = true
	} else {
		pc.proc = nfsproto.Proc(pc.call.Proc)
		if pc.proc == nfsproto.ProcWrite {
			var err error
			if dg.Body != nil {
				err = nfsproto.DecodeWriteArgsSplitInto(pc.call.Args, dg.Body.Data()[:dg.BodyLen], &pc.writeBuf)
				pc.body = dg.Body
			} else {
				err = nfsproto.DecodeWriteArgsInto(pc.call.Args, &pc.writeBuf)
			}
			if err == nil {
				pc.write = &pc.writeBuf
			} else {
				pc.bad = true
			}
		}
	}
	dg.Parsed = pc
	return pc
}

// hunt is the mbuf hunter (§6.5): scan the socket buffer for another WRITE
// to the same file, skipping retransmissions already known to the
// duplicate cache (§6.9).
func (s *Server) hunt(ino vfs.Ino) bool {
	_, found := s.ep.Inbox.Scan(func(dg *netsim.Datagram) bool {
		pc := s.peek(dg)
		if pc.bad || pc.write == nil {
			return false
		}
		if vfs.Ino(pc.write.File.Ino()) != ino {
			return false
		}
		return !s.dup.contains(dupKey{client: dg.From, xid: pc.call.XID})
	}, false)
	return found
}

// handle processes one datagram on nfsd id.
func (s *Server) handle(p *sim.Proc, id int, dg *netsim.Datagram) {
	costs := &s.cfg.Costs
	// Packet input processing: one charge per link fragment, plus
	// dequeue/RPC decode/dispatch.
	s.charge(p, sim.Duration(dg.Frags)*costs.PerFragment+costs.RPCDispatch)

	pc := s.peek(dg)
	if pc.bad {
		s.BadCalls++
		return
	}
	call := &pc.call
	if call.Prog != nfsproto.Program || call.Vers != nfsproto.Version {
		s.sendRaw(p, dg.From, oncrpc.ErrorReply(call.XID, oncrpc.ProgUnavail).Encode())
		return
	}

	k := dupKey{client: dg.From, xid: call.XID}
	if e, isDup := s.dup.begin(k); isDup {
		switch e.state {
		case dupInProgress:
			// Drop the retransmission — but if this was a write whose
			// gather is now orphaned (its promised follower was this very
			// duplicate), adopt it (§6.9).
			s.DupDrops++
			if s.engine != nil && pc.write != nil {
				s.engine.AdoptOrphan(p, id, vfs.Ino(pc.write.File.Ino()))
			}
			return
		case dupDone:
			s.DupResends++
			s.sendRaw(p, dg.From, e.reply)
			return
		}
	}

	switch pc.proc {
	case nfsproto.ProcNull:
		s.replyEmpty(p, k)
		s.count(pc.proc, 0)
	case nfsproto.ProcGetattr:
		s.doGetattr(p, k, call)
	case nfsproto.ProcSetattr:
		s.doSetattr(p, k, call)
	case nfsproto.ProcLookup:
		s.doLookup(p, k, call)
	case nfsproto.ProcRead:
		s.doRead(p, k, call)
	case nfsproto.ProcWrite:
		s.doWrite(p, id, k, pc)
	case nfsproto.ProcCreate:
		s.doCreate(p, k, call, false)
	case nfsproto.ProcMkdir:
		s.doCreate(p, k, call, true)
	case nfsproto.ProcRemove:
		s.doRemove(p, k, call, false)
	case nfsproto.ProcRmdir:
		s.doRemove(p, k, call, true)
	case nfsproto.ProcRename:
		s.doRename(p, k, call)
	case nfsproto.ProcReaddir:
		s.doReaddir(p, k, call)
	case nfsproto.ProcStatfs:
		s.doStatfs(p, k, call)
	default:
		s.dup.forget(k)
		s.sendRaw(p, dg.From, oncrpc.ErrorReply(call.XID, oncrpc.ProcUnavail).Encode())
	}
}

// resultEncoder is the result half of an NFS procedure: it can report its
// exact wire size and append itself to an encoder, letting the server build
// header and results in one exactly-sized buffer.
type resultEncoder interface {
	EncodedSize() int
	EncodeTo(e *xdr.Encoder)
}

// Result scratch: each handler takes a per-server scratch struct AFTER
// its last yielding filesystem call, fills it, and encodes it into the
// wire buffer before its next yield, so a single instance per type
// suffices even with many nfsds — by the time another process can run,
// the scratch has already been serialized. Taking the scratch before a
// yielding call would let a concurrent nfsd reset or refill it mid-use.

func (s *Server) resAttrStat() *nfsproto.AttrStat {
	s.scratchAttrStat = nfsproto.AttrStat{}
	return &s.scratchAttrStat
}

func (s *Server) resDirOpRes() *nfsproto.DirOpRes {
	s.scratchDirOpRes = nfsproto.DirOpRes{}
	return &s.scratchDirOpRes
}

func (s *Server) resStatusRes() *nfsproto.StatusRes {
	s.scratchStatusRes = nfsproto.StatusRes{}
	return &s.scratchStatusRes
}

func (s *Server) resReadRes() *nfsproto.ReadRes {
	s.scratchReadRes = nfsproto.ReadRes{Data: nil}
	return &s.scratchReadRes
}

func (s *Server) resReaddirRes() *nfsproto.ReaddirRes {
	s.scratchReaddirRes.Status = 0
	s.scratchReaddirRes.EOF = false
	s.scratchReaddirRes.Entries = s.scratchReaddirRes.Entries[:0]
	return &s.scratchReaddirRes
}

func (s *Server) resStatfsRes() *nfsproto.StatfsRes {
	return &s.scratchStatfsRes
}

// getReadBuf takes a READ staging buffer from the pool. It is returned
// via putReadBuf once the reply has been encoded; reads in flight on other
// nfsds hold their own buffers.
func (s *Server) getReadBuf(n int) []byte {
	if k := len(s.readBufs); k > 0 {
		b := s.readBufs[k-1]
		s.readBufs = s.readBufs[:k-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n, nfsproto.MaxData)
}

func (s *Server) putReadBuf(b []byte) {
	if cap(b) == nfsproto.MaxData {
		s.readBufs = append(s.readBufs, b[:0])
	}
}

// successHeader appends the accepted-success header, carrying the boot
// verifier when this server build advertises one.
func (s *Server) successHeader(e *xdr.Encoder, xid uint32) {
	if s.cfg.BootVerifier != 0 {
		oncrpc.AppendSuccessHeaderBootVerf(e, xid, s.cfg.BootVerifier)
		return
	}
	oncrpc.AppendSuccessHeader(e, xid)
}

// successHeaderSize is the size the successHeader will occupy.
func (s *Server) successHeaderSize() int {
	if s.cfg.BootVerifier != 0 {
		return oncrpc.SuccessHeaderSize + oncrpc.BootVerfSize
	}
	return oncrpc.SuccessHeaderSize
}

// reply encodes, records and transmits a successful RPC reply. The RPC
// header and procedure results share a single buffer; no intermediate
// results slice is allocated.
func (s *Server) reply(p *sim.Proc, k dupKey, res resultEncoder) {
	e := xdr.NewEncoder(make([]byte, 0, s.successHeaderSize()+res.EncodedSize()))
	s.successHeader(e, k.xid)
	res.EncodeTo(e)
	raw := e.Bytes()
	s.dup.done(k, raw)
	s.sendRaw(p, k.client, raw)
}

// replyEmpty sends a success reply with empty results (NULL).
func (s *Server) replyEmpty(p *sim.Proc, k dupKey) {
	e := xdr.NewEncoder(make([]byte, 0, s.successHeaderSize()))
	s.successHeader(e, k.xid)
	raw := e.Bytes()
	s.dup.done(k, raw)
	s.sendRaw(p, k.client, raw)
}

func (s *Server) sendRaw(p *sim.Proc, to string, raw []byte) {
	s.charge(p, s.cfg.Costs.ReplySend)
	s.net.Send(p, s.cfg.Name, to, raw)
	s.RepliesSent++
}

// timeVal converts virtual time to an NFS timeval.
func timeVal(t sim.Time) nfsproto.TimeVal {
	us := int64(t)
	return nfsproto.TimeVal{Sec: uint32(us / 1_000_000), USec: uint32(us % 1_000_000)}
}

// fattrOf converts vfs attributes for a handle into the wire form.
func fattrOf(fh nfsproto.FH, a vfs.Attr) nfsproto.FAttr {
	ft := nfsproto.TypeReg
	mode := a.Mode | 0o100000
	if a.Type == vfs.TypeDir {
		ft = nfsproto.TypeDir
		mode = a.Mode | 0o040000
	}
	return nfsproto.FAttr{
		Type: ft, Mode: mode, NLink: a.NLink, UID: a.UID, GID: a.GID,
		Size: a.Size, BlockSize: 8192, Blocks: a.Blocks, FSID: fh.FSID(),
		FileID: uint32(fh.Ino()),
		ATime:  timeVal(a.ATime), MTime: timeVal(a.MTime), CTime: timeVal(a.CTime),
	}
}

// errStatus maps filesystem errors to NFS statuses.
func errStatus(err error) nfsproto.Status {
	switch err {
	case nil:
		return nfsproto.OK
	case vfs.ErrNoEnt:
		return nfsproto.ErrNoEnt
	case vfs.ErrExist:
		return nfsproto.ErrExist
	case vfs.ErrNotDir:
		return nfsproto.ErrNotDir
	case vfs.ErrIsDir:
		return nfsproto.ErrIsDir
	case vfs.ErrNotEmpty:
		return nfsproto.ErrNotEmpty
	case vfs.ErrNoSpace:
		return nfsproto.ErrNoSpc
	case vfs.ErrStale:
		return nfsproto.ErrStale
	case vfs.ErrFBig:
		return nfsproto.ErrFBig
	default:
		return nfsproto.ErrIO
	}
}

// handleFor builds the wire file handle for an inode.
func (s *Server) handleFor(p *sim.Proc, ino vfs.Ino) (nfsproto.FH, vfs.Attr, error) {
	a, err := s.fs.GetAttr(p, ino)
	if err != nil {
		return nfsproto.FH{}, a, err
	}
	return nfsproto.NewFH(s.fs.FSID(), uint64(ino), a.Gen), a, nil
}

// RootFH returns the exported root file handle (what MOUNT would hand out).
func (s *Server) RootFH() nfsproto.FH {
	return nfsproto.NewFH(s.fs.FSID(), uint64(s.fs.Root()), 0)
}

func (s *Server) doGetattr(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.LookupPath/2)
	args, err := nfsproto.DecodeFHArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	a, gerr := s.fs.GetAttr(p, vfs.Ino(args.File.Ino()))
	res := s.resAttrStat()
	if gerr != nil {
		res.Status = errStatus(gerr)
	} else {
		res.Attr = fattrOf(args.File, a)
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcGetattr, 0)
}

func (s *Server) doSetattr(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.MetaUpdate)
	args, err := nfsproto.DecodeSetattrArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	sa := vfs.SetAttr{}
	if args.Attr.Mode != nfsproto.NoValue {
		m := args.Attr.Mode
		sa.Mode = &m
	}
	if args.Attr.UID != nfsproto.NoValue {
		u := args.Attr.UID
		sa.UID = &u
	}
	if args.Attr.GID != nfsproto.NoValue {
		g := args.Attr.GID
		sa.GID = &g
	}
	if args.Attr.Size != nfsproto.NoValue {
		z := args.Attr.Size
		sa.Size = &z
	}
	a, serr := s.fs.SetAttrs(p, vfs.Ino(args.File.Ino()), sa)
	res := s.resAttrStat()
	if serr != nil {
		res.Status = errStatus(serr)
	} else {
		res.Attr = fattrOf(args.File, a)
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcSetattr, 0)
}

func (s *Server) doLookup(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.LookupPath)
	args, err := nfsproto.DecodeDirOpArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	ino, lerr := s.fs.Lookup(p, vfs.Ino(args.Dir.Ino()), args.Name)
	res := s.resDirOpRes()
	if lerr != nil {
		res.Status = errStatus(lerr)
	} else if fh, a, herr := s.handleFor(p, ino); herr != nil {
		res.Status = errStatus(herr)
	} else {
		res.File = fh
		res.Attr = fattrOf(fh, a)
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcLookup, 0)
}

func (s *Server) doRead(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.ReadPath)
	args, err := nfsproto.DecodeReadArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	count := args.Count
	if count > nfsproto.MaxData {
		count = nfsproto.MaxData
	}
	buf := s.getReadBuf(int(count))
	ino := vfs.Ino(args.File.Ino())
	n, rerr := s.fs.Read(p, ino, args.Offset, buf)
	res := s.resReadRes()
	if rerr != nil {
		res.Status = errStatus(rerr)
	} else {
		a, _ := s.fs.GetAttr(p, ino)
		res.Attr = fattrOf(args.File, a)
		res.Data = buf[:n]
	}
	s.reply(p, k, res)
	// reply has copied the data into the wire buffer; the read buffer can
	// be pooled again.
	s.putReadBuf(buf)
	s.count(nfsproto.ProcRead, n)
}

// doWrite is the server write layer: the standard fully synchronous path,
// or the gathering path when enabled.
func (s *Server) doWrite(p *sim.Proc, id int, k dupKey, pc *parsedCall) {
	args := pc.write
	ino := vfs.Ino(args.File.Ino())
	s.charge(p, s.cfg.Costs.VopWriteData)

	if s.engine == nil {
		// Standard server: VOP_WRITE with IO_SYNC commits data and
		// metadata before the reply, serialized on the vnode lock as the
		// reference port does. A split payload lands through the zero-copy
		// entry point.
		s.locks.Lock(p, ino)
		var err error
		if pc.body != nil {
			err = s.fs.WriteBuf(p, ino, args.Offset, pc.body, len(args.Data), vfs.IOSync)
		} else {
			err = s.fs.Write(p, ino, args.Offset, args.Data, vfs.IOSync)
		}
		s.locks.Unlock(ino)
		s.writeReply(p, k, args, ino, err == nil, err)
		return
	}

	// Gathering server (§6.8). The reply is detached into the descriptor;
	// whichever nfsd becomes the metadata writer sends it.
	s.charge(p, s.cfg.Costs.GatherCheck)
	d := &core.WriteDesc{
		Ino:     ino,
		Offset:  args.Offset,
		Length:  uint32(len(args.Data)),
		Body:    pc.body,
		Arrived: s.sim.Now(),
		Send: func(p *sim.Proc, ok bool) {
			s.writeReply(p, k, args, ino, ok, nil)
		},
	}
	// Errors are reported through Send(ok=false); nothing more to do here.
	_ = s.engine.HandleWrite(p, id, d, args.Data)
}

// writeReply builds and sends a WRITE reply, auditing it when configured.
func (s *Server) writeReply(p *sim.Proc, k dupKey, args *nfsproto.WriteArgs, ino vfs.Ino, ok bool, err error) {
	res := s.resAttrStat()
	if !ok || err != nil {
		if err == nil {
			err = vfs.ErrNoSpace
		}
		res.Status = errStatus(err)
	} else {
		a, gerr := s.fs.GetAttr(p, ino)
		if gerr != nil {
			res.Status = errStatus(gerr)
		} else {
			res.Attr = fattrOf(args.File, a)
		}
	}
	if res.Status == nfsproto.OK && s.cfg.RecordReplies {
		s.ReplyLog = append(s.ReplyLog, ReplyRecord{
			Client: k.client, XID: k.xid, Ino: ino,
			Offset: args.Offset, Length: uint32(len(args.Data)), When: s.sim.Now(),
		})
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcWrite, len(args.Data))
}

func (s *Server) doCreate(p *sim.Proc, k dupKey, call *oncrpc.CallMsg, dir bool) {
	s.charge(p, s.cfg.Costs.VopWriteData)
	args, err := nfsproto.DecodeCreateArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	mode := args.Attr.Mode
	if mode == nfsproto.NoValue {
		mode = 0644
	}
	var ino vfs.Ino
	var cerr error
	if dir {
		ino, cerr = s.fs.Mkdir(p, vfs.Ino(args.Where.Dir.Ino()), args.Where.Name, mode)
	} else {
		ino, cerr = s.fs.Create(p, vfs.Ino(args.Where.Dir.Ino()), args.Where.Name, mode)
	}
	res := s.resDirOpRes()
	if cerr != nil {
		res.Status = errStatus(cerr)
	} else if fh, a, herr := s.handleFor(p, ino); herr != nil {
		res.Status = errStatus(herr)
	} else {
		res.File = fh
		res.Attr = fattrOf(fh, a)
	}
	s.reply(p, k, res)
	if dir {
		s.count(nfsproto.ProcMkdir, 0)
	} else {
		s.count(nfsproto.ProcCreate, 0)
	}
}

func (s *Server) doRemove(p *sim.Proc, k dupKey, call *oncrpc.CallMsg, dir bool) {
	s.charge(p, s.cfg.Costs.VopWriteData)
	args, err := nfsproto.DecodeDirOpArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	var rerr error
	if dir {
		rerr = s.fs.Rmdir(p, vfs.Ino(args.Dir.Ino()), args.Name)
	} else {
		rerr = s.fs.Remove(p, vfs.Ino(args.Dir.Ino()), args.Name)
	}
	res := s.resStatusRes()
	res.Status = errStatus(rerr)
	s.reply(p, k, res)
	if dir {
		s.count(nfsproto.ProcRmdir, 0)
	} else {
		s.count(nfsproto.ProcRemove, 0)
	}
}

func (s *Server) doRename(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.VopWriteData)
	args, err := nfsproto.DecodeRenameArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	rerr := s.fs.Rename(p,
		vfs.Ino(args.From.Dir.Ino()), args.From.Name,
		vfs.Ino(args.To.Dir.Ino()), args.To.Name)
	res := s.resStatusRes()
	res.Status = errStatus(rerr)
	s.reply(p, k, res)
	s.count(nfsproto.ProcRename, 0)
}

func (s *Server) doReaddir(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.ReadPath)
	args, err := nfsproto.DecodeReaddirArgs(call.Args)
	if err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	ents, eof, rerr := s.fs.Readdir(p, vfs.Ino(args.Dir.Ino()), args.Cookie, int(args.Count))
	res := s.resReaddirRes()
	if rerr != nil {
		res.Status = errStatus(rerr)
	} else {
		res.EOF = eof
		for _, e := range ents {
			res.Entries = append(res.Entries, nfsproto.DirEntry{
				FileID: uint32(e.Ino), Name: e.Name, Cookie: e.Cookie,
			})
		}
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcReaddir, 0)
}

func (s *Server) doStatfs(p *sim.Proc, k dupKey, call *oncrpc.CallMsg) {
	s.charge(p, s.cfg.Costs.LookupPath/2)
	if _, err := nfsproto.DecodeFHArgs(call.Args); err != nil {
		s.dup.forget(k)
		s.sendRaw(p, k.client, oncrpc.ErrorReply(k.xid, oncrpc.GarbageArgs).Encode())
		return
	}
	bs, blocks, free := s.fs.Statfs(p)
	res := s.resStatfsRes()
	*res = nfsproto.StatfsRes{
		Status: nfsproto.OK, TSize: 8192, BSize: uint32(bs),
		Blocks: uint32(blocks), BFree: uint32(free), BAvail: uint32(free),
	}
	s.reply(p, k, res)
	s.count(nfsproto.ProcStatfs, 0)
}
