// Package server implements the NFS server: a pool of nfsd processes
// draining a socket buffer, ONC RPC dispatch, a duplicate request cache,
// the standard fully-synchronous write path, and (optionally) the write
// gathering path provided by internal/core. CPU time is charged against a
// single CPU resource according to the hw.CPUParams cost table, which is
// what the paper's "server cpu util (%)" rows measure.
package server

import (
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/nvram"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ufs"
	"repro/internal/vfs"
)

// DefaultSockBuf is the server socket buffer bound: "DEC OSF/1 currently
// uses a maximum of .25M for socket buffering" (§9).
const DefaultSockBuf = 256 * 1024

// Config selects the server build.
type Config struct {
	// Name is the network endpoint name.
	Name string
	// NumNfsds is the daemon pool size (the paper's experiments use 8 for
	// file copies and 32 for LADDIS).
	NumNfsds int
	// Gathering enables the write gathering engine.
	Gathering bool
	// Gather is the engine policy (used when Gathering).
	Gather core.Config
	// Costs is the CPU cost table.
	Costs hw.CPUParams
	// Accelerated marks the filesystem's device as NVRAM-accelerated; the
	// server write layer queries this state and changes policy (§6.3).
	Accelerated bool
	// SockBufBytes bounds the receive socket buffer (0 = DefaultSockBuf).
	SockBufBytes int
	// DupCacheCap bounds the duplicate request cache entries.
	DupCacheCap int
	// RecordReplies keeps a log of every WRITE reply for crash audits.
	RecordReplies bool
	// BootVerifier, when non-zero, is a boot-instance id carried in the
	// verifier of every success reply. A rebooted server presents a new
	// id, which is how clients learn the dup cache is gone. Zero keeps the
	// classic empty AUTH_NULL verifier (and the classic wire sizes).
	BootVerifier uint64
	// CPU, when non-nil, is the CPU resource to charge; it lets callers
	// share one resource between the server and device charge wrappers
	// built before the server. A fresh resource is created otherwise.
	CPU *sim.Resource
}

// ReplyRecord is one audited WRITE reply (crash-consistency tests replay
// these against the remounted filesystem).
type ReplyRecord struct {
	Client string
	XID    uint32
	Ino    vfs.Ino
	Offset uint32
	Length uint32
	When   sim.Time
}

// Server is one NFS server instance attached to a network.
type Server struct {
	sim *sim.Sim
	cfg Config
	fs  *ufs.FS
	net *netsim.Network
	ep  *netsim.Endpoint
	cpu *sim.Resource

	engine *core.Engine
	locks  *core.VnodeLocks
	dup    *dupCache
	freePC []*parsedCall // parse record pool
	procs  []*sim.Proc   // the nfsd pool, for crash injection

	// Per-server result scratch (see dispatch.go).
	scratchAttrStat   nfsproto.AttrStat
	scratchDirOpRes   nfsproto.DirOpRes
	scratchStatusRes  nfsproto.StatusRes
	scratchReadRes    nfsproto.ReadRes
	scratchReaddirRes nfsproto.ReaddirRes
	scratchStatfsRes  nfsproto.StatfsRes
	readBufs          [][]byte

	// Counters the experiments read.
	OpCounts    map[nfsproto.Proc]*stats.Counter
	RepliesSent uint64
	BadCalls    uint64
	DupDrops    uint64
	DupResends  uint64
	ReplyLog    []ReplyRecord

	// OnServe, when non-nil, observes every datagram an nfsd finishes
	// handling: which daemon, the decoded proc/xid (zero for undecodable
	// calls), when the request entered the socket buffer, and the
	// handling window. The observability plane turns these into server
	// spans with queue-wait attribution. Requests abandoned by a crash
	// mid-handling are not reported.
	OnServe func(nfsd int, proc nfsproto.Proc, xid uint32, queued, start, end sim.Time)

	cpuMark sim.Duration
}

// New attaches a server to net serving fs. The device stack must already
// be assembled (including any Presto board and CPU charge wrappers; see
// NewChargedDevice).
func New(s *sim.Sim, n *netsim.Network, fs *ufs.FS, cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "server"
	}
	if cfg.NumNfsds <= 0 {
		cfg.NumNfsds = 8
	}
	if cfg.SockBufBytes == 0 {
		cfg.SockBufBytes = DefaultSockBuf
	}
	if cfg.DupCacheCap == 0 {
		cfg.DupCacheCap = 1024
	}
	cpu := cfg.CPU
	if cpu == nil {
		cpu = sim.NewResource(s, 1)
	}
	srv := &Server{
		sim:      s,
		cfg:      cfg,
		fs:       fs,
		net:      n,
		ep:       n.Attach(cfg.Name, 0, cfg.SockBufBytes),
		cpu:      cpu,
		dup:      newDupCache(cfg.DupCacheCap),
		OpCounts: make(map[nfsproto.Proc]*stats.Counter),
	}
	if cfg.Gathering {
		srv.engine = core.NewEngine(s, fs, cfg.NumNfsds, cfg.Gather, srv.hunt)
		srv.locks = srv.engine.Locks()
	} else {
		srv.locks = core.NewVnodeLocks(s)
	}
	for i := 0; i < cfg.NumNfsds; i++ {
		id := i
		srv.procs = append(srv.procs, s.Spawn("nfsd", func(p *sim.Proc) { srv.nfsd(p, id) }))
	}
	return srv
}

// Procs returns the server's daemon processes; a crash injector kills
// them, losing whatever request state they held.
func (s *Server) Procs() []*sim.Proc { return s.procs }

// Name returns the server's endpoint name.
func (s *Server) Name() string { return s.cfg.Name }

// Endpoint returns the server's network endpoint (tests inspect drops).
func (s *Server) Endpoint() *netsim.Endpoint { return s.ep }

// Engine returns the gathering engine, nil on a standard server.
func (s *Server) Engine() *core.Engine { return s.engine }

// FS returns the served filesystem.
func (s *Server) FS() *ufs.FS { return s.fs }

// CPU returns the server CPU resource.
func (s *Server) CPU() *sim.Resource { return s.cpu }

// CPUBusy reports accumulated CPU busy time.
func (s *Server) CPUBusy() sim.Duration { return s.cpu.BusyTime() }

// ResetCPUInterval marks the start of a CPU measurement interval.
func (s *Server) ResetCPUInterval() { s.cpuMark = s.cpu.BusyTime() }

// CPUPercent reports CPU utilization over [interval start, now].
func (s *Server) CPUPercent(since sim.Time) float64 {
	now := s.sim.Now()
	el := now.Sub(since)
	if el <= 0 {
		return 0
	}
	return 100 * float64(s.cpu.BusyTime()-s.cpuMark) / float64(el)
}

// charge consumes d of server CPU on behalf of p.
func (s *Server) charge(p *sim.Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	s.cpu.Use(p, d)
}

// count records one completed operation of the given type moving n bytes.
func (s *Server) count(proc nfsproto.Proc, n int) {
	c, ok := s.OpCounts[proc]
	if !ok {
		c = &stats.Counter{}
		s.OpCounts[proc] = c
	}
	c.Add(n)
}

// ChargedDevice wraps a disk.Device so that every transaction issued
// through it charges driver-trip (and, for NVRAM boards, copy) CPU time to
// the issuing process. Stacking order matters: wrap the raw disk for drain
// trips, wrap the Presto board for the nfsd-visible costs.
type ChargedDevice struct {
	disk.Device
	cpu *sim.Resource
	// TripCost is charged per transaction.
	TripCost sim.Duration
	// CopyPer8K is charged per 8K written (NVRAM copy cost); zero for raw
	// disks.
	CopyPer8K sim.Duration
	// CopyLimit bounds the size eligible for copy charging (the board's
	// acceptance limit); larger writes are declined and cost a trip only.
	CopyLimit int
}

// NewChargedDevice wraps dev with per-transaction CPU charging.
func NewChargedDevice(dev disk.Device, cpu *sim.Resource, trip sim.Duration) *ChargedDevice {
	return &ChargedDevice{Device: dev, cpu: cpu, TripCost: trip}
}

// NewChargedNVRAM wraps a Presto board with trip + copy charging.
func NewChargedNVRAM(dev *nvram.Presto, cpu *sim.Resource, trip, copyPer8K sim.Duration, copyLimit int) *ChargedDevice {
	return &ChargedDevice{Device: dev, cpu: cpu, TripCost: trip, CopyPer8K: copyPer8K, CopyLimit: copyLimit}
}

// writeCost computes the CPU charge for an n-byte write.
func (c *ChargedDevice) writeCost(n int) sim.Duration {
	cost := c.TripCost
	if c.CopyPer8K > 0 && (c.CopyLimit == 0 || n <= c.CopyLimit) {
		cost += sim.Duration(int64(c.CopyPer8K) * int64(n) / 8192)
	}
	return cost
}

// WriteBlocks implements disk.Device.
func (c *ChargedDevice) WriteBlocks(p *sim.Proc, blk int64, data []byte) error {
	if cost := c.writeCost(len(data)); cost > 0 {
		c.cpu.Use(p, cost)
	}
	return c.Device.WriteBlocks(p, blk, data)
}

// WriteBufs implements disk.Device: the zero-copy path pays exactly the
// same modelled CPU costs as the byte path — the simulated 1994 kernel
// still does its driver trip and NVRAM board copy; only the simulator's
// own host-side memmoves were eliminated.
func (c *ChargedDevice) WriteBufs(p *sim.Proc, blk int64, bufs []*block.Buf) error {
	if cost := c.writeCost(len(bufs) * c.Device.BlockSize()); cost > 0 {
		c.cpu.Use(p, cost)
	}
	return c.Device.WriteBufs(p, blk, bufs)
}

// ReadBlocks implements disk.Device.
func (c *ChargedDevice) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	if c.TripCost > 0 {
		c.cpu.Use(p, c.TripCost)
	}
	return c.Device.ReadBlocks(p, blk, buf)
}
