package server

// dupCache is the duplicate request cache (Juszczak 1989): retransmitted
// requests whose originals are still in progress are dropped; ones whose
// replies were already sent get the cached reply resent, avoiding
// re-execution of non-idempotent operations.

type dupKey struct {
	client string
	xid    uint32
}

type dupState int

const (
	dupInProgress dupState = iota
	dupDone
)

type dupEntry struct {
	state dupState
	reply []byte
}

type dupCache struct {
	cap     int
	entries map[dupKey]*dupEntry
	order   []dupKey
	head    int // index of the oldest entry in order
	free    []*dupEntry
}

func newDupCache(cap int) *dupCache {
	return &dupCache{cap: cap, entries: make(map[dupKey]*dupEntry)}
}

// begin registers a request as in progress. It returns (entry, true) when
// the key was already present — i.e. the incoming request is a duplicate.
func (c *dupCache) begin(k dupKey) (*dupEntry, bool) {
	if e, ok := c.entries[k]; ok {
		return e, true
	}
	var e *dupEntry
	if n := len(c.free); n > 0 {
		e = c.free[n-1]
		c.free = c.free[:n-1]
		e.state = dupInProgress
		e.reply = nil
	} else {
		e = &dupEntry{state: dupInProgress}
	}
	c.entries[k] = e
	c.order = append(c.order, k)
	c.evict()
	return e, false
}

// done records the reply bytes for later resends.
func (c *dupCache) done(k dupKey, reply []byte) {
	if e, ok := c.entries[k]; ok {
		e.state = dupDone
		e.reply = reply
	}
}

// forget removes a key (used when a request errors before any reply state
// should be retained).
func (c *dupCache) forget(k dupKey) {
	if e, ok := c.entries[k]; ok {
		delete(c.entries, k)
		e.reply = nil
		c.free = append(c.free, e)
	}
}

// contains reports whether the key is known (in progress or done); the
// mbuf hunter uses it to avoid counting duplicates as gatherable writes.
func (c *dupCache) contains(k dupKey) bool {
	_, ok := c.entries[k]
	return ok
}

func (c *dupCache) evict() {
	// Never evict in-progress entries: that could double-execute a write.
	// Rotate them to the back instead — but scan at most one full pass so
	// a cache of nothing-but-in-progress entries (more outstanding
	// requests than cap) overflows gracefully instead of spinning.
	scanned := 0
	for len(c.order)-c.head > c.cap && scanned < len(c.order)-c.head {
		victim := c.order[c.head]
		c.order[c.head] = dupKey{}
		c.head++
		if e, ok := c.entries[victim]; ok && e.state == dupInProgress {
			c.order = append(c.order, victim)
			scanned++
			continue
		} else if ok {
			c.free = append(c.free, e)
			delete(c.entries, victim)
		}
	}
	// Compact once the dead prefix dominates, so order stays O(cap)
	// instead of growing for the life of the run.
	if c.head > 0 && (c.head == len(c.order) || c.head >= len(c.order)/2) {
		n := copy(c.order, c.order[c.head:])
		tail := c.order[n:]
		for i := range tail {
			tail[i] = dupKey{}
		}
		c.order = c.order[:n]
		c.head = 0
	}
}
