package server

import (
	"testing"

	"repro/internal/block"
	"repro/internal/client"
	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// TestWriteBurstAllocAndCopyGuard is the server-side counterpart of the
// client decode alloc guard: a LADDIS-style burst of 8K WRITEs driven
// through the full stack — RPC dispatch, the gathering engine, the ufs
// buffer cache and the NVRAM board down to the platters — must move the
// payload with ZERO copies in steady state (the wire body is adopted by
// the buffer cache and travels to NVRAM and the platter store by
// reference), and the whole round trip must stay within a small allocs/op
// budget once every pool is warm.
func TestWriteBurstAllocAndCopyGuard(t *testing.T) {
	r := newRig(t, 11, rigOpts{gathering: true, presto: true, fddi: true})
	root := r.srv.RootFH()

	const burst = 8 // the largest LADDIS write burst
	var fh nfsproto.FH
	trigger := sim.NewQueue[int](r.sim, 0)
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "burst.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		fh = cres.File
		for {
			trigger.Get(p)
			for i := 0; i < burst; i++ {
				buf := r.cli.GetWriteBuf()
				off := uint32(i) * nfsproto.MaxData
				client.FillPattern(buf.Data(), off)
				if err := r.cli.WriteSyncBufRelease(p, fh, off, buf, nfsproto.MaxData); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
			}
		}
	})

	oneBurst := func() {
		trigger.Put(0)
		r.sim.Run(0) // runs the burst AND the full NVRAM drain to platters
	}
	// Warm-up: first pass allocates the file and every pool; a few more
	// passes settle the drain elevator and the dup cache.
	for i := 0; i < 16; i++ {
		oneBurst()
	}

	copies0 := block.Copies()
	allocs := testing.AllocsPerRun(50, oneBurst)
	copied := block.Copies() - copies0

	// Steady-state overwrites adopt the wire payload into the cache and
	// hand it by reference to NVRAM and the disk: no payload byte is
	// memmoved anywhere in the pipeline. Any regression — a revived
	// platter-store copy, a cluster assembly buffer, an un-adopted cache
	// landing — shows up here as 8K+ per write.
	if copied != 0 {
		t.Fatalf("write burst copied %d bytes/burst through the data path, want 0 "+
			"(%.1f bytes per 8K write)", copied, float64(copied)/(51*burst))
	}

	// The allocs budget covers what the round trip legitimately allocates
	// per WRITE: the client's head wire buffer + encoder, the server's
	// reply wire buffer, and the dup-cache bookkeeping. 8 writes/burst.
	perOp := allocs / burst
	if perOp > 10 {
		t.Fatalf("steady-state WRITE costs %.1f allocs/op (%.0f per burst); "+
			"the pooled write path has regressed", perOp, allocs)
	}
	t.Logf("write burst: %.1f allocs/op, %d payload bytes copied", perOp, copied)
}

// TestWriteBurstNoBufLeak sweeps a write burst and then checks the global
// buffer accounting: at quiesce, every outstanding buffer reference must
// be attributable to a long-lived store slot (buffer cache, NVRAM dirty
// map, platter store) — a reference held by a dead datagram, a released
// staging buffer or an unwound process has nowhere to hide in this
// equation.
func TestWriteBurstNoBufLeak(t *testing.T) {
	refs0 := block.TotalRefs()
	r := newRig(t, 12, rigOpts{gathering: true, presto: true, biods: 4, fddi: true})
	root := r.srv.RootFH()

	done := false
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "leak.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		if _, err := r.cli.WriteFile(p, cres.File, 1<<20); err != nil {
			t.Errorf("WriteFile: %v", err)
			return
		}
		done = true
	})
	r.sim.Run(0)
	if !done {
		t.Fatal("app did not finish")
	}

	expected := int64(r.fs.CachedBufs() + r.disk.StoredBufs() + r.presto.DirtyBufs())
	if got := block.TotalRefs() - refs0; got != expected {
		t.Fatalf("block accounting off after sweep: %d refs outstanding, %d retained by "+
			"cache/platter/NVRAM slots — %+d leaked", got, expected, got-expected)
	}
}
