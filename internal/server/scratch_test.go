package server

import (
	"testing"

	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// TestConcurrentHandlersDoNotShareResultState pins the scratch-struct
// discipline in dispatch.go: a handler must take its per-server result
// scratch only after its last yielding filesystem call. A SETATTR commits
// the inode synchronously (the nfsd yields on disk I/O mid-handler); if
// another nfsd handles a failing GETATTR on a stale handle during that
// yield and they share result state taken too early, the successful
// SETATTR comes back with the other handler's error status.
func TestConcurrentHandlersDoNotShareResultState(t *testing.T) {
	r := newRig(t, 7, rigOpts{nfsds: 4})
	root := r.srv.RootFH()

	stale := nfsproto.NewFH(1, 499, 42) // no such inode: GETATTR fails

	var setattrs, errs int
	r.sim.Spawn("setattr-app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "victim.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		for i := 0; i < 100; i++ {
			res, err := r.cli.Setattr(p, cres.File, nfsproto.DefaultSAttr(0600))
			if err != nil {
				t.Errorf("setattr rpc %d: %v", i, err)
				return
			}
			setattrs++
			if res.Status != nfsproto.OK {
				errs++
			}
		}
	})
	r.sim.Spawn("stale-app", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			res, err := r.cli.Getattr(p, stale)
			if err != nil || res.Status == nfsproto.OK {
				t.Errorf("stale getattr %d should fail cleanly: %v %v", i, err, res)
				return
			}
		}
	})
	r.sim.Run(0)

	if setattrs != 100 {
		t.Fatalf("only %d/100 setattrs completed", setattrs)
	}
	if errs != 0 {
		t.Fatalf("%d/%d successful SETATTRs carried an error status leaked from a concurrent handler", errs, setattrs)
	}
}
