package server

import (
	"bytes"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/nvram"
	"repro/internal/oncrpc"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/vfs"
)

// rig is a complete client/server testbed on one network.
type rig struct {
	sim    *sim.Sim
	net    *netsim.Network
	disk   *disk.Disk
	presto *nvram.Presto
	fs     *ufs.FS
	srv    *Server
	cli    *client.Client
}

type rigOpts struct {
	gathering bool
	presto    bool
	biods     int
	nfsds     int
	fddi      bool
	record    bool
}

func newRig(t *testing.T, seed int64, o rigOpts) *rig {
	t.Helper()
	s := sim.New(seed)
	np := hw.Ethernet()
	if o.fddi {
		np = hw.FDDI()
	}
	n := netsim.New(s, np)
	costs := hw.DEC3000CPU()

	r := &rig{sim: s, net: n}
	r.disk = disk.New(s, hw.RZ26(), nil)
	nfsds := o.nfsds
	if nfsds == 0 {
		nfsds = 8
	}
	srvCPU := sim.NewResource(s, 1)
	cfg := Config{
		NumNfsds:      nfsds,
		Gathering:     o.gathering,
		Costs:         costs,
		Accelerated:   o.presto,
		RecordReplies: o.record,
		CPU:           srvCPU,
	}
	if o.gathering {
		cfg.Gather = core.DefaultConfig(o.presto, np.Procrastinate)
	}
	var dev disk.Device = NewChargedDevice(r.disk, srvCPU, costs.DriverTrip)
	if o.presto {
		r.presto = nvram.New(s, hw.Prestoserve(), dev, nil)
		dev = NewChargedNVRAM(r.presto, srvCPU, costs.DriverTrip, costs.NVRAMCopyPer8K, hw.Prestoserve().MaxIO)
	}
	fs, err := ufs.Format(s, dev, 1, 512, nil)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	r.fs = fs
	r.srv = New(s, n, fs, cfg)
	fs.ChargeMeta = func(p *sim.Proc) { r.srv.charge(p, costs.MetaUpdate) }
	r.cli = client.New(s, n, "client1", "server", hw.DEC3000Client(), o.biods, nil)
	return r
}

func TestEndToEndCreateWriteRead(t *testing.T) {
	r := newRig(t, 1, rigOpts{biods: 4})
	root := r.srv.RootFH()
	done := false
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "file.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("Create: %v %v", err, cres)
			return
		}
		payload := make([]byte, 8192)
		client.FillPattern(payload, 0)
		if err := r.cli.WriteSync(p, cres.File, 0, payload); err != nil {
			t.Errorf("Write: %v", err)
			return
		}
		rres, err := r.cli.Read(p, cres.File, 0, 8192)
		if err != nil || rres.Status != nfsproto.OK {
			t.Errorf("Read: %v %v", err, rres)
			return
		}
		if !bytes.Equal(rres.Data, payload) {
			t.Error("read-back over the wire mismatch")
		}
		done = true
	})
	r.sim.Run(0)
	if !done {
		t.Fatal("app did not finish")
	}
}

func TestEndToEndGatheringWriteRead(t *testing.T) {
	r := newRig(t, 1, rigOpts{gathering: true, biods: 4, fddi: true})
	root := r.srv.RootFH()
	var elapsed sim.Duration
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "big.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("Create: %v", err)
			return
		}
		elapsed, err = r.cli.WriteFile(p, cres.File, 256*1024)
		if err != nil {
			t.Errorf("WriteFile: %v", err)
			return
		}
		// Read back a few blocks and verify.
		for _, off := range []uint32{0, 8192, 31 * 8192} {
			rres, err := r.cli.Read(p, cres.File, off, 8192)
			if err != nil || rres.Status != nfsproto.OK {
				t.Errorf("Read @%d: %v", off, err)
				return
			}
			want := make([]byte, 8192)
			client.FillPattern(want, off)
			if !bytes.Equal(rres.Data, want) {
				t.Errorf("content mismatch at %d", off)
			}
		}
	})
	r.sim.Run(0)
	if elapsed == 0 {
		t.Fatal("no elapsed time recorded")
	}
	st := r.srv.Engine().Stats()
	if st.Writes != 32 {
		t.Fatalf("engine saw %d writes, want 32", st.Writes)
	}
	if st.Gathers == 0 || st.GatheredWrites != 32 {
		t.Fatalf("stats = %+v", st)
	}
	// Gathering must have batched several writes per metadata commit.
	if float64(st.GatheredWrites)/float64(st.Gathers) < 2 {
		t.Fatalf("mean batch %f < 2", float64(st.GatheredWrites)/float64(st.Gathers))
	}
	if r.srv.Engine().PendingReplies() != 0 {
		t.Fatal("pending replies leaked")
	}
}

func TestGatheringReducesDiskTransactions(t *testing.T) {
	const fileSize = 512 * 1024
	run := func(gather bool) (uint64, sim.Duration) {
		r := newRig(t, 7, rigOpts{gathering: gather, biods: 7, fddi: true})
		root := r.srv.RootFH()
		var elapsed sim.Duration
		r.sim.Spawn("app", func(p *sim.Proc) {
			cres, _ := r.cli.Create(p, root, "f", 0644)
			elapsed, _ = r.cli.WriteFile(p, cres.File, fileSize)
		})
		r.sim.Run(0)
		return r.disk.Stats().Trans(), elapsed
	}
	transStd, elStd := run(false)
	transGather, elGather := run(true)
	if transGather >= transStd {
		t.Fatalf("gathering did not reduce disk transactions: %d vs %d", transGather, transStd)
	}
	// With 7 biods the paper reports large gains; insist on at least 2x
	// fewer transactions and faster completion.
	if transStd < 2*transGather {
		t.Fatalf("expected >=2x transaction reduction: std=%d gather=%d", transStd, transGather)
	}
	if elGather >= elStd {
		t.Fatalf("gathering slower: %v vs %v", elGather, elStd)
	}
}

func TestZeroBiodPenalty(t *testing.T) {
	// §6.10: single-threaded clients lose with gathering (added latency,
	// no gain).
	const fileSize = 256 * 1024
	run := func(gather bool) sim.Duration {
		r := newRig(t, 3, rigOpts{gathering: gather, biods: 0})
		root := r.srv.RootFH()
		var elapsed sim.Duration
		r.sim.Spawn("app", func(p *sim.Proc) {
			cres, _ := r.cli.Create(p, root, "f", 0644)
			elapsed, _ = r.cli.WriteFile(p, cres.File, fileSize)
		})
		r.sim.Run(0)
		return elapsed
	}
	std := run(false)
	gather := run(true)
	if gather <= std {
		t.Fatalf("0-biod gathering should be slower: std=%v gather=%v", std, gather)
	}
	loss := float64(gather-std) / float64(std)
	if loss > 0.6 {
		t.Fatalf("0-biod loss %.0f%% implausibly large", loss*100)
	}
}

func TestDuplicateRequestDropsAndResends(t *testing.T) {
	// Hand-craft a WRITE and send the identical datagram three times: the
	// first executes, in-flight copies are dropped, and a copy arriving
	// after the reply gets the cached reply resent — the write itself must
	// execute exactly once.
	r := newRig(t, 1, rigOpts{biods: 0})
	raw := r.net.Attach("rawcli", 0, 0)
	root := r.srv.RootFH()
	var replies int
	r.sim.Spawn("rawrecv", func(p *sim.Proc) {
		for {
			raw.Inbox.Get(p)
			replies++
		}
	})
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "f", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("Create: %v", err)
			return
		}
		wa := &nfsproto.WriteArgs{File: cres.File, Offset: 0, Data: make([]byte, 1024)}
		call := &oncrpc.CallMsg{
			XID: 424242, Prog: nfsproto.Program, Vers: nfsproto.Version,
			Proc: uint32(nfsproto.ProcWrite),
			Cred: oncrpc.NullAuth(), Verf: oncrpc.NullAuth(),
			Args: wa.Encode(),
		}
		enc := call.Encode()
		// Two back-to-back copies: second should be dropped as in-progress.
		r.net.Send(p, "rawcli", "server", enc)
		r.net.Send(p, "rawcli", "server", enc)
		// Third copy after the original surely completed.
		p.Sleep(2 * sim.Second)
		r.net.Send(p, "rawcli", "server", enc)
	})
	r.sim.Run(sim.Time(5 * sim.Second))
	if replies != 2 {
		t.Fatalf("replies = %d, want 2 (original + cached resend)", replies)
	}
	if r.srv.DupDrops < 1 {
		t.Fatalf("DupDrops = %d, want >=1", r.srv.DupDrops)
	}
	if r.srv.DupResends != 1 {
		t.Fatalf("DupResends = %d, want 1", r.srv.DupResends)
	}
	if c := r.srv.OpCounts[nfsproto.ProcWrite]; c == nil || c.Ops != 1 {
		t.Fatalf("write executed %v times, want exactly 1", c)
	}
}

func TestCrashAuditEveryRepliedWriteDurable(t *testing.T) {
	// The central correctness claim: no reply before stable storage. Run a
	// gathered workload, stop the world mid-flight at several instants,
	// recover NVRAM to the platters, remount, and verify every write the
	// server REPLIED to is present.
	for _, cut := range []sim.Duration{50, 120, 300, 700} {
		cutoff := sim.Time(cut * sim.Millisecond)
		r := newRig(t, 11, rigOpts{gathering: true, biods: 7, fddi: true, record: true})
		root := r.srv.RootFH()
		r.sim.Spawn("app", func(p *sim.Proc) {
			cres, err := r.cli.Create(p, root, "f", 0644)
			if err != nil {
				return
			}
			r.cli.WriteFile(p, cres.File, 2*1024*1024)
		})
		r.sim.Spawn("super", func(p *sim.Proc) { r.fs.WriteSuper(p) })
		r.sim.Run(cutoff) // crash here

		// Post-crash: volatile state gone; NVRAM (none in this rig) and
		// platters survive.
		replied := make([]ReplyRecord, len(r.srv.ReplyLog))
		copy(replied, r.srv.ReplyLog)
		r.fs.DropCaches()
		s2 := sim.New(99)
		s2.Spawn("audit", func(p *sim.Proc) {
			m, err := ufs.Mount(s2, p, r.disk, nil)
			if err != nil {
				t.Errorf("cut=%v: Mount: %v", cut, err)
				return
			}
			for _, rec := range replied {
				got := make([]byte, rec.Length)
				n, err := m.Read(p, rec.Ino, rec.Offset, got)
				if err != nil || uint32(n) != rec.Length {
					t.Errorf("cut=%v: replied write @%d unreadable after crash: n=%d err=%v", cut, rec.Offset, n, err)
					return
				}
				want := make([]byte, rec.Length)
				client.FillPattern(want, rec.Offset)
				if !bytes.Equal(got, want) {
					t.Errorf("cut=%v: replied write @%d corrupt after crash", cut, rec.Offset)
					return
				}
			}
		})
		s2.Run(0)
	}
}

func TestCrashAuditWithPresto(t *testing.T) {
	cutoff := sim.Time(150 * sim.Millisecond)
	r := newRig(t, 13, rigOpts{gathering: true, presto: true, biods: 7, fddi: true, record: true})
	root := r.srv.RootFH()
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, err := r.cli.Create(p, root, "f", 0644)
		if err != nil {
			return
		}
		r.cli.WriteFile(p, cres.File, 2*1024*1024)
	})
	r.sim.Spawn("super", func(p *sim.Proc) { r.fs.WriteSuper(p) })
	r.sim.Run(cutoff)

	replied := make([]ReplyRecord, len(r.srv.ReplyLog))
	copy(replied, r.srv.ReplyLog)
	if len(replied) == 0 {
		t.Fatal("no replies before the cutoff; test is vacuous")
	}
	// NVRAM is stable storage: its post-crash recovery flushes to disk.
	r.presto.RecoverTo(r.disk)
	r.fs.DropCaches()
	s2 := sim.New(99)
	s2.Spawn("audit", func(p *sim.Proc) {
		m, err := ufs.Mount(s2, p, r.disk, nil)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		for _, rec := range replied {
			got := make([]byte, rec.Length)
			n, err := m.Read(p, rec.Ino, rec.Offset, got)
			if err != nil || uint32(n) != rec.Length {
				t.Errorf("replied write @%d unreadable: n=%d err=%v", rec.Offset, n, err)
				return
			}
			want := make([]byte, rec.Length)
			client.FillPattern(want, rec.Offset)
			if !bytes.Equal(got, want) {
				t.Errorf("replied write @%d corrupt", rec.Offset)
				return
			}
		}
	})
	s2.Run(0)
}

func TestGatheredRepliesShareMTime(t *testing.T) {
	r := newRig(t, 5, rigOpts{gathering: true, biods: 7, fddi: true})
	root := r.srv.RootFH()
	var mtimes []nfsproto.TimeVal
	r.sim.Spawn("app", func(p *sim.Proc) {
		cres, _ := r.cli.Create(p, root, "f", 0644)
		fh := cres.File
		// Issue 4 concurrent writes via separate procs to land in one batch.
		done := 0
		cond := sim.NewCond(r.sim)
		for i := 0; i < 4; i++ {
			off := uint32(i * 8192)
			r.sim.Spawn("w", func(q *sim.Proc) {
				data := make([]byte, 8192)
				args := &nfsproto.WriteArgs{File: fh, Offset: off, Data: data}
				reply, err := r.cli.Call(q, nfsproto.ProcWrite, args.Encode())
				if err == nil {
					if res, err := nfsproto.DecodeAttrStat(reply.Results); err == nil && res.Status == nfsproto.OK {
						mtimes = append(mtimes, res.Attr.MTime)
					}
				}
				done++
				cond.Broadcast()
			})
		}
		for done < 4 {
			cond.Wait(p)
		}
	})
	r.sim.Run(0)
	if len(mtimes) != 4 {
		t.Fatalf("got %d write replies", len(mtimes))
	}
	for _, mt := range mtimes[1:] {
		if mt != mtimes[0] {
			t.Fatalf("gathered replies carry different mtimes: %v", mtimes)
		}
	}
}

func TestStandardServerNoEngine(t *testing.T) {
	r := newRig(t, 1, rigOpts{})
	if r.srv.Engine() != nil {
		t.Fatal("standard server has a gathering engine")
	}
}

func TestSocketBufferDropsRecovered(t *testing.T) {
	// Tiny socket buffer forces drops; retransmission must still complete
	// the file, and the duplicate cache must keep writes exactly-once.
	s := sim.New(21)
	n := netsim.New(s, hw.FDDI())
	costs := hw.DEC3000CPU()
	srvCPU := sim.NewResource(s, 1)
	d := disk.New(s, hw.RZ26(), nil)
	charged := NewChargedDevice(d, srvCPU, costs.DriverTrip)
	fs, _ := ufs.Format(s, charged, 1, 128, nil)
	cfg := Config{
		NumNfsds: 2, Gathering: true,
		Gather:       core.DefaultConfig(false, hw.FDDI().Procrastinate),
		Costs:        costs,
		SockBufBytes: 20000, // fits two 8K writes
	}
	srv := New(s, n, fs, cfg)
	srv.cpu = srvCPU
	cli := client.New(s, n, "c", "server", fastRetransClient(), 7, nil)
	root := srv.RootFH()
	var err error
	var elapsed sim.Duration
	s.Spawn("app", func(p *sim.Proc) {
		cres, cerr := cli.Create(p, root, "f", 0644)
		if cerr != nil {
			err = cerr
			return
		}
		elapsed, err = cli.WriteFile(p, cres.File, 512*1024)
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("WriteFile with drops: %v", err)
	}
	if srv.Endpoint().Drops() == 0 {
		t.Skip("no drops provoked; socket buffer too large for this load")
	}
	if cli.Retransmissions == 0 {
		t.Fatal("drops happened but client never retransmitted")
	}
	if srv.Engine().PendingReplies() != 0 {
		t.Fatal("descriptors leaked under retransmission")
	}
	_ = elapsed
}

// fastRetransClient shortens the retransmission timer so drop tests finish
// quickly.
func fastRetransClient() hw.ClientParams {
	p := hw.DEC3000Client()
	p.RetransTimeout = 50 * sim.Millisecond
	return p
}

func TestDupCacheEviction(t *testing.T) {
	c := newDupCache(2)
	k1 := dupKey{"a", 1}
	k2 := dupKey{"a", 2}
	k3 := dupKey{"a", 3}
	c.begin(k1)
	c.done(k1, []byte{1})
	c.begin(k2)
	c.done(k2, []byte{2})
	c.begin(k3) // evicts k1
	if c.contains(k1) {
		t.Fatal("k1 survived eviction")
	}
	if !c.contains(k2) || !c.contains(k3) {
		t.Fatal("wrong eviction victim")
	}
}

func TestDupCacheNeverEvictsInProgress(t *testing.T) {
	c := newDupCache(1)
	k1 := dupKey{"a", 1}
	c.begin(k1) // in progress
	c.begin(dupKey{"a", 2})
	c.begin(dupKey{"a", 3})
	if !c.contains(k1) {
		t.Fatal("in-progress entry evicted")
	}
}

var _ = vfs.ErrNoEnt // keep import when test bodies change
