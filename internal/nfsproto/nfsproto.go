// Package nfsproto implements the NFS version 2 protocol (RFC 1094):
// file handles, attributes, per-procedure argument and result structures,
// and their XDR codecs. The structures are shared by the simulated client
// and server and by the real-UDP example server.
package nfsproto

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// Program identity.
const (
	Program = 100003
	Version = 2
)

// Proc identifies an NFSv2 procedure.
type Proc uint32

// NFSv2 procedure numbers.
const (
	ProcNull       Proc = 0
	ProcGetattr    Proc = 1
	ProcSetattr    Proc = 2
	ProcRoot       Proc = 3 // obsolete
	ProcLookup     Proc = 4
	ProcReadlink   Proc = 5
	ProcRead       Proc = 6
	ProcWritecache Proc = 7 // unused in v2
	ProcWrite      Proc = 8
	ProcCreate     Proc = 9
	ProcRemove     Proc = 10
	ProcRename     Proc = 11
	ProcLink       Proc = 12
	ProcSymlink    Proc = 13
	ProcMkdir      Proc = 14
	ProcRmdir      Proc = 15
	ProcReaddir    Proc = 16
	ProcStatfs     Proc = 17
	procCount           = 18
)

var procNames = [procCount]string{
	"NULL", "GETATTR", "SETATTR", "ROOT", "LOOKUP", "READLINK", "READ",
	"WRITECACHE", "WRITE", "CREATE", "REMOVE", "RENAME", "LINK", "SYMLINK",
	"MKDIR", "RMDIR", "READDIR", "STATFS",
}

func (p Proc) String() string {
	if int(p) < len(procNames) {
		return procNames[p]
	}
	return fmt.Sprintf("PROC(%d)", uint32(p))
}

// Status is an NFSv2 status code ("stat" in RFC 1094).
type Status uint32

// NFSv2 status codes.
const (
	OK             Status = 0
	ErrPerm        Status = 1
	ErrNoEnt       Status = 2
	ErrIO          Status = 5
	ErrNXIO        Status = 6
	ErrAcces       Status = 13
	ErrExist       Status = 17
	ErrNoDev       Status = 19
	ErrNotDir      Status = 20
	ErrIsDir       Status = 21
	ErrFBig        Status = 27
	ErrNoSpc       Status = 28
	ErrROFS        Status = 30
	ErrNameTooLong Status = 63
	ErrNotEmpty    Status = 66
	ErrDQuot       Status = 69
	ErrStale       Status = 70
	ErrWFlush      Status = 99
)

func (s Status) String() string {
	switch s {
	case OK:
		return "NFS_OK"
	case ErrPerm:
		return "NFSERR_PERM"
	case ErrNoEnt:
		return "NFSERR_NOENT"
	case ErrIO:
		return "NFSERR_IO"
	case ErrAcces:
		return "NFSERR_ACCES"
	case ErrExist:
		return "NFSERR_EXIST"
	case ErrNotDir:
		return "NFSERR_NOTDIR"
	case ErrIsDir:
		return "NFSERR_ISDIR"
	case ErrFBig:
		return "NFSERR_FBIG"
	case ErrNoSpc:
		return "NFSERR_NOSPC"
	case ErrROFS:
		return "NFSERR_ROFS"
	case ErrNotEmpty:
		return "NFSERR_NOTEMPTY"
	case ErrStale:
		return "NFSERR_STALE"
	case ErrWFlush:
		return "NFSERR_WFLUSH"
	default:
		return fmt.Sprintf("NFSERR(%d)", uint32(s))
	}
}

// Err converts a non-OK status to a Go error (nil for OK).
func (s Status) Err() error {
	if s == OK {
		return nil
	}
	return fmt.Errorf("nfs: %s", s)
}

// Protocol size constants.
const (
	FHSize     = 32   // bytes in a file handle
	MaxData    = 8192 // maximum READ/WRITE transfer
	MaxPathLen = 1024
	MaxNameLen = 255
	CookieSize = 4
	BlockSize  = 8192 // client/server transfer unit assumed by the paper
)

// ErrTruncated reports a structurally bad message.
var ErrTruncated = errors.New("nfsproto: truncated message")

// FH is an NFSv2 file handle: 32 opaque bytes. This implementation packs a
// filesystem id and inode number into the first bytes and leaves the rest
// zero, as many servers did.
type FH [FHSize]byte

// NewFH builds a file handle from a filesystem id, an inode number and a
// generation count.
func NewFH(fsid uint32, ino uint64, gen uint32) FH {
	var fh FH
	fh[0] = byte(fsid >> 24)
	fh[1] = byte(fsid >> 16)
	fh[2] = byte(fsid >> 8)
	fh[3] = byte(fsid)
	for i := 0; i < 8; i++ {
		fh[4+i] = byte(ino >> (56 - 8*i))
	}
	fh[12] = byte(gen >> 24)
	fh[13] = byte(gen >> 16)
	fh[14] = byte(gen >> 8)
	fh[15] = byte(gen)
	return fh
}

// FSID extracts the filesystem id.
func (f FH) FSID() uint32 {
	return uint32(f[0])<<24 | uint32(f[1])<<16 | uint32(f[2])<<8 | uint32(f[3])
}

// Ino extracts the inode number.
func (f FH) Ino() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f[4+i])
	}
	return v
}

// Gen extracts the generation count.
func (f FH) Gen() uint32 {
	return uint32(f[12])<<24 | uint32(f[13])<<16 | uint32(f[14])<<8 | uint32(f[15])
}

func (f FH) String() string {
	return fmt.Sprintf("fh(fs=%d,ino=%d,gen=%d)", f.FSID(), f.Ino(), f.Gen())
}

// FType is an NFSv2 file type.
type FType uint32

// File types.
const (
	TypeNone FType = 0
	TypeReg  FType = 1
	TypeDir  FType = 2
	TypeBlk  FType = 3
	TypeChr  FType = 4
	TypeLnk  FType = 5
)

// TimeVal is seconds/microseconds, NFSv2 style.
type TimeVal struct {
	Sec  uint32
	USec uint32
}

// Less reports whether t is earlier than u.
func (t TimeVal) Less(u TimeVal) bool {
	return t.Sec < u.Sec || (t.Sec == u.Sec && t.USec < u.USec)
}

// FAttr is the fattr structure: the file attributes returned by most
// procedures. Write gathering guarantees that all gathered replies carry
// the same MTime.
type FAttr struct {
	Type      FType
	Mode      uint32
	NLink     uint32
	UID, GID  uint32
	Size      uint32
	BlockSize uint32
	Rdev      uint32
	Blocks    uint32
	FSID      uint32
	FileID    uint32
	ATime     TimeVal
	MTime     TimeVal
	CTime     TimeVal
}

func (a *FAttr) encode(e *xdr.Encoder) {
	e.Uint32(uint32(a.Type))
	e.Uint32(a.Mode)
	e.Uint32(a.NLink)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint32(a.Size)
	e.Uint32(a.BlockSize)
	e.Uint32(a.Rdev)
	e.Uint32(a.Blocks)
	e.Uint32(a.FSID)
	e.Uint32(a.FileID)
	e.Uint32(a.ATime.Sec)
	e.Uint32(a.ATime.USec)
	e.Uint32(a.MTime.Sec)
	e.Uint32(a.MTime.USec)
	e.Uint32(a.CTime.Sec)
	e.Uint32(a.CTime.USec)
}

func decodeFAttr(d *xdr.Decoder) (FAttr, error) {
	var a FAttr
	fields := []*uint32{
		(*uint32)(&a.Type), &a.Mode, &a.NLink, &a.UID, &a.GID, &a.Size,
		&a.BlockSize, &a.Rdev, &a.Blocks, &a.FSID, &a.FileID,
		&a.ATime.Sec, &a.ATime.USec, &a.MTime.Sec, &a.MTime.USec,
		&a.CTime.Sec, &a.CTime.USec,
	}
	for _, f := range fields {
		v, err := d.Uint32()
		if err != nil {
			return a, err
		}
		*f = v
	}
	return a, nil
}

// NoValue marks an SAttr field as "do not set".
const NoValue = 0xFFFFFFFF

// SAttr is the sattr structure used by SETATTR/CREATE/MKDIR; fields set to
// NoValue are left unchanged by the server.
type SAttr struct {
	Mode     uint32
	UID, GID uint32
	Size     uint32
	ATime    TimeVal
	MTime    TimeVal
}

// DefaultSAttr returns an SAttr that sets only the mode.
func DefaultSAttr(mode uint32) SAttr {
	return SAttr{
		Mode: mode, UID: NoValue, GID: NoValue, Size: NoValue,
		ATime: TimeVal{NoValue, NoValue}, MTime: TimeVal{NoValue, NoValue},
	}
}

func (a *SAttr) encode(e *xdr.Encoder) {
	e.Uint32(a.Mode)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint32(a.Size)
	e.Uint32(a.ATime.Sec)
	e.Uint32(a.ATime.USec)
	e.Uint32(a.MTime.Sec)
	e.Uint32(a.MTime.USec)
}

func decodeSAttr(d *xdr.Decoder) (SAttr, error) {
	var a SAttr
	fields := []*uint32{
		&a.Mode, &a.UID, &a.GID, &a.Size,
		&a.ATime.Sec, &a.ATime.USec, &a.MTime.Sec, &a.MTime.USec,
	}
	for _, f := range fields {
		v, err := d.Uint32()
		if err != nil {
			return a, err
		}
		*f = v
	}
	return a, nil
}

// AttrStat is the common (status, attributes) result.
type AttrStat struct {
	Status Status
	Attr   FAttr
}

// fattrSize is the encoded size of an FAttr (17 words).
const fattrSize = 68

// EncodedSize reports the exact encoded size of the result.
func (r *AttrStat) EncodedSize() int {
	if r.Status == OK {
		return 4 + fattrSize
	}
	return 4
}

// EncodeTo appends the result to e.
func (r *AttrStat) EncodeTo(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.encode(e)
	}
}

// Encode serializes the result.
func (r *AttrStat) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeAttrStat parses an attrstat result.
func DecodeAttrStat(b []byte) (*AttrStat, error) {
	r := &AttrStat{}
	if err := DecodeAttrStatInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeAttrStatInto parses an attrstat result into a caller-owned struct
// (which may be pooled or per-client scratch).
func DecodeAttrStatInto(b []byte, r *AttrStat) error {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	*r = AttrStat{Status: Status(st)}
	if r.Status == OK {
		if r.Attr, err = decodeFAttr(d); err != nil {
			return err
		}
	}
	return nil
}

// DirOpArgs names an entry within a directory.
type DirOpArgs struct {
	Dir  FH
	Name string
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *DirOpArgs) EncodedSize() int { return FHSize + xdr.OpaqueSize(len(a.Name)) }

// EncodeTo appends the arguments to e.
func (a *DirOpArgs) EncodeTo(e *xdr.Encoder) {
	e.FixedOpaque(a.Dir[:])
	e.String(a.Name)
}

// Encode serializes the arguments.
func (a *DirOpArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeDirOpArgs parses diropargs.
func DecodeDirOpArgs(b []byte) (*DirOpArgs, error) {
	d := xdr.NewDecoder(b)
	a := &DirOpArgs{}
	if err := decodeFH(d, &a.Dir); err != nil {
		return nil, err
	}
	var err error
	if a.Name, err = d.String(); err != nil {
		return nil, err
	}
	return a, nil
}

func decodeFH(d *xdr.Decoder, fh *FH) error {
	b, err := d.FixedOpaqueRef(FHSize)
	if err != nil {
		return err
	}
	copy(fh[:], b)
	return nil
}

// DirOpRes is the (status, file handle, attributes) result of LOOKUP and
// CREATE-family procedures.
type DirOpRes struct {
	Status Status
	File   FH
	Attr   FAttr
}

// EncodedSize reports the exact encoded size of the result.
func (r *DirOpRes) EncodedSize() int {
	if r.Status == OK {
		return 4 + FHSize + fattrSize
	}
	return 4
}

// EncodeTo appends the result to e.
func (r *DirOpRes) EncodeTo(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		e.FixedOpaque(r.File[:])
		r.Attr.encode(e)
	}
}

// Encode serializes the result.
func (r *DirOpRes) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeDirOpRes parses a diropres result.
func DecodeDirOpRes(b []byte) (*DirOpRes, error) {
	r := &DirOpRes{}
	if err := DecodeDirOpResInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeDirOpResInto parses a diropres result into a caller-owned struct.
func DecodeDirOpResInto(b []byte, r *DirOpRes) error {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	*r = DirOpRes{Status: Status(st)}
	if r.Status == OK {
		if err := decodeFH(d, &r.File); err != nil {
			return err
		}
		if r.Attr, err = decodeFAttr(d); err != nil {
			return err
		}
	}
	return nil
}

// SetattrArgs are the SETATTR arguments.
type SetattrArgs struct {
	File FH
	Attr SAttr
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *SetattrArgs) EncodedSize() int { return FHSize + 32 }

// EncodeTo appends the arguments to e.
func (a *SetattrArgs) EncodeTo(e *xdr.Encoder) {
	e.FixedOpaque(a.File[:])
	a.Attr.encode(e)
}

// Encode serializes the arguments.
func (a *SetattrArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeSetattrArgs parses SETATTR arguments.
func DecodeSetattrArgs(b []byte) (*SetattrArgs, error) {
	d := xdr.NewDecoder(b)
	a := &SetattrArgs{}
	if err := decodeFH(d, &a.File); err != nil {
		return nil, err
	}
	var err error
	if a.Attr, err = decodeSAttr(d); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadArgs are the READ arguments.
type ReadArgs struct {
	File       FH
	Offset     uint32
	Count      uint32
	TotalCount uint32 // unused by the protocol
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *ReadArgs) EncodedSize() int { return FHSize + 12 }

// EncodeTo appends the arguments to e.
func (a *ReadArgs) EncodeTo(e *xdr.Encoder) {
	e.FixedOpaque(a.File[:])
	e.Uint32(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(a.TotalCount)
}

// Encode serializes the arguments.
func (a *ReadArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeReadArgs parses READ arguments.
func DecodeReadArgs(b []byte) (*ReadArgs, error) {
	d := xdr.NewDecoder(b)
	a := &ReadArgs{}
	if err := decodeFH(d, &a.File); err != nil {
		return nil, err
	}
	var err error
	if a.Offset, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Count, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.TotalCount, err = d.Uint32(); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadRes is the READ result.
type ReadRes struct {
	Status Status
	Attr   FAttr
	Data   []byte
}

// EncodedSize reports the exact encoded size of the result.
func (r *ReadRes) EncodedSize() int {
	if r.Status == OK {
		return 4 + fattrSize + xdr.OpaqueSize(len(r.Data))
	}
	return 4
}

// EncodeTo appends the result to e.
func (r *ReadRes) EncodeTo(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.encode(e)
		e.Opaque(r.Data)
	}
}

// Encode serializes the result.
func (r *ReadRes) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeReadRes parses a READ result.
func DecodeReadRes(b []byte) (*ReadRes, error) {
	r := &ReadRes{}
	if err := DecodeReadResInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeReadResInto parses a READ result into a caller-owned struct. Data
// aliases b.
func DecodeReadResInto(b []byte, r *ReadRes) error {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	*r = ReadRes{Status: Status(st)}
	if r.Status == OK {
		if r.Attr, err = decodeFAttr(d); err != nil {
			return err
		}
		if r.Data, err = d.OpaqueRef(); err != nil {
			return err
		}
	}
	return nil
}

// WriteArgs are the WRITE arguments. BeginOffset and TotalCount are unused
// by the protocol but present on the wire.
type WriteArgs struct {
	File        FH
	BeginOffset uint32
	Offset      uint32
	TotalCount  uint32
	Data        []byte
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *WriteArgs) EncodedSize() int { return FHSize + 12 + xdr.OpaqueSize(len(a.Data)) }

// EncodeTo appends the arguments to e.
func (a *WriteArgs) EncodeTo(e *xdr.Encoder) {
	e.FixedOpaque(a.File[:])
	e.Uint32(a.BeginOffset)
	e.Uint32(a.Offset)
	e.Uint32(a.TotalCount)
	e.Opaque(a.Data)
}

// Encode serializes the arguments.
func (a *WriteArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeWriteArgs parses WRITE arguments. Data aliases b.
func DecodeWriteArgs(b []byte) (*WriteArgs, error) {
	a := &WriteArgs{}
	if err := DecodeWriteArgsInto(b, a); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeWriteArgsInto parses WRITE arguments into a caller-owned struct
// (which may be pooled). Data aliases b.
func DecodeWriteArgsInto(b []byte, a *WriteArgs) error {
	d := xdr.NewDecoder(b)
	if err := decodeFH(d, &a.File); err != nil {
		return err
	}
	var err error
	if a.BeginOffset, err = d.Uint32(); err != nil {
		return err
	}
	if a.Offset, err = d.Uint32(); err != nil {
		return err
	}
	if a.TotalCount, err = d.Uint32(); err != nil {
		return err
	}
	if a.Data, err = d.OpaqueRef(); err != nil {
		return err
	}
	return nil
}

// WireSize reports the encoded size of the WRITE call body (args only),
// used by the network model without re-encoding.
func (a *WriteArgs) WireSize() int {
	n := len(a.Data)
	return FHSize + 12 + 4 + n + (4-n%4)%4
}

// WriteArgsHeadSize is the encoded size of WRITE arguments up to and
// including the opaque data length word: the head segment of a split
// (zero-copy) WRITE, whose data bytes travel as a refcounted datagram
// body instead of being memmoved into the wire buffer.
const WriteArgsHeadSize = FHSize + 16

// AppendWriteArgsHead appends the WRITE argument head — fixed fields plus
// the data length word — for a payload of n bytes whose data rides as a
// separate datagram body segment. n must be a multiple of 4 (no XDR
// padding can follow a split body).
func AppendWriteArgsHead(e *xdr.Encoder, fh FH, off uint32, n int) {
	e.FixedOpaque(fh[:])
	e.Uint32(0) // BeginOffset, unused on the wire
	e.Uint32(off)
	e.Uint32(uint32(n)) // TotalCount
	e.Uint32(uint32(n)) // opaque data length
}

// DecodeWriteArgsSplitInto parses a split WRITE's argument head from b and
// attaches body as the data, verifying the length word agrees. Data
// aliases body.
func DecodeWriteArgsSplitInto(b []byte, body []byte, a *WriteArgs) error {
	d := xdr.NewDecoder(b)
	if err := decodeFH(d, &a.File); err != nil {
		return err
	}
	var err error
	if a.BeginOffset, err = d.Uint32(); err != nil {
		return err
	}
	if a.Offset, err = d.Uint32(); err != nil {
		return err
	}
	if a.TotalCount, err = d.Uint32(); err != nil {
		return err
	}
	n, err := d.Uint32()
	if err != nil {
		return err
	}
	if int(n) != len(body) {
		return fmt.Errorf("nfsproto: split WRITE length %d, body %d", n, len(body))
	}
	a.Data = body
	return nil
}

// CreateArgs are CREATE and MKDIR arguments.
type CreateArgs struct {
	Where DirOpArgs
	Attr  SAttr
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *CreateArgs) EncodedSize() int { return a.Where.EncodedSize() + 32 }

// EncodeTo appends the arguments to e.
func (a *CreateArgs) EncodeTo(e *xdr.Encoder) {
	a.Where.EncodeTo(e)
	a.Attr.encode(e)
}

// Encode serializes the arguments.
func (a *CreateArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeCreateArgs parses CREATE/MKDIR arguments.
func DecodeCreateArgs(b []byte) (*CreateArgs, error) {
	d := xdr.NewDecoder(b)
	a := &CreateArgs{}
	if err := decodeFH(d, &a.Where.Dir); err != nil {
		return nil, err
	}
	var err error
	if a.Where.Name, err = d.String(); err != nil {
		return nil, err
	}
	if a.Attr, err = decodeSAttr(d); err != nil {
		return nil, err
	}
	return a, nil
}

// RenameArgs are the RENAME arguments.
type RenameArgs struct {
	From DirOpArgs
	To   DirOpArgs
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *RenameArgs) EncodedSize() int { return a.From.EncodedSize() + a.To.EncodedSize() }

// EncodeTo appends the arguments to e.
func (a *RenameArgs) EncodeTo(e *xdr.Encoder) {
	a.From.EncodeTo(e)
	a.To.EncodeTo(e)
}

// Encode serializes the arguments.
func (a *RenameArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeRenameArgs parses RENAME arguments.
func DecodeRenameArgs(b []byte) (*RenameArgs, error) {
	d := xdr.NewDecoder(b)
	a := &RenameArgs{}
	if err := decodeFH(d, &a.From.Dir); err != nil {
		return nil, err
	}
	var err error
	if a.From.Name, err = d.String(); err != nil {
		return nil, err
	}
	if err := decodeFH(d, &a.To.Dir); err != nil {
		return nil, err
	}
	if a.To.Name, err = d.String(); err != nil {
		return nil, err
	}
	return a, nil
}

// StatusRes is the bare-status result of SETATTR-like procedures on the
// wire (RFC 1094 returns attrstat for SETATTR; REMOVE/RENAME/RMDIR return
// only a status).
type StatusRes struct {
	Status Status
}

// EncodedSize reports the exact encoded size of the result.
func (r *StatusRes) EncodedSize() int { return 4 }

// EncodeTo appends the result to e.
func (r *StatusRes) EncodeTo(e *xdr.Encoder) { e.Uint32(uint32(r.Status)) }

// Encode serializes the result.
func (r *StatusRes) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, 4))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeStatusRes parses a status-only result.
func DecodeStatusRes(b []byte) (*StatusRes, error) {
	r := &StatusRes{}
	if err := DecodeStatusResInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeStatusResInto parses a status-only result into a caller-owned
// struct.
func DecodeStatusResInto(b []byte, r *StatusRes) error {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Status = Status(st)
	return nil
}

// ReaddirArgs are the READDIR arguments.
type ReaddirArgs struct {
	Dir    FH
	Cookie uint32
	Count  uint32
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *ReaddirArgs) EncodedSize() int { return FHSize + 8 }

// EncodeTo appends the arguments to e.
func (a *ReaddirArgs) EncodeTo(e *xdr.Encoder) {
	e.FixedOpaque(a.Dir[:])
	e.Uint32(a.Cookie)
	e.Uint32(a.Count)
}

// Encode serializes the arguments.
func (a *ReaddirArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, a.EncodedSize()))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeReaddirArgs parses READDIR arguments.
func DecodeReaddirArgs(b []byte) (*ReaddirArgs, error) {
	d := xdr.NewDecoder(b)
	a := &ReaddirArgs{}
	if err := decodeFH(d, &a.Dir); err != nil {
		return nil, err
	}
	var err error
	if a.Cookie, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Count, err = d.Uint32(); err != nil {
		return nil, err
	}
	return a, nil
}

// DirEntry is one READDIR entry.
type DirEntry struct {
	FileID uint32
	Name   string
	Cookie uint32
}

// ReaddirRes is the READDIR result.
type ReaddirRes struct {
	Status  Status
	Entries []DirEntry
	EOF     bool
}

// EncodedSize reports the exact encoded size of the result.
func (r *ReaddirRes) EncodedSize() int {
	if r.Status != OK {
		return 4
	}
	n := 4 + 8
	for _, ent := range r.Entries {
		n += 12 + xdr.OpaqueSize(len(ent.Name))
	}
	return n
}

// EncodeTo appends the result to e.
func (r *ReaddirRes) EncodeTo(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		for _, ent := range r.Entries {
			e.Bool(true) // value follows
			e.Uint32(ent.FileID)
			e.String(ent.Name)
			e.Uint32(ent.Cookie)
		}
		e.Bool(false) // end of list
		e.Bool(r.EOF)
	}
}

// Encode serializes the result.
func (r *ReaddirRes) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeReaddirRes parses a READDIR result.
func DecodeReaddirRes(b []byte) (*ReaddirRes, error) {
	r := &ReaddirRes{}
	if err := DecodeReaddirResInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeReaddirResInto parses a READDIR result into a caller-owned struct,
// reusing its Entries backing.
func DecodeReaddirResInto(b []byte, r *ReaddirRes) error {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Status = Status(st)
	r.EOF = false
	r.Entries = r.Entries[:0]
	if r.Status != OK {
		return nil
	}
	for {
		more, err := d.Bool()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		var ent DirEntry
		if ent.FileID, err = d.Uint32(); err != nil {
			return err
		}
		if ent.Name, err = d.String(); err != nil {
			return err
		}
		if ent.Cookie, err = d.Uint32(); err != nil {
			return err
		}
		r.Entries = append(r.Entries, ent)
	}
	if r.EOF, err = d.Bool(); err != nil {
		return err
	}
	return nil
}

// StatfsRes is the STATFS result.
type StatfsRes struct {
	Status Status
	TSize  uint32 // optimal transfer size
	BSize  uint32 // block size
	Blocks uint32 // total blocks
	BFree  uint32 // free blocks
	BAvail uint32 // free blocks available to non-root
}

// EncodedSize reports the exact encoded size of the result.
func (r *StatfsRes) EncodedSize() int {
	if r.Status == OK {
		return 24
	}
	return 4
}

// EncodeTo appends the result to e.
func (r *StatfsRes) EncodeTo(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		e.Uint32(r.TSize)
		e.Uint32(r.BSize)
		e.Uint32(r.Blocks)
		e.Uint32(r.BFree)
		e.Uint32(r.BAvail)
	}
}

// Encode serializes the result.
func (r *StatfsRes) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	r.EncodeTo(e)
	return e.Bytes()
}

// DecodeStatfsRes parses a STATFS result.
func DecodeStatfsRes(b []byte) (*StatfsRes, error) {
	d := xdr.NewDecoder(b)
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &StatfsRes{Status: Status(st)}
	if r.Status != OK {
		return r, nil
	}
	fields := []*uint32{&r.TSize, &r.BSize, &r.Blocks, &r.BFree, &r.BAvail}
	for _, f := range fields {
		if *f, err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// FHArgs is the single-file-handle argument used by GETATTR, READLINK and
// STATFS.
type FHArgs struct {
	File FH
}

// EncodedSize reports the exact encoded size of the arguments.
func (a *FHArgs) EncodedSize() int { return FHSize }

// EncodeTo appends the arguments to e.
func (a *FHArgs) EncodeTo(e *xdr.Encoder) { e.FixedOpaque(a.File[:]) }

// Encode serializes the arguments.
func (a *FHArgs) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, FHSize))
	a.EncodeTo(e)
	return e.Bytes()
}

// DecodeFHArgs parses a file-handle argument.
func DecodeFHArgs(b []byte) (*FHArgs, error) {
	d := xdr.NewDecoder(b)
	a := &FHArgs{}
	if err := decodeFH(d, &a.File); err != nil {
		return nil, err
	}
	return a, nil
}
