package nfsproto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFHPacking(t *testing.T) {
	fh := NewFH(7, 123456789, 42)
	if fh.FSID() != 7 {
		t.Fatalf("FSID = %d", fh.FSID())
	}
	if fh.Ino() != 123456789 {
		t.Fatalf("Ino = %d", fh.Ino())
	}
	if fh.Gen() != 42 {
		t.Fatalf("Gen = %d", fh.Gen())
	}
}

func TestFHQuickPacking(t *testing.T) {
	f := func(fsid uint32, ino uint64, gen uint32) bool {
		fh := NewFH(fsid, ino, gen)
		return fh.FSID() == fsid && fh.Ino() == ino && fh.Gen() == gen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFHDistinct(t *testing.T) {
	a := NewFH(1, 2, 3)
	b := NewFH(1, 3, 3)
	if a == b {
		t.Fatal("distinct inodes produced equal handles")
	}
}

func sampleAttr() FAttr {
	return FAttr{
		Type: TypeReg, Mode: 0644, NLink: 1, UID: 10, GID: 20,
		Size: 8192, BlockSize: 8192, Blocks: 2, FSID: 1, FileID: 55,
		ATime: TimeVal{100, 1}, MTime: TimeVal{200, 2}, CTime: TimeVal{300, 3},
	}
}

func TestAttrStatRoundTrip(t *testing.T) {
	r := &AttrStat{Status: OK, Attr: sampleAttr()}
	got, err := DecodeAttrStat(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *got != *r {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestAttrStatError(t *testing.T) {
	r := &AttrStat{Status: ErrStale}
	got, err := DecodeAttrStat(r.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Status != ErrStale {
		t.Fatalf("Status = %v", got.Status)
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	a := &WriteArgs{File: NewFH(1, 2, 3), BeginOffset: 0, Offset: 16384, TotalCount: 8192, Data: data}
	enc := a.Encode()
	if len(enc) != a.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d", a.WireSize(), len(enc))
	}
	got, err := DecodeWriteArgs(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.File != a.File || got.Offset != a.Offset || !bytes.Equal(got.Data, a.Data) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteArgsQuick(t *testing.T) {
	f := func(off uint32, data []byte) bool {
		if len(data) > MaxData {
			data = data[:MaxData]
		}
		a := &WriteArgs{File: NewFH(1, 9, 0), Offset: off, Data: data}
		enc := a.Encode()
		if len(enc) != a.WireSize() {
			return false
		}
		got, err := DecodeWriteArgs(enc)
		return err == nil && got.Offset == off && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadArgsResRoundTrip(t *testing.T) {
	a := &ReadArgs{File: NewFH(1, 7, 0), Offset: 4096, Count: 8192}
	ga, err := DecodeReadArgs(a.Encode())
	if err != nil || *ga != *a {
		t.Fatalf("args round trip: %+v err %v", ga, err)
	}
	r := &ReadRes{Status: OK, Attr: sampleAttr(), Data: []byte("hello world")}
	gr, err := DecodeReadRes(r.Encode())
	if err != nil {
		t.Fatalf("res decode: %v", err)
	}
	if gr.Status != OK || !bytes.Equal(gr.Data, r.Data) || gr.Attr != r.Attr {
		t.Fatal("res round trip mismatch")
	}
}

func TestDirOpRoundTrip(t *testing.T) {
	a := &DirOpArgs{Dir: NewFH(1, 1, 0), Name: "passwd"}
	ga, err := DecodeDirOpArgs(a.Encode())
	if err != nil || ga.Dir != a.Dir || ga.Name != a.Name {
		t.Fatalf("args round trip: %+v err %v", ga, err)
	}
	r := &DirOpRes{Status: OK, File: NewFH(1, 9, 1), Attr: sampleAttr()}
	gr, err := DecodeDirOpRes(r.Encode())
	if err != nil || *gr != *r {
		t.Fatalf("res round trip: %+v err %v", gr, err)
	}
}

func TestDirOpResError(t *testing.T) {
	r := &DirOpRes{Status: ErrNoEnt}
	gr, err := DecodeDirOpRes(r.Encode())
	if err != nil || gr.Status != ErrNoEnt {
		t.Fatalf("error res: %+v err %v", gr, err)
	}
}

func TestCreateArgsRoundTrip(t *testing.T) {
	a := &CreateArgs{
		Where: DirOpArgs{Dir: NewFH(1, 1, 0), Name: "newfile"},
		Attr:  DefaultSAttr(0644),
	}
	ga, err := DecodeCreateArgs(a.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ga.Where != a.Where || ga.Attr != a.Attr {
		t.Fatalf("round trip: %+v vs %+v", ga, a)
	}
}

func TestSetattrArgsRoundTrip(t *testing.T) {
	a := &SetattrArgs{File: NewFH(2, 5, 0), Attr: SAttr{Mode: 0600, UID: NoValue, GID: NoValue, Size: 0, ATime: TimeVal{NoValue, NoValue}, MTime: TimeVal{NoValue, NoValue}}}
	ga, err := DecodeSetattrArgs(a.Encode())
	if err != nil || *ga != *a {
		t.Fatalf("round trip: %+v err %v", ga, err)
	}
}

func TestRenameArgsRoundTrip(t *testing.T) {
	a := &RenameArgs{
		From: DirOpArgs{Dir: NewFH(1, 1, 0), Name: "old"},
		To:   DirOpArgs{Dir: NewFH(1, 2, 0), Name: "new"},
	}
	ga, err := DecodeRenameArgs(a.Encode())
	if err != nil || *ga != *a {
		t.Fatalf("round trip: %+v err %v", ga, err)
	}
}

func TestReaddirRoundTrip(t *testing.T) {
	a := &ReaddirArgs{Dir: NewFH(1, 1, 0), Cookie: 2, Count: 512}
	ga, err := DecodeReaddirArgs(a.Encode())
	if err != nil || *ga != *a {
		t.Fatalf("args round trip: %+v err %v", ga, err)
	}
	r := &ReaddirRes{
		Status: OK,
		Entries: []DirEntry{
			{FileID: 2, Name: ".", Cookie: 1},
			{FileID: 1, Name: "..", Cookie: 2},
			{FileID: 9, Name: "data.bin", Cookie: 3},
		},
		EOF: true,
	}
	gr, err := DecodeReaddirRes(r.Encode())
	if err != nil {
		t.Fatalf("res decode: %v", err)
	}
	if gr.Status != OK || !gr.EOF || len(gr.Entries) != 3 {
		t.Fatalf("res = %+v", gr)
	}
	for i := range r.Entries {
		if gr.Entries[i] != r.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, gr.Entries[i], r.Entries[i])
		}
	}
}

func TestReaddirEmpty(t *testing.T) {
	r := &ReaddirRes{Status: OK, EOF: true}
	gr, err := DecodeReaddirRes(r.Encode())
	if err != nil || len(gr.Entries) != 0 || !gr.EOF {
		t.Fatalf("empty readdir: %+v err %v", gr, err)
	}
}

func TestStatfsRoundTrip(t *testing.T) {
	r := &StatfsRes{Status: OK, TSize: 8192, BSize: 8192, Blocks: 131072, BFree: 1000, BAvail: 900}
	gr, err := DecodeStatfsRes(r.Encode())
	if err != nil || *gr != *r {
		t.Fatalf("round trip: %+v err %v", gr, err)
	}
}

func TestFHArgsRoundTrip(t *testing.T) {
	a := &FHArgs{File: NewFH(3, 33, 1)}
	ga, err := DecodeFHArgs(a.Encode())
	if err != nil || ga.File != a.File {
		t.Fatalf("round trip: %+v err %v", ga, err)
	}
}

func TestStatusStrings(t *testing.T) {
	if OK.String() != "NFS_OK" {
		t.Fatal(OK.String())
	}
	if ErrStale.String() != "NFSERR_STALE" {
		t.Fatal(ErrStale.String())
	}
	if OK.Err() != nil {
		t.Fatal("OK.Err() != nil")
	}
	if ErrIO.Err() == nil {
		t.Fatal("ErrIO.Err() == nil")
	}
}

func TestProcString(t *testing.T) {
	if ProcWrite.String() != "WRITE" {
		t.Fatal(ProcWrite.String())
	}
	if Proc(99).String() != "PROC(99)" {
		t.Fatal(Proc(99).String())
	}
}

func TestTimeValLess(t *testing.T) {
	a := TimeVal{1, 5}
	b := TimeVal{1, 6}
	c := TimeVal{2, 0}
	if !a.Less(b) || !b.Less(c) || b.Less(a) || a.Less(a) {
		t.Fatal("TimeVal ordering broken")
	}
}

func TestTruncatedDecodersFail(t *testing.T) {
	r := &AttrStat{Status: OK, Attr: sampleAttr()}
	b := r.Encode()
	if _, err := DecodeAttrStat(b[:8]); err == nil {
		t.Fatal("truncated attrstat accepted")
	}
	wa := &WriteArgs{File: NewFH(1, 1, 1), Data: []byte("xyz")}
	wb := wa.Encode()
	if _, err := DecodeWriteArgs(wb[:20]); err == nil {
		t.Fatal("truncated writeargs accepted")
	}
}
