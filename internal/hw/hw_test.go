package hw

import (
	"testing"

	"repro/internal/sim"
)

func TestRZ26Plausibility(t *testing.T) {
	d := RZ26()
	if d.BlockSize != 8192 {
		t.Fatalf("BlockSize = %d", d.BlockSize)
	}
	if d.NumBlocks*int64(d.BlockSize) < 1<<30 {
		t.Fatal("RZ26 smaller than 1GB")
	}
	if d.AvgSeek <= d.TrackSeek {
		t.Fatal("average seek not larger than track seek")
	}
	// 5400 RPM -> ~11.1ms rotation.
	if d.RotationTime < 11*sim.Millisecond || d.RotationTime > 12*sim.Millisecond {
		t.Fatalf("RotationTime = %v", d.RotationTime)
	}
}

func TestNetworksOrdering(t *testing.T) {
	e, f := Ethernet(), FDDI()
	if f.BandwidthKBps <= e.BandwidthKBps {
		t.Fatal("FDDI not faster than Ethernet")
	}
	if f.MTU <= e.MTU {
		t.Fatal("FDDI MTU not larger")
	}
	// The paper's procrastination intervals: ~8ms Ethernet, ~5ms FDDI.
	if e.Procrastinate != 8*sim.Millisecond {
		t.Fatalf("Ethernet procrastinate = %v", e.Procrastinate)
	}
	if f.Procrastinate != 5*sim.Millisecond {
		t.Fatalf("FDDI procrastinate = %v", f.Procrastinate)
	}
}

func TestCPUScale(t *testing.T) {
	base := DEC3000CPU()
	fast := base.Scale(2)
	if fast.VopWriteData != base.VopWriteData/2 {
		t.Fatalf("Scale: %v vs %v", fast.VopWriteData, base.VopWriteData)
	}
	if fast.PerFragment >= base.PerFragment {
		t.Fatal("Scale did not reduce PerFragment")
	}
	faster := DEC3800CPU()
	if faster.RPCDispatch >= base.RPCDispatch {
		t.Fatal("DEC3800 not faster than DEC3000")
	}
}

func TestPrestoserveRules(t *testing.T) {
	p := Prestoserve()
	if p.MaxIO != 8192 {
		t.Fatalf("MaxIO = %d; the paper's decline threshold is 8K", p.MaxIO)
	}
	if p.CacheBytes != 1<<20 {
		t.Fatalf("CacheBytes = %d; the board is 1MB", p.CacheBytes)
	}
	if p.HiWater >= p.CacheBytes {
		t.Fatal("HiWater above capacity")
	}
	if p.DrainCluster < 64*1024 {
		t.Fatalf("DrainCluster = %d", p.DrainCluster)
	}
}

func TestClientRetransDefaults(t *testing.T) {
	c := DEC3000Client()
	// "a starting value of 1.1 seconds" (§4.1).
	if c.RetransTimeout != 1100*sim.Millisecond {
		t.Fatalf("RetransTimeout = %v", c.RetransTimeout)
	}
	if c.RetransMax <= c.RetransTimeout {
		t.Fatal("RetransMax not larger than initial timeout")
	}
}
