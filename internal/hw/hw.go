// Package hw collects the hardware parameter sets the experiments are
// calibrated against: the RZ26 SCSI disk, Ethernet and FDDI links, the
// DEC-3x00-class server CPU cost table, and the Prestoserve NVRAM board.
// Values are derived from the paper's published configurations and the
// devices' data sheets; they are inputs to the simulation, not measurements.
package hw

import "repro/internal/sim"

// DiskParams describes a moving-head disk.
type DiskParams struct {
	Name string
	// BlockSize is the filesystem block size served, in bytes. The data
	// path's refcounted buffers (internal/block) are fixed at 8192, which
	// is therefore the only value disk.New accepts.
	BlockSize     int
	NumBlocks     int64        // capacity in blocks
	TrackSeek     sim.Duration // track-to-track seek
	AvgSeek       sim.Duration // average random seek
	RotationTime  sim.Duration // full revolution
	MediaRateKBps int          // sustained media transfer rate, KB/s
	CtlOverhead   sim.Duration // controller/command overhead per op
}

// RZ26 approximates the DEC RZ26: 1.05 GB, 5400 RPM, ~9.5 ms average seek,
// ~2.6 MB/s sustained media rate. The paper's servers used one RZ26 or a
// three-way stripe set of them.
func RZ26() DiskParams {
	return DiskParams{
		Name:          "RZ26",
		BlockSize:     8192,
		NumBlocks:     128 * 1024, // 1 GB of 8K blocks
		TrackSeek:     1500 * sim.Microsecond,
		AvgSeek:       9500 * sim.Microsecond,
		RotationTime:  11111 * sim.Microsecond, // 5400 RPM
		MediaRateKBps: 2600,
		CtlOverhead:   500 * sim.Microsecond,
	}
}

// NetParams describes a shared-medium LAN.
type NetParams struct {
	Name string
	// BandwidthKBps is the usable link rate in KB/s.
	BandwidthKBps int
	// MTU is the maximum transmission unit; an 8K NFS datagram is
	// fragmented into ceil(size/MTU) fragments.
	MTU int
	// FragOverhead is the per-fragment framing/interframe cost on the wire.
	FragOverhead sim.Duration
	// Latency is the one-way propagation plus fixed adapter latency.
	Latency sim.Duration
	// Procrastinate is the paper's empirically derived gather wait for this
	// medium (§6.6): ~8 ms for Ethernet, ~5 ms for FDDI.
	Procrastinate sim.Duration
}

// Ethernet is 10 Mb/s shared Ethernet.
func Ethernet() NetParams {
	return NetParams{
		Name:          "Ethernet",
		BandwidthKBps: 1180, // ~9.7 Mb/s effective
		MTU:           1500,
		FragOverhead:  120 * sim.Microsecond,
		Latency:       150 * sim.Microsecond,
		Procrastinate: 8 * sim.Millisecond,
	}
}

// FDDI is 100 Mb/s FDDI.
func FDDI() NetParams {
	return NetParams{
		Name:          "FDDI",
		BandwidthKBps: 11600, // ~95 Mb/s effective
		MTU:           4352,
		FragOverhead:  25 * sim.Microsecond,
		Latency:       80 * sim.Microsecond,
		Procrastinate: 5 * sim.Millisecond,
	}
}

// CPUParams is the server CPU cost table: how long each software action
// holds the (single) server CPU. These are the costs write gathering
// conserves — UFS trips, driver trips, interrupt fielding, NVRAM copies.
type CPUParams struct {
	Name string
	// PerFragment is packet input processing (device interrupt, IP
	// reassembly contribution) per network fragment.
	PerFragment sim.Duration
	// RPCDispatch is socket dequeue + RPC/XDR decode + NFS dispatch.
	RPCDispatch sim.Duration
	// VopWriteData is the UFS data-path trip for one 8K write (copyin,
	// buffer handling).
	VopWriteData sim.Duration
	// MetaUpdate is one metadata update trip through UFS (inode or
	// indirect block preparation).
	MetaUpdate sim.Duration
	// DriverTrip is the cost of issuing one disk command and fielding its
	// completion interrupt.
	DriverTrip sim.Duration
	// NVRAMCopyPer8K is the CPU cost of copying 8K into Prestoserve.
	NVRAMCopyPer8K sim.Duration
	// ReplySend is RPC encode + socket output.
	ReplySend sim.Duration
	// GatherCheck is the bookkeeping cost of one pass over the nfsd state
	// table / socket buffer scan ("being clever", §9).
	GatherCheck sim.Duration
	// ReadPath is the UFS read trip for one 8K read hit.
	ReadPath sim.Duration
	// LookupPath is the name lookup cost (lightweight op).
	LookupPath sim.Duration
}

// DEC3000CPU approximates the DEC 3400/3500/3800-class server CPUs of the
// paper. A single cost table is used; the 3800 is modelled as ~1.6x faster
// via Scale.
func DEC3000CPU() CPUParams {
	return CPUParams{
		Name:           "DEC3x00",
		PerFragment:    100 * sim.Microsecond,
		RPCDispatch:    200 * sim.Microsecond,
		VopWriteData:   450 * sim.Microsecond,
		MetaUpdate:     300 * sim.Microsecond,
		DriverTrip:     250 * sim.Microsecond,
		NVRAMCopyPer8K: 350 * sim.Microsecond,
		ReplySend:      200 * sim.Microsecond,
		GatherCheck:    60 * sim.Microsecond,
		ReadPath:       400 * sim.Microsecond,
		LookupPath:     180 * sim.Microsecond,
	}
}

// DEC3800CPU is the faster server used for the paper's FDDI and LADDIS
// experiments ("for no better reason than that is the way my lab is set
// up").
func DEC3800CPU() CPUParams { return DEC3000CPU().Scale(1.8) }

// Scale returns a copy of the cost table with every cost divided by f
// (f > 1 means a faster CPU).
func (c CPUParams) Scale(f float64) CPUParams {
	s := c
	div := func(d sim.Duration) sim.Duration { return sim.Duration(float64(d) / f) }
	s.PerFragment = div(c.PerFragment)
	s.RPCDispatch = div(c.RPCDispatch)
	s.VopWriteData = div(c.VopWriteData)
	s.MetaUpdate = div(c.MetaUpdate)
	s.DriverTrip = div(c.DriverTrip)
	s.NVRAMCopyPer8K = div(c.NVRAMCopyPer8K)
	s.ReplySend = div(c.ReplySend)
	s.GatherCheck = div(c.GatherCheck)
	s.ReadPath = div(c.ReadPath)
	s.LookupPath = div(c.LookupPath)
	return s
}

// PrestoParams describes a Prestoserve-style NVRAM accelerator.
type PrestoParams struct {
	Name string
	// CacheBytes is the NVRAM capacity (typically 1 MB).
	CacheBytes int
	// MaxIO is the largest single write Presto will accept (typically 8K);
	// larger requests are declined and go to the raw disk.
	MaxIO int
	// AcceptLatency is the board latency for an accepted write beyond the
	// CPU copy cost.
	AcceptLatency sim.Duration
	// DrainCluster is the maximum contiguous run Presto writes to disk in
	// one transaction when draining.
	DrainCluster int
	// HiWater is the fill level (bytes) at which the drainer goes to work
	// immediately; below it the drainer lingers, letting contiguous runs
	// accumulate.
	HiWater int
	// IdleFlush is how long the drainer waits for more writes before
	// flushing a below-HiWater cache.
	IdleFlush sim.Duration
	// DrainWorkers is how many drain I/Os the board keeps in flight;
	// Presto "can drive disks asynchronously and in parallel" (§6.3).
	DrainWorkers int
}

// Prestoserve returns the 1 MB board modelled in the paper's Presto rows.
func Prestoserve() PrestoParams {
	return PrestoParams{
		Name:          "Prestoserve-1MB",
		CacheBytes:    1 << 20,
		MaxIO:         8192,
		AcceptLatency: 150 * sim.Microsecond,
		DrainCluster:  128 * 1024,
		HiWater:       1 << 19, // drain eagerly above 50% full
		IdleFlush:     25 * sim.Millisecond,
		DrainWorkers:  4,
	}
}

// ClientParams describes the client host behaviour.
type ClientParams struct {
	Name string
	// WriteGenerate is the client-side cost to produce one 8K write
	// request (application write + kernel handoff).
	WriteGenerate sim.Duration
	// RetransTimeout is the initial retransmission interval (typically
	// 1.1s) and doubles on each timeout up to RetransMax.
	RetransTimeout sim.Duration
	RetransMax     sim.Duration
}

// DEC3000Client approximates the DS/DEC-3x00 class client: fast enough to
// generate 8K writes much quicker than a server can commit them.
func DEC3000Client() ClientParams {
	return ClientParams{
		Name:           "DEC3x00-client",
		WriteGenerate:  600 * sim.Microsecond,
		RetransTimeout: 1100 * sim.Millisecond,
		RetransMax:     30 * sim.Second,
	}
}
