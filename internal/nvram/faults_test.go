package nvram

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestDrainRetriesAfterDeviceError(t *testing.T) {
	s, pr, d := rig(1)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 3)
	}
	// Fail the platters before the drainer gets to the block; heal them
	// shortly after. The drain must back off, keep the block dirty, and
	// land it once the disk recovers.
	d.Fail()
	s.Spawn("w", func(p *sim.Proc) {
		pr.WriteBlocks(p, 300, data)
	})
	s.At(100*sim.Millisecond, func() { d.Heal() })
	s.Run(0)
	if pr.DrainErrors == 0 {
		t.Fatal("no drain error counted against a failed disk")
	}
	if !bytes.Equal(d.PeekBlock(300), data) {
		t.Fatal("block never drained after the disk healed")
	}
	if pr.DirtyBufs() != 0 {
		t.Fatalf("%d blocks still dirty after successful drain", pr.DirtyBufs())
	}
}

func TestLyingBoardDropsDirtyMap(t *testing.T) {
	s, pr, d := rig(1)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 5)
	}
	// Fail the platters so the accepted write cannot drain, then mark the
	// board as lying. DropDirty (what a reboot does to a lying board)
	// must discard the acked block instead of replaying it.
	d.Fail()
	s.Spawn("w", func(p *sim.Proc) {
		pr.WriteBlocks(p, 400, data)
	})
	// The drainer retries a failed disk forever, so bound the run instead
	// of draining the event queue.
	s.Run(sim.Time(1 * sim.Second))
	if pr.DirtyBufs() != 1 {
		t.Fatalf("dirty blocks = %d, want 1", pr.DirtyBufs())
	}
	pr.SetLying()
	if !pr.Lying() {
		t.Fatal("Lying() false after SetLying")
	}
	if n := pr.DropDirty(); n != 1 {
		t.Fatalf("DropDirty = %d, want 1", n)
	}
	if pr.DirtyBufs() != 0 || pr.CacheUsed() != 0 {
		t.Fatalf("board still holds state after DropDirty: dirty=%d used=%d",
			pr.DirtyBufs(), pr.CacheUsed())
	}
	d.Heal()
	if bytes.Equal(d.PeekBlock(400), data) {
		t.Fatal("dropped block reached the platters anyway")
	}
}

func TestHonestBoardStillRecovers(t *testing.T) {
	// Control for the lying case: same shape, honest board, Recover
	// replays the block.
	s, pr, d := rig(1)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i * 7)
	}
	d.Fail()
	s.Spawn("w", func(p *sim.Proc) {
		pr.WriteBlocks(p, 400, data)
	})
	s.Run(sim.Time(1 * sim.Second))
	d.Heal()
	if pr.Lying() {
		t.Fatal("fresh board claims to be lying")
	}
	if n := pr.Recover(d); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	if !bytes.Equal(d.PeekBlock(400), data) {
		t.Fatal("recovered block missing from the platters")
	}
}
