// Package nvram models a Prestoserve-style NVRAM filesystem accelerator
// (Moran et al. 1990): a small battery-backed cache interposed in front of
// a disk. Writes that fit its acceptance rule complete at NVRAM-copy speed
// and count as stable storage; a background drainer clusters dirty ranges
// and pushes them to the underlying disk asynchronously and in parallel
// with request processing — exactly the duality the paper's server write
// layer keys on (§6.3).
package nvram

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

// dirtyBlock is one cached block: a reference to the refcounted buffer the
// write handed over (shared with the buffer cache above, not copied). ver
// guards against the lost-update race where a block is rewritten while a
// drain I/O for its previous contents is in flight: the drainer only
// retires the entry if the version still matches what it snapshotted.
type dirtyBlock struct {
	buf *block.Buf
	ver uint64
}

// Presto is an NVRAM write cache over a disk. It implements disk.Device so
// the filesystem can sit on either a raw disk or an accelerated one.
type Presto struct {
	sim   *sim.Sim
	p     hw.PrestoParams
	under disk.Device
	// dirty maps block number -> cached block contents not yet drained.
	dirty map[int64]*dirtyBlock
	used  int // bytes of NVRAM in use
	space *sim.Cond
	work  *sim.Cond
	stats disk.Stats

	// Accepted/declined accounting: declines fall through to the disk.
	Accepted uint64
	Declined uint64

	// DrainErrors counts drain transfers the underlying device failed;
	// the covered blocks stay dirty and are retried.
	DrainErrors uint64
	// lying marks a board that acknowledges persistence but will drop its
	// dirty map at the next power event instead of replaying it — the
	// fault-injection model of stable storage that lies about sync.
	lying bool

	draining int // drain I/Os currently in flight
	stopped  bool
	flushReq bool
	clean    *sim.Cond
	sweepPos int64 // elevator position for drain sweeps
	inFlight map[int64]bool
	procs    []*sim.Proc // drain workers, for crash injection

	pool *block.Pool // backs the []byte write path
	// Drain cluster scratch pools (several workers drain concurrently, so
	// the scratch is pooled, not a single slot).
	runPool  [][]*block.Buf
	versPool [][]uint64

	// OnDrain, when non-nil, observes every completed drain transfer to
	// the platters: starting block, cluster size, and the I/O window.
	// Failed transfers are not reported (the blocks stay dirty).
	OnDrain func(blk int64, nblocks int, start, end sim.Time)
}

// New interposes a Presto board in front of under and starts its
// drainer. acct is the buffer ledger the dirty map charges (nil = the
// process-global one).
func New(s *sim.Sim, p hw.PrestoParams, under disk.Device, acct *block.Accounting) *Presto {
	pr := &Presto{
		sim:      s,
		p:        p,
		under:    under,
		dirty:    make(map[int64]*dirtyBlock),
		space:    sim.NewCond(s),
		work:     sim.NewCond(s),
		clean:    sim.NewCond(s),
		inFlight: make(map[int64]bool),
		pool:     block.Or(acct).NewPool(),
	}
	workers := p.DrainWorkers
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		pr.procs = append(pr.procs, s.Spawn("presto-drain", pr.drainLoop))
	}
	return pr
}

// Procs returns the board's drain processes. On a host crash they are
// killed — the board stops moving data — while the battery preserves the
// dirty map for recovery.
func (pr *Presto) Procs() []*sim.Proc { return pr.procs }

// BlockSize implements disk.Device.
func (pr *Presto) BlockSize() int { return pr.under.BlockSize() }

// NumBlocks implements disk.Device.
func (pr *Presto) NumBlocks() int64 { return pr.under.NumBlocks() }

// Stats implements disk.Device: transactions the caller experienced at the
// Presto layer. The underlying disk keeps its own counters, which the
// paper's tables report.
func (pr *Presto) Stats() *disk.Stats { return &pr.stats }

// Under returns the underlying device.
func (pr *Presto) Under() disk.Device { return pr.under }

// CacheUsed reports bytes of NVRAM currently holding undrained data.
func (pr *Presto) CacheUsed() int { return pr.used }

// CacheBytes reports the board's capacity; CacheUsed/CacheBytes is the
// dirty ratio the observability probes sample.
func (pr *Presto) CacheBytes() int { return pr.p.CacheBytes }

// WriteBlocks implements disk.Device. Writes no larger than MaxIO are
// absorbed by NVRAM (blocking only if the cache is full); larger writes are
// declined and passed through to the disk, as the small board cannot hold
// them (§6.3: "Presto may decline to accept requests above a certain
// size... resulting in performance that degrades to underlying disk
// speed").
func (pr *Presto) WriteBlocks(p *sim.Proc, blk int64, data []byte) error {
	if len(data)%pr.BlockSize() != 0 {
		panic(fmt.Sprintf("nvram: unaligned write of %d bytes", len(data)))
	}
	if len(data) > pr.p.MaxIO {
		pr.Declined++
		return pr.under.WriteBlocks(p, blk, data)
	}
	nb := int64(len(data) / pr.BlockSize())
	pr.waitSpace(p, blk, nb)
	p.Sleep(pr.p.AcceptLatency)
	for i := int64(0); i < nb; i++ {
		nbuf := pr.pool.Get()
		pr.pool.Acct().CountCopy(copy(nbuf.Data(), data[i*int64(pr.BlockSize()):(i+1)*int64(pr.BlockSize())]))
		pr.store(blk+i, nbuf)
	}
	pr.accept(len(data))
	return nil
}

// WriteBufs implements disk.Device: the zero-copy accept path. The board
// takes the snapshot references before the accept-latency sleep and stores
// them in the dirty map instead of copying the payload into NVRAM-owned
// memory; a mid-accept kill releases them on unwind.
func (pr *Presto) WriteBufs(p *sim.Proc, blk int64, bufs []*block.Buf) error {
	if len(bufs)*pr.BlockSize() > pr.p.MaxIO {
		pr.Declined++
		return pr.under.WriteBufs(p, blk, bufs)
	}
	pin := block.TakePin(bufs)
	defer pin.Release()
	pr.waitSpace(p, blk, int64(len(bufs)))
	p.Sleep(pr.p.AcceptLatency)
	for i, b := range bufs {
		pr.store(blk+int64(i), b) // entry takes over the snapshot ref
	}
	pin.Transfer()
	pr.accept(len(bufs) * pr.BlockSize())
	return nil
}

// waitSpace blocks p until the nb-block write at blk fits in NVRAM.
// Overwrites of blocks already dirty reuse their space.
func (pr *Presto) waitSpace(p *sim.Proc, blk, nb int64) {
	need := 0
	for i := int64(0); i < nb; i++ {
		if pr.dirty[blk+i] == nil {
			need += pr.BlockSize()
		}
	}
	for pr.used+need > pr.p.CacheBytes {
		pr.space.Wait(p)
	}
}

// store installs buf (whose reference the caller hands over) as the dirty
// contents of blk, bumping the version so an in-flight drain of the old
// contents does not retire the entry.
func (pr *Presto) store(blk int64, buf *block.Buf) {
	b := pr.dirty[blk]
	if b == nil {
		b = &dirtyBlock{}
		pr.dirty[blk] = b
		pr.used += pr.BlockSize()
	} else {
		b.buf.Release()
	}
	b.buf = buf
	b.ver++
}

func (pr *Presto) accept(n int) {
	pr.Accepted++
	pr.stats.Writes++
	pr.stats.WriteBytes += uint64(n)
	pr.work.Signal()
}

// DirtyBufs reports how many dirty blocks hold a buffer reference
// (leak-check accounting).
func (pr *Presto) DirtyBufs() int { return len(pr.dirty) }

// ReadBlocks implements disk.Device, serving from NVRAM when a block is
// still dirty there.
func (pr *Presto) ReadBlocks(p *sim.Proc, blk int64, buf []byte) error {
	bs := int64(pr.BlockSize())
	nb := int64(len(buf)) / bs
	allCached := true
	for i := int64(0); i < nb; i++ {
		if pr.dirty[blk+i] == nil {
			allCached = false
			break
		}
	}
	if allCached {
		p.Sleep(pr.p.AcceptLatency)
		for i := int64(0); i < nb; i++ {
			copy(buf[i*bs:(i+1)*bs], pr.dirty[blk+i].buf.Data())
		}
		pr.stats.Reads++
		pr.stats.ReadBytes += uint64(len(buf))
		return nil
	}
	if err := pr.under.ReadBlocks(p, blk, buf); err != nil {
		pr.stats.Reads++
		return err
	}
	// Overlay any blocks that are newer in NVRAM.
	for i := int64(0); i < nb; i++ {
		if b := pr.dirty[blk+i]; b != nil {
			copy(buf[i*bs:(i+1)*bs], b.buf.Data())
		}
	}
	pr.stats.Reads++
	pr.stats.ReadBytes += uint64(len(buf))
	return nil
}

// drainLoop is the background process that clusters dirty NVRAM blocks and
// writes them to disk ("Presto does its own clustering... can drive disks
// asynchronously and in parallel").
func (pr *Presto) drainLoop(p *sim.Proc) {
	for {
		for len(pr.dirty) == 0 {
			if pr.stopped {
				return
			}
			pr.work.Wait(p)
		}
		// Below the high-water mark, linger briefly: back-to-back writes
		// build contiguous runs the drain can push in one transaction.
		// A signal (new write) re-evaluates; a quiet period — or an
		// explicit flush request — drains.
		if pr.used < pr.p.HiWater && !pr.stopped && !pr.flushReq && pr.p.IdleFlush > 0 {
			if pr.work.WaitTimeout(p, pr.p.IdleFlush) {
				continue
			}
			if len(pr.dirty) == 0 {
				continue
			}
		}
		blk, run, vers := pr.nextCluster()
		if run == nil {
			// Every dirty block is already being drained by another worker.
			pr.work.WaitTimeout(p, pr.p.IdleFlush)
			continue
		}
		if err := pr.drainOne(p, blk, run, vers); err != nil {
			// The disk failed the transfer; the blocks stayed dirty. Back
			// off before retrying so a fail-stopped disk does not spin the
			// drainer in zero simulated time.
			retry := pr.p.IdleFlush
			if retry <= 0 {
				retry = 5 * sim.Millisecond
			}
			pr.work.WaitTimeout(p, retry)
		}
	}
}

// drainOne pushes one contiguous dirty cluster to the underlying device,
// zero-copy: the snapshot references in run pin the exact accepted
// contents for the duration of the disk I/O (a rewrite mid-drain replaces
// the dirty entry's buffer, it cannot mutate the snapshot). The deferred
// cleanup keeps the board consistent when a crash kills the worker
// mid-transfer.
func (pr *Presto) drainOne(p *sim.Proc, blk int64, run []*block.Buf, vers []uint64) error {
	pr.draining++
	nb := int64(len(run))
	for i := int64(0); i < nb; i++ {
		pr.inFlight[blk+i] = true
	}
	defer func() {
		for i := int64(0); i < nb; i++ {
			delete(pr.inFlight, blk+i)
		}
		pr.draining--
		pr.putRun(run, vers)
	}()
	start := p.Now()
	if err := pr.under.WriteBufs(p, blk, run); err != nil {
		// The covered blocks stay dirty (acked data must not leave stable
		// storage until the platters hold it); a later pass retries.
		pr.DrainErrors++
		return err
	}
	if pr.OnDrain != nil {
		pr.OnDrain(blk, len(run), start, p.Now())
	}
	// Only now free the NVRAM space: until the disk write completed the
	// data had to stay stable. A block rewritten during the disk I/O has
	// a newer version and must stay dirty for the next drain pass.
	for i := int64(0); i < nb; i++ {
		if b := pr.dirty[blk+i]; b != nil && b.ver == vers[i] {
			b.buf.Release()
			delete(pr.dirty, blk+i)
			pr.used -= pr.BlockSize()
		}
	}
	pr.space.Broadcast()
	if len(pr.dirty) == 0 && pr.draining == 0 {
		pr.flushReq = false
		pr.clean.Broadcast()
	}
	return nil
}

// getRun takes a drain-cluster scratch pair from the pools.
func (pr *Presto) getRun() ([]*block.Buf, []uint64) {
	var run []*block.Buf
	var vers []uint64
	if n := len(pr.runPool); n > 0 {
		run = pr.runPool[n-1][:0]
		pr.runPool = pr.runPool[:n-1]
	}
	if n := len(pr.versPool); n > 0 {
		vers = pr.versPool[n-1][:0]
		pr.versPool = pr.versPool[:n-1]
	}
	return run, vers
}

// putRun releases the snapshot references and recycles the scratch.
func (pr *Presto) putRun(run []*block.Buf, vers []uint64) {
	for i, b := range run {
		b.Release()
		run[i] = nil
	}
	pr.runPool = append(pr.runPool, run[:0])
	pr.versPool = append(pr.versPool, vers[:0])
}

// nextCluster picks the next dirty block in an elevator sweep (the lowest
// dirty block at or above the last drain position, wrapping) and extends
// it through physically contiguous dirty blocks up to DrainCluster bytes,
// returning a reference snapshot of the covered buffers and each block's
// version at snapshot time — no byte assembly; the references pin the
// contents. The sweep keeps hot blocks that are rewritten continuously
// (an inode block under a write burst) coalescing in NVRAM instead of
// being re-drained on every pass.
func (pr *Presto) nextCluster() (int64, []*block.Buf, []uint64) {
	var min int64 = -1
	var ahead int64 = -1
	for b := range pr.dirty {
		if pr.inFlight[b] {
			continue
		}
		if min < 0 || b < min {
			min = b
		}
		if b >= pr.sweepPos && (ahead < 0 || b < ahead) {
			ahead = b
		}
	}
	if ahead >= 0 {
		min = ahead
	}
	if min < 0 {
		return 0, nil, nil
	}
	maxBlocks := pr.p.DrainCluster / pr.BlockSize()
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	run, vers := pr.getRun()
	for i := 0; i < maxBlocks; i++ {
		b := pr.dirty[min+int64(i)]
		if b == nil || pr.inFlight[min+int64(i)] {
			break
		}
		run = append(run, b.buf.Ref())
		vers = append(vers, b.ver)
	}
	if len(run) == 0 {
		pr.putRun(run, vers)
		return 0, nil, nil
	}
	pr.sweepPos = min + int64(len(run))
	return min, run, vers
}

// Flush blocks p until every dirty block has been drained to disk. Crash
// tests use it to model the post-failure NVRAM recovery flush.
func (pr *Presto) Flush(p *sim.Proc) {
	for len(pr.dirty) > 0 || pr.draining > 0 {
		pr.flushReq = true
		pr.work.Signal()
		pr.clean.Wait(p)
	}
}

// Stop terminates the drainer once the cache is clean (test teardown).
func (pr *Presto) Stop() {
	pr.stopped = true
	pr.work.Broadcast()
}

// BlockInjector accepts raw block contents outside simulated time; both
// disk.Disk and disk.Stripe implement it. It is the target of the
// battery-backed NVRAM recovery flush.
type BlockInjector interface {
	InjectBlock(blk int64, data []byte)
}

// RecoverTo writes every dirty NVRAM block straight to the platters with
// no simulated time: the battery-backed recovery path after a server
// crash. It returns the number of blocks flushed.
func (pr *Presto) RecoverTo(d *disk.Disk) int { return pr.Recover(d) }

// Recover flushes every dirty block into inj (a disk or stripe set) with
// no simulated time, the reboot-time recovery replay. Blocks are distinct,
// so replay order does not affect the recovered image. The board is
// consumed: the dirty map's buffer references are released, since the
// replaced board object is discarded after recovery.
func (pr *Presto) Recover(inj BlockInjector) int {
	n := 0
	for blk, b := range pr.dirty {
		inj.InjectBlock(blk, b.buf.Data())
		b.buf.Release()
		delete(pr.dirty, blk)
		n++
	}
	pr.used = 0
	return n
}

// SetLying marks the board as lying about persistence: writes are still
// acknowledged as stable, but the next power event discards the dirty map
// instead of replaying it (see DropDirty). The flag lives on the board
// object, which carries the dirty map across a crash; a replacement board
// installed on reboot is honest again.
func (pr *Presto) SetLying() { pr.lying = true }

// Lying reports whether the board has been marked as lying about
// persistence.
func (pr *Presto) Lying() bool { return pr.lying }

// DropDirty discards every dirty block without replaying it — what a lying
// board's "battery-backed" memory turns out to hold after a power event.
// It returns the number of blocks lost.
func (pr *Presto) DropDirty() int {
	n := 0
	for blk, b := range pr.dirty {
		b.buf.Release()
		delete(pr.dirty, blk)
		n++
	}
	pr.used = 0
	return n
}
