// Package nvram models a Prestoserve-style NVRAM filesystem accelerator
// (Moran et al. 1990): a small battery-backed cache interposed in front of
// a disk. Writes that fit its acceptance rule complete at NVRAM-copy speed
// and count as stable storage; a background drainer clusters dirty ranges
// and pushes them to the underlying disk asynchronously and in parallel
// with request processing — exactly the duality the paper's server write
// layer keys on (§6.3).
package nvram

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

// dirtyBlock is one cached block. ver guards against the lost-update race
// where a block is rewritten while a drain I/O for its previous contents is
// in flight: the drainer only retires the entry if the version still
// matches what it copied out.
type dirtyBlock struct {
	data []byte
	ver  uint64
}

// Presto is an NVRAM write cache over a disk. It implements disk.Device so
// the filesystem can sit on either a raw disk or an accelerated one.
type Presto struct {
	sim   *sim.Sim
	p     hw.PrestoParams
	under disk.Device
	// dirty maps block number -> cached block contents not yet drained.
	dirty map[int64]*dirtyBlock
	used  int // bytes of NVRAM in use
	space *sim.Cond
	work  *sim.Cond
	stats disk.Stats

	// Accepted/declined accounting: declines fall through to the disk.
	Accepted uint64
	Declined uint64

	draining int // drain I/Os currently in flight
	stopped  bool
	flushReq bool
	clean    *sim.Cond
	sweepPos int64 // elevator position for drain sweeps
	inFlight map[int64]bool
	procs    []*sim.Proc // drain workers, for crash injection
}

// New interposes a Presto board in front of under and starts its drainer.
func New(s *sim.Sim, p hw.PrestoParams, under disk.Device) *Presto {
	pr := &Presto{
		sim:      s,
		p:        p,
		under:    under,
		dirty:    make(map[int64]*dirtyBlock),
		space:    sim.NewCond(s),
		work:     sim.NewCond(s),
		clean:    sim.NewCond(s),
		inFlight: make(map[int64]bool),
	}
	workers := p.DrainWorkers
	if workers < 1 {
		workers = 1
	}
	for i := 0; i < workers; i++ {
		pr.procs = append(pr.procs, s.Spawn("presto-drain", pr.drainLoop))
	}
	return pr
}

// Procs returns the board's drain processes. On a host crash they are
// killed — the board stops moving data — while the battery preserves the
// dirty map for recovery.
func (pr *Presto) Procs() []*sim.Proc { return pr.procs }

// BlockSize implements disk.Device.
func (pr *Presto) BlockSize() int { return pr.under.BlockSize() }

// NumBlocks implements disk.Device.
func (pr *Presto) NumBlocks() int64 { return pr.under.NumBlocks() }

// Stats implements disk.Device: transactions the caller experienced at the
// Presto layer. The underlying disk keeps its own counters, which the
// paper's tables report.
func (pr *Presto) Stats() *disk.Stats { return &pr.stats }

// Under returns the underlying device.
func (pr *Presto) Under() disk.Device { return pr.under }

// CacheUsed reports bytes of NVRAM currently holding undrained data.
func (pr *Presto) CacheUsed() int { return pr.used }

// WriteBlocks implements disk.Device. Writes no larger than MaxIO are
// absorbed by NVRAM (blocking only if the cache is full); larger writes are
// declined and passed through to the disk, as the small board cannot hold
// them (§6.3: "Presto may decline to accept requests above a certain
// size... resulting in performance that degrades to underlying disk
// speed").
func (pr *Presto) WriteBlocks(p *sim.Proc, blk int64, data []byte) {
	if len(data)%pr.BlockSize() != 0 {
		panic(fmt.Sprintf("nvram: unaligned write of %d bytes", len(data)))
	}
	if len(data) > pr.p.MaxIO {
		pr.Declined++
		pr.under.WriteBlocks(p, blk, data)
		return
	}
	// Wait for NVRAM space. Overwrites of blocks already dirty reuse their
	// space.
	need := 0
	nb := int64(len(data) / pr.BlockSize())
	for i := int64(0); i < nb; i++ {
		if pr.dirty[blk+i] == nil {
			need += pr.BlockSize()
		}
	}
	for pr.used+need > pr.p.CacheBytes {
		pr.space.Wait(p)
	}
	p.Sleep(pr.p.AcceptLatency)
	for i := int64(0); i < nb; i++ {
		b := pr.dirty[blk+i]
		if b == nil {
			b = &dirtyBlock{data: make([]byte, pr.BlockSize())}
			pr.used += pr.BlockSize()
		}
		copy(b.data, data[i*int64(pr.BlockSize()):(i+1)*int64(pr.BlockSize())])
		b.ver++
		pr.dirty[blk+i] = b
	}
	pr.Accepted++
	pr.stats.Writes++
	pr.stats.WriteBytes += uint64(len(data))
	pr.work.Signal()
}

// ReadBlocks implements disk.Device, serving from NVRAM when a block is
// still dirty there.
func (pr *Presto) ReadBlocks(p *sim.Proc, blk int64, buf []byte) {
	bs := int64(pr.BlockSize())
	nb := int64(len(buf)) / bs
	allCached := true
	for i := int64(0); i < nb; i++ {
		if pr.dirty[blk+i] == nil {
			allCached = false
			break
		}
	}
	if allCached {
		p.Sleep(pr.p.AcceptLatency)
		for i := int64(0); i < nb; i++ {
			copy(buf[i*bs:(i+1)*bs], pr.dirty[blk+i].data)
		}
		pr.stats.Reads++
		pr.stats.ReadBytes += uint64(len(buf))
		return
	}
	pr.under.ReadBlocks(p, blk, buf)
	// Overlay any blocks that are newer in NVRAM.
	for i := int64(0); i < nb; i++ {
		if b := pr.dirty[blk+i]; b != nil {
			copy(buf[i*bs:(i+1)*bs], b.data)
		}
	}
	pr.stats.Reads++
	pr.stats.ReadBytes += uint64(len(buf))
}

// drainLoop is the background process that clusters dirty NVRAM blocks and
// writes them to disk ("Presto does its own clustering... can drive disks
// asynchronously and in parallel").
func (pr *Presto) drainLoop(p *sim.Proc) {
	for {
		for len(pr.dirty) == 0 {
			if pr.stopped {
				return
			}
			pr.work.Wait(p)
		}
		// Below the high-water mark, linger briefly: back-to-back writes
		// build contiguous runs the drain can push in one transaction.
		// A signal (new write) re-evaluates; a quiet period — or an
		// explicit flush request — drains.
		if pr.used < pr.p.HiWater && !pr.stopped && !pr.flushReq && pr.p.IdleFlush > 0 {
			if pr.work.WaitTimeout(p, pr.p.IdleFlush) {
				continue
			}
			if len(pr.dirty) == 0 {
				continue
			}
		}
		blk, data, vers := pr.nextCluster()
		if data == nil {
			// Every dirty block is already being drained by another worker.
			pr.work.WaitTimeout(p, pr.p.IdleFlush)
			continue
		}
		pr.draining++
		bs := int64(pr.BlockSize())
		nb := int64(len(data)) / bs
		for i := int64(0); i < nb; i++ {
			pr.inFlight[blk+i] = true
		}
		pr.under.WriteBlocks(p, blk, data)
		// Only now free the NVRAM space: until the disk write completed the
		// data had to stay stable. A block rewritten during the disk I/O has
		// a newer version and must stay dirty for the next drain pass.
		for i := int64(0); i < nb; i++ {
			delete(pr.inFlight, blk+i)
			if b := pr.dirty[blk+i]; b != nil && b.ver == vers[i] {
				delete(pr.dirty, blk+i)
				pr.used -= pr.BlockSize()
			}
		}
		pr.draining--
		pr.space.Broadcast()
		if len(pr.dirty) == 0 && pr.draining == 0 {
			pr.flushReq = false
			pr.clean.Broadcast()
		}
	}
}

// nextCluster picks the next dirty block in an elevator sweep (the lowest
// dirty block at or above the last drain position, wrapping) and extends
// it through physically contiguous dirty blocks up to DrainCluster bytes,
// returning a snapshot of the covered bytes and each block's version at
// copy time. The sweep keeps hot blocks that are rewritten continuously
// (an inode block under a write burst) coalescing in NVRAM instead of
// being re-drained on every pass.
func (pr *Presto) nextCluster() (int64, []byte, []uint64) {
	var min int64 = -1
	var ahead int64 = -1
	for b := range pr.dirty {
		if pr.inFlight[b] {
			continue
		}
		if min < 0 || b < min {
			min = b
		}
		if b >= pr.sweepPos && (ahead < 0 || b < ahead) {
			ahead = b
		}
	}
	if ahead >= 0 {
		min = ahead
	}
	if min < 0 {
		return 0, nil, nil
	}
	bs := pr.BlockSize()
	maxBlocks := pr.p.DrainCluster / bs
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	var out []byte
	var vers []uint64
	for i := 0; i < maxBlocks; i++ {
		b := pr.dirty[min+int64(i)]
		if b == nil || pr.inFlight[min+int64(i)] {
			break
		}
		out = append(out, b.data...)
		vers = append(vers, b.ver)
	}
	pr.sweepPos = min + int64(len(out)/bs)
	return min, out, vers
}

// Flush blocks p until every dirty block has been drained to disk. Crash
// tests use it to model the post-failure NVRAM recovery flush.
func (pr *Presto) Flush(p *sim.Proc) {
	for len(pr.dirty) > 0 || pr.draining > 0 {
		pr.flushReq = true
		pr.work.Signal()
		pr.clean.Wait(p)
	}
}

// Stop terminates the drainer once the cache is clean (test teardown).
func (pr *Presto) Stop() {
	pr.stopped = true
	pr.work.Broadcast()
}

// BlockInjector accepts raw block contents outside simulated time; both
// disk.Disk and disk.Stripe implement it. It is the target of the
// battery-backed NVRAM recovery flush.
type BlockInjector interface {
	InjectBlock(blk int64, data []byte)
}

// RecoverTo writes every dirty NVRAM block straight to the platters with
// no simulated time: the battery-backed recovery path after a server
// crash. It returns the number of blocks flushed.
func (pr *Presto) RecoverTo(d *disk.Disk) int { return pr.Recover(d) }

// Recover flushes every dirty block into inj (a disk or stripe set) with
// no simulated time, the reboot-time recovery replay. Blocks are distinct,
// so replay order does not affect the recovered image.
func (pr *Presto) Recover(inj BlockInjector) int {
	n := 0
	for blk, b := range pr.dirty {
		inj.InjectBlock(blk, b.data)
		n++
	}
	return n
}
