package nvram

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

func rig(seed int64) (*sim.Sim, *Presto, *disk.Disk) {
	s := sim.New(seed)
	d := disk.New(s, hw.RZ26(), nil)
	pr := New(s, hw.Prestoserve(), d, nil)
	return s, pr, d
}

func TestAcceptedWriteIsFastAndDurable(t *testing.T) {
	s, pr, d := rig(1)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	var lat sim.Duration
	s.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		pr.WriteBlocks(p, 500, data)
		lat = p.Now().Sub(start)
	})
	s.Run(0)
	if lat > sim.Millisecond {
		t.Fatalf("NVRAM write latency %v, want sub-millisecond", lat)
	}
	if pr.Accepted != 1 || pr.Declined != 0 {
		t.Fatalf("accepted=%d declined=%d", pr.Accepted, pr.Declined)
	}
	// Drainer must have pushed it to the platters by the end of the run.
	if !bytes.Equal(d.PeekBlock(500), data) {
		t.Fatal("drained block content mismatch")
	}
}

func TestLargeWriteDeclinedToDisk(t *testing.T) {
	s, pr, d := rig(1)
	data := make([]byte, 64*1024)
	var lat sim.Duration
	s.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		pr.WriteBlocks(p, 100, data)
		lat = p.Now().Sub(start)
	})
	s.Run(0)
	if pr.Declined != 1 {
		t.Fatalf("declined = %d, want 1", pr.Declined)
	}
	if lat < 5*sim.Millisecond {
		t.Fatalf("declined write completed at NVRAM speed: %v", lat)
	}
	if d.Stats().Writes != 1 {
		t.Fatalf("disk writes = %d", d.Stats().Writes)
	}
}

func TestReadHitsNVRAM(t *testing.T) {
	s, pr, _ := rig(1)
	data := make([]byte, 8192)
	data[0] = 0x5A
	var got []byte
	var lat sim.Duration
	s.Spawn("w", func(p *sim.Proc) {
		pr.WriteBlocks(p, 7, data)
		got = make([]byte, 8192)
		start := p.Now()
		pr.ReadBlocks(p, 7, got)
		lat = p.Now().Sub(start)
	})
	s.Run(0)
	if got[0] != 0x5A {
		t.Fatal("read did not see NVRAM content")
	}
	if lat > sim.Millisecond {
		t.Fatalf("NVRAM read hit took %v", lat)
	}
}

func TestReadMissGoesToDisk(t *testing.T) {
	s, pr, d := rig(1)
	data := make([]byte, 8192)
	data[9] = 0x77
	d.InjectBlock(33, data)
	var got []byte
	s.Spawn("r", func(p *sim.Proc) {
		got = make([]byte, 8192)
		pr.ReadBlocks(p, 33, got)
	})
	s.Run(0)
	if got[9] != 0x77 {
		t.Fatal("read miss did not reach disk")
	}
}

func TestCacheFullBlocksWriter(t *testing.T) {
	s := sim.New(1)
	d := disk.New(s, hw.RZ26(), nil)
	params := hw.Prestoserve()
	params.CacheBytes = 4 * 8192 // tiny board
	pr := New(s, params, d, nil)
	var done sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		for i := 0; i < 16; i++ {
			pr.WriteBlocks(p, int64(i*10), buf) // non-contiguous: no drain clustering
		}
		done = p.Now()
	})
	s.Run(0)
	// 16 writes through a 4-block board must wait for drains: the run
	// cannot complete at pure NVRAM speed (16 * ~0.3ms).
	if done < sim.Time(20*sim.Millisecond) {
		t.Fatalf("writer never blocked on full NVRAM: done at %v", done)
	}
	if pr.CacheUsed() != 0 {
		// Drainer keeps going after the writer finishes.
		s.Run(0)
	}
}

func TestOverwriteReusesSpace(t *testing.T) {
	s, pr, _ := rig(1)
	s.Spawn("w", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		pr.WriteBlocks(p, 5, buf)
		used := pr.CacheUsed()
		pr.WriteBlocks(p, 5, buf)
		if pr.CacheUsed() > used {
			t.Error("overwrite of dirty block grew NVRAM usage")
		}
	})
	s.Run(0)
}

func TestDrainClusters(t *testing.T) {
	s, pr, d := rig(1)
	s.Spawn("w", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		// 8 contiguous blocks land before the drainer can issue them all
		// individually; most should coalesce.
		for i := 0; i < 8; i++ {
			pr.WriteBlocks(p, int64(100+i), buf)
		}
	})
	s.Run(0)
	if d.Stats().Writes >= 8 {
		t.Fatalf("drain did not cluster: %d disk writes for 8 contiguous blocks", d.Stats().Writes)
	}
	if d.Stats().WriteBytes != 8*8192 {
		t.Fatalf("drained bytes = %d", d.Stats().WriteBytes)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	s, pr, _ := rig(1)
	s.Spawn("w", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		for i := 0; i < 5; i++ {
			pr.WriteBlocks(p, int64(i*3), buf)
		}
		pr.Flush(p)
		if pr.CacheUsed() != 0 {
			t.Errorf("CacheUsed = %d after Flush", pr.CacheUsed())
		}
	})
	s.Run(0)
}

func TestRecoverToFlushesDirtyBlocks(t *testing.T) {
	// Simulate a crash with data still in NVRAM: RecoverTo must place it
	// on the platters, which is what makes NVRAM count as stable storage.
	s := sim.New(1)
	d := disk.New(s, hw.RZ26(), nil)
	params := hw.Prestoserve()
	pr := New(s, params, d, nil)
	data := make([]byte, 8192)
	data[100] = 0xCC
	s.Spawn("w", func(p *sim.Proc) {
		pr.WriteBlocks(p, 77, data)
		// Crash immediately: stop the world before the drainer runs.
		pr.Stop()
	})
	s.Run(sim.Time(400 * sim.Microsecond)) // not enough time for a disk op
	if !bytes.Equal(d.PeekBlock(77), data) {
		n := pr.RecoverTo(d)
		if n == 0 {
			t.Fatal("nothing to recover but platters lack the data")
		}
	}
	if got := d.PeekBlock(77); got[100] != 0xCC {
		t.Fatal("recovery did not restore NVRAM contents to disk")
	}
}

func TestStatsCount(t *testing.T) {
	s, pr, _ := rig(1)
	s.Spawn("w", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		pr.WriteBlocks(p, 1, buf)
		pr.ReadBlocks(p, 1, buf)
	})
	s.Run(0)
	if pr.Stats().Writes != 1 || pr.Stats().Reads != 1 {
		t.Fatalf("stats = %+v", pr.Stats())
	}
}
