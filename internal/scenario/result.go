package scenario

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Metrics is the uniform column set every cell reports — the 15 metric
// columns all experiment entry points share. Columns that a workload
// does not produce are zero (and can be dropped from output via
// Spec.Metrics).
type Metrics struct {
	// ElapsedSec is the measured phase (copy/stream: the transfer
	// including outages; laddis: the measured window).
	ElapsedSec float64 `json:"elapsed_sec"`
	// ClientKBps is the client-observed sequential transfer rate.
	ClientKBps float64 `json:"client_kb_per_sec"`
	// CPUPercent is server CPU utilization over the measured interval
	// (the across-shard mean on a cluster); CPUMaxPercent the busiest
	// shard (equal to CPUPercent on a single server).
	CPUPercent    float64 `json:"cpu_percent"`
	CPUMaxPercent float64 `json:"cpu_max_percent"`
	// DiskKBps and DiskTps are spindle-level aggregate rates.
	DiskKBps float64 `json:"disk_kb_per_sec"`
	DiskTps  float64 `json:"disk_trans_per_sec"`
	// OfferedOpsPerSec / AchievedOpsPerSec / latency quantiles are the
	// LADDIS curve coordinates.
	OfferedOpsPerSec  float64 `json:"offered_ops_per_sec"`
	AchievedOpsPerSec float64 `json:"achieved_ops_per_sec"`
	AvgLatencyMs      float64 `json:"avg_latency_ms"`
	P95LatencyMs      float64 `json:"p95_latency_ms"`
	// Errors counts failed client operations.
	Errors int `json:"errors"`
	// Retransmissions and RebootsSeen are the client-side view of
	// outages; Crashes the number of server crashes performed.
	Retransmissions uint64 `json:"retransmissions"`
	RebootsSeen     uint64 `json:"reboots_seen"`
	Crashes         int    `json:"crashes"`
	// LostBytes is the durability checker's verdict: client-acked bytes
	// that did not survive recovery (the NFS contract demands 0).
	LostBytes int64 `json:"lost_bytes"`
}

// MetricColumns lists the uniform column names in canonical order.
func MetricColumns() []string {
	return []string{
		"elapsed_sec", "client_kb_per_sec", "cpu_percent", "cpu_max_percent",
		"disk_kb_per_sec", "disk_trans_per_sec",
		"offered_ops_per_sec", "achieved_ops_per_sec", "avg_latency_ms", "p95_latency_ms",
		"errors", "retransmissions", "reboots_seen", "crashes", "lost_bytes",
	}
}

// Column returns one column's value by name.
func (m Metrics) Column(name string) (float64, bool) {
	switch name {
	case "elapsed_sec":
		return m.ElapsedSec, true
	case "client_kb_per_sec":
		return m.ClientKBps, true
	case "cpu_percent":
		return m.CPUPercent, true
	case "cpu_max_percent":
		return m.CPUMaxPercent, true
	case "disk_kb_per_sec":
		return m.DiskKBps, true
	case "disk_trans_per_sec":
		return m.DiskTps, true
	case "offered_ops_per_sec":
		return m.OfferedOpsPerSec, true
	case "achieved_ops_per_sec":
		return m.AchievedOpsPerSec, true
	case "avg_latency_ms":
		return m.AvgLatencyMs, true
	case "p95_latency_ms":
		return m.P95LatencyMs, true
	case "errors":
		return float64(m.Errors), true
	case "retransmissions":
		return float64(m.Retransmissions), true
	case "reboots_seen":
		return float64(m.RebootsSeen), true
	case "crashes":
		return float64(m.Crashes), true
	case "lost_bytes":
		return float64(m.LostBytes), true
	}
	return 0, false
}

// Durability is the crash/recovery audit attached to cells that ran with
// faults or the durability checker.
type Durability struct {
	// Checked is true when the acked-write journal was attached and
	// verified; without it the Acked*/Lost* fields are vacuously zero
	// (crash counters are still real) and renderers omit the verdict.
	Checked              bool    `json:"checked"`
	AckedWrites          int     `json:"acked_writes"`
	AckedBytes           int64   `json:"acked_bytes"`
	LostBytes            int64   `json:"lost_bytes"`
	FirstLoss            string  `json:"first_loss,omitempty"`
	Crashes              int     `json:"crashes"`
	Reboots              int     `json:"reboots"`
	MeanRecoveryMs       float64 `json:"mean_recovery_ms"`
	RecoveredNVRAMBlocks int     `json:"recovered_nvram_blocks"`
	// ClientReboots, BiodsLost, Failovers and LinkOutages count the
	// completed injections of the other fault kinds; StorageFaults the
	// storage-plane injections (media errors, degraded windows, torn
	// writes, lying boards) that fired.
	ClientReboots int `json:"client_reboots,omitempty"`
	BiodsLost     int `json:"biods_lost,omitempty"`
	Failovers     int `json:"failovers,omitempty"`
	LinkOutages   int `json:"link_outages,omitempty"`
	StorageFaults int `json:"storage_faults,omitempty"`
	// DroppedNVRAMBlocks counts dirty blocks lying boards discarded at
	// power events instead of replaying (the acked data they lost).
	DroppedNVRAMBlocks int `json:"dropped_nvram_blocks,omitempty"`
	// LossExpected is true when a scheduled fault declared acked-byte
	// loss permissible (a lying board, an unrecoverable media failure):
	// LostBytes > 0 with LossExpected false is a durability bug.
	LossExpected bool `json:"loss_expected,omitempty"`
	// RecoveryFailures lists scheduled recoveries that failed under
	// storage faults (without them a failed recovery panics the run).
	RecoveryFailures []string `json:"recovery_failures,omitempty"`
	// UnaccountedRefs is the per-cell block-reference leak audit: the
	// cell's outstanding references minus those attributable to the
	// cluster's long-lived stores after full quiesce. Must be 0.
	UnaccountedRefs int64 `json:"unaccounted_refs,omitempty"`
	// BufferedWrites counts write-behind acceptances; DroppedBuffered the
	// subset a crash-exposed client never got acked — permitted loss,
	// excluded from LostBytes. UnackedBuffered counts unacked buffered
	// writes on untargeted clients (also excluded; no ack, no obligation).
	BufferedWrites       int   `json:"buffered_writes,omitempty"`
	DroppedBuffered      int   `json:"dropped_buffered,omitempty"`
	DroppedBufferedBytes int64 `json:"dropped_buffered_bytes,omitempty"`
	UnackedBuffered      int   `json:"unacked_buffered,omitempty"`
	// EventsFired is the injector's timestamped fault transition log — a
	// pure function of spec and seed (the determinism contract).
	EventsFired []string `json:"events_fired,omitempty"`
}

// CellResult is one sweep point's outcome: the uniform metric columns
// plus workload-specific detail the legacy adapters map back onto their
// historical result types.
type CellResult struct {
	Label string `json:"label"`
	Seed  int64  `json:"seed"`
	Metrics

	// Elapsed is the exact simulated duration of the measured phase.
	Elapsed sim.Duration `json:"elapsed_ns"`
	// Gather is the gathering engine's counters (zero without gathering;
	// single-server cells only).
	Gather core.Stats `json:"gather,omitempty"`
	// ClientResults are the per-client LADDIS points (laddis cells).
	ClientResults []workload.LADDISResult `json:"client_results,omitempty"`
	// Drops counts datagrams the server endpoint dropped (single-server
	// cells only).
	Drops uint64 `json:"drops,omitempty"`
	// Durability is the crash audit (fault/durability cells only).
	Durability *Durability `json:"durability,omitempty"`
	// TraceText is the rendered Figure 1-style timeline (trace cells).
	TraceText string `json:"trace_text,omitempty"`
	// TraceLog is the raw event log behind TraceText.
	TraceLog *trace.Log `json:"-"`
}

// Result is one scenario run: its spec and every cell's outcome, in
// sweep order.
type Result struct {
	Name  string       `json:"name"`
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// selectedColumns returns the spec's metric selection (all columns when
// unset).
func (r *Result) selectedColumns() []string {
	if len(r.Spec.Metrics) == 0 {
		return MetricColumns()
	}
	return r.Spec.Metrics
}

// Render formats the result as one row per cell over the selected metric
// columns, with trace timelines and durability verdicts appended.
func (r *Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Name)
	if r.Spec.Description != "" {
		b.WriteString(" — " + r.Spec.Description)
	}
	b.WriteString("\n")
	cols := r.selectedColumns()
	fmt.Fprintf(&b, "%-16s", "cell")
	for _, c := range cols {
		fmt.Fprintf(&b, " %*s", columnWidth(c), c)
	}
	b.WriteString("\n")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "%-16s", cell.Label)
		for _, c := range cols {
			v, ok := cell.Column(c)
			if !ok {
				fmt.Fprintf(&b, " %*s", columnWidth(c), "?")
				continue
			}
			fmt.Fprintf(&b, " %*.2f", columnWidth(c), v)
		}
		b.WriteString("\n")
	}
	for _, cell := range r.Cells {
		if cell.Durability != nil {
			d := cell.Durability
			fmt.Fprintf(&b, "%s: crashes=%d reboots=%d mean recovery=%.1fms nvram replay=%d",
				cell.Label, d.Crashes, d.Reboots, d.MeanRecoveryMs, d.RecoveredNVRAMBlocks)
			if d.ClientReboots > 0 {
				fmt.Fprintf(&b, " client reboots=%d", d.ClientReboots)
			}
			if d.BiodsLost > 0 {
				fmt.Fprintf(&b, " biods lost=%d", d.BiodsLost)
			}
			if d.Failovers > 0 {
				fmt.Fprintf(&b, " failovers=%d", d.Failovers)
			}
			if d.LinkOutages > 0 {
				fmt.Fprintf(&b, " link outages=%d", d.LinkOutages)
			}
			if d.StorageFaults > 0 {
				fmt.Fprintf(&b, " storage faults=%d", d.StorageFaults)
			}
			if d.DroppedNVRAMBlocks > 0 {
				fmt.Fprintf(&b, " nvram dropped=%d", d.DroppedNVRAMBlocks)
			}
			if d.Checked {
				fmt.Fprintf(&b, "  acked %d writes/%d KB  lost %d bytes",
					d.AckedWrites, d.AckedBytes/1024, d.LostBytes)
				if d.DroppedBuffered > 0 {
					fmt.Fprintf(&b, "  dropped write-behind %d writes/%d KB (permitted)",
						d.DroppedBuffered, d.DroppedBufferedBytes/1024)
				}
				if d.LostBytes > 0 && d.LossExpected {
					b.WriteString("  loss expected (scheduled storage fault): " + d.FirstLoss)
				} else if d.LostBytes > 0 {
					b.WriteString("  DURABILITY VIOLATED: " + d.FirstLoss)
				}
			} else {
				b.WriteString("  (no durability check)")
			}
			b.WriteString("\n")
		}
	}
	for _, cell := range r.Cells {
		if cell.TraceText != "" {
			b.WriteString(cell.TraceText)
			b.WriteString("\n")
		}
	}
	return b.String()
}

func columnWidth(name string) int {
	if w := len(name); w > 10 {
		return w
	}
	return 10
}
