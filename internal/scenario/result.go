package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Metrics is the uniform column set every cell reports — the 15 metric
// columns all experiment entry points share. Columns that a workload
// does not produce are zero (and can be dropped from output via
// Spec.Metrics).
type Metrics struct {
	// ElapsedSec is the measured phase (copy/stream: the transfer
	// including outages; laddis: the measured window).
	ElapsedSec float64 `json:"elapsed_sec"`
	// ClientKBps is the client-observed sequential transfer rate.
	ClientKBps float64 `json:"client_kb_per_sec"`
	// CPUPercent is server CPU utilization over the measured interval
	// (the across-shard mean on a cluster); CPUMaxPercent the busiest
	// shard (equal to CPUPercent on a single server).
	CPUPercent    float64 `json:"cpu_percent"`
	CPUMaxPercent float64 `json:"cpu_max_percent"`
	// DiskKBps and DiskTps are spindle-level aggregate rates.
	DiskKBps float64 `json:"disk_kb_per_sec"`
	DiskTps  float64 `json:"disk_trans_per_sec"`
	// OfferedOpsPerSec / AchievedOpsPerSec / latency quantiles are the
	// LADDIS curve coordinates.
	OfferedOpsPerSec  float64 `json:"offered_ops_per_sec"`
	AchievedOpsPerSec float64 `json:"achieved_ops_per_sec"`
	AvgLatencyMs      float64 `json:"avg_latency_ms"`
	P95LatencyMs      float64 `json:"p95_latency_ms"`
	// Errors counts failed client operations.
	Errors int `json:"errors"`
	// Retransmissions and RebootsSeen are the client-side view of
	// outages; Crashes the number of server crashes performed.
	Retransmissions uint64 `json:"retransmissions"`
	RebootsSeen     uint64 `json:"reboots_seen"`
	Crashes         int    `json:"crashes"`
	// LostBytes is the durability checker's verdict: client-acked bytes
	// that did not survive recovery (the NFS contract demands 0).
	LostBytes int64 `json:"lost_bytes"`

	// NetMaxUtilPct is the busiest segment's medium utilization over the
	// cell's run and BridgeDrops the datagrams its bridges dropped (queue
	// overflow, severed uplinks, unknown destinations). Both exist only on
	// bridged multi-segment topologies; single-medium cells — including
	// every recorded baseline — never report them.
	NetMaxUtilPct float64 `json:"net_max_util_pct,omitempty"`
	BridgeDrops   uint64  `json:"bridge_drops,omitempty"`

	// P50..P999LatencyMs are streaming-histogram latency quantiles across
	// all measured LADDIS operations. They exist only when the spec's
	// Observe section enables histograms, are omitted from the default
	// column set, and recorded baselines (which never set Observe) are
	// unaffected.
	P50LatencyMs  float64 `json:"p50_latency_ms,omitempty"`
	P90LatencyMs  float64 `json:"p90_latency_ms,omitempty"`
	P99LatencyMs  float64 `json:"p99_latency_ms,omitempty"`
	P999LatencyMs float64 `json:"p999_latency_ms,omitempty"`

	// ShedArrivals, ExpiredOps and PeakQueue are the open-loop honesty
	// columns (openload cells only): arrivals dropped at a full backlog,
	// backlogged arrivals that aged out before issue, and the deepest
	// per-client backlog seen. Closed-loop workloads never report them.
	ShedArrivals uint64 `json:"shed_arrivals,omitempty"`
	ExpiredOps   uint64 `json:"expired_ops,omitempty"`
	PeakQueue    int    `json:"peak_queue,omitempty"`
}

// QuantileColumns lists the histogram-backed latency columns appended to
// renders when Observe.Histograms is set.
func QuantileColumns() []string {
	return []string{"p50_latency_ms", "p90_latency_ms", "p99_latency_ms", "p999_latency_ms"}
}

// SegmentColumns lists the bridged-topology columns appended to renders
// when the topology declares more than one media segment.
func SegmentColumns() []string {
	return []string{"net_max_util_pct", "bridge_drops"}
}

// OpenloadColumns lists the open-loop accounting columns appended to
// renders for openload cells (with the quantile columns, which openload
// always fills from its streaming latency histograms).
func OpenloadColumns() []string {
	return []string{"shed_arrivals", "expired_ops", "peak_queue"}
}

// MetricColumns lists the uniform column names in canonical order.
func MetricColumns() []string {
	return []string{
		"elapsed_sec", "client_kb_per_sec", "cpu_percent", "cpu_max_percent",
		"disk_kb_per_sec", "disk_trans_per_sec",
		"offered_ops_per_sec", "achieved_ops_per_sec", "avg_latency_ms", "p95_latency_ms",
		"errors", "retransmissions", "reboots_seen", "crashes", "lost_bytes",
	}
}

// Column returns one column's value by name.
func (m Metrics) Column(name string) (float64, bool) {
	switch name {
	case "elapsed_sec":
		return m.ElapsedSec, true
	case "client_kb_per_sec":
		return m.ClientKBps, true
	case "cpu_percent":
		return m.CPUPercent, true
	case "cpu_max_percent":
		return m.CPUMaxPercent, true
	case "disk_kb_per_sec":
		return m.DiskKBps, true
	case "disk_trans_per_sec":
		return m.DiskTps, true
	case "offered_ops_per_sec":
		return m.OfferedOpsPerSec, true
	case "achieved_ops_per_sec":
		return m.AchievedOpsPerSec, true
	case "avg_latency_ms":
		return m.AvgLatencyMs, true
	case "p95_latency_ms":
		return m.P95LatencyMs, true
	case "errors":
		return float64(m.Errors), true
	case "retransmissions":
		return float64(m.Retransmissions), true
	case "reboots_seen":
		return float64(m.RebootsSeen), true
	case "crashes":
		return float64(m.Crashes), true
	case "lost_bytes":
		return float64(m.LostBytes), true
	case "net_max_util_pct":
		return m.NetMaxUtilPct, true
	case "bridge_drops":
		return float64(m.BridgeDrops), true
	case "p50_latency_ms":
		return m.P50LatencyMs, true
	case "p90_latency_ms":
		return m.P90LatencyMs, true
	case "p99_latency_ms":
		return m.P99LatencyMs, true
	case "p999_latency_ms":
		return m.P999LatencyMs, true
	case "shed_arrivals":
		return float64(m.ShedArrivals), true
	case "expired_ops":
		return float64(m.ExpiredOps), true
	case "peak_queue":
		return float64(m.PeakQueue), true
	}
	return 0, false
}

// Durability is the crash/recovery audit attached to cells that ran with
// faults or the durability checker.
type Durability struct {
	// Checked is true when the acked-write journal was attached and
	// verified; without it the Acked*/Lost* fields are vacuously zero
	// (crash counters are still real) and renderers omit the verdict.
	Checked              bool    `json:"checked"`
	AckedWrites          int     `json:"acked_writes"`
	AckedBytes           int64   `json:"acked_bytes"`
	LostBytes            int64   `json:"lost_bytes"`
	FirstLoss            string  `json:"first_loss,omitempty"`
	Crashes              int     `json:"crashes"`
	Reboots              int     `json:"reboots"`
	MeanRecoveryMs       float64 `json:"mean_recovery_ms"`
	RecoveredNVRAMBlocks int     `json:"recovered_nvram_blocks"`
	// ClientReboots, BiodsLost, Failovers and LinkOutages count the
	// completed injections of the other fault kinds; StorageFaults the
	// storage-plane injections (media errors, degraded windows, torn
	// writes, lying boards) that fired.
	ClientReboots int `json:"client_reboots,omitempty"`
	BiodsLost     int `json:"biods_lost,omitempty"`
	Failovers     int `json:"failovers,omitempty"`
	LinkOutages   int `json:"link_outages,omitempty"`
	StorageFaults int `json:"storage_faults,omitempty"`
	// DroppedNVRAMBlocks counts dirty blocks lying boards discarded at
	// power events instead of replaying (the acked data they lost).
	DroppedNVRAMBlocks int `json:"dropped_nvram_blocks,omitempty"`
	// LossExpected is true when a scheduled fault declared acked-byte
	// loss permissible (a lying board, an unrecoverable media failure):
	// LostBytes > 0 with LossExpected false is a durability bug.
	LossExpected bool `json:"loss_expected,omitempty"`
	// RecoveryFailures lists scheduled recoveries that failed under
	// storage faults (without them a failed recovery panics the run).
	RecoveryFailures []string `json:"recovery_failures,omitempty"`
	// UnaccountedRefs is the per-cell block-reference leak audit: the
	// cell's outstanding references minus those attributable to the
	// cluster's long-lived stores after full quiesce. Must be 0.
	UnaccountedRefs int64 `json:"unaccounted_refs,omitempty"`
	// BufferedWrites counts write-behind acceptances; DroppedBuffered the
	// subset a crash-exposed client never got acked — permitted loss,
	// excluded from LostBytes. UnackedBuffered counts unacked buffered
	// writes on untargeted clients (also excluded; no ack, no obligation).
	BufferedWrites       int   `json:"buffered_writes,omitempty"`
	DroppedBuffered      int   `json:"dropped_buffered,omitempty"`
	DroppedBufferedBytes int64 `json:"dropped_buffered_bytes,omitempty"`
	UnackedBuffered      int   `json:"unacked_buffered,omitempty"`
	// EventsFired is the injector's timestamped fault transition log — a
	// pure function of spec and seed (the determinism contract).
	EventsFired []string `json:"events_fired,omitempty"`
}

// CellResult is one sweep point's outcome: the uniform metric columns
// plus workload-specific detail the legacy adapters map back onto their
// historical result types.
type CellResult struct {
	Label string `json:"label"`
	Seed  int64  `json:"seed"`
	Metrics

	// Elapsed is the exact simulated duration of the measured phase.
	Elapsed sim.Duration `json:"elapsed_ns"`
	// Wall is the real (host) time the cell took to execute. It is
	// harness observability — nondeterministic by nature — so it is
	// excluded from serialization and from Render, keeping every
	// recorded output byte-identical across worker counts and machines.
	Wall time.Duration `json:"-"`
	// Gather is the gathering engine's counters (zero without gathering;
	// single-server cells only).
	Gather core.Stats `json:"gather,omitempty"`
	// ClientResults are the per-client LADDIS points (laddis cells).
	ClientResults []workload.LADDISResult `json:"client_results,omitempty"`
	// OpenloadClients are the per-client open-loop accounting summaries
	// (openload cells only).
	OpenloadClients []OpenloadClient `json:"openload_clients,omitempty"`
	// Drops counts datagrams the server endpoint dropped (single-server
	// cells only).
	Drops uint64 `json:"drops,omitempty"`
	// Durability is the crash audit (fault/durability cells only).
	Durability *Durability `json:"durability,omitempty"`
	// TraceText is the rendered Figure 1-style timeline (trace cells).
	TraceText string `json:"trace_text,omitempty"`
	// TraceLog is the raw event log behind TraceText.
	TraceLog *trace.Log `json:"-"`

	// Segments and Bridges are the bridged-fabric roll-up, in declaration
	// order (multi-segment cells only): per-segment wire accounting and
	// per-bridge forward/drop/queue counters.
	Segments []SegmentStat `json:"segments,omitempty"`
	Bridges  []BridgeStat  `json:"bridges,omitempty"`

	// SimTime is the full simulated extent of the cell — setup, measured
	// phase, fault recovery and audits — as read off the simulation clock
	// when the cell quiesced (Elapsed covers the measured phase only).
	SimTime sim.Duration `json:"sim_time_ns,omitempty"`
	// GatherBatch and GatherCommitMs summarize the gathering engine's
	// always-on distributions: writes per committed batch, and per-batch
	// commit latency (gather close to platter/NVRAM completion) in
	// milliseconds. Nil without gathering. On a cluster they merge the
	// current boot's engines (earlier boots die with their servers).
	GatherBatch    *DistSummary `json:"gather_batch,omitempty"`
	GatherCommitMs *DistSummary `json:"gather_commit_ms,omitempty"`
	// OpQuantiles is the per-op latency quantile table (LADDIS cells with
	// Observe.Histograms), sorted by op name.
	OpQuantiles []OpQuantiles `json:"op_quantiles,omitempty"`
	// Trace and Series are the cell's collected observability artifacts
	// (Observe cells only); nfsbench serializes them on demand.
	Trace  *obs.Trace      `json:"-"`
	Series *obs.TimeSeries `json:"-"`
}

// OpenloadClient is one client's open-loop accounting: what it offered,
// what the server actually absorbed, and where the difference went.
type OpenloadClient struct {
	Offered      uint64 `json:"offered"`
	Completed    uint64 `json:"completed"`
	Errors       int    `json:"errors"`
	Shed         uint64 `json:"shed,omitempty"`
	Expired      uint64 `json:"expired,omitempty"`
	PeakQueue    int    `json:"peak_queue,omitempty"`
	PeakInFlight int    `json:"peak_in_flight,omitempty"`
	// PerOp counts completed operations by name — the mix the client
	// actually issued, not the one the spec asked for.
	PerOp map[string]int `json:"per_op,omitempty"`
}

// SegmentStat is one fabric segment's wire roll-up over the cell's run.
type SegmentStat struct {
	Name          string  `json:"name"`
	UtilPct       float64 `json:"util_pct"`
	Datagrams     uint64  `json:"datagrams"`
	KBytes        uint64  `json:"kbytes"`
	DropsLinkDown uint64  `json:"drops_link_down,omitempty"`
	DropsNoDest   uint64  `json:"drops_no_dest,omitempty"`
}

// BridgeStat is one uplink bridge's roll-up, both ports summed.
type BridgeStat struct {
	Name           string `json:"name"`
	Forwarded      uint64 `json:"forwarded"`
	DropsQueueFull uint64 `json:"drops_queue_full,omitempty"`
	DropsLinkDown  uint64 `json:"drops_link_down,omitempty"`
	DropsNoRoute   uint64 `json:"drops_no_route,omitempty"`
	PeakQueue      int    `json:"peak_queue,omitempty"`
}

// DistSummary is a histogram rendered to its headline numbers.
type DistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// summarize renders h with every value scaled by scale (1 for counts,
// 1e-3 for µs→ms). Nil when the histogram is empty.
func summarize(h *stats.Histogram, scale float64) *DistSummary {
	if h == nil || h.N() == 0 {
		return nil
	}
	return &DistSummary{
		Count: h.N(),
		Mean:  h.Mean() * scale,
		P50:   h.Quantile(0.50) * scale,
		P90:   h.Quantile(0.90) * scale,
		P99:   h.Quantile(0.99) * scale,
		P999:  h.Quantile(0.999) * scale,
		Max:   float64(h.MaxSeen) * scale,
	}
}

// OpQuantiles is one op kind's latency quantile row (milliseconds),
// merged across every client's streaming histogram.
type OpQuantiles struct {
	Op     string  `json:"op"`
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// fillQuantiles merges the per-client, per-op streaming histograms into
// the cell's quantile columns and per-op table. Histograms record µs.
func fillQuantiles(cr *CellResult, results []workload.LADDISResult) {
	var all stats.Histogram
	perOp := map[string]*stats.Histogram{}
	for _, res := range results {
		for op, h := range res.Hists {
			if perOp[op] == nil {
				perOp[op] = &stats.Histogram{}
			}
			perOp[op].Merge(h)
			all.Merge(h)
		}
	}
	if all.N() == 0 {
		return
	}
	const usPerMs = 1000.0
	cr.P50LatencyMs = all.Quantile(0.50) / usPerMs
	cr.P90LatencyMs = all.Quantile(0.90) / usPerMs
	cr.P99LatencyMs = all.Quantile(0.99) / usPerMs
	cr.P999LatencyMs = all.Quantile(0.999) / usPerMs
	ops := make([]string, 0, len(perOp))
	for op := range perOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		h := perOp[op]
		cr.OpQuantiles = append(cr.OpQuantiles, OpQuantiles{
			Op:     op,
			Count:  h.N(),
			MeanMs: h.Mean() / usPerMs,
			P50Ms:  h.Quantile(0.50) / usPerMs,
			P90Ms:  h.Quantile(0.90) / usPerMs,
			P99Ms:  h.Quantile(0.99) / usPerMs,
			P999Ms: h.Quantile(0.999) / usPerMs,
		})
	}
}

// Result is one scenario run: its spec and every cell's outcome, in
// sweep order.
type Result struct {
	Name  string       `json:"name"`
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// selectedColumns returns the spec's metric selection (all columns when
// unset, plus the quantile columns when histograms are on).
func (r *Result) selectedColumns() []string {
	if len(r.Spec.Metrics) == 0 {
		cols := MetricColumns()
		openload := r.Spec.Workload.Kind == KindOpenload
		if (r.Spec.Observe != nil && r.Spec.Observe.Histograms) || openload {
			cols = append(cols, QuantileColumns()...)
		}
		if openload {
			cols = append(cols, OpenloadColumns()...)
		}
		if len(r.Spec.Topology.Media) > 1 {
			cols = append(cols, SegmentColumns()...)
		}
		return cols
	}
	return r.Spec.Metrics
}

// Render formats the result as one row per cell over the selected metric
// columns, with trace timelines and durability verdicts appended.
func (r *Result) Render() string {
	var b strings.Builder
	b.WriteString(r.Name)
	if r.Spec.Description != "" {
		b.WriteString(" — " + r.Spec.Description)
	}
	b.WriteString("\n")
	cols := r.selectedColumns()
	fmt.Fprintf(&b, "%-16s", "cell")
	for _, c := range cols {
		fmt.Fprintf(&b, " %*s", columnWidth(c), c)
	}
	b.WriteString("\n")
	for _, cell := range r.Cells {
		fmt.Fprintf(&b, "%-16s", cell.Label)
		for _, c := range cols {
			v, ok := cell.Column(c)
			if !ok {
				fmt.Fprintf(&b, " %*s", columnWidth(c), "?")
				continue
			}
			fmt.Fprintf(&b, " %*.2f", columnWidth(c), v)
		}
		b.WriteString("\n")
	}
	r.renderCapacity(&b)
	for _, cell := range r.Cells {
		if cell.Durability != nil {
			d := cell.Durability
			fmt.Fprintf(&b, "%s: crashes=%d reboots=%d mean recovery=%.1fms nvram replay=%d",
				cell.Label, d.Crashes, d.Reboots, d.MeanRecoveryMs, d.RecoveredNVRAMBlocks)
			if d.ClientReboots > 0 {
				fmt.Fprintf(&b, " client reboots=%d", d.ClientReboots)
			}
			if d.BiodsLost > 0 {
				fmt.Fprintf(&b, " biods lost=%d", d.BiodsLost)
			}
			if d.Failovers > 0 {
				fmt.Fprintf(&b, " failovers=%d", d.Failovers)
			}
			if d.LinkOutages > 0 {
				fmt.Fprintf(&b, " link outages=%d", d.LinkOutages)
			}
			if d.StorageFaults > 0 {
				fmt.Fprintf(&b, " storage faults=%d", d.StorageFaults)
			}
			if d.DroppedNVRAMBlocks > 0 {
				fmt.Fprintf(&b, " nvram dropped=%d", d.DroppedNVRAMBlocks)
			}
			if d.Checked {
				fmt.Fprintf(&b, "  acked %d writes/%d KB  lost %d bytes",
					d.AckedWrites, d.AckedBytes/1024, d.LostBytes)
				if d.DroppedBuffered > 0 {
					fmt.Fprintf(&b, "  dropped write-behind %d writes/%d KB (permitted)",
						d.DroppedBuffered, d.DroppedBufferedBytes/1024)
				}
				if d.LostBytes > 0 && d.LossExpected {
					b.WriteString("  loss expected (scheduled storage fault): " + d.FirstLoss)
				} else if d.LostBytes > 0 {
					b.WriteString("  DURABILITY VIOLATED: " + d.FirstLoss)
				}
			} else {
				b.WriteString("  (no durability check)")
			}
			b.WriteString("\n")
		}
	}
	for _, cell := range r.Cells {
		if cell.GatherBatch == nil && cell.GatherCommitMs == nil {
			continue
		}
		fmt.Fprintf(&b, "%s: gather", cell.Label)
		if d := cell.GatherBatch; d != nil {
			fmt.Fprintf(&b, " batches=%d size mean=%.1f p50=%.0f p99=%.0f max=%.0f",
				d.Count, d.Mean, d.P50, d.P99, d.Max)
		}
		if d := cell.GatherCommitMs; d != nil {
			fmt.Fprintf(&b, "  commit ms mean=%.2f p50=%.2f p99=%.2f max=%.2f",
				d.Mean, d.P50, d.P99, d.Max)
		}
		b.WriteString("\n")
	}
	for _, cell := range r.Cells {
		if len(cell.Segments) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s: segments", cell.Label)
		for _, sg := range cell.Segments {
			fmt.Fprintf(&b, " %s=%.1f%%/%ddg", sg.Name, sg.UtilPct, sg.Datagrams)
		}
		for _, br := range cell.Bridges {
			fmt.Fprintf(&b, "  %s fwd=%d", br.Name, br.Forwarded)
			if drops := br.DropsQueueFull + br.DropsLinkDown + br.DropsNoRoute; drops > 0 {
				fmt.Fprintf(&b, " drops=%d", drops)
			}
			if br.PeakQueue > 0 {
				fmt.Fprintf(&b, " peakq=%d", br.PeakQueue)
			}
		}
		b.WriteString("\n")
	}
	for _, cell := range r.Cells {
		if len(cell.OpQuantiles) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s per-op latency quantiles (ms):\n", cell.Label)
		fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s %10s %10s\n",
			"op", "n", "mean", "p50", "p90", "p99", "p999")
		for _, oq := range cell.OpQuantiles {
			fmt.Fprintf(&b, "  %-10s %10d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
				oq.Op, oq.Count, oq.MeanMs, oq.P50Ms, oq.P90Ms, oq.P99Ms, oq.P999Ms)
		}
	}
	for _, cell := range r.Cells {
		if cell.TraceText != "" {
			b.WriteString(cell.TraceText)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// renderCapacity appends the compact capacity-vs-offered-load table for
// openload sweeps: one row per offered rate, one column per cell-label
// family ("std-1000"/"wg-1000" → families "std" and "wg"), each cell
// showing achieved ops/s at the p99 latency — the knee readable at a
// glance without opening the CSV. Only multi-cell openload sweeps
// produce it; every other workload's render is untouched.
func (r *Result) renderCapacity(b *strings.Builder) {
	if r.Spec.Workload.Kind != KindOpenload || len(r.Cells) < 2 {
		return
	}
	type point struct {
		achieved, p99 float64
		ok            bool
	}
	family := func(label string) string {
		if i := strings.LastIndex(label, "-"); i > 0 {
			return label[:i]
		}
		return label
	}
	var fams []string
	var offers []float64
	rows := map[float64]map[string]point{}
	for _, cell := range r.Cells {
		f := family(cell.Label)
		seenF := false
		for _, x := range fams {
			if x == f {
				seenF = true
				break
			}
		}
		if !seenF {
			fams = append(fams, f)
		}
		row := rows[cell.OfferedOpsPerSec]
		if row == nil {
			row = map[string]point{}
			rows[cell.OfferedOpsPerSec] = row
			offers = append(offers, cell.OfferedOpsPerSec)
		}
		row[f] = point{achieved: cell.AchievedOpsPerSec, p99: cell.P99LatencyMs, ok: true}
	}
	sort.Float64s(offers)
	b.WriteString("capacity curve (achieved ops/s @ p99 ms):\n")
	fmt.Fprintf(b, "  %10s", "offered")
	for _, f := range fams {
		fmt.Fprintf(b, "  %19s", f)
	}
	b.WriteString("\n")
	for _, off := range offers {
		fmt.Fprintf(b, "  %10.0f", off)
		for _, f := range fams {
			p, ok := rows[off][f]
			if !ok || !p.ok {
				fmt.Fprintf(b, "  %19s", "-")
				continue
			}
			fmt.Fprintf(b, "  %9.1f @ %7.2f", p.achieved, p.p99)
		}
		b.WriteString("\n")
	}
}

func columnWidth(name string) int {
	if w := len(name); w > 10 {
		return w
	}
	return 10
}
