package scenario

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// observeSpec is a small gathering LADDIS cell with the full observe
// plane on — every instrument exercised in one fast run.
func observeSpec() Spec {
	return Spec{
		Name: "obs-test",
		Seed: 11,
		Topology: Topology{
			Net:     "ethernet",
			Clients: []ClientGroup{{Count: 2, Biods: 2}},
			Servers: Servers{Count: 1, Gathering: true, Presto: true},
		},
		Workload: Workload{
			Kind: KindLADDIS,
			LADDIS: &LADDISWorkload{
				Files: 4, FileBlocks: 4, Procs: 2,
				OfferedOpsPerSec: 100, Measure: 2 * sim.Second, Seed: 3,
			},
		},
		Observe: &Observe{Trace: true, Probes: true, Histograms: true},
	}
}

// TestObserveDoesNotPerturbMetrics is the zero-cost contract from the
// result side: the full observe plane on vs off must leave every base
// metric column bit-identical (the instruments read, they never sleep,
// schedule around the workload, or draw randomness).
func TestObserveDoesNotPerturbMetrics(t *testing.T) {
	on := observeSpec()
	off := observeSpec()
	off.Observe = nil

	ron, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ron.Cells {
		for _, col := range MetricColumns() {
			a, _ := ron.Cells[i].Column(col)
			b, _ := roff.Cells[i].Column(col)
			if a != b {
				t.Errorf("cell %d: observe perturbed %s: %v vs %v",
					i, col, a, b)
			}
		}
	}
}

// TestObserveTraceDeterministic runs the instrumented spec twice and
// demands byte-identical trace serialization — the contract that makes a
// trace file a reproducible artifact of (spec, seed).
func TestObserveTraceDeterministic(t *testing.T) {
	serialize := func() []byte {
		res, err := Run(observeSpec())
		if err != nil {
			t.Fatal(err)
		}
		var traces []*obs.Trace
		for i := range res.Cells {
			tr := res.Cells[i].Trace
			if tr == nil || len(tr.Events) == 0 {
				t.Fatalf("cell %d: no trace events collected", i)
			}
			traces = append(traces, tr)
		}
		var b bytes.Buffer
		if err := obs.WriteTraces(&b, traces); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := serialize(), serialize()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs serialized different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestObserveQuantilesAndProbes checks the two remaining instruments on
// one run: monotone nonzero latency quantile columns with a per-op
// table, and a probe series sampled on the simulated clock.
func TestObserveQuantilesAndProbes(t *testing.T) {
	res, err := Run(observeSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	qs := []float64{c.P50LatencyMs, c.P90LatencyMs, c.P99LatencyMs, c.P999LatencyMs}
	if qs[0] <= 0 {
		t.Fatalf("p50 latency not positive: %v", qs)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
	if len(c.OpQuantiles) == 0 {
		t.Fatal("no per-op quantile table")
	}
	for _, oq := range c.OpQuantiles {
		if oq.Count <= 0 || oq.P999Ms < oq.P50Ms {
			t.Errorf("bad per-op row: %+v", oq)
		}
	}
	if c.Series == nil || c.Series.N() == 0 {
		t.Fatal("no probe samples collected")
	}
	for i := 1; i < len(c.Series.Times); i++ {
		if c.Series.Times[i] <= c.Series.Times[i-1] {
			t.Fatalf("probe times not increasing at %d: %v", i, c.Series.Times[i])
		}
	}
	if c.GatherBatch == nil || c.GatherBatch.Count == 0 {
		t.Fatal("gathering cell reported no batch-size distribution")
	}
	if c.GatherCommitMs == nil || c.GatherCommitMs.Count == 0 {
		t.Fatal("gathering cell reported no commit-latency distribution")
	}
}

// TestObserveAbsentCollectsNothing pins the disabled path: no Observe
// section, no artifacts, no quantile columns.
func TestObserveAbsentCollectsNothing(t *testing.T) {
	spec := observeSpec()
	spec.Observe = nil
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.Trace != nil || c.Series != nil {
		t.Fatal("observe-off cell collected artifacts")
	}
	if c.P50LatencyMs != 0 || len(c.OpQuantiles) != 0 {
		t.Fatal("observe-off cell reported quantiles")
	}
}

// TestObserveOnClusterFollowsReboots crashes the server mid-stream with
// tracing on: server-side spans must keep flowing after the reboot
// rebuilds the server (the OnServerUp re-hook path), and the run must
// stay loss-free.
func TestObserveOnClusterFollowsReboots(t *testing.T) {
	spec := Spec{
		Name: "obs-crash",
		Seed: 5,
		Topology: Topology{
			Net:      "ethernet",
			Clients:  []ClientGroup{{Count: 1, Biods: 2, MaxRetries: 100}},
			Servers:  Servers{Count: 1, Gathering: true, Presto: true},
			Assembly: AssemblyCluster,
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}},
		Faults: Faults{
			CheckDurability: true,
			Crashes:         []CrashTrain{{Node: 0, At: 500 * sim.Millisecond, Outage: 100 * sim.Millisecond, Count: 1}},
		},
		Observe: &Observe{Trace: true, Probes: true},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.LostBytes != 0 {
		t.Fatalf("lost %d acked bytes", c.LostBytes)
	}
	if c.Trace == nil {
		t.Fatal("no trace collected")
	}
	// Find a server-side span that started after the reboot completed —
	// proof the rebuilt server was re-hooked.
	crashAt := sim.Time(500 * sim.Millisecond)
	var post bool
	for _, ev := range c.Trace.Events {
		if ev.Phase == 'X' && ev.Cat == "nfs" && ev.TS > crashAt {
			post = true
			break
		}
	}
	if !post {
		t.Fatal("no nfsd span recorded after the crash; reboot re-hook lost the server")
	}
}
