package scenario

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// bridgedSweepSpec is the bridged registry scenario with the LADDIS
// measure trimmed for test runtime.
func bridgedSweepSpec(t *testing.T) Spec {
	t.Helper()
	spec, ok := Lookup("bridged")
	if !ok {
		t.Fatal("bridged not registered")
	}
	l := *spec.Workload.LADDIS
	l.Measure = 1 * sim.Second
	spec.Workload.LADDIS = &l
	return spec
}

// TestBridgedByteIdentical is the store-and-forward determinism
// contract at the engine level: the bridged segment-count sweep run
// sequentially and across a worker pool yields identical output —
// Render bytes, the serialized result, every metric column — and the
// multi-segment columns are actually populated.
func TestBridgedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweeps in -short mode")
	}
	spec := bridgedSweepSpec(t)
	seq, err := RunWorkers(spec, 1)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par, err := RunWorkers(spec, 4)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	a, b := seq.Render(), par.Render()
	if a != b {
		t.Errorf("Render differs between workers=1 and workers=4:\n--- sequential\n%s\n--- parallel\n%s", a, b)
	}
	aj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("serialized results differ between workers=1 and workers=4")
	}
	for i := range seq.Cells {
		if !reflect.DeepEqual(seq.Cells[i].Metrics, par.Cells[i].Metrics) {
			t.Errorf("cell %s: metric columns differ:\n%+v\n%+v",
				seq.Cells[i].Label, seq.Cells[i].Metrics, par.Cells[i].Metrics)
		}
	}
	// The fabric columns are part of the scenario's output contract.
	for _, col := range SegmentColumns() {
		if !strings.Contains(a, col) {
			t.Errorf("Render missing fabric column %q", col)
		}
	}
	for _, c := range seq.Cells {
		if len(c.Segments) < 2 {
			t.Errorf("cell %s: %d segment stats, want the core plus every leaf", c.Label, len(c.Segments))
		}
		if len(c.Bridges) < 1 {
			t.Errorf("cell %s: no bridge stats", c.Label)
		}
		if c.Metrics.NetMaxUtilPct <= 0 {
			t.Errorf("cell %s: net_max_util_pct = %v, want > 0", c.Label, c.Metrics.NetMaxUtilPct)
		}
		for _, b := range c.Bridges {
			if b.Forwarded == 0 {
				t.Errorf("cell %s: bridge %s forwarded nothing — clients did not cross it", c.Label, b.Name)
			}
		}
	}
	// The sweep axis works: seg4 cells carry more segments than seg1.
	if n1, n4 := len(seq.Cells[0].Segments), len(seq.Cells[4].Segments); n4 <= n1 {
		t.Errorf("segment sweep did not grow the fabric: %d -> %d segments", n1, n4)
	}
}

// bridgedStreamSpec is a two-segment durability testbed: both clients on
// an Ethernet leaf, the server across a store-and-forward bridge on the
// FDDI core, every write audited.
func bridgedStreamSpec() Spec {
	return Spec{
		Name: "bridgedstream",
		Seed: 3131,
		Topology: Topology{
			Media: []Medium{
				{Name: "core", Net: "fddi"},
				{Name: "lan1", Net: "ethernet", Uplink: "core"},
			},
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 200, Segment: "lan1"}},
			Servers:  Servers{Count: 1, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}},
		Faults:   Faults{CheckDurability: true},
	}
}

// TestBridgedPartitionRideout severs the leaf segment's uplink
// mid-stream: every host on lan1 partitions from the server at once.
// The contract is the NFS one — clients ride the partition out with
// retransmission and every acked byte survives; the severed uplink
// fires as a recorded fault transition on the way down and up.
func TestBridgedPartitionRideout(t *testing.T) {
	seg := "lan1"
	spec := bridgedStreamSpec()
	spec.Faults.Events = []FaultEvent{{
		Kind: FaultLinkOutage,
		LinkOutage: &LinkOutageFault{
			Segment: &seg, At: 150 * sim.Millisecond, Outage: 150 * sim.Millisecond, Count: 1,
		},
	}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	d := c.Durability
	if d == nil {
		t.Fatal("no durability audit")
	}
	if d.LinkOutages != 1 {
		t.Fatalf("link outages = %d, want 1; events: %v", d.LinkOutages, d.EventsFired)
	}
	var down, up bool
	for _, ev := range d.EventsFired {
		down = down || strings.Contains(ev, "link-down segment lan1")
		up = up || strings.Contains(ev, "link-up segment lan1")
	}
	if !down || !up {
		t.Errorf("uplink transitions not recorded (down=%v up=%v): %v", down, up, d.EventsFired)
	}
	if c.Retransmissions == 0 {
		t.Error("the partition left no client-side trace")
	}
	if d.AckedBytes < 2<<20 {
		t.Errorf("streams did not finish across the partition: %d bytes acked", d.AckedBytes)
	}
	if d.LostBytes != 0 {
		t.Errorf("DURABILITY VIOLATED across the partition: lost %d bytes: %s", d.LostBytes, d.FirstLoss)
	}
}

// TestBridgedFailoverAcrossSegments moves the failover scenario onto a
// bridged fabric: both shards on the core, every client behind a leaf
// bridge. Shard 2 dies and shard 1 adopts its disks — the adopted
// export must stay reachable from the leaf segment (the fabric's routes
// repoint to the survivor), the orphaned stream finishes through it,
// and every acked byte reads back.
func TestBridgedFailoverAcrossSegments(t *testing.T) {
	spec := bridgedStreamSpec()
	spec.Name = "bridgedfailover"
	spec.Seed = 4747
	spec.Topology.Servers.Count = 2
	spec.Workload.Stream.Shard = true
	spec.Faults.Events = []FaultEvent{{
		Kind: FaultShardFailover,
		ShardFailover: &ShardFailoverFault{
			Node: 1, To: 0, At: 400 * sim.Millisecond, Takeover: 250 * sim.Millisecond,
		},
	}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	d := c.Durability
	if d == nil {
		t.Fatal("no durability audit")
	}
	if d.Failovers != 1 || d.Crashes != 1 || d.Reboots != 0 {
		t.Errorf("failovers=%d crashes=%d reboots=%d, want 1/1/0; events: %v",
			d.Failovers, d.Crashes, d.Reboots, d.EventsFired)
	}
	// Both 1MB streams completed: the orphaned stream reached the
	// adopted export across the bridge.
	if d.AckedBytes < 2<<20 {
		t.Errorf("only %d bytes acked; the orphaned stream did not finish through the adopter across the fabric",
			d.AckedBytes)
	}
	if d.LostBytes != 0 {
		t.Errorf("DURABILITY VIOLATED across failover: lost %d bytes: %s", d.LostBytes, d.FirstLoss)
	}
	if c.Retransmissions == 0 {
		t.Error("the takeover window left no client-side trace")
	}
}

// TestValidateBridgedPlacement is the placement/typology validation
// table: every malformed fabric or placement is rejected with a typed
// error on the right field.
func TestValidateBridgedPlacement(t *testing.T) {
	base := func() Spec { return bridgedStreamSpec() }

	// Net and Media both set — the error names the known media kinds.
	s := base()
	s.Topology.Net = "fddi"
	err := s.Validate()
	if err == nil {
		t.Fatal("net+media spec validated")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Field != "topology.net" {
		t.Fatalf("net+media error = %v, want ValidationError on topology.net", err)
	}
	if !strings.Contains(verr.Reason, "ethernet") || !strings.Contains(verr.Reason, "fddi") {
		t.Errorf("net+media error does not list the known media kinds: %s", verr.Reason)
	}

	// Placement on an undeclared segment.
	s = base()
	s.Topology.Clients[0].Segment = "lan9"
	wantInvalid(t, s, "topology.clients[0].segment")

	s = base()
	s.Topology.Servers.Segment = "nowhere"
	wantInvalid(t, s, "topology.servers.segment")

	// Segment placement without a media list.
	s = base()
	s.Topology.Net, s.Topology.Media = "fddi", nil
	s.Topology.Clients[0].Segment = ""
	s.Topology.Servers.Segment = "core"
	wantInvalid(t, s, "topology.servers.segment")

	// Duplicate segment name.
	s = base()
	s.Topology.Media[1].Name = "core"
	wantInvalid(t, s, "topology.media[1]")

	// Unknown medium kind.
	s = base()
	s.Topology.Media[1].Net = "token-ring"
	wantInvalid(t, s, "topology.media[1]")

	// Two roots: the second is an orphan.
	s = base()
	s.Topology.Media[1].Uplink = ""
	wantInvalid(t, s, "topology.media[1]")

	// No root at all: the uplinks cycle.
	s = base()
	s.Topology.Media[0].Uplink = "lan1"
	wantInvalid(t, s, "topology.media")

	// Uplink to itself.
	s = base()
	s.Topology.Media[1].Uplink = "lan1"
	wantInvalid(t, s, "topology.media[1]")

	// Uplink to an undeclared segment.
	s = base()
	s.Topology.Media[1].Uplink = "backbone"
	wantInvalid(t, s, "topology.media[1]")

	// Negative bridge parameters.
	s = base()
	s.Topology.Media[1].BridgeLatency = -1
	wantInvalid(t, s, "topology.media[1]")
	s = base()
	s.Topology.Media[1].BridgeQueue = -1
	wantInvalid(t, s, "topology.media[1]")

	// Empty per-node segment override.
	s = base()
	empty := ""
	s.Topology.Servers.Nodes = []NodeOverride{{Segment: &empty}}
	wantInvalid(t, s, "topology.servers.nodes[0].segment")

	// Segment outage on the root: no uplink to sever.
	s = base()
	root := "core"
	s.Faults.Events = []FaultEvent{{
		Kind: FaultLinkOutage,
		LinkOutage: &LinkOutageFault{
			Segment: &root, At: sim.Millisecond, Outage: sim.Millisecond, Count: 1,
		},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Segment outage on a flat single-medium topology.
	s = base()
	seg := "lan1"
	s.Topology.Net, s.Topology.Media = "fddi", nil
	s.Topology.Clients[0].Segment = ""
	s.Faults.Events = []FaultEvent{{
		Kind: FaultLinkOutage,
		LinkOutage: &LinkOutageFault{
			Segment: &seg, At: sim.Millisecond, Outage: sim.Millisecond, Count: 1,
		},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Segment-count cell override on a flat topology.
	s = base()
	s.Topology.Net, s.Topology.Media = "fddi", nil
	s.Topology.Clients[0].Segment = ""
	one := 1
	s.Cells = []Cell{{Label: "seg1", Segments: &one}}
	wantInvalid(t, s, "cells.segments")

	// Segment-count override beyond the declared leaves.
	s = base()
	three := 3
	s.Cells = []Cell{{Label: "seg3", Segments: &three}}
	wantInvalid(t, s, "cells.segments")
}

// TestFuzzGeneratesBridgedTopologies pins the fuzzer's fabric coverage:
// the generator must emit multi-segment topologies (clients placed off
// the root) and segment-targeted outage events, so the campaign
// actually exercises the bridged datagram path.
func TestFuzzGeneratesBridgedTopologies(t *testing.T) {
	multi, segEvents := 0, 0
	for i := 0; i < 150; i++ {
		rng := rand.New(rand.NewSource(1_000_003 + int64(i)))
		spec := genSpec(rng, i)
		if len(spec.Topology.Media) > 1 {
			multi++
			if spec.Topology.Clients[0].Segment == "" {
				t.Errorf("run %d: bridged topology with the client group on the root — nothing crosses a bridge", i)
			}
		}
		for _, ev := range spec.Faults.Events {
			if ev.Kind == FaultLinkOutage && ev.LinkOutage.Segment != nil {
				segEvents++
			}
		}
	}
	if multi == 0 {
		t.Error("150 generated specs, none on a bridged fabric")
	}
	if segEvents == 0 {
		t.Error("150 generated specs, no segment-targeted link outage")
	}
	t.Logf("fuzz coverage: %d/150 bridged specs, %d segment outages", multi, segEvents)
}
