// Package scenario is the unified experiment API: one declarative,
// JSON-serializable Spec describes a topology (client groups, server
// shards, media), a workload (file copies, LADDIS mixes, write streams,
// traced transfers), an optional fault schedule (per-node crash trains)
// and a metric selection — and one engine, Run, executes any of them on
// the appropriate testbed assembly (internal/rig for the paper's
// single-server configurations, internal/cluster for sharded and
// crashable ones) and returns a uniform Result.
//
// Every entry point in internal/experiments (the paper's tables, figures,
// scale and crash sweeps) is a thin adapter that builds a Spec and
// delegates here; the built-in Registry names those plus scenarios the
// legacy API could not express (crash-under-load sweeps, flapping
// storms). New experiment shapes should be new specs, not new Run*
// functions.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Decode parses a spec from JSON strictly: unknown fields are an error,
// so a typo'd key in a hand-edited spec file fails loudly instead of
// silently running with defaults. The decoded spec is not yet validated
// (Run and Validate do that).
func Decode(blob []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode spec: %w", err)
	}
	return spec, nil
}

// Spec is one complete, serializable experiment description.
type Spec struct {
	// Name identifies the scenario (registry key, result header).
	Name string `json:"name"`
	// Description is the one-line summary `nfsbench -list` prints.
	Description string `json:"description,omitempty"`
	// Seed is the base seed; cells may override it per cell.
	Seed int64 `json:"seed"`

	Topology Topology `json:"topology"`
	Workload Workload `json:"workload"`
	Faults   Faults   `json:"faults,omitempty"`

	// Cells expands the spec into a sweep: each cell runs the base
	// topology/workload with its overrides applied, in order, on a fresh
	// simulation. Empty means one cell with no overrides.
	Cells []Cell `json:"cells,omitempty"`

	// Metrics selects which of the uniform metric columns renderers and
	// encoders emit (see MetricColumns). Empty means all.
	Metrics []string `json:"metrics,omitempty"`

	// Observe switches on the observability plane for every cell. Nil (the
	// default, and the only form recorded baselines use) costs the hot
	// paths nothing beyond nil checks: no spans, no probes, no extra
	// simulation events, byte-identical metric columns.
	Observe *Observe `json:"observe,omitempty"`
}

// Observe configures the observability plane: RPC lifecycle tracing,
// streaming latency histograms and periodic time-series probes. Each
// instrument is off unless its flag is set.
type Observe struct {
	// Trace records sim-time lifecycle spans at every hop — client RPC
	// issue to completion, nfsd service with queueing delay, gather-batch
	// commits, NVRAM drains, platter transfers — for export as Chrome
	// trace_event JSON (nfsbench -trace out.json; load in chrome://tracing
	// or Perfetto).
	Trace bool `json:"trace,omitempty"`
	// TraceMaxEvents caps the in-memory span buffer (default 200000);
	// events past the cap are counted as dropped, never grown.
	TraceMaxEvents int `json:"trace_max_events,omitempty"`
	// Probes samples gauge probes — nfsd queue depth, buffer-cache
	// occupancy, NVRAM dirty ratio, disk utilization, outstanding RPCs —
	// on the simulated clock, for CSV export (nfsbench -probes out.csv).
	// With Trace also set the samples additionally appear as counter
	// tracks in the trace file.
	Probes bool `json:"probes,omitempty"`
	// SampleEvery is the probe sampling period (default 100ms simulated).
	SampleEvery sim.Duration `json:"sample_every_ns,omitempty"`
	// Histograms streams every measured LADDIS operation latency into
	// fixed-bucket log-scale histograms (constant memory), adding
	// p50/p90/p99/p999 columns and a per-op quantile table to results.
	Histograms bool `json:"histograms,omitempty"`
}

// Topology declares the hardware: media, client groups and server shards.
type Topology struct {
	// Net selects the shared LAN: "ethernet" or "fddi". When Media is
	// set, Net must be empty — the media list carries the medium kinds.
	Net string `json:"net,omitempty"`
	// Media names the network segments. One segment behaves exactly like
	// Net; with several, every non-root segment declares an Uplink and a
	// dedicated store-and-forward bridge joins it to its parent, forming
	// a tree rooted at the single segment without an uplink. Client
	// groups and server shards are placed on segments by name (default:
	// the root); cross-segment RPC traffic is forwarded through the
	// bridges, paying per-hop queueing and serialization in sim time.
	Media []Medium `json:"media,omitempty"`
	// CPUScale divides every server CPU cost (the paper's FDDI tables
	// ran on a ~1.8x faster DEC 3800). 0 means 1.0.
	CPUScale float64 `json:"cpu_scale,omitempty"`
	// Clients is the client population, as one or more homogeneous
	// groups. Heterogeneous groups require the cluster assembly.
	Clients []ClientGroup `json:"clients"`
	// Servers is the server-shard population.
	Servers Servers `json:"servers"`
	// Assembly pins the testbed builder: "rig" (single-server, the
	// paper's original testbed), "cluster" (crashable sharded nodes), or
	// "" to let the engine choose. The two assemblies boot differently
	// (the cluster flushes a mountable image at t=0 and names its server
	// "server1", not "server"), so recorded baselines pin theirs.
	Assembly string `json:"assembly,omitempty"`
}

// Medium is one named network segment of a (possibly bridged) topology.
type Medium struct {
	Name string `json:"name"`
	// Net is the segment's medium kind: "ethernet" or "fddi".
	Net string `json:"net"`
	// Uplink names the parent segment this one bridges into. Exactly one
	// segment — the root — leaves it empty; every other segment must
	// name a declared segment, and the graph must be a tree.
	Uplink string `json:"uplink,omitempty"`
	// BridgeLatency is the uplink bridge's per-datagram store-and-forward
	// processing time (default 50µs). Only meaningful with Uplink.
	BridgeLatency sim.Duration `json:"bridge_latency_ns,omitempty"`
	// BridgeQueue bounds each uplink-bridge port's output FIFO in
	// datagrams — the drop budget (default 64). Only meaningful with
	// Uplink.
	BridgeQueue int `json:"bridge_queue,omitempty"`
}

// ClientGroup is one homogeneous set of client hosts.
type ClientGroup struct {
	// Count is the number of hosts in the group.
	Count int `json:"count"`
	// Biods per client (0 = fully synchronous writes).
	Biods int `json:"biods,omitempty"`
	// MaxRetries overrides the RPC attempt bound (0 keeps the client
	// default of 8); crash scenarios raise it to ride out outages.
	MaxRetries int `json:"max_retries,omitempty"`
	// Segment places the group's hosts on a named media segment
	// (default: the root segment). Requires topology.media.
	Segment string `json:"segment,omitempty"`
}

// Servers declares the server shards. Count homogeneous nodes by
// default; Nodes deviates individual shards.
type Servers struct {
	// Count is the shard count (each shard exports one filesystem).
	Count int `json:"count"`
	// Nfsds is the daemon pool size per server (default 8).
	Nfsds int `json:"nfsds,omitempty"`
	// StripeDisks is the spindle count per server (default 1).
	StripeDisks int `json:"stripe_disks,omitempty"`
	// Presto interposes an NVRAM board in front of each disk stack.
	Presto bool `json:"presto,omitempty"`
	// Gathering enables the write gathering engine.
	Gathering bool `json:"gathering,omitempty"`
	// GatherOverride replaces the default engine policy (ablations).
	GatherOverride *core.Config `json:"gather_override,omitempty"`
	// Inodes sizes each shard's inode table (default 512).
	Inodes int `json:"inodes,omitempty"`
	// RecordReplies keeps per-server WRITE reply logs for crash audits.
	RecordReplies bool `json:"record_replies,omitempty"`
	// Segment places every shard on a named media segment (default: the
	// root segment). Requires topology.media; node overrides deviate
	// individual shards.
	Segment string `json:"segment,omitempty"`
	// Nodes optionally deviates individual shards (index-aligned; nil
	// fields inherit). Per-node deviations require the cluster assembly.
	Nodes []NodeOverride `json:"nodes,omitempty"`
}

// NodeOverride is one shard's deviation from the homogeneous settings.
type NodeOverride struct {
	Presto      *bool   `json:"presto,omitempty"`
	StripeDisks *int    `json:"stripe_disks,omitempty"`
	Nfsds       *int    `json:"nfsds,omitempty"`
	Inodes      *int    `json:"inodes,omitempty"`
	Segment     *string `json:"segment,omitempty"`
}

// Workload kinds.
const (
	// KindCopy is the paper's case study: one client sequentially writes
	// a file and the transfer is the measured interval (Tables 1-6).
	KindCopy = "copy"
	// KindLADDIS is the SPEC SFS 1.0 mixed load: per-client open-loop
	// generators over a pre-created working set (Figures 2-3, scale).
	KindLADDIS = "laddis"
	// KindStream is one sequential write stream per client, measured
	// end-to-end including outages (the crash/recovery workload).
	KindStream = "stream"
	// KindTrace is the Figure 1 timeline: a traced sequential transfer
	// with a rendered event window instead of interval metrics.
	KindTrace = "trace"
	// KindOpenload is the open-loop arrival workload: seed-driven
	// Poisson/bursty/fixed arrival processes emit operations at a target
	// offered ops/s regardless of completions, so the server can be
	// driven past saturation (the capacity-vs-offered-load curves).
	KindOpenload = "openload"
)

// Workload declares the offered load. Exactly the variant matching Kind
// must be set (or left nil to accept that kind's defaults).
type Workload struct {
	Kind     string            `json:"kind"`
	Copy     *CopyWorkload     `json:"copy,omitempty"`
	LADDIS   *LADDISWorkload   `json:"laddis,omitempty"`
	Stream   *StreamWorkload   `json:"stream,omitempty"`
	Trace    *TraceWorkload    `json:"trace,omitempty"`
	Openload *OpenloadWorkload `json:"openload,omitempty"`
}

// CopyWorkload is one sequential file copy by client 1.
type CopyWorkload struct {
	// FileMB is the transfer size (the paper used 10).
	FileMB int `json:"file_mb"`
}

// LADDISWorkload is the SPEC SFS 1.0-style mixed load.
type LADDISWorkload struct {
	// Files and FileBlocks size each client's pre-created working set.
	Files      int `json:"files"`
	FileBlocks int `json:"file_blocks"`
	// Procs is generator processes per client.
	Procs int `json:"procs"`
	// OfferedOpsPerSec is the open-loop request rate: aggregate across
	// all clients, or per client when OfferedIsPerClient is set (the
	// scale sweeps hold per-client load constant while clients multiply).
	OfferedOpsPerSec   float64 `json:"offered_ops_per_sec"`
	OfferedIsPerClient bool    `json:"offered_is_per_client,omitempty"`
	// Measure bounds the measured phase (nanoseconds).
	Measure sim.Duration `json:"measure_ns"`
	// Warmup operations are excluded from latency statistics.
	Warmup int `json:"warmup,omitempty"`
	// Seed is the generator seed base (generator i uses Seed+i). It is
	// distinct from the cell seed, which drives the simulation kernel.
	Seed int64 `json:"seed"`
}

// StreamWorkload is one sequential write stream per client.
type StreamWorkload struct {
	// FileMB is the per-client stream size.
	FileMB int `json:"file_mb"`
	// Shard places client i's stream on shard i mod servers instead of
	// everyone writing to shard 0.
	Shard bool `json:"shard,omitempty"`
}

// TraceWorkload is the Figure 1 timeline scenario.
type TraceWorkload struct {
	// FileKB is the transfer size.
	FileKB int `json:"file_kb"`
	// WindowAfterKB opens the rendered window once the transfer passes
	// this offset (the paper renders >100K into the file; default 100).
	WindowAfterKB int `json:"window_after_kb,omitempty"`
	// Window is the rendered window length (default 60ms).
	Window sim.Duration `json:"window_ns,omitempty"`
	// Bound caps the simulation (default 60s).
	Bound sim.Duration `json:"bound_ns,omitempty"`
}

// Arrival process kinds for OpenloadWorkload.Arrival.
const (
	// ArrivalFixed emits operations on a strict fixed-rate clock.
	ArrivalFixed = "fixed"
	// ArrivalPoisson draws exponential inter-arrival gaps (seed-driven,
	// deterministic) with mean 1/rate.
	ArrivalPoisson = "poisson"
	// ArrivalBursty is an on/off MMPP-style process: exponential on/off
	// dwell times; during "on" periods arrivals run hot enough that the
	// long-run average still meets the target rate.
	ArrivalBursty = "bursty"
)

// Population kinds for OpenloadWorkload.Population.
const (
	// PopFlat picks operation targets uniformly over the shared file set.
	PopFlat = "flat"
	// PopZipf skews picks toward a hot set with Zipf exponent ZipfS.
	PopZipf = "zipf"
)

// Mix kinds for OpenloadWorkload.Mix.
const (
	// MixLADDIS is the SPEC SFS 1.0 op mix (34% lookup, 22% read, ...).
	MixLADDIS = "laddis"
	// MixMetadata is a metadata-heavy mix dominated by
	// lookup/getattr/create/remove.
	MixMetadata = "metadata"
)

// OpenloadWorkload is the open-loop arrival workload: arrivals are
// emitted at TargetOps regardless of completions. Each arrival is
// admitted into a bounded per-client backlog queue drained by Window
// worker processes (the outstanding-RPC admission window); when the
// backlog is full the arrival is shed, and dequeued arrivals older than
// Deadline expire without being issued. Latency is measured from the
// arrival instant (queue wait + service), so overload shows up honestly
// as queue growth, shed arrivals and retransmission storms instead of a
// silently reduced offered rate.
type OpenloadWorkload struct {
	// Arrival selects the arrival process: "fixed" (default), "poisson"
	// or "bursty".
	Arrival string `json:"arrival,omitempty"`
	// TargetOps is the aggregate offered rate in ops/s, split evenly
	// across clients. Cells override it via offered_load. Must be > 0
	// (except for replay, which carries its own timeline).
	TargetOps float64 `json:"target_ops,omitempty"`
	// Mix selects the op mix: "laddis" (default) or "metadata".
	Mix string `json:"mix,omitempty"`
	// Population selects target-file skew over the shared per-cell file
	// set: "flat" (default) or "zipf".
	Population string `json:"population,omitempty"`
	// ZipfS is the Zipf exponent for Population "zipf" (default 1.1).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Files and FileBlocks size the shared population, built once per
	// cell by client 0 and shared by every generator (defaults 64 files
	// of 4 8K blocks).
	Files      int `json:"files,omitempty"`
	FileBlocks int `json:"file_blocks,omitempty"`
	// Window is the admission window: the maximum operations in flight
	// per client (default 8).
	Window int `json:"window,omitempty"`
	// QueueCap bounds the per-client arrival backlog; arrivals past it
	// are shed (default 4x Window).
	QueueCap int `json:"queue_cap,omitempty"`
	// Deadline expires backlogged arrivals at dequeue time: an arrival
	// that waited longer than this is counted expired and never issued
	// (0 = never expire).
	Deadline sim.Duration `json:"deadline_ns,omitempty"`
	// BurstOn/BurstOff are the mean on/off dwell times for the bursty
	// arrival process (defaults 200ms each).
	BurstOn  sim.Duration `json:"burst_on_ns,omitempty"`
	BurstOff sim.Duration `json:"burst_off_ns,omitempty"`
	// Measure bounds the measured phase (nanoseconds).
	Measure sim.Duration `json:"measure_ns"`
	// Seed is the generator seed base (client i draws from Seed+i),
	// distinct from the cell seed driving the simulation kernel.
	Seed int64 `json:"seed"`
	// Replay substitutes a captured op timeline for the synthetic
	// arrival process: the recorded ops replay open-loop at recorded
	// (or speed-scaled) instants through the same admission window.
	// Exclusive with Arrival/Mix/Population/TargetOps.
	Replay *ReplayWorkload `json:"replay,omitempty"`
}

// ReplayWorkload points at a captured op timeline (cmd/nfstrace
// -capture, trace.SaveOps format) to replay open-loop.
type ReplayWorkload struct {
	// File is the capture path (trace.OpTrace JSON).
	File string `json:"file"`
	// Speed scales the replay clock: 2 replays twice as fast as
	// recorded, 0.5 half speed (default 1).
	Speed float64 `json:"speed,omitempty"`
}

// Fault event kinds — the tags FaultEvent.Kind takes. The vocabulary is
// shared with the engine layer (internal/fault), where each tag names a
// pluggable fault.Kind implementation.
const (
	FaultServerCrash    = fault.KindServerCrash
	FaultClientReboot   = fault.KindClientReboot
	FaultBiodLoss       = fault.KindBiodLoss
	FaultShardFailover  = fault.KindShardFailover
	FaultLinkOutage     = fault.KindLinkOutage
	FaultDiskReadError  = fault.KindDiskReadError
	FaultDiskDegraded   = fault.KindDiskDegraded
	FaultDiskTornWrite  = fault.KindDiskTornWrite
	FaultNVRAMLyingSync = fault.KindNVRAMLyingSync
)

// Faults is the deterministic fault schedule: typed events plus the
// legacy crash-train list.
type Faults struct {
	// Crashes are per-node server crash trains — the original fault
	// shape, kept first-class in the schema so every recorded spec and
	// registry entry round-trips byte-identically. Each train is adapted
	// onto a server-crash event ahead of the typed Events below, in list
	// order, so a legacy spec schedules exactly what it always did.
	Crashes []CrashTrain `json:"crashes,omitempty"`
	// Events is the general form: a list of tagged fault events, each
	// validated by kind and scheduled in list order after the legacy
	// trains. See FaultEvent.
	Events []FaultEvent `json:"events,omitempty"`
	// CheckDurability journals every client-acked write and, after the
	// run, reads each range back through the recovered shards: acked
	// bytes that did not survive are reported as LostBytes. Writes a
	// client buffered but no server ever acked are tracked separately —
	// a client crash may legitimately lose those.
	CheckDurability bool `json:"check_durability,omitempty"`
}

// CrashTrain schedules Count crash/reboot cycles on one server shard:
// the first crash at At (simulated time), repeating every Period, each
// with the given Outage before the reboot starts.
type CrashTrain struct {
	Node   int          `json:"node"`
	At     sim.Duration `json:"at_ns"`
	Period sim.Duration `json:"period_ns,omitempty"`
	Outage sim.Duration `json:"outage_ns"`
	Count  int          `json:"count"`
}

// FaultEvent is one tagged fault: Kind selects the failure mode and
// exactly the matching variant field must be set (strict decoding — a
// kind/variant mismatch is a validation error, an unknown kind likewise).
type FaultEvent struct {
	Kind string `json:"kind"`
	// ServerCrash matches kind "server-crash".
	ServerCrash *ServerCrashFault `json:"server_crash,omitempty"`
	// ClientReboot matches kind "client-reboot".
	ClientReboot *ClientRebootFault `json:"client_reboot,omitempty"`
	// BiodLoss matches kind "biod-loss".
	BiodLoss *BiodLossFault `json:"biod_loss,omitempty"`
	// ShardFailover matches kind "shard-failover".
	ShardFailover *ShardFailoverFault `json:"shard_failover,omitempty"`
	// LinkOutage matches kind "link-outage".
	LinkOutage *LinkOutageFault `json:"link_outage,omitempty"`
	// DiskReadError matches kind "disk-read-error".
	DiskReadError *DiskReadErrorFault `json:"disk_read_error,omitempty"`
	// DiskDegraded matches kind "disk-degraded".
	DiskDegraded *DiskDegradedFault `json:"disk_degraded,omitempty"`
	// DiskTornWrite matches kind "disk-torn-write".
	DiskTornWrite *DiskTornWriteFault `json:"disk_torn_write,omitempty"`
	// NVRAMLyingSync matches kind "nvram-lying-sync".
	NVRAMLyingSync *NVRAMLyingSyncFault `json:"nvram_lying_sync,omitempty"`
}

// ServerCrashFault is CrashTrain as a typed event: Count crash/reboot
// cycles on server shard Node.
type ServerCrashFault struct {
	Node   int          `json:"node"`
	At     sim.Duration `json:"at_ns"`
	Period sim.Duration `json:"period_ns,omitempty"`
	Outage sim.Duration `json:"outage_ns"`
	Count  int          `json:"count"`
}

// ClientRebootFault power-cycles client host Client (0-based index into
// the topology's client population) at At: dirty write-behind and pending
// biod retries are discarded with host memory, and the host boots back
// after Outage with fresh daemons. Applications do not restart — an
// interrupted stream stays interrupted.
type ClientRebootFault struct {
	Client int          `json:"client"`
	At     sim.Duration `json:"at_ns"`
	Outage sim.Duration `json:"outage_ns"`
}

// BiodLossFault kills Lose of one client's biod daemons at At; the pool
// stays shrunk for the rest of the run.
type BiodLossFault struct {
	Client int          `json:"client"`
	At     sim.Duration `json:"at_ns"`
	Lose   int          `json:"lose"`
}

// ShardFailoverFault kills server shard Node at At and, after the
// Takeover delay, has surviving shard To adopt its disks under a stable
// FSID: existing file handles stay valid and clients reroute to the
// adopter. The source shard never reboots.
type ShardFailoverFault struct {
	Node     int          `json:"node"`
	To       int          `json:"to"`
	At       sim.Duration `json:"at_ns"`
	Takeover sim.Duration `json:"takeover_ns"`
}

// LinkOutageFault severs a network attachment for Count timed windows
// of Outage, starting at At and spaced every Period. Exactly one of
// Node (server shard), Client (client host) and Segment (a bridged
// segment's uplink port — partitioning the whole segment from the rest
// of the fabric) selects the target. Segment targets require a
// multi-segment topology.media and must name a non-root segment.
type LinkOutageFault struct {
	Node    *int         `json:"node,omitempty"`
	Client  *int         `json:"client,omitempty"`
	Segment *string      `json:"segment,omitempty"`
	At      sim.Duration `json:"at_ns"`
	Period  sim.Duration `json:"period_ns,omitempty"`
	Outage  sim.Duration `json:"outage_ns"`
	Count   int          `json:"count"`
}

// DiskReadErrorFault arms a media read error on server shard Node's
// spindle Disk (-1 targets every member of the shard's stripe): reads
// overlapping platter blocks [BlockFrom, BlockTo) fail, starting
// AfterOps overlapping reads after At, for Times occurrences (0 means
// one — the one-shot grown defect). BlockTo 0 means the end of the disk.
// The stored bytes are intact; only transfers fail, and the server's
// error path surfaces them as I/O-error NFS replies.
type DiskReadErrorFault struct {
	Node      int          `json:"node"`
	Disk      int          `json:"disk,omitempty"`
	At        sim.Duration `json:"at_ns"`
	BlockFrom int64        `json:"block_from,omitempty"`
	BlockTo   int64        `json:"block_to,omitempty"`
	AfterOps  int          `json:"after_ops,omitempty"`
	Times     int          `json:"times,omitempty"`
}

// DiskDegradedFault multiplies shard Node's spindle Disk service time by
// Factor (> 1) for the window [At, At+Duration) — a drive slow but
// correct. Windows on the same spindle must not overlap.
type DiskDegradedFault struct {
	Node     int          `json:"node"`
	Disk     int          `json:"disk,omitempty"`
	At       sim.Duration `json:"at_ns"`
	Duration sim.Duration `json:"duration_ns"`
	Factor   float64      `json:"factor"`
}

// DiskTornWriteFault arms one torn multi-block write on shard Node's
// spindle Disk at At: the next clustered write a power event interrupts
// persists only a prefix of its blocks. Pair it with a server-crash
// event — without a crash the armed tear never manifests.
type DiskTornWriteFault struct {
	Node int          `json:"node"`
	Disk int          `json:"disk,omitempty"`
	At   sim.Duration `json:"at_ns"`
}

// NVRAMLyingSyncFault corrupts shard Node's NVRAM board at At: it keeps
// acknowledging stable storage, but its dirty map evaporates at the next
// power event instead of replaying. Requires the shard to run Presto.
// The durability checker reports the resulting loss as expected — the
// scenario exists to prove the audit catches a lying board.
type NVRAMLyingSyncFault struct {
	Node int          `json:"node"`
	At   sim.Duration `json:"at_ns"`
}

// Cell is one sweep point: the base spec with these overrides applied.
// Nil fields inherit the base value.
type Cell struct {
	// Label names the cell in results (auto-generated when empty).
	Label string `json:"label,omitempty"`
	// Seed overrides the simulation seed for this cell.
	Seed *int64 `json:"seed,omitempty"`
	// Biods overrides every client group's biod count.
	Biods *int `json:"biods,omitempty"`
	// Clients overrides the first client group's host count.
	Clients *int `json:"clients,omitempty"`
	// Servers overrides the shard count.
	Servers *int `json:"servers,omitempty"`
	// Gathering and Presto override the server build.
	Gathering *bool `json:"gathering,omitempty"`
	Presto    *bool `json:"presto,omitempty"`
	// OfferedOpsPerSec overrides the LADDIS offered load.
	OfferedOpsPerSec *float64 `json:"offered_ops_per_sec,omitempty"`
	// OfferedLoad overrides the openload target rate (aggregate ops/s) —
	// the sweep axis behind the capacity-vs-offered-load curves.
	OfferedLoad *float64 `json:"offered_load,omitempty"`
	// FileMB overrides the copy/stream transfer size.
	FileMB *int `json:"file_mb,omitempty"`
	// Segments keeps only the first N non-root media segments (in
	// declaration order) and drops client groups placed on the removed
	// ones — the segment-count sweep axis for bridged topologies.
	Segments *int `json:"segments,omitempty"`
}
