package scenario

import (
	"encoding/json"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/block"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// laddisSweepSpec is a small multi-cell LADDIS sweep (the figure2 load
// curve, trimmed): the single-server rig assembly under the parallel
// engine.
func laddisSweepSpec(t *testing.T) Spec {
	t.Helper()
	spec, ok := Lookup("figure2")
	if !ok {
		t.Fatal("figure2 not registered")
	}
	if len(spec.Cells) > 4 {
		spec.Cells = spec.Cells[:4]
	}
	l := *spec.Workload.LADDIS
	l.Measure = 1 * sim.Second
	spec.Workload.LADDIS = &l
	return spec
}

// faultedClusterSpec is a durability-checked storage-fault sweep: the
// cluster assembly, crash recovery and the leak audit under the
// parallel engine.
func faultedClusterSpec(t *testing.T) Spec {
	t.Helper()
	spec, ok := Lookup("mediastorm")
	if !ok {
		t.Fatal("mediastorm not registered")
	}
	return shrink(spec)
}

// TestParallelRunByteIdentical is the parallel engine's core contract:
// the same spec run sequentially (workers=1) and across a pool
// (workers=4) yields identical output — Render bytes, the full
// serialized result, and every metric column — for both assemblies.
func TestParallelRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweeps in -short mode")
	}
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"laddis-sweep", laddisSweepSpec(t)},
		{"faulted-cluster", faultedClusterSpec(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := RunWorkers(tc.spec, 1)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			par, err := RunWorkers(tc.spec, 4)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if a, b := seq.Render(), par.Render(); a != b {
				t.Errorf("Render differs between workers=1 and workers=4:\n--- sequential\n%s\n--- parallel\n%s", a, b)
			}
			aj, err := json.Marshal(seq)
			if err != nil {
				t.Fatal(err)
			}
			bj, err := json.Marshal(par)
			if err != nil {
				t.Fatal(err)
			}
			if string(aj) != string(bj) {
				t.Errorf("serialized results differ between workers=1 and workers=4")
			}
			for i := range seq.Cells {
				if !reflect.DeepEqual(seq.Cells[i].Metrics, par.Cells[i].Metrics) {
					t.Errorf("cell %s: metric columns differ:\n%+v\n%+v",
						seq.Cells[i].Label, seq.Cells[i].Metrics, par.Cells[i].Metrics)
				}
			}
		})
	}
}

// TestParallelFuzzMatchesSequential plants the known remount bug and
// runs the same 200-run campaign at workers=1 and workers=4: the
// verdict — failing run index, class, detail, shrunk spec, shrink-run
// count — must match byte for byte. Lowest-failing-index selection plus
// per-run (Seed, i) generation makes the campaign width invisible.
func TestParallelFuzzMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaigns in -short mode")
	}
	ufs.DebugSkipIndirectClaim = true
	defer func() { ufs.DebugSkipIndirectClaim = false }()

	seq := Fuzz(FuzzConfig{Runs: 200, Seed: 6, Workers: 1})
	par := Fuzz(FuzzConfig{Runs: 200, Seed: 6, Workers: 4})
	switch {
	case seq == nil || par == nil:
		t.Fatalf("planted bug missed: sequential=%v parallel=%v", seq, par)
	case seq.String() != par.String():
		t.Fatalf("campaign verdict differs between workers=1 and workers=4:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
	if seq.Run != par.Run {
		t.Fatalf("failure seed differs: run %d vs %d", seq.Run, par.Run)
	}
}

// TestCellsChargePrivateLedger is the per-sim accounting regression
// test: a scenario run must not move the process-global block counters
// at all — every one of its pools charges the cell's own ledger, which
// is what makes the leak audit exact.
func TestCellsChargePrivateLedger(t *testing.T) {
	live0, refs0 := block.Live(), block.TotalRefs()
	res := MustRun(faultedClusterSpec(t))
	for _, c := range res.Cells {
		if c.Durability == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if c.Durability.UnaccountedRefs != 0 {
			t.Errorf("%s: %d unaccounted refs", c.Label, c.Durability.UnaccountedRefs)
		}
	}
	if l, r := block.Live(), block.TotalRefs(); l != live0 || r != refs0 {
		t.Errorf("scenario run moved the global ledger: live %d->%d, refs %d->%d",
			live0, l, refs0, r)
	}
}

// TestLeakAuditImmuneToGlobalNoise reproduces the latent contamination
// the per-cell ledger fixes: the old audit diffed global counters
// against a baseline, so any concurrent pool activity could fake or
// mask a leak. Here a background goroutine churns (and deliberately
// holds) global-ledger buffers for the whole run, and every cell's
// audit must still read exactly zero.
func TestLeakAuditImmuneToGlobalNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted sweep in -short mode")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := block.NewPool()
		var held []*block.Buf
		for {
			select {
			case <-stop:
				for _, b := range held {
					b.Release()
				}
				return
			default:
			}
			held = append(held, p.Get())
			if len(held) > 64 {
				held[0].Release()
				held = held[1:]
			}
			runtime.Gosched()
		}
	}()
	res, err := RunWorkers(faultedClusterSpec(t), 4)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Durability == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if c.Durability.UnaccountedRefs != 0 {
			t.Errorf("%s: global-ledger noise contaminated the audit: %d unaccounted refs",
				c.Label, c.Durability.UnaccountedRefs)
		}
	}
}
