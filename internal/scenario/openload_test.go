package scenario

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// kneeTestSpec is a small open-loop sweep bracketing the knee of a
// 2-client, 8-nfsd, 2-disk FDDI rig (measured capacity ~400 ops/s): one
// cell well under it and two cells at 2x and 4x of it.
func kneeTestSpec() Spec {
	return OpenloadSweep(
		OpenloadRig("knee-test", "overload honesty rig", false,
			2, 8, 2, ArrivalPoisson, PopZipf, MixLADDIS, 3*sim.Second, 5151),
		[]float64{100, 800, 1600})
}

// TestOpenloadOverloadHonesty is the open-loop subsystem's core
// regression: past the knee, achieved throughput must plateau (not track
// offered load), the admission path must shed honestly, and the whole
// accounting must be byte-identical at any worker count.
func TestOpenloadOverloadHonesty(t *testing.T) {
	spec := kneeTestSpec()
	seq, err := RunWorkers(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWorkers(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Cells {
		if !reflect.DeepEqual(seq.Cells[i].Metrics, par.Cells[i].Metrics) {
			t.Errorf("cell %s: -j 1 and -j 4 metrics differ (retransmission storms must be deterministic):\n%+v\n%+v",
				seq.Cells[i].Label, seq.Cells[i].Metrics, par.Cells[i].Metrics)
		}
	}

	cells := map[string]CellResult{}
	for _, c := range seq.Cells {
		cells[c.Label] = c
	}
	under := cells["std-100"]
	if a := under.AchievedOpsPerSec; a < 95 || a > 105 {
		t.Errorf("below the knee achieved %.1f ops/s, want ~100 (open loop must deliver the offered rate)", a)
	}
	if under.ShedArrivals != 0 {
		t.Errorf("below the knee shed %d arrivals", under.ShedArrivals)
	}

	over2, over4 := cells["std-800"], cells["std-1600"]
	for _, c := range []CellResult{over2, over4} {
		if c.AchievedOpsPerSec >= 0.8*c.OfferedOpsPerSec {
			t.Errorf("%s: achieved %.1f tracks offered %.0f past the knee; the loop is not open",
				c.Label, c.AchievedOpsPerSec, c.OfferedOpsPerSec)
		}
		if c.ShedArrivals == 0 {
			t.Errorf("%s: overload shed nothing; admission is not bounded", c.Label)
		}
		if c.PeakQueue != 32 {
			t.Errorf("%s: peak backlog %d, want the 32-slot cap", c.Label, c.PeakQueue)
		}
	}
	// Doubling an already-saturating load must not move the plateau.
	lo, hi := over2.AchievedOpsPerSec, over4.AchievedOpsPerSec
	if hi < 0.75*lo || hi > 1.25*lo {
		t.Errorf("overload plateau not flat: achieved %.1f at 2x knee vs %.1f at 4x", lo, hi)
	}

	// Honest books: every arrival is completed, shed or expired — none
	// vanish.
	for _, c := range seq.Cells {
		for i, oc := range c.OpenloadClients {
			if oc.Offered != oc.Completed+oc.Shed+oc.Expired {
				t.Errorf("%s client %d: offered %d != completed %d + shed %d + expired %d",
					c.Label, i, oc.Offered, oc.Completed, oc.Shed, oc.Expired)
			}
		}
	}
}

// TestOpenloadQueueProbes turns the probe sampler on over one saturating
// cell and checks the overload is visible live: the ol_queue column
// grows monotonically until the backlog first sheds, and ol_offered and
// ol_shed count monotonically.
func TestOpenloadQueueProbes(t *testing.T) {
	spec := OpenloadRig("knee-probes", "probe plane over overload", false,
		2, 8, 2, ArrivalPoisson, PopZipf, MixLADDIS, 2*sim.Second, 5151)
	spec.Observe = &Observe{Probes: true, SampleEvery: 50 * sim.Millisecond}
	load := 1600.0
	spec.Cells = []Cell{{Label: "over", OfferedLoad: &load}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Cells[0].Series
	if s == nil || s.N() == 0 {
		t.Fatal("no probe series collected")
	}
	col := func(name string) int {
		for i, c := range s.Cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("probe column %q missing (got %v)", name, s.Cols)
		return -1
	}
	qi, oi, si := col("ol_queue"), col("ol_offered"), col("ol_shed")
	firstShed := -1
	for i, row := range s.Rows {
		if row[si] > 0 {
			firstShed = i
			break
		}
	}
	if firstShed < 0 {
		t.Fatal("saturating cell never shed; probes cannot show the knee")
	}
	for i := 1; i <= firstShed; i++ {
		if s.Rows[i][qi] < s.Rows[i-1][qi] {
			t.Errorf("queue depth shrank (%.0f -> %.0f) before first shed at sample %d",
				s.Rows[i-1][qi], s.Rows[i][qi], firstShed)
		}
	}
	for i := 1; i < s.N(); i++ {
		if s.Rows[i][oi] < s.Rows[i-1][oi] || s.Rows[i][si] < s.Rows[i-1][si] {
			t.Errorf("ol_offered/ol_shed not monotone at sample %d", i)
		}
	}
	if last := s.Rows[s.N()-1]; last[oi] == 0 {
		t.Error("ol_offered never counted")
	}
}

// TestOpenloadReplayRoundTrip captures a synthetic op timeline to disk,
// replays it through the open-loop admission path at 1x and 2x speed,
// and checks every record arrives: trace replay is a first-class
// workload, not a special case.
func TestOpenloadReplayRoundTrip(t *testing.T) {
	ops := &trace.OpTrace{Name: "unit"}
	kinds := []string{"lookup", "getattr", "read", "write", "lookup", "getattr", "read", "getattr"}
	for i := 0; i < 400; i++ {
		ops.Ops = append(ops.Ops, trace.OpRecord{
			At:   sim.Duration(i) * 5 * sim.Millisecond,
			Op:   kinds[i%len(kinds)],
			File: i % 10,
			Off:  uint32(i%4) * 8192,
		})
	}
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := trace.SaveOps(path, ops); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadOps(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Ops, ops.Ops) {
		t.Fatal("capture did not round-trip")
	}

	run := func(speed float64) CellResult {
		spec := Spec{
			Name: "replay",
			Seed: 31,
			Topology: Topology{
				Net: "fddi", CPUScale: 1.8,
				Clients: []ClientGroup{{Count: 2}},
				Servers: Servers{Count: 1, Nfsds: 8, Inodes: 2048},
			},
			Workload: Workload{Kind: KindOpenload, Openload: &OpenloadWorkload{
				Replay: &ReplayWorkload{File: path, Speed: speed},
			}},
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("speed %g: %v", speed, err)
		}
		return res.Cells[0]
	}
	c1 := run(0) // default 1x
	if got := c1.AchievedOpsPerSec; got < 190 || got > 210 {
		t.Errorf("1x replay achieved %.1f ops/s, want ~200 (the capture's rate)", got)
	}
	var completed uint64
	for _, oc := range c1.OpenloadClients {
		completed += oc.Completed
		if oc.Shed != 0 || oc.Expired != 0 {
			t.Errorf("light replay shed/expired: %+v", oc)
		}
	}
	if completed != uint64(len(ops.Ops)) {
		t.Errorf("replay completed %d of %d captured ops", completed, len(ops.Ops))
	}
	c2 := run(2)
	if got := c2.AchievedOpsPerSec; got < 380 || got > 420 {
		t.Errorf("2x replay achieved %.1f ops/s, want ~400", got)
	}
}

// TestOpenloadMetadataMixDominatesAttrs runs the metadata-heavy mix and
// checks the op stream is what the spec says: lookup/getattr dominated,
// not the LADDIS read/write balance.
func TestOpenloadMetadataMixDominatesAttrs(t *testing.T) {
	// The metadata mix's creates are sync-metadata-heavy, so this small
	// rig's knee sits far lower than under the LADDIS mix: offer well
	// under it, on a fixed-rate clock so the arrival count is exact.
	spec := OpenloadRig("meta", "metadata-heavy mix", false,
		2, 8, 2, ArrivalFixed, PopFlat, MixMetadata, 2*sim.Second, 99)
	load := 100.0
	spec.Cells = []Cell{{Label: "meta", OfferedLoad: &load}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.AchievedOpsPerSec < 95 {
		t.Fatalf("metadata mix underdelivered: %.1f ops/s", c.AchievedOpsPerSec)
	}
	// The op stream itself must be what the spec named: attr/namespace
	// ops dominate, data ops nearly vanish.
	total, attrs, data := 0, 0, 0
	for _, oc := range c.OpenloadClients {
		for op, n := range oc.PerOp {
			total += n
			switch op {
			case "lookup", "getattr", "create", "remove", "readdir", "setattr", "statfs":
				attrs += n
			case "read", "write":
				data += n
			}
		}
	}
	if total == 0 {
		t.Fatal("no per-op accounting")
	}
	if share := float64(attrs) / float64(total); share < 0.85 {
		t.Errorf("metadata mix attr/namespace share = %.2f, want >= 0.85", share)
	}
	if share := float64(data) / float64(total); share > 0.12 {
		t.Errorf("metadata mix data-op share = %.2f, want <= 0.12", share)
	}
}

// TestOpenloadValidation pins the typed validation errors: closed
// vocabularies name the known kinds, replay exclusivity is enforced, and
// every failure is a *ValidationError with a usable field path.
func TestOpenloadValidation(t *testing.T) {
	base := func() Spec {
		return OpenloadRig("v", "validation", false, 1, 4, 1,
			ArrivalPoisson, PopZipf, MixLADDIS, sim.Second, 1)
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		field   string
		mention string
	}{
		{"no target", func(s *Spec) { s.Workload.Openload.TargetOps = 0 },
			"workload.openload.target_ops", "offered_load"},
		{"bad arrival", func(s *Spec) { o(s).Arrival = "fractal"; o(s).TargetOps = 100 },
			"workload.openload.arrival", `"poisson"`},
		{"bad mix", func(s *Spec) { o(s).Mix = "scientific"; o(s).TargetOps = 100 },
			"workload.openload.mix", `"metadata"`},
		{"bad population", func(s *Spec) { o(s).Population = "normal"; o(s).TargetOps = 100 },
			"workload.openload.population", `"zipf"`},
		{"negative zipf", func(s *Spec) { o(s).ZipfS = -1; o(s).TargetOps = 100 },
			"workload.openload.zipf_s", "negative"},
		{"zipf_s without zipf", func(s *Spec) { o(s).Population = PopFlat; o(s).ZipfS = 1.1; o(s).TargetOps = 100 },
			"workload.openload.zipf_s", `"zipf"`},
		{"no measure", func(s *Spec) { o(s).Measure = 0; o(s).TargetOps = 100 },
			"workload.openload.measure_ns", "positive"},
		{"negative window", func(s *Spec) { o(s).Window = -1; o(s).TargetOps = 100 },
			"workload.openload", "negative"},
		{"replay plus synthetic", func(s *Spec) {
			o(s).TargetOps = 100
			o(s).Replay = &ReplayWorkload{File: "x.json"}
		}, "workload.openload.replay", "must be unset"},
		{"replay missing file", func(s *Spec) {
			*s.Workload.Openload = OpenloadWorkload{Replay: &ReplayWorkload{}}
		}, "workload.openload.replay.file", "capture"},
		{"replay unreadable file", func(s *Spec) {
			*s.Workload.Openload = OpenloadWorkload{Replay: &ReplayWorkload{File: "/nonexistent/cap.json"}}
		}, "workload.openload.replay.file", "nfstrace -capture"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *ValidationError: %v", err, err)
			}
			if ve.Field != tc.field {
				t.Errorf("field = %q, want %q", ve.Field, tc.field)
			}
			if !strings.Contains(err.Error(), tc.mention) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.mention)
			}
		})
	}
}

// o is shorthand for a spec's openload section in the validation table.
func o(s *Spec) *OpenloadWorkload { return s.Workload.Openload }

// TestBridgedSatSmoke runs a scaled-down bridgedsat shape — leaf
// Ethernet client segments open-loop over a bridged FDDI core — and
// checks placement, per-segment accounting and throughput all engage.
func TestBridgedSatSmoke(t *testing.T) {
	spec := OpenloadBridged("bridgedsat-smoke", "scaled-down bridged saturation",
		3, 2, 8, 1, 300, sim.Second, 12)
	spec.Cells = []Cell{BridgedCell(spec.Seed, 3, false)}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.AchievedOpsPerSec <= 0 {
		t.Fatal("bridged open-loop cell achieved nothing")
	}
	if len(c.OpenloadClients) != 6 {
		t.Fatalf("got %d openload clients, want 6", len(c.OpenloadClients))
	}
	if len(c.Segments) != 4 {
		t.Fatalf("got %d segment stats, want core + 3 leaves", len(c.Segments))
	}
	var leafTraffic uint64
	for _, sg := range c.Segments {
		if sg.Name != "core" {
			leafTraffic += sg.Datagrams
		}
	}
	if leafTraffic == 0 {
		t.Error("no datagrams crossed the leaf segments; placement did not engage")
	}
}

// TestFuzzGeneratesOpenloadSpecs pins the fuzzer's open-loop coverage:
// the generator must emit openload workloads across every arrival kind,
// and any fault it schedules on one must land past the 20s setup
// barrier so it hits the measured phase rather than the idle build.
func TestFuzzGeneratesOpenloadSpecs(t *testing.T) {
	arrivals := map[string]int{}
	withEvents := 0
	for i := 0; i < 200; i++ {
		rng := rand.New(rand.NewSource(2_000_003 + int64(i)))
		spec := genSpec(rng, i)
		if spec.Workload.Kind != KindOpenload {
			continue
		}
		arrivals[spec.Workload.Openload.Arrival]++
		if len(spec.Faults.Events) > 0 {
			withEvents++
		}
		for j, ev := range spec.Faults.Events {
			if at := eventAt(ev); at < 20*sim.Second {
				t.Errorf("run %d event %d (%s): at %v, before the 20s setup barrier", i, j, ev.Kind, at)
			}
		}
	}
	for _, kind := range []string{ArrivalFixed, ArrivalPoisson, ArrivalBursty} {
		if arrivals[kind] == 0 {
			t.Errorf("200 generated specs, no openload spec with arrival %q", kind)
		}
	}
	if withEvents == 0 {
		t.Error("200 generated specs, no openload spec carrying fault events")
	}
	t.Logf("fuzz coverage: arrivals %v, %d openload specs with faults", arrivals, withEvents)
}

// eventAt pulls the scheduling instant out of a fault event.
func eventAt(ev FaultEvent) sim.Duration {
	switch ev.Kind {
	case FaultServerCrash:
		return ev.ServerCrash.At
	case FaultClientReboot:
		return ev.ClientReboot.At
	case FaultBiodLoss:
		return ev.BiodLoss.At
	case FaultShardFailover:
		return ev.ShardFailover.At
	case FaultLinkOutage:
		return ev.LinkOutage.At
	case FaultDiskReadError:
		return ev.DiskReadError.At
	case FaultDiskDegraded:
		return ev.DiskDegraded.At
	case FaultDiskTornWrite:
		return ev.DiskTornWrite.At
	case FaultNVRAMLyingSync:
		return ev.NVRAMLyingSync.At
	}
	return 0
}
