package scenario

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// validSpec is a minimal runnable copy spec tests mutate.
func validSpec() Spec {
	return Spec{
		Name: "t",
		Topology: Topology{
			Net:     "fddi",
			Clients: []ClientGroup{{Count: 1}},
			Servers: Servers{Count: 1},
		},
		Workload: Workload{Kind: KindCopy, Copy: &CopyWorkload{FileMB: 1}},
	}
}

func wantInvalid(t *testing.T, s Spec, field string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("spec validated; want error on %s", field)
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %v is not a *ValidationError", err)
	}
	if !strings.HasPrefix(verr.Field, field) {
		t.Fatalf("error on field %q (%s); want %q", verr.Field, verr.Reason, field)
	}
}

func TestValidateAcceptsMinimalSpec(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateZeroClients(t *testing.T) {
	s := validSpec()
	s.Topology.Clients[0].Count = 0
	wantInvalid(t, s, "topology.clients")

	s = validSpec()
	s.Topology.Clients = nil
	wantInvalid(t, s, "topology.clients")
}

func TestValidateUnknownFaultNode(t *testing.T) {
	s := validSpec()
	s.Workload = Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}}
	s.Faults.Crashes = []CrashTrain{{Node: 3, At: sim.Duration(sim.Second), Outage: sim.Millisecond, Count: 1}}
	wantInvalid(t, s, "faults.crashes[0]")
}

func TestValidateOverlappingCrashWindows(t *testing.T) {
	s := validSpec()
	s.Workload = Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}}
	// Two trains on node 0 whose scheduled outage windows collide.
	s.Faults.Crashes = []CrashTrain{
		{Node: 0, At: 100 * sim.Millisecond, Outage: 50 * sim.Millisecond, Count: 1},
		{Node: 0, At: 120 * sim.Millisecond, Outage: 50 * sim.Millisecond, Count: 1},
	}
	wantInvalid(t, s, "faults.crashes")

	// A single train overlapping itself: period shorter than the outage.
	s.Faults.Crashes = []CrashTrain{
		{Node: 0, At: 100 * sim.Millisecond, Period: 20 * sim.Millisecond, Outage: 50 * sim.Millisecond, Count: 2},
	}
	wantInvalid(t, s, "faults.crashes")

	// Disjoint windows on distinct nodes are fine.
	s.Topology.Servers.Count = 2
	s.Faults.Crashes = []CrashTrain{
		{Node: 0, At: 100 * sim.Millisecond, Outage: 50 * sim.Millisecond, Count: 1},
		{Node: 1, At: 120 * sim.Millisecond, Outage: 50 * sim.Millisecond, Count: 1},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("disjoint per-node windows rejected: %v", err)
	}
}

func TestValidateUnknownNet(t *testing.T) {
	s := validSpec()
	s.Topology.Net = "token-ring"
	wantInvalid(t, s, "topology.net")
}

func TestValidateMultipleMediaUnsupported(t *testing.T) {
	s := validSpec()
	s.Topology.Net = ""
	s.Topology.Media = []Medium{{Name: "a", Net: "fddi"}, {Name: "b", Net: "ethernet"}}
	wantInvalid(t, s, "topology.media")

	// A single declared medium stands in for Net.
	s.Topology.Media = s.Topology.Media[:1]
	if err := s.Validate(); err != nil {
		t.Fatalf("single medium rejected: %v", err)
	}
}

func TestValidateRigAssemblyConflicts(t *testing.T) {
	s := validSpec()
	s.Topology.Assembly = AssemblyRig
	s.Topology.Servers.Count = 2
	s.Workload = Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{
		OfferedOpsPerSec: 10, Measure: sim.Second,
	}}
	wantInvalid(t, s, "topology.assembly")
}

func TestValidateWorkloadParameters(t *testing.T) {
	s := validSpec()
	s.Workload = Workload{Kind: "mixed-up"}
	wantInvalid(t, s, "workload.kind")

	s = validSpec()
	s.Workload = Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{OfferedOpsPerSec: 0, Measure: sim.Second}}
	wantInvalid(t, s, "workload.laddis.offered_ops_per_sec")

	s = validSpec()
	s.Workload = Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{OfferedOpsPerSec: 5}}
	wantInvalid(t, s, "workload.laddis.measure_ns")
}

func TestValidateNodeOverrideValues(t *testing.T) {
	bad := -5
	s := validSpec()
	s.Topology.Servers.Nodes = []NodeOverride{{Nfsds: &bad}}
	wantInvalid(t, s, "topology.servers.nodes[0]")

	zero := 0
	s = validSpec()
	s.Topology.Servers.Nodes = []NodeOverride{{StripeDisks: &zero}}
	wantInvalid(t, s, "topology.servers.nodes[0]")
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	spec, _ := Lookup("flapstorm")
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(blob)
	if err != nil {
		t.Fatalf("strict decode rejected a dumped spec: %v", err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatal("strict decode altered the spec")
	}
	typo := strings.Replace(string(blob), `"check_durability"`, `"check_durabilty"`, 1)
	if typo == string(blob) {
		t.Fatal("typo not injected")
	}
	if _, err := Decode([]byte(typo)); err == nil {
		t.Fatal("strict decode accepted a typo'd field name")
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	s := validSpec()
	s.Topology.Clients[0].Count = 0
	if _, err := Run(s); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}

// TestRegistrySpecsValidateAndRoundTrip guards the declarative contract:
// every registered scenario validates, JSON-encodes, decodes back to a
// deeply equal spec, and survives a second encode byte-identically.
func TestRegistrySpecsValidateAndRoundTrip(t *testing.T) {
	entries := Registry()
	if len(entries) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Description == "" {
			t.Errorf("%s: no description", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate registry name %s", e.Name)
		}
		seen[e.Name] = true
		spec := e.Build()
		if spec.Name != e.Name {
			t.Errorf("%s: spec name %q differs from registry key", e.Name, spec.Name)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Errorf("%s: marshal: %v", e.Name, err)
			continue
		}
		var back Spec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Errorf("%s: unmarshal: %v", e.Name, err)
			continue
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%s: spec did not survive a JSON round trip:\n%s", e.Name, blob)
		}
		blob2, err := json.Marshal(back)
		if err != nil || string(blob) != string(blob2) {
			t.Errorf("%s: re-encode differs (err=%v)", e.Name, err)
		}
		if _, ok := Lookup(e.Name); !ok {
			t.Errorf("%s: Lookup missed a registered name", e.Name)
		}
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Error("Lookup invented a scenario")
	}
}

func TestMetricColumnsComplete(t *testing.T) {
	cols := MetricColumns()
	if len(cols) != 15 {
		t.Fatalf("got %d uniform metric columns, want 15", len(cols))
	}
	var m Metrics
	m.Errors = 3
	for _, c := range cols {
		if _, ok := m.Column(c); !ok {
			t.Errorf("column %q not resolvable", c)
		}
	}
	if v, _ := m.Column("errors"); v != 3 {
		t.Errorf("errors column = %v, want 3", v)
	}
	if _, ok := m.Column("bogus"); ok {
		t.Error("unknown column resolved")
	}
}
