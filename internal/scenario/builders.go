package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// The builders below construct the canonical spec shapes the paper's
// experiments use. The experiments adapters and the registry both go
// through them, so the seed formulas and sweep orders recorded in the
// benchmark baselines are defined in exactly one place.

// StandardBiods is the biod sweep of Tables 1-4.
func StandardBiods() []int { return []int{0, 3, 7, 11, 15} }

// StripeBiods is the extended sweep of Tables 5-6.
func StripeBiods() []int { return []int{0, 3, 7, 11, 15, 19, 23} }

func buildTag(gathering bool) string {
	if gathering {
		return "wg"
	}
	return "std"
}

// Copy builds the base spec of a Tables 1-6 configuration: one client
// copying a file to one 8-nfsd server. Cells select biod counts and
// server builds (CopyCell).
func Copy(name, description, net string, presto bool, stripeDisks int, cpuScale float64, fileMB int, gatherOverride *core.Config) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Topology: Topology{
			Net:      net,
			CPUScale: cpuScale,
			Clients:  []ClientGroup{{Count: 1}},
			Servers: Servers{
				Count: 1, Nfsds: 8, StripeDisks: stripeDisks,
				Presto: presto, GatherOverride: gatherOverride,
			},
		},
		Workload: Workload{Kind: KindCopy, Copy: &CopyWorkload{FileMB: fileMB}},
	}
}

// CopyCell is one copy-table cell. The seed formula is the recorded one:
// every (biods, build) pair reruns the same simulation the published
// table cells came from.
func CopyCell(biods int, gathering bool) Cell {
	seed := int64(biods)*131 + 17
	return Cell{
		Label: fmt.Sprintf("%s-b%d", buildTag(gathering), biods),
		Seed:  &seed, Biods: &biods, Gathering: &gathering,
	}
}

// CopySweep appends the full table sweep to a Copy base: every biod
// count without gathering, then every biod count with it (the recorded
// run order).
func CopySweep(spec Spec, biods []int) Spec {
	for _, b := range biods {
		spec.Cells = append(spec.Cells, CopyCell(b, false))
	}
	for _, b := range biods {
		spec.Cells = append(spec.Cells, CopyCell(b, true))
	}
	return spec
}

// LADDISRig builds the base spec of a Figures 2-3 sweep: multi-client
// LADDIS against one FDDI server on the rig assembly. Cells select
// offered loads and server builds (LADDISCell).
func LADDISRig(name, description string, presto bool, clients, procs, nfsds, disks int, measure sim.Duration, seed int64) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []ClientGroup{{Count: clients}}, // LADDIS load processes issue synchronous ops
			Servers: Servers{
				Count: 1, Nfsds: nfsds, StripeDisks: disks, Presto: presto, Inodes: 2048,
			},
		},
		Workload: Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{
			Files: 32, FileBlocks: 8, Procs: procs, Measure: measure, Seed: seed,
		}},
	}
}

// LADDISCell is one offered-load point; the cell seed is the recorded
// seedBase+offered formula.
func LADDISCell(seedBase int64, offered float64, gathering bool) Cell {
	seed := seedBase + int64(offered)
	return Cell{
		Label: fmt.Sprintf("%s-%.0f", buildTag(gathering), offered),
		Seed:  &seed, OfferedOpsPerSec: &offered, Gathering: &gathering,
	}
}

// LADDISSweep appends the figure sweep to a LADDISRig base: for each
// load, the standard build then the gathering build (the recorded order).
func LADDISSweep(spec Spec, loads []float64) Spec {
	for _, load := range loads {
		spec.Cells = append(spec.Cells,
			LADDISCell(spec.Seed, load, false),
			LADDISCell(spec.Seed, load, true))
	}
	return spec
}

// Trace builds the Figure 1 timeline spec: one 4-biod client streaming a
// file to an 8-nfsd FDDI server, with the traffic trace rendered for a
// window opening >100K into the transfer.
func Trace(name, description string, fileKB, biods int, seed int64) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []ClientGroup{{Count: 1, Biods: biods}},
			Servers:  Servers{Count: 1, Nfsds: 8},
		},
		Workload: Workload{Kind: KindTrace, Trace: &TraceWorkload{FileKB: fileKB}},
	}
}

// ScaleBase builds the base spec of a clients × servers LADDIS grid on
// the cluster assembly, holding per-client offered load constant. Cells
// pick grid coordinates and server builds (ScaleCell).
func ScaleBase(name, description string, presto bool, offeredPerClient float64, procs, nfsds, disks, files, fileBlocks int, measure sim.Duration, seed int64) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 1}},
			Servers: Servers{
				Count: 1, Nfsds: nfsds, StripeDisks: disks, Presto: presto, Inodes: 2048,
			},
		},
		Workload: Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{
			Files: files, FileBlocks: fileBlocks, Procs: procs,
			OfferedOpsPerSec: offeredPerClient, OfferedIsPerClient: true,
			Measure: measure, Seed: seed,
		}},
	}
}

// ScaleCell is one grid cell; the seed formula is the recorded
// seedBase + 100·clients + 10·servers.
func ScaleCell(seedBase int64, nclients, nservers int, gathering bool) Cell {
	seed := seedBase + int64(nclients*100+nservers*10)
	return Cell{
		Label: fmt.Sprintf("c%ds%d-%s", nclients, nservers, buildTag(gathering)),
		Seed:  &seed, Clients: &nclients, Servers: &nservers, Gathering: &gathering,
	}
}

// ScaleSweep appends the full grid to a ScaleBase: cell-major, standard
// build before gathering (the recorded order).
func ScaleSweep(spec Spec, clientCounts, serverCounts []int) Spec {
	for _, nc := range clientCounts {
		for _, ns := range serverCounts {
			spec.Cells = append(spec.Cells,
				ScaleCell(spec.Seed, nc, ns, false),
				ScaleCell(spec.Seed, nc, ns, true))
		}
	}
	return spec
}

// Bridged builds the base spec of a multi-segment LADDIS sweep on the
// cluster assembly: one FDDI core segment carrying the server shard, and
// maxSegments Ethernet leaf segments ("lan1".."lanN") each bridged into
// the core and each carrying its own client group. Cells trim the leaf
// count (BridgedCell), so one spec sweeps topology scale from a single
// LAN to the full fan-in.
func Bridged(name, description string, presto bool, maxSegments, clientsPerSegment, procs, nfsds, disks int, offeredPerClient float64, measure sim.Duration, seed int64) Spec {
	media := []Medium{{Name: "core", Net: "fddi"}}
	var groups []ClientGroup
	for i := 1; i <= maxSegments; i++ {
		lan := fmt.Sprintf("lan%d", i)
		media = append(media, Medium{Name: lan, Net: "ethernet", Uplink: "core"})
		groups = append(groups, ClientGroup{Count: clientsPerSegment, Segment: lan})
	}
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Media:    media,
			CPUScale: 1.8,
			Assembly: AssemblyCluster,
			Clients:  groups,
			Servers: Servers{
				Count: 1, Nfsds: nfsds, StripeDisks: disks, Presto: presto, Inodes: 2048,
			},
		},
		Workload: Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{
			Files: 24, FileBlocks: 8, Procs: procs,
			OfferedOpsPerSec: offeredPerClient, OfferedIsPerClient: true,
			Measure: measure, Seed: seed,
		}},
	}
}

// BridgedCell is one segment-count point; the seed formula is the
// recorded seedBase + 1000·segments.
func BridgedCell(seedBase int64, segments int, gathering bool) Cell {
	seed := seedBase + int64(segments*1000)
	return Cell{
		Label: fmt.Sprintf("seg%d-%s", segments, buildTag(gathering)),
		Seed:  &seed, Segments: &segments, Gathering: &gathering,
	}
}

// BridgedSweep appends the segment-count sweep to a Bridged base: for
// each leaf count, the standard build then the gathering build (the
// recorded order).
func BridgedSweep(spec Spec, segmentCounts []int) Spec {
	for _, n := range segmentCounts {
		spec.Cells = append(spec.Cells,
			BridgedCell(spec.Seed, n, false),
			BridgedCell(spec.Seed, n, true))
	}
	return spec
}

// OpenloadRig builds the base spec of an open-loop capacity sweep:
// multi-client arrivals at a spec-fixed aggregate rate against one FDDI
// server on the rig assembly. Cells pick offered loads and server builds
// (OpenloadCell); unlike the LADDIS sweeps the offered rate is honored
// regardless of completions, so cells past the knee measure the overload
// regime instead of silently self-throttling.
func OpenloadRig(name, description string, presto bool, clients, nfsds, disks int, arrival, population, mix string, measure sim.Duration, seed int64) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Net:      "fddi",
			CPUScale: 1.8,
			Clients:  []ClientGroup{{Count: clients}},
			Servers: Servers{
				Count: 1, Nfsds: nfsds, StripeDisks: disks, Presto: presto, Inodes: 2048,
			},
		},
		Workload: Workload{Kind: KindOpenload, Openload: &OpenloadWorkload{
			Arrival: arrival, Population: population, Mix: mix,
			Files: 32, FileBlocks: 8, Measure: measure, Seed: seed,
		}},
	}
}

// OpenloadCell is one offered-load point; the seed formula mirrors the
// LADDIS sweep's recorded seedBase+offered.
func OpenloadCell(seedBase int64, offered float64, gathering bool) Cell {
	seed := seedBase + int64(offered)
	return Cell{
		Label: fmt.Sprintf("%s-%.0f", buildTag(gathering), offered),
		Seed:  &seed, OfferedLoad: &offered, Gathering: &gathering,
	}
}

// OpenloadSweep appends the capacity sweep to an OpenloadRig base: for
// each load, the standard build then the gathering build (the LADDIS
// sweeps' order).
func OpenloadSweep(spec Spec, loads []float64) Spec {
	for _, load := range loads {
		spec.Cells = append(spec.Cells,
			OpenloadCell(spec.Seed, load, false),
			OpenloadCell(spec.Seed, load, true))
	}
	return spec
}

// OpenloadBridged builds the bridged-saturation base: maxSegments
// Ethernet leaf segments ("lan1".."lanN") of clientsPerSegment clients
// each, bridged into one FDDI core carrying the server shard, with the
// whole population offering targetOps aggregate ops/s open-loop. Cells
// trim the leaf count (BridgedCell), holding the aggregate rate constant
// as fan-in grows.
func OpenloadBridged(name, description string, maxSegments, clientsPerSegment, nfsds, disks int, targetOps float64, measure sim.Duration, seed int64) Spec {
	media := []Medium{{Name: "core", Net: "fddi"}}
	var groups []ClientGroup
	for i := 1; i <= maxSegments; i++ {
		lan := fmt.Sprintf("lan%d", i)
		media = append(media, Medium{Name: lan, Net: "ethernet", Uplink: "core"})
		// Setup funnels thousands of simultaneous mkdirs through the
		// bridges; generous retry budgets let that surge drain instead of
		// aborting the run.
		groups = append(groups, ClientGroup{Count: clientsPerSegment, Segment: lan, MaxRetries: 100})
	}
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Media:    media,
			CPUScale: 1.8,
			Assembly: AssemblyCluster,
			Clients:  groups,
			Servers: Servers{
				Count: 1, Nfsds: nfsds, StripeDisks: disks, Inodes: 8192,
			},
		},
		Workload: Workload{Kind: KindOpenload, Openload: &OpenloadWorkload{
			Arrival: ArrivalPoisson, Population: PopZipf, TargetOps: targetOps,
			Files: 64, FileBlocks: 4, Measure: measure, Seed: seed,
		}},
	}
}

// StreamCrash builds the crash/recovery durability spec: clients
// streaming sequential writes through gathering servers that crash on the
// given train, every acked write journaled and verified after recovery.
func StreamCrash(name, description string, presto, gathering bool, clients, fileMB int, at, period, outage sim.Duration, crashes int, seed int64) Spec {
	return Spec{
		Name:        name,
		Description: description,
		Seed:        seed,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: clients, Biods: 4, MaxRetries: 50}},
			Servers:  Servers{Count: 1, Presto: presto, Gathering: gathering},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: fileMB}},
		Faults: Faults{
			CheckDurability: true,
			Crashes: []CrashTrain{
				{Node: 0, At: at, Period: period, Outage: outage, Count: crashes},
			},
		},
	}
}
