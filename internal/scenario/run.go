package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/nvram"
	"repro/internal/openload"
	"repro/internal/rig"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Run validates the spec and executes every cell of its sweep, each on a
// fresh deterministic simulation, returning the uniform result. The
// engine reproduces the paper's historical runners exactly — the rig
// assembly for single-server copy/LADDIS/trace cells, the cluster
// assembly for sharded, faulted or stream cells — so the legacy
// experiments adapters produce byte-identical metric columns through it.
//
// Cells execute across the package worker pool (Workers, default
// GOMAXPROCS); every cell is an independent simulation with its own
// buffer ledger, and results are gathered in cell order, so the result —
// Render bytes included — is byte-identical to the sequential engine
// regardless of worker count. RunWorkers overrides the pool size per
// call; 1 forces the historical in-line sequential path.
func Run(spec Spec) (*Result, error) {
	return runEngine(spec, Workers(), nil)
}

// RunWorkers is Run with an explicit worker count for this call (1 =
// sequential, in-line on the calling goroutine).
func RunWorkers(spec Spec, workers int) (*Result, error) {
	return runEngine(spec, workers, nil)
}

// runEngine resolves every cell up front (deterministic label/seed
// derivation, validation errors before any simulation runs), executes the
// cells, and gathers results in cell order. capture, when non-nil,
// receives each cell's live observer as its hooks are installed (the
// fuzzer's panic-survivable artifact path).
func runEngine(spec Spec, workers int, capture obsCaptureFn) (*Result, error) {
	res := &Result{Name: spec.Name, Spec: spec}
	var rcs []*resolved
	for i, cell := range spec.cells() {
		rc, err := spec.resolve(cell, i)
		if err != nil {
			return nil, err
		}
		rcs = append(rcs, rc)
	}
	crs := make([]CellResult, len(rcs))
	if workers > 1 && len(rcs) > 1 {
		runCellsParallel(rcs, crs, workers, capture)
	} else {
		for i, rc := range rcs {
			crs[i] = runCellTimed(rc, capture)
		}
	}
	for i := range crs {
		crs[i].Label = rcs[i].label
		crs[i].Seed = rcs[i].seed
	}
	res.Cells = crs
	return res, nil
}

// runCellsParallel executes the resolved cells across a pool of workers.
// Cells are handed out in index order and every result lands in its own
// slot, so gathering is order-independent. A cell that panics does not
// take the process down from a worker goroutine: the panic is captured
// and re-raised — lowest cell index first, matching what the sequential
// engine would have surfaced — on the calling goroutine after the pool
// drains, so harnesses that recover (the fuzzer) see the same value.
func runCellsParallel(rcs []*resolved, crs []CellResult, workers int, capture obsCaptureFn) {
	if workers > len(rcs) {
		workers = len(rcs)
	}
	var next atomic.Int64
	var mu sync.Mutex
	panicIdx := -1
	var panicVal any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rcs) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					crs[i] = runCellTimed(rcs[i], capture)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx >= 0 {
		panic(panicVal)
	}
}

// runCellTimed stamps the cell's real (host) execution time — harness
// observability for the parallel engine, never part of rendered or
// serialized output.
func runCellTimed(rc *resolved, capture obsCaptureFn) CellResult {
	t0 := time.Now()
	cr := runCell(rc, capture)
	cr.Wall = time.Since(t0)
	return cr
}

// MustRun is Run for specs known valid (the registry, the adapters).
func MustRun(spec Spec) *Result {
	res, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return res
}

func runCell(rc *resolved, capture obsCaptureFn) CellResult {
	if rc.assembly == AssemblyRig {
		return runRigCell(rc, capture)
	}
	return runClusterCell(rc, capture)
}

func (r *resolved) rigConfig() rig.Config {
	return rig.Config{
		Net:            r.net,
		Segments:       r.segments,
		ServerSegment:  r.servers.Segment,
		ClientSegment:  r.groups[0].Segment,
		Presto:         r.servers.Presto,
		Gathering:      r.servers.Gathering,
		GatherOverride: r.servers.GatherOverride,
		StripeDisks:    r.servers.StripeDisks,
		NumNfsds:       r.servers.Nfsds,
		Clients:        r.groups[0].Count,
		Biods:          r.groups[0].Biods,
		CPUScale:       r.cpuScale,
		Seed:           r.seed,
		RecordReplies:  r.servers.RecordReplies,
		Inodes:         r.servers.Inodes,
	}
}

// offered returns the per-client and aggregate LADDIS request rates.
func (r *resolved) offered(nclients int) (perClient, total float64) {
	if r.laddis.OfferedIsPerClient {
		return r.laddis.OfferedOpsPerSec, r.laddis.OfferedOpsPerSec * float64(nclients)
	}
	return r.laddis.OfferedOpsPerSec / float64(nclients), r.laddis.OfferedOpsPerSec
}

// laddisBarrier is the common measurement-start barrier: setup runs
// before it, every generator starts at it (legacy figure/scale runs used
// the same 20 s instant).
const laddisBarrier = sim.Time(20 * sim.Second)

// aggregateLADDIS folds per-client points into the cell columns:
// throughput-weighted mean latency, worst-client p95.
func aggregateLADDIS(cr *CellResult, results []workload.LADDISResult) {
	var latSum, n float64
	var p95 float64
	for _, res := range results {
		cr.AchievedOpsPerSec += res.AchievedOpsPerSec
		latSum += res.AvgLatencyMs * res.AchievedOpsPerSec
		n += res.AchievedOpsPerSec
		if res.P95LatencyMs > p95 {
			p95 = res.P95LatencyMs
		}
		cr.Errors += res.Errors
	}
	if n > 0 {
		cr.AvgLatencyMs = latSum / n
	}
	cr.P95LatencyMs = p95
	cr.ClientResults = results
}

// runRigCell executes one cell on the single-server rig assembly.
func runRigCell(rc *resolved, capture obsCaptureFn) CellResult {
	cfg := rc.rigConfig()
	// Per-cell buffer ledger: this sim's pools charge their own counters,
	// so concurrent cells never perturb each other's accounting.
	cfg.Acct = block.NewAccounting()
	r := rig.New(cfg)
	ob := newCellObs(rc, capture)
	ob.installRig(r)
	var cr CellResult
	switch rc.kind {
	case KindCopy:
		runRigCopy(rc, r, &cr)
	case KindLADDIS:
		runRigLADDIS(rc, r, &cr)
	case KindTrace:
		runRigTrace(rc, r, &cr)
	case KindOpenload:
		runRigOpenload(rc, r, &cr, ob)
	}
	if eng := r.Server.Engine(); eng != nil {
		cr.Gather = eng.Stats()
		cr.GatherBatch = summarize(eng.BatchHist(), 1)
		cr.GatherCommitMs = summarize(eng.CommitHist(), 1e-3)
	}
	cr.Drops = r.Server.Endpoint().Drops()
	for _, cli := range r.Clients {
		cr.Retransmissions += cli.Retransmissions
		cr.RebootsSeen += cli.RebootsSeen
	}
	collectFabric(&cr, r.Fabric)
	cr.SimTime = sim.Duration(r.Sim.Now())
	ob.finish(&cr)
	return cr
}

func runRigCopy(rc *resolved, r *rig.Rig, cr *CellResult) {
	size := rc.copyW.FileMB * 1024 * 1024
	r.Sim.Spawn("copy", func(p *sim.Proc) {
		// Create outside the measured interval, as the paper measures the
		// transfer.
		cres, err := r.Clients[0].Create(p, r.Server.RootFH(), "copy.dat", 0644)
		if err != nil {
			panic("scenario: create failed: " + err.Error())
		}
		r.MarkInterval()
		start := p.Now()
		if _, err := r.Clients[0].WriteFile(p, cres.File, size); err != nil {
			panic("scenario: copy failed: " + err.Error())
		}
		cr.Elapsed = p.Now().Sub(start)
	})
	r.Sim.Run(0)

	cr.ElapsedSec = cr.Elapsed.Seconds()
	cr.ClientKBps = float64(size) / 1024 / cr.Elapsed.Seconds()
	cr.CPUPercent, cr.DiskKBps, cr.DiskTps = r.IntervalStats()
	cr.CPUMaxPercent = cr.CPUPercent
}

func runRigLADDIS(rc *resolved, r *rig.Rig, cr *CellResult) {
	perClient, total := rc.offered(len(r.Clients))

	gens := make([]*workload.LADDIS, len(r.Clients))
	results := make([]workload.LADDISResult, len(r.Clients))
	finished := 0
	cond := sim.NewCond(r.Sim)
	for i, cli := range r.Clients {
		i, cli := i, cli
		gens[i] = workload.NewLADDIS(cli, r.Server.RootFH(), workload.LADDISConfig{
			Files:            rc.laddis.Files,
			FileBlocks:       rc.laddis.FileBlocks,
			OfferedOpsPerSec: perClient,
			Procs:            rc.laddis.Procs,
			Warmup:           rc.laddis.Warmup,
			Duration:         rc.laddis.Measure,
			Seed:             rc.laddis.Seed + int64(i),
			Histograms:       rc.histograms(),
		})
		r.Sim.Spawn(fmt.Sprintf("laddis-driver-%d", i), func(p *sim.Proc) {
			if err := gens[i].Setup(p); err != nil {
				panic("scenario: laddis setup: " + err.Error())
			}
			// Synchronize measurement start across clients: wait until a
			// common barrier time well past setup.
			if wait := laddisBarrier.Sub(p.Now()); wait > 0 {
				p.Sleep(wait)
			}
			if i == 0 {
				r.MarkInterval()
			}
			results[i] = gens[i].Run(p)
			finished++
			cond.Broadcast()
		})
	}
	r.Sim.Run(0)
	if finished != len(r.Clients) {
		panic("scenario: laddis drivers did not finish")
	}

	cr.OfferedOpsPerSec = total
	aggregateLADDIS(cr, results)
	if rc.histograms() {
		fillQuantiles(cr, results)
	}
	cr.Elapsed = rc.laddis.Measure
	cr.ElapsedSec = cr.Elapsed.Seconds()
	cr.CPUPercent, cr.DiskKBps, cr.DiskTps = r.IntervalStats()
	cr.CPUMaxPercent = cr.CPUPercent
}

func runRigTrace(rc *resolved, r *rig.Rig, cr *CellResult) {
	log := &trace.Log{}
	cli := r.Clients[0]
	cli.OnWriteEvent = func(ev string, off uint32, n int) {
		switch ev {
		case "send":
			log.Add(r.Sim.Now(), "client", "8K Write off=%dK ->", off/1024)
		case "reply":
			log.Add(r.Sim.Now(), "client", "<- Write Reply off=%dK", off/1024)
		}
	}
	for i, d := range r.Disks {
		i, d := i, d
		// The observe plane may already own the hook; chain it so a traced
		// run can carry both the Figure 1 timeline and the span trace.
		prev := d.OnOp
		d.OnOp = func(write bool, blk int64, n int, svc sim.Duration) {
			if prev != nil {
				prev(write, blk, n, svc)
			}
			kind := "read"
			if write {
				kind = "write"
			}
			what := "data"
			if blk < 20 { // inode region of this filesystem
				what = "metadata"
			}
			log.Add(r.Sim.Now(), "disk", "%dK %s to disk (%s) [d%d]", n/1024, kind, what, i)
		}
	}

	// Mark gather commits via the engine's stats transitions: poll cheaply
	// from a watcher process.
	bound := sim.Time(rc.trace.Bound)
	if eng := r.Server.Engine(); eng != nil {
		r.Sim.Spawn("gather-watch", func(p *sim.Proc) {
			last := eng.Stats().Gathers
			for {
				p.Sleep(500 * sim.Microsecond)
				st := eng.Stats()
				if st.Gathers != last {
					log.Add(p.Now(), "server", "Gather commit #%d (batch so far %d writes)",
						st.Gathers, st.GatheredWrites)
					last = st.Gathers
				}
				if p.Now() > bound {
					return
				}
			}
		})
	}

	windowAfter := uint32(rc.trace.WindowAfterKB) * 1024
	var windowStart sim.Time
	r.Sim.Spawn("copy", func(p *sim.Proc) {
		cres, err := r.Clients[0].Create(p, r.Server.RootFH(), "figure1.dat", 0644)
		if err != nil {
			panic("scenario: trace create: " + err.Error())
		}
		// Track when the transfer passes the window offset.
		inner := cli.OnWriteEvent
		cli.OnWriteEvent = func(ev string, off uint32, n int) {
			if windowStart == 0 && ev == "send" && off >= windowAfter {
				windowStart = p.Sim().Now()
			}
			inner(ev, off, n)
		}
		if _, err := cli.WriteFile(p, cres.File, rc.trace.FileKB*1024); err != nil {
			panic("scenario: trace copy: " + err.Error())
		}
	})
	r.Sim.Run(bound)

	mode := "Standard Server"
	if rc.servers.Gathering {
		mode = "Gathering Server"
	}
	title := fmt.Sprintf("Figure 1 (%s): client with %d biods, sequential writer, >%dK into file",
		mode, rc.groups[0].Biods, rc.trace.WindowAfterKB)
	cr.TraceText = log.Render(title, windowStart, windowStart.Add(rc.trace.Window))
	cr.TraceLog = log
	cr.Elapsed = sim.Duration(r.Sim.Now())
	cr.ElapsedSec = cr.Elapsed.Seconds()
}

// runClusterCell executes one cell on the crashable sharded assembly.
func runClusterCell(rc *resolved, capture obsCaptureFn) CellResult {
	// Per-cell buffer ledger: every pool in this cell's assembly charges
	// it, so the leak audit below reads this sim's counters exactly —
	// immune to other cells, tests or goroutines touching the global
	// ledger (the historical audit diffed global counters against a
	// baseline, which concurrent activity could mask or misattribute).
	acct := block.NewAccounting()
	ob := newCellObs(rc, capture)
	ccfg := rc.clusterConfig()
	ccfg.Acct = acct
	if ob != nil {
		// Server-side hooks must follow the server object across reboots
		// and adoptions: the cluster re-announces every (re)built server.
		ccfg.OnServerUp = func(srv *server.Server, pr *nvram.Presto) {
			ob.hookServer(srv, pr)
		}
	}
	c := cluster.New(ccfg)
	ob.installCluster(c)
	var cr CellResult

	// Durability journal first, then the fault schedule, then the
	// workload: hook order fixes same-instant event order, and recorded
	// crash runs hooked in this order. The normalized event list already
	// has the legacy crash trains ahead of the typed events, so a legacy
	// spec arms exactly the s.At sequence it always did.
	var j *fault.Journal
	if rc.faults.CheckDurability {
		j = fault.NewJournal()
		for _, cli := range c.Clients {
			j.Attach(cli)
		}
	}
	var in *fault.Injector
	if len(rc.events) > 0 {
		in = fault.NewInjector(c)
		in.Journal = j
		for _, ev := range rc.events {
			in.Add(buildKind(ev))
		}
		in.ScheduleAll()
	}

	switch rc.kind {
	case KindStream:
		runClusterStream(rc, c, &cr)
	case KindCopy:
		runClusterCopy(rc, c, &cr)
	case KindLADDIS:
		runClusterLADDIS(rc, c, &cr)
	case KindOpenload:
		runClusterOpenload(rc, c, &cr, ob)
	}

	// A scheduled recovery that failed (remount error, adoption error)
	// means the run is not the experiment the spec declared; surfacing it
	// loudly beats reporting plausible-looking metrics from the wrong
	// scenario. Under scheduled storage faults a failed recovery is a
	// legitimate outcome (a persistent media error can defeat the mount
	// retries), so it is reported in the durability record instead.
	var recoveryFailures []string
	if in != nil && len(in.Failures) > 0 {
		if !rc.storageFaults {
			panic(fmt.Sprintf("scenario: fault recovery failed: %v", in.Failures))
		}
		for _, e := range in.Failures {
			recoveryFailures = append(recoveryFailures, e.Error())
		}
		if j != nil {
			// The unrecovered export's acked bytes are unreadable; the
			// scheduled storage fault makes that loss expected, and the
			// audit still counts every byte of it.
			j.NoteLossExpected("scheduled recovery failed under storage faults")
		}
	}

	// The audit phase runs after all workload and reboot activity; it
	// consumes simulated device time but is excluded from the measured
	// interval above. Injection rules the workload never consumed are
	// disarmed first — the audit must read what the platters hold, not
	// trip over a leftover rule.
	var check fault.CheckResult
	if in != nil {
		in.HealAll()
	}
	if j != nil {
		c.Sim.Spawn("verify", func(p *sim.Proc) { check = j.Verify(p, c) })
		c.Sim.Run(0)
	}

	for _, cli := range c.Clients {
		cr.Retransmissions += cli.Retransmissions
		cr.RebootsSeen += cli.RebootsSeen
	}
	if in != nil || j != nil {
		d := &Durability{
			Checked:              j != nil,
			AckedWrites:          check.AckedWrites,
			AckedBytes:           check.AckedBytes,
			LostBytes:            check.LostBytes,
			FirstLoss:            check.FirstLoss,
			BufferedWrites:       check.BufferedWrites,
			DroppedBuffered:      check.DroppedBuffered,
			DroppedBufferedBytes: check.DroppedBufferedBytes,
			UnackedBuffered:      check.UnackedBuffered,
			LossExpected:         check.ExpectedLoss,
			RecoveryFailures:     recoveryFailures,
		}
		if in != nil {
			d.Crashes = in.Crashes
			d.Reboots = in.Reboots
			d.ClientReboots = in.ClientReboots
			d.BiodsLost = in.BiodsLost
			d.Failovers = in.Failovers
			d.LinkOutages = in.LinkOutages
			d.StorageFaults = in.StorageFaults
			d.EventsFired = in.EventsFired
			if len(in.RecoveryTimes) > 0 {
				var sum sim.Duration
				for _, rt := range in.RecoveryTimes {
					sum += rt
				}
				d.MeanRecoveryMs = (sum / sim.Duration(len(in.RecoveryTimes))).Millis()
			}
		}
		for _, n := range c.Nodes {
			d.RecoveredNVRAMBlocks += n.RecoveredBlocks
			d.DroppedNVRAMBlocks += n.DroppedNVRAMBlocks
		}
		// Leak audit: after the quiesce above, the cell's outstanding
		// block references must all be attributable to long-lived stores.
		// The cell's ledger started at zero and nothing else charges it,
		// so the audit is exact — no baseline subtraction.
		d.UnaccountedRefs = acct.TotalRefs() - c.AccountedRefs()
		cr.Durability = d
		cr.Crashes = d.Crashes
		cr.LostBytes = d.LostBytes
	}
	// Gather distributions: merge the current boot's engines (an engine
	// dies with its server on crash, so earlier boots are not included).
	var batch, commit stats.Histogram
	for _, n := range c.Nodes {
		if n.Server == nil {
			continue
		}
		if eng := n.Server.Engine(); eng != nil {
			batch.Merge(eng.BatchHist())
			commit.Merge(eng.CommitHist())
		}
	}
	cr.GatherBatch = summarize(&batch, 1)
	cr.GatherCommitMs = summarize(&commit, 1e-3)
	collectFabric(&cr, c.Fabric)
	cr.SimTime = sim.Duration(c.Sim.Now())
	ob.finish(&cr)
	return cr
}

// collectFabric rolls the bridged fabric's wire and bridge counters into
// the cell: per-segment utilization and traffic in declaration order,
// per-bridge forward/drop/queue totals (ports summed), and the two
// aggregate columns. No-op (all fields stay zero/omitted) without a
// fabric, so single-segment cells keep their historical output bytes.
func collectFabric(cr *CellResult, f *netsim.Fabric) {
	if f == nil {
		return
	}
	for _, name := range f.Names() {
		n := f.Segment(name)
		util := 100 * n.Utilization()
		cr.Segments = append(cr.Segments, SegmentStat{
			Name:          name,
			UtilPct:       util,
			Datagrams:     n.SentDatagrams,
			KBytes:        n.SentBytes / 1024,
			DropsLinkDown: n.DropsLinkDown,
			DropsNoDest:   n.DropsNoDest,
		})
		if util > cr.NetMaxUtilPct {
			cr.NetMaxUtilPct = util
		}
	}
	for _, br := range f.Bridges() {
		bs := BridgeStat{Name: br.Name}
		for _, bp := range br.Ports {
			bs.Forwarded += bp.Forwarded
			bs.DropsQueueFull += bp.DropsQueueFull()
			bs.DropsLinkDown += bp.DropsLinkDown()
			bs.DropsNoRoute += bp.DropsNoRoute
			if q := bp.PeakQueueLen(); q > bs.PeakQueue {
				bs.PeakQueue = q
			}
		}
		cr.BridgeDrops += bs.DropsQueueFull + bs.DropsLinkDown + bs.DropsNoRoute
		cr.Bridges = append(cr.Bridges, bs)
	}
}

// buildKind maps one validated spec event onto its engine implementation.
// The spec and engine layers share the kind vocabulary; this is the only
// place that knows both shapes.
func buildKind(ev FaultEvent) fault.Kind {
	switch ev.Kind {
	case FaultServerCrash:
		f := ev.ServerCrash
		return fault.ServerCrash{
			Node: f.Node, At: sim.Time(f.At), Period: f.Period, Outage: f.Outage, Count: f.Count,
		}
	case FaultClientReboot:
		f := ev.ClientReboot
		return fault.ClientReboot{Client: f.Client, At: sim.Time(f.At), Outage: f.Outage}
	case FaultBiodLoss:
		f := ev.BiodLoss
		return fault.BiodLoss{Client: f.Client, At: sim.Time(f.At), Lose: f.Lose}
	case FaultShardFailover:
		f := ev.ShardFailover
		return fault.ShardFailover{
			Node: f.Node, To: f.To, At: sim.Time(f.At), Takeover: f.Takeover,
		}
	case FaultLinkOutage:
		f := ev.LinkOutage
		k := fault.LinkOutage{
			At: sim.Time(f.At), Period: f.Period, Outage: f.Outage, Count: f.Count,
		}
		switch {
		case f.Client != nil:
			k.TargetClient, k.Index = true, *f.Client
		case f.Segment != nil:
			k.Segment = *f.Segment
		default:
			k.Index = *f.Node
		}
		return k
	case FaultDiskReadError:
		f := ev.DiskReadError
		return fault.DiskReadError{
			Node: f.Node, Disk: f.Disk, At: sim.Time(f.At),
			BlockFrom: f.BlockFrom, BlockTo: f.BlockTo,
			AfterOps: f.AfterOps, Times: f.Times,
		}
	case FaultDiskDegraded:
		f := ev.DiskDegraded
		return fault.DiskDegraded{
			Node: f.Node, Disk: f.Disk, At: sim.Time(f.At),
			Duration: f.Duration, Factor: f.Factor,
		}
	case FaultDiskTornWrite:
		f := ev.DiskTornWrite
		return fault.DiskTornWrite{Node: f.Node, Disk: f.Disk, At: sim.Time(f.At)}
	case FaultNVRAMLyingSync:
		f := ev.NVRAMLyingSync
		return fault.NVRAMLyingSync{Node: f.Node, At: sim.Time(f.At)}
	}
	panic("scenario: unvalidated fault kind " + ev.Kind)
}

func runClusterStream(rc *resolved, c *cluster.Cluster, cr *CellResult) {
	roots := c.Roots()
	size := rc.stream.FileMB << 20
	done := 0
	failed := 0
	var bytesWritten int64
	for i, cli := range c.Clients {
		i, cli := i, cli
		root := roots[0]
		if rc.stream.Shard {
			root = roots[i%len(roots)]
		}
		pr := c.Sim.Spawn(fmt.Sprintf("stream-%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("stream-%d.dat", i)
			cres, err := cli.Create(p, root, name, 0644)
			if err != nil || cres.Status != nfsproto.OK {
				// Under scheduled storage faults an I/O-error reply (or
				// retry exhaustion against an unrecoverable shard) is a
				// legitimate outcome; the stream ends and is counted.
				if rc.storageFaults {
					cr.Errors++
					failed++
					return
				}
				panic(fmt.Sprintf("scenario: stream create: %v %v", err, cres))
			}
			if _, err := cli.WriteFile(p, cres.File, size); err != nil {
				if rc.storageFaults {
					cr.Errors++
					failed++
					return
				}
				panic("scenario: stream: " + err.Error())
			}
			bytesWritten += int64(size)
			done++
		})
		// The stream is part of its client host: a client-reboot fault
		// kills it with the workstation, and it does not restart.
		cli.AdoptApp(pr)
	}
	// elapsed covers the stream phase only: the durability audit also
	// consumes simulated device time and must not dilute the stream rate.
	elapsed := c.Sim.Run(0)
	killed := 0
	for _, cli := range c.Clients {
		killed += cli.AppsKilled()
	}
	if done+failed+killed != len(c.Clients) {
		panic("scenario: streams did not finish")
	}
	cr.Elapsed = sim.Duration(elapsed)
	cr.ElapsedSec = cr.Elapsed.Seconds()
	if cr.ElapsedSec > 0 {
		cr.ClientKBps = float64(bytesWritten) / 1024 / cr.ElapsedSec
	}
}

func runClusterCopy(rc *resolved, c *cluster.Cluster, cr *CellResult) {
	roots := c.Roots()
	size := rc.copyW.FileMB * 1024 * 1024
	c.Sim.Spawn("copy", func(p *sim.Proc) {
		cres, err := c.Clients[0].Create(p, roots[0], "copy.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			panic(fmt.Sprintf("scenario: copy create: %v %v", err, cres))
		}
		c.MarkInterval()
		start := p.Now()
		if _, err := c.Clients[0].WriteFile(p, cres.File, size); err != nil {
			panic("scenario: copy: " + err.Error())
		}
		cr.Elapsed = p.Now().Sub(start)
	})
	c.Sim.Run(0)

	cr.ElapsedSec = cr.Elapsed.Seconds()
	cr.ClientKBps = float64(size) / 1024 / cr.Elapsed.Seconds()
	st := c.IntervalStats()
	cr.CPUPercent = st.CPUMeanPercent
	cr.CPUMaxPercent = st.CPUMaxPercent
	cr.DiskKBps = st.DiskKBps
	cr.DiskTps = st.DiskTps
}

func runRigOpenload(rc *resolved, r *rig.Rig, cr *CellResult, ob *cellObs) {
	runOpenload(r.Sim, r.Clients, []nfsproto.FH{r.Server.RootFH()}, rc, cr, r.MarkInterval, ob)
	cr.CPUPercent, cr.DiskKBps, cr.DiskTps = r.IntervalStats()
	cr.CPUMaxPercent = cr.CPUPercent
}

func runClusterOpenload(rc *resolved, c *cluster.Cluster, cr *CellResult, ob *cellObs) {
	runOpenload(c.Sim, c.Clients, c.Roots(), rc, cr, c.MarkInterval, ob)
	st := c.IntervalStats()
	cr.CPUPercent = st.CPUMeanPercent
	cr.CPUMaxPercent = st.CPUMaxPercent
	cr.DiskKBps = st.DiskKBps
	cr.DiskTps = st.DiskTps
}

// splitReplay deals a captured timeline round-robin across n clients;
// records keep their capture-relative instants, so the aggregate arrival
// pattern on the wire matches the capture regardless of client count.
func splitReplay(tr *trace.OpTrace, n int) []*trace.OpTrace {
	out := make([]*trace.OpTrace, n)
	for i := range out {
		out[i] = &trace.OpTrace{Name: tr.Name}
	}
	for i, rec := range tr.Ops {
		t := out[i%n]
		t.Ops = append(t.Ops, rec)
	}
	return out
}

// runOpenload drives the open-loop generators on either assembly: client
// 0 builds the shared population, every client sets up its scratch
// namespace, all synchronize on the common measurement barrier, and the
// cell aggregates the honest overload accounting — achieved vs offered
// throughput, shed/expired arrivals, peak backlog — plus full latency
// quantiles from the merged arrival-to-completion histograms.
func runOpenload(s *sim.Sim, clis []*client.Client, roots []nfsproto.FH, rc *resolved, cr *CellResult, mark func(), ob *cellObs) {
	w := rc.open
	nclients := len(clis)

	var tr *trace.OpTrace
	var reps []*trace.OpTrace
	speed := 1.0
	if w.Replay != nil {
		var err error
		tr, err = trace.LoadOps(w.Replay.File)
		if err != nil {
			// Validation checked readability; a race against deletion is a
			// harness failure, not a measurable outcome.
			panic("scenario: openload replay: " + err.Error())
		}
		if w.Replay.Speed > 0 {
			speed = w.Replay.Speed
		}
		reps = splitReplay(tr, nclients)
	}

	popFiles := w.Files
	if tr != nil {
		if mf := tr.MaxFile(); mf+1 > popFiles {
			popFiles = mf + 1
		}
	}
	pop, err := openload.NewPopulation(popFiles, w.FileBlocks, w.Population, w.ZipfS, roots)
	if err != nil {
		panic("scenario: openload population: " + err.Error())
	}

	var mix workload.Mix
	if w.Mix == MixMetadata {
		mix = workload.MetadataMix()
	} else {
		mix = workload.LADDISMix()
	}

	gens := make([]*openload.Gen, nclients)
	results := make([]openload.Result, nclients)
	popBuilt := false
	popCond := sim.NewCond(s)
	finished := 0
	// The measured phase opens at a shared barrier, like the closed-loop
	// runners — but per-client scratch setup serializes at the server's
	// sync metadata writes, and at thousands of clients (bridgedsat runs
	// 5000) that spills past the fixed 20s mark. So the barrier is
	// derived inside the sim: once every client is set up, arrivals open
	// together at the next whole second, no earlier than 20s. The instant
	// is a function of the cell's own deterministic history, so reruns
	// and any -j agree on it.
	barrier := sim.Time(0)
	setupDone := 0
	startCond := sim.NewCond(s)
	for i, cli := range clis {
		i, cli := i, cli
		cfg := openload.Config{
			Arrival:  w.Arrival,
			Rate:     w.TargetOps / float64(nclients),
			BurstOn:  w.BurstOn,
			BurstOff: w.BurstOff,
			Mix:      mix,
			Window:   w.Window,
			QueueCap: w.QueueCap,
			Deadline: w.Deadline,
			Measure:  w.Measure,
			Seed:     w.Seed + int64(i),
		}
		if reps != nil {
			cfg.Replay = reps[i]
			cfg.ReplaySpeed = speed
		}
		gens[i] = openload.NewGen(cli, pop, cfg)
		s.Spawn(fmt.Sprintf("openload-driver-%d", i), func(p *sim.Proc) {
			if i == 0 {
				if err := pop.Build(p, cli); err != nil {
					panic("scenario: openload population build: " + err.Error())
				}
				popBuilt = true
				popCond.Broadcast()
			}
			for !popBuilt {
				popCond.Wait(p)
			}
			if err := gens[i].Setup(p); err != nil {
				panic("scenario: openload setup: " + err.Error())
			}
			setupDone++
			if setupDone == nclients {
				b := laddisBarrier
				if late := p.Now().Sub(b); late > 0 {
					b = b.Add((late + sim.Second - 1) / sim.Second * sim.Second)
				}
				barrier = b
				startCond.Broadcast()
			}
			for barrier == 0 {
				startCond.Wait(p)
			}
			p.Sleep(barrier.Sub(p.Now()))
			if i == 0 {
				mark()
			}
			res, err := gens[i].Run(p)
			if err != nil {
				panic("scenario: openload run: " + err.Error())
			}
			results[i] = res
			finished++
		})
	}
	ob.setOpenload(gens)
	s.Run(0)
	if finished != nclients {
		panic("scenario: openload drivers did not finish")
	}

	elapsed := w.Measure
	if tr != nil && elapsed <= 0 {
		elapsed = sim.Duration(float64(tr.Duration()) / speed)
	}

	var all stats.Histogram
	var completed, offered uint64
	var latSumUs float64
	var latN int
	for i := range results {
		res := &results[i]
		offered += res.Offered
		completed += res.Completed
		cr.Errors += res.Errors
		cr.ShedArrivals += res.Shed
		cr.ExpiredOps += res.Expired
		if res.PeakQueue > cr.PeakQueue {
			cr.PeakQueue = res.PeakQueue
		}
		latSumUs += float64(res.Lat.Mean()) * float64(res.Lat.N())
		latN += res.Lat.N()
		all.Merge(res.Lat.Hist())
		cr.OpenloadClients = append(cr.OpenloadClients, OpenloadClient{
			Offered:      res.Offered,
			Completed:    res.Completed,
			Errors:       res.Errors,
			Shed:         res.Shed,
			Expired:      res.Expired,
			PeakQueue:    res.PeakQueue,
			PeakInFlight: res.PeakInFlight,
			PerOp:        res.PerOp,
		})
	}
	if tr != nil {
		// A replay's offered rate is the capture's, not a spec knob.
		if elapsed > 0 {
			cr.OfferedOpsPerSec = float64(offered) / elapsed.Seconds()
		}
	} else {
		cr.OfferedOpsPerSec = w.TargetOps
	}
	if elapsed > 0 {
		cr.AchievedOpsPerSec = float64(completed) / elapsed.Seconds()
	}
	// The latency histogram stores sim.Duration ticks (microseconds).
	const usPerMs = 1000.0
	if latN > 0 {
		cr.AvgLatencyMs = latSumUs / float64(latN) / usPerMs
	}
	if all.N() > 0 {
		cr.P50LatencyMs = all.Quantile(0.50) / usPerMs
		cr.P90LatencyMs = all.Quantile(0.90) / usPerMs
		cr.P95LatencyMs = all.Quantile(0.95) / usPerMs
		cr.P99LatencyMs = all.Quantile(0.99) / usPerMs
		cr.P999LatencyMs = all.Quantile(0.999) / usPerMs
	}
	cr.Elapsed = elapsed
	cr.ElapsedSec = elapsed.Seconds()
}

func runClusterLADDIS(rc *resolved, c *cluster.Cluster, cr *CellResult) {
	roots := c.Roots()
	nclients := len(c.Clients)
	perClient, total := rc.offered(nclients)

	gens := make([]*workload.LADDIS, nclients)
	results := make([]workload.LADDISResult, nclients)
	finished := 0
	for i, cli := range c.Clients {
		i, cli := i, cli
		gens[i] = workload.NewLADDIS(cli, roots[0], workload.LADDISConfig{
			Files:            rc.laddis.Files,
			FileBlocks:       rc.laddis.FileBlocks,
			OfferedOpsPerSec: perClient,
			Procs:            rc.laddis.Procs,
			Warmup:           rc.laddis.Warmup,
			Duration:         rc.laddis.Measure,
			Seed:             rc.laddis.Seed + int64(i),
			Roots:            roots,
			Histograms:       rc.histograms(),
		})
		c.Sim.Spawn(fmt.Sprintf("laddis-driver-%d", i), func(p *sim.Proc) {
			if err := gens[i].Setup(p); err != nil {
				panic("scenario: laddis setup: " + err.Error())
			}
			// Barrier: measurement starts together, well past setup. A
			// setup that overruns the barrier would silently skew the
			// interval stats (clients starting staggered, MarkInterval
			// mid-load), so it is a hard error: grow the barrier with the
			// working set, don't ignore it.
			wait := laddisBarrier.Sub(p.Now())
			if wait < 0 {
				panic(fmt.Sprintf("scenario: laddis setup for client %d ran %v past the %v barrier; working set too large for the barrier",
					i, -wait, sim.Duration(laddisBarrier)))
			}
			p.Sleep(wait)
			if i == 0 {
				c.MarkInterval()
			}
			results[i] = gens[i].Run(p)
			finished++
		})
	}
	c.Sim.Run(0)
	if finished != nclients {
		panic("scenario: laddis drivers did not finish")
	}

	cr.OfferedOpsPerSec = total
	aggregateLADDIS(cr, results)
	if rc.histograms() {
		fillQuantiles(cr, results)
	}
	cr.Elapsed = rc.laddis.Measure
	cr.ElapsedSec = cr.Elapsed.Seconds()
	st := c.IntervalStats()
	cr.CPUPercent = st.CPUMeanPercent
	cr.CPUMaxPercent = st.CPUMaxPercent
	cr.DiskKBps = st.DiskKBps
	cr.DiskTps = st.DiskTps
}
