package scenario

import "repro/internal/sim"

// Entry is one named scenario in the built-in registry.
type Entry struct {
	Name        string
	Description string
	// Build returns a fresh copy of the spec (callers may mutate it).
	Build func() Spec
}

// Registry lists the built-in scenarios in presentation order: the
// paper's tables and figures, the post-paper sweeps, and scenarios only
// the declarative API can express.
func Registry() []Entry {
	return []Entry{
		{"table1", "Table 1: 10MB copy, Ethernet, 1 disk (biod sweep, std vs gathering)", table1},
		{"table2", "Table 2: 10MB copy, Ethernet, Presto NVRAM", table2},
		{"table3", "Table 3: 10MB copy, FDDI", table3},
		{"table4", "Table 4: 10MB copy, FDDI, Presto NVRAM", table4},
		{"table5", "Table 5: 10MB copy, FDDI, 3 striped drives", table5},
		{"table6", "Table 6: 10MB copy, FDDI, Presto, 3 striped drives", table6},
		{"figure1", "Figure 1: traffic timeline of a sequential writer, std vs gathering server", figure1},
		{"figure2", "Figure 2: SPEC SFS 1.0 LADDIS throughput/latency sweep", figure2},
		{"figure3", "Figure 3: LADDIS sweep with Prestoserve", figure3},
		{"scale", "Scale-out grid: 1/2/4 LADDIS clients x 1/2 sharded servers", scale},
		{"bridged", "Bridged fabric: Ethernet client segments store-and-forwarded into one FDDI server core, swept over segment count", bridged},
		{"crash", "Crash/recovery durability: acked-write audit across two server crashes (plain and Presto)", crash},
		{"partialcrash", "Partial-cluster crash under LADDIS load: one of two shards crashes mid-measure (std vs gathering)", partialCrash},
		{"flapstorm", "Flapping storm: staggered short-outage crash trains on both shards under sharded write streams, durability-checked", flapStorm},
		{"failover", "Shard failover: one of two shards dies mid-stream and the survivor adopts its disks under a stable FSID (plain vs Presto)", failOver},
		{"clientreboot", "Client crash model: one client reboots mid-stream dropping dirty write-behind, another loses biods; acked bytes must all survive", clientReboot},
		{"mediastorm", "Partial storage failure: media read errors, a degraded spindle and an armed torn write across a crash, durability-audited (plain vs Presto)", mediaStorm},
		{"kneecurve", "Open-loop capacity curve: Poisson/Zipf arrivals swept past the knee, achieved-vs-offered with honest shed/queue accounting (std vs gathering)", kneecurve},
		{"bridgedsat", "Bridged saturation: 50 Ethernet segments x 100 clients open-loop over one FDDI core shard, swept over segment count", bridgedSat},
	}
}

// Lookup returns the named scenario's spec.
func Lookup(name string) (Spec, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Build(), true
		}
	}
	return Spec{}, false
}

func table1() Spec {
	return CopySweep(Copy("table1", "Table 1. NFS 10MB file copy: Ethernet",
		"ethernet", false, 1, 0, 10, nil), StandardBiods())
}

func table2() Spec {
	return CopySweep(Copy("table2", "Table 2. NFS 10MB file copy: Ethernet, Presto",
		"ethernet", true, 1, 0, 10, nil), StandardBiods())
}

func table3() Spec {
	return CopySweep(Copy("table3", "Table 3. NFS 10MB file copy: FDDI",
		"fddi", false, 1, 1.8, 10, nil), StandardBiods())
}

func table4() Spec {
	return CopySweep(Copy("table4", "Table 4. NFS 10MB file copy: FDDI, Presto",
		"fddi", true, 1, 1.8, 10, nil), StandardBiods())
}

func table5() Spec {
	return CopySweep(Copy("table5", "Table 5. NFS 10MB file copy: FDDI, 3 striped drives",
		"fddi", false, 3, 1.8, 10, nil), StripeBiods())
}

func table6() Spec {
	return CopySweep(Copy("table6", "Table 6. NFS 10MB file copy: FDDI, Presto, 3 striped drives",
		"fddi", true, 3, 1.8, 10, nil), StripeBiods())
}

func figure1() Spec {
	spec := Trace("figure1", "Figure 1. Traffic timeline >100K into a sequential transfer", 256, 4, 99)
	std, wg := false, true
	spec.Cells = []Cell{
		{Label: "std", Gathering: &std},
		{Label: "wg", Gathering: &wg},
	}
	return spec
}

func figure2() Spec {
	return LADDISSweep(
		LADDISRig("figure2", "Figure 2. SPEC SFS 1.0 baseline", false, 4, 16, 32, 8, 8*sim.Second, 4242),
		[]float64{200, 400, 600, 800, 1000, 1200, 1400, 1600})
}

func figure3() Spec {
	return LADDISSweep(
		LADDISRig("figure3", "Figure 3. SPEC SFS 1.0 baseline, Prestoserve", true, 4, 16, 32, 8, 8*sim.Second, 4242),
		[]float64{400, 800, 1200, 1600, 2000, 2400, 2800, 3200})
}

func scale() Spec {
	return ScaleSweep(
		ScaleBase("scale", "Scale-out sweep: LADDIS clients x sharded servers, FDDI",
			false, 250, 8, 16, 2, 24, 8, 4*sim.Second, 9494),
		[]int{1, 2, 4}, []int{1, 2})
}

func bridged() Spec {
	return BridgedSweep(
		Bridged("bridged", "Bridged fabric sweep: LADDIS clients on Ethernet leaf segments behind store-and-forward bridges into one FDDI core shard",
			false, 4, 2, 8, 16, 2, 250, 4*sim.Second, 7777),
		[]int{1, 2, 4})
}

// kneecurve is the capacity-curve scenario the closed-loop sweeps could
// not honestly produce: LADDIS generators block on completions, so past
// saturation they self-throttle and the offered axis silently bends to
// match the achieved one. Open-loop Poisson arrivals over a Zipf-hot
// population keep offering the declared rate; cells past the knee show
// achieved throughput plateauing while queues grow and the backlog
// sheds — with and without write gathering.
func kneecurve() Spec {
	return OpenloadSweep(
		OpenloadRig("kneecurve", "Open-loop capacity curve: Poisson arrivals, Zipf population, offered load swept past the knee",
			false, 4, 32, 8, ArrivalPoisson, PopZipf, MixLADDIS, 4*sim.Second, 5151),
		[]float64{100, 200, 300, 400, 600, 900, 1400})
}

// bridgedSat scales the open-loop subsystem to the paper's big-network
// shape: 50 bridged Ethernet segments of 100 clients each offering a
// fixed aggregate rate into one FDDI core shard. The sweep holds the
// rate constant while fan-in grows, so it separates bridge/fan-in
// effects from server capacity.
func bridgedSat() Spec {
	return BridgedSweep(
		OpenloadBridged("bridgedsat", "Bridged saturation: 50 Ethernet leaf segments x 100 clients each, open-loop over one FDDI core shard",
			50, 100, 16, 2, 1200, 2*sim.Second, 8282),
		[]int{10, 50})
}

func crash() Spec {
	spec := StreamCrash("crash", "Crash/recovery durability, write gathering",
		false, true, 2, 2,
		500*sim.Millisecond, 1500*sim.Millisecond, 400*sim.Millisecond, 2, 777)
	plain, presto := false, true
	spec.Cells = []Cell{
		{Label: "plain", Presto: &plain},
		{Label: "presto", Presto: &presto},
	}
	return spec
}

// failOver is a scenario the crash-train API could not express: the
// shard map stops being static. Shard 2 dies mid-stream and never
// reboots; after the takeover delay shard 1 adopts its disks — NVRAM
// replay, remount, a dedicated server instance on the adopter's CPU —
// under the same FSID, so every handle born on the dead shard stays
// valid and the interrupted streams finish through the adopter. The
// durability checker then reads every acked byte back through the
// migrated export.
func failOver() Spec {
	spec := Spec{
		Name:        "failover",
		Description: "Shard 2 dies mid-stream; shard 1 adopts its disks under a stable FSID",
		Seed:        4747,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 100}},
			Servers:  Servers{Count: 2, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 2, Shard: true}},
		Faults: Faults{
			CheckDurability: true,
			Events: []FaultEvent{{
				Kind: FaultShardFailover,
				ShardFailover: &ShardFailoverFault{
					Node: 1, To: 0, At: 400 * sim.Millisecond, Takeover: 250 * sim.Millisecond,
				},
			}},
		},
	}
	plain, presto := false, true
	spec.Cells = []Cell{
		{Label: "plain", Presto: &plain},
		{Label: "presto", Presto: &presto},
	}
	return spec
}

// clientReboot is the client-side half of the fault matrix: client 2
// power-cycles mid-stream — its dirty write-behind and the stream that
// produced it die with the workstation — while client 1 loses half its
// biod pool and grinds on. The checker proves the asymmetry the NFS
// contract draws: every server-acked byte survives (LostBytes 0), while
// the buffered-but-never-acked writes the reboot dropped are permitted
// loss, reported but never counted against the server.
func clientReboot() Spec {
	spec := Spec{
		Name:        "clientreboot",
		Description: "Client 2 reboots mid-stream dropping dirty write-behind; client 1 loses 2 biods",
		Seed:        2929,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 50}},
			Servers:  Servers{Count: 1, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 2}},
		Faults: Faults{
			CheckDurability: true,
			Events: []FaultEvent{
				{
					Kind: FaultClientReboot,
					ClientReboot: &ClientRebootFault{
						Client: 1, At: 300 * sim.Millisecond, Outage: 500 * sim.Millisecond,
					},
				},
				{
					Kind: FaultBiodLoss,
					BiodLoss: &BiodLossFault{
						Client: 0, At: 200 * sim.Millisecond, Lose: 2,
					},
				},
			},
		},
	}
	plain, presto := false, true
	spec.Cells = []Cell{
		{Label: "plain", Presto: &plain},
		{Label: "presto", Presto: &presto},
	}
	return spec
}

// mediaStorm drives the storage half of the fault matrix against one
// two-spindle shard: a bounded run of media read errors on spindle 0, a
// degraded window on spindle 1, and a torn write armed across a mid-
// stream power cycle. Disks fail partially — not fail-stop — and the
// durability audit must still hold: acked bytes survive the storm, or
// every loss traces to a scheduled fault that declared it permissible.
func mediaStorm() Spec {
	spec := Spec{
		Name:        "mediastorm",
		Description: "Media errors + degraded spindle + torn write across a crash on one striped shard",
		Seed:        6161,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 200}},
			Servers:  Servers{Count: 1, StripeDisks: 2, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 2}},
		Faults: Faults{
			CheckDurability: true,
			Events: []FaultEvent{
				{
					Kind: FaultDiskReadError,
					DiskReadError: &DiskReadErrorFault{
						Node: 0, Disk: 0, At: 200 * sim.Millisecond, Times: 2,
					},
				},
				{
					Kind: FaultDiskDegraded,
					DiskDegraded: &DiskDegradedFault{
						Node: 0, Disk: 1, At: 300 * sim.Millisecond,
						Duration: 250 * sim.Millisecond, Factor: 6,
					},
				},
				{
					Kind: FaultDiskTornWrite,
					DiskTornWrite: &DiskTornWriteFault{
						Node: 0, Disk: -1, At: 100 * sim.Millisecond,
					},
				},
				{
					Kind: FaultServerCrash,
					ServerCrash: &ServerCrashFault{
						Node: 0, At: 600 * sim.Millisecond,
						Outage: 150 * sim.Millisecond, Count: 1,
					},
				},
			},
		},
	}
	plain, presto := false, true
	spec.Cells = []Cell{
		{Label: "plain", Presto: &plain},
		{Label: "presto", Presto: &presto},
	}
	return spec
}

// partialCrash is only expressible in the scenario API: the legacy scale
// sweep had no fault schedule and the legacy crash rig had no LADDIS
// load. One of two shards crashes mid-measure; the sweep compares how the
// standard and gathering builds absorb the outage (latency cliff,
// retransmissions, reboot detections).
func partialCrash() Spec {
	spec := ScaleBase("partialcrash",
		"Partial-cluster crash under LADDIS load (2 clients x 2 shards, shard 2 crashes mid-measure)",
		false, 250, 8, 16, 2, 24, 8, 6*sim.Second, 9595)
	spec.Topology.Clients[0].MaxRetries = 64
	spec.Faults = Faults{Crashes: []CrashTrain{
		{Node: 1, At: 22 * sim.Second, Outage: 1 * sim.Second, Count: 1},
	}}
	two := 2
	std, wg := false, true
	spec.Cells = []Cell{
		{Label: "std-crash", Clients: &two, Servers: &two, Gathering: &std},
		{Label: "wg-crash", Clients: &two, Servers: &two, Gathering: &wg},
	}
	return spec
}

// flapStorm is the other scenario the legacy API could not express: the
// legacy crash rig drove exactly one crash train against node 0. Here
// both shards flap on staggered short-outage trains while every client
// streams to its own shard, and the durability checker audits every
// acked write across all eight crashes.
func flapStorm() Spec {
	spec := Spec{
		Name:        "flapstorm",
		Description: "Staggered flapping outages on both shards under sharded write streams",
		Seed:        1331,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 100}},
			Servers:  Servers{Count: 2, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 2, Shard: true}},
		Faults: Faults{
			CheckDurability: true,
			Crashes: []CrashTrain{
				{Node: 0, At: 400 * sim.Millisecond, Period: 900 * sim.Millisecond, Outage: 150 * sim.Millisecond, Count: 4},
				{Node: 1, At: 850 * sim.Millisecond, Period: 900 * sim.Millisecond, Outage: 150 * sim.Millisecond, Count: 4},
			},
		},
	}
	plain, presto := false, true
	spec.Cells = []Cell{
		{Label: "plain", Presto: &plain},
		{Label: "presto", Presto: &presto},
	}
	return spec
}
