package scenario

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestFailoverScenario runs the shard-failover registry scenario: shard 2
// dies mid-stream and never reboots, shard 1 adopts its disks under the
// same FSID. The acceptance contract: the interrupted streams finish
// through the adopting node and every acked byte reads back through the
// migrated export, on both the plain and the Presto build.
func TestFailoverScenario(t *testing.T) {
	spec, ok := Lookup("failover")
	if !ok {
		t.Fatal("failover not registered")
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		d := c.Durability
		if d == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if d.Failovers != 1 || d.Crashes != 1 || d.Reboots != 0 {
			t.Errorf("%s: failovers=%d crashes=%d reboots=%d, want 1/1/0",
				c.Label, d.Failovers, d.Crashes, d.Reboots)
		}
		// Both 2MB streams completed: 4MB of acked audit bytes means the
		// orphaned stream finished through the adopter.
		if d.AckedBytes < 4<<20 {
			t.Errorf("%s: only %d bytes acked; the orphaned stream did not finish through the adopter",
				c.Label, d.AckedBytes)
		}
		if d.LostBytes != 0 {
			t.Errorf("%s: DURABILITY VIOLATED across failover: lost %d bytes: %s",
				c.Label, d.LostBytes, d.FirstLoss)
		}
		if c.Retransmissions == 0 {
			t.Errorf("%s: the takeover window left no client-side trace", c.Label)
		}
		if len(d.EventsFired) == 0 {
			t.Errorf("%s: no fault transitions recorded", c.Label)
		}
	}
	if res.Cells[1].Durability.RecoveredNVRAMBlocks == 0 {
		t.Error("presto cell: adoption replayed no NVRAM blocks")
	}
	if res.Cells[0].Durability.RecoveredNVRAMBlocks != 0 {
		t.Error("plain cell replayed NVRAM blocks without a board")
	}
}

// TestClientRebootScenario runs the client-crash registry scenario. The
// acceptance contract: a client reboot loses ONLY never-acked
// write-behind — LostBytes stays 0 (the server never failed) while the
// dropped buffered writes are reported as permitted loss — and the
// surviving client rides out its biod loss.
func TestClientRebootScenario(t *testing.T) {
	spec, ok := Lookup("clientreboot")
	if !ok {
		t.Fatal("clientreboot not registered")
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		d := c.Durability
		if d == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if d.ClientReboots != 1 {
			t.Errorf("%s: client reboots = %d, want 1", c.Label, d.ClientReboots)
		}
		if d.BiodsLost != 2 {
			t.Errorf("%s: biods lost = %d, want 2", c.Label, d.BiodsLost)
		}
		if d.Crashes != 0 || d.Reboots != 0 {
			t.Errorf("%s: server transitions %d/%d in a client-only scenario", c.Label, d.Crashes, d.Reboots)
		}
		if d.AckedWrites == 0 {
			t.Errorf("%s: checker audited nothing", c.Label)
		}
		if d.LostBytes != 0 {
			t.Errorf("%s: acked-at-server bytes lost to a CLIENT crash: %d: %s",
				c.Label, d.LostBytes, d.FirstLoss)
		}
		if d.DroppedBuffered == 0 {
			t.Errorf("%s: the reboot dropped no dirty write-behind; it landed too late to matter", c.Label)
		}
		// The surviving client's 2MB stream completed despite losing half
		// its biod pool.
		if d.AckedBytes < 2<<20 {
			t.Errorf("%s: surviving stream did not complete (%d bytes acked)", c.Label, d.AckedBytes)
		}
	}
}

// TestLinkOutageSpecDeterministic runs a hand-built link-outage spec
// twice: same seed, same EventsFired, same metrics — the determinism
// contract for the fifth fault kind, which has no registry entry of its
// own.
func TestLinkOutageSpecDeterministic(t *testing.T) {
	node0 := 0
	clientIdx := 1
	spec := Spec{
		Name: "linkflap",
		Seed: 6161,
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 60}},
			Servers:  Servers{Count: 1, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}},
		Faults: Faults{
			CheckDurability: true,
			Events: []FaultEvent{
				{Kind: FaultLinkOutage, LinkOutage: &LinkOutageFault{
					Node: &node0, At: 150 * sim.Millisecond, Outage: 150 * sim.Millisecond, Count: 1,
				}},
				{Kind: FaultLinkOutage, LinkOutage: &LinkOutageFault{
					Client: &clientIdx, At: 400 * sim.Millisecond, Outage: 100 * sim.Millisecond, Count: 1,
				}},
			},
		},
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.Cells[0].Durability, b.Cells[0].Durability
	if da.LinkOutages != 2 {
		t.Fatalf("link outages = %d, want 2", da.LinkOutages)
	}
	if da.LostBytes != 0 {
		t.Fatalf("acked bytes lost to link outages: %d: %s", da.LostBytes, da.FirstLoss)
	}
	if a.Cells[0].Retransmissions == 0 {
		t.Error("outage windows left no client-side trace")
	}
	if !reflect.DeepEqual(da.EventsFired, db.EventsFired) {
		t.Fatalf("EventsFired differ between identical runs:\n%v\n%v", da.EventsFired, db.EventsFired)
	}
	if !reflect.DeepEqual(a.Cells[0].Metrics, b.Cells[0].Metrics) {
		t.Fatalf("metrics differ between identical runs")
	}
}

// faultSpec is a minimal cluster stream spec fault-validation tests
// decorate.
func faultSpec() Spec {
	return Spec{
		Name: "t",
		Topology: Topology{
			Net:      "fddi",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 2, Biods: 4}},
			Servers:  Servers{Count: 2},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}},
	}
}

func TestValidateFaultEventKinds(t *testing.T) {
	// Unknown kind.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{Kind: "meteor-strike"}}
	wantInvalid(t, s, "faults.events[0]")

	// Kind without its variant.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{Kind: FaultClientReboot}}
	wantInvalid(t, s, "faults.events[0]")

	// Kind with a mismatched variant.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:         FaultServerCrash,
		ClientReboot: &ClientRebootFault{Client: 0, At: sim.Second, Outage: sim.Millisecond},
	}}
	wantInvalid(t, s, "faults.events[0]")
}

func TestValidateClientFaultTargets(t *testing.T) {
	// Unknown client index.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:         FaultClientReboot,
		ClientReboot: &ClientRebootFault{Client: 5, At: sim.Second, Outage: sim.Millisecond},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Client faults outside the stream workload.
	s = faultSpec()
	s.Topology.Clients = []ClientGroup{{Count: 1, Biods: 4}}
	s.Workload = Workload{Kind: KindCopy, Copy: &CopyWorkload{FileMB: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:         FaultClientReboot,
		ClientReboot: &ClientRebootFault{Client: 0, At: sim.Second, Outage: sim.Millisecond},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Biod loss beyond the client's pool.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:     FaultBiodLoss,
		BiodLoss: &BiodLossFault{Client: 0, At: sim.Second, Lose: 9},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Biod loss inside the same client's reboot window.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{
		{Kind: FaultClientReboot, ClientReboot: &ClientRebootFault{
			Client: 0, At: 100 * sim.Millisecond, Outage: 200 * sim.Millisecond}},
		{Kind: FaultBiodLoss, BiodLoss: &BiodLossFault{
			Client: 0, At: 150 * sim.Millisecond, Lose: 1}},
	}
	wantInvalid(t, s, "faults.events[1]")
}

func TestValidateFailoverTargets(t *testing.T) {
	// Failover to self.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultShardFailover,
		ShardFailover: &ShardFailoverFault{Node: 1, To: 1, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Failover to a node scheduled to die: the adopter must stay up.
	s = faultSpec()
	s.Faults.Crashes = []CrashTrain{{Node: 0, At: 2 * sim.Second, Outage: 100 * sim.Millisecond, Count: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultShardFailover,
		ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// A second event aimed at the failed-over source overlaps its
	// open-ended down-window.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{
		{Kind: FaultShardFailover, ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: sim.Second}},
		{Kind: FaultServerCrash, ServerCrash: &ServerCrashFault{
			Node: 1, At: 3 * sim.Second, Outage: 100 * sim.Millisecond, Count: 1}},
	}
	wantInvalid(t, s, "faults.events[0]")

	// An adopter crash fully recovered before the failover is fine (the
	// takeover waits out a remount tail).
	s = faultSpec()
	s.Faults.Crashes = []CrashTrain{{Node: 0, At: 100 * sim.Millisecond, Outage: 100 * sim.Millisecond, Count: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultShardFailover,
		ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: sim.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("pre-failover adopter crash rejected: %v", err)
	}

	// A link outage never takes the adopter down; any timing is fine.
	zero := 0
	s = faultSpec()
	s.Faults.Events = []FaultEvent{
		{Kind: FaultLinkOutage, LinkOutage: &LinkOutageFault{
			Node: &zero, At: 2 * sim.Second, Outage: 100 * sim.Millisecond, Count: 1}},
		{Kind: FaultShardFailover, ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: sim.Second}},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("link outage on the adopter rejected: %v", err)
	}

	// Failover under LADDIS: the generators' statfs goes to the default
	// server by name and cannot follow a migrated export.
	s = faultSpec()
	s.Workload = Workload{Kind: KindLADDIS, LADDIS: &LADDISWorkload{
		OfferedOpsPerSec: 10, Measure: sim.Second,
	}}
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultShardFailover,
		ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")
}

// TestFailoverWaitsOutRemountTail is the race regression: a crash
// train's reboot is still remounting (device-timed, past the scheduled
// window) when the failover fires. The takeover must wait the remount
// out, power the source back off, and adopt — not silently skip the
// failover or race the mount.
func TestFailoverWaitsOutRemountTail(t *testing.T) {
	s := faultSpec()
	s.Seed = 99
	s.Topology.Clients[0].MaxRetries = 100
	s.Topology.Servers.Gathering = true
	s.Workload.Stream.Shard = true
	s.Faults.CheckDurability = true
	// Window [100ms,200ms): the reboot starts at 200ms and remounts for
	// ~100ms more; the failover at 210ms lands inside that tail.
	s.Faults.Crashes = []CrashTrain{{Node: 1, At: 100 * sim.Millisecond, Outage: 100 * sim.Millisecond, Count: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultShardFailover,
		ShardFailover: &ShardFailoverFault{Node: 1, To: 0, At: 210 * sim.Millisecond, Takeover: 50 * sim.Millisecond},
	}}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Cells[0].Durability
	if d.Failovers != 1 {
		t.Fatalf("failovers=%d, want 1 (the declared failover must happen despite the remount tail); events: %v",
			d.Failovers, d.EventsFired)
	}
	// crash + reboot + post-reboot re-crash by the takeover.
	if d.Crashes != 2 || d.Reboots != 1 {
		t.Errorf("crashes=%d reboots=%d, want 2/1; events: %v", d.Crashes, d.Reboots, d.EventsFired)
	}
	if d.LostBytes != 0 {
		t.Errorf("lost %d bytes across reboot+failover: %s", d.LostBytes, d.FirstLoss)
	}
}

func TestValidateLinkOutageTargets(t *testing.T) {
	// Neither target set.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:       FaultLinkOutage,
		LinkOutage: &LinkOutageFault{At: sim.Second, Outage: sim.Millisecond, Count: 1},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Both targets set.
	zero := 0
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind: FaultLinkOutage,
		LinkOutage: &LinkOutageFault{
			Node: &zero, Client: &zero, At: sim.Second, Outage: sim.Millisecond, Count: 1,
		},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// A link outage overlapping a crash window on the same node.
	s = faultSpec()
	s.Faults.Crashes = []CrashTrain{{Node: 0, At: sim.Second, Outage: 200 * sim.Millisecond, Count: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind: FaultLinkOutage,
		LinkOutage: &LinkOutageFault{
			Node: &zero, At: sim.Second + 100*sim.Millisecond, Outage: sim.Millisecond, Count: 1,
		},
	}}
	wantInvalid(t, s, "faults.crashes[0]")
}

// TestLegacyCrashSpecsNormalize pins the adapter: a legacy crashes-only
// spec validates, and mixing it with typed events keeps the trains ahead
// of the events in the normalized schedule.
func TestLegacyCrashSpecsNormalize(t *testing.T) {
	s := faultSpec()
	s.Faults.Crashes = []CrashTrain{{Node: 0, At: sim.Second, Outage: 100 * sim.Millisecond, Count: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:        FaultServerCrash,
		ServerCrash: &ServerCrashFault{Node: 1, At: sim.Second, Outage: 100 * sim.Millisecond, Count: 1},
	}}
	r, err := s.resolve(Cell{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.events) != 2 {
		t.Fatalf("normalized %d events, want 2", len(r.events))
	}
	if r.events[0].ServerCrash.Node != 0 || r.events[1].ServerCrash.Node != 1 {
		t.Fatal("legacy trains must precede typed events in the schedule")
	}
}
