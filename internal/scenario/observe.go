// The scenario layer owns all observability wiring: the emission points
// (client, server, core, nvram, disk) carry nil-by-default hook fields
// and never import internal/obs; this file installs closures into those
// hooks when — and only when — the spec's Observe section asks for them.
// With Observe absent no hook is set, no sampler event is scheduled, and
// every recorded metric column stays byte-identical.
package scenario

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/nvram"
	"repro/internal/obs"
	"repro/internal/openload"
	"repro/internal/rig"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/ufs"
	"repro/internal/vfs"
)

// probeColumns is the time-series probe catalog, in column order.
//
//	nfsd_queue        datagrams waiting in server inboxes (all shards)
//	cache_bufs        buffer-cache blocks resident (all shards)
//	nvram_dirty_pct   NVRAM write-cache fill, percent of capacity
//	disk_util_pct     spindle busy time over the sample window, percent
//	rpcs_outstanding  client RPCs issued and not yet answered
var probeColumns = []string{
	"nfsd_queue", "cache_bufs", "nvram_dirty_pct", "disk_util_pct", "rpcs_outstanding",
}

// probeCols is the cell's probe catalog: the fixed columns, plus — for
// bridged multi-segment topologies only — one windowed utilization
// column per segment and one queue-depth column per uplink bridge, in
// declaration order. Single-medium cells keep exactly the historical
// header, so recorded probe CSVs never change shape.
//
//	seg_<name>_util_pct   segment medium busy over the sample window, percent
//	bridge_<name>_queue   datagrams parked in the uplink bridge's output FIFOs
//
// Open-loop cells additionally get the overload-honesty gauges — the
// knee is visible live as ol_queue climbing while ol_shed starts
// counting:
//
//	ol_offered   arrivals emitted so far (admitted, backlogged or shed)
//	ol_shed      arrivals dropped at a full backlog so far
//	ol_queue     arrivals currently waiting in client backlogs
func probeCols(rc *resolved) []string {
	if len(rc.segments) == 0 && rc.kind != KindOpenload {
		return probeColumns
	}
	cols := append([]string(nil), probeColumns...)
	for _, sg := range rc.segments {
		cols = append(cols, "seg_"+sg.Name+"_util_pct")
	}
	for _, sg := range rc.segments {
		if sg.Uplink != "" {
			cols = append(cols, "bridge_"+sg.Name+"_queue")
		}
	}
	if rc.kind == KindOpenload {
		cols = append(cols, "ol_offered", "ol_shed", "ol_queue")
	}
	return cols
}

// cellObs is one cell's live observability plane: the trace buffer and
// probe series its hook closures feed. A nil *cellObs (Observe absent or
// empty) is valid and inert — every method guards it.
type cellObs struct {
	cfg    Observe
	trace  *obs.Trace
	series *obs.TimeSeries
	// openload marks the cell's probe header as carrying the ol_*
	// columns; gens are the live generators feeding them (set by the
	// runner before the sim starts; gauges read zero until then).
	openload bool
	gens     []*openload.Gen
}

// obsCaptureFn, when threaded into a run, receives every cell's live
// observer the moment its hooks are installed — before the workload runs
// — so a run that dies mid-cell still leaves its partial trace
// reachable. The fuzzer uses it to attach observability artifacts to
// panic-class repros; Run passes nil and is otherwise pure. It is a
// per-run parameter, not a package hook, so concurrent runs (the
// parallel engine, parallel fuzz workers) never see each other's cells.
type obsCaptureFn func(label string, ob *cellObs)

// newCellObs builds the cell's observer, or nil when the resolved spec
// enables no instrument.
func newCellObs(rc *resolved, capture obsCaptureFn) *cellObs {
	o := rc.observe
	if o == nil || (!o.Trace && !o.Probes && !o.Histograms) {
		return nil
	}
	ob := &cellObs{cfg: *o, openload: rc.kind == KindOpenload}
	if o.Trace {
		ob.trace = obs.NewTrace(rc.label, o.TraceMaxEvents)
	}
	if o.Probes {
		ob.series = obs.NewTimeSeries(rc.label, probeCols(rc)...)
	}
	if capture != nil {
		capture(rc.label, ob)
	}
	return ob
}

// histograms reports whether LADDIS generators should stream per-op
// latency histograms for this cell.
func (rc *resolved) histograms() bool {
	return rc.observe != nil && rc.observe.Histograms
}

// hookClient wires one client's RPC-completion hook: a span from issue
// to completion on the client's "rpc" track, with retransmission count
// and outcome. Calls unwound by a host crash never report (the client
// invokes the hook only on reply or final timeout).
func (ob *cellObs) hookClient(s *sim.Sim, idx int, cli *client.Client) {
	if ob == nil || ob.trace == nil {
		return
	}
	proc := fmt.Sprintf("client:c%d", idx)
	cli.OnRPC = func(op nfsproto.Proc, xid uint32, issued sim.Time, attempts int, ok bool) {
		var okv int64
		if ok {
			okv = 1
		}
		ob.trace.Span(proc, "rpc", op.String(), "rpc", issued, s.Now(),
			obs.Arg{Key: "xid", Val: int64(xid)},
			obs.Arg{Key: "attempts", Val: int64(attempts)},
			obs.Arg{Key: "ok", Val: okv})
	}
}

// hookServer wires one server build's spans: per-nfsd service spans with
// queueing delay, gather-batch commit spans, and NVRAM drain spans. The
// cluster re-invokes this on every reboot and adoption (the server and
// board objects are rebuilt per boot).
func (ob *cellObs) hookServer(srv *server.Server, pr *nvram.Presto) {
	if ob == nil || ob.trace == nil {
		return
	}
	proc := "server:" + srv.Name()
	srv.OnServe = func(nfsd int, op nfsproto.Proc, xid uint32, queued, start, end sim.Time) {
		ob.trace.Span(proc, fmt.Sprintf("nfsd%d", nfsd), op.String(), "nfs", start, end,
			obs.Arg{Key: "xid", Val: int64(xid)},
			obs.Arg{Key: "queue_us", Val: int64(start.Sub(queued))})
	}
	if eng := srv.Engine(); eng != nil {
		eng.OnCommit = func(ino vfs.Ino, batch int, start, end sim.Time) {
			ob.trace.Span(proc, "gather", "commit", "gather", start, end,
				obs.Arg{Key: "ino", Val: int64(ino)},
				obs.Arg{Key: "batch", Val: int64(batch)})
		}
	}
	if pr != nil {
		pr.OnDrain = func(blk int64, nblocks int, start, end sim.Time) {
			ob.trace.Span(proc, "nvram-drain", "drain", "nvram", start, end,
				obs.Arg{Key: "blk", Val: blk},
				obs.Arg{Key: "nblocks", Val: int64(nblocks)})
		}
	}
}

// hookDisk wires one spindle's transfer spans. The disk reports its
// service time with each completed op, so the span covers exactly the
// platter busy window.
func (ob *cellObs) hookDisk(s *sim.Sim, proc string, idx int, d *disk.Disk) {
	if ob == nil || ob.trace == nil {
		return
	}
	thread := fmt.Sprintf("disk%d", idx)
	d.OnOp = func(write bool, blk int64, n int, svc sim.Duration) {
		name := "read"
		if write {
			name = "write"
		}
		now := s.Now()
		ob.trace.Span(proc, thread, name, "disk", now.Add(-svc), now,
			obs.Arg{Key: "blk", Val: blk},
			obs.Arg{Key: "bytes", Val: int64(n)})
	}
}

// probeSources abstracts the two assemblies for the sampler. Servers,
// filesystems and boards are fetched per sample (the cluster rebuilds
// them across reboots); spindles and clients are stable objects.
type probeSources struct {
	servers func() []*server.Server
	fses    func() []*ufs.FS
	prestos func() []*nvram.Presto
	disks   []*disk.Disk
	clients []*client.Client
	// fabric, when non-nil, appends the bridged-topology columns (see
	// probeCols); nil keeps the historical five-column samples.
	fabric *netsim.Fabric
}

// startProbes arms the periodic sampler: a self-rescheduling weak event
// that samples the probe catalog every SampleEvery. Weak events fire only
// while live ordinary work remains and are otherwise dropped without
// advancing the clock, so the chain ends by itself at the workload's
// natural quiesce — the run's final sim time is identical with and
// without the sampler. The sampler draws no randomness and acquires no
// resources, so enabling it never changes any other event's order.
func (ob *cellObs) startProbes(s *sim.Sim, src probeSources) {
	if ob == nil || ob.series == nil {
		return
	}
	var lastBusy sim.Duration
	var lastT sim.Time
	var segNames []string
	var bridges []*netsim.Bridge
	var lastSegBusy []sim.Duration
	if src.fabric != nil {
		segNames = src.fabric.Names()
		bridges = src.fabric.Bridges()
		lastSegBusy = make([]sim.Duration, len(segNames))
	}
	var tick func()
	tick = func() {
		now := s.Now()
		var queue, cache, outst int
		var used, capacity int
		for _, srv := range src.servers() {
			if srv != nil {
				queue += srv.Endpoint().Inbox.Len()
			}
		}
		for _, fs := range src.fses() {
			if fs != nil {
				cache += fs.CachedBufs()
			}
		}
		for _, pr := range src.prestos() {
			if pr != nil {
				used += pr.CacheUsed()
				capacity += pr.CacheBytes()
			}
		}
		var busy sim.Duration
		for _, d := range src.disks {
			busy += d.Stats().BusyTime
		}
		for _, cli := range src.clients {
			outst += cli.PendingRPCs()
		}
		dirtyPct := 0.0
		if capacity > 0 {
			dirtyPct = 100 * float64(used) / float64(capacity)
		}
		utilPct := 0.0
		if window := now.Sub(lastT); window > 0 && len(src.disks) > 0 {
			utilPct = 100 * float64(busy-lastBusy) / float64(int64(window)*int64(len(src.disks)))
		}
		window := now.Sub(lastT)
		lastBusy, lastT = busy, now
		vals := []float64{float64(queue), float64(cache), dirtyPct, utilPct, float64(outst)}
		for i, name := range segNames {
			segBusy := src.fabric.Segment(name).MediumBusy()
			segUtil := 0.0
			if window > 0 {
				segUtil = 100 * float64(segBusy-lastSegBusy[i]) / float64(window)
			}
			lastSegBusy[i] = segBusy
			vals = append(vals, segUtil)
		}
		for _, br := range bridges {
			depth := 0
			for _, bp := range br.Ports {
				depth += bp.QueueLen()
			}
			vals = append(vals, float64(depth))
		}
		if ob.openload {
			var off, shed uint64
			qlen := 0
			for _, g := range ob.gens {
				o, sh := g.Counters()
				off += o
				shed += sh
				qlen += g.QueueLen()
			}
			vals = append(vals, float64(off), float64(shed), float64(qlen))
		}
		ob.series.Sample(now, vals...)
		if ob.trace != nil {
			cols := ob.series.Cols
			for i, v := range vals {
				ob.trace.Counter("probes", cols[i], now, int64(v))
			}
		}
		s.AtWeak(ob.cfg.SampleEvery, tick)
	}
	s.AtWeak(ob.cfg.SampleEvery, tick)
}

// installRig wires the whole plane onto a single-server rig.
func (ob *cellObs) installRig(r *rig.Rig) {
	if ob == nil {
		return
	}
	for i, cli := range r.Clients {
		ob.hookClient(r.Sim, i, cli)
	}
	ob.hookServer(r.Server, r.Presto)
	for i, d := range r.Disks {
		ob.hookDisk(r.Sim, "server:"+r.Server.Name(), i, d)
	}
	ob.startProbes(r.Sim, probeSources{
		servers: func() []*server.Server { return []*server.Server{r.Server} },
		fses:    func() []*ufs.FS { return []*ufs.FS{r.FS} },
		prestos: func() []*nvram.Presto { return []*nvram.Presto{r.Presto} },
		disks:   r.Disks,
		clients: r.Clients,
		fabric:  r.Fabric,
	})
}

// installCluster wires clients, spindles and the sampler onto a cluster.
// Server-side hooks ride cluster.Config.OnServerUp instead (see
// clusterObserveConfig): the server and NVRAM objects are rebuilt on
// every reboot and adoption, and the hook re-fires for each new build.
func (ob *cellObs) installCluster(c *cluster.Cluster) {
	if ob == nil {
		return
	}
	for i, cli := range c.Clients {
		ob.hookClient(c.Sim, i, cli)
	}
	var disks []*disk.Disk
	for _, n := range c.Nodes {
		for i, d := range n.Disks {
			ob.hookDisk(c.Sim, "server:"+n.Name, i, d)
			disks = append(disks, d)
		}
	}
	ob.startProbes(c.Sim, probeSources{
		servers: func() []*server.Server {
			srvs := make([]*server.Server, 0, len(c.Nodes))
			for _, n := range c.Nodes {
				if !n.Down {
					srvs = append(srvs, n.Server)
				}
			}
			return srvs
		},
		fses: func() []*ufs.FS {
			fss := make([]*ufs.FS, 0, len(c.Nodes))
			for _, n := range c.Nodes {
				fss = append(fss, n.FS)
			}
			return fss
		},
		prestos: func() []*nvram.Presto {
			prs := make([]*nvram.Presto, 0, len(c.Nodes))
			for _, n := range c.Nodes {
				prs = append(prs, n.Presto)
			}
			return prs
		},
		disks:   disks,
		clients: c.Clients,
		fabric:  c.Fabric,
	})
}

// setOpenload hands the sampler the cell's live generators. Nil-safe,
// like every cellObs method; before the generators' Run starts their
// gauges read zero, so early samples stay well-formed.
func (ob *cellObs) setOpenload(gens []*openload.Gen) {
	if ob == nil || ob.series == nil {
		return
	}
	ob.gens = gens
}

// finish hands the cell its collected artifacts.
func (ob *cellObs) finish(cr *CellResult) {
	if ob == nil {
		return
	}
	cr.Trace = ob.trace
	cr.Series = ob.series
}
