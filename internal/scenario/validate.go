package scenario

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ValidationError reports one way a Spec is invalid. Field is the dotted
// spec path ("topology.clients", "faults.crashes[1]"); for sweeps the
// engine prefixes the offending cell.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("scenario: invalid spec: %s: %s", e.Field, e.Reason)
}

func invalid(field, format string, args ...any) error {
	return &ValidationError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Assembly names.
const (
	AssemblyRig     = "rig"
	AssemblyCluster = "cluster"
)

// Validate checks the spec and every cell it expands to, returning the
// first *ValidationError found (nil if the spec is runnable).
func (s *Spec) Validate() error {
	for i, cell := range s.cells() {
		if _, err := s.resolve(cell, i); err != nil {
			return err
		}
	}
	return nil
}

// cells returns the sweep expansion: the declared cells, or one empty
// cell for a single-run spec.
func (s *Spec) cells() []Cell {
	if len(s.Cells) == 0 {
		return []Cell{{}}
	}
	return s.Cells
}

// resolved is one cell's fully-defaulted, validated configuration.
type resolved struct {
	label    string
	seed     int64
	net      hw.NetParams
	cpuScale float64
	groups   []ClientGroup
	nclients int
	servers  Servers
	assembly string

	// segments is the bridged-fabric build plan, nil for single-segment
	// topologies (plain Net, or media with one segment — both take the
	// historical one-network path, byte-identical to pre-bridge runs).
	segments []netsim.SegmentSpec
	rootSeg  string
	segIndex map[string]int // segment name -> media index; nil without media

	kind   string
	copyW  CopyWorkload
	laddis LADDISWorkload
	stream StreamWorkload
	trace  TraceWorkload
	open   OpenloadWorkload

	// observe is the defaulted observability configuration (nil when the
	// spec declares none — the zero-cost path).
	observe *Observe

	faults Faults
	// events is the normalized fault schedule: the legacy crash trains
	// adapted onto server-crash events (in list order), then the typed
	// events, all validated. Run schedules exactly this list in order.
	events []FaultEvent
	// storageFaults is true when the schedule carries storage-plane
	// events (media errors, degraded windows, torn writes, lying NVRAM):
	// the runner then tolerates failed client operations and failed
	// recoveries instead of treating them as harness panics.
	storageFaults bool
}

func netParams(name string) (hw.NetParams, bool) {
	switch name {
	case "ethernet":
		return hw.Ethernet(), true
	case "fddi":
		return hw.FDDI(), true
	}
	return hw.NetParams{}, false
}

// knownMediaKinds lists the medium kinds netParams accepts, for error
// messages.
func knownMediaKinds() string { return `"ethernet", "fddi"` }

// Bridged-media defaults applied at resolve time.
const (
	// DefaultBridgeLatency is the store-and-forward processing time of
	// an uplink bridge when the medium declares none.
	DefaultBridgeLatency = 50 * sim.Microsecond
	// DefaultBridgeQueue is the per-port output FIFO bound (the drop
	// budget) when the medium declares none.
	DefaultBridgeQueue = 64
)

// resolve applies cell overrides and defaults to the base spec and
// validates the result.
func (s *Spec) resolve(cell Cell, idx int) (*resolved, error) {
	r := &resolved{
		label:    cell.Label,
		seed:     s.Seed,
		cpuScale: s.Topology.CPUScale,
		servers:  s.Topology.Servers,
		kind:     s.Workload.Kind,
		faults:   s.Faults,
	}
	if r.label == "" {
		r.label = fmt.Sprintf("cell%02d", idx)
	}
	if cell.Seed != nil {
		r.seed = *cell.Seed
	}

	// Medium. Net and Media are mutually exclusive; a media list of one
	// segment is exactly Net, and several segments form a bridged tree.
	netName := s.Topology.Net
	media := s.Topology.Media
	if len(media) > 0 && netName != "" {
		return nil, invalid("topology.net",
			"set either net or media, not both (media kinds: %s)", knownMediaKinds())
	}
	groups := append([]ClientGroup(nil), s.Topology.Clients...)
	if cell.Segments != nil {
		var err error
		if media, groups, err = trimSegments(media, groups, *cell.Segments); err != nil {
			return nil, err
		}
	}
	if len(media) > 0 {
		if err := r.resolveMedia(media); err != nil {
			return nil, err
		}
		// The single-network parameters (gather procrastination, legacy
		// configs) follow the shards' default segment.
		if err := r.checkSegment("topology.servers.segment", r.servers.Segment); err != nil {
			return nil, err
		}
		serverSeg := r.servers.Segment
		if serverSeg == "" {
			serverSeg = r.rootSeg
		}
		netName = media[r.segIndex[serverSeg]].Net
	} else if r.servers.Segment != "" {
		return nil, invalid("topology.servers.segment",
			"segment placement requires topology.media")
	}
	net, ok := netParams(netName)
	if !ok {
		return nil, invalid("topology.net", "unknown medium %q (want one of %s)", netName, knownMediaKinds())
	}
	r.net = net

	// Client groups.
	r.groups = groups
	if len(r.groups) == 0 {
		return nil, invalid("topology.clients", "no client groups declared")
	}
	if cell.Clients != nil {
		r.groups[0].Count = *cell.Clients
	}
	for gi := range r.groups {
		if cell.Biods != nil {
			r.groups[gi].Biods = *cell.Biods
		}
		if r.groups[gi].Count < 1 {
			return nil, invalid(fmt.Sprintf("topology.clients[%d].count", gi),
				"zero clients (each group needs at least one host)")
		}
		if r.groups[gi].Biods < 0 || r.groups[gi].MaxRetries < 0 {
			return nil, invalid(fmt.Sprintf("topology.clients[%d]", gi), "negative biods or max_retries")
		}
		if err := r.checkSegment(fmt.Sprintf("topology.clients[%d].segment", gi), r.groups[gi].Segment); err != nil {
			return nil, err
		}
		r.nclients += r.groups[gi].Count
	}

	// Servers.
	if cell.Servers != nil {
		r.servers.Count = *cell.Servers
	}
	if cell.Gathering != nil {
		r.servers.Gathering = *cell.Gathering
	}
	if cell.Presto != nil {
		r.servers.Presto = *cell.Presto
	}
	if r.servers.Count < 1 {
		return nil, invalid("topology.servers.count", "at least one server shard required")
	}
	if r.servers.Nfsds < 0 || r.servers.StripeDisks < 0 || r.servers.Inodes < 0 {
		return nil, invalid("topology.servers", "negative nfsds, stripe_disks or inodes")
	}
	if len(r.servers.Nodes) > r.servers.Count {
		return nil, invalid("topology.servers.nodes",
			"%d node overrides for %d shards", len(r.servers.Nodes), r.servers.Count)
	}
	for ni, o := range r.servers.Nodes {
		if (o.StripeDisks != nil && *o.StripeDisks < 1) ||
			(o.Nfsds != nil && *o.Nfsds < 1) ||
			(o.Inodes != nil && *o.Inodes < 1) {
			return nil, invalid(fmt.Sprintf("topology.servers.nodes[%d]", ni),
				"node overrides must be positive when set")
		}
		if o.Segment != nil {
			field := fmt.Sprintf("topology.servers.nodes[%d].segment", ni)
			if *o.Segment == "" {
				return nil, invalid(field, "per-node segment override must name a segment")
			}
			if err := r.checkSegment(field, *o.Segment); err != nil {
				return nil, err
			}
		}
	}

	// Workload.
	switch r.kind {
	case KindCopy:
		if s.Workload.Copy != nil {
			r.copyW = *s.Workload.Copy
		}
		if cell.FileMB != nil {
			r.copyW.FileMB = *cell.FileMB
		}
		if r.copyW.FileMB == 0 {
			r.copyW.FileMB = 10 // the paper's transfer size
		}
		if r.copyW.FileMB < 1 {
			return nil, invalid("workload.copy.file_mb", "transfer size must be at least 1MB")
		}
		if r.nclients != 1 {
			return nil, invalid("topology.clients",
				"the copy workload measures a single writing client (got %d)", r.nclients)
		}
	case KindLADDIS:
		if s.Workload.LADDIS == nil {
			return nil, invalid("workload.laddis", "laddis parameters required")
		}
		r.laddis = *s.Workload.LADDIS
		if cell.OfferedOpsPerSec != nil {
			r.laddis.OfferedOpsPerSec = *cell.OfferedOpsPerSec
		}
		if r.laddis.OfferedOpsPerSec <= 0 {
			return nil, invalid("workload.laddis.offered_ops_per_sec", "offered load must be positive")
		}
		if r.laddis.Measure <= 0 {
			return nil, invalid("workload.laddis.measure_ns", "measured phase must be positive")
		}
		if r.laddis.Files < 0 || r.laddis.FileBlocks < 0 || r.laddis.Procs < 0 || r.laddis.Warmup < 0 {
			return nil, invalid("workload.laddis", "negative working-set or generator parameters")
		}
	case KindStream:
		if s.Workload.Stream != nil {
			r.stream = *s.Workload.Stream
		}
		if cell.FileMB != nil {
			r.stream.FileMB = *cell.FileMB
		}
		if r.stream.FileMB < 1 {
			return nil, invalid("workload.stream.file_mb", "per-client stream size must be at least 1MB")
		}
	case KindTrace:
		if s.Workload.Trace != nil {
			r.trace = *s.Workload.Trace
		}
		if r.trace.FileKB < 1 {
			return nil, invalid("workload.trace.file_kb", "transfer size must be at least 1KB")
		}
		if r.trace.WindowAfterKB == 0 {
			r.trace.WindowAfterKB = 100
		}
		if r.trace.Window == 0 {
			r.trace.Window = 60 * sim.Millisecond
		}
		if r.trace.Bound == 0 {
			r.trace.Bound = 60 * sim.Second
		}
		if r.nclients != 1 {
			return nil, invalid("topology.clients",
				"the trace workload follows a single writing client (got %d)", r.nclients)
		}
	case KindOpenload:
		if s.Workload.Openload != nil {
			r.open = *s.Workload.Openload
		}
		if cell.OfferedLoad != nil {
			r.open.TargetOps = *cell.OfferedLoad
		}
		if err := r.validateOpenload(); err != nil {
			return nil, err
		}
	default:
		return nil, invalid("workload.kind", "unknown workload kind %q", r.kind)
	}

	// Observability plane.
	if s.Observe != nil {
		o := *s.Observe
		if o.SampleEvery < 0 {
			return nil, invalid("observe.sample_every_ns", "sample period must not be negative")
		}
		if o.TraceMaxEvents < 0 {
			return nil, invalid("observe.trace_max_events", "event cap must not be negative")
		}
		if o.SampleEvery == 0 {
			o.SampleEvery = 100 * sim.Millisecond
		}
		if o.TraceMaxEvents == 0 {
			o.TraceMaxEvents = 200_000
		}
		r.observe = &o
	}

	if err := r.validateFaults(); err != nil {
		return nil, err
	}

	// Assembly.
	needsCluster := r.needsCluster()
	switch s.Topology.Assembly {
	case "":
		r.assembly = AssemblyRig
		if needsCluster != "" {
			r.assembly = AssemblyCluster
		}
	case AssemblyRig:
		if needsCluster != "" {
			return nil, invalid("topology.assembly", "rig assembly cannot express %s", needsCluster)
		}
		r.assembly = AssemblyRig
	case AssemblyCluster:
		r.assembly = AssemblyCluster
	default:
		return nil, invalid("topology.assembly", "unknown assembly %q", s.Topology.Assembly)
	}
	if r.kind == KindTrace && r.assembly == AssemblyCluster {
		return nil, invalid("workload.kind",
			"the trace workload runs on the single-server rig assembly only")
	}
	return r, nil
}

// Known-vocabulary lists for openload error messages.
func knownArrivalKinds() string    { return `"fixed", "poisson", "bursty"` }
func knownPopulationKinds() string { return `"flat", "zipf"` }
func knownMixKinds() string        { return `"laddis", "metadata"` }

// validateOpenload checks and defaults the resolved openload workload:
// replay is exclusive with the synthetic-process fields (the capture
// carries its own timeline, mix and skew), the arrival/mix/population
// vocabularies are closed, and the offered rate must be positive.
func (r *resolved) validateOpenload() error {
	w := &r.open
	if w.Replay != nil {
		if w.Arrival != "" || w.Mix != "" || w.Population != "" || w.ZipfS != 0 || w.TargetOps != 0 {
			return invalid("workload.openload.replay",
				"replay carries its own timeline: arrival, mix, population, zipf_s and target_ops must be unset")
		}
		if w.Replay.File == "" {
			return invalid("workload.openload.replay.file", "replay needs a capture file")
		}
		if _, err := os.Stat(w.Replay.File); err != nil {
			return invalid("workload.openload.replay.file",
				"capture %q is not readable (%v); record one with nfstrace -capture", w.Replay.File, err)
		}
		if w.Replay.Speed < 0 {
			return invalid("workload.openload.replay.speed", "replay speed must not be negative")
		}
	} else {
		if w.TargetOps <= 0 {
			return invalid("workload.openload.target_ops",
				"offered rate must be > 0 ops/s (cells override it via offered_load)")
		}
		switch w.Arrival {
		case "", ArrivalFixed, ArrivalPoisson, ArrivalBursty:
		default:
			return invalid("workload.openload.arrival",
				"unknown arrival kind %q (want one of %s)", w.Arrival, knownArrivalKinds())
		}
		switch w.Mix {
		case "", MixLADDIS, MixMetadata:
		default:
			return invalid("workload.openload.mix",
				"unknown mix %q (want one of %s)", w.Mix, knownMixKinds())
		}
		switch w.Population {
		case "", PopFlat, PopZipf:
		default:
			return invalid("workload.openload.population",
				"unknown population %q (want one of %s)", w.Population, knownPopulationKinds())
		}
		if w.ZipfS < 0 {
			return invalid("workload.openload.zipf_s", "zipf exponent must not be negative")
		}
		if w.ZipfS > 0 && w.Population != PopZipf {
			return invalid("workload.openload.zipf_s",
				"zipf_s requires population %q (got %q)", PopZipf, w.Population)
		}
		if w.Measure <= 0 {
			return invalid("workload.openload.measure_ns", "measured phase must be positive")
		}
	}
	if w.Files < 0 || w.FileBlocks < 0 || w.Window < 0 || w.QueueCap < 0 ||
		w.Deadline < 0 || w.BurstOn < 0 || w.BurstOff < 0 {
		return invalid("workload.openload", "negative population, window, queue or burst parameters")
	}
	if w.Files == 0 {
		w.Files = 64
	}
	if w.FileBlocks == 0 {
		w.FileBlocks = 4
	}
	if w.Window == 0 {
		w.Window = 8
	}
	if w.QueueCap == 0 {
		w.QueueCap = 4 * w.Window
	}
	return nil
}

// checkSegment validates a placement reference: empty always means the
// root and is fine; a name requires topology.media and must be declared.
func (r *resolved) checkSegment(field, seg string) error {
	if seg == "" {
		return nil
	}
	if r.segIndex == nil {
		return invalid(field, "segment placement requires topology.media")
	}
	if _, ok := r.segIndex[seg]; !ok {
		return invalid(field, "unknown segment %q (declared: %s)", seg, r.segmentNames())
	}
	return nil
}

// segmentNames lists the declared segment names for error messages.
func (r *resolved) segmentNames() string {
	names := make([]string, 0, len(r.segIndex))
	for i := 0; i < len(r.segIndex); i++ {
		for n, idx := range r.segIndex {
			if idx == i {
				names = append(names, fmt.Sprintf("%q", n))
			}
		}
	}
	return strings.Join(names, ", ")
}

// resolveMedia validates the segment list and, for multi-segment
// topologies, builds the fabric plan: unique named segments of known
// kinds, exactly one root, every uplink declared and acyclic, sane
// bridge port/budget parameters.
func (r *resolved) resolveMedia(media []Medium) error {
	r.segIndex = make(map[string]int, len(media))
	for i, m := range media {
		field := fmt.Sprintf("topology.media[%d]", i)
		if m.Name == "" {
			return invalid(field, "segment needs a name")
		}
		if _, dup := r.segIndex[m.Name]; dup {
			return invalid(field, "duplicate segment name %q", m.Name)
		}
		r.segIndex[m.Name] = i
		if _, ok := netParams(m.Net); !ok {
			return invalid(field, "unknown medium %q (want one of %s)", m.Net, knownMediaKinds())
		}
		if m.BridgeLatency < 0 {
			return invalid(field, "bridge forward latency must not be negative")
		}
		if m.BridgeQueue < 0 {
			return invalid(field, "bridge queue bound (the drop budget) must not be negative")
		}
	}
	for i, m := range media {
		field := fmt.Sprintf("topology.media[%d]", i)
		if m.Uplink == "" {
			if r.rootSeg != "" {
				return invalid(field,
					"segment %q has no uplink, but %q is already the root — an extra root is an orphan segment unreachable from any server",
					m.Name, r.rootSeg)
			}
			r.rootSeg = m.Name
			continue
		}
		if m.Uplink == m.Name {
			return invalid(field, "segment %q uplinks to itself", m.Name)
		}
		if _, ok := r.segIndex[m.Uplink]; !ok {
			return invalid(field, "uplink names unknown segment %q (declared: %s)", m.Uplink, r.segmentNames())
		}
	}
	if r.rootSeg == "" {
		return invalid("topology.media",
			"no root segment: every segment declares an uplink, so the graph cycles and no segment can reach a server")
	}
	for i, m := range media {
		hops := 0
		for at := m.Name; at != r.rootSeg; at = media[r.segIndex[at]].Uplink {
			if hops++; hops > len(media) {
				return invalid(fmt.Sprintf("topology.media[%d]", i),
					"segment %q cannot reach the root %q — an uplink cycle orphans it from every server", m.Name, r.rootSeg)
			}
		}
	}
	if len(media) == 1 {
		// One segment is exactly the single shared medium: no fabric, no
		// bridges, the historical network build.
		return nil
	}
	for _, m := range media {
		p, _ := netParams(m.Net)
		lat, q := m.BridgeLatency, m.BridgeQueue
		if lat == 0 {
			lat = DefaultBridgeLatency
		}
		if q == 0 {
			q = DefaultBridgeQueue
		}
		r.segments = append(r.segments, netsim.SegmentSpec{
			Name:   m.Name,
			Params: p,
			Uplink: m.Uplink,
			Bridge: netsim.BridgeParams{ForwardLatency: lat, QueueItems: q},
		})
	}
	return nil
}

// trimSegments applies a cell's segment-count override: keep the root(s)
// plus the first n non-root segments in declaration order, and drop
// client groups placed on removed segments.
func trimSegments(media []Medium, groups []ClientGroup, n int) ([]Medium, []ClientGroup, error) {
	if len(media) < 2 {
		return nil, nil, invalid("cells.segments",
			"segment-count override requires a multi-segment topology.media")
	}
	children := 0
	for _, m := range media {
		if m.Uplink != "" {
			children++
		}
	}
	if n < 1 || n > children {
		return nil, nil, invalid("cells.segments",
			"segment count %d out of range (topology declares %d non-root segments)", n, children)
	}
	keep := make(map[string]bool, len(media))
	var outMedia []Medium
	kept := 0
	for _, m := range media {
		if m.Uplink != "" {
			if kept >= n {
				continue
			}
			kept++
		}
		keep[m.Name] = true
		outMedia = append(outMedia, m)
	}
	var outGroups []ClientGroup
	for _, g := range groups {
		if g.Segment == "" || keep[g.Segment] {
			outGroups = append(outGroups, g)
		}
	}
	return outMedia, outGroups, nil
}

// needsCluster reports why the cell requires the cluster assembly ("" if
// the single-server rig suffices).
func (r *resolved) needsCluster() string {
	switch {
	case r.servers.Count > 1:
		return "multiple server shards"
	case len(r.faults.Crashes) > 0 || len(r.faults.Events) > 0 || r.faults.CheckDurability:
		return "fault injection (only cluster assemblies are faultable)"
	case len(r.servers.Nodes) > 0:
		return "per-node server overrides"
	case len(r.groups) > 1:
		return "multiple client groups"
	case r.groups[0].MaxRetries > 0:
		return "a client retry override"
	case r.kind == KindStream:
		return "the stream workload"
	}
	return ""
}

// faultWindow is one scheduled down-window on a target, kept with the
// spec field it came from so overlap errors name both offenders. fatal
// windows take the host down (crash, reboot, failover); non-fatal ones
// only sever its attachment (link outage) — the host, its daemons and
// any adopted exports live on.
type faultWindow struct {
	from, to sim.Duration
	field    string
	fatal    bool
}

// forever marks an open-ended window (a failed-over shard never comes
// back).
const forever = sim.Duration(1<<63 - 1)

// validateFaults normalizes the fault schedule — the legacy crash trains
// become server-crash events ahead of the typed list — and checks every
// event by kind against the resolved topology: known targets, sane cycle
// parameters, strict kind/variant pairing, per-target non-overlapping
// down-windows (the injector skips a fault aimed at a target that is
// still down, so an overlapping schedule would silently drop cycles
// instead of running what the spec describes), and failover sanity (the
// adopter must not be dead, dying, or itself failed-over).
func (r *resolved) validateFaults() error {
	r.events = nil
	for _, tr := range r.faults.Crashes {
		r.events = append(r.events, FaultEvent{
			Kind: FaultServerCrash,
			ServerCrash: &ServerCrashFault{
				Node: tr.Node, At: tr.At, Period: tr.Period, Outage: tr.Outage, Count: tr.Count,
			},
		})
	}
	legacy := len(r.faults.Crashes)
	r.events = append(r.events, r.faults.Events...)

	serverWin := map[int][]faultWindow{}
	clientWin := map[int][]faultWindow{}
	segWin := map[string][]faultWindow{}
	type adoption struct {
		to    int
		at    sim.Duration
		field string
	}
	var adoptions []adoption
	type point struct {
		client int
		at     sim.Duration
		field  string
	}
	var biodPoints []point
	// Degraded-window overlap ledger: stacked windows on one spindle
	// would multiply factors in an order the spec never stated, so they
	// are rejected. disk -1 (every stripe member) conflicts with any
	// window on the same node.
	type diskWindow struct {
		disk     int
		from, to sim.Duration
		field    string
	}
	degradeWin := map[int][]diskWindow{}

	for i, ev := range r.events {
		var field string
		if i < legacy {
			field = fmt.Sprintf("faults.crashes[%d]", i)
		} else {
			field = fmt.Sprintf("faults.events[%d]", i-legacy)
		}
		if err := r.checkVariant(field, ev); err != nil {
			return err
		}
		switch ev.Kind {
		case FaultServerCrash:
			f := ev.ServerCrash
			if f.Node < 0 || f.Node >= r.servers.Count {
				return invalid(field, "fault targets unknown node %d (topology has %d servers)", f.Node, r.servers.Count)
			}
			if f.Count < 1 {
				return invalid(field, "crash count must be at least 1")
			}
			if f.Outage <= 0 {
				return invalid(field, "outage must be positive")
			}
			if f.At < 0 {
				return invalid(field, "first crash time must not be negative")
			}
			if f.Count > 1 && f.Period <= 0 {
				return invalid(field, "repeating trains need a positive period")
			}
			for k := 0; k < f.Count; k++ {
				at := f.At + sim.Duration(k)*f.Period
				serverWin[f.Node] = append(serverWin[f.Node], faultWindow{at, at + f.Outage, field, true})
			}
		case FaultClientReboot:
			f := ev.ClientReboot
			if f.Client < 0 || f.Client >= r.nclients {
				return invalid(field, "fault targets unknown client %d (topology has %d clients)", f.Client, r.nclients)
			}
			if f.Outage <= 0 {
				return invalid(field, "outage must be positive")
			}
			if f.At < 0 {
				return invalid(field, "reboot time must not be negative")
			}
			if r.kind != KindStream {
				return invalid(field, "client faults require the stream workload (the %s runner cannot lose a client)", r.kind)
			}
			clientWin[f.Client] = append(clientWin[f.Client], faultWindow{f.At, f.At + f.Outage, field, true})
		case FaultBiodLoss:
			f := ev.BiodLoss
			if f.Client < 0 || f.Client >= r.nclients {
				return invalid(field, "fault targets unknown client %d (topology has %d clients)", f.Client, r.nclients)
			}
			if f.At < 0 {
				return invalid(field, "loss time must not be negative")
			}
			if r.kind != KindStream {
				return invalid(field, "client faults require the stream workload (the %s runner cannot lose a client)", r.kind)
			}
			biods := r.clientBiods(f.Client)
			if f.Lose < 1 || f.Lose > biods {
				return invalid(field, "lose must be between 1 and the client's %d biods", biods)
			}
			biodPoints = append(biodPoints, point{f.Client, f.At, field})
		case FaultShardFailover:
			f := ev.ShardFailover
			if f.Node < 0 || f.Node >= r.servers.Count {
				return invalid(field, "fault targets unknown node %d (topology has %d servers)", f.Node, r.servers.Count)
			}
			if f.To < 0 || f.To >= r.servers.Count {
				return invalid(field, "failover to unknown node %d (topology has %d servers)", f.To, r.servers.Count)
			}
			if f.To == f.Node {
				return invalid(field, "a shard cannot fail over to itself")
			}
			if f.At < 0 || f.Takeover < 0 {
				return invalid(field, "failover and takeover times must not be negative")
			}
			if r.kind == KindLADDIS || r.kind == KindOpenload {
				return invalid(field,
					"shard failover requires a fully handle-routed workload; the %s generators issue statfs to the default server by name, which cannot follow a migrated export", r.kind)
			}
			// The source never comes back: its down-window is open-ended,
			// which also rejects any later event aimed at it.
			serverWin[f.Node] = append(serverWin[f.Node], faultWindow{f.At, forever, field, true})
			adoptions = append(adoptions, adoption{f.To, f.At, field})
		case FaultLinkOutage:
			f := ev.LinkOutage
			targets := 0
			for _, set := range []bool{f.Node != nil, f.Client != nil, f.Segment != nil} {
				if set {
					targets++
				}
			}
			if targets != 1 {
				return invalid(field, "exactly one of node, client and segment selects the outage target")
			}
			if f.Count < 1 {
				return invalid(field, "outage count must be at least 1")
			}
			if f.Outage <= 0 {
				return invalid(field, "outage must be positive")
			}
			if f.At < 0 {
				return invalid(field, "first outage time must not be negative")
			}
			if f.Count > 1 && f.Period <= 0 {
				return invalid(field, "repeating trains need a positive period")
			}
			if f.Segment != nil {
				seg := *f.Segment
				if len(r.segments) == 0 {
					return invalid(field, "segment outages require a multi-segment topology.media")
				}
				if seg == "" {
					return invalid(field, "segment target must name a segment (declared: %s)", r.segmentNames())
				}
				if err := r.checkSegment(field, seg); err != nil {
					return err
				}
				if seg == r.rootSeg {
					return invalid(field, "segment %q is the root and has no uplink to sever", seg)
				}
				for k := 0; k < f.Count; k++ {
					at := f.At + sim.Duration(k)*f.Period
					segWin[seg] = append(segWin[seg], faultWindow{at, at + f.Outage, field, false})
				}
				break
			}
			win := serverWin
			idx, limit, what := 0, r.servers.Count, "node"
			if f.Node != nil {
				idx = *f.Node
			} else {
				win, idx, limit, what = clientWin, *f.Client, r.nclients, "client"
			}
			if idx < 0 || idx >= limit {
				return invalid(field, "fault targets unknown %s %d", what, idx)
			}
			for k := 0; k < f.Count; k++ {
				at := f.At + sim.Duration(k)*f.Period
				win[idx] = append(win[idx], faultWindow{at, at + f.Outage, field, false})
			}
		case FaultDiskReadError:
			f := ev.DiskReadError
			if err := r.checkDiskTarget(field, f.Node, f.Disk); err != nil {
				return err
			}
			if f.At < 0 {
				return invalid(field, "injection time must not be negative")
			}
			if f.BlockFrom < 0 || f.BlockTo < 0 {
				return invalid(field, "negative block range")
			}
			if f.BlockTo != 0 && f.BlockTo <= f.BlockFrom {
				return invalid(field, "empty block range [%d,%d) (block_to 0 means end of disk)", f.BlockFrom, f.BlockTo)
			}
			if f.AfterOps < 0 || f.Times < 0 {
				return invalid(field, "negative after_ops or times")
			}
			if r.kind != KindStream {
				return invalid(field, "disk read errors require the stream workload (the %s runner cannot absorb I/O-error replies)", r.kind)
			}
			r.storageFaults = true
		case FaultDiskDegraded:
			f := ev.DiskDegraded
			if err := r.checkDiskTarget(field, f.Node, f.Disk); err != nil {
				return err
			}
			if f.At < 0 {
				return invalid(field, "window start must not be negative")
			}
			if f.Duration <= 0 {
				return invalid(field, "window duration must be positive")
			}
			if f.Factor <= 1 {
				return invalid(field, "degrade factor must exceed 1 (got %g)", f.Factor)
			}
			degradeWin[f.Node] = append(degradeWin[f.Node],
				diskWindow{f.Disk, f.At, f.At + f.Duration, field})
			r.storageFaults = true
		case FaultDiskTornWrite:
			f := ev.DiskTornWrite
			if err := r.checkDiskTarget(field, f.Node, f.Disk); err != nil {
				return err
			}
			if f.At < 0 {
				return invalid(field, "arm time must not be negative")
			}
			r.storageFaults = true
		case FaultNVRAMLyingSync:
			f := ev.NVRAMLyingSync
			if f.Node < 0 || f.Node >= r.servers.Count {
				return invalid(field, "fault targets unknown node %d (topology has %d servers)", f.Node, r.servers.Count)
			}
			if !r.nodePresto(f.Node) {
				return invalid(field, "node %d runs no NVRAM board (set topology.servers.presto or the node override)", f.Node)
			}
			if f.At < 0 {
				return invalid(field, "corruption time must not be negative")
			}
			r.storageFaults = true
		default:
			// checkVariant already rejected unknown kinds; a kind added
			// to its table but not here must fail loudly, not skip its
			// validation.
			panic("scenario: fault kind " + ev.Kind + " has no validation case")
		}
	}

	for node, ws := range degradeWin {
		for i := range ws {
			for j := i + 1; j < len(ws); j++ {
				a, b := ws[i], ws[j]
				sameDisk := a.disk < 0 || b.disk < 0 || a.disk == b.disk
				if sameDisk && a.from < b.to && b.from < a.to {
					return invalid(a.field,
						"overlapping degraded windows on node %d disk %d (%s [%v,%v] and %s [%v,%v])",
						node, a.disk, a.field, a.from, a.to, b.field, b.from, b.to)
				}
			}
		}
	}

	for _, byTarget := range []map[int][]faultWindow{serverWin, clientWin} {
		for target, ws := range byTarget {
			for i := range ws {
				for j := i + 1; j < len(ws); j++ {
					a, b := ws[i], ws[j]
					if a.from < b.to && b.from < a.to {
						return invalid(a.field,
							"overlapping fault windows on target %d (%s [%v,%v] and %s [%v,%v])",
							target, a.field, a.from, a.to, b.field, b.from, b.to)
					}
				}
			}
		}
	}
	for seg, ws := range segWin {
		for i := range ws {
			for j := i + 1; j < len(ws); j++ {
				a, b := ws[i], ws[j]
				if a.from < b.to && b.from < a.to {
					return invalid(a.field,
						"overlapping outage windows on segment %q (%s [%v,%v] and %s [%v,%v])",
						seg, a.field, a.from, a.to, b.field, b.from, b.to)
				}
			}
		}
	}
	// An adopter must survive from the failover on: adopted exports die
	// with it and nothing re-adopts them. A host-fatal window still open
	// (or opening) after the failover instant makes the failover a
	// scheduled durability loss; windows fully recovered before it are
	// fine (the takeover waits out a remount tail), and link outages
	// never take the host down at all.
	for _, ad := range adoptions {
		for _, w := range serverWin[ad.to] {
			if w.fatal && w.to > ad.at {
				return invalid(ad.field,
					"failover to node %d, which %s schedules down at %v — the adopter must stay up from the failover on",
					ad.to, w.field, w.from)
			}
		}
	}
	for _, bp := range biodPoints {
		for _, w := range clientWin[bp.client] {
			// Only host-fatal windows matter: biods are alive (and
			// killable) during a mere link outage.
			if w.fatal && bp.at >= w.from && bp.at < w.to {
				return invalid(bp.field,
					"biod loss at %v lands inside %s's down-window [%v,%v]",
					bp.at, w.field, w.from, w.to)
			}
		}
	}
	if r.faults.CheckDurability && r.kind == KindTrace {
		return invalid("faults.check_durability", "the trace workload has no durability journal")
	}
	return nil
}

// checkVariant enforces the tagged-union contract: exactly the variant
// matching Kind is set.
func (r *resolved) checkVariant(field string, ev FaultEvent) error {
	variants := []struct {
		kind string
		set  bool
	}{
		{FaultServerCrash, ev.ServerCrash != nil},
		{FaultClientReboot, ev.ClientReboot != nil},
		{FaultBiodLoss, ev.BiodLoss != nil},
		{FaultShardFailover, ev.ShardFailover != nil},
		{FaultLinkOutage, ev.LinkOutage != nil},
		{FaultDiskReadError, ev.DiskReadError != nil},
		{FaultDiskDegraded, ev.DiskDegraded != nil},
		{FaultDiskTornWrite, ev.DiskTornWrite != nil},
		{FaultNVRAMLyingSync, ev.NVRAMLyingSync != nil},
	}
	known := false
	for _, v := range variants {
		if v.kind == ev.Kind {
			known = true
			if !v.set {
				return invalid(field, "kind %q declared but its %s variant is missing", ev.Kind, jsonName(ev.Kind))
			}
		} else if v.set {
			return invalid(field, "kind %q set alongside a %s variant", ev.Kind, v.kind)
		}
	}
	if !known {
		names := make([]string, len(variants))
		for i, v := range variants {
			names[i] = fmt.Sprintf("%q", v.kind)
		}
		return invalid(field, "unknown fault kind %q (want one of %s)", ev.Kind,
			strings.Join(names, ", "))
	}
	return nil
}

// jsonName maps a fault kind tag to its variant's JSON field name.
func jsonName(kind string) string {
	return strings.ReplaceAll(kind, "-", "_")
}

// nodeStripeDisks resolves one shard's spindle count: the homogeneous
// setting (0 defaults to 1) plus any per-node override — the same
// resolution the cluster build performs.
func (r *resolved) nodeStripeDisks(node int) int {
	n := r.servers.StripeDisks
	if node < len(r.servers.Nodes) && r.servers.Nodes[node].StripeDisks != nil {
		n = *r.servers.Nodes[node].StripeDisks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// nodePresto resolves whether one shard runs an NVRAM board.
func (r *resolved) nodePresto(node int) bool {
	p := r.servers.Presto
	if node < len(r.servers.Nodes) && r.servers.Nodes[node].Presto != nil {
		p = *r.servers.Nodes[node].Presto
	}
	return p
}

// checkDiskTarget validates a (node, disk) storage-fault target against
// the resolved topology. disk -1 selects every stripe member.
func (r *resolved) checkDiskTarget(field string, node, disk int) error {
	if node < 0 || node >= r.servers.Count {
		return invalid(field, "fault targets unknown node %d (topology has %d servers)", node, r.servers.Count)
	}
	if nd := r.nodeStripeDisks(node); disk < -1 || disk >= nd {
		return invalid(field, "fault targets unknown disk %d on node %d (%d spindles; -1 means all)", disk, node, nd)
	}
	return nil
}

// clientBiods resolves a client index to its group's biod count.
func (r *resolved) clientBiods(idx int) int {
	for _, g := range r.groups {
		if idx < g.Count {
			return g.Biods
		}
		idx -= g.Count
	}
	return 0
}

// clusterConfig maps the resolved cell onto a cluster build.
func (r *resolved) clusterConfig() cluster.Config {
	cfg := cluster.Config{
		Net:            r.net,
		Servers:        r.servers.Count,
		Presto:         r.servers.Presto,
		Gathering:      r.servers.Gathering,
		GatherOverride: r.servers.GatherOverride,
		StripeDisks:    r.servers.StripeDisks,
		NumNfsds:       r.servers.Nfsds,
		CPUScale:       r.cpuScale,
		Seed:           r.seed,
		Inodes:         r.servers.Inodes,
		RecordReplies:  r.servers.RecordReplies,
		Segments:       r.segments,
		ServerSegment:  r.servers.Segment,
	}
	for _, o := range r.servers.Nodes {
		cfg.Nodes = append(cfg.Nodes, cluster.NodeConfig{
			Presto: o.Presto, StripeDisks: o.StripeDisks, NumNfsds: o.Nfsds, Inodes: o.Inodes,
			Segment: o.Segment,
		})
	}
	if len(r.groups) == 1 {
		// The homogeneous form, byte-compatible with pre-scenario rigs.
		cfg.Clients = r.groups[0].Count
		cfg.Biods = r.groups[0].Biods
		cfg.ClientRetries = r.groups[0].MaxRetries
		cfg.ClientSegment = r.groups[0].Segment
	} else {
		for _, g := range r.groups {
			cfg.ClientGroups = append(cfg.ClientGroups, cluster.ClientGroup(g))
		}
	}
	return cfg
}
