// Scenario fuzzing: generate random valid spec+fault combinations, run
// each on the real engine, and assert the two whole-system invariants
// every run must uphold regardless of the fault schedule:
//
//   - durability: no client-acked byte may be lost unless a scheduled
//     fault (a lying NVRAM board, an unrecoverable media failure)
//     explicitly declared the loss permissible;
//   - accounting: after full quiesce, every outstanding block reference
//     is attributable to a long-lived store (nothing leaked through a
//     kill-unwind, nothing double-released).
//
// A failing spec is shrunk — events dropped, trains shortened, sweep
// cells removed, topology reduced — to a minimal spec that still fails
// the same way, and reported as runnable JSON (nfsbench -scenario).
//
// Everything is seed-driven: run i of Fuzz(seed S) derives its generator
// from S and i alone, and the engine itself is deterministic, so a
// reported failure replays exactly from (S, i) or from the printed spec.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
)

// FuzzConfig parameterizes one fuzzing campaign.
type FuzzConfig struct {
	// Runs is the number of generated specs to execute (default 100).
	Runs int
	// Seed is the campaign seed; run i uses Seed and i alone.
	Seed int64
	// MaxShrinkRuns bounds the engine executions the shrinker may spend
	// minimizing one failure (default 250).
	MaxShrinkRuns int
	// Workers is the campaign's worker-pool size: that many generated
	// specs execute concurrently, each a fully independent sim with its
	// own buffer ledger. 0 uses the package default (Workers); 1 forces
	// the sequential path. The verdict is identical at any width: run-i
	// spec generation depends on (Seed, i) alone, runs are classified
	// independently, and the lowest failing index wins — exactly the run
	// the sequential campaign would have stopped at. Shrinking is always
	// sequential, so the minimized spec and artifacts match too.
	Workers int
	// Log, when set, receives one progress line every few runs.
	Log func(format string, args ...any)
}

// Failure classes.
const (
	// FailPanic: the engine panicked executing a valid spec.
	FailPanic = "panic"
	// FailDurability: acked bytes were lost and no scheduled fault
	// declared the loss permissible.
	FailDurability = "durability"
	// FailLeak: block references unaccounted for after full quiesce.
	FailLeak = "leak"
	// FailInvalid: a spec the generator validated was rejected by Run —
	// a fuzzer/validator disagreement, reported like any other bug.
	FailInvalid = "invalid"
)

// FuzzFailure is one minimized counterexample.
type FuzzFailure struct {
	// Run is the failing run index (replay: same campaign seed, run Run).
	Run int
	// Class is the failure class (Fail* constants).
	Class string
	// Detail describes the original failure.
	Detail string
	// Spec is the original failing spec, Shrunk the minimized one (still
	// failing with the same class).
	Spec   Spec
	Shrunk Spec
	// ShrinkRuns counts engine executions the minimization spent.
	ShrinkRuns int
	// TraceJSON and SeriesCSV are the shrunken spec's observability
	// artifacts — a Chrome trace_event file and the probe time-series —
	// captured by replaying the minimal spec with the observe plane on.
	// For panic-class failures they cover the run up to the panic. Empty
	// when the instrumented replay produced nothing.
	TraceJSON []byte `json:"-"`
	SeriesCSV []byte `json:"-"`
}

// JSON renders the shrunk spec as runnable scenario JSON.
func (f *FuzzFailure) JSON() string {
	blob, err := json.MarshalIndent(f.Shrunk, "", "  ")
	if err != nil {
		return fmt.Sprintf("<marshal failed: %v>", err)
	}
	return string(blob)
}

func (f *FuzzFailure) String() string {
	return fmt.Sprintf("fuzz run %d failed (%s): %s\nminimal reproducing spec (%d shrink runs):\n%s",
		f.Run, f.Class, f.Detail, f.ShrinkRuns, f.JSON())
}

// Fuzz runs the campaign and returns the first failure, minimized — or
// nil if every generated spec upheld the invariants. Generated specs
// execute across cfg.Workers concurrent sims; the reported failure is
// the lowest failing run index, which is exactly the sequential
// campaign's verdict (see FuzzConfig.Workers).
func Fuzz(cfg FuzzConfig) *FuzzFailure {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	if cfg.MaxShrinkRuns <= 0 {
		cfg.MaxShrinkRuns = 250
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = Workers()
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	f := fuzzCampaign(cfg, workers)
	if f == nil {
		return nil
	}
	// Minimize and capture artifacts outside the worker pool: the
	// shrinker's greedy passes are order-dependent, so they always run
	// sequentially regardless of campaign width.
	f.Shrunk, f.ShrinkRuns = shrinkSpec(f.Spec, f.Class, cfg.MaxShrinkRuns)
	f.TraceJSON, f.SeriesCSV = captureObs(f.Shrunk)
	return f
}

// fuzzCampaign executes the generate-and-check loop and returns the
// lowest-index failure, not yet minimized (nil if the campaign passed).
func fuzzCampaign(cfg FuzzConfig, workers int) *FuzzFailure {
	runOne := func(i int) *FuzzFailure {
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(i)))
		spec := genSpec(rng, i)
		class, detail := checkSpec(spec)
		if class == "" {
			return nil
		}
		return &FuzzFailure{Run: i, Class: class, Detail: detail, Spec: spec}
	}
	if workers <= 1 {
		for i := 0; i < cfg.Runs; i++ {
			if cfg.Log != nil && i%10 == 0 {
				cfg.Log("fuzz: run %d/%d", i, cfg.Runs)
			}
			if f := runOne(i); f != nil {
				return f
			}
		}
		return nil
	}
	// Parallel campaign. Indices are handed out in order; a worker pulls
	// the next index only while it could still matter (below the best
	// failure seen so far), so a failure at run k stops the campaign
	// after O(workers) extra runs, like the sequential early exit. Every
	// index below a recorded failure is guaranteed dispatched (dispatch
	// is monotone) and drained (the pool joins before reporting), so the
	// surviving lowest index is the true first failure.
	var (
		mu   sync.Mutex
		next int
		best *FuzzFailure
		wg   sync.WaitGroup
	)
	var panicked atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				// genSpec panics on generator bugs; surface them on the
				// caller instead of crashing from a worker goroutine.
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, r)
				}
			}()
			for {
				mu.Lock()
				if next >= cfg.Runs || (best != nil && next > best.Run) {
					mu.Unlock()
					return
				}
				i := next
				next++
				if cfg.Log != nil && i%10 == 0 {
					cfg.Log("fuzz: run %d/%d", i, cfg.Runs)
				}
				mu.Unlock()
				if f := runOne(i); f != nil {
					mu.Lock()
					if best == nil || f.Run < best.Run {
						best = f
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return best
}

// captureObs replays spec with the full observe plane forced on and
// serializes whatever the run produced. The capture callback keeps each
// cell's live observer reachable, so a replay that panics mid-cell (the
// usual case for panic-class repros) still yields its partial trace. The
// replay is sequential — cell order fixes the artifact order.
func captureObs(spec Spec) (traceJSON, seriesCSV []byte) {
	c := cloneSpec(spec)
	c.Observe = &Observe{Trace: true, Probes: true, Histograms: true}
	if c.Validate() != nil {
		return nil, nil
	}
	var traces []*obs.Trace
	var series []*obs.TimeSeries
	capture := func(label string, ob *cellObs) {
		if ob.trace != nil {
			traces = append(traces, ob.trace)
		}
		if ob.series != nil {
			series = append(series, ob.series)
		}
	}
	func() {
		defer func() {
			_ = recover() // the failure is already classified; keep the artifacts
		}()
		_, _ = runEngine(c, 1, capture)
	}()
	if len(traces) > 0 {
		var b bytes.Buffer
		if obs.WriteTraces(&b, traces) == nil {
			traceJSON = b.Bytes()
		}
	}
	if len(series) > 0 {
		var b bytes.Buffer
		if obs.WriteSeriesCSV(&b, series) == nil {
			seriesCSV = b.Bytes()
		}
	}
	return traceJSON, seriesCSV
}

// checkSpec executes one spec and classifies the outcome ("" = pass).
// Cells run in-line: the fuzz campaign's worker pool is the unit of
// parallelism, and a spec's one or two cells never warrant a nested
// pool.
func checkSpec(spec Spec) (class, detail string) {
	defer func() {
		if r := recover(); r != nil {
			class, detail = FailPanic, fmt.Sprint(r)
		}
	}()
	res, err := RunWorkers(spec, 1)
	if err != nil {
		return FailInvalid, err.Error()
	}
	for _, cell := range res.Cells {
		d := cell.Durability
		if d == nil {
			continue
		}
		if d.LostBytes > 0 && !d.LossExpected {
			return FailDurability, fmt.Sprintf("cell %s: lost %d acked bytes: %s",
				cell.Label, d.LostBytes, d.FirstLoss)
		}
		if d.UnaccountedRefs != 0 {
			return FailLeak, fmt.Sprintf("cell %s: %d unaccounted block refs",
				cell.Label, d.UnaccountedRefs)
		}
	}
	return "", ""
}

// genSpec draws one random valid spec. Faults are grown monotonically:
// each candidate event is appended and the whole spec re-validated, and
// a candidate that does not fit (an overlap, a missing board, a bad
// target) is simply dropped — so generation can never emit an invalid
// spec, and every validator tightening automatically steers the fuzzer.
func genSpec(rng *rand.Rand, run int) Spec {
	servers := 1 + rng.Intn(2)
	stripe := []int{1, 1, 2, 3}[rng.Intn(4)]
	spec := Spec{
		Name: fmt.Sprintf("fuzz-%d", run),
		Seed: rng.Int63n(1 << 20),
		Topology: Topology{
			Net: []string{"ethernet", "fddi"}[rng.Intn(2)],
			Clients: []ClientGroup{{
				Count:      1 + rng.Intn(2),
				Biods:      []int{0, 2, 4}[rng.Intn(3)],
				MaxRetries: 100,
			}},
			Servers: Servers{
				Count:       servers,
				StripeDisks: stripe,
				Presto:      rng.Intn(2) == 0,
				Gathering:   rng.Intn(2) == 0,
			},
			Assembly: AssemblyCluster,
		},
		Workload: Workload{
			Kind:   KindStream,
			Stream: &StreamWorkload{FileMB: 1, Shard: rng.Intn(2) == 0},
		},
		Faults: Faults{CheckDurability: true},
	}
	// A quarter of the runs swap the closed-loop stream for the open-loop
	// generator: arrivals keep coming on the arrival clock regardless of
	// completions, so the durability and ref-leak invariants get probed
	// under honest overload (queue growth, shed arrivals) instead of the
	// stream's self-throttling.
	if rng.Intn(4) == 0 {
		ol := &OpenloadWorkload{
			Arrival:    []string{ArrivalFixed, ArrivalPoisson, ArrivalBursty}[rng.Intn(3)],
			TargetOps:  float64(50 + rng.Intn(350)),
			Population: []string{PopFlat, PopZipf}[rng.Intn(2)],
			Mix:        []string{"", MixLADDIS, MixMetadata}[rng.Intn(3)],
			Files:      8 + rng.Intn(24),
			FileBlocks: 1 + rng.Intn(4),
			Measure:    rngMS(rng, 400, 1200),
			Seed:       rng.Int63n(1 << 20),
		}
		if ol.Population == PopZipf && rng.Intn(2) == 0 {
			ol.ZipfS = 0.8 + float64(rng.Intn(8))/10
		}
		if rng.Intn(3) == 0 {
			ol.Deadline = rngMS(rng, 100, 400)
		}
		spec.Workload = Workload{Kind: KindOpenload, Openload: ol}
	}
	// A third of the runs move onto a bridged fabric: a root core
	// segment plus one or two leaf LANs, the whole client group placed
	// on the first leaf, so every acked byte crosses the store-and-
	// forward bridges — same invariants, longer datagram path.
	if rng.Intn(3) == 0 {
		leaves := 1 + rng.Intn(2)
		media := []Medium{{Name: "core", Net: spec.Topology.Net}}
		for i := 1; i <= leaves; i++ {
			media = append(media, Medium{
				Name:   fmt.Sprintf("lan%d", i),
				Net:    []string{"ethernet", "fddi"}[rng.Intn(2)],
				Uplink: "core",
			})
		}
		spec.Topology.Net = ""
		spec.Topology.Media = media
		spec.Topology.Clients[0].Segment = "lan1"
	}
	// An occasional two-cell sweep exercises the per-cell reset path.
	if rng.Intn(4) == 0 {
		g, p := !spec.Topology.Servers.Gathering, spec.Topology.Servers.Presto
		spec.Cells = []Cell{{Label: "base"}, {Label: "alt", Gathering: &g, Presto: &p}}
	}
	want := rng.Intn(5)
	for tries := 0; len(spec.Faults.Events) < want && tries < want*8; tries++ {
		ev := genEvent(rng, &spec)
		spec.Faults.Events = append(spec.Faults.Events, ev)
		if spec.Validate() != nil {
			spec.Faults.Events = spec.Faults.Events[:len(spec.Faults.Events)-1]
		}
	}
	if err := spec.Validate(); err != nil {
		panic("scenario: fuzz generator produced an invalid base spec: " + err.Error())
	}
	return spec
}

// Millisecond helpers for the generator's time draws.
func ms(n int) sim.Duration { return sim.Duration(n) * sim.Millisecond }

func rngMS(rng *rand.Rand, lo, hi int) sim.Duration {
	return ms(lo + rng.Intn(hi-lo+1))
}

// genEvent draws one candidate fault event against the spec's topology.
// It need not be valid — genSpec drops candidates validation rejects.
func genEvent(rng *rand.Rand, spec *Spec) FaultEvent {
	servers := spec.Topology.Servers.Count
	clients := spec.Topology.Clients[0].Count
	node := rng.Intn(servers)
	disk := []int{-1, 0, 1, 2}[rng.Intn(4)]
	at := rngMS(rng, 0, 1500)
	// Power faults start no earlier than 100ms: a crash during mkfs's
	// initial image flush leaves a filesystem that never existed (stale
	// root on remount) — a setup race, not a durability finding.
	powerAt := rngMS(rng, 100, 1500)
	// The open-loop runner measures behind a 20s setup barrier; faults
	// drawn on the stream clock would all land in the idle build window,
	// so shift them into the measured phase.
	if spec.Workload.Kind == KindOpenload {
		at += 20 * sim.Second
		powerAt += 20 * sim.Second
	}
	switch rng.Intn(9) {
	case 0:
		return FaultEvent{Kind: FaultServerCrash, ServerCrash: &ServerCrashFault{
			Node: node, At: powerAt, Period: rngMS(rng, 300, 700),
			Outage: rngMS(rng, 50, 250), Count: 1 + rng.Intn(2),
		}}
	case 1:
		return FaultEvent{Kind: FaultClientReboot, ClientReboot: &ClientRebootFault{
			Client: rng.Intn(clients), At: at, Outage: rngMS(rng, 50, 250),
		}}
	case 2:
		return FaultEvent{Kind: FaultBiodLoss, BiodLoss: &BiodLossFault{
			Client: rng.Intn(clients), At: at, Lose: 1 + rng.Intn(3),
		}}
	case 3:
		return FaultEvent{Kind: FaultShardFailover, ShardFailover: &ShardFailoverFault{
			Node: node, To: (node + 1) % servers, At: powerAt, Takeover: rngMS(rng, 20, 100),
		}}
	case 4:
		f := &LinkOutageFault{
			At: at, Period: rngMS(rng, 200, 500),
			Outage: rngMS(rng, 20, 120), Count: 1 + rng.Intn(2),
		}
		switch {
		case len(spec.Topology.Media) > 1 && rng.Intn(3) == 0:
			// Sever a whole leaf segment's uplink: every host on it
			// partitions from the fabric at once.
			seg := spec.Topology.Media[1+rng.Intn(len(spec.Topology.Media)-1)].Name
			f.Segment = &seg
		case rng.Intn(2) == 0:
			f.Node = &node
		default:
			cli := rng.Intn(clients)
			f.Client = &cli
		}
		return FaultEvent{Kind: FaultLinkOutage, LinkOutage: f}
	case 5:
		from := int64(rng.Intn(2000))
		to := int64(0)
		if rng.Intn(2) == 0 {
			to = from + 1 + int64(rng.Intn(64))
		}
		return FaultEvent{Kind: FaultDiskReadError, DiskReadError: &DiskReadErrorFault{
			Node: node, Disk: disk, At: at,
			BlockFrom: from, BlockTo: to,
			AfterOps: rng.Intn(4), Times: 1 + rng.Intn(3),
		}}
	case 6:
		return FaultEvent{Kind: FaultDiskDegraded, DiskDegraded: &DiskDegradedFault{
			Node: node, Disk: disk, At: at,
			Duration: rngMS(rng, 50, 400), Factor: 2 + float64(rng.Intn(15)),
		}}
	case 7:
		return FaultEvent{Kind: FaultDiskTornWrite, DiskTornWrite: &DiskTornWriteFault{
			Node: node, Disk: disk, At: at,
		}}
	default:
		return FaultEvent{Kind: FaultNVRAMLyingSync, NVRAMLyingSync: &NVRAMLyingSyncFault{
			Node: node, At: at,
		}}
	}
}

// cloneSpec deep-copies a spec (the schema is JSON-complete by
// construction, so a round-trip is exact and alias-free).
func cloneSpec(spec Spec) Spec {
	blob, err := json.Marshal(spec)
	if err != nil {
		panic("scenario: clone marshal: " + err.Error())
	}
	out, err := Decode(blob)
	if err != nil {
		panic("scenario: clone decode: " + err.Error())
	}
	return out
}

// shrinkSpec greedily minimizes a failing spec: each pass proposes
// candidates (drop a cell, drop an event, shorten a train, reduce the
// topology), keeps any candidate that still fails with the same class,
// and repeats to fixpoint or until the run budget is spent. Candidates
// that no longer validate are skipped, so the result is always runnable.
func shrinkSpec(spec Spec, class string, budget int) (Spec, int) {
	runs := 0
	fails := func(cand Spec) bool {
		if runs >= budget || cand.Validate() != nil {
			return false
		}
		runs++
		got, _ := checkSpec(cand)
		return got == class
	}
	cur := spec
	for changed := true; changed && runs < budget; {
		changed = false
		// Drop sweep cells.
		for i := 0; i < len(cur.Cells); {
			cand := cloneSpec(cur)
			cand.Cells = append(cand.Cells[:i], cand.Cells[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Drop fault events.
		for i := 0; i < len(cur.Faults.Events); {
			cand := cloneSpec(cur)
			cand.Faults.Events = append(cand.Faults.Events[:i], cand.Faults.Events[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
			} else {
				i++
			}
		}
		// Shorten trains and rule lifetimes inside surviving events.
		for i := range cur.Faults.Events {
			cand := cloneSpec(cur)
			if simplifyEvent(&cand.Faults.Events[i]) && fails(cand) {
				cur, changed = cand, true
			}
		}
		// Reduce the topology and workload.
		for _, mutate := range []func(*Spec) bool{
			func(s *Spec) bool { return setInt(&s.Topology.Servers.Count, 1) },
			func(s *Spec) bool { return setInt(&s.Topology.Clients[0].Count, 1) },
			func(s *Spec) bool { return setInt(&s.Topology.Servers.StripeDisks, 1) },
			func(s *Spec) bool { return setInt(&s.Topology.Clients[0].Biods, 0) },
			func(s *Spec) bool { return s.Workload.Stream != nil && setInt(&s.Workload.Stream.FileMB, 1) },
			// Open-loop specs shrink toward the most legible load: a
			// fixed-rate arrival clock over a flat population at a low rate.
			func(s *Spec) bool {
				o := s.Workload.Openload
				if o == nil || o.Arrival == ArrivalFixed {
					return false
				}
				o.Arrival = ArrivalFixed
				o.BurstOn, o.BurstOff = 0, 0
				return true
			},
			func(s *Spec) bool {
				o := s.Workload.Openload
				if o == nil || ((o.Population == PopFlat || o.Population == "") && o.ZipfS == 0) {
					return false
				}
				o.Population = PopFlat
				o.ZipfS = 0
				return true
			},
			func(s *Spec) bool {
				o := s.Workload.Openload
				if o == nil || o.TargetOps <= 50 {
					return false
				}
				o.TargetOps = 50
				return true
			},
			func(s *Spec) bool {
				if !s.Topology.Servers.Gathering {
					return false
				}
				s.Topology.Servers.Gathering = false
				return true
			},
			// Collapse a bridged fabric back to the root's flat medium:
			// placements cleared, segment-targeted outages dropped (they
			// have no target without the fabric).
			func(s *Spec) bool {
				if len(s.Topology.Media) == 0 {
					return false
				}
				net := s.Topology.Media[0].Net
				for _, m := range s.Topology.Media {
					if m.Uplink == "" {
						net = m.Net
						break
					}
				}
				s.Topology.Net = net
				s.Topology.Media = nil
				s.Topology.Servers.Segment = ""
				for i := range s.Topology.Clients {
					s.Topology.Clients[i].Segment = ""
				}
				for i := range s.Topology.Servers.Nodes {
					s.Topology.Servers.Nodes[i].Segment = nil
				}
				for i := range s.Cells {
					s.Cells[i].Segments = nil
				}
				kept := s.Faults.Events[:0]
				for _, ev := range s.Faults.Events {
					if ev.Kind == FaultLinkOutage && ev.LinkOutage.Segment != nil {
						continue
					}
					kept = append(kept, ev)
				}
				s.Faults.Events = kept
				return true
			},
		} {
			cand := cloneSpec(cur)
			if mutate(&cand) && fails(cand) {
				cur, changed = cand, true
			}
		}
	}
	return cur, runs
}

// setInt lowers *p to v, reporting whether that changed anything.
func setInt(p *int, v int) bool {
	if *p == v {
		return false
	}
	*p = v
	return true
}

// simplifyEvent lowers one event's counts to their minimum, reporting
// whether anything changed.
func simplifyEvent(ev *FaultEvent) bool {
	changed := false
	switch ev.Kind {
	case FaultServerCrash:
		changed = setInt(&ev.ServerCrash.Count, 1)
	case FaultLinkOutage:
		changed = setInt(&ev.LinkOutage.Count, 1)
	case FaultBiodLoss:
		changed = setInt(&ev.BiodLoss.Lose, 1)
	case FaultDiskReadError:
		f := ev.DiskReadError
		changed = setInt(&f.Times, 1)
		if f.AfterOps != 0 {
			f.AfterOps = 0
			changed = true
		}
	}
	return changed
}
