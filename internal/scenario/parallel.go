package scenario

import (
	"runtime"
	"sync/atomic"
)

// workerOverride holds the package-wide worker count set by SetWorkers;
// 0 means "use GOMAXPROCS". Atomic because nfsbench sets it once at flag
// parse while tests may run scenarios concurrently.
var workerOverride atomic.Int32

// Workers reports the worker-pool size Run uses: the SetWorkers override
// if one is set, else GOMAXPROCS. Every cell is an independent sim with
// its own buffer ledger and results gather in cell order, so the worker
// count never changes any output byte — only wall-clock time.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers fixes the package-wide worker count (nfsbench -j). n <= 0
// restores the GOMAXPROCS default; 1 forces the sequential in-line path.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int32(n))
}
