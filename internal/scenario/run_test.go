package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// shrink trims a registry spec to a test-sized version: at most the
// first and last cells, small transfers, short measured phases. The
// sweep structure, seeds and fault schedules are preserved.
func shrink(spec Spec) Spec {
	if len(spec.Cells) > 2 {
		spec.Cells = []Cell{spec.Cells[0], spec.Cells[len(spec.Cells)-1]}
	}
	if spec.Workload.Copy != nil {
		c := *spec.Workload.Copy
		c.FileMB = 1
		spec.Workload.Copy = &c
	}
	if spec.Workload.Stream != nil {
		c := *spec.Workload.Stream
		c.FileMB = 1
		spec.Workload.Stream = &c
	}
	if spec.Workload.LADDIS != nil {
		c := *spec.Workload.LADDIS
		c.Measure = 1 * sim.Second
		spec.Workload.LADDIS = &c
	}
	if spec.Workload.Trace != nil {
		c := *spec.Workload.Trace
		c.FileKB = 160
		spec.Workload.Trace = &c
	}
	if spec.Workload.Openload != nil {
		c := *spec.Workload.Openload
		c.Measure = 1 * sim.Second
		if c.TargetOps > 400 {
			c.TargetOps = 400
		}
		spec.Workload.Openload = &c
		// bridgedsat declares 100 clients per leaf segment; the sweep
		// structure (segment trimming, placement, seeds) survives with 2.
		for i := range spec.Topology.Clients {
			if spec.Topology.Clients[i].Count > 2 {
				spec.Topology.Clients[i].Count = 2
			}
		}
	}
	return spec
}

// TestRegistryScenariosRerunDeterministically decodes every registered
// scenario from its JSON form and runs it twice: same seed, same metric
// columns. This is the determinism contract -scenario files rely on.
func TestRegistryScenariosRerunDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered scenario twice")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			blob, err := json.Marshal(shrink(e.Build()))
			if err != nil {
				t.Fatal(err)
			}
			var spec Spec
			if err := json.Unmarshal(blob, &spec); err != nil {
				t.Fatal(err)
			}
			a, err := Run(spec)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(spec)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if len(a.Cells) != len(b.Cells) || len(a.Cells) == 0 {
				t.Fatalf("cell counts differ or empty: %d vs %d", len(a.Cells), len(b.Cells))
			}
			for i := range a.Cells {
				if !reflect.DeepEqual(a.Cells[i].Metrics, b.Cells[i].Metrics) {
					t.Errorf("cell %s: metrics differ between identical runs:\n%+v\n%+v",
						a.Cells[i].Label, a.Cells[i].Metrics, b.Cells[i].Metrics)
				}
			}
		})
	}
}

// TestPartialCrashScenario runs the crash-under-load sweep the legacy
// API could not express: a 2x2 LADDIS grid where one shard crashes
// mid-measure. The cluster must keep serving (ops complete on the
// surviving shard), clients must observe the outage, and the crashed
// shard must come back.
func TestPartialCrashScenario(t *testing.T) {
	spec, ok := Lookup("partialcrash")
	if !ok {
		t.Fatal("partialcrash not registered")
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Crashes != 1 {
			t.Errorf("%s: crashes = %d, want 1", c.Label, c.Crashes)
		}
		if c.Durability == nil || c.Durability.Reboots != 1 {
			t.Errorf("%s: crashed shard did not reboot: %+v", c.Label, c.Durability)
		}
		if c.AchievedOpsPerSec <= 0 {
			t.Errorf("%s: no throughput under partial outage", c.Label)
		}
		if c.Retransmissions == 0 {
			t.Errorf("%s: outage left no client-side trace (0 retransmissions)", c.Label)
		}
		if c.RebootsSeen == 0 {
			t.Errorf("%s: no client detected the reboot", c.Label)
		}
	}
}

// TestFlapStormScenario runs the multi-node flapping storm: staggered
// short-outage crash trains on both shards under sharded write streams.
// Every client-acked byte must survive all eight crashes — on both the
// plain and the Presto build.
func TestFlapStormScenario(t *testing.T) {
	spec, ok := Lookup("flapstorm")
	if !ok {
		t.Fatal("flapstorm not registered")
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		d := c.Durability
		if d == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if d.Crashes < 4 {
			t.Errorf("%s: only %d crashes fired; storm wants >= 4", c.Label, d.Crashes)
		}
		if d.Reboots != d.Crashes {
			t.Errorf("%s: %d crashes but %d reboots", c.Label, d.Crashes, d.Reboots)
		}
		if d.AckedBytes == 0 {
			t.Errorf("%s: checker audited nothing", c.Label)
		}
		if d.LostBytes != 0 {
			t.Errorf("%s: DURABILITY VIOLATED: lost %d bytes: %s", c.Label, d.LostBytes, d.FirstLoss)
		}
	}
	plain, presto := res.Cells[0], res.Cells[1]
	if presto.Durability.RecoveredNVRAMBlocks == 0 {
		t.Error("presto cell replayed no NVRAM blocks")
	}
	if plain.Durability.RecoveredNVRAMBlocks != 0 {
		t.Error("plain cell replayed NVRAM blocks without a board")
	}
}

// TestPerNodeOverrides builds a heterogeneous cluster through the spec:
// shard 1 plain with one disk, shard 2 Presto with a 2-disk stripe and a
// deeper daemon pool, crashed once mid-stream. The override must hold
// across the reboot (only shard 2 replays NVRAM).
func TestPerNodeOverrides(t *testing.T) {
	presto := true
	stripe := 2
	nfsds := 16
	spec := Spec{
		Name: "hetero",
		Seed: 11,
		Topology: Topology{
			Net:     "fddi",
			Clients: []ClientGroup{{Count: 2, Biods: 4, MaxRetries: 64}},
			Servers: Servers{
				Count: 2, Gathering: true,
				Nodes: []NodeOverride{
					{}, // shard 1: homogeneous defaults
					{Presto: &presto, StripeDisks: &stripe, Nfsds: &nfsds},
				},
			},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1, Shard: true}},
		Faults: Faults{
			CheckDurability: true,
			Crashes: []CrashTrain{
				{Node: 1, At: 300 * sim.Millisecond, Outage: 200 * sim.Millisecond, Count: 1},
			},
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	d := c.Durability
	if d == nil || d.Crashes != 1 || d.Reboots != 1 {
		t.Fatalf("crash cycle did not complete: %+v", d)
	}
	if d.LostBytes != 0 {
		t.Fatalf("lost %d acked bytes on the heterogeneous cluster: %s", d.LostBytes, d.FirstLoss)
	}
	if d.RecoveredNVRAMBlocks == 0 {
		t.Error("the Presto override did not survive into recovery (no NVRAM replay)")
	}
}

// TestClientGroups runs two client groups with different biod depths
// against one server and checks both make progress.
func TestClientGroups(t *testing.T) {
	spec := Spec{
		Name: "groups",
		Seed: 7,
		Topology: Topology{
			Net: "fddi",
			Clients: []ClientGroup{
				{Count: 1, Biods: 0},
				{Count: 2, Biods: 7},
			},
			Servers: Servers{Count: 1, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 1}},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.ClientKBps <= 0 {
		t.Fatalf("three grouped clients moved no data: %+v", c.Metrics)
	}
	// 3 clients x 1MB over the measured phase.
	wantKB := 3.0 * 1024
	if got := c.ClientKBps * c.ElapsedSec; got < wantKB*0.99 || got > wantKB*1.01 {
		t.Errorf("stream volume = %.0f KB, want ~%.0f", got, wantKB)
	}
}

// TestRenderSelectsMetrics checks the metric selection drives rendering.
func TestRenderSelectsMetrics(t *testing.T) {
	spec := validSpec()
	spec.Metrics = []string{"client_kb_per_sec", "disk_trans_per_sec"}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range spec.Metrics {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing selected column %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "avg_latency_ms") {
		t.Errorf("rendered result leaked an unselected column:\n%s", out)
	}
}
