package scenario

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/ufs"
)

// Validation coverage for the four storage fault kinds: every rejection
// must be a typed *ValidationError naming the offending event.

func TestValidateStorageFaultTargets(t *testing.T) {
	// Unknown node.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskReadError,
		DiskReadError: &DiskReadErrorFault{Node: 7, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Unknown spindle: the default topology runs one disk per shard.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskReadError,
		DiskReadError: &DiskReadErrorFault{Node: 0, Disk: 3, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Disk -1 (all stripe members) is a valid target.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskReadError,
		DiskReadError: &DiskReadErrorFault{Node: 0, Disk: -1, At: sim.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("disk -1 rejected: %v", err)
	}
}

func TestValidateDiskReadErrorParameters(t *testing.T) {
	// Empty block range.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskReadError,
		DiskReadError: &DiskReadErrorFault{Node: 0, At: sim.Second, BlockFrom: 10, BlockTo: 5},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Media errors outside the stream workload: the copy runner has no
	// error path for I/O-error replies.
	s = faultSpec()
	s.Topology.Clients = []ClientGroup{{Count: 1, Biods: 4}}
	s.Workload = Workload{Kind: KindCopy, Copy: &CopyWorkload{FileMB: 1}}
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskReadError,
		DiskReadError: &DiskReadErrorFault{Node: 0, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")
}

func TestValidateDiskDegradedWindows(t *testing.T) {
	// Factor must exceed 1.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:         FaultDiskDegraded,
		DiskDegraded: &DiskDegradedFault{Node: 0, At: sim.Second, Duration: sim.Second, Factor: 1},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// Overlapping windows on the same spindle.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{
		{Kind: FaultDiskDegraded, DiskDegraded: &DiskDegradedFault{
			Node: 0, At: sim.Second, Duration: sim.Second, Factor: 4}},
		{Kind: FaultDiskDegraded, DiskDegraded: &DiskDegradedFault{
			Node: 0, At: sim.Second + 500*sim.Millisecond, Duration: sim.Second, Factor: 8}},
	}
	wantInvalid(t, s, "faults.events[0]")

	// The same two windows on different shards coexist.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{
		{Kind: FaultDiskDegraded, DiskDegraded: &DiskDegradedFault{
			Node: 0, At: sim.Second, Duration: sim.Second, Factor: 4}},
		{Kind: FaultDiskDegraded, DiskDegraded: &DiskDegradedFault{
			Node: 1, At: sim.Second + 500*sim.Millisecond, Duration: sim.Second, Factor: 8}},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("non-overlapping windows rejected: %v", err)
	}
}

func TestValidateNVRAMLyingSyncRequiresPresto(t *testing.T) {
	// faultSpec runs no boards: a lying-sync fault has nothing to corrupt.
	s := faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:           FaultNVRAMLyingSync,
		NVRAMLyingSync: &NVRAMLyingSyncFault{Node: 0, At: sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")

	// With Presto on, the same event validates.
	s = faultSpec()
	s.Topology.Servers.Presto = true
	s.Faults.Events = []FaultEvent{{
		Kind:           FaultNVRAMLyingSync,
		NVRAMLyingSync: &NVRAMLyingSyncFault{Node: 0, At: sim.Second},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("lying-sync on a presto shard rejected: %v", err)
	}

	// Torn-write arm time must not be negative.
	s = faultSpec()
	s.Faults.Events = []FaultEvent{{
		Kind:          FaultDiskTornWrite,
		DiskTornWrite: &DiskTornWriteFault{Node: 0, At: -sim.Second},
	}}
	wantInvalid(t, s, "faults.events[0]")
}

// lyingSpec is a one-shard Presto stream with a crash mid-stream; with
// the lying event included the board's acked-but-undrained blocks
// evaporate at the power event instead of replaying.
func lyingSpec(lying bool) Spec {
	s := Spec{
		Name: "t-lying",
		Seed: 7,
		Topology: Topology{
			Net:      "ethernet",
			Assembly: AssemblyCluster,
			Clients:  []ClientGroup{{Count: 1, Biods: 4, MaxRetries: 200}},
			Servers:  Servers{Count: 1, Presto: true, Gathering: true},
		},
		Workload: Workload{Kind: KindStream, Stream: &StreamWorkload{FileMB: 2}},
		Faults: Faults{
			CheckDurability: true,
			Events: []FaultEvent{{
				Kind: FaultServerCrash,
				ServerCrash: &ServerCrashFault{
					Node: 0, At: 300 * sim.Millisecond,
					Outage: 100 * sim.Millisecond, Count: 1,
				},
			}},
		},
	}
	if lying {
		s.Faults.Events = append(s.Faults.Events, FaultEvent{
			Kind:           FaultNVRAMLyingSync,
			NVRAMLyingSync: &NVRAMLyingSyncFault{Node: 0, At: 100 * sim.Millisecond},
		})
	}
	return s
}

// TestLyingSyncLosesAckedData is the falsifiability test for the whole
// durability audit: a lying board provably loses client-acked bytes and
// the checker reports it (as expected loss, since the fault was
// scheduled); the identical run with an honest board loses nothing.
func TestLyingSyncLosesAckedData(t *testing.T) {
	res, err := Run(lyingSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Cells[0].Durability
	if d == nil {
		t.Fatal("no durability audit")
	}
	if d.DroppedNVRAMBlocks == 0 {
		t.Fatal("the lying board dropped nothing at the power event")
	}
	if d.LostBytes == 0 {
		t.Fatal("lying board lost no acked bytes; the scenario does not falsify the audit")
	}
	if !d.LossExpected {
		t.Fatalf("scheduled lying-sync loss reported as a durability bug: %s", d.FirstLoss)
	}

	// Control: the honest board replays the same blocks and loses nothing.
	res, err = Run(lyingSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	d = res.Cells[0].Durability
	if d.LostBytes != 0 {
		t.Fatalf("honest board lost %d acked bytes: %s", d.LostBytes, d.FirstLoss)
	}
	if d.DroppedNVRAMBlocks != 0 {
		t.Fatalf("honest board dropped %d blocks", d.DroppedNVRAMBlocks)
	}
	if d.RecoveredNVRAMBlocks == 0 {
		t.Fatal("honest control replayed no NVRAM blocks; the crash hit an empty board and the lying run proved nothing")
	}
}

// TestMediaStormScenario runs the storage-fault registry scenario: media
// errors, a degraded spindle and a torn write across a crash on one
// striped shard. The acceptance contract is the fuzzer's own invariant —
// any acked-byte loss must trace to a scheduled fault.
func TestMediaStormScenario(t *testing.T) {
	spec, ok := Lookup("mediastorm")
	if !ok {
		t.Fatal("mediastorm not registered")
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		d := c.Durability
		if d == nil {
			t.Fatalf("%s: no durability audit", c.Label)
		}
		if d.LostBytes > 0 && !d.LossExpected {
			t.Errorf("%s: DURABILITY VIOLATED: lost %d unscheduled bytes: %s",
				c.Label, d.LostBytes, d.FirstLoss)
		}
		if d.UnaccountedRefs != 0 {
			t.Errorf("%s: %d block refs leaked through the storm", c.Label, d.UnaccountedRefs)
		}
		if d.Crashes != 1 {
			t.Errorf("%s: crashes = %d, want 1", c.Label, d.Crashes)
		}
		if len(d.EventsFired) < 4 {
			t.Errorf("%s: only %d fault transitions recorded, want the full storm", c.Label, len(d.EventsFired))
		}
		if d.AckedWrites == 0 {
			t.Errorf("%s: checker audited nothing", c.Label)
		}
	}
}

// TestFuzzDeterministic runs the same short campaign twice: identical
// outcome, byte for byte — the replay contract behind "report (seed, run)
// and the failure reproduces".
func TestFuzzDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign in -short mode")
	}
	cfg := FuzzConfig{Runs: 4, Seed: 99}
	a, b := Fuzz(cfg), Fuzz(cfg)
	switch {
	case a == nil && b == nil:
		// Campaign passes — still a determinism result.
	case a == nil || b == nil:
		t.Fatalf("one campaign failed, the other passed: %v vs %v", a, b)
	case a.String() != b.String():
		t.Fatalf("same campaign, different failures:\n%s\nvs\n%s", a, b)
	}
}

// TestFuzzSmoke asserts a short fixed-seed campaign upholds both
// invariants on the current engine.
func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign in -short mode")
	}
	if f := Fuzz(FuzzConfig{Runs: 8, Seed: 1}); f != nil {
		t.Fatalf("fuzz campaign found a failure:\n%s", f)
	}
}

// TestFuzzCatchesPlantedBug re-plants the crash-recovery bug this repo
// fixed in an earlier change (remount skips re-claiming indirect-block
// self-references, so recovered files double-allocate) and requires the
// fuzzer to (a) find it and (b) shrink the counterexample to at most
// three fault events — the end-to-end proof that the campaign detects
// durability regressions rather than merely running.
func TestFuzzCatchesPlantedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign in -short mode")
	}
	ufs.DebugSkipIndirectClaim = true
	defer func() { ufs.DebugSkipIndirectClaim = false }()

	// The campaign seed is pinned to one whose 200-run prefix includes a
	// crash/remount schedule with indirect-block traffic (run 107): the
	// planted bug needs a recovery plus post-remount allocation to
	// clobber acked data, which only a fraction of generated specs do.
	f := Fuzz(FuzzConfig{Runs: 200, Seed: 6})
	if f == nil {
		t.Fatal("fuzzer missed the planted remount bug")
	}
	if f.Class != FailDurability {
		t.Fatalf("planted bug classified %q, want %q: %s", f.Class, FailDurability, f.Detail)
	}
	if n := len(f.Shrunk.Faults.Events); n > 3 {
		t.Fatalf("shrinker left %d fault events (want <= 3):\n%s", n, f.JSON())
	}
	if err := f.Shrunk.Validate(); err != nil {
		t.Fatalf("shrunk spec does not validate: %v", err)
	}
}
