// Package stats provides the measurement primitives used by every
// experiment: counters, byte/operation rates, latency recorders and
// time-weighted utilization trackers, all in virtual time.
package stats

import (
	"fmt"

	"repro/internal/sim"
)

// Counter is a monotonically increasing event count with an associated byte
// total, suitable for deriving ops/sec and KB/sec over an interval.
type Counter struct {
	Ops   uint64
	Bytes uint64
}

// Add records one operation moving n bytes.
func (c *Counter) Add(n int) {
	c.Ops++
	c.Bytes += uint64(n)
}

// AddOps records n operations with no byte count.
func (c *Counter) AddOps(n int) { c.Ops += uint64(n) }

// OpsPerSec returns the operation rate over elapsed.
func (c *Counter) OpsPerSec(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Ops) / elapsed.Seconds()
}

// KBPerSec returns the byte rate in KB/s (1 KB = 1024 bytes, as the paper
// reports) over elapsed.
func (c *Counter) KBPerSec(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Bytes) / 1024 / elapsed.Seconds()
}

// Sub returns the counter delta c - o.
func (c Counter) Sub(o Counter) Counter {
	return Counter{Ops: c.Ops - o.Ops, Bytes: c.Bytes - o.Bytes}
}

// Utilization accumulates busy time for a device or CPU so that a
// percentage-busy figure can be reported, matching the paper's
// "server cpu util. (%)" rows.
type Utilization struct {
	busy      sim.Duration
	busySince sim.Time
	active    int
	mark      sim.Time // start of current measurement interval
	markBusy  sim.Duration
}

// Begin records the start of a busy period. Nested Begin/End pairs are
// allowed; the tracker counts wall time during which at least one period is
// open (single-server semantics).
func (u *Utilization) Begin(now sim.Time) {
	if u.active == 0 {
		u.busySince = now
	}
	u.active++
}

// End closes the most recent busy period.
func (u *Utilization) End(now sim.Time) {
	if u.active <= 0 {
		panic("stats: Utilization.End without Begin")
	}
	u.active--
	if u.active == 0 {
		u.busy += now.Sub(u.busySince)
	}
}

// AddBusy directly accrues d of busy time (for costs charged in one shot).
func (u *Utilization) AddBusy(d sim.Duration) { u.busy += d }

// Busy reports accumulated busy time, including any open period up to now.
func (u *Utilization) Busy(now sim.Time) sim.Duration {
	b := u.busy
	if u.active > 0 {
		b += now.Sub(u.busySince)
	}
	return b
}

// Reset marks the start of a fresh measurement interval at now.
func (u *Utilization) Reset(now sim.Time) {
	u.mark = now
	u.markBusy = u.Busy(now)
}

// Percent reports utilization (0–100) over the interval [Reset, now].
func (u *Utilization) Percent(now sim.Time) float64 {
	elapsed := now.Sub(u.mark)
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(u.Busy(now)-u.markBusy) / float64(elapsed)
}

// Latency streams response-time samples into constant memory: an exact
// sum and count back the mean, an exact running max backs Max, and a
// log-scale Histogram backs percentile estimates. No per-sample record
// is kept, so 100x10 sweep grids and thousand-seed fuzz campaigns hold
// the same memory per worker as a single cell.
type Latency struct {
	n    int64
	sum  sim.Duration
	max  sim.Duration
	hist Histogram
}

// Record adds one sample. Negative durations clamp to zero.
func (l *Latency) Record(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	l.n++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.hist.Record(int64(d))
}

// N reports the number of samples.
func (l *Latency) N() int { return int(l.n) }

// Mean reports the average sample, or 0 with no samples. It is exact
// (integer sum over count), not a histogram estimate.
func (l *Latency) Mean() sim.Duration {
	if l.n == 0 {
		return 0
	}
	return l.sum / sim.Duration(l.n)
}

// Percentile estimates the p-th percentile (0 < p <= 100) from the
// histogram: linear interpolation within the covering log-scale bucket,
// clamped to the observed min/max.
func (l *Latency) Percentile(p float64) sim.Duration {
	if l.n == 0 {
		return 0
	}
	return sim.Duration(l.hist.Quantile(p / 100))
}

// Max reports the largest sample, exactly.
func (l *Latency) Max() sim.Duration { return l.max }

// Hist exposes the underlying histogram for merging into roll-ups.
func (l *Latency) Hist() *Histogram { return &l.hist }

// Table is a simple fixed-column text table matching the paper's layout:
// one row label column followed by one column per parameter value.
type Table struct {
	Title   string
	Columns []string // e.g. biod counts
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []string
}

// AddRow appends a labelled row of pre-formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// AddFloatRow appends a row of numbers formatted with the given precision.
func (t *Table) AddFloatRow(label string, prec int, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.*f", prec, v)
	}
	t.AddRow(label, cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	labelW := 0
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r.cells {
			if i < len(colW) && len(c) > colW[i] {
				colW[i] = len(c)
			}
		}
	}
	out := t.Title + "\n"
	out += fmt.Sprintf("%-*s", labelW, "")
	for i, c := range t.Columns {
		out += fmt.Sprintf("  %*s", colW[i], c)
	}
	out += "\n"
	for _, r := range t.rows {
		out += fmt.Sprintf("%-*s", labelW, r.label)
		for i, c := range r.cells {
			w := 0
			if i < len(colW) {
				w = colW[i]
			}
			out += fmt.Sprintf("  %*s", w, c)
		}
		out += "\n"
	}
	return out
}

// Point is one sample on a throughput/latency curve (Figures 2 and 3).
type Point struct {
	X float64 // achieved throughput, ops/sec
	Y float64 // average response time, msec
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Capacity reports the highest throughput achieved with average latency at
// or below capMs, the SPEC-style capacity reading of the curve.
func (s *Series) Capacity(capMs float64) float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Y <= capMs && p.X > best {
			best = p.X
		}
	}
	return best
}

// String renders the series as "x y" rows.
func (s *Series) String() string {
	out := "# " + s.Name + "\n# ops/sec  avg-latency-ms\n"
	for _, p := range s.Points {
		out += fmt.Sprintf("%8.1f  %6.2f\n", p.X, p.Y)
	}
	return out
}
