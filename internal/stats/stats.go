// Package stats provides the measurement primitives used by every
// experiment: counters, byte/operation rates, latency recorders and
// time-weighted utilization trackers, all in virtual time.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Counter is a monotonically increasing event count with an associated byte
// total, suitable for deriving ops/sec and KB/sec over an interval.
type Counter struct {
	Ops   uint64
	Bytes uint64
}

// Add records one operation moving n bytes.
func (c *Counter) Add(n int) {
	c.Ops++
	c.Bytes += uint64(n)
}

// AddOps records n operations with no byte count.
func (c *Counter) AddOps(n int) { c.Ops += uint64(n) }

// OpsPerSec returns the operation rate over elapsed.
func (c *Counter) OpsPerSec(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Ops) / elapsed.Seconds()
}

// KBPerSec returns the byte rate in KB/s (1 KB = 1024 bytes, as the paper
// reports) over elapsed.
func (c *Counter) KBPerSec(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Bytes) / 1024 / elapsed.Seconds()
}

// Sub returns the counter delta c - o.
func (c Counter) Sub(o Counter) Counter {
	return Counter{Ops: c.Ops - o.Ops, Bytes: c.Bytes - o.Bytes}
}

// Utilization accumulates busy time for a device or CPU so that a
// percentage-busy figure can be reported, matching the paper's
// "server cpu util. (%)" rows.
type Utilization struct {
	busy      sim.Duration
	busySince sim.Time
	active    int
	mark      sim.Time // start of current measurement interval
	markBusy  sim.Duration
}

// Begin records the start of a busy period. Nested Begin/End pairs are
// allowed; the tracker counts wall time during which at least one period is
// open (single-server semantics).
func (u *Utilization) Begin(now sim.Time) {
	if u.active == 0 {
		u.busySince = now
	}
	u.active++
}

// End closes the most recent busy period.
func (u *Utilization) End(now sim.Time) {
	if u.active <= 0 {
		panic("stats: Utilization.End without Begin")
	}
	u.active--
	if u.active == 0 {
		u.busy += now.Sub(u.busySince)
	}
}

// AddBusy directly accrues d of busy time (for costs charged in one shot).
func (u *Utilization) AddBusy(d sim.Duration) { u.busy += d }

// Busy reports accumulated busy time, including any open period up to now.
func (u *Utilization) Busy(now sim.Time) sim.Duration {
	b := u.busy
	if u.active > 0 {
		b += now.Sub(u.busySince)
	}
	return b
}

// Reset marks the start of a fresh measurement interval at now.
func (u *Utilization) Reset(now sim.Time) {
	u.mark = now
	u.markBusy = u.Busy(now)
}

// Percent reports utilization (0–100) over the interval [Reset, now].
func (u *Utilization) Percent(now sim.Time) float64 {
	elapsed := now.Sub(u.mark)
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(u.Busy(now)-u.markBusy) / float64(elapsed)
}

// Latency records a set of response-time samples.
type Latency struct {
	samples []sim.Duration
	sum     sim.Duration
}

// Record adds one sample.
func (l *Latency) Record(d sim.Duration) {
	l.samples = append(l.samples, d)
	l.sum += d
}

// N reports the number of samples.
func (l *Latency) N() int { return len(l.samples) }

// Mean reports the average sample, or 0 with no samples.
func (l *Latency) Mean() sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / sim.Duration(len(l.samples))
}

// Percentile reports the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *Latency) Percentile(p float64) sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]sim.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Max reports the largest sample.
func (l *Latency) Max() sim.Duration {
	var m sim.Duration
	for _, s := range l.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Table is a simple fixed-column text table matching the paper's layout:
// one row label column followed by one column per parameter value.
type Table struct {
	Title   string
	Columns []string // e.g. biod counts
	rows    []tableRow
}

type tableRow struct {
	label string
	cells []string
}

// AddRow appends a labelled row of pre-formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// AddFloatRow appends a row of numbers formatted with the given precision.
func (t *Table) AddFloatRow(label string, prec int, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.*f", prec, v)
	}
	t.AddRow(label, cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	labelW := 0
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r.cells {
			if i < len(colW) && len(c) > colW[i] {
				colW[i] = len(c)
			}
		}
	}
	out := t.Title + "\n"
	out += fmt.Sprintf("%-*s", labelW, "")
	for i, c := range t.Columns {
		out += fmt.Sprintf("  %*s", colW[i], c)
	}
	out += "\n"
	for _, r := range t.rows {
		out += fmt.Sprintf("%-*s", labelW, r.label)
		for i, c := range r.cells {
			w := 0
			if i < len(colW) {
				w = colW[i]
			}
			out += fmt.Sprintf("  %*s", w, c)
		}
		out += "\n"
	}
	return out
}

// Point is one sample on a throughput/latency curve (Figures 2 and 3).
type Point struct {
	X float64 // achieved throughput, ops/sec
	Y float64 // average response time, msec
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Capacity reports the highest throughput achieved with average latency at
// or below capMs, the SPEC-style capacity reading of the curve.
func (s *Series) Capacity(capMs float64) float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Y <= capMs && p.X > best {
			best = p.X
		}
	}
	return best
}

// String renders the series as "x y" rows.
func (s *Series) String() string {
	out := "# " + s.Name + "\n# ops/sec  avg-latency-ms\n"
	for _, p := range s.Points {
		out += fmt.Sprintf("%8.1f  %6.2f\n", p.X, p.Y)
	}
	return out
}
