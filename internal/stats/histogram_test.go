package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// Every value must land in a bucket whose bounds bracket it, and bucket
// lower bounds must be strictly increasing.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i := 1; i < HistBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d then %d",
				i, BucketBound(i-1), BucketBound(i))
		}
	}
	vals := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1000,
		8191, 8192, 1 << 20, (1 << 40) + 12345, 1<<62 + 1}
	for _, v := range vals {
		i := BucketIndex(v)
		if i < 0 || i >= HistBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of range", v, i)
		}
		lo := BucketBound(i)
		if v < lo {
			t.Fatalf("value %d below its bucket %d lower bound %d", v, i, lo)
		}
		if i+1 < HistBuckets {
			if hi := BucketBound(i + 1); v >= hi {
				t.Fatalf("value %d at/above bucket %d upper bound %d", v, i, hi)
			}
		}
	}
	// Exact buckets for tiny values.
	for v := int64(0); v < 4; v++ {
		if got := BucketIndex(v); got != int(v) {
			t.Fatalf("BucketIndex(%d) = %d, want exact bucket", v, got)
		}
	}
	if BucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile must be 0")
	}
	// All mass in one exact bucket: every quantile is that value.
	for i := 0; i < 10; i++ {
		h.Record(3)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Fatalf("single-value histogram Quantile(%g) = %g, want 3", q, got)
		}
	}
	// Uniform 0..3 over exact buckets: median interpolates between 1 and 2.
	var u Histogram
	for v := int64(0); v < 4; v++ {
		u.Record(v)
	}
	if p50 := u.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Fatalf("uniform{0,1,2,3} p50 = %g, want within [1,2]", p50)
	}
	if p0 := u.Quantile(0); p0 != 0 {
		t.Fatalf("p0 = %g, want 0", p0)
	}
	if p100 := u.Quantile(1); p100 != 3 {
		t.Fatalf("p100 = %g, want 3", p100)
	}
	// Quantiles are monotone in q and clamped to [min, max].
	var r Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		r.Record(rng.Int63n(1_000_000))
	}
	prev := -1.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
		v := r.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: Quantile(%g) = %g < %g", q, v, prev)
		}
		if v < float64(r.MinSeen) || v > float64(r.MaxSeen) {
			t.Fatalf("Quantile(%g) = %g outside [%d, %d]", q, v, r.MinSeen, r.MaxSeen)
		}
		prev = v
	}
	// With 4 sub-buckets per octave, an interpolated quantile can be off
	// from the exact order statistic by at most one bucket width, i.e. a
	// relative error under 25%.
	exact := make([]int64, 0, 5000)
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		exact = append(exact, rng.Int63n(1_000_000))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := r.Quantile(q)
		want := float64(exact[int(q*float64(len(exact)))-1])
		if got < want*0.75 || got > want*1.25 {
			t.Fatalf("Quantile(%g) = %g, exact %g: outside 25%% bucket bound", q, got, want)
		}
	}
}

func TestHistogramMergeAssociativity(t *testing.T) {
	mk := func(seed int64, n int) *Histogram {
		h := &Histogram{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.Record(rng.Int63n(1 << 30))
		}
		return h
	}
	a, b, c := mk(1, 1000), mk(2, 500), mk(3, 2000)

	// (a+b)+c
	left := &Histogram{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := &Histogram{}
	bc.Merge(b)
	bc.Merge(c)
	right := &Histogram{}
	right.Merge(a)
	right.Merge(bc)

	if *left != *right {
		t.Fatalf("merge is not associative: (a+b)+c != a+(b+c)")
	}
	if left.Count != 3500 {
		t.Fatalf("merged count = %d, want 3500", left.Count)
	}
	// Merging an empty or nil histogram is a no-op.
	before := *left
	left.Merge(&Histogram{})
	left.Merge(nil)
	if *left != before {
		t.Fatalf("merging empty/nil changed the histogram")
	}
}

// Identical seeds must produce bit-identical histograms and quantiles —
// the property the scenario layer's trace determinism rests on.
func TestHistogramDeterminism(t *testing.T) {
	run := func() (Histogram, []float64) {
		var h Histogram
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			h.Record(rng.Int63n(10_000_000))
		}
		qs := make([]float64, 0, 4)
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			qs = append(qs, h.Quantile(q))
		}
		return h, qs
	}
	h1, q1 := run()
	h2, q2 := run()
	if h1 != h2 {
		t.Fatalf("histograms differ across identical seeds")
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("quantile %d differs across identical seeds: %g vs %g", i, q1[i], q2[i])
		}
	}
}
