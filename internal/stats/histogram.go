package stats

import (
	"math"
	"math/bits"
)

// HistBuckets is the number of buckets in a Histogram: values 0..3 get
// exact buckets, and every power of two above that is split into four
// sub-buckets, enough to cover the full non-negative int64 range
// (exponents 2..62).
const HistBuckets = 4 + 4*61

// Histogram is a streaming log-scale histogram over non-negative int64
// values (latencies in microseconds, batch sizes, byte counts). It uses
// fixed buckets — four sub-buckets per power of two — so memory is
// constant regardless of sample count and no per-sample record is kept.
// All bucket math is integer-only, so recording is deterministic and
// Merge is exactly associative.
//
// The zero value is an empty histogram ready for use.
type Histogram struct {
	Count   int64
	Sum     int64
	MinSeen int64 // valid only when Count > 0
	MaxSeen int64
	buckets [HistBuckets]int64
}

// BucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0.
func BucketIndex(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= 2
	sub := int(uint64(v)>>(e-2)) & 3
	return 4*(e-1) + sub
}

// BucketBound reports the inclusive lower bound of bucket i; bucket i
// covers [BucketBound(i), BucketBound(i+1)). An index at or past
// HistBuckets clamps to MaxInt64 so the last bucket has a finite upper
// bound.
func BucketBound(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	if i >= HistBuckets {
		return math.MaxInt64
	}
	e := i/4 + 1
	sub := i % 4
	return int64(4+sub) << (e - 2)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.MinSeen {
		h.MinSeen = v
	}
	if v > h.MaxSeen {
		h.MaxSeen = v
	}
	h.Count++
	h.Sum += v
	h.buckets[BucketIndex(v)]++
}

// N reports the number of recorded samples.
func (h *Histogram) N() int64 { return h.Count }

// Mean reports the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Bucket reports the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the covering bucket, clamped to the observed
// min/max so single-bucket distributions report exact values.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := float64(BucketBound(i))
			hi := float64(BucketBound(i + 1))
			frac := (rank - float64(cum)) / float64(n)
			v := lo + (hi-lo)*frac
			if v < float64(h.MinSeen) {
				v = float64(h.MinSeen)
			}
			if v > float64(h.MaxSeen) {
				v = float64(h.MaxSeen)
			}
			return v
		}
		cum += n
	}
	return float64(h.MaxSeen)
}

// Merge adds every bucket of o into h. Merging is element-wise addition,
// so it is commutative and exactly associative: merging per-client
// histograms in any order yields identical quantiles.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinSeen < h.MinSeen {
		h.MinSeen = o.MinSeen
	}
	if o.MaxSeen > h.MaxSeen {
		h.MaxSeen = o.MaxSeen
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}
