package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCounterRates(t *testing.T) {
	var c Counter
	c.Add(8192)
	c.Add(8192)
	if c.Ops != 2 || c.Bytes != 16384 {
		t.Fatalf("counter = %+v", c)
	}
	if got := c.OpsPerSec(2 * sim.Second); got != 1 {
		t.Fatalf("OpsPerSec = %v", got)
	}
	if got := c.KBPerSec(sim.Second); got != 16 {
		t.Fatalf("KBPerSec = %v", got)
	}
	if c.OpsPerSec(0) != 0 {
		t.Fatal("zero-interval rate not zero")
	}
}

func TestCounterSub(t *testing.T) {
	a := Counter{Ops: 10, Bytes: 100}
	b := Counter{Ops: 4, Bytes: 30}
	d := a.Sub(b)
	if d.Ops != 6 || d.Bytes != 70 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestUtilizationNested(t *testing.T) {
	var u Utilization
	u.Begin(0)
	u.Begin(sim.Time(10)) // nested
	u.End(sim.Time(20))
	u.End(sim.Time(30)) // closes at 30: busy 0..30
	if got := u.Busy(sim.Time(40)); got != 30 {
		t.Fatalf("Busy = %v", got)
	}
}

func TestUtilizationPercentInterval(t *testing.T) {
	var u Utilization
	u.Begin(0)
	u.End(sim.Time(50))
	u.Reset(sim.Time(100))
	u.Begin(sim.Time(100))
	u.End(sim.Time(150))
	if got := u.Percent(sim.Time(200)); got != 50 {
		t.Fatalf("Percent = %v, want 50", got)
	}
}

func TestUtilizationEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	var u Utilization
	u.End(0)
}

func TestLatencyStats(t *testing.T) {
	var l Latency
	for _, d := range []sim.Duration{10, 20, 30, 40, 100} {
		l.Record(d * sim.Millisecond)
	}
	if l.N() != 5 {
		t.Fatalf("N = %d", l.N())
	}
	if got := l.Mean(); got != 40*sim.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := l.Max(); got != 100*sim.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	// Percentiles are histogram estimates: bounded by the observed range
	// and ordered, not exact order statistics.
	p50, p100 := l.Percentile(50), l.Percentile(100)
	if p50 < 10*sim.Millisecond || p50 > 40*sim.Millisecond {
		t.Fatalf("P50 = %v, want within [10ms, 40ms]", p50)
	}
	if p100 != 100*sim.Millisecond {
		t.Fatalf("P100 = %v, want the clamped max", p100)
	}
	if p50 > p100 {
		t.Fatalf("percentiles not monotone: P50 %v > P100 %v", p50, p100)
	}
}

// TestLatencyConstantMemory is the streaming contract: a million samples
// must not grow the recorder — it has no per-sample storage to grow.
func TestLatencyConstantMemory(t *testing.T) {
	var l Latency
	for i := 0; i < 1_000_000; i++ {
		l.Record(sim.Duration(i % 50000))
	}
	if l.N() != 1_000_000 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Hist().Count != 1_000_000 {
		t.Fatalf("histogram count = %d", l.Hist().Count)
	}
	if m := l.Mean(); m != sim.Duration(24999) && m != sim.Duration(25000) {
		t.Fatalf("Mean = %v", m)
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(95) != 0 || l.Max() != 0 {
		t.Fatal("empty latency stats not zero")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(samples []uint16, p uint8) bool {
		if len(samples) == 0 {
			return true
		}
		var l Latency
		var max sim.Duration
		for _, s := range samples {
			d := sim.Duration(s)
			l.Record(d)
			if d > max {
				max = d
			}
		}
		pct := float64(p%100) + 1
		v := l.Percentile(pct)
		return v >= 0 && v <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Demo", Columns: []string{"0", "15"}}
	tab.AddRow("label only")
	tab.AddFloatRow("speed", 0, 165.4, 674.2)
	out := tab.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "165") || !strings.Contains(out, "674") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestSeriesCapacity(t *testing.T) {
	var s Series
	s.Add(100, 10)
	s.Add(200, 30)
	s.Add(300, 80) // over the cap
	if got := s.Capacity(50); got != 200 {
		t.Fatalf("Capacity = %v, want 200", got)
	}
	if got := s.Capacity(5); got != 0 {
		t.Fatalf("Capacity below all = %v", got)
	}
}

func TestSeriesString(t *testing.T) {
	s := Series{Name: "curve"}
	s.Add(123.4, 5.6)
	out := s.String()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "123.4") {
		t.Fatalf("render: %s", out)
	}
}
