package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestAtFiresInOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != Time(30*Millisecond) {
		t.Fatalf("final clock %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Millisecond, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At(-1) did not panic")
		}
	}()
	s.At(-1, func() {})
}

func TestCancelledEventDoesNotFire(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(Millisecond, func() { fired = true })
	e.Cancel()
	s.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10*Millisecond, func() { fired++ })
	s.At(50*Millisecond, func() { fired++ })
	end := s.Run(Time(20 * Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != Time(20*Millisecond) {
		t.Fatalf("end = %v, want 20ms", end)
	}
	// Continue to completion.
	s.Run(0)
	if fired != 2 {
		t.Fatalf("fired = %d after full run, want 2", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	end := s.Run(Time(7 * Second))
	if end != Time(7*Second) {
		t.Fatalf("end = %v, want 7s", end)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		wake = p.Now()
	})
	s.Run(0)
	if wake != Time(42*Millisecond) {
		t.Fatalf("woke at %v, want 42ms", wake)
	}
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d after completion, want 0", s.NumProcs())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New(1)
		var log []string
		s.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10 * Millisecond)
				log = append(log, "a")
			}
		})
		s.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(15 * Millisecond)
				log = append(log, "b")
			}
		})
		s.Run(0)
		return log
	}
	first := run()
	// a wakes at 10, 20, 30; b at 15, 30. At t=30 b's wakeup was scheduled
	// first (at t=15) so it fires before a's (scheduled at t=20).
	want := []string{"a", "b", "a", "b", "a"}
	if len(first) != len(want) {
		t.Fatalf("log = %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("non-deterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSpawnAfter(t *testing.T) {
	s := New(1)
	var start Time
	s.SpawnAfter(100*Millisecond, "late", func(p *Proc) { start = p.Now() })
	s.Run(0)
	if start != Time(100*Millisecond) {
		t.Fatalf("started at %v, want 100ms", start)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	s.At(Millisecond, func() {
		if c.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", c.Waiters())
		}
		c.Signal()
	})
	s.At(2*Millisecond, func() { c.Broadcast() })
	s.Run(0)
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestCondWaitTimeoutExpires(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var signaled bool
	var woke Time
	s.Spawn("w", func(p *Proc) {
		signaled = c.WaitTimeout(p, 5*Millisecond)
		woke = p.Now()
	})
	s.Run(0)
	if signaled {
		t.Fatal("WaitTimeout reported signaled on timeout")
	}
	if woke != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if c.Waiters() != 0 {
		t.Fatalf("stale waiter left on cond")
	}
}

func TestCondWaitTimeoutSignaled(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var signaled bool
	var woke Time
	s.Spawn("w", func(p *Proc) {
		signaled = c.WaitTimeout(p, 50*Millisecond)
		woke = p.Now()
	})
	s.At(3*Millisecond, func() { c.Signal() })
	s.Run(0)
	if !signaled {
		t.Fatal("WaitTimeout reported timeout despite signal")
	}
	if woke != Time(3*Millisecond) {
		t.Fatalf("woke at %v, want 3ms", woke)
	}
}

func TestSignalAfterTimeoutSkipsDeadWaiter(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	timedOut := false
	got := false
	s.Spawn("t", func(p *Proc) {
		if !c.WaitTimeout(p, Millisecond) {
			timedOut = true
		}
	})
	s.SpawnAfter(2*Millisecond, "w", func(p *Proc) {
		c.Wait(p)
		got = true
	})
	s.At(3*Millisecond, func() { c.Signal() })
	s.Run(0)
	if !timedOut {
		t.Fatal("first waiter should have timed out")
	}
	if !got {
		t.Fatal("signal was consumed by a timed-out waiter")
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	s.Run(0)
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if r.Acquires() != 3 {
		t.Fatalf("Acquires = %d, want 3", r.Acquires())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New(1)
	r := NewResource(s, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		s.Spawn("u", func(p *Proc) {
			r.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	s.Run(0)
	// Two run in parallel, then the next two.
	want := []Time{Time(10 * Millisecond), Time(10 * Millisecond), Time(20 * Millisecond), Time(20 * Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	s.Spawn("u", func(p *Proc) {
		r.Use(p, 25*Millisecond)
	})
	s.Run(Time(100 * Millisecond))
	got := r.Utilization()
	if got < 0.249 || got > 0.251 {
		t.Fatalf("Utilization = %v, want 0.25", got)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire failed on idle resource")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire succeeded on busy resource")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestQueuePutGet(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	s.At(Millisecond, func() { q.Put(1); q.Put(2) })
	s.At(2*Millisecond, func() { q.Put(3) })
	s.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 2)
	if !q.Put(1) || !q.Put(2) {
		t.Fatal("puts under capacity failed")
	}
	if q.Put(3) {
		t.Fatal("put over capacity accepted")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestByteQueueLimit(t *testing.T) {
	s := New(1)
	q := NewByteQueue[string](s, 0, 10, func(v string) int { return len(v) })
	if !q.Put("hello") { // 5 bytes
		t.Fatal("put failed")
	}
	if !q.Put("hi") { // 7 total
		t.Fatal("put failed")
	}
	if q.Put("worlds") { // would be 13
		t.Fatal("byte-limit put accepted")
	}
	if q.Bytes() != 7 {
		t.Fatalf("Bytes = %d, want 7", q.Bytes())
	}
	if v, ok := q.TryGet(); !ok || v != "hello" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
	if q.Bytes() != 2 {
		t.Fatalf("Bytes = %d after get, want 2", q.Bytes())
	}
}

func TestQueueGetTimeout(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	var ok bool
	var woke Time
	s.Spawn("c", func(p *Proc) {
		_, ok = q.GetTimeout(p, 5*Millisecond)
		woke = p.Now()
	})
	s.Run(0)
	if ok {
		t.Fatal("GetTimeout returned ok on empty queue")
	}
	if woke != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestQueueGetTimeoutDelivers(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	var got int
	var ok bool
	s.Spawn("c", func(p *Proc) {
		got, ok = q.GetTimeout(p, 50*Millisecond)
	})
	s.At(Millisecond, func() { q.Put(9) })
	s.Run(0)
	if !ok || got != 9 {
		t.Fatalf("GetTimeout = %d,%v; want 9,true", got, ok)
	}
}

func TestQueueScan(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	for _, v := range []int{4, 8, 15, 16, 23} {
		q.Put(v)
	}
	v, found := q.Scan(func(x int) bool { return x > 10 }, false)
	if !found || v != 15 {
		t.Fatalf("Scan = %d,%v; want 15,true", v, found)
	}
	if q.Len() != 5 {
		t.Fatalf("non-removing scan changed length to %d", q.Len())
	}
	v, found = q.Scan(func(x int) bool { return x > 10 }, true)
	if !found || v != 15 {
		t.Fatalf("removing Scan = %d,%v; want 15,true", v, found)
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d after removing scan, want 4", q.Len())
	}
	// FIFO order preserved around the removal.
	want := []int{4, 8, 16, 23}
	for _, w := range want {
		got, _ := q.TryGet()
		if got != w {
			t.Fatalf("order disturbed: got %d want %d", got, w)
		}
	}
}

func TestQueueScanNotFound(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	q.Put(1)
	if _, found := q.Scan(func(int) bool { return false }, true); found {
		t.Fatal("Scan found a nonexistent item")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Microsecond, "500µs"},
		{8 * Millisecond, "8.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Same seed and same structure of spawned work must produce identical
	// event counts and final clocks.
	f := func(seed int64, n uint8) bool {
		run := func() (Time, uint64) {
			s := New(seed)
			c := NewCond(s)
			r := NewResource(s, 2)
			for i := 0; i < int(n%8)+2; i++ {
				s.Spawn("p", func(p *Proc) {
					d := Duration(s.Rand().Intn(1000)+1) * Microsecond
					p.Sleep(d)
					r.Use(p, d)
					c.Signal()
				})
			}
			s.Spawn("w", func(p *Proc) {
				c.WaitTimeout(p, 100*Millisecond)
			})
			end := s.Run(0)
			return end, s.EventsFired()
		}
		t1, e1 := run()
		t2, e2 := run()
		return t1 == t2 && e1 == e2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsStress(t *testing.T) {
	s := New(7)
	r := NewResource(s, 4)
	done := 0
	const n = 500
	for i := 0; i < n; i++ {
		s.Spawn("p", func(p *Proc) {
			p.Sleep(Duration(s.Rand().Intn(100)) * Microsecond)
			r.Use(p, Duration(s.Rand().Intn(50)+1)*Microsecond)
			done++
		})
	}
	s.Run(0)
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d, want 0", s.NumProcs())
	}
}
