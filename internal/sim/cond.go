package sim

// Cond is a condition variable for simulation processes. Waiters are woken
// in FIFO order. Unlike sync.Cond there is no associated lock: the kernel's
// one-process-at-a-time discipline makes state inspection before Wait safe.
type Cond struct {
	sim     *Sim
	waiters []*condWaiter
}

type condWaiter struct {
	p        *Proc
	signaled bool
	removed  bool
	timeout  *Event
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim) *Cond { return &Cond{sim: s} }

// Waiters reports how many processes are currently blocked on the Cond.
func (c *Cond) Waiters() int {
	n := 0
	for _, w := range c.waiters {
		if !w.removed {
			n++
		}
	}
	return n
}

// Wait blocks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	w := &condWaiter{p: p}
	c.waiters = append(c.waiters, w)
	p.yield()
}

// WaitTimeout blocks p until signaled or until d elapses. It reports true
// if the process was signaled, false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	w := &condWaiter{p: p}
	w.timeout = c.sim.At(d, func() {
		// Timed out: detach from the wait list and wake the process.
		w.removed = true
		c.sim.dispatch(p)
	})
	c.waiters = append(c.waiters, w)
	p.yield()
	return w.signaled
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// waiter was woken.
func (c *Cond) Signal() bool {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.removed {
			continue
		}
		c.wake(w)
		return true
	}
	return false
}

// Broadcast wakes all waiting processes in FIFO order. It returns the
// number woken.
func (c *Cond) Broadcast() int {
	n := 0
	for c.Signal() {
		n++
	}
	return n
}

func (c *Cond) wake(w *condWaiter) {
	w.signaled = true
	w.removed = true
	w.timeout.Cancel()
	p := w.p
	c.sim.At(0, func() { c.sim.dispatch(p) })
}

// Resource is a counting semaphore with FIFO admission, used to model
// servers with finite concurrency (a CPU, a disk arm, an nfsd pool slot).
// It also tracks busy time so utilization can be reported.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	cond     *Cond

	busy      Duration // accumulated (inUse × elapsed) time
	lastStamp Time
	acquires  uint64
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity, cond: NewCond(s)}
}

func (r *Resource) stamp() {
	now := r.sim.Now()
	r.busy += Duration(int64(now.Sub(r.lastStamp)) * int64(r.inUse))
	r.lastStamp = now
}

// Acquire blocks p until a slot is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.cond.Wait(p)
	}
	r.stamp()
	r.inUse++
	r.acquires++
}

// TryAcquire takes a slot if one is free without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.stamp()
	r.inUse++
	r.acquires++
	return true
}

// Release frees a slot and admits the longest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.stamp()
	r.inUse--
	r.cond.Signal()
}

// Use acquires the resource, holds it for d, and releases it; the classic
// "consume d of service time" idiom.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports the number of slots currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquires reports the total number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime reports the accumulated slot-busy time up to the current instant.
func (r *Resource) BusyTime() Duration {
	r.stamp()
	return r.busy
}

// Utilization reports mean utilization (busy time / (capacity × elapsed))
// over the interval from simulation start to now.
func (r *Resource) Utilization() float64 {
	now := r.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(r.BusyTime()) / (float64(now) * float64(r.capacity))
}
