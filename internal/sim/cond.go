package sim

// Cond is a condition variable for simulation processes. Waiters are woken
// in FIFO order. Unlike sync.Cond there is no associated lock: the kernel's
// one-process-at-a-time discipline makes state inspection before Wait safe.
//
// The wait list is a head-indexed slice of pooled waiter records, so the
// steady-state wait/signal cycle allocates nothing and the backing array is
// not retained by repeated front-pops.
type Cond struct {
	sim     *Sim
	waiters []*condWaiter
	head    int
}

// condWaiter is one blocked process. Records are pooled on the Sim: a
// waiter is detached from its Cond before the owning process resumes, so
// the process can safely return the record to the pool on wake-up.
type condWaiter struct {
	c        *Cond
	p        *Proc
	signaled bool
	removed  bool
	timeout  Event
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Sim) *Cond { return &Cond{sim: s} }

// Init (re)binds c to s and empties the wait list. It lets callers embed a
// Cond by value inside pooled records instead of allocating with NewCond.
func (c *Cond) Init(s *Sim) {
	c.sim = s
	c.waiters = c.waiters[:0]
	c.head = 0
}

func (s *Sim) newWaiter(c *Cond, p *Proc) *condWaiter {
	if n := len(s.freeWaiters); n > 0 {
		w := s.freeWaiters[n-1]
		s.freeWaiters = s.freeWaiters[:n-1]
		w.c, w.p = c, p
		w.signaled, w.removed = false, false
		w.timeout = Event{}
		return w
	}
	return &condWaiter{c: c, p: p}
}

func (s *Sim) putWaiter(w *condWaiter) {
	w.c, w.p = nil, nil
	s.freeWaiters = append(s.freeWaiters, w)
}

// A WaitTimeout deadline event carries its condWaiter as a typed target;
// the event loop detaches the waiter from its Cond eagerly (rather than
// leaving a tombstone for Signal to sweep) and dispatches the parked
// process — which is what makes the record safe to recycle the moment
// WaitTimeout returns.

// detach removes w from the wait list, preserving FIFO order.
func (c *Cond) detach(w *condWaiter) {
	for i := c.head; i < len(c.waiters); i++ {
		if c.waiters[i] == w {
			copy(c.waiters[i:], c.waiters[i+1:])
			c.waiters[len(c.waiters)-1] = nil
			c.waiters = c.waiters[:len(c.waiters)-1]
			if c.head == len(c.waiters) {
				c.waiters = c.waiters[:0]
				c.head = 0
			}
			return
		}
	}
}

// Waiters reports how many processes are currently blocked on the Cond.
func (c *Cond) Waiters() int {
	n := 0
	for _, w := range c.waiters[c.head:] {
		if !w.removed {
			n++
		}
	}
	return n
}

// Wait blocks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	w := c.sim.newWaiter(c, p)
	c.waiters = append(c.waiters, w)
	p.waiting = w
	p.yield() // a Kill unwinds from here; Kill already recycled the waiter
	p.waiting = nil
	// Only a Signal resumes a plain Wait, and Signal pops the waiter from
	// the list first, so the record is ours alone again.
	c.sim.putWaiter(w)
}

// WaitTimeout blocks p until signaled or until d elapses. It reports true
// if the process was signaled, false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	w := c.sim.newWaiter(c, p)
	e := c.sim.schedule(d, nil, nil, w)
	w.timeout = Event{e: e, gen: e.gen}
	c.waiters = append(c.waiters, w)
	p.waiting = w
	p.yield() // a Kill unwinds from here; Kill already recycled the waiter
	p.waiting = nil
	signaled := w.signaled
	c.sim.putWaiter(w)
	return signaled
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// waiter was woken.
func (c *Cond) Signal() bool {
	for c.head < len(c.waiters) {
		w := c.waiters[c.head]
		c.waiters[c.head] = nil
		c.head++
		c.compact()
		if w.removed {
			continue
		}
		c.wake(w)
		return true
	}
	return false
}

// compact reclaims the dead prefix of the wait list. Without it a cond
// whose list never fully drains (an idle daemon pool re-waiting after
// every signal) would grow its slice by one slot per wake forever.
func (c *Cond) compact() {
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
		return
	}
	if c.head >= 16 && c.head >= len(c.waiters)/2 {
		n := copy(c.waiters, c.waiters[c.head:])
		tail := c.waiters[n:]
		for i := range tail {
			tail[i] = nil
		}
		c.waiters = c.waiters[:n]
		c.head = 0
	}
}

// Broadcast wakes all waiting processes in FIFO order. It returns the
// number woken.
func (c *Cond) Broadcast() int {
	n := 0
	for c.Signal() {
		n++
	}
	return n
}

func (c *Cond) wake(w *condWaiter) {
	w.signaled = true
	w.removed = true
	w.timeout.Cancel()
	c.sim.wakeProc(w.p)
}

// Resource is a counting semaphore with FIFO admission, used to model
// servers with finite concurrency (a CPU, a disk arm, an nfsd pool slot).
// It also tracks busy time so utilization can be reported.
type Resource struct {
	sim      *Sim
	capacity int
	inUse    int
	cond     *Cond

	busy      Duration // accumulated (inUse × elapsed) time
	lastStamp Time
	acquires  uint64
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(s *Sim, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity, cond: NewCond(s)}
}

func (r *Resource) stamp() {
	now := r.sim.Now()
	r.busy += Duration(int64(now.Sub(r.lastStamp)) * int64(r.inUse))
	r.lastStamp = now
}

// Acquire blocks p until a slot is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.cond.Wait(p)
	}
	r.stamp()
	r.inUse++
	r.acquires++
}

// TryAcquire takes a slot if one is free without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.stamp()
	r.inUse++
	r.acquires++
	return true
}

// Release frees a slot and admits the longest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.stamp()
	r.inUse--
	r.cond.Signal()
}

// Use acquires the resource, holds it for d, and releases it; the classic
// "consume d of service time" idiom. The release is deferred so a process
// killed mid-hold does not strand the slot.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	defer r.Release()
	p.Sleep(d)
}

// InUse reports the number of slots currently held.
func (r *Resource) InUse() int { return r.inUse }

// Acquires reports the total number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// BusyTime reports the accumulated slot-busy time up to the current instant.
func (r *Resource) BusyTime() Duration {
	r.stamp()
	return r.busy
}

// Utilization reports mean utilization (busy time / (capacity × elapsed))
// over the interval from simulation start to now.
func (r *Resource) Utilization() float64 {
	now := r.sim.Now()
	if now == 0 {
		return 0
	}
	return float64(r.BusyTime()) / (float64(now) * float64(r.capacity))
}
