package sim

import "testing"

// TestWeakFiresWhileOrdinaryWorkRemains pins the live half of the weak
// contract: a weak tick chain fires at every period covered by ordinary
// work, and the final drop does not advance the clock.
func TestWeakFiresWhileOrdinaryWorkRemains(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		s.AtWeak(30*Millisecond, tick)
	}
	s.AtWeak(30*Millisecond, tick)
	s.At(100*Millisecond, func() {}) // ordinary work quiesces at t=100ms
	end := s.Run(0)
	if end != Time(100*Millisecond) {
		t.Fatalf("run ended at %v, want 100ms: weak tick extended quiesce", end)
	}
	want := []Time{Time(30 * Millisecond), Time(60 * Millisecond), Time(90 * Millisecond)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i, at := range want {
		if ticks[i] != at {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], at)
		}
	}
}

// TestWeakAloneNeverFires pins the idle half: with no ordinary work at
// all, a weak event is dropped silently and the clock stays put.
func TestWeakAloneNeverFires(t *testing.T) {
	s := New(1)
	fired := false
	s.AtWeak(10*Millisecond, func() { fired = true })
	if end := s.Run(0); end != 0 {
		t.Fatalf("run ended at %v, want 0", end)
	}
	if fired {
		t.Fatal("weak event fired with no ordinary work pending")
	}
}

// TestWeakIgnoresCancelledCorpses is the case that motivated weak events:
// cancelled-but-unpopped records (stale retransmission deadlines) must not
// count as live work, or a sampler would keep re-arming through dead air.
func TestWeakIgnoresCancelledCorpses(t *testing.T) {
	s := New(1)
	corpse := s.At(1*Second, func() { t.Fatal("cancelled event fired") })
	corpse.Cancel()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		s.AtWeak(10*Millisecond, tick)
	}
	s.AtWeak(10*Millisecond, tick)
	s.At(25*Millisecond, func() {})
	if end := s.Run(0); end != Time(25*Millisecond) {
		t.Fatalf("run ended at %v, want 25ms: corpse kept the weak chain alive", end)
	}
	if fired != 2 {
		t.Fatalf("weak tick fired %d times, want 2 (at 10ms and 20ms)", fired)
	}
}

// TestWeakCancellable: a cancelled weak event is just a corpse.
func TestWeakCancellable(t *testing.T) {
	s := New(1)
	ev := s.AtWeak(10*Millisecond, func() { t.Fatal("cancelled weak event fired") })
	ev.Cancel()
	s.At(50*Millisecond, func() {})
	if end := s.Run(0); end != Time(50*Millisecond) {
		t.Fatalf("run ended at %v, want 50ms", end)
	}
}
