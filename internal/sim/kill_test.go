package sim

import "testing"

// TestKillSleepingProc: a killed sleeper unwinds (running its defers) and
// never resumes model code; its stale sleep event is scrubbed, not
// dispatched.
func TestKillSleepingProc(t *testing.T) {
	s := New(1)
	var resumed, cleaned bool
	p := s.Spawn("sleeper", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(100)
		resumed = true
	})
	s.At(10, func() { s.Kill(p) })
	s.Run(0)
	if resumed {
		t.Fatal("killed process resumed model code")
	}
	if !cleaned {
		t.Fatal("killed process did not run its defers")
	}
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d after kill", s.NumProcs())
	}
	if !p.Killed() {
		t.Fatal("Killed() false after Kill")
	}
}

// TestKillCondWaiterScrubbed: killing a process parked on a Cond removes it
// from the wait list, so a later Signal is not wasted on the corpse.
func TestKillCondWaiterScrubbed(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var victimWoke, survivorWoke bool
	victim := s.Spawn("victim", func(p *Proc) {
		c.Wait(p)
		victimWoke = true
	})
	s.Spawn("survivor", func(p *Proc) {
		c.Wait(p)
		survivorWoke = true
	})
	s.At(10, func() {
		s.Kill(victim)
		if n := c.Waiters(); n != 1 {
			t.Errorf("waiters after kill = %d, want 1", n)
		}
		if !c.Signal() {
			t.Error("signal found no waiter")
		}
	})
	s.Run(0)
	if victimWoke {
		t.Fatal("killed waiter resumed")
	}
	if !survivorWoke {
		t.Fatal("signal was wasted on the killed waiter")
	}
}

// TestKillResourceHolder: a process killed while holding a Resource via Use
// releases the slot as it unwinds, so the resource is not stranded.
func TestKillResourceHolder(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	holder := s.Spawn("holder", func(p *Proc) {
		r.Use(p, 1000)
	})
	var acquired bool
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(5)
		r.Acquire(p)
		acquired = true
		r.Release()
	})
	s.At(10, func() { s.Kill(holder) })
	s.Run(0)
	if !acquired {
		t.Fatal("resource stranded by killed holder")
	}
	if r.InUse() != 0 {
		t.Fatalf("resource InUse = %d at end", r.InUse())
	}
}

// TestKillWaitTimeout: killing a process parked in WaitTimeout cancels its
// deadline event; nothing fires for the corpse.
func TestKillWaitTimeout(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var woke bool
	p := s.Spawn("timed", func(p *Proc) {
		c.WaitTimeout(p, 100)
		woke = true
	})
	s.At(10, func() { s.Kill(p) })
	end := s.Run(0)
	if woke {
		t.Fatal("killed WaitTimeout waiter resumed")
	}
	if end >= 100 {
		t.Fatalf("deadline event survived the kill; clock ran to %d", end)
	}
}

// TestKillQueueGetter: a process killed while blocked in Queue.Get unwinds;
// later Puts are not consumed by it.
func TestKillQueueGetter(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	var got int
	victim := s.Spawn("getter", func(p *Proc) {
		got = q.Get(p)
	})
	s.At(5, func() { s.Kill(victim) })
	s.At(10, func() { q.Put(42) })
	s.Run(0)
	if got != 0 {
		t.Fatalf("killed getter consumed item %d", got)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d, want 1 (item unconsumed)", q.Len())
	}
}

// TestKillBeforeFirstDispatch: a process killed in the same instant it was
// spawned never runs at all.
func TestKillBeforeFirstDispatch(t *testing.T) {
	s := New(1)
	var ran bool
	s.At(0, func() {
		p := s.Spawn("stillborn", func(p *Proc) { ran = true })
		s.Kill(p)
	})
	s.Run(0)
	if ran {
		t.Fatal("process killed before first dispatch still ran")
	}
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d", s.NumProcs())
	}
}

// TestKillIdempotent: double Kill and kill-after-finish are no-ops.
func TestKillIdempotent(t *testing.T) {
	s := New(1)
	p := s.Spawn("quick", func(p *Proc) { p.Sleep(1) })
	s.Run(0)
	s.Kill(p) // finished
	p2 := s.Spawn("slow", func(p *Proc) { p.Sleep(100) })
	s.At(1, func() { s.Kill(p2); s.Kill(p2) })
	s.Run(0)
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d", s.NumProcs())
	}
}

// TestKillPropagatesToChildren: killing a process kills the helpers it
// spawned with SpawnChild mid-flight — an I/O fan-out must not complete
// posthumously — while already-finished children are long gone from the
// parent's list.
func TestKillPropagatesToChildren(t *testing.T) {
	s := New(1)
	var childFinished, lateChildRan bool
	parent := s.Spawn("parent", func(p *Proc) {
		s.SpawnChild(p, "quick-child", func(q *Proc) {
			q.Sleep(1)
			childFinished = true
		})
		s.SpawnChild(p, "slow-child", func(q *Proc) {
			q.Sleep(1000)
			lateChildRan = true
		})
		p.Sleep(2000)
	})
	s.At(10, func() {
		if len(parent.children) != 1 {
			t.Errorf("finished child not unlinked: %d children", len(parent.children))
		}
		s.Kill(parent)
	})
	s.Run(0)
	if !childFinished {
		t.Fatal("child that completed before the kill should have run")
	}
	if lateChildRan {
		t.Fatal("in-flight child survived its parent's kill")
	}
	if s.NumProcs() != 0 {
		t.Fatalf("NumProcs = %d", s.NumProcs())
	}
}

// TestKillDeterminism: killing mid-run leaves the kernel consistent — a
// full workload after the kill produces the same schedule as a fresh sim
// seeded identically (event pooling and RNG state are per-Sim, so only the
// post-kill event pattern is compared).
func TestKillDeterminism(t *testing.T) {
	run := func() uint64 {
		s := New(7)
		c := NewCond(s)
		victim := s.Spawn("victim", func(p *Proc) {
			for {
				c.Wait(p)
				p.Sleep(3)
			}
		})
		s.Spawn("driver", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(5)
				c.Signal()
			}
		})
		s.At(23, func() { s.Kill(victim) })
		s.Spawn("worker", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Sleep(2)
			}
		})
		s.Run(0)
		return s.EventsFired()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("kill broke determinism: %d vs %d events", a, b)
	}
}
