package sim

import "testing"

// The kernel fast path (4-ary heap, event free list, typed wake targets,
// ring-buffer Queue) must preserve the exact semantics the model layers
// depend on. These tests pin the edge cases the refactor could plausibly
// have broken, plus allocation guards for the steady-state hot paths.

// TestCancelAfterFire: cancelling an event that already fired must be a
// no-op — in particular it must NOT cancel an unrelated event that reuses
// the same pooled record.
func TestCancelAfterFire(t *testing.T) {
	s := New(1)
	fired1 := false
	e1 := s.At(Millisecond, func() { fired1 = true })
	s.Run(0)
	if !fired1 {
		t.Fatal("first event did not fire")
	}

	// The freed record is reused by the next At.
	fired2 := false
	s.At(Millisecond, func() { fired2 = true })

	// Stale handle: must not touch the recycled record.
	e1.Cancel()
	s.Run(0)
	if !fired2 {
		t.Fatal("cancel of already-fired event leaked into a reused record")
	}
	if !e1.Cancelled() {
		t.Fatal("handle should still report Cancel was called")
	}
}

// TestCancelZeroEvent: the zero-value handle is inert.
func TestCancelZeroEvent(t *testing.T) {
	var e Event
	e.Cancel() // must not panic
	if !e.Cancelled() {
		t.Fatal("Cancelled should report the Cancel call")
	}
	var pe *Event
	pe.Cancel() // nil receiver must not panic
	if pe.Cancelled() {
		t.Fatal("nil handle cannot have been cancelled")
	}
}

// TestWaitTimeoutExactDeadline: a Signal scheduled for exactly the
// deadline instant but sequenced after the timeout event must lose — the
// waiter times out, and the signal falls through to the next waiter.
func TestWaitTimeoutExactDeadline(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var timedOutFirst, signaledSecond bool
	s.Spawn("first", func(p *Proc) {
		// WaitTimeout schedules its deadline event now (seq N).
		timedOutFirst = !c.WaitTimeout(p, 5*Millisecond)
	})
	s.Spawn("second", func(p *Proc) {
		signaledSecond = c.WaitTimeout(p, 50*Millisecond)
	})
	// Schedule the Signal for t=5ms from t=1ms, so its event is sequenced
	// after the first waiter's deadline event (created at t=0): at the
	// shared instant, the deadline fires first and wins.
	s.At(Millisecond, func() {
		s.At(4*Millisecond, func() { c.Signal() })
	})
	s.Run(0)
	if !timedOutFirst {
		t.Fatal("first waiter should time out at its exact deadline")
	}
	if !signaledSecond {
		t.Fatal("signal at the deadline instant should wake the second waiter")
	}
	if got := s.Now(); got != 5*1000 {
		t.Fatalf("clock = %d, want 5ms", got)
	}
}

// TestWaitTimeoutSignalJustBeforeDeadline: a signal one microsecond before
// the deadline wins.
func TestWaitTimeoutSignalJustBeforeDeadline(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var signaled bool
	s.Spawn("w", func(p *Proc) {
		signaled = c.WaitTimeout(p, 5*Millisecond)
	})
	s.At(5*Millisecond-Microsecond, func() { c.Signal() })
	s.Run(0)
	if !signaled {
		t.Fatal("waiter should be signaled just before the deadline")
	}
}

// TestQueueByteBoundAtWrap: byte-bounded drops must behave identically
// when the ring's write position has wrapped around the backing array.
func TestQueueByteBoundAtWrap(t *testing.T) {
	s := New(1)
	q := NewByteQueue[int](s, 0, 100, func(int) int { return 30 })

	var got []int
	drain := func(n int) {
		for i := 0; i < n; i++ {
			v, ok := q.TryGet()
			if !ok {
				t.Fatal("queue unexpectedly empty")
			}
			got = append(got, v)
		}
	}

	// Cycle enough items through to force several wraps of the initial
	// 8-slot ring, then fill to the byte bound at a wrapped position.
	next := 0
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 3; i++ {
			if !q.Put(next) {
				t.Fatalf("unexpected drop at fill %d", next)
			}
			next++
		}
		drain(3)
	}
	// 3 items fit (90 bytes); the 4th exceeds 100 bytes and must drop.
	for i := 0; i < 3; i++ {
		if !q.Put(next) {
			t.Fatalf("unexpected drop at fill %d", next)
		}
		next++
	}
	if q.Put(999) {
		t.Fatal("byte-bound overflow accepted at wrap point")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", q.Drops())
	}
	if q.Bytes() != 90 {
		t.Fatalf("bytes = %d, want 90", q.Bytes())
	}
	drain(3)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken: got[%d] = %d", i, v)
		}
	}
}

// TestQueueScanRemoveAtWrap: Scan with remove of a mid-queue element must
// preserve FIFO order of the remainder across the wrap point.
func TestQueueScanRemoveAtWrap(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)

	// Advance head so the live window wraps: with an 8-slot ring, pushing
	// 6, popping 4, pushing 5 more leaves elements physically split.
	for i := 0; i < 6; i++ {
		q.Put(i)
	}
	for i := 0; i < 4; i++ {
		q.TryGet()
	}
	for i := 6; i < 11; i++ {
		q.Put(i)
	}
	// Queue now holds 4..10.
	v, found := q.Scan(func(x int) bool { return x == 7 }, true)
	if !found || v != 7 {
		t.Fatalf("Scan(7) = %d, %v", v, found)
	}
	want := []int{4, 5, 6, 8, 9, 10}
	for _, w := range want {
		g, ok := q.TryGet()
		if !ok || g != w {
			t.Fatalf("after mid-queue remove: got %d (ok=%v), want %d", g, ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty: %d", q.Len())
	}
}

// TestQueueScanRemoveHeadTail: removing the first and last elements via
// Scan keeps the ring consistent.
func TestQueueScanRemoveHeadTail(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	for i := 0; i < 5; i++ {
		q.Put(i)
	}
	if _, found := q.Scan(func(x int) bool { return x == 0 }, true); !found {
		t.Fatal("head remove failed")
	}
	if _, found := q.Scan(func(x int) bool { return x == 4 }, true); !found {
		t.Fatal("tail remove failed")
	}
	want := []int{1, 2, 3}
	for _, w := range want {
		g, ok := q.TryGet()
		if !ok || g != w {
			t.Fatalf("got %d (ok=%v), want %d", g, ok, w)
		}
	}
}

// TestAtRunZeroAlloc: once the free list has warmed up, the At/Run cycle
// must not allocate.
func TestAtRunZeroAlloc(t *testing.T) {
	s := New(1)
	// Warm up the event pool and heap capacity.
	for i := 0; i < 64; i++ {
		s.At(Duration(i), func() {})
	}
	s.Run(0)
	n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			s.At(Duration(i), func() {})
		}
		s.Run(0)
	})
	if n > 0 {
		t.Fatalf("At/Run allocated %.1f objects per run, want 0", n)
	}
}

// TestQueueSteadyStateZeroAlloc: Put/Get cycles on a warmed ring allocate
// nothing.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	for i := 0; i < 16; i++ {
		q.Put(i)
	}
	for i := 0; i < 16; i++ {
		q.TryGet()
	}
	n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			q.Put(i)
		}
		for i := 0; i < 8; i++ {
			q.TryGet()
		}
	})
	if n > 0 {
		t.Fatalf("Put/TryGet allocated %.1f objects per run, want 0", n)
	}
}

// TestCondSteadyStateZeroAlloc: the typed wake path (Cond.Wait/Signal,
// which is also what Sleep, Resource and Queue wake-ups ride on) does not
// allocate once pools are warm.
func TestCondSteadyStateZeroAlloc(t *testing.T) {
	s := New(2)
	c := NewCond(s)
	s.Spawn("waiter", func(p *Proc) {
		for {
			c.Wait(p)
		}
	})
	s.Run(s.Now() + Time(Millisecond)) // park the waiter
	c.Signal()
	s.Run(s.Now() + Time(Millisecond)) // warm the pools
	n := testing.AllocsPerRun(100, func() {
		c.Signal()
		s.Run(s.Now() + Time(Millisecond))
	})
	if n > 0 {
		t.Fatalf("Signal/Wait cycle allocated %.1f objects per run, want 0", n)
	}
}

// TestDeterminismEventsFired: the same model run twice from the same seed
// fires the identical number of events and lands on the same clock.
func TestDeterminismEventsFired(t *testing.T) {
	run := func() (uint64, Time) {
		s := New(42)
		q := NewQueue[int](s, 4)
		res := NewResource(s, 2)
		for i := 0; i < 4; i++ {
			s.Spawn("prod", func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.Sleep(Duration(1 + s.Rand().Intn(500)))
					q.Put(j)
				}
			})
			s.Spawn("cons", func(p *Proc) {
				for j := 0; j < 50; j++ {
					if _, ok := q.GetTimeout(p, 300*Microsecond); !ok {
						continue
					}
					res.Use(p, Duration(1+s.Rand().Intn(200)))
				}
			})
		}
		end := s.Run(0)
		return s.EventsFired(), end
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("non-deterministic: run1=(%d, %d) run2=(%d, %d)", f1, t1, f2, t2)
	}
	if f1 == 0 {
		t.Fatal("model fired no events")
	}
}
