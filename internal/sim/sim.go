// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// A Sim owns a virtual clock and an event heap. Model code runs either as
// plain callbacks scheduled with At, or as processes (Proc) spawned with
// Spawn. A process is an ordinary goroutine, but the kernel guarantees that
// at most one process executes at a time and that control transfers are
// totally ordered by (virtual time, sequence number), so a simulation run is
// fully deterministic for a given seed.
//
// Processes block with Proc.Sleep, Cond.Wait, Resource.Acquire, or
// Queue.Get. While a process is blocked it consumes no virtual time beyond
// what it asked for; real goroutines are parked on channels.
//
// The event loop is a zero-allocation fast path: the pending set is a
// concrete 4-ary min-heap of pooled event records keyed on (time, seq), so
// scheduling involves no interface conversions and, once the free list has
// warmed up, no heap allocations. Process wake-ups (Sleep, Cond, Resource,
// Queue) are typed targets on the event record rather than closures.
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
)

// Time is an absolute virtual time in microseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// Seconds reports the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return Duration(t).Seconds() }

// Millis reports the time as floating-point milliseconds since start.
func (t Time) Millis() float64 { return Duration(t).Millis() }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// event is the kernel's scheduled-occurrence record. Records are pooled:
// after an event fires or a cancelled event is popped, the record returns
// to the free list with its generation bumped, which invalidates any
// outstanding Event handles to the old occurrence.
//
// Exactly one of fn, proc, waiter is set: fn is a plain callback, proc is a
// process to dispatch (Sleep/Spawn/wake-ups), waiter is a Cond.WaitTimeout
// deadline.
type event struct {
	t         Time
	seq       uint64
	fn        func()
	proc      *Proc
	waiter    *condWaiter
	cancelled bool
	weak      bool
	gen       uint64
}

func eventLess(a, b *event) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

// Event is a cancellable handle to a scheduled occurrence. The zero value
// refers to nothing; cancelling it is a no-op.
type Event struct {
	e         *event
	gen       uint64
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op: the handle's generation no
// longer matches the pooled record, so a recycled record is never touched.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	e.cancelled = true
	if e.e != nil && e.e.gen == e.gen {
		e.e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called through this handle.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Sim is a discrete-event simulation instance. Create one with New; it is
// not safe for concurrent use from multiple OS threads outside the process
// discipline the kernel itself imposes.
type Sim struct {
	now    Time
	events []*event // 4-ary min-heap on (t, seq)
	free   []*event // event record free list
	seq    uint64
	rng    *rand.Rand
	nprocs int
	fired  uint64
	until  Time // Run bound for the loop, 0 = none

	// mainWake returns the run-loop token to the Run caller when the loop
	// terminates in some process's goroutine (see loop).
	mainWake chan struct{}

	// fatal carries a model-code panic from the process goroutine it
	// unwound to the Run caller, which re-raises it (see runProc). The
	// transfer makes a panicking simulation abort deterministically on
	// the driving goroutine — recoverable by harnesses like the scenario
	// fuzzer — instead of crashing the whole OS process from a worker.
	fatal *fatalPanic

	// Trace, when non-nil, receives a line per control transfer
	// (debugging). Per-instance so concurrently executing sims can be
	// traced independently without racing on a package global.
	Trace func(string)

	freeWaiters []*condWaiter
}

// fatalPanic records a panic captured in a process goroutine.
type fatalPanic struct {
	val   any
	proc  string
	stack []byte
}

// New returns a simulator with its clock at zero and the given RNG seed.
func New(seed int64) *Sim {
	return &Sim{
		mainWake: make(chan struct{}),
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsFired reports how many events have fired so far; useful for
// determinism checks and kernel tests.
func (s *Sim) EventsFired() uint64 { return s.fired }

func (s *Sim) newEvent() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns a popped record to the free list. Bumping the generation
// first makes any outstanding handle to the old occurrence inert.
func (s *Sim) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.proc = nil
	e.waiter = nil
	e.cancelled = false
	e.weak = false
	s.free = append(s.free, e)
}

// schedule enqueues one event record d after the current time.
func (s *Sim) schedule(d Duration, fn func(), p *Proc, w *condWaiter) *event {
	if d < 0 {
		panic("sim: negative delay")
	}
	e := s.newEvent()
	e.t = s.now.Add(d)
	e.seq = s.seq
	e.fn, e.proc, e.waiter = fn, p, w
	s.seq++
	s.heapPush(e)
	return e
}

// heapPush inserts e into the 4-ary min-heap.
func (s *Sim) heapPush(e *event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

// heapPop removes and returns the minimum event.
func (s *Sim) heapPop() *event {
	h := s.events
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	s.events = h
	i := 0
	for {
		min := i
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// At schedules fn to run d after the current time and returns an Event so
// the caller may cancel it. d must be non-negative; a zero d schedules the
// callback after all other work already scheduled for the current instant.
func (s *Sim) At(d Duration, fn func()) Event {
	e := s.schedule(d, fn, nil, nil)
	return Event{e: e, gen: e.gen}
}

// AtWeak schedules fn like At, but as a weak event: at its scheduled time
// it fires only if at least one live ordinary (non-weak, non-cancelled)
// event remains in the heap. Otherwise the record is discarded without
// advancing the clock — the same no-time-passes treatment a cancelled
// corpse gets. A self-rescheduling observer (a periodic sampler) uses this
// so its next tick can never extend the simulation past the workload's
// natural quiesce: the run ends at exactly the instant it would have ended
// with no observer scheduled at all.
func (s *Sim) AtWeak(d Duration, fn func()) Event {
	e := s.schedule(d, fn, nil, nil)
	e.weak = true
	return Event{e: e, gen: e.gen}
}

// liveOrdinary reports whether any non-weak, non-cancelled event remains
// in the heap. O(heap); only evaluated when a weak event is popped.
func (s *Sim) liveOrdinary() bool {
	for _, e := range s.events {
		if !e.cancelled && !e.weak {
			return true
		}
	}
	return false
}

// wakeProc schedules a dispatch of p at the current instant without
// allocating a closure (the typed fast path behind Cond, Resource, Queue).
func (s *Sim) wakeProc(p *Proc) {
	s.schedule(0, nil, p, nil)
}

// Run processes events until the heap is empty or the clock would pass
// until (until <= 0 means run to completion). It returns the final clock.
func (s *Sim) Run(until Time) Time {
	s.until = until
	s.loop(nil)
	if f := s.fatal; f != nil {
		// Re-raise a captured process panic here, on the driving
		// goroutine. The simulation is dead: parked process goroutines
		// stay parked (their sim is abandoned with them).
		panic(fmt.Sprintf("sim: process %q panicked at t=%d: %v\n%s", f.proc, s.now, f.val, f.stack))
	}
	if until > 0 && s.now < until {
		s.now = until
	}
	return s.now
}

// loop is the event loop, run by whichever goroutine currently holds the
// run-loop token: the Run caller (self == nil) or a process goroutine that
// just yielded (self == its Proc). Control transfers are a direct handoff —
// the yielding goroutine pops events itself and hands the token straight to
// the next runnable process — so the strictly-serial kernel pays one
// channel operation per process switch instead of the two of a dedicated
// kernel goroutine ping-pong, and a process whose own wake-up is the next
// event (the Sleep fast path) continues with no switch at all.
//
// loop returns when self has been re-dispatched (the token stays with its
// goroutine and model code resumes), or, for the Run caller, when the loop
// has terminated and the token came home.
func (s *Sim) loop(self *Proc) {
	for len(s.events) > 0 && s.fatal == nil {
		e := s.events[0]
		if s.until > 0 && e.t > s.until {
			s.now = s.until
			break
		}
		s.heapPop()
		if e.cancelled {
			s.recycle(e)
			continue
		}
		if e.weak && !s.liveOrdinary() {
			// A weak event with no live ordinary work left behind it:
			// drop it without advancing the clock, so observers never
			// stretch a quiesced simulation.
			s.recycle(e)
			continue
		}
		if e.t < s.now {
			panic("sim: time went backwards")
		}
		s.now = e.t
		s.fired++
		fn, p, w := e.fn, e.proc, e.waiter
		s.recycle(e)
		if w != nil {
			// A WaitTimeout deadline: detach the waiter from its Cond
			// eagerly (no tombstone for Signal to sweep) and dispatch the
			// parked process.
			w.removed = true
			w.c.detach(w)
			p = w.p
		}
		if p == nil {
			fn()
			continue
		}
		// A wake-up may outlive its target: Kill unwinds a process on its
		// first dispatch, and any further events still aimed at it (an old
		// sleep deadline, a queued signal) are scrubbed here.
		if p.done {
			continue
		}
		if s.Trace != nil {
			s.Trace(fmt.Sprintf("t=%d dispatch %s", s.now, p.name))
		}
		if p == self {
			return // own wake-up: resume model code, zero switches
		}
		p.resume <- struct{}{} // hand the token to p
		s.parkAfterHandoff(self)
		return
	}
	// Loop over (heap empty or until reached): if a process goroutine holds
	// the token, return it to the Run caller and park.
	if self != nil {
		s.mainWake <- struct{}{}
		s.parkSelf(self)
	}
}

// parkAfterHandoff parks the goroutine that just handed the token away.
// The Run caller waits for the token to come home (the loop terminated in
// some other goroutine); a live process waits to be re-dispatched; a
// finished process simply returns so its goroutine can exit.
func (s *Sim) parkAfterHandoff(self *Proc) {
	if self == nil {
		<-s.mainWake
		return
	}
	s.parkSelf(self)
}

// parkSelf parks a process goroutine until it is handed the token again
// (finished processes never are; their goroutines exit instead). On return
// the caller resumes model code — loop's caller is always yield.
func (s *Sim) parkSelf(p *Proc) {
	if p.done {
		return
	}
	<-p.resume
}

// Idle reports whether no events remain.
func (s *Sim) Idle() bool { return len(s.events) == 0 }

// NumProcs reports the number of live (spawned, not yet finished) processes.
func (s *Sim) NumProcs() int { return s.nprocs }

// Proc is a simulation process: a goroutine scheduled cooperatively by the
// kernel. All blocking methods must be called from the process's own
// goroutine.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	done   bool
	killed bool
	// waiting is the cond waiter the process is currently parked on, if
	// any; Kill uses it to scrub the process out of the wait list.
	waiting *condWaiter
	// parent/children link helper processes (SpawnChild) to their owner
	// so Kill takes the whole tree down — an I/O fan-out must not outlive
	// the crashed host that issued it.
	parent   *Proc
	children []*Proc
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn starts fn as a new process. The process begins running at the
// current virtual time (after already-scheduled work for this instant).
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a new process after delay d.
func (s *Sim) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nprocs++
	go func() {
		<-p.resume // wait for first dispatch (token arrives here)
		runProc(p, fn)
		p.done = true
		p.unlinkParent()
		s.nprocs--
		// The finished process still holds the run-loop token: keep
		// processing events until a handoff lets this goroutine exit.
		s.loop(p)
	}()
	s.schedule(d, nil, p, nil)
	return p
}

// SpawnChild starts fn as a helper process owned by parent: killing the
// parent kills the child too. Device fan-outs (a stripe splitting one
// transfer across members) use it so in-flight member I/O dies with the
// crashed host instead of completing posthumously. Scheduling is identical
// to Spawn.
func (s *Sim) SpawnChild(parent *Proc, name string, fn func(p *Proc)) *Proc {
	p := s.Spawn(name, fn)
	p.parent = parent
	parent.children = append(parent.children, p)
	return p
}

// unlinkParent removes a finished child from its parent's list (kernel
// context: runs during the child's final handoff).
func (p *Proc) unlinkParent() {
	if p.parent == nil {
		return
	}
	kids := p.parent.children
	for i, c := range kids {
		if c == p {
			kids[i] = kids[len(kids)-1]
			kids[len(kids)-1] = nil
			p.parent.children = kids[:len(kids)-1]
			break
		}
	}
	p.parent = nil
}

// killSentinel is the panic value that unwinds a killed process's stack;
// runProc swallows it so only the victim dies.
type killSentinel struct{}

// runProc runs a process body, absorbing the kill unwind. Any other
// panic is captured into s.fatal — the process's deferred cleanups have
// already run by the time the recover sees it — and the loop shuts down
// so the Run caller can re-raise it on the driving goroutine.
func runProc(p *Proc, fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				return
			}
			if p.sim.fatal == nil {
				p.sim.fatal = &fatalPanic{val: r, proc: p.name, stack: debug.Stack()}
			}
		}
	}()
	if p.killed {
		return // killed before first dispatch
	}
	fn(p)
}

// Kill marks p for termination: the next time the kernel dispatches it, the
// process unwinds (deferred cleanups run) instead of resuming model code.
// If p is parked on a Cond/Queue/Resource it is scrubbed from the wait list
// immediately, so no later Signal is wasted on it, and a wake-up is
// scheduled at the current instant to deliver the kill promptly. Killing a
// finished or already-killed process is a no-op. A process cannot kill
// itself — unwind by returning instead.
//
// Kill models a crash, not a graceful stop: the victim's stack unwinds
// mid-operation, so shared structures it is mid-flight on must release via
// defer (the kernel's own Resource.Use does; so do the disk arm and the
// network medium).
func (s *Sim) Kill(p *Proc) {
	if p == nil || p.done || p.killed {
		return
	}
	p.killed = true
	// Take down owned helpers first (SpawnChild): their in-flight work
	// belongs to this process's host.
	for _, c := range p.children {
		s.Kill(c)
	}
	if w := p.waiting; w != nil {
		// Scrub the parked process out of its wait list so a future
		// Signal is not spent on a corpse, cancel any pending timeout,
		// and recycle the waiter record (the unwinding Wait will not).
		w.removed = true
		w.c.detach(w)
		w.timeout.Cancel()
		p.waiting = nil
		s.putWaiter(w)
	}
	s.wakeProc(p)
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// Done reports whether the process has finished (returned or unwound).
// Fault injectors use it to tell a completed application from one their
// kill actually took down.
func (p *Proc) Done() bool { return p.done }

// yield hands the run-loop token back to the event loop, which keeps
// running on this goroutine until another process (or the Run caller) must
// take over; the process parks until re-dispatched. A killed process never
// resumes model code: the kill unwinds its stack here, through whatever
// blocking primitive parked it.
func (p *Proc) yield() {
	p.sim.loop(p)
	if p.killed {
		panic(killSentinel{})
	}
}

// Sleep blocks the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.sim.schedule(d, nil, p, nil)
	p.yield()
}

// Park blocks the process until some other party wakes it via the returned
// wake function. The wake function may be called at most once, from kernel
// context (an event callback or another process); it schedules the wakeup
// at the current virtual time.
func (p *Proc) Park() (wake func()) {
	woken := false
	return func() {
		if woken {
			panic("sim: double wake of process " + p.name)
		}
		woken = true
		p.sim.wakeProc(p)
	}
}

// Block parks the process; the wake function returned by a prior Park
// arrangement releases it. Callers typically use higher-level Cond, Resource
// or Queue instead.
func (p *Proc) Block() { p.yield() }
