package sim

// Queue is a bounded FIFO queue connecting simulation processes, modelling
// structures like a server's socket buffer. Put never blocks: when the
// queue is full the item is dropped and counted, exactly as a UDP socket
// buffer drops datagrams. Get blocks the calling process until an item is
// available.
//
// Capacity may be expressed in items, in bytes (via a size function), or
// both; a zero limit means unlimited in that dimension.
//
// Storage is a growable ring buffer: steady-state Put/Get cycles allocate
// nothing and never strand the backing array the way repeated items[1:]
// re-slicing would.
type Queue[T any] struct {
	sim      *Sim
	buf      []T // ring storage; len(buf) is the current capacity
	head     int // index of the oldest element
	count    int // number of queued elements
	maxItems int
	maxBytes int
	curBytes int
	sizeOf   func(T) int
	cond     *Cond

	puts  uint64
	drops uint64
	gets  uint64
	// peak occupancy, for reporting
	peakItems int
}

// NewQueue returns a queue bounded to maxItems entries (0 = unlimited).
func NewQueue[T any](s *Sim, maxItems int) *Queue[T] {
	return &Queue[T]{sim: s, maxItems: maxItems, cond: NewCond(s)}
}

// NewByteQueue returns a queue bounded to maxBytes total, with item sizes
// measured by sizeOf. maxItems additionally bounds the entry count when
// non-zero.
func NewByteQueue[T any](s *Sim, maxItems, maxBytes int, sizeOf func(T) int) *Queue[T] {
	return &Queue[T]{sim: s, maxItems: maxItems, maxBytes: maxBytes, sizeOf: sizeOf, cond: NewCond(s)}
}

// slot maps logical index i (0 = oldest) to a physical buffer index.
func (q *Queue[T]) slot(i int) int {
	p := q.head + i
	if p >= len(q.buf) {
		p -= len(q.buf)
	}
	return p
}

// grow doubles the ring, unwrapping the live elements to the front.
func (q *Queue[T]) grow() {
	nc := 2 * len(q.buf)
	if nc == 0 {
		nc = 8
	}
	nb := make([]T, nc)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[q.slot(i)]
	}
	q.buf = nb
	q.head = 0
}

// Put appends v if the queue has room and reports whether it was accepted.
// On overflow the item is dropped and the drop counter incremented.
func (q *Queue[T]) Put(v T) bool {
	sz := 0
	if q.sizeOf != nil {
		sz = q.sizeOf(v)
	}
	if q.maxItems > 0 && q.count >= q.maxItems {
		q.drops++
		return false
	}
	if q.maxBytes > 0 && q.curBytes+sz > q.maxBytes {
		q.drops++
		return false
	}
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[q.slot(q.count)] = v
	q.count++
	q.curBytes += sz
	q.puts++
	if q.count > q.peakItems {
		q.peakItems = q.count
	}
	q.cond.Signal()
	return true
}

// Get blocks p until an item is available and returns the oldest one.
func (q *Queue[T]) Get(p *Proc) T {
	for q.count == 0 {
		q.cond.Wait(p)
	}
	return q.pop()
}

// GetTimeout blocks like Get but gives up after d; ok is false on timeout.
func (q *Queue[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := q.sim.Now().Add(d)
	for q.count == 0 {
		remain := deadline.Sub(q.sim.Now())
		if remain <= 0 {
			return v, false
		}
		if !q.cond.WaitTimeout(p, remain) {
			// timed out waiting; re-check emptiness in case of races
			if q.count == 0 {
				return v, false
			}
		}
	}
	return q.pop(), true
}

// TryGet returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	return q.pop(), true
}

func (q *Queue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	if q.sizeOf != nil {
		q.curBytes -= q.sizeOf(v)
	}
	q.gets++
	return v
}

// removeAt deletes the element at logical index i, preserving FIFO order
// of the remainder by shifting the tail side down across the wrap point.
func (q *Queue[T]) removeAt(i int) {
	var zero T
	for j := i; j < q.count-1; j++ {
		q.buf[q.slot(j)] = q.buf[q.slot(j+1)]
	}
	q.buf[q.slot(q.count-1)] = zero
	q.count--
}

// Scan calls fn on each queued item in FIFO order until fn returns true
// (found) or the queue is exhausted. If remove is true the found item is
// removed from the queue. Scan is the primitive behind the paper's "mbuf
// hunter", which searches the socket buffer for write requests to a file.
func (q *Queue[T]) Scan(fn func(T) bool, remove bool) (v T, found bool) {
	for i := 0; i < q.count; i++ {
		it := q.buf[q.slot(i)]
		if fn(it) {
			if remove {
				if q.sizeOf != nil {
					q.curBytes -= q.sizeOf(it)
				}
				q.removeAt(i)
				q.gets++
			}
			return it, true
		}
	}
	return v, false
}

// Len reports the current number of queued items.
func (q *Queue[T]) Len() int { return q.count }

// Bytes reports the current queued byte total (0 unless built with
// NewByteQueue).
func (q *Queue[T]) Bytes() int { return q.curBytes }

// Drops reports how many Put calls were rejected for lack of room.
func (q *Queue[T]) Drops() uint64 { return q.drops }

// Puts reports how many items were accepted.
func (q *Queue[T]) Puts() uint64 { return q.puts }

// PeakLen reports the maximum occupancy observed.
func (q *Queue[T]) PeakLen() int { return q.peakItems }
