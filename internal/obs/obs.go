// Package obs is the deterministic sim-time observability plane: an RPC
// lifecycle trace (exported as Chrome trace_event JSON, viewable in
// chrome://tracing or Perfetto), and periodic time-series probes of
// engine state (queue depths, cache occupancy, NVRAM dirty ratio, disk
// utilization, outstanding RPCs).
//
// The package is wired entirely through nil-by-default hooks on the
// simulated components: with no Observe section in a scenario spec,
// nothing here is constructed, no hooks are installed, and the hot path
// pays at most a nil check. Everything recorded is keyed to virtual
// time, so a trace is bit-for-bit reproducible for a fixed seed.
package obs

import "repro/internal/sim"

// Arg is one span/counter annotation. Args are ordered key/value pairs
// (not a map) so serialized traces are deterministic.
type Arg struct {
	Key string
	Val int64
}

// Event is one trace record: a completed span ("X" in trace_event
// terms) or a counter sample ("C"). Times are virtual microseconds,
// which is exactly the trace_event unit.
type Event struct {
	Phase  byte // 'X' span, 'C' counter
	Name   string
	Cat    string
	Proc   string // process track, e.g. "server:s0" or "client:c3"
	Thread string // thread track within the process, e.g. "nfsd2"
	TS     sim.Time
	Dur    sim.Duration // spans only
	Args   []Arg
}

// Trace accumulates events for one scenario cell up to a fixed cap.
// Past the cap, events are counted as dropped instead of stored, so a
// runaway workload cannot exhaust memory.
type Trace struct {
	Label   string // cell label; prefixes process names on export
	Max     int
	Events  []Event
	Dropped int64
}

// NewTrace returns a trace holding at most max events (<=0 picks the
// default of 200k).
func NewTrace(label string, max int) *Trace {
	if max <= 0 {
		max = 200_000
	}
	return &Trace{Label: label, Max: max}
}

// Span records a completed span on proc/thread covering [start, end].
func (t *Trace) Span(proc, thread, name, cat string, start, end sim.Time, args ...Arg) {
	if len(t.Events) >= t.Max {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, Event{
		Phase: 'X', Name: name, Cat: cat, Proc: proc, Thread: thread,
		TS: start, Dur: end.Sub(start), Args: args,
	})
}

// Counter records a counter sample at time ts. Chrome renders counters
// as stacked area tracks.
func (t *Trace) Counter(proc, name string, ts sim.Time, val int64) {
	if len(t.Events) >= t.Max {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, Event{
		Phase: 'C', Name: name, Proc: proc, TS: ts,
		Args: []Arg{{Key: "value", Val: val}},
	})
}
