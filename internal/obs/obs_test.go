package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// traceDoc mirrors the Chrome trace_event schema subset we emit.
type traceDoc struct {
	TraceEvents []traceEv `json:"traceEvents"`
}

type traceEv struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	TS   *int64         `json:"ts"`
	Dur  *int64         `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func buildTrace(label string) *Trace {
	t := NewTrace(label, 0)
	t.Span("client:c0", "rpc", "write", "rpc", 100, 350,
		Arg{"xid", 7}, Arg{"attempts", 1}, Arg{"ok", 1})
	t.Span("server:s0", "nfsd0", "write", "server", 150, 300, Arg{"xid", 7})
	t.Span("server:s0", "gather", "commit", "gather", 200, 280, Arg{"batch", 3})
	t.Counter("probes", "nfsd_queue_depth", 250, 4)
	return t
}

func TestTraceEventJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace("cell0").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events emitted")
	}
	spans, counters, meta := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", ev)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
				t.Fatalf("span missing ts/dur/pid/tid: %+v", ev)
			}
		case "C":
			counters++
			if ev.Args["value"] == nil {
				t.Fatalf("counter missing args.value: %+v", ev)
			}
		case "M":
			meta++
			if ev.Args["name"] == nil {
				t.Fatalf("metadata missing args.name: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 3 || counters != 1 {
		t.Fatalf("got %d spans, %d counters; want 3, 1", spans, counters)
	}
	if meta == 0 {
		t.Fatal("no process/thread metadata events")
	}
	// Span args survive round-trip with integer values.
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "commit" {
			found = true
			if v, ok := ev.Args["batch"].(float64); !ok || v != 3 {
				t.Fatalf("commit batch arg = %v", ev.Args["batch"])
			}
		}
	}
	if !found {
		t.Fatal("commit span missing")
	}
}

func TestTraceDeterministicAndMultiCellPrefix(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTraces(&a, []*Trace{buildTrace("x"), buildTrace("y")}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraces(&b, []*Trace{buildTrace("x"), buildTrace("y")}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces serialized differently")
	}
	if !strings.Contains(a.String(), `"x/client:c0"`) ||
		!strings.Contains(a.String(), `"y/server:s0"`) {
		t.Fatalf("multi-cell export must prefix process names with the cell label:\n%s", a.String())
	}
}

func TestTraceCapDropsNotGrows(t *testing.T) {
	tr := NewTrace("c", 10)
	for i := 0; i < 25; i++ {
		tr.Span("p", "t", "s", "", sim.Time(i), sim.Time(i+1))
	}
	if len(tr.Events) != 10 {
		t.Fatalf("stored %d events, want cap 10", len(tr.Events))
	}
	if tr.Dropped != 15 {
		t.Fatalf("dropped = %d, want 15", tr.Dropped)
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	s := NewTimeSeries("cell0", "qdepth", "util_pct")
	s.Sample(sim.Time(1_000_000), 3, 42.5)
	s.Sample(sim.Time(2_000_000), 0, 7)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cell,time_s,qdepth,util_pct" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if lines[1] != "cell0,1.000000,3,42.5" {
		t.Fatalf("bad row: %q", lines[1])
	}
}
