package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// TimeSeries holds periodic probe samples for one scenario cell: a
// fixed column set and one row per sim-clock sample tick.
type TimeSeries struct {
	Label string   // cell label, carried into CSV/JSON export
	Cols  []string // metric names, excluding the leading time column
	Times []sim.Time
	Rows  [][]float64
}

// NewTimeSeries returns an empty series with the given columns.
func NewTimeSeries(label string, cols ...string) *TimeSeries {
	return &TimeSeries{Label: label, Cols: cols}
}

// Sample appends one row; vals must match Cols.
func (s *TimeSeries) Sample(t sim.Time, vals ...float64) {
	if len(vals) != len(s.Cols) {
		panic("obs: TimeSeries.Sample arity mismatch")
	}
	row := make([]float64, len(vals))
	copy(row, vals)
	s.Times = append(s.Times, t)
	s.Rows = append(s.Rows, row)
}

// N reports the number of samples taken.
func (s *TimeSeries) N() int { return len(s.Times) }

// WriteCSV emits the series with a header row. A non-empty Label is
// written as a leading "cell" column so concatenated sweeps stay
// distinguishable.
func (s *TimeSeries) WriteCSV(w io.Writer) error {
	return WriteSeriesCSV(w, []*TimeSeries{s})
}

// WriteSeriesCSV concatenates multiple cell series into one CSV with a
// shared header: the union of every series' columns in first-seen
// order. Sweeps whose cells probe different hardware (a segment-count
// sweep grows the fabric cell by cell) still share one labeled header;
// a row leaves the columns its cell does not probe empty.
func WriteSeriesCSV(w io.Writer, all []*TimeSeries) error {
	bw := bufio.NewWriter(w)
	var cols []string
	idx := make(map[string]int)
	for _, s := range all {
		if s == nil {
			continue
		}
		for _, c := range s.Cols {
			if _, ok := idx[c]; !ok {
				idx[c] = len(cols)
				cols = append(cols, c)
			}
		}
	}
	bw.WriteString("cell,time_s")
	for _, c := range cols {
		bw.WriteString(",")
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	row := make([]string, len(cols))
	for _, s := range all {
		if s == nil {
			continue
		}
		slots := make([]int, len(s.Cols))
		for j, c := range s.Cols {
			slots[j] = idx[c]
		}
		for i, t := range s.Times {
			for j := range row {
				row[j] = ""
			}
			for j, v := range s.Rows[i] {
				row[slots[j]] = fmt.Sprintf("%g", v)
			}
			fmt.Fprintf(bw, "%s,%.6f", s.Label, t.Seconds())
			for _, v := range row {
				bw.WriteString(",")
				bw.WriteString(v)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
