package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// TimeSeries holds periodic probe samples for one scenario cell: a
// fixed column set and one row per sim-clock sample tick.
type TimeSeries struct {
	Label string   // cell label, carried into CSV/JSON export
	Cols  []string // metric names, excluding the leading time column
	Times []sim.Time
	Rows  [][]float64
}

// NewTimeSeries returns an empty series with the given columns.
func NewTimeSeries(label string, cols ...string) *TimeSeries {
	return &TimeSeries{Label: label, Cols: cols}
}

// Sample appends one row; vals must match Cols.
func (s *TimeSeries) Sample(t sim.Time, vals ...float64) {
	if len(vals) != len(s.Cols) {
		panic("obs: TimeSeries.Sample arity mismatch")
	}
	row := make([]float64, len(vals))
	copy(row, vals)
	s.Times = append(s.Times, t)
	s.Rows = append(s.Rows, row)
}

// N reports the number of samples taken.
func (s *TimeSeries) N() int { return len(s.Times) }

// WriteCSV emits the series with a header row. A non-empty Label is
// written as a leading "cell" column so concatenated sweeps stay
// distinguishable.
func (s *TimeSeries) WriteCSV(w io.Writer) error {
	return WriteSeriesCSV(w, []*TimeSeries{s})
}

// WriteSeriesCSV concatenates multiple cell series into one CSV with a
// shared header. All series must have identical columns.
func WriteSeriesCSV(w io.Writer, all []*TimeSeries) error {
	bw := bufio.NewWriter(w)
	var cols []string
	for _, s := range all {
		if s != nil && len(s.Cols) > 0 {
			cols = s.Cols
			break
		}
	}
	bw.WriteString("cell,time_s")
	for _, c := range cols {
		bw.WriteString(",")
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	for _, s := range all {
		if s == nil {
			continue
		}
		for i, t := range s.Times {
			fmt.Fprintf(bw, "%s,%.6f", s.Label, t.Seconds())
			for _, v := range s.Rows[i] {
				fmt.Fprintf(bw, ",%g", v)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
