package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// pid/tid interning: Chrome's trace viewer wants integer process and
// thread ids, with human names attached via "M" (metadata) events. Each
// distinct process string becomes a pid, each (process, thread) pair a
// globally unique tid, assigned in first-appearance order so output is
// deterministic.
type interner struct {
	pids map[string]int
	tids map[[2]string]int
	meta []jsonRaw // metadata events, in assignment order
}

type jsonRaw []byte

func newInterner() *interner {
	return &interner{pids: map[string]int{}, tids: map[[2]string]int{}}
}

func (in *interner) pid(proc string) int {
	if id, ok := in.pids[proc]; ok {
		return id
	}
	id := len(in.pids) + 1
	in.pids[proc] = id
	in.meta = append(in.meta, jsonRaw(fmt.Sprintf(
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
		id, jsonString(proc))))
	return id
}

func (in *interner) tid(proc, thread string) int {
	if thread == "" {
		thread = "main"
	}
	k := [2]string{proc, thread}
	if id, ok := in.tids[k]; ok {
		return id
	}
	pid := in.pid(proc)
	id := len(in.tids) + 1
	in.tids[k] = id
	in.meta = append(in.meta, jsonRaw(fmt.Sprintf(
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		pid, id, jsonString(thread))))
	return id
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// WriteJSON serializes one trace as a Chrome trace_event file.
func (t *Trace) WriteJSON(w io.Writer) error {
	return WriteTraces(w, []*Trace{t})
}

// WriteTraces serializes one or more cell traces into a single Chrome
// trace_event JSON document ({"traceEvents": [...]}). With more than
// one trace, process names are prefixed with the cell label so a sweep
// shows one process group per cell. Output is deterministic: events
// keep recording order and ids are assigned on first appearance.
func WriteTraces(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriter(w)
	in := newInterner()

	// First pass: assign ids (and emit nothing), so metadata events can
	// lead the file — Perfetto applies names only to later events.
	for _, t := range traces {
		for i := range t.Events {
			ev := &t.Events[i]
			proc := procName(t, len(traces) > 1, ev.Proc)
			if ev.Phase == 'C' {
				in.pid(proc)
			} else {
				in.tid(proc, ev.Thread)
			}
		}
	}

	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	for _, m := range in.meta {
		comma()
		bw.Write(m)
	}
	for _, t := range traces {
		for i := range t.Events {
			ev := &t.Events[i]
			proc := procName(t, len(traces) > 1, ev.Proc)
			comma()
			writeEvent(bw, in, proc, ev)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func procName(t *Trace, multi bool, proc string) string {
	if multi && t.Label != "" {
		return t.Label + "/" + proc
	}
	return proc
}

func writeEvent(bw *bufio.Writer, in *interner, proc string, ev *Event) {
	fmt.Fprintf(bw, `{"name":%s,"ph":"%c"`, jsonString(ev.Name), ev.Phase)
	if ev.Cat != "" {
		fmt.Fprintf(bw, `,"cat":%s`, jsonString(ev.Cat))
	}
	fmt.Fprintf(bw, `,"ts":%d`, int64(ev.TS))
	if ev.Phase == 'X' {
		fmt.Fprintf(bw, `,"dur":%d`, int64(ev.Dur))
	}
	pid := in.pid(proc)
	tid := 0
	if ev.Phase != 'C' {
		tid = in.tid(proc, ev.Thread)
	}
	fmt.Fprintf(bw, `,"pid":%d,"tid":%d`, pid, tid)
	if len(ev.Args) > 0 {
		bw.WriteString(`,"args":{`)
		for i, a := range ev.Args {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, `%s:%d`, jsonString(a.Key), a.Val)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}
