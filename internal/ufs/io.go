package ufs

import (
	"sort"

	"repro/internal/block"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Read implements vfs.FileSystem.
func (fs *FS) Read(p *sim.Proc, ino vfs.Ino, off uint32, out []byte) (int, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return 0, err
	}
	if in.ftype == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off >= in.size {
		return 0, nil
	}
	n := len(out)
	if uint32(n) > in.size-off {
		n = int(in.size - off)
	}
	read := 0
	for read < n {
		fb := int64(off+uint32(read)) / BlockSize
		bo := int64(off+uint32(read)) % BlockSize
		take := BlockSize - int(bo)
		if take > n-read {
			take = n - read
		}
		phys, _, err := fs.bmap(p, in, fb, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			// Hole: zeros.
			for i := 0; i < take; i++ {
				out[read+i] = 0
			}
		} else {
			b, cached := fs.cache[phys]
			if !cached || (!b.dirty && b.owner != ino) {
				nb, err := fs.getBuf(p, phys, true)
				if err != nil {
					return read, err
				}
				b = nb
				b.owner, b.fblock = ino, fb
			}
			copy(out[read:read+take], b.data[bo:bo+int64(take)])
		}
		read += take
	}
	in.atime = fs.sim.Now()
	in.dirtyCore = true
	return read, nil
}

// Write implements vfs.FileSystem: VOP_WRITE with the paper's flags.
//
//   - IODelayData: data stays dirty in the buffer cache (UFS picks its own
//     clustering policy later, via SyncData); no device I/O at all.
//   - IOSync|IODataOnly: the data blocks are pushed to the device now —
//     which, on an accelerated filesystem, means an NVRAM copy — but all
//     metadata stays in core.
//   - IOSync alone: the classic fully synchronous server path — data
//     blocks written through, then the inode block and any dirty indirect
//     blocks, with the reference port's one exception: an inode whose only
//     change is the file modify time is written asynchronously (§4.4).
func (fs *FS) Write(p *sim.Proc, ino vfs.Ino, off uint32, data []byte, flags vfs.IOFlags) error {
	return fs.write(p, ino, off, len(data), data, nil, flags)
}

// WriteBuf implements vfs.BlockWriter: VOP_WRITE fed directly by a
// refcounted payload buffer. A block-aligned full-block write adopts the
// buffer into the cache — the payload is never copied at all; it travels
// by reference from the wire to the platters. Other shapes fall back to
// the copying path.
func (fs *FS) WriteBuf(p *sim.Proc, ino vfs.Ino, off uint32, b *block.Buf, n int, flags vfs.IOFlags) error {
	if off%BlockSize == 0 && n == BlockSize {
		return fs.write(p, ino, off, n, nil, b, flags)
	}
	return fs.write(p, ino, off, n, b.Data()[:n], nil, flags)
}

// write is the common VOP_WRITE body. Exactly one of data and body is set:
// data is the copying path (payload memmoved into cache blocks, counted
// against the copy budget); body is a whole-block refcounted payload the
// cache adopts by reference.
func (fs *FS) write(p *sim.Proc, ino vfs.Ino, off uint32, n int, data []byte, body *block.Buf, flags vfs.IOFlags) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if in.ftype == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if int64(off)+int64(n) > MaxFileSize {
		return vfs.ErrFBig
	}
	metaChanged := false
	// An 8K-bounded write touches at most two blocks; keep the list off
	// the heap.
	var touchedArr [4]*buf
	touched := touchedArr[:0]
	written := 0
	for written < n {
		fb := int64(off+uint32(written)) / BlockSize
		bo := int64(off+uint32(written)) % BlockSize
		take := BlockSize - int(bo)
		if take > n-written {
			take = n - written
		}
		phys, mc, err := fs.bmap(p, in, fb, true)
		if err != nil {
			return err
		}
		metaChanged = metaChanged || mc
		b, cached := fs.cache[phys]
		switch {
		case body != nil:
			// Zero-copy landing: the cache takes a reference to the
			// payload buffer itself; a missing entry is created around it
			// directly (no scratch buffer, no zeroing).
			if cached {
				b.adopt(body)
			} else {
				b = fs.insertBuf(phys, body.Ref())
			}
		case take == BlockSize:
			// Whole-block overwrite: every byte is about to be written, so
			// a fresh (unzeroed) buffer suffices on either path.
			if cached {
				fs.ownFresh(b)
			} else {
				b = fs.insertBuf(phys, fs.pool.Get())
			}
			fs.pool.Acct().CountCopy(copy(b.data, data[written:written+take]))
		default:
			// Partial write: fill from the device only when overwriting an
			// existing block; a fresh block's remainder must read as zeros.
			if !cached {
				nb, err := fs.getBuf(p, phys, !mc && phys != 0)
				if err != nil {
					return err
				}
				b = nb
			}
			fs.own(b)
			fs.pool.Acct().CountCopy(copy(b.data[bo:bo+int64(take)], data[written:written+take]))
		}
		b.owner, b.fblock = ino, fb
		b.dirty = true
		touched = append(touched, b)
		written += take
	}
	now := fs.sim.Now()
	in.mtime, in.ctime = now, now
	in.dirtyCore = true
	if end := off + uint32(n); end > in.size {
		in.size = end
		metaChanged = true
	}
	if metaChanged {
		in.dirtyMeta = true
	}

	switch {
	case flags&vfs.IODelayData != 0:
		// Nothing touches the device now.
		return nil
	case flags&vfs.IODataOnly != 0:
		// Push data blocks through; metadata delayed.
		for _, b := range touched {
			if b.dirty {
				if err := fs.writeBuf(p, b); err != nil {
					return err
				}
				fs.DataWrites++
			}
		}
		return nil
	default:
		// Fully synchronous: data, then metadata.
		for _, b := range touched {
			if b.dirty {
				if err := fs.writeBuf(p, b); err != nil {
					return err
				}
				fs.DataWrites++
			}
		}
		// Indirect blocks dirtied by this write.
		if err := fs.flushDirtyIndirect(p, in); err != nil {
			return err
		}
		if in.dirtyMeta || in.pendingFlush {
			return fs.flushInode(p, in, true, false)
		}
		// else: mtime-only change; left async per the reference port.
		return nil
	}
}

// flushDirtyIndirect writes any dirty indirect blocks belonging to in.
func (fs *FS) flushDirtyIndirect(p *sim.Proc, in *inode) error {
	for _, phys := range in.indBlocks {
		if b, ok := fs.cache[phys]; ok && b.dirty {
			if err := fs.writeBuf(p, b); err != nil {
				return err
			}
			fs.MetaWrites++
			if fs.ChargeMeta != nil {
				fs.ChargeMeta(p)
			}
		}
	}
	return nil
}

// SyncData implements vfs.FileSystem: VOP_SYNCDATA with byte-range hints.
// Dirty data blocks overlapping [from,to) are flushed, with physically
// contiguous blocks clustered into single device transactions of up to
// MaxCluster bytes — the fewer-larger-writes effect gathering banks on.
func (fs *FS) SyncData(p *sim.Proc, ino vfs.Ino, from, to uint32) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if to > in.size {
		to = in.size
	}
	if from >= to {
		return nil
	}
	dirty := fs.getDirtyScratch()
	defer fs.putDirtyScratch(dirty)
	first := int64(from) / BlockSize
	last := (int64(to) - 1) / BlockSize
	for fb := first; fb <= last; fb++ {
		phys, _, err := fs.bmap(p, in, fb, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if b, ok := fs.cache[phys]; ok && b.dirty {
			// Pin the buffer now: the entry may be evicted or COW-replaced
			// while this flush sleeps in device I/O below.
			*dirty = append(*dirty, dirtyBlk{phys: phys, b: b, blk: b.blk.Ref()})
		}
	}
	blks := *dirty
	if len(blks) == 0 {
		return nil
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i].phys < blks[j].phys })
	// Cluster physically contiguous runs. No byte assembly: the device is
	// handed the cache buffers themselves and snapshots them by reference
	// (it takes its own refs before sleeping), eliminating both the old
	// cluster-assembly copy and the platter-store copy.
	i := 0
	for i < len(blks) {
		j := i + 1
		for j < len(blks) &&
			blks[j].phys == blks[j-1].phys+1 &&
			(j-i+1)*BlockSize <= MaxCluster {
			j++
		}
		run := blks[i:j]
		bufs := fs.getRun()
		for _, d := range run {
			bufs = append(bufs, d.blk)
		}
		err := fs.dev.WriteBufs(p, run[0].phys, bufs)
		fs.putRun(bufs)
		if err != nil {
			// The run never landed; the blocks stay dirty for a retry.
			return vfs.ErrIO
		}
		fs.DataWrites++
		for _, d := range run {
			// Clear the dirty bit only if the entry still carries the
			// buffer that just landed; an entry evicted or rewritten via
			// copy-on-write during the transfer keeps its state.
			if d.b.blk == d.blk {
				d.b.dirty = false
			}
		}
		i = j
	}
	return nil
}

// Fsync implements vfs.FileSystem: VOP_FSYNC. With FWriteMetadata the
// flush covers only the inode and indirect blocks; otherwise all dirty
// data is flushed first (clustered), then the metadata.
func (fs *FS) Fsync(p *sim.Proc, ino vfs.Ino, flags vfs.FsyncFlags) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if flags&vfs.FWriteMetadata == 0 {
		if err := fs.SyncData(p, ino, 0, in.size); err != nil {
			return err
		}
		if err := fs.flushDirtyIndirect(p, in); err != nil {
			return err
		}
		if in.dirtyCore || in.dirtyMeta || in.pendingFlush {
			return fs.flushInode(p, in, false, false)
		}
		return nil
	}
	// Metadata-only flush: the reference port's exception applies here
	// too — an inode whose only staleness is the file modify time is left
	// to an asynchronous update (§4.4), so a gather of pure overwrites
	// commits no inode write at all.
	if err := fs.flushDirtyIndirect(p, in); err != nil {
		return err
	}
	if in.dirtyMeta || in.pendingFlush {
		return fs.flushInode(p, in, true, false)
	}
	return nil
}

// MTime reports the file's current modification time; gathered replies all
// carry the value captured at metadata-commit time.
func (fs *FS) MTime(ino vfs.Ino) (sim.Time, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return 0, err
	}
	return in.mtime, nil
}

// MetaDirty reports whether the inode has uncommitted metadata beyond the
// modify time (test/diagnostic hook).
func (fs *FS) MetaDirty(ino vfs.Ino) bool {
	in, err := fs.getInode(ino)
	if err != nil {
		return false
	}
	if in.dirtyMeta {
		return true
	}
	for _, phys := range in.indBlocks {
		if b, ok := fs.cache[phys]; ok && b.dirty {
			return true
		}
	}
	return false
}
