package ufs

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Read implements vfs.FileSystem.
func (fs *FS) Read(p *sim.Proc, ino vfs.Ino, off uint32, out []byte) (int, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return 0, err
	}
	if in.ftype == vfs.TypeDir {
		return 0, vfs.ErrIsDir
	}
	if off >= in.size {
		return 0, nil
	}
	n := len(out)
	if uint32(n) > in.size-off {
		n = int(in.size - off)
	}
	read := 0
	for read < n {
		fb := int64(off+uint32(read)) / BlockSize
		bo := int64(off+uint32(read)) % BlockSize
		take := BlockSize - int(bo)
		if take > n-read {
			take = n - read
		}
		phys, _, err := fs.bmap(p, in, fb, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			// Hole: zeros.
			for i := 0; i < take; i++ {
				out[read+i] = 0
			}
		} else {
			b, cached := fs.cache[phys]
			if !cached || (!b.dirty && b.owner != ino) {
				b = fs.getBuf(p, phys, true)
				b.owner, b.fblock = ino, fb
			}
			copy(out[read:read+take], b.data[bo:bo+int64(take)])
		}
		read += take
	}
	in.atime = fs.sim.Now()
	in.dirtyCore = true
	return read, nil
}

// Write implements vfs.FileSystem: VOP_WRITE with the paper's flags.
//
//   - IODelayData: data stays dirty in the buffer cache (UFS picks its own
//     clustering policy later, via SyncData); no device I/O at all.
//   - IOSync|IODataOnly: the data blocks are pushed to the device now —
//     which, on an accelerated filesystem, means an NVRAM copy — but all
//     metadata stays in core.
//   - IOSync alone: the classic fully synchronous server path — data
//     blocks written through, then the inode block and any dirty indirect
//     blocks, with the reference port's one exception: an inode whose only
//     change is the file modify time is written asynchronously (§4.4).
func (fs *FS) Write(p *sim.Proc, ino vfs.Ino, off uint32, data []byte, flags vfs.IOFlags) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if in.ftype == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if int64(off)+int64(len(data)) > MaxFileSize {
		return vfs.ErrFBig
	}
	metaChanged := false
	// An 8K-bounded write touches at most two blocks; keep the list off
	// the heap.
	var touchedArr [4]*buf
	touched := touchedArr[:0]
	written := 0
	for written < len(data) {
		fb := int64(off+uint32(written)) / BlockSize
		bo := int64(off+uint32(written)) % BlockSize
		take := BlockSize - int(bo)
		if take > len(data)-written {
			take = len(data) - written
		}
		phys, mc, err := fs.bmap(p, in, fb, true)
		if err != nil {
			return err
		}
		metaChanged = metaChanged || mc
		// Fill from device only for a partial overwrite of an existing
		// block; whole-block writes and fresh blocks need no read.
		needFill := take != BlockSize && !mc && phys != 0
		b, cached := fs.cache[phys]
		if !cached {
			b = fs.getBuf(p, phys, needFill)
		}
		b.owner, b.fblock = ino, fb
		copy(b.data[bo:bo+int64(take)], data[written:written+take])
		b.dirty = true
		touched = append(touched, b)
		written += take
	}
	now := fs.sim.Now()
	in.mtime, in.ctime = now, now
	in.dirtyCore = true
	if end := off + uint32(len(data)); end > in.size {
		in.size = end
		metaChanged = true
	}
	if metaChanged {
		in.dirtyMeta = true
	}

	switch {
	case flags&vfs.IODelayData != 0:
		// Nothing touches the device now.
		return nil
	case flags&vfs.IODataOnly != 0:
		// Push data blocks through; metadata delayed.
		for _, b := range touched {
			if b.dirty {
				fs.writeBuf(p, b)
				fs.DataWrites++
			}
		}
		return nil
	default:
		// Fully synchronous: data, then metadata.
		for _, b := range touched {
			if b.dirty {
				fs.writeBuf(p, b)
				fs.DataWrites++
			}
		}
		// Indirect blocks dirtied by this write.
		fs.flushDirtyIndirect(p, in)
		if in.dirtyMeta {
			fs.flushInode(p, in)
		}
		// else: mtime-only change; left async per the reference port.
		return nil
	}
}

// flushDirtyIndirect writes any dirty indirect blocks belonging to in.
func (fs *FS) flushDirtyIndirect(p *sim.Proc, in *inode) {
	for _, phys := range in.indBlocks {
		if b, ok := fs.cache[phys]; ok && b.dirty {
			fs.writeBuf(p, b)
			fs.MetaWrites++
			if fs.ChargeMeta != nil {
				fs.ChargeMeta(p)
			}
		}
	}
}

// SyncData implements vfs.FileSystem: VOP_SYNCDATA with byte-range hints.
// Dirty data blocks overlapping [from,to) are flushed, with physically
// contiguous blocks clustered into single device transactions of up to
// MaxCluster bytes — the fewer-larger-writes effect gathering banks on.
func (fs *FS) SyncData(p *sim.Proc, ino vfs.Ino, from, to uint32) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if to > in.size {
		to = in.size
	}
	if from >= to {
		return nil
	}
	dirty := fs.getDirtyScratch()
	defer fs.putDirtyScratch(dirty)
	first := int64(from) / BlockSize
	last := (int64(to) - 1) / BlockSize
	for fb := first; fb <= last; fb++ {
		phys, _, err := fs.bmap(p, in, fb, false)
		if err != nil {
			return err
		}
		if phys == 0 {
			continue
		}
		if b, ok := fs.cache[phys]; ok && b.dirty {
			*dirty = append(*dirty, dirtyBlk{phys: phys, b: b})
		}
	}
	blks := *dirty
	if len(blks) == 0 {
		return nil
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i].phys < blks[j].phys })
	// Cluster physically contiguous runs.
	i := 0
	for i < len(blks) {
		j := i + 1
		for j < len(blks) &&
			blks[j].phys == blks[j-1].phys+1 &&
			(j-i+1)*BlockSize <= MaxCluster {
			j++
		}
		run := blks[i:j]
		cluster := fs.getCluster()
		for _, d := range run {
			cluster = append(cluster, d.b.data...)
		}
		fs.dev.WriteBlocks(p, run[0].phys, cluster)
		// WriteBlocks has copied the cluster to the platters by the time it
		// returns, so the buffer can go straight back to the pool even
		// though other processes may have run while the device slept.
		fs.putCluster(cluster)
		fs.DataWrites++
		for _, d := range run {
			d.b.dirty = false
		}
		i = j
	}
	return nil
}

// Fsync implements vfs.FileSystem: VOP_FSYNC. With FWriteMetadata the
// flush covers only the inode and indirect blocks; otherwise all dirty
// data is flushed first (clustered), then the metadata.
func (fs *FS) Fsync(p *sim.Proc, ino vfs.Ino, flags vfs.FsyncFlags) error {
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if flags&vfs.FWriteMetadata == 0 {
		if err := fs.SyncData(p, ino, 0, in.size); err != nil {
			return err
		}
		fs.flushDirtyIndirect(p, in)
		if in.dirtyCore || in.dirtyMeta {
			fs.flushInode(p, in)
		}
		return nil
	}
	// Metadata-only flush: the reference port's exception applies here
	// too — an inode whose only staleness is the file modify time is left
	// to an asynchronous update (§4.4), so a gather of pure overwrites
	// commits no inode write at all.
	fs.flushDirtyIndirect(p, in)
	if in.dirtyMeta {
		fs.flushInode(p, in)
	}
	return nil
}

// MTime reports the file's current modification time; gathered replies all
// carry the value captured at metadata-commit time.
func (fs *FS) MTime(ino vfs.Ino) (sim.Time, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return 0, err
	}
	return in.mtime, nil
}

// MetaDirty reports whether the inode has uncommitted metadata beyond the
// modify time (test/diagnostic hook).
func (fs *FS) MetaDirty(ino vfs.Ino) bool {
	in, err := fs.getInode(ino)
	if err != nil {
		return false
	}
	if in.dirtyMeta {
		return true
	}
	for _, phys := range in.indBlocks {
		if b, ok := fs.cache[phys]; ok && b.dirty {
			return true
		}
	}
	return false
}
