// Package ufs implements an FFS-vintage filesystem (McKusick et al. 1984)
// over a simulated block device: 8K blocks, a fixed inode region, 12 direct
// plus single and double indirect block pointers per inode, a bitmap
// allocator with sequential placement, and a buffer cache supporting
// delayed writes and 64K write clustering (McVoy & Kleiman 1991).
//
// The on-disk format is real: inodes, indirect blocks and data are
// serialized to the device, so a crash test can discard the in-core state,
// re-mount from the platters and verify exactly which writes survived.
package ufs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Filesystem geometry.
const (
	BlockSize      = 8192
	InodeSize      = 256
	InodesPerBlock = BlockSize / InodeSize
	NumDirect      = 12
	PtrsPerBlock   = BlockSize / 8
	MaxCluster     = 64 * 1024 // largest clustered device transfer
	magic          = 0x19840853
	// MaxFileSize keeps offsets within NFSv2's uint32 range.
	MaxFileSize = 1 << 31
)

// FS is a mounted filesystem instance.
type FS struct {
	sim  *sim.Sim
	dev  disk.Device
	fsid uint32

	nblocks     int64
	inodeBlocks int64
	dataStart   int64
	ninodes     int

	inodes   map[vfs.Ino]*inode
	blockMap []bool // block allocation bitmap (in-core; rebuilt by fsck on mount)
	// freeData counts free entries of blockMap[dataStart:], so Statfs is
	// O(1) instead of a bitmap sweep per call.
	freeData int64
	inodeMap []bool
	cache    map[int64]*buf
	rotor    int64
	genSeq   uint32

	pool         *block.Pool    // backs cache buffers (and COW replacements)
	dirtyScratch []*[]dirtyBlk  // SyncData dirty-list pool
	runScratch   [][]*block.Buf // device-write run pool (WriteBufs arguments)

	// inodeGates serializes on-disk writes of each inode block (lazily
	// created, one gate per block). An inode block aggregates many files'
	// inodes, and flushInode clears their dirty flags at encode time —
	// before the device write lands. Without the gate a second committer
	// could observe those cleared flags, skip its own inode write, and
	// acknowledge while the covering write is still in flight; a crash in
	// that window loses acknowledged metadata (found by the scenario
	// fuzzer). The gate makes "flags clean" imply "image durable": it is
	// held across encode and device write, so a concurrent flushInode
	// waits for the in-flight landing before trusting the flags.
	inodeGates map[int64]*sim.Resource

	// MetaWrites counts synchronous metadata transactions (inode and
	// indirect block writes), the quantity write gathering amortizes.
	MetaWrites uint64
	// DataWrites counts data-block device transactions issued by this FS.
	DataWrites uint64
	// ChargeMeta, when non-nil, is invoked once per metadata block write
	// so a host can bill the CPU cost of preparing the update (the UFS
	// trip the paper's gathering conserves).
	ChargeMeta func(p *sim.Proc)
}

// dirtyBlk pairs a dirty cache buffer with its physical block for the
// clustering sort in SyncData. blk pins the buffer captured at scan time
// (its own reference): the cache entry can be evicted by a concurrent
// truncate/remove or COW-replaced while the flush sleeps in device I/O,
// and the in-flight write must keep targeting the snapshot it captured.
type dirtyBlk struct {
	phys int64
	b    *buf
	blk  *block.Buf
}

// getDirtyScratch takes a reusable dirty-block list. SyncData can run from
// several processes at once (it yields on device I/O), so the scratch is a
// pool, not a single slot.
func (fs *FS) getDirtyScratch() *[]dirtyBlk {
	if n := len(fs.dirtyScratch); n > 0 {
		d := fs.dirtyScratch[n-1]
		fs.dirtyScratch = fs.dirtyScratch[:n-1]
		*d = (*d)[:0]
		return d
	}
	d := make([]dirtyBlk, 0, 16)
	return &d
}

// putDirtyScratch releases the captured buffer references and recycles
// the list. It runs deferred in SyncData, so a kill that unwinds the
// flusher mid-transfer drops the snapshot pins too.
func (fs *FS) putDirtyScratch(d *[]dirtyBlk) {
	for i := range *d {
		if (*d)[i].blk != nil {
			(*d)[i].blk.Release()
		}
		(*d)[i] = dirtyBlk{}
	}
	fs.dirtyScratch = append(fs.dirtyScratch, d)
}

// getRun takes a reusable device-write run (the []*block.Buf argument to
// WriteBufs). SyncData and writeBuf can run from several processes at once
// (they yield on device I/O), so the scratch is pooled.
func (fs *FS) getRun() []*block.Buf {
	if n := len(fs.runScratch); n > 0 {
		r := fs.runScratch[n-1]
		fs.runScratch = fs.runScratch[:n-1]
		return r[:0]
	}
	return make([]*block.Buf, 0, MaxCluster/BlockSize)
}

func (fs *FS) putRun(r []*block.Buf) {
	for i := range r {
		r[i] = nil
	}
	fs.runScratch = append(fs.runScratch, r[:0])
}

// buf is a buffer-cache entry for one filesystem block. data always
// aliases blk.Data(): readers use data directly, while mutators must go
// through own/ownFresh first — the backing buffer may be shared with the
// platter store, the NVRAM dirty map or an in-flight datagram, all of
// which hold point-in-time references that an in-place mutation would
// corrupt (copy-on-write discipline).
type buf struct {
	phys  int64
	blk   *block.Buf
	data  []byte
	dirty bool
	// For data blocks: which file and file-block this caches; inode blocks
	// and indirect blocks have owner == 0.
	owner  vfs.Ino
	fblock int64
}

// own prepares a cache buffer for partial in-place mutation: if the
// backing buffer is shared, it is replaced by a fresh copy (the one copy a
// partial rewrite of committed contents must pay).
func (fs *FS) own(b *buf) {
	if b.blk.Unique() {
		return
	}
	nb := fs.pool.Get()
	fs.pool.Acct().CountCopy(copy(nb.Data(), b.blk.Data()))
	b.blk.Release()
	b.blk = nb
	b.data = nb.Data()
}

// ownFresh prepares a cache buffer for whole-block overwrite: a shared
// backing buffer is swapped for a fresh one without copying, since every
// byte is about to be rewritten.
func (fs *FS) ownFresh(b *buf) {
	if b.blk.Unique() {
		return
	}
	b.blk.Release()
	b.blk = fs.pool.Get()
	b.data = b.blk.Data()
}

// adopt points the cache entry at nb (taking a reference), discarding the
// previous backing buffer: the zero-copy landing of a full-block WRITE
// payload.
func (b *buf) adopt(nb *block.Buf) {
	b.blk.Release()
	b.blk = nb.Ref()
	b.data = b.blk.Data()
}

// Format writes a fresh filesystem onto dev and returns it mounted.
// ninodes is rounded up to a whole inode block.
func Format(s *sim.Sim, dev disk.Device, fsid uint32, ninodes int, acct *block.Accounting) (*FS, error) {
	if dev.BlockSize() != BlockSize {
		return nil, fmt.Errorf("ufs: device block size %d, want %d", dev.BlockSize(), BlockSize)
	}
	ib := int64((ninodes + InodesPerBlock - 1) / InodesPerBlock)
	fs := &FS{
		sim:         s,
		dev:         dev,
		fsid:        fsid,
		nblocks:     dev.NumBlocks(),
		inodeBlocks: ib,
		dataStart:   1 + ib,
		ninodes:     int(ib) * InodesPerBlock,
		inodes:      make(map[vfs.Ino]*inode),
		cache:       make(map[int64]*buf),
		pool:        block.Or(acct).NewPool(),
	}
	if fs.dataStart >= fs.nblocks {
		return nil, fmt.Errorf("ufs: device too small: %d blocks", fs.nblocks)
	}
	fs.blockMap = make([]bool, fs.nblocks)
	for i := int64(0); i < fs.dataStart; i++ {
		fs.blockMap[i] = true
	}
	fs.freeData = fs.nblocks - fs.dataStart
	fs.inodeMap = make([]bool, fs.ninodes+1) // ino 0 unused
	fs.inodeMap[0] = true
	fs.rotor = fs.dataStart

	// Root directory: ino 1.
	root := fs.allocInode(vfs.TypeDir, 0755)
	if root == nil {
		return nil, fmt.Errorf("ufs: cannot allocate root inode")
	}
	root.nlink = 2
	root.dirtyCore, root.dirtyMeta = true, true
	return fs, nil
}

// Root implements vfs.FileSystem.
func (fs *FS) Root() vfs.Ino { return 1 }

// FSID implements vfs.FileSystem.
func (fs *FS) FSID() uint32 { return fs.fsid }

// Device returns the backing device.
func (fs *FS) Device() disk.Device { return fs.dev }

// Statfs implements vfs.FileSystem.
func (fs *FS) Statfs(p *sim.Proc) (int, int64, int64) {
	return BlockSize, fs.nblocks - fs.dataStart, fs.freeData
}

// markUsed claims block b in the bitmap, maintaining the free counter.
func (fs *FS) markUsed(b int64) {
	if !fs.blockMap[b] {
		fs.blockMap[b] = true
		fs.freeData--
	}
}

// markFree releases block b in the bitmap, maintaining the free counter.
func (fs *FS) markFree(b int64) {
	if fs.blockMap[b] {
		fs.blockMap[b] = false
		fs.freeData++
	}
}

// inodeGate returns (creating on first use) the flush gate for the inode
// block at phys. Acquiring it with no flush in flight costs no simulated
// time, so the gate is free outside the contended window it exists for.
func (fs *FS) inodeGate(phys int64) *sim.Resource {
	g, ok := fs.inodeGates[phys]
	if !ok {
		if fs.inodeGates == nil {
			fs.inodeGates = make(map[int64]*sim.Resource)
		}
		g = sim.NewResource(fs.sim, 1)
		fs.inodeGates[phys] = g
	}
	return g
}

// DirtyBlocks reports how many cache buffers are dirty (test/diagnostic).
func (fs *FS) DirtyBlocks() int {
	n := 0
	for _, b := range fs.cache {
		if b.dirty {
			n++
		}
	}
	return n
}

// superblock layout: magic, nblocks, inodeBlocks, fsid.
func (fs *FS) encodeSuper() []byte {
	b := make([]byte, BlockSize)
	binary.BigEndian.PutUint32(b[0:], magic)
	binary.BigEndian.PutUint64(b[4:], uint64(fs.nblocks))
	binary.BigEndian.PutUint64(b[12:], uint64(fs.inodeBlocks))
	binary.BigEndian.PutUint32(b[20:], fs.fsid)
	return b
}

// devErr maps a device-level failure to the vfs error the NFS layer
// understands; nil passes through.
func devErr(err error) error {
	if err != nil {
		return vfs.ErrIO
	}
	return nil
}

// WriteSuper flushes the superblock (done once at format time by callers
// that care about full recoverability).
func (fs *FS) WriteSuper(p *sim.Proc) error {
	return devErr(fs.dev.WriteBlocks(p, 0, fs.encodeSuper()))
}

// Mount re-reads a filesystem previously written to dev: superblock, then
// every inode block; the allocation bitmaps are rebuilt by walking the
// block pointers of live inodes (what fsck does). All volatile state is
// discarded — this is the crash-recovery entry point.
func Mount(s *sim.Sim, p *sim.Proc, dev disk.Device, acct *block.Accounting) (*FS, error) {
	sb := make([]byte, BlockSize)
	if err := dev.ReadBlocks(p, 0, sb); err != nil {
		return nil, fmt.Errorf("ufs: mount: superblock read: %w", err)
	}
	if binary.BigEndian.Uint32(sb[0:]) != magic {
		return nil, fmt.Errorf("ufs: bad magic on device")
	}
	fs := &FS{
		sim:         s,
		dev:         dev,
		fsid:        binary.BigEndian.Uint32(sb[20:]),
		nblocks:     int64(binary.BigEndian.Uint64(sb[4:])),
		inodeBlocks: int64(binary.BigEndian.Uint64(sb[12:])),
		inodes:      make(map[vfs.Ino]*inode),
		cache:       make(map[int64]*buf),
		pool:        block.Or(acct).NewPool(),
	}
	fs.dataStart = 1 + fs.inodeBlocks
	fs.ninodes = int(fs.inodeBlocks) * InodesPerBlock
	fs.blockMap = make([]bool, fs.nblocks)
	for i := int64(0); i < fs.dataStart; i++ {
		fs.blockMap[i] = true
	}
	fs.freeData = fs.nblocks - fs.dataStart
	fs.inodeMap = make([]bool, fs.ninodes+1)
	fs.inodeMap[0] = true
	fs.rotor = fs.dataStart

	// Read the inode region and rebuild the tables.
	blk := make([]byte, BlockSize)
	for ib := int64(0); ib < fs.inodeBlocks; ib++ {
		if err := dev.ReadBlocks(p, 1+ib, blk); err != nil {
			return nil, fmt.Errorf("ufs: mount: inode region read: %w", err)
		}
		for j := 0; j < InodesPerBlock; j++ {
			ino := vfs.Ino(ib)*InodesPerBlock + vfs.Ino(j) + 1
			if int(ino) > fs.ninodes {
				break
			}
			in := decodeInode(ino, blk[j*InodeSize:(j+1)*InodeSize])
			if in == nil {
				continue
			}
			fs.inodes[ino] = in
			fs.inodeMap[ino] = true
			if err := fs.claimBlocks(p, in); err != nil {
				return nil, fmt.Errorf("ufs: mount: block claim: %w", err)
			}
		}
	}
	return fs, nil
}

// claimBlocks marks every block reachable from in as used, reading indirect
// blocks from the device. Every pointer-bearing block it visits is also
// registered in the inode's indBlocks list: a metadata-only fsync flushes
// dirty indirect blocks by that list, so an indirect block that predates
// the mount must be on it or post-remount pointer updates would never
// reach the platters (lost on the next crash).
// DebugSkipIndirectClaim, when true, skips the indBlocks registration in
// claimBlocks — re-introducing the historical remount bug where indirect
// blocks read at mount time were invisible to metadata-only fsync. It
// exists solely so the scenario fuzzer's planted-bug test can prove the
// durability harness catches the regression. Never set in production code.
var DebugSkipIndirectClaim = false

func (fs *FS) claimBlocks(p *sim.Proc, in *inode) error {
	for _, b := range in.direct {
		if b != 0 {
			fs.markUsed(b)
		}
	}
	claimIndirect := func(blk int64, depth int) error {
		var walk func(int64, int) error
		walk = func(b int64, d int) error {
			if b == 0 {
				return nil
			}
			fs.markUsed(b)
			if !DebugSkipIndirectClaim {
				in.indBlocks = append(in.indBlocks, b)
			}
			raw := make([]byte, BlockSize)
			if err := fs.dev.ReadBlocks(p, b, raw); err != nil {
				return err
			}
			for i := 0; i < PtrsPerBlock; i++ {
				ptr := int64(binary.BigEndian.Uint64(raw[i*8:]))
				if ptr == 0 {
					continue
				}
				if d > 0 {
					if err := walk(ptr, d-1); err != nil {
						return err
					}
				} else {
					fs.markUsed(ptr)
				}
			}
			return nil
		}
		return walk(blk, depth)
	}
	if err := claimIndirect(in.indirect, 0); err != nil {
		return err
	}
	return claimIndirect(in.dindirect, 1)
}

// getBuf returns the cache buffer for physical block phys, reading it from
// the device if fill is true and it is absent. An absent, unfilled buffer
// comes back zeroed (a fresh block's holes must read as zeros). A device
// read failure surfaces as vfs.ErrIO and caches nothing.
func (fs *FS) getBuf(p *sim.Proc, phys int64, fill bool) (*buf, error) {
	if b, ok := fs.cache[phys]; ok {
		return b, nil
	}
	if !fill {
		return fs.insertBuf(phys, fs.pool.GetZero()), nil
	}
	blk := fs.pool.Get()
	stored := false
	defer func() {
		// Covers the lost race below, a failed read, and a kill that
		// unwinds this process out of the device read.
		if !stored {
			blk.Release()
		}
	}()
	if err := fs.dev.ReadBlocks(p, phys, blk.Data()); err != nil { // yields
		return nil, vfs.ErrIO
	}
	if b, ok := fs.cache[phys]; ok {
		// Another process cached this block while the read slept (two
		// nfsds flushing inodes that share a block race here). Keep its
		// entry — it may already carry dirty mutations — and drop the
		// duplicate read; inserting over it would strand its buffer
		// reference and lose its state.
		return b, nil
	}
	b := fs.insertBuf(phys, blk)
	stored = true
	return b, nil
}

// insertBuf installs blk (whose reference the cache takes over) as the
// entry for phys. Records are never pooled — an evicted record may still
// be referenced by a flusher that captured it before a yield, and reusing
// it would alias two blocks through one pointer.
func (fs *FS) insertBuf(phys int64, blk *block.Buf) *buf {
	b := &buf{phys: phys, blk: blk, data: blk.Data()}
	fs.cache[phys] = b
	return b
}

// evict removes a block from the cache, releasing the cache's reference
// to its backing buffer. The record is tombstoned (blk/data nil), never
// recycled: a flusher that captured it before yielding on device I/O may
// still hold the pointer, and sees the tombstone instead of an aliased
// reuse. Evicting an uncached block is a no-op.
func (fs *FS) evict(phys int64) {
	b, ok := fs.cache[phys]
	if !ok {
		return
	}
	delete(fs.cache, phys)
	b.blk.Release()
	b.blk, b.data = nil, nil
}

// writeBuf pushes one cache buffer to the device synchronously (zero-copy:
// the device stores a reference to the backing buffer). The flush pins its
// own snapshot reference across the device sleep, and only clears the
// dirty bit if the entry is still current — a concurrent truncate may
// evict it, and a concurrent copy-on-write may replace its buffer, while
// the arm is busy. An already-evicted record is a no-op.
func (fs *FS) writeBuf(p *sim.Proc, b *buf) error {
	if b.blk == nil {
		return nil // evicted while the caller slept in an earlier flush
	}
	blk := b.blk.Ref()
	run := fs.getRun()
	run = append(run, blk)
	defer func() {
		fs.putRun(run)
		blk.Release()
	}()
	if err := fs.dev.WriteBufs(p, b.phys, run); err != nil {
		// The block stays dirty; a later flush retries.
		return vfs.ErrIO
	}
	if b.blk == blk {
		b.dirty = false
	}
	return nil
}

// CachedBufs reports how many cache entries hold a buffer reference
// (leak-check accounting).
func (fs *FS) CachedBufs() int { return len(fs.cache) }

// DropCaches discards all volatile state without flushing: the crash.
// After this, only Mount can resurrect the filesystem. The cache's buffer
// references are host memory, not stable storage, so they are released;
// contents shared with the platter store live on there.
func (fs *FS) DropCaches() {
	for _, b := range fs.cache {
		b.blk.Release()
		b.blk, b.data = nil, nil
	}
	fs.cache = make(map[int64]*buf)
	fs.inodes = make(map[vfs.Ino]*inode)
}
