package ufs

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// rig builds a formatted filesystem on a fresh RZ26.
func rig(t *testing.T, seed int64) (*sim.Sim, *FS, *disk.Disk) {
	t.Helper()
	s := sim.New(seed)
	d := disk.New(s, hw.RZ26(), nil)
	fs, err := Format(s, d, 1, 256, nil)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return s, fs, d
}

// run executes fn as a simulation process and drives the sim to completion.
func run(s *sim.Sim, fn func(p *sim.Proc)) {
	s.Spawn("test", fn)
	s.Run(0)
}

func TestCreateLookup(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, err := fs.Create(p, fs.Root(), "hello.txt", 0644)
		if err != nil {
			t.Errorf("Create: %v", err)
			return
		}
		got, err := fs.Lookup(p, fs.Root(), "hello.txt")
		if err != nil || got != ino {
			t.Errorf("Lookup = %d, %v; want %d", got, err, ino)
		}
		if _, err := fs.Lookup(p, fs.Root(), "missing"); err != vfs.ErrNoEnt {
			t.Errorf("Lookup missing = %v, want ErrNoEnt", err)
		}
	})
}

func TestCreateDuplicateFails(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		if _, err := fs.Create(p, fs.Root(), "f", 0644); err != nil {
			t.Errorf("Create: %v", err)
		}
		if _, err := fs.Create(p, fs.Root(), "f", 0644); err != vfs.ErrExist {
			t.Errorf("duplicate Create = %v, want ErrExist", err)
		}
	})
}

func TestWriteReadBack(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "data", 0644)
		data := make([]byte, 8192)
		for i := range data {
			data[i] = byte(i * 3)
		}
		if err := fs.Write(p, ino, 0, data, vfs.IOSync); err != nil {
			t.Errorf("Write: %v", err)
		}
		got := make([]byte, 8192)
		n, err := fs.Read(p, ino, 0, got)
		if err != nil || n != 8192 {
			t.Errorf("Read = %d, %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Error("read-back mismatch")
		}
	})
}

func TestWriteGrowsFileThroughIndirect(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "big", 0644)
		// 14 blocks crosses the 12-direct-block boundary.
		data := make([]byte, 8192)
		for blk := 0; blk < 14; blk++ {
			for i := range data {
				data[i] = byte(blk + i)
			}
			if err := fs.Write(p, ino, uint32(blk*8192), data, vfs.IOSync); err != nil {
				t.Errorf("Write blk %d: %v", blk, err)
				return
			}
		}
		a, _ := fs.GetAttr(p, ino)
		if a.Size != 14*8192 {
			t.Errorf("Size = %d", a.Size)
		}
		got := make([]byte, 8192)
		for blk := 0; blk < 14; blk++ {
			fs.Read(p, ino, uint32(blk*8192), got)
			if got[0] != byte(blk) {
				t.Errorf("blk %d content mismatch: %d", blk, got[0])
			}
		}
	})
}

func TestSparseFileReadsZeros(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "sparse", 0644)
		if err := fs.Write(p, ino, 5*8192, []byte("end"), vfs.IOSync); err != nil {
			t.Errorf("Write: %v", err)
		}
		got := make([]byte, 8192)
		n, err := fs.Read(p, ino, 8192, got)
		if err != nil || n != 8192 {
			t.Errorf("Read hole = %d, %v", n, err)
		}
		for _, b := range got {
			if b != 0 {
				t.Error("hole not zero-filled")
				break
			}
		}
	})
}

func TestPartialBlockWrite(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "p", 0644)
		fs.Write(p, ino, 0, bytes.Repeat([]byte{0xAA}, 8192), vfs.IOSync)
		fs.Write(p, ino, 100, []byte("inserted"), vfs.IOSync)
		got := make([]byte, 8192)
		fs.Read(p, ino, 0, got)
		if got[99] != 0xAA || string(got[100:108]) != "inserted" || got[108] != 0xAA {
			t.Error("partial overwrite damaged surrounding bytes")
		}
	})
}

func TestDelayDataDoesNoDeviceIO(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "lazy", 0644)
		before := d.Stats().Writes
		if err := fs.Write(p, ino, 0, make([]byte, 8192), vfs.IODelayData); err != nil {
			t.Errorf("Write: %v", err)
		}
		if d.Stats().Writes != before {
			t.Error("IODelayData touched the device")
		}
		if fs.DirtyBlocks() == 0 {
			t.Error("no dirty buffer after delayed write")
		}
	})
}

func TestDataOnlyWritesDataNotMetadata(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "d", 0644)
		metaBefore := fs.MetaWrites
		if err := fs.Write(p, ino, 0, make([]byte, 8192), vfs.IOSync|vfs.IODataOnly); err != nil {
			t.Errorf("Write: %v", err)
		}
		if fs.MetaWrites != metaBefore {
			t.Error("IODataOnly flushed metadata")
		}
		if !fs.MetaDirty(ino) {
			t.Error("metadata not left dirty")
		}
	})
}

func TestSyncWritePersistsMetadata(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "s", 0644)
		if err := fs.Write(p, ino, 0, make([]byte, 8192), vfs.IOSync); err != nil {
			t.Errorf("Write: %v", err)
		}
		if fs.MetaDirty(ino) {
			t.Error("full sync write left metadata dirty")
		}
	})
}

func TestMTimeOnlyInodeUpdateIsAsync(t *testing.T) {
	// The reference-port special case (§4.4): overwriting an allocated
	// block changes only mtime, so the sync path skips the inode write.
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "m", 0644)
		buf := make([]byte, 8192)
		fs.Write(p, ino, 0, buf, vfs.IOSync)
		metaBefore := fs.MetaWrites
		fs.Write(p, ino, 0, buf, vfs.IOSync) // overwrite: mtime-only
		if fs.MetaWrites != metaBefore {
			t.Errorf("mtime-only overwrite did %d metadata writes", fs.MetaWrites-metaBefore)
		}
	})
}

func TestSyncDataClusters(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "c", 0644)
		// 8 delayed sequential writes -> one 64K cluster.
		for i := 0; i < 8; i++ {
			fs.Write(p, ino, uint32(i*8192), make([]byte, 8192), vfs.IODelayData)
		}
		before := d.Stats().Writes
		if err := fs.SyncData(p, ino, 0, 8*8192); err != nil {
			t.Errorf("SyncData: %v", err)
		}
		n := d.Stats().Writes - before
		if n != 1 {
			t.Errorf("SyncData issued %d transactions, want 1 (64K cluster)", n)
		}
	})
}

func TestSyncDataRangeHonored(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "r", 0644)
		for i := 0; i < 4; i++ {
			fs.Write(p, ino, uint32(i*8192), make([]byte, 8192), vfs.IODelayData)
		}
		before := d.Stats().WriteBytes
		fs.SyncData(p, ino, 0, 2*8192)
		flushed := d.Stats().WriteBytes - before
		if flushed != 2*8192 {
			t.Errorf("flushed %d bytes, want 16384", flushed)
		}
		if fs.DirtyBlocks() < 2 {
			t.Error("out-of-range blocks were flushed")
		}
	})
}

func TestFsyncMetadataOnly(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "f", 0644)
		fs.Write(p, ino, 0, make([]byte, 8192), vfs.IODelayData)
		dataBefore := d.Stats().WriteBytes
		if err := fs.Fsync(p, ino, vfs.FWrite|vfs.FWriteMetadata); err != nil {
			t.Errorf("Fsync: %v", err)
		}
		if fs.MetaDirty(ino) {
			t.Error("metadata still dirty after metadata fsync")
		}
		// The delayed data block must NOT have been flushed: only the
		// inode block went out.
		if got := d.Stats().WriteBytes - dataBefore; got != 8192 {
			t.Errorf("metadata-only fsync moved %d bytes, want 8192 (inode block)", got)
		}
	})
}

func TestFullFsyncFlushesEverything(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "g", 0644)
		for i := 0; i < 3; i++ {
			fs.Write(p, ino, uint32(i*8192), make([]byte, 8192), vfs.IODelayData)
		}
		if err := fs.Fsync(p, ino, vfs.FWrite); err != nil {
			t.Errorf("Fsync: %v", err)
		}
		if fs.DirtyBlocks() != 0 {
			t.Errorf("%d dirty blocks after full fsync", fs.DirtyBlocks())
		}
	})
}

func TestRemove(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "gone", 0644)
		fs.Write(p, ino, 0, make([]byte, 16384), vfs.IOSync)
		_, _, freeBefore := fs.Statfs(p)
		if err := fs.Remove(p, fs.Root(), "gone"); err != nil {
			t.Errorf("Remove: %v", err)
		}
		if _, err := fs.Lookup(p, fs.Root(), "gone"); err != vfs.ErrNoEnt {
			t.Errorf("Lookup after remove = %v", err)
		}
		if _, err := fs.GetAttr(p, ino); err != vfs.ErrStale {
			t.Errorf("GetAttr after remove = %v, want ErrStale", err)
		}
		_, _, freeAfter := fs.Statfs(p)
		if freeAfter <= freeBefore {
			t.Error("remove did not free blocks")
		}
	})
}

func TestMkdirRmdir(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		sub, err := fs.Mkdir(p, fs.Root(), "sub", 0755)
		if err != nil {
			t.Errorf("Mkdir: %v", err)
			return
		}
		if _, err := fs.Create(p, sub, "inner", 0644); err != nil {
			t.Errorf("Create in subdir: %v", err)
		}
		if err := fs.Rmdir(p, fs.Root(), "sub"); err != vfs.ErrNotEmpty {
			t.Errorf("Rmdir non-empty = %v, want ErrNotEmpty", err)
		}
		fs.Remove(p, sub, "inner")
		if err := fs.Rmdir(p, fs.Root(), "sub"); err != nil {
			t.Errorf("Rmdir: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "a", 0644)
		sub, _ := fs.Mkdir(p, fs.Root(), "dir", 0755)
		if err := fs.Rename(p, fs.Root(), "a", sub, "b"); err != nil {
			t.Errorf("Rename: %v", err)
		}
		if _, err := fs.Lookup(p, fs.Root(), "a"); err != vfs.ErrNoEnt {
			t.Errorf("old name survives: %v", err)
		}
		got, err := fs.Lookup(p, sub, "b")
		if err != nil || got != ino {
			t.Errorf("new name = %d, %v", got, err)
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		a, _ := fs.Create(p, fs.Root(), "a", 0644)
		b, _ := fs.Create(p, fs.Root(), "b", 0644)
		if err := fs.Rename(p, fs.Root(), "a", fs.Root(), "b"); err != nil {
			t.Errorf("Rename: %v", err)
		}
		got, _ := fs.Lookup(p, fs.Root(), "b")
		if got != a {
			t.Errorf("b resolves to %d, want %d", got, a)
		}
		if _, err := fs.GetAttr(p, b); err != vfs.ErrStale {
			t.Errorf("replaced inode alive: %v", err)
		}
	})
}

func TestReaddir(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		names := []string{"one", "two", "three", "four"}
		for _, n := range names {
			fs.Create(p, fs.Root(), n, 0644)
		}
		var all []string
		cookie := uint32(0)
		for {
			ents, eof, err := fs.Readdir(p, fs.Root(), cookie, 64)
			if err != nil {
				t.Errorf("Readdir: %v", err)
				return
			}
			for _, e := range ents {
				all = append(all, e.Name)
				cookie = e.Cookie
			}
			if eof {
				break
			}
		}
		if len(all) != len(names) {
			t.Errorf("Readdir produced %v", all)
		}
	})
}

func TestSetAttrsTruncate(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "t", 0644)
		fs.Write(p, ino, 0, make([]byte, 14*8192), vfs.IOSync) // spans indirect
		_, _, freeBefore := fs.Statfs(p)
		size := uint32(8192)
		a, err := fs.SetAttrs(p, ino, vfs.SetAttr{Size: &size})
		if err != nil || a.Size != 8192 {
			t.Errorf("SetAttrs = %+v, %v", a, err)
		}
		_, _, freeAfter := fs.Statfs(p)
		if freeAfter <= freeBefore {
			t.Error("truncate freed no blocks")
		}
		// Data past EOF must be gone even if the file grows again.
		size2 := uint32(3 * 8192)
		fs.SetAttrs(p, ino, vfs.SetAttr{Size: &size2})
		got := make([]byte, 8192)
		fs.Read(p, ino, 2*8192, got)
		for _, b := range got {
			if b != 0 {
				t.Error("truncated data visible after re-extension")
				break
			}
		}
	})
}

func TestCrashBeforeMetadataFlushLosesFile(t *testing.T) {
	// Write data with metadata delayed, crash, remount: the data blocks
	// are unreachable because the inode never went out. This is exactly
	// why an NFS server must not reply before the metadata commit.
	s, fs, d := rig(t, 1)
	var ino vfs.Ino
	run(s, func(p *sim.Proc) {
		fs.WriteSuper(p)
		ino, _ = fs.Create(p, fs.Root(), "x", 0644)
		fs.Write(p, ino, 0, bytes.Repeat([]byte{0xEE}, 8192), vfs.IODataOnly|vfs.IOSync)
		// no Fsync: crash now
	})
	fs.DropCaches()
	s2 := sim.New(2)
	var m *FS
	s2.Spawn("mount", func(p *sim.Proc) {
		var err error
		m, err = Mount(s2, p, d, nil)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		a, err := m.GetAttr(p, ino)
		if err != nil {
			return // inode never made it to disk: acceptable loss shape
		}
		if a.Size != 0 {
			t.Errorf("uncommitted size %d survived crash", a.Size)
		}
	})
	s2.Run(0)
}

func TestCrashAfterFsyncKeepsFile(t *testing.T) {
	s, fs, d := rig(t, 1)
	var ino vfs.Ino
	payload := bytes.Repeat([]byte{0xEE}, 8192)
	run(s, func(p *sim.Proc) {
		fs.WriteSuper(p)
		ino, _ = fs.Create(p, fs.Root(), "x", 0644)
		fs.Write(p, ino, 0, payload, vfs.IOSync|vfs.IODataOnly)
		fs.Fsync(p, ino, vfs.FWrite|vfs.FWriteMetadata)
	})
	fs.DropCaches()
	s2 := sim.New(2)
	s2.Spawn("mount", func(p *sim.Proc) {
		m, err := Mount(s2, p, d, nil)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		a, err := m.GetAttr(p, ino)
		if err != nil {
			t.Errorf("GetAttr after remount: %v", err)
			return
		}
		if a.Size != 8192 {
			t.Errorf("recovered size = %d", a.Size)
		}
		got := make([]byte, 8192)
		if _, err := m.Read(p, ino, 0, got); err != nil {
			t.Errorf("Read after remount: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("recovered content mismatch")
		}
	})
	s2.Run(0)
}

func TestRemountPreservesDirectoryTree(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		fs.WriteSuper(p)
		sub, _ := fs.Mkdir(p, fs.Root(), "docs", 0755)
		ino, _ := fs.Create(p, sub, "readme", 0644)
		fs.Write(p, ino, 0, []byte("hello"), vfs.IOSync)
		fs.Fsync(p, ino, vfs.FWrite)
		fs.Fsync(p, sub, vfs.FWrite)
	})
	fs.DropCaches()
	s2 := sim.New(2)
	s2.Spawn("mount", func(p *sim.Proc) {
		m, err := Mount(s2, p, d, nil)
		if err != nil {
			t.Errorf("Mount: %v", err)
			return
		}
		sub, err := m.Lookup(p, m.Root(), "docs")
		if err != nil {
			t.Errorf("Lookup docs: %v", err)
			return
		}
		f, err := m.Lookup(p, sub, "readme")
		if err != nil {
			t.Errorf("Lookup readme: %v", err)
			return
		}
		got := make([]byte, 5)
		m.Read(p, f, 0, got)
		if string(got) != "hello" {
			t.Errorf("content = %q", got)
		}
	})
	s2.Run(0)
}

func TestQuickWriteReadProperty(t *testing.T) {
	// Random (offset, content) writes through any flag mode must read
	// back exactly, and a remount after full fsync must agree.
	f := func(seed int64, offs []uint16, fills []byte, mode uint8) bool {
		if len(offs) == 0 || len(fills) == 0 {
			return true
		}
		if len(offs) > 12 {
			offs = offs[:12]
		}
		s := sim.New(seed)
		d := disk.New(s, hw.RZ26(), nil)
		fs, err := Format(s, d, 1, 64, nil)
		if err != nil {
			return false
		}
		flags := []vfs.IOFlags{vfs.IOSync, vfs.IOSync | vfs.IODataOnly, vfs.IODelayData}[mode%3]
		shadow := make([]byte, 1<<20)
		maxEnd := uint32(0)
		ok := true
		s.Spawn("t", func(p *sim.Proc) {
			ino, err := fs.Create(p, fs.Root(), "f", 0644)
			if err != nil {
				ok = false
				return
			}
			for i, o := range offs {
				off := uint32(o) % (1 << 19)
				fill := fills[i%len(fills)]
				chunk := bytes.Repeat([]byte{fill}, 1+int(o)%8192)
				if err := fs.Write(p, ino, off, chunk, flags); err != nil {
					ok = false
					return
				}
				copy(shadow[off:], chunk)
				if end := off + uint32(len(chunk)); end > maxEnd {
					maxEnd = end
				}
			}
			got := make([]byte, maxEnd)
			n, err := fs.Read(p, ino, 0, got)
			if err != nil || uint32(n) != maxEnd {
				ok = false
				return
			}
			if !bytes.Equal(got, shadow[:maxEnd]) {
				ok = false
			}
		})
		s.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocatorNeverDoubleAllocates(t *testing.T) {
	f := func(seed int64, nFiles uint8) bool {
		s := sim.New(seed)
		d := disk.New(s, hw.RZ26(), nil)
		fs, err := Format(s, d, 1, 64, nil)
		if err != nil {
			return false
		}
		n := int(nFiles%8) + 2
		ok := true
		s.Spawn("t", func(p *sim.Proc) {
			seen := map[int64]vfs.Ino{}
			for i := 0; i < n; i++ {
				name := string(rune('a' + i))
				ino, err := fs.Create(p, fs.Root(), name, 0644)
				if err != nil {
					ok = false
					return
				}
				fs.Write(p, ino, 0, make([]byte, 3*8192), vfs.IODelayData)
				in := fs.inodes[ino]
				for _, b := range in.direct {
					if b == 0 {
						continue
					}
					if owner, dup := seen[b]; dup && owner != ino {
						ok = false
						return
					}
					seen[b] = ino
				}
			}
		})
		s.Run(0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTooSmallDevice(t *testing.T) {
	s := sim.New(1)
	params := hw.RZ26()
	params.NumBlocks = 4
	d := disk.New(s, params, nil)
	if _, err := Format(s, d, 1, 256, nil); err == nil {
		t.Fatal("Format accepted a 4-block device with a 9-block inode region")
	}
}

func TestStatfs(t *testing.T) {
	s, fs, _ := rig(t, 1)
	run(s, func(p *sim.Proc) {
		bs, total, free1 := fs.Statfs(p)
		if bs != 8192 || total <= 0 || free1 <= 0 {
			t.Errorf("Statfs = %d, %d, %d", bs, total, free1)
		}
		ino, _ := fs.Create(p, fs.Root(), "f", 0644)
		fs.Write(p, ino, 0, make([]byte, 10*8192), vfs.IOSync)
		_, _, free2 := fs.Statfs(p)
		if free2 >= free1 {
			t.Error("allocation did not reduce free count")
		}
	})
}
