package ufs

import (
	"encoding/binary"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// inode is the in-core inode. dirtyCore means the on-disk copy is stale in
// any way; dirtyMeta means it is stale in a way the stable-storage contract
// cares about (size or block pointers changed — not just the file modify
// time, which the reference port is willing to lose, §4.4).
type inode struct {
	num   vfs.Ino
	ftype vfs.FileType
	mode  uint32
	nlink uint32
	uid   uint32
	gid   uint32
	size  uint32
	gen   uint32
	atime sim.Time
	mtime sim.Time
	ctime sim.Time

	direct    [NumDirect]int64
	indirect  int64
	dindirect int64

	dirtyCore bool
	dirtyMeta bool
	// pendingFlush marks an inode whose dirty state was encoded into an
	// inode-block write that has not yet landed. The encoder clears the
	// dirty flags, so without this marker a committer racing the in-flight
	// write would take "flags clean" for "durable" and acknowledge early;
	// with it, sync paths route through flushInode, which waits on the
	// block's flush gate for the landing.
	pendingFlush bool
	// indBlocks tracks physical block numbers of this file's indirect
	// blocks so a metadata-only fsync can find the dirty ones.
	indBlocks []int64

	// dents memoizes the parsed directory contents (directories only);
	// dentsOK marks it valid. The cache is rebuilt from the buffer cache
	// on the next loadDir after any invalidation, so it never changes
	// simulated I/O: once a directory's blocks are in core they stay
	// there, and the parse itself costs no virtual time. storing counts
	// in-flight storeDir calls; parses taken during one are transient and
	// must not be memoized.
	dents   []dirent
	dentsOK bool
	storing int
}

// encodeInode serializes an inode into a 256-byte slot. A zero ftype slot
// is a free inode.
func (in *inode) encode(dst []byte) {
	for i := range dst[:InodeSize] {
		dst[i] = 0
	}
	binary.BigEndian.PutUint32(dst[0:], uint32(in.ftype))
	binary.BigEndian.PutUint32(dst[4:], in.mode)
	binary.BigEndian.PutUint32(dst[8:], in.nlink)
	binary.BigEndian.PutUint32(dst[12:], in.uid)
	binary.BigEndian.PutUint32(dst[16:], in.gid)
	binary.BigEndian.PutUint32(dst[20:], in.size)
	binary.BigEndian.PutUint32(dst[24:], in.gen)
	binary.BigEndian.PutUint64(dst[28:], uint64(in.atime))
	binary.BigEndian.PutUint64(dst[36:], uint64(in.mtime))
	binary.BigEndian.PutUint64(dst[44:], uint64(in.ctime))
	off := 52
	for _, d := range in.direct {
		binary.BigEndian.PutUint64(dst[off:], uint64(d))
		off += 8
	}
	binary.BigEndian.PutUint64(dst[off:], uint64(in.indirect))
	binary.BigEndian.PutUint64(dst[off+8:], uint64(in.dindirect))
}

// decodeInode parses a 256-byte slot; nil for a free slot.
func decodeInode(num vfs.Ino, src []byte) *inode {
	ft := vfs.FileType(binary.BigEndian.Uint32(src[0:]))
	if ft == 0 {
		return nil
	}
	in := &inode{num: num, ftype: ft}
	in.mode = binary.BigEndian.Uint32(src[4:])
	in.nlink = binary.BigEndian.Uint32(src[8:])
	in.uid = binary.BigEndian.Uint32(src[12:])
	in.gid = binary.BigEndian.Uint32(src[16:])
	in.size = binary.BigEndian.Uint32(src[20:])
	in.gen = binary.BigEndian.Uint32(src[24:])
	in.atime = sim.Time(binary.BigEndian.Uint64(src[28:]))
	in.mtime = sim.Time(binary.BigEndian.Uint64(src[36:]))
	in.ctime = sim.Time(binary.BigEndian.Uint64(src[44:]))
	off := 52
	for i := range in.direct {
		in.direct[i] = int64(binary.BigEndian.Uint64(src[off:]))
		off += 8
	}
	in.indirect = int64(binary.BigEndian.Uint64(src[off:]))
	in.dindirect = int64(binary.BigEndian.Uint64(src[off+8:]))
	return in
}

// inodeBlock returns the physical block holding ino's on-disk slot and the
// slot index within it.
func inodeBlock(ino vfs.Ino) (int64, int) {
	idx := int64(ino - 1)
	return 1 + idx/InodesPerBlock, int(idx % InodesPerBlock)
}

// allocInode finds a free inode number and initializes the in-core inode.
func (fs *FS) allocInode(ft vfs.FileType, mode uint32) *inode {
	for i := 1; i <= fs.ninodes; i++ {
		if !fs.inodeMap[i] {
			fs.inodeMap[i] = true
			fs.genSeq++
			now := fs.sim.Now()
			in := &inode{
				num: vfs.Ino(i), ftype: ft, mode: mode, nlink: 1,
				gen: fs.genSeq, atime: now, mtime: now, ctime: now,
				dirtyCore: true, dirtyMeta: true,
			}
			fs.inodes[in.num] = in
			return in
		}
	}
	return nil
}

// freeInode releases an inode and all its blocks.
func (fs *FS) freeInode(p *sim.Proc, in *inode) error {
	in.dents, in.dentsOK = nil, false
	for _, b := range in.direct {
		if b != 0 {
			fs.markFree(b)
			fs.evict(b)
		}
	}
	freeIndirect := func(blk int64, depth int) error {
		var walk func(int64, int) error
		walk = func(b int64, d int) error {
			if b == 0 {
				return nil
			}
			ib, err := fs.getBuf(p, b, true)
			if err != nil {
				return err
			}
			for i := 0; i < PtrsPerBlock; i++ {
				ptr := int64(binary.BigEndian.Uint64(ib.data[i*8:]))
				if ptr == 0 {
					continue
				}
				if d > 0 {
					if err := walk(ptr, d-1); err != nil {
						return err
					}
				} else {
					fs.markFree(ptr)
					fs.evict(ptr)
				}
			}
			fs.markFree(b)
			fs.evict(b)
			return nil
		}
		return walk(blk, depth)
	}
	if err := freeIndirect(in.indirect, 0); err != nil {
		return err
	}
	if err := freeIndirect(in.dindirect, 1); err != nil {
		return err
	}
	delete(fs.inodes, in.num)
	fs.inodeMap[in.num] = false
	// Clear the on-disk slot synchronously so the remove is durable.
	return fs.flushInodeSlotCleared(p, in.num)
}

// flushInodeSlotCleared zeroes an inode's on-disk slot.
func (fs *FS) flushInodeSlotCleared(p *sim.Proc, ino vfs.Ino) error {
	phys, slot := inodeBlock(ino)
	// Prefetch before gating, as in flushInode: the device read keeps its
	// ungated concurrency, only encode+write serializes.
	if _, err := fs.getBuf(p, phys, true); err != nil {
		return err
	}
	gate := fs.inodeGate(phys)
	gate.Acquire(p)
	defer gate.Release()
	b, err := fs.getBuf(p, phys, true)
	if err != nil {
		return err
	}
	fs.own(b)
	for i := 0; i < InodeSize; i++ {
		b.data[slot*InodeSize+i] = 0
	}
	if err := fs.writeBuf(p, b); err != nil {
		return err
	}
	fs.MetaWrites++
	if fs.ChargeMeta != nil {
		fs.ChargeMeta(p)
	}
	return nil
}

// flushInode writes the inode's block to the device synchronously,
// serializing every in-core inode that lives in that block. The block's
// flush gate is held across encode and device write. With force true the
// write is unconditional (directory-op and setattr callers always commit
// the block, dirty or not); with force false the dirtiness predicate is
// re-checked once the gate is acquired: a caller that queued behind an
// in-flight flush covering its changes finds its flags clean after the
// landing and returns without a second write — the ack waited for the
// platters, which is the whole point of the gate. With metaOnly true the
// re-check considers only stable-storage-relevant dirt (dirtyMeta); an
// inode stale only in its modify time is left to asynchronous update.
func (fs *FS) flushInode(p *sim.Proc, in *inode, metaOnly, force bool) error {
	phys, _ := inodeBlock(in.num)
	// Prefetch the block before taking the gate: a cache miss pays its
	// device read with the same concurrency the ungated code had, and the
	// gated re-fetch below then hits the cache. Serializing only the
	// encode+write section keeps the gate's timing footprint to exactly
	// what the durability invariant requires.
	if _, err := fs.getBuf(p, phys, true); err != nil {
		return err
	}
	gate := fs.inodeGate(phys)
	gate.Acquire(p)
	defer gate.Release()
	if !force {
		if metaOnly {
			if !in.dirtyMeta {
				return nil
			}
		} else if !in.dirtyCore && !in.dirtyMeta {
			return nil
		}
	}
	b, err := fs.getBuf(p, phys, true)
	if err != nil {
		return err
	}
	fs.own(b)
	first := vfs.Ino((phys-1))*InodesPerBlock + 1
	var encoded []*inode
	for j := 0; j < InodesPerBlock; j++ {
		other, ok := fs.inodes[first+vfs.Ino(j)]
		if !ok {
			continue
		}
		other.encode(b.data[j*InodeSize : (j+1)*InodeSize])
		if other.dirtyCore || other.dirtyMeta {
			// This write carries the inode's un-landed state; mark it
			// pending so sync paths wait for the landing rather than
			// trusting the flags cleared here.
			other.dirtyCore, other.dirtyMeta = false, false
			other.pendingFlush = true
			encoded = append(encoded, other)
		}
	}
	err = fs.writeBuf(p, b)
	for _, other := range encoded {
		other.pendingFlush = false
		if err != nil {
			// Nothing became durable: re-dirty so a later flush retries.
			other.dirtyCore, other.dirtyMeta = true, true
		}
	}
	if err != nil {
		return err
	}
	fs.MetaWrites++
	if fs.ChargeMeta != nil {
		fs.ChargeMeta(p)
	}
	return nil
}

// allocBlock finds a free data block near hint (sequential placement).
func (fs *FS) allocBlock(hint int64) (int64, error) {
	if hint < fs.dataStart || hint >= fs.nblocks {
		hint = fs.rotor
	}
	for i := hint; i < fs.nblocks; i++ {
		if !fs.blockMap[i] {
			fs.markUsed(i)
			fs.rotor = i + 1
			return i, nil
		}
	}
	for i := fs.dataStart; i < hint; i++ {
		if !fs.blockMap[i] {
			fs.markUsed(i)
			fs.rotor = i + 1
			return i, nil
		}
	}
	return 0, vfs.ErrNoSpace
}

// bmap translates file block fb of in to a physical block. When alloc is
// true, missing data and indirect blocks are allocated; it reports whether
// any metadata (block pointers) changed.
func (fs *FS) bmap(p *sim.Proc, in *inode, fb int64, alloc bool) (phys int64, metaChanged bool, err error) {
	switch {
	case fb < NumDirect:
		if in.direct[fb] == 0 {
			if !alloc {
				return 0, false, nil
			}
			hint := fs.rotor
			if fb > 0 && in.direct[fb-1] != 0 {
				hint = in.direct[fb-1] + 1
			}
			b, err := fs.allocBlock(hint)
			if err != nil {
				return 0, false, err
			}
			in.direct[fb] = b
			metaChanged = true
		}
		return in.direct[fb], metaChanged, nil

	case fb < NumDirect+PtrsPerBlock:
		idx := fb - NumDirect
		if in.indirect == 0 {
			if !alloc {
				return 0, false, nil
			}
			b, err := fs.allocBlock(fs.rotor)
			if err != nil {
				return 0, false, err
			}
			in.indirect = b
			in.indBlocks = append(in.indBlocks, b)
			ib, _ := fs.getBuf(p, b, false) // fresh zero block; no device read
			ib.dirty = true
			metaChanged = true
		}
		ib, err := fs.getBuf(p, in.indirect, true)
		if err != nil {
			return 0, metaChanged, err
		}
		ptr := int64(binary.BigEndian.Uint64(ib.data[idx*8:]))
		if ptr == 0 {
			if !alloc {
				return 0, metaChanged, nil
			}
			hint := fs.rotor
			if idx > 0 {
				prev := int64(binary.BigEndian.Uint64(ib.data[(idx-1)*8:]))
				if prev != 0 {
					hint = prev + 1
				}
			}
			b, err := fs.allocBlock(hint)
			if err != nil {
				return 0, metaChanged, err
			}
			fs.own(ib)
			binary.BigEndian.PutUint64(ib.data[idx*8:], uint64(b))
			ib.dirty = true
			ptr = b
			metaChanged = true
		}
		return ptr, metaChanged, nil

	default:
		idx := fb - NumDirect - PtrsPerBlock
		if idx >= PtrsPerBlock*PtrsPerBlock {
			return 0, false, vfs.ErrFBig
		}
		l1 := idx / PtrsPerBlock
		l2 := idx % PtrsPerBlock
		if in.dindirect == 0 {
			if !alloc {
				return 0, false, nil
			}
			b, err := fs.allocBlock(fs.rotor)
			if err != nil {
				return 0, false, err
			}
			in.dindirect = b
			in.indBlocks = append(in.indBlocks, b)
			db, _ := fs.getBuf(p, b, false)
			db.dirty = true
			metaChanged = true
		}
		db, err := fs.getBuf(p, in.dindirect, true)
		if err != nil {
			return 0, metaChanged, err
		}
		l1ptr := int64(binary.BigEndian.Uint64(db.data[l1*8:]))
		if l1ptr == 0 {
			if !alloc {
				return 0, metaChanged, nil
			}
			b, err := fs.allocBlock(fs.rotor)
			if err != nil {
				return 0, metaChanged, err
			}
			fs.own(db)
			binary.BigEndian.PutUint64(db.data[l1*8:], uint64(b))
			db.dirty = true
			in.indBlocks = append(in.indBlocks, b)
			lb, _ := fs.getBuf(p, b, false)
			lb.dirty = true
			l1ptr = b
			metaChanged = true
		}
		lb, err := fs.getBuf(p, l1ptr, true)
		if err != nil {
			return 0, metaChanged, err
		}
		ptr := int64(binary.BigEndian.Uint64(lb.data[l2*8:]))
		if ptr == 0 {
			if !alloc {
				return 0, metaChanged, nil
			}
			b, err := fs.allocBlock(fs.rotor)
			if err != nil {
				return 0, metaChanged, err
			}
			fs.own(lb)
			binary.BigEndian.PutUint64(lb.data[l2*8:], uint64(b))
			lb.dirty = true
			ptr = b
			metaChanged = true
		}
		return ptr, metaChanged, nil
	}
}

// getInode fetches a live in-core inode.
func (fs *FS) getInode(ino vfs.Ino) (*inode, error) {
	in, ok := fs.inodes[ino]
	if !ok {
		return nil, vfs.ErrStale
	}
	return in, nil
}
