package ufs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Error-path regression tests: every disk-I/O consumer in ufs that once
// assumed transfers succeed must surface vfs.ErrIO (or the device error)
// instead of panicking when the fault plane fails a transfer.

func TestMountSurfacesReadError(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		fs.WriteSuper(p)
		if err := fs.Fsync(p, fs.Root(), vfs.FWrite|vfs.FWriteMetadata); err != nil {
			t.Fatalf("Fsync: %v", err)
		}
	})
	fs.DropCaches()
	d.InjectReadError(0, 0, 0, 999) // every read fails, incl. the superblock
	s2 := sim.New(2)
	s2.Spawn("mount", func(p *sim.Proc) {
		if _, err := Mount(s2, p, d, nil); err == nil {
			t.Error("Mount on a dead disk succeeded")
		}
	})
	s2.Run(0)
}

func TestReadSurfacesMediaError(t *testing.T) {
	s, fs, d := rig(t, 1)
	var ino vfs.Ino
	payload := bytes.Repeat([]byte{0xAB}, 8192)
	run(s, func(p *sim.Proc) {
		ino, _ = fs.Create(p, fs.Root(), "f", 0644)
		if err := fs.Write(p, ino, 0, payload, vfs.IOSync); err != nil {
			t.Fatalf("Write: %v", err)
		}
	})
	fs.DropCaches()
	d.InjectReadError(0, 0, 0, 999)
	s.Spawn("reader", func(p *sim.Proc) {
		buf := make([]byte, 8192)
		if _, err := fs.Read(p, ino, 0, buf); err == nil {
			t.Error("Read through a media error succeeded")
		}
	})
	s.Run(0)
}

func TestSyncWriteSurfacesDeviceFailure(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "f", 0644)
		d.Fail()
		err := fs.Write(p, ino, 0, make([]byte, 8192), vfs.IOSync)
		if err == nil {
			t.Error("sync write to a failed device succeeded")
		}
	})
	s.Run(0)
}

func TestSyncDataSurfacesDeviceFailure(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "f", 0644)
		if err := fs.Write(p, ino, 0, make([]byte, 4*8192), vfs.IODelayData); err != nil {
			t.Fatalf("Write: %v", err)
		}
		d.Fail()
		if err := fs.SyncData(p, ino, 0, 4*8192); !errors.Is(err, vfs.ErrIO) {
			t.Errorf("SyncData on failed device = %v, want vfs.ErrIO", err)
		}
		// The push never landed: blocks must stay dirty for a retry.
		if fs.DirtyBlocks() == 0 {
			t.Error("failed SyncData cleared dirty blocks")
		}
	})
	s.Run(0)
}

func TestFsyncSurfacesDeviceFailureAndStaysDirty(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		ino, _ := fs.Create(p, fs.Root(), "f", 0644)
		if err := fs.Write(p, ino, 0, make([]byte, 8192), vfs.IODelayData); err != nil {
			t.Fatalf("Write: %v", err)
		}
		d.Fail()
		if err := fs.Fsync(p, ino, vfs.FWrite|vfs.FWriteMetadata); err == nil {
			t.Error("Fsync to a failed device succeeded")
		}
		d.Heal()
		// The failure must not have wedged the inode: a retry after the
		// device recovers commits everything.
		if err := fs.Fsync(p, ino, vfs.FWrite|vfs.FWriteMetadata); err != nil {
			t.Errorf("Fsync retry after heal: %v", err)
		}
	})
	s.Run(0)
}

func TestRemoveSurfacesDeviceFailure(t *testing.T) {
	s, fs, d := rig(t, 1)
	run(s, func(p *sim.Proc) {
		if _, err := fs.Create(p, fs.Root(), "f", 0644); err != nil {
			t.Fatalf("Create: %v", err)
		}
		d.Fail()
		if err := fs.Remove(p, fs.Root(), "f"); err == nil {
			t.Error("Remove on a failed device succeeded")
		}
	})
	s.Run(0)
}

// TestCommitWaitsForInodeBlockLanding is the regression test for the
// fuzzer-found durability bug: flushInode encodes every in-core inode of
// the block and clears their dirty flags at encode time, so a concurrent
// committer for a sibling inode in the same block used to see "flags
// clean", skip its own inode write, and acknowledge while the covering
// write was still in flight — a crash in that window lost acked metadata.
// With the flush gate + pendingFlush protocol the second committer's
// Fsync must not return before the in-flight block write lands.
func TestCommitWaitsForInodeBlockLanding(t *testing.T) {
	s := sim.New(1)
	d := disk.New(s, hw.RZ26(), nil)
	fs, err := Format(s, d, 1, 256, nil)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	var inoA, inoB vfs.Ino
	run(s, func(p *sim.Proc) {
		inoA, _ = fs.Create(p, fs.Root(), "a", 0644)
		inoB, _ = fs.Create(p, fs.Root(), "b", 0644)
		// Dirty both inodes' stable metadata without flushing.
		if err := fs.Write(p, inoA, 0, make([]byte, 8192), vfs.IODataOnly); err != nil {
			t.Fatalf("Write a: %v", err)
		}
		if err := fs.Write(p, inoB, 0, make([]byte, 8192), vfs.IODataOnly); err != nil {
			t.Fatalf("Write b: %v", err)
		}
	})

	var aDone, bStart, bDone sim.Time
	s.Spawn("committer-a", func(p *sim.Proc) {
		if err := fs.Fsync(p, inoA, vfs.FWriteMetadata); err != nil {
			t.Errorf("Fsync a: %v", err)
		}
		aDone = s.Now()
	})
	s.SpawnAfter(100*sim.Microsecond, "committer-b", func(p *sim.Proc) {
		bStart = s.Now()
		if err := fs.Fsync(p, inoB, vfs.FWriteMetadata); err != nil {
			t.Errorf("Fsync b: %v", err)
		}
		bDone = s.Now()
	})
	s.Run(0)

	// A's metadata-only commit performs a real device write, so it takes
	// simulated time. B arrives while that write is in flight; its dirt
	// was encoded into A's write, so B must complete exactly when A's
	// write lands — not before (the old bug acked B instantly).
	if aDone == 0 || bDone == 0 {
		t.Fatal("commits did not run")
	}
	if bDone == bStart {
		t.Fatalf("committer-b acked instantly at %v while the covering write was in flight", bStart)
	}
	if bDone < aDone {
		t.Fatalf("committer-b acked at %v, before the covering write landed at %v", bDone, aDone)
	}
}
