package ufs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Directory contents live in ordinary data blocks with a compact record
// format: entry count, then for each entry an inode number (8 bytes), a
// name length (2 bytes) and the name. Directory mutations rewrite the
// affected blocks synchronously, as FFS does, so namespace operations are
// durable when they return.

type dirent struct {
	ino  vfs.Ino
	name string
}

// loadDir returns the directory's parsed contents. The parse is memoized
// on the inode: readers (Lookup, Readdir) treat the slice as read-only, and
// mutators work on a clone (see cloneDir) before handing ownership of the
// new slice back to the cache through storeDir. The memo never changes
// simulated timing — directory blocks stay in the buffer cache once read,
// so a reparse would cost no virtual time either.
func (fs *FS) loadDir(p *sim.Proc, in *inode) ([]dirent, error) {
	if in.ftype != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	if in.dentsOK {
		return in.dents, nil
	}
	ents, err := fs.parseDir(p, in)
	if err != nil {
		return nil, err
	}
	// Memoize only quiescent parses: while a storeDir is mid-flush on this
	// inode (it yields for disk I/O), a parse may observe a transient state
	// that no later invalidation would clear.
	if in.storing == 0 {
		in.dents, in.dentsOK = ents, true
	}
	return ents, nil
}

// cloneDir copies a loadDir result so a mutator can edit it without
// corrupting the memoized slice behind readers.
func cloneDir(ents []dirent) []dirent {
	out := make([]dirent, len(ents))
	copy(out, ents)
	return out
}

// parseDir reads and parses the directory's contents from the cache/device.
func (fs *FS) parseDir(p *sim.Proc, in *inode) ([]dirent, error) {
	raw := make([]byte, in.size)
	if in.size > 0 {
		if _, err := fs.readRaw(p, in, 0, raw); err != nil {
			return nil, err
		}
	}
	if len(raw) < 4 {
		return nil, nil
	}
	n := binary.BigEndian.Uint32(raw)
	ents := make([]dirent, 0, n)
	off := 4
	for i := uint32(0); i < n; i++ {
		if off+10 > len(raw) {
			return nil, fmt.Errorf("ufs: corrupt directory %d", in.num)
		}
		ino := vfs.Ino(binary.BigEndian.Uint64(raw[off:]))
		nl := int(binary.BigEndian.Uint16(raw[off+8:]))
		off += 10
		if off+nl > len(raw) {
			return nil, fmt.Errorf("ufs: corrupt directory %d", in.num)
		}
		ents = append(ents, dirent{ino: ino, name: string(raw[off : off+nl])})
		off += nl
	}
	return ents, nil
}

// storeDir serializes and writes the directory synchronously (data and
// metadata both durable on return). It invalidates the memoized parse; the
// next loadDir rebuilds it from the buffer cache at zero simulated cost.
// Repopulating the memo here instead would be wrong: storeDir yields during
// the flush, concurrent mutators of the same directory can interleave, and
// whichever store finished last would install its own — possibly stale —
// snapshot.
func (fs *FS) storeDir(p *sim.Proc, in *inode, ents []dirent) error {
	in.dents, in.dentsOK = nil, false
	in.storing++
	defer func() { in.storing-- }()
	size := 4
	for _, e := range ents {
		size += 10 + len(e.name)
	}
	raw := make([]byte, size)
	binary.BigEndian.PutUint32(raw, uint32(len(ents)))
	off := 4
	for _, e := range ents {
		binary.BigEndian.PutUint64(raw[off:], uint64(e.ino))
		binary.BigEndian.PutUint16(raw[off+8:], uint16(len(e.name)))
		off += 10
		copy(raw[off:], e.name)
		off += len(e.name)
	}
	f0 := fs.sim.EventsFired()
	if err := fs.writeRaw(p, in, 0, raw); err != nil {
		return err
	}
	in.size = uint32(len(raw))
	now := fs.sim.Now()
	in.mtime, in.ctime = now, now
	in.dirtyCore, in.dirtyMeta = true, true
	if fs.sim.EventsFired() == f0 {
		// writeRaw ran without yielding (no event fired), so nothing could
		// interleave: the buffer cache holds exactly ents. Re-validate the
		// memo now, before the flushes below yield, so concurrent readers
		// skip a reparse. If writeRaw did yield, the memo stays invalid and
		// the next quiescent loadDir rebuilds it.
		in.dents, in.dentsOK = ents, true
	}
	// Directory writes are synchronous end to end.
	if err := fs.SyncData(p, in.num, 0, in.size); err != nil {
		return err
	}
	if err := fs.flushDirtyIndirect(p, in); err != nil {
		return err
	}
	return fs.flushInode(p, in, false, true)
}

// readRaw reads file bytes without touching atime (directory internal).
func (fs *FS) readRaw(p *sim.Proc, in *inode, off uint32, out []byte) (int, error) {
	read := 0
	n := len(out)
	for read < n {
		fb := int64(off+uint32(read)) / BlockSize
		bo := int64(off+uint32(read)) % BlockSize
		take := BlockSize - int(bo)
		if take > n-read {
			take = n - read
		}
		phys, _, err := fs.bmap(p, in, fb, false)
		if err != nil {
			return read, err
		}
		if phys == 0 {
			for i := 0; i < take; i++ {
				out[read+i] = 0
			}
		} else {
			b, err := fs.getBuf(p, phys, true)
			if err != nil {
				return read, err
			}
			copy(out[read:read+take], b.data[bo:bo+int64(take)])
		}
		read += take
	}
	return read, nil
}

// writeRaw writes file bytes into the cache, marking blocks dirty
// (directory internal; callers flush).
func (fs *FS) writeRaw(p *sim.Proc, in *inode, off uint32, data []byte) error {
	written := 0
	for written < len(data) {
		fb := int64(off+uint32(written)) / BlockSize
		bo := int64(off+uint32(written)) % BlockSize
		take := BlockSize - int(bo)
		if take > len(data)-written {
			take = len(data) - written
		}
		phys, mc, err := fs.bmap(p, in, fb, true)
		if err != nil {
			return err
		}
		needFill := take != BlockSize && !mc
		b, cached := fs.cache[phys]
		if !cached {
			nb, err := fs.getBuf(p, phys, needFill)
			if err != nil {
				return err
			}
			b = nb
		}
		b.owner, b.fblock = in.num, fb
		if take == BlockSize {
			fs.ownFresh(b)
		} else {
			fs.own(b)
		}
		fs.pool.Acct().CountCopy(copy(b.data[bo:bo+int64(take)], data[written:written+take]))
		b.dirty = true
		if mc {
			in.dirtyMeta = true
		}
		written += take
	}
	if end := off + uint32(len(data)); end > in.size {
		in.size = end
		in.dirtyMeta = true
	}
	return nil
}

// Lookup implements vfs.FileSystem.
func (fs *FS) Lookup(p *sim.Proc, dir vfs.Ino, name string) (vfs.Ino, error) {
	din, err := fs.getInode(dir)
	if err != nil {
		return 0, err
	}
	switch name {
	case ".", "":
		return dir, nil
	case "..":
		// Parent pointers are not tracked; root is its own parent and the
		// NFS layer resolves ".." only at the root in these workloads.
		return dir, nil
	}
	ents, err := fs.loadDir(p, din)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.name == name {
			return e.ino, nil
		}
	}
	return 0, vfs.ErrNoEnt
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(p *sim.Proc, dir vfs.Ino, name string, mode uint32) (vfs.Ino, error) {
	return fs.makeNode(p, dir, name, mode, vfs.TypeReg)
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(p *sim.Proc, dir vfs.Ino, name string, mode uint32) (vfs.Ino, error) {
	ino, err := fs.makeNode(p, dir, name, mode, vfs.TypeDir)
	if err != nil {
		return 0, err
	}
	in := fs.inodes[ino]
	in.nlink = 2
	return ino, nil
}

func (fs *FS) makeNode(p *sim.Proc, dir vfs.Ino, name string, mode uint32, ft vfs.FileType) (vfs.Ino, error) {
	if len(name) == 0 || len(name) > 255 {
		return 0, vfs.ErrNoEnt
	}
	din, err := fs.getInode(dir)
	if err != nil {
		return 0, err
	}
	ents, err := fs.loadDir(p, din)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		if e.name == name {
			return 0, vfs.ErrExist
		}
	}
	in := fs.allocInode(ft, mode)
	if in == nil {
		return 0, vfs.ErrNoSpace
	}
	grown := make([]dirent, len(ents), len(ents)+1)
	copy(grown, ents)
	ents = append(grown, dirent{ino: in.num, name: name})
	if err := fs.storeDir(p, din, ents); err != nil {
		return 0, err
	}
	// New inode durable too.
	if err := fs.flushInode(p, in, false, true); err != nil {
		return 0, err
	}
	return in.num, nil
}

// Remove implements vfs.FileSystem.
func (fs *FS) Remove(p *sim.Proc, dir vfs.Ino, name string) error {
	return fs.unlink(p, dir, name, false)
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(p *sim.Proc, dir vfs.Ino, name string) error {
	return fs.unlink(p, dir, name, true)
}

func (fs *FS) unlink(p *sim.Proc, dir vfs.Ino, name string, wantDir bool) error {
	din, err := fs.getInode(dir)
	if err != nil {
		return err
	}
	ents, err := fs.loadDir(p, din)
	if err != nil {
		return err
	}
	for i, e := range ents {
		if e.name != name {
			continue
		}
		tin, err := fs.getInode(e.ino)
		if err != nil {
			return err
		}
		if wantDir {
			if tin.ftype != vfs.TypeDir {
				return vfs.ErrNotDir
			}
			sub, err := fs.loadDir(p, tin)
			if err != nil {
				return err
			}
			if len(sub) > 0 {
				return vfs.ErrNotEmpty
			}
		} else if tin.ftype == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		ents = cloneDir(ents)
		ents = append(ents[:i], ents[i+1:]...)
		if err := fs.storeDir(p, din, ents); err != nil {
			return err
		}
		tin.nlink--
		if tin.nlink == 0 || (wantDir && tin.nlink <= 1) {
			return fs.freeInode(p, tin)
		}
		return fs.flushInode(p, tin, false, true)
	}
	return vfs.ErrNoEnt
}

// Rename implements vfs.FileSystem: it moves fromName in fromDir to toName
// in toDir, replacing any existing regular file at the destination.
func (fs *FS) Rename(p *sim.Proc, fromDir vfs.Ino, fromName string, toDir vfs.Ino, toName string) error {
	fdin, err := fs.getInode(fromDir)
	if err != nil {
		return err
	}
	fents, err := fs.loadDir(p, fdin)
	if err != nil {
		return err
	}
	fents = cloneDir(fents)
	var moved vfs.Ino
	idx := -1
	for i, e := range fents {
		if e.name == fromName {
			moved = e.ino
			idx = i
			break
		}
	}
	if idx < 0 {
		return vfs.ErrNoEnt
	}
	if fromDir == toDir {
		// Same-directory rename: single dir rewrite.
		for i, e := range fents {
			if e.name == toName && i != idx {
				if err := fs.dropTarget(p, e.ino); err != nil {
					return err
				}
				fents = append(fents[:i], fents[i+1:]...)
				if i < idx {
					idx--
				}
				break
			}
		}
		fents[idx].name = toName
		return fs.storeDir(p, fdin, fents)
	}
	tdin, err := fs.getInode(toDir)
	if err != nil {
		return err
	}
	tents, err := fs.loadDir(p, tdin)
	if err != nil {
		return err
	}
	tents = cloneDir(tents)
	for i, e := range tents {
		if e.name == toName {
			if err := fs.dropTarget(p, e.ino); err != nil {
				return err
			}
			tents = append(tents[:i], tents[i+1:]...)
			break
		}
	}
	fents = append(fents[:idx], fents[idx+1:]...)
	tents = append(tents, dirent{ino: moved, name: toName})
	if err := fs.storeDir(p, fdin, fents); err != nil {
		return err
	}
	return fs.storeDir(p, tdin, tents)
}

func (fs *FS) dropTarget(p *sim.Proc, ino vfs.Ino) error {
	tin, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if tin.ftype == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	tin.nlink--
	if tin.nlink == 0 {
		return fs.freeInode(p, tin)
	}
	return nil
}

// Readdir implements vfs.FileSystem. The cookie is the index of the next
// entry; count bounds the total name bytes returned.
func (fs *FS) Readdir(p *sim.Proc, dir vfs.Ino, cookie uint32, count int) ([]vfs.DirEntry, bool, error) {
	din, err := fs.getInode(dir)
	if err != nil {
		return nil, false, err
	}
	ents, err := fs.loadDir(p, din)
	if err != nil {
		return nil, false, err
	}
	var out []vfs.DirEntry
	bytes := 0
	for i := int(cookie); i < len(ents); i++ {
		bytes += 16 + len(ents[i].name)
		if bytes > count && len(out) > 0 {
			return out, false, nil
		}
		out = append(out, vfs.DirEntry{Ino: ents[i].ino, Name: ents[i].name, Cookie: uint32(i + 1)})
	}
	return out, true, nil
}
