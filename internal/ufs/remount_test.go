package ufs

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// TestRemountedIndirectBlocksStayDurable pins the double-crash bug the
// cluster rig exposed: an inode remounted with an existing indirect block
// must have that block on its indBlocks list, or pointer updates made
// after the mount are marked dirty in cache but never flushed by the
// metadata-only fsync path — and a second crash silently loses acked data.
func TestRemountedIndirectBlocksStayDurable(t *testing.T) {
	s, fs, d := rig(t, 1)
	payload := bytes.Repeat([]byte{0xAB}, 8192)

	// Boot 1: push the file into the indirect region and commit.
	var ino vfs.Ino
	run(s, func(p *sim.Proc) {
		fs.WriteSuper(p)
		ino, _ = fs.Create(p, fs.Root(), "x", 0644)
		for fb := 0; fb < NumDirect+2; fb++ {
			if err := fs.Write(p, ino, uint32(fb*BlockSize), payload, vfs.IODelayData); err != nil {
				t.Fatalf("write fb %d: %v", fb, err)
			}
		}
		if err := fs.Fsync(p, ino, vfs.FWrite); err != nil {
			t.Fatalf("fsync: %v", err)
		}
	})

	// Crash 1 + boot 2: extend the file through the pre-existing indirect
	// block, committing the §6.8 way (SyncData + metadata-only Fsync).
	fs.DropCaches()
	s2 := sim.New(2)
	s2.Spawn("boot2", func(p *sim.Proc) {
		m, err := Mount(s2, p, d, nil)
		if err != nil {
			t.Errorf("mount 2: %v", err)
			return
		}
		from := uint32((NumDirect + 2) * BlockSize)
		if err := m.Write(p, vfs.Ino(ino), from, payload, vfs.IODelayData); err != nil {
			t.Errorf("post-remount write: %v", err)
			return
		}
		if err := m.SyncData(p, vfs.Ino(ino), from, from+8192); err != nil {
			t.Errorf("syncdata: %v", err)
			return
		}
		if err := m.Fsync(p, vfs.Ino(ino), vfs.FWrite|vfs.FWriteMetadata); err != nil {
			t.Errorf("fsync: %v", err)
			return
		}
		if m.MetaDirty(vfs.Ino(ino)) {
			t.Error("metadata still dirty after metadata-only fsync (indBlocks lost by Mount)")
		}
	})
	s2.Run(0)

	// Crash 2 + boot 3: the extension must have survived.
	s3 := sim.New(3)
	s3.Spawn("boot3", func(p *sim.Proc) {
		m, err := Mount(s3, p, d, nil)
		if err != nil {
			t.Errorf("mount 3: %v", err)
			return
		}
		got := make([]byte, 8192)
		from := uint32((NumDirect + 2) * BlockSize)
		if _, err := m.Read(p, vfs.Ino(ino), from, got); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("committed indirect-region write lost across second crash")
		}
	})
	s3.Run(0)
}
