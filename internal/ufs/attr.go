package ufs

import (
	"encoding/binary"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// GetAttr implements vfs.FileSystem. Attributes come from the in-core
// inode; no device I/O is needed.
func (fs *FS) GetAttr(p *sim.Proc, ino vfs.Ino) (vfs.Attr, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	return fs.attrOf(in), nil
}

func (fs *FS) attrOf(in *inode) vfs.Attr {
	return vfs.Attr{
		Type:   in.ftype,
		Mode:   in.mode,
		NLink:  in.nlink,
		UID:    in.uid,
		GID:    in.gid,
		Size:   in.size,
		Blocks: (in.size + BlockSize - 1) / BlockSize,
		Gen:    in.gen,
		ATime:  in.atime,
		MTime:  in.mtime,
		CTime:  in.ctime,
	}
}

// SetAttrs implements vfs.FileSystem. The change is committed to the
// device before returning, as SETATTR requires.
func (fs *FS) SetAttrs(p *sim.Proc, ino vfs.Ino, sa vfs.SetAttr) (vfs.Attr, error) {
	in, err := fs.getInode(ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	if sa.Mode != nil {
		in.mode = *sa.Mode
	}
	if sa.UID != nil {
		in.uid = *sa.UID
	}
	if sa.GID != nil {
		in.gid = *sa.GID
	}
	if sa.Size != nil {
		if err := fs.truncate(p, in, *sa.Size); err != nil {
			return vfs.Attr{}, err
		}
	}
	in.ctime = fs.sim.Now()
	in.dirtyCore, in.dirtyMeta = true, true
	if err := fs.flushInode(p, in, false, true); err != nil {
		return vfs.Attr{}, err
	}
	return fs.attrOf(in), nil
}

// truncate shrinks or extends the file to size bytes, freeing blocks
// beyond the new end.
func (fs *FS) truncate(p *sim.Proc, in *inode, size uint32) error {
	if size >= in.size {
		in.size = size
		return nil
	}
	// A shrinking truncate invalidates any memoized directory parse.
	in.dents, in.dentsOK = nil, false
	keep := (int64(size) + BlockSize - 1) / BlockSize
	// Free direct blocks beyond the cut.
	for fb := keep; fb < NumDirect; fb++ {
		if in.direct[fb] != 0 {
			fs.markFree(in.direct[fb])
			fs.evict(in.direct[fb])
			in.direct[fb] = 0
		}
	}
	// Free single-indirect data blocks beyond the cut.
	if in.indirect != 0 {
		ib, err := fs.getBuf(p, in.indirect, true)
		if err != nil {
			return err
		}
		for i := 0; i < PtrsPerBlock; i++ {
			fb := int64(NumDirect + i)
			ptr := int64(binary.BigEndian.Uint64(ib.data[i*8:]))
			if ptr != 0 && fb >= keep {
				fs.markFree(ptr)
				fs.evict(ptr)
				fs.own(ib)
				binary.BigEndian.PutUint64(ib.data[i*8:], 0)
				ib.dirty = true
			}
		}
		if keep <= NumDirect {
			fs.markFree(in.indirect)
			fs.evict(in.indirect)
			in.indirect = 0
		}
	}
	// Free double-indirect data blocks beyond the cut.
	if in.dindirect != 0 {
		db, err := fs.getBuf(p, in.dindirect, true)
		if err != nil {
			return err
		}
		for l1 := 0; l1 < PtrsPerBlock; l1++ {
			l1ptr := int64(binary.BigEndian.Uint64(db.data[l1*8:]))
			if l1ptr == 0 {
				continue
			}
			lb, err := fs.getBuf(p, l1ptr, true)
			if err != nil {
				return err
			}
			anyKept := false
			for l2 := 0; l2 < PtrsPerBlock; l2++ {
				fb := int64(NumDirect + PtrsPerBlock + l1*PtrsPerBlock + l2)
				ptr := int64(binary.BigEndian.Uint64(lb.data[l2*8:]))
				if ptr == 0 {
					continue
				}
				if fb >= keep {
					fs.markFree(ptr)
					fs.evict(ptr)
					fs.own(lb)
					binary.BigEndian.PutUint64(lb.data[l2*8:], 0)
					lb.dirty = true
				} else {
					anyKept = true
				}
			}
			if !anyKept {
				fs.markFree(l1ptr)
				fs.evict(l1ptr)
				fs.own(db)
				binary.BigEndian.PutUint64(db.data[l1*8:], 0)
				db.dirty = true
			}
		}
		if keep <= NumDirect+PtrsPerBlock {
			fs.markFree(in.dindirect)
			fs.evict(in.dindirect)
			in.dindirect = 0
		}
	}
	in.size = size
	in.dirtyMeta = true
	return nil
}

// Compile-time interface check.
var _ vfs.FileSystem = (*FS)(nil)
