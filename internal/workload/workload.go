// Package workload provides the load generators behind the paper's
// evaluation: the sequential 10MB file-copy of Tables 1-6 and a
// LADDIS-like mixed operation generator (Wittle & Keith 1993) for the
// SPEC SFS curves of Figures 2 and 3.
package workload

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FileCopy writes a size-byte file named name sequentially through cli and
// returns the client-observed elapsed time, matching the paper's
// "client write speed" measurement (first write generated to close
// completion).
func FileCopy(p *sim.Proc, cli *client.Client, root nfsproto.FH, name string, size int) (sim.Duration, error) {
	cres, err := cli.Create(p, root, name, 0644)
	if err != nil {
		return 0, fmt.Errorf("workload: create %s: %w", name, err)
	}
	if cres.Status != nfsproto.OK {
		return 0, fmt.Errorf("workload: create %s: %v", name, cres.Status)
	}
	return cli.WriteFile(p, cres.File, size)
}

// Op is one LADDIS operation type.
type Op int

// LADDIS operation classes.
const (
	OpLookup Op = iota
	OpRead
	OpWrite
	OpGetattr
	OpReaddir
	OpCreate
	OpRemove
	OpStatfs
	OpSetattr
	numOps
)

var opNames = [numOps]string{
	"lookup", "read", "write", "getattr", "readdir",
	"create", "remove", "statfs", "setattr",
}

func (o Op) String() string { return opNames[o] }

// Mix is an operation mix in percent. It should sum to 100.
type Mix [numOps]int

// LADDISMix approximates the SPEC SFS 1.0 (097.LADDIS) operation mix with
// 15% writes (§7.2). READLINK's share is folded into GETATTR because the
// served filesystem has no symlinks; both are lightweight attribute-path
// operations.
func LADDISMix() Mix {
	return Mix{
		OpLookup:  34,
		OpRead:    22,
		OpWrite:   15,
		OpGetattr: 21, // 13% getattr + 8% readlink
		OpReaddir: 3,
		OpCreate:  2,
		OpRemove:  1,
		OpStatfs:  1,
		OpSetattr: 1,
	}
}

// MetadataMix is a metadata-heavy mix — lookup/getattr/create/remove
// dominated, the shape of a build farm or home-directory server where
// attribute traffic, not data transfer, loads the CPU.
func MetadataMix() Mix {
	return Mix{
		OpLookup:  40,
		OpRead:    5,
		OpWrite:   3,
		OpGetattr: 25,
		OpReaddir: 3,
		OpCreate:  12,
		OpRemove:  10,
		OpStatfs:  1,
		OpSetattr: 1,
	}
}

// Ops reports the number of operation classes (the Mix array length).
func Ops() int { return int(numOps) }

// OpByName resolves an operation name from the opNames vocabulary
// (trace-capture records use the names); ok is false for unknown names.
func OpByName(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

// LADDISConfig parameterizes a mixed-load run.
type LADDISConfig struct {
	// Mix is the op mix; zero value means LADDISMix.
	Mix Mix
	// Files is the working-set size (pre-created, pre-filled files).
	Files int
	// FileBlocks is each working file's size in 8K blocks.
	FileBlocks int
	// OfferedOpsPerSec is the open-loop aggregate request rate.
	OfferedOpsPerSec float64
	// Procs is the number of generator processes (paper: 4 per client).
	Procs int
	// Warmup operations are excluded from latency statistics.
	Warmup int
	// Duration bounds the measured phase.
	Duration sim.Duration
	// Seed drives op/file/offset selection.
	Seed int64
	// Roots, when set, shards the working set across several exports: each
	// file is placed under the root chosen by a hash of its name (the
	// cluster rig passes one root per server). Empty means the single root
	// given to NewLADDIS.
	Roots []nfsproto.FH
	// Histograms additionally records per-op-kind latency histograms
	// (constant memory, streaming) surfaced as LADDISResult.Hists. The
	// recording sites and sampled set are identical to the mean/P95
	// recorder, so enabling it does not change any existing figure.
	Histograms bool
}

// LADDISResult is one point on the throughput/latency curve.
type LADDISResult struct {
	AchievedOpsPerSec float64
	AvgLatencyMs      float64
	P95LatencyMs      float64
	PerOp             map[string]int
	Errors            int
	// Hists holds per-op latency histograms (µs) when
	// LADDISConfig.Histograms was set; nil otherwise. Keys are op names.
	Hists map[string]*stats.Histogram `json:",omitempty"`
}

// LADDIS drives the mixed workload through cli against the server's root
// and reports achieved throughput and latency. The caller provides the
// process; the run creates its own working set first (unmeasured).
type LADDIS struct {
	cfg   LADDISConfig
	cli   *client.Client
	root  nfsproto.FH
	roots []nfsproto.FH // shard roots; [root] when unsharded

	files   []nfsproto.FH
	cursors []int // per-file append cursor, in blocks
	scratch nfsproto.FH
	lat     stats.Latency
	hists   *[numOps]stats.Histogram // nil unless cfg.Histograms
	done    int
	errors  int
	perOp   map[string]int
	seq     int

	// Write worker pool: one SFS write op is a burst of concurrent 8K
	// WRITEs; bursts are dispatched to pre-spawned workers instead of a
	// goroutine per request, so dense multi-client sweeps pay no
	// spawn/teardown. The pool is sized so a burst never waits for a
	// worker (Procs generators × the largest burst), keeping the request
	// schedule identical to the spawn-per-write form.
	writeJobs  *sim.Queue[writeTask]
	freeBursts []*burstState
}

// maxBurst is the largest write burst burstLen can draw.
const maxBurst = 8

// writeTask is one 8K WRITE dispatched to a pool worker.
type writeTask struct {
	fh    nfsproto.FH
	off   uint32
	burst *burstState
}

// burstState tracks one in-flight write burst; the issuing generator waits
// on done until its workers drain the burst.
type burstState struct {
	remaining int
	done      sim.Cond
}

// getBurst takes a pooled burst record.
func (l *LADDIS) getBurst(s *sim.Sim) *burstState {
	if n := len(l.freeBursts); n > 0 {
		b := l.freeBursts[n-1]
		l.freeBursts = l.freeBursts[:n-1]
		b.done.Init(s)
		return b
	}
	b := &burstState{}
	b.done.Init(s)
	return b
}

func (l *LADDIS) putBurst(b *burstState) { l.freeBursts = append(l.freeBursts, b) }

// rootFor places a working-set name on its shard root (the cluster-wide
// placement function, client.ShardIndex).
func (l *LADDIS) rootFor(name string) nfsproto.FH {
	if len(l.roots) == 1 {
		return l.roots[0]
	}
	return l.roots[client.ShardIndex(name, len(l.roots))]
}

// NewLADDIS builds a generator bound to one client.
func NewLADDIS(cli *client.Client, root nfsproto.FH, cfg LADDISConfig) *LADDIS {
	if cfg.Mix == (Mix{}) {
		cfg.Mix = LADDISMix()
	}
	if cfg.Files == 0 {
		cfg.Files = 20
	}
	if cfg.FileBlocks == 0 {
		cfg.FileBlocks = 4
	}
	if cfg.Procs == 0 {
		cfg.Procs = 4
	}
	roots := cfg.Roots
	if len(roots) == 0 {
		roots = []nfsproto.FH{root}
	}
	l := &LADDIS{cfg: cfg, cli: cli, root: root, roots: roots, perOp: make(map[string]int)}
	if cfg.Histograms {
		l.hists = new([numOps]stats.Histogram)
	}
	return l
}

// Setup creates and fills the working set (not measured). With shard
// roots, each file lands on the export its name hashes to.
func (l *LADDIS) Setup(p *sim.Proc) error {
	sname := "scratch-" + l.cli.Name()
	mres, err := l.cli.Mkdir(p, l.rootFor(sname), sname, 0755)
	if err != nil || mres.Status != nfsproto.OK {
		return fmt.Errorf("workload: scratch mkdir: %v %v", err, mres)
	}
	l.scratch = mres.File
	for i := 0; i < l.cfg.Files; i++ {
		name := fmt.Sprintf("ws-%s-%d", l.cli.Name(), i)
		cres, err := l.cli.Create(p, l.rootFor(name), name, 0644)
		if err != nil || cres.Status != nfsproto.OK {
			return fmt.Errorf("workload: create %s: %v", name, err)
		}
		fh := cres.File // copy: cres is client scratch, dead at the next RPC
		for b := 0; b < l.cfg.FileBlocks; b++ {
			// One staging buffer per request, released on completion: the
			// pool cannot recycle it while any queued duplicate datagram
			// still references the payload.
			buf := l.cli.GetWriteBuf()
			client.FillPattern(buf.Data(), uint32(b*nfsproto.MaxData))
			if err := l.cli.WriteSyncBufRelease(p, fh, uint32(b*nfsproto.MaxData), buf, nfsproto.MaxData); err != nil {
				return fmt.Errorf("workload: fill %s: %w", name, err)
			}
		}
		l.files = append(l.files, fh)
		l.cursors = append(l.cursors, l.cfg.FileBlocks)
	}
	return nil
}

// burstLen draws the number of back-to-back 8K WRITE RPCs one SFS write
// operation issues. SFS 1.0 write sizes span 8K to >100K; the weights
// below give a mean near 2.5 requests.
func burstLen(r int) int {
	switch v := r % 100; {
	case v < 45:
		return 1
	case v < 75:
		return 2
	case v < 92:
		return 4
	default:
		return 8
	}
}

// pickOp selects the next operation per the mix.
func (l *LADDIS) pickOp(r int) Op {
	r = r % 100
	acc := 0
	for op := Op(0); op < numOps; op++ {
		acc += l.cfg.Mix[op]
		if r < acc {
			return op
		}
	}
	return OpLookup
}

// writeWorker is one pool worker: it performs burst writes handed to it
// for the life of the run (the pooled twin of the old goroutine-per-write
// form; the request schedule is identical). A zero task is the shutdown
// sentinel Run enqueues once the measured phase ends, so the pool's
// goroutines do not outlive their run.
func (l *LADDIS) writeWorker(w *sim.Proc) {
	for {
		task := l.writeJobs.Get(w)
		if task.burst == nil {
			return
		}
		buf := l.cli.GetWriteBuf()
		client.FillPattern(buf.Data(), task.off)
		wbegin := w.Now()
		if werr := l.cli.WriteSyncBufRelease(w, task.fh, task.off, buf, nfsproto.MaxData); werr != nil {
			l.errors++
		} else if l.done > l.cfg.Warmup {
			d := w.Now().Sub(wbegin)
			l.lat.Record(d)
			if l.hists != nil {
				l.hists[OpWrite].Record(int64(d))
			}
		}
		l.done++
		l.perOp[OpWrite.String()]++
		task.burst.remaining--
		if task.burst.remaining == 0 {
			task.burst.done.Signal()
		}
	}
}

// Run launches the generator processes and blocks p until the measured
// phase completes, returning the curve point.
func (l *LADDIS) Run(p *sim.Proc) LADDISResult {
	s := p.Sim()
	rng := s.Rand()
	start := s.Now()
	end := start.Add(l.cfg.Duration)
	interval := sim.Duration(float64(sim.Second) / l.cfg.OfferedOpsPerSec * float64(l.cfg.Procs))
	finished := 0
	cond := sim.NewCond(s)
	// The write pool: enough workers that a generator's burst never queues
	// behind another (each generator has at most one burst outstanding).
	l.writeJobs = sim.NewQueue[writeTask](s, 0)
	for w := 0; w < l.cfg.Procs*maxBurst; w++ {
		s.Spawn(fmt.Sprintf("laddis-writer-%s-%d", l.cli.Name(), w), l.writeWorker)
	}
	for g := 0; g < l.cfg.Procs; g++ {
		s.Spawn(fmt.Sprintf("laddis-%s-%d", l.cli.Name(), g), func(q *sim.Proc) {
			defer func() { finished++; cond.Broadcast() }()
			for q.Now() < end {
				// Open-loop Poisson arrivals: exponential gaps.
				gap := sim.Duration(rng.ExpFloat64() * float64(interval))
				if gap > 0 {
					q.Sleep(gap)
				}
				if q.Now() >= end {
					return
				}
				l.doOp(q, rng.Intn(1000000))
			}
		})
	}
	for finished < l.cfg.Procs {
		cond.Wait(p)
	}
	// Retire the write pool: every generator has drained its last burst,
	// so all workers are parked on the queue; one sentinel each releases
	// them. Same-instant events — the measured interval is unaffected.
	for w := 0; w < l.cfg.Procs*maxBurst; w++ {
		l.writeJobs.Put(writeTask{})
	}
	elapsed := s.Now().Sub(start)
	res := LADDISResult{
		AchievedOpsPerSec: float64(l.done) / elapsed.Seconds(),
		Errors:            l.errors,
		PerOp:             l.perOp,
	}
	if l.lat.N() > 0 {
		res.AvgLatencyMs = sim.Duration(l.lat.Mean()).Millis()
		res.P95LatencyMs = sim.Duration(l.lat.Percentile(95)).Millis()
	}
	if l.hists != nil {
		res.Hists = make(map[string]*stats.Histogram)
		for op := Op(0); op < numOps; op++ {
			if l.hists[op].N() > 0 {
				res.Hists[op.String()] = &l.hists[op]
			}
		}
	}
	return res
}

// doOp executes one operation and records its latency.
func (l *LADDIS) doOp(q *sim.Proc, r int) {
	op := l.pickOp(r)
	fh := l.files[r%len(l.files)]
	off := uint32(r/7%l.cfg.FileBlocks) * nfsproto.MaxData
	begin := q.Now()
	var err error
	switch op {
	case OpLookup:
		name := fmt.Sprintf("ws-%s-%d", l.cli.Name(), r%l.cfg.Files)
		_, err = l.cli.Lookup(q, l.rootFor(name), name)
	case OpRead:
		_, err = l.cli.Read(q, fh, off, nfsproto.MaxData)
	case OpWrite:
		// One SFS write op is a burst of sequential 8K overwrites within
		// one pre-created working file, issued concurrently the way client
		// biods would emit them — the traffic write gathering exploits.
		// Overwrites of allocated blocks are the common SFS case, so the
		// standard server usually pays one disk op per request (§4.4).
		// Each request goes to a pool worker; the generator blocks until
		// its burst drains.
		idx := r % len(l.files)
		burst := burstLen(r / 13)
		if burst > l.cfg.FileBlocks {
			burst = l.cfg.FileBlocks
		}
		if l.cursors[idx]+burst > l.cfg.FileBlocks {
			l.cursors[idx] = 0
		}
		startBlk := l.cursors[idx]
		l.cursors[idx] += burst
		fh := l.files[idx]
		bs := l.getBurst(q.Sim())
		bs.remaining = burst
		for i := 0; i < burst; i++ {
			off := uint32(startBlk+i) * nfsproto.MaxData
			l.writeJobs.Put(writeTask{fh: fh, off: off, burst: bs})
		}
		for bs.remaining > 0 {
			bs.done.Wait(q)
		}
		l.putBurst(bs)
		return
	case OpGetattr:
		_, err = l.cli.Getattr(q, fh)
	case OpReaddir:
		_, err = l.cli.Readdir(q, l.roots[r%len(l.roots)], 0, 512)
	case OpCreate:
		l.seq++
		var cres *nfsproto.DirOpRes
		cres, err = l.cli.Create(q, l.scratch, fmt.Sprintf("t%d", l.seq), 0644)
		if err == nil && cres.Status == nfsproto.OK {
			// Keep the scratch directory bounded: remove as we go.
			l.cli.Remove(q, l.scratch, fmt.Sprintf("t%d", l.seq))
		}
	case OpRemove:
		// Remove of a nonexistent name exercises the path cheaply.
		_, err = l.cli.Remove(q, l.scratch, "absent")
	case OpStatfs:
		_, err = l.cli.Call(q, nfsproto.ProcStatfs, (&nfsproto.FHArgs{File: l.root}).Encode())
	case OpSetattr:
		sa := nfsproto.DefaultSAttr(0644)
		_, err = l.cli.Setattr(q, fh, sa)
	}
	l.done++
	l.perOp[op.String()]++
	if err != nil {
		l.errors++
		return
	}
	if l.done > l.cfg.Warmup {
		d := q.Now().Sub(begin)
		l.lat.Record(d)
		if l.hists != nil {
			l.hists[op].Record(int64(d))
		}
	}
}
