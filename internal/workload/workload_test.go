package workload

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/ufs"
)

// testbed builds a minimal FDDI rig for workload tests.
func testbed(t *testing.T, gathering bool) (*sim.Sim, *client.Client, *server.Server) {
	t.Helper()
	s := sim.New(7)
	n := netsim.New(s, hw.FDDI())
	cpu := sim.NewResource(s, 1)
	costs := hw.DEC3800CPU()
	d := disk.New(s, hw.RZ26(), nil)
	dev := server.NewChargedDevice(d, cpu, costs.DriverTrip)
	fs, err := ufs.Format(s, dev, 1, 512, nil)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	cfg := server.Config{NumNfsds: 8, Costs: costs, CPU: cpu, Gathering: gathering}
	if gathering {
		cfg.Gather = core.DefaultConfig(false, hw.FDDI().Procrastinate)
	}
	srv := server.New(s, n, fs, cfg)
	fs.ChargeMeta = func(p *sim.Proc) { cpu.Use(p, costs.MetaUpdate) }
	cli := client.New(s, n, "c", "server", hw.DEC3000Client(), 4, nil)
	return s, cli, srv
}

func TestFileCopyHelper(t *testing.T) {
	s, cli, srv := testbed(t, true)
	var elapsed sim.Duration
	var err error
	s.Spawn("app", func(p *sim.Proc) {
		elapsed, err = FileCopy(p, cli, srvRootFH(srv), "f", 128*1024)
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("FileCopy: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if cli.WriteCounter.Bytes != 128*1024 {
		t.Fatalf("bytes written = %d", cli.WriteCounter.Bytes)
	}
}

func TestFileCopyDuplicateNameFails(t *testing.T) {
	s, cli, srv := testbed(t, false)
	var err1, err2 error
	s.Spawn("app", func(p *sim.Proc) {
		_, err1 = FileCopy(p, cli, srvRootFH(srv), "dup", 8192)
		_, err2 = FileCopy(p, cli, srvRootFH(srv), "dup", 8192)
	})
	s.Run(0)
	if err1 != nil {
		t.Fatalf("first copy: %v", err1)
	}
	if err2 == nil {
		t.Fatal("second copy with same name succeeded")
	}
}

func TestMixSumsTo100(t *testing.T) {
	m := LADDISMix()
	sum := 0
	for _, v := range m {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("mix sums to %d", sum)
	}
	if m[OpWrite] != 15 {
		t.Fatalf("write share = %d%%, paper says 15%%", m[OpWrite])
	}
}

func TestPickOpDistribution(t *testing.T) {
	l := NewLADDIS(nil, [32]byte{}, LADDISConfig{})
	counts := map[Op]int{}
	for r := 0; r < 100; r++ {
		counts[l.pickOp(r)]++
	}
	// Over one full modulus cycle the histogram equals the mix exactly.
	for op, want := range map[Op]int{OpLookup: 34, OpRead: 22, OpWrite: 15, OpGetattr: 21} {
		if counts[op] != want {
			t.Fatalf("op %v count = %d, want %d", op, counts[op], want)
		}
	}
}

func TestBurstLenDistribution(t *testing.T) {
	total, weighted := 0, 0
	for r := 0; r < 100; r++ {
		b := burstLen(r)
		if b != 1 && b != 2 && b != 4 && b != 8 {
			t.Fatalf("burstLen(%d) = %d", r, b)
		}
		total++
		weighted += b
	}
	mean := float64(weighted) / float64(total)
	if mean < 2.0 || mean < 1 || mean > 3.2 {
		t.Fatalf("mean burst = %v, want ~2.5", mean)
	}
}

func TestLADDISSetupAndRun(t *testing.T) {
	s, cli, srv := testbed(t, false)
	gen := NewLADDIS(cli, srvRootFH(srv), LADDISConfig{
		Files: 4, FileBlocks: 4, OfferedOpsPerSec: 100, Procs: 2,
		Duration: 2 * sim.Second, Seed: 1,
	})
	var res LADDISResult
	s.Spawn("driver", func(p *sim.Proc) {
		if err := gen.Setup(p); err != nil {
			t.Errorf("Setup: %v", err)
			return
		}
		res = gen.Run(p)
	})
	s.Run(0)
	if res.AchievedOpsPerSec <= 0 {
		t.Fatalf("achieved = %v", res.AchievedOpsPerSec)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, perOp = %v", res.Errors, res.PerOp)
	}
	if res.AvgLatencyMs <= 0 {
		t.Fatal("no latency measured")
	}
	// The mix should have produced several distinct op types.
	if len(res.PerOp) < 4 {
		t.Fatalf("perOp too narrow: %v", res.PerOp)
	}
}

func TestLADDISGathersWriteBursts(t *testing.T) {
	s, cli, srv := testbed(t, true)
	gen := NewLADDIS(cli, srvRootFH(srv), LADDISConfig{
		Files: 2, FileBlocks: 8, OfferedOpsPerSec: 200, Procs: 2,
		Duration: 2 * sim.Second, Seed: 5,
	})
	s.Spawn("driver", func(p *sim.Proc) {
		if err := gen.Setup(p); err != nil {
			t.Errorf("Setup: %v", err)
			return
		}
		gen.Run(p)
	})
	s.Run(0)
	st := srv.Engine().Stats()
	if st.Writes == 0 {
		t.Fatal("no gathered writes")
	}
	if srv.Engine().PendingReplies() != 0 {
		t.Fatal("descriptors leaked")
	}
	if st.MaxBatch < 2 {
		t.Fatalf("no multi-write gathers formed: %+v", st)
	}
}

func srvRootFH(s *server.Server) [32]byte { return s.RootFH() }
