package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Spec-level fault kind tags. The scenario schema's tagged events decode
// onto exactly these; the two layers share the vocabulary through these
// constants.
const (
	KindServerCrash   = "server-crash"
	KindClientReboot  = "client-reboot"
	KindBiodLoss      = "biod-loss"
	KindShardFailover = "shard-failover"
	KindLinkOutage    = "link-outage"
)

// Kind is one pluggable fault type. An implementation owns the full
// lifecycle of its failure mode: Schedule arms the timed injection and
// recovery transitions against the injector's cluster (recording each in
// EventsFired and the shared counters), and AnnotateJournal teaches the
// durability checker the kind's loss semantics — which bytes a recovery
// may legitimately surface without, and which remain hard obligations.
//
// New failure modes plug in here: implement Kind, map a spec event onto
// it, and every scenario machine (validation, sweeps, durability audit,
// rendering) picks it up without a special case.
type Kind interface {
	// Kind returns the spec-level tag (Kind* constants).
	Kind() string
	// Schedule arms the fault's transitions. Called before the simulation
	// runs; all timing is via the cluster's simulator.
	Schedule(in *Injector)
	// AnnotateJournal records the kind's durability semantics on the
	// journal (no-op for kinds that change no obligations).
	AnnotateJournal(in *Injector, j *Journal)
}

// ServerCrash is the original fault: a train of Count crash/reboot cycles
// on one server shard, the first at At, spaced every Period, each with
// the given Outage before the reboot starts.
type ServerCrash struct {
	Node   int
	At     sim.Time
	Period sim.Duration
	Outage sim.Duration
	Count  int
}

func (f ServerCrash) Kind() string { return KindServerCrash }

func (f ServerCrash) Schedule(in *Injector) {
	in.ScheduleEvery(f.Node, f.At, f.Period, f.Outage, f.Count)
}

// AnnotateJournal: a server crash changes no obligations — every acked
// byte must survive it. That is the contract under test.
func (f ServerCrash) AnnotateJournal(in *Injector, j *Journal) {}

// ClientReboot power-cycles one client workstation at At: the host's
// daemons and applications die, dirty write-behind is discarded, and
// after Outage the host boots back with fresh daemons (applications do
// not restart). Client is the 0-based index into the cluster's client
// population.
type ClientReboot struct {
	Client int
	At     sim.Time
	Outage sim.Duration
}

func (f ClientReboot) Kind() string { return KindClientReboot }

func (f ClientReboot) Schedule(in *Injector) {
	cli := in.c.Clients[f.Client]
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: client reboot time %v already past", f.At))
	}
	s.At(delay, func() {
		if cli.Down {
			return
		}
		cli.Crash()
		in.fired("client-crash %s", cli.Name())
		s.At(f.Outage, func() {
			cli.Reboot()
			in.ClientReboots++
			in.fired("client-reboot %s", cli.Name())
		})
	})
}

// AnnotateJournal marks the target client crash-exposed: its buffered
// writes that never earned a server ack are a permitted loss, not a
// durability violation. Server-acked writes stay hard obligations — the
// client forgetting it wrote them does not excuse the server losing them.
func (f ClientReboot) AnnotateJournal(in *Injector, j *Journal) {
	j.NoteCrashExposed(in.c.Clients[f.Client].Name())
}

// BiodLoss kills Lose of one client's biod daemons at At — the daemons
// never come back, so write-behind degrades toward §4.1's do-it-yourself
// flow control. A daemon killed mid-RPC abandons its write unacked.
type BiodLoss struct {
	Client int
	At     sim.Time
	Lose   int
}

func (f BiodLoss) Kind() string { return KindBiodLoss }

func (f BiodLoss) Schedule(in *Injector) {
	cli := in.c.Clients[f.Client]
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: biod loss time %v already past", f.At))
	}
	s.At(delay, func() {
		if cli.Down {
			return
		}
		killed := cli.KillBiods(f.Lose)
		if killed == 0 {
			return // pool already empty (an earlier loss): nothing happened
		}
		in.BiodsLost += killed
		in.fired("biod-loss %s (-%d daemons)", cli.Name(), killed)
	})
}

// AnnotateJournal: a killed daemon's in-flight write was never acked, so
// the client counts as crash-exposed for buffered-loss accounting.
func (f BiodLoss) AnnotateJournal(in *Injector, j *Journal) {
	j.NoteCrashExposed(in.c.Clients[f.Client].Name())
}

// ShardFailover kills shard Node at At and, after the Takeover delay
// (failure detection plus tray handover), has surviving shard To adopt
// its disks: NVRAM replay, remount at device speed, and a dedicated
// server instance under the adopter's CPU serving the dead shard's FSID.
// The source node never reboots — its export lives on through the
// adopter.
type ShardFailover struct {
	Node     int
	To       int
	At       sim.Time
	Takeover sim.Duration
}

func (f ShardFailover) Kind() string { return KindShardFailover }

func (f ShardFailover) Schedule(in *Injector) {
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: failover time %v already past", f.At))
	}
	s.At(delay, func() {
		node := in.c.Nodes[f.Node]
		if !node.Down {
			node.Crash()
			in.Crashes++
			in.fired("server-crash %s (failover source)", node.Name)
		}
		adopter := in.c.Nodes[f.To]
		s.SpawnAfter(f.Takeover, fmt.Sprintf("failover-%s-%s", node.Name, adopter.Name),
			func(p *sim.Proc) {
				// An earlier crash train's reboot may still be remounting on
				// either node (validation bounds scheduled windows, but a
				// remount tail is device-timed and extends past them).
				// Adoption must not mount platters a racing reboot is
				// mid-mount on, so wait each side out: the adopter finishes
				// booting, and the source — the failover decision stands —
				// is powered back off the instant its reboot completes.
				for adopter.Rebooting || node.Rebooting {
					p.Sleep(5 * sim.Millisecond)
				}
				if !node.Down {
					node.Crash()
					in.Crashes++
					in.fired("server-crash %s (failover source, rebooted mid-takeover)", node.Name)
				}
				start := p.Now()
				if err := adopter.Adopt(p, node); err != nil {
					in.Failures = append(in.Failures, err)
					return
				}
				in.RecoveryTimes = append(in.RecoveryTimes, p.Now().Sub(start))
				in.Failovers++
				in.fired("shard-failover %s->%s", node.Name, adopter.Name)
			})
	})
}

// AnnotateJournal: failover preserves every obligation — the platters
// move, the acked bytes must all still be readable through the adopter.
func (f ShardFailover) AnnotateJournal(in *Injector, j *Journal) {}

// LinkOutage severs one host's network attachment for a train of timed
// windows: Count cycles starting at At, spaced every Period, each Outage
// long. The host stays up — clients ride it out with retransmission, a
// cut-off server keeps serving its queued work into a dead interface.
// TargetClient selects a client host by index instead of a server shard;
// Segment instead severs a whole bridged segment's uplink port,
// partitioning every host on it from the rest of the fabric.
type LinkOutage struct {
	TargetClient bool
	Index        int
	Segment      string
	At           sim.Time
	Period       sim.Duration
	Outage       sim.Duration
	Count        int
}

func (f LinkOutage) Kind() string { return KindLinkOutage }

// targets resolves the host's endpoint names at fire time. A server host
// carries one endpoint per export it serves — its own plus any adopted
// ones — and a severed NIC cuts them all.
func (f LinkOutage) targets(in *Injector) []string {
	if f.TargetClient {
		return []string{in.c.Clients[f.Index].Name()}
	}
	n := in.c.Nodes[f.Index]
	names := []string{n.Name}
	for _, ex := range n.Adopted {
		names = append(names, ex.Server.Endpoint().Name)
	}
	return names
}

// hostDown reports whether the outage target's host is down (or still
// remounting) — there is no attachment to sever then. A segment target
// has no host: its uplink port is bridge hardware, always severable.
func (f LinkOutage) hostDown(in *Injector) bool {
	if f.Segment != "" {
		return false
	}
	if f.TargetClient {
		return in.c.Clients[f.Index].Down
	}
	n := in.c.Nodes[f.Index]
	return n.Down || n.Rebooting
}

func (f LinkOutage) Schedule(in *Injector) {
	s := in.c.Sim
	at := f.At
	for i := 0; i < f.Count; i++ {
		delay := at.Sub(s.Now())
		if delay < 0 {
			panic(fmt.Sprintf("fault: link outage time %v already past", at))
		}
		// Each cycle is a paired down/up transition. A cycle aimed at a
		// host that is down at the down-instant (a crash window precedes
		// the cycle and its device-timed remount tail runs long) is
		// skipped whole — the attachment is already gone, and counting a
		// cut that never happened would misreport the run. Same skip
		// semantics as a crash aimed at a node still down.
		cut := new(bool)
		s.At(delay, func() {
			if f.hostDown(in) {
				return
			}
			if f.Segment != "" {
				if !in.c.SetUplinkDown(f.Segment, true) {
					return
				}
				*cut = true
				in.LinkOutages++
				in.fired("link-down segment %s", f.Segment)
				return
			}
			names := f.targets(in)
			for _, name := range names {
				in.c.SetHostLinkDown(name, true)
			}
			*cut = true
			in.LinkOutages++
			in.fired("link-down %s", names[0])
		})
		s.At(delay+f.Outage, func() {
			if !*cut {
				return
			}
			if f.Segment != "" {
				in.c.SetUplinkDown(f.Segment, false)
				in.fired("link-up segment %s", f.Segment)
				return
			}
			// Re-resolve: an export adopted during the window attached to
			// the severed NIC (Adopt inherits the link state) and comes
			// back with it.
			names := f.targets(in)
			for _, name := range names {
				in.c.SetHostLinkDown(name, false)
			}
			in.fired("link-up %s", names[0])
		})
		at = at.Add(f.Period)
	}
}

// AnnotateJournal: an outage loses datagrams, never acked bytes — the
// retransmission layer's whole job. No obligations change.
func (f LinkOutage) AnnotateJournal(in *Injector, j *Journal) {}
