package fault

import (
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/nfsproto"
	"repro/internal/sim"
)

// accountedRefs is the cluster's own leak-audit sum (the scenario runner
// and the fuzzer audit the same quantity per cell).
func accountedRefs(c *cluster.Cluster) int64 { return c.AccountedRefs() }

// TestCrashMidWriteNoBlockLeakOrAckLoss is the kill-safety guard for the
// refcounted block pipeline: a node crashed mid-WRITE-burst unwinds nfsds
// out of device sleeps, kills NVRAM drain workers holding snapshot
// references, scrubs the socket buffer, and drops in-flight datagrams —
// and after recovery and quiesce, (a) every outstanding buffer reference
// is attributable to a long-lived store (nothing leaked through any of
// those unwind paths) and (b) the durability contract still holds: no
// acked byte was lost.
func TestCrashMidWriteNoBlockLeakOrAckLoss(t *testing.T) {
	for _, presto := range []bool{false, true} {
		t.Run(fmt.Sprintf("presto=%v", presto), func(t *testing.T) {
			refs0 := block.TotalRefs()
			c := cluster.New(cluster.Config{
				Net: hw.FDDI(), Clients: 2, Servers: 1,
				Gathering: true, Presto: presto, Biods: 4,
				StripeDisks: 2,
				Seed:        71, ClientRetries: 40,
			})
			j := NewJournal()
			for _, cli := range c.Clients {
				j.Attach(cli)
			}
			in := NewInjector(c)
			crashAt := sim.Time(800 * sim.Millisecond)
			if presto {
				crashAt = sim.Time(200 * sim.Millisecond)
			}
			in.Schedule(Crash{Node: 0, At: crashAt, Outage: 400 * sim.Millisecond})

			roots := c.Roots()
			done := 0
			for i, cli := range c.Clients {
				i, cli := i, cli
				c.Sim.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
					name := fmt.Sprintf("burst-%d.dat", i)
					cres, err := cli.Create(p, roots[0], name, 0644)
					if err != nil || cres.Status != nfsproto.OK {
						t.Errorf("client %d create: %v %v", i, err, cres)
						return
					}
					if _, err := cli.WriteFile(p, cres.File, 1<<20); err != nil {
						t.Errorf("client %d stream: %v", i, err)
						return
					}
					done++
				})
			}
			c.Sim.Run(0)
			if done != 2 {
				t.Fatalf("only %d/2 streams completed", done)
			}
			if in.Crashes != 1 || in.Reboots != 1 {
				t.Fatalf("crashes=%d reboots=%d (failures: %v)", in.Crashes, in.Reboots, in.Failures)
			}

			// (b) Acked-byte durability: verify the journal against the
			// recovered filesystem before the leak accounting, so the check
			// runs on exactly the post-recovery image.
			var res CheckResult
			c.Sim.Spawn("verify", func(p *sim.Proc) { res = j.Verify(p, c) })
			c.Sim.Run(0)
			if res.LostBytes != 0 {
				t.Fatalf("durability regression: %d acked bytes lost (first: %s)",
					res.LostBytes, res.FirstLoss)
			}

			// (a) No block leaks: every outstanding reference is held by a
			// cache, a platter store or the NVRAM dirty map. A reference
			// stranded by a killed nfsd, a dead drain worker or a dropped
			// datagram breaks this equation.
			expected := accountedRefs(c)
			if got := block.TotalRefs() - refs0; got != expected {
				t.Fatalf("block refs after crash sweep: %d outstanding, %d accounted — %+d leaked",
					got, expected, got-expected)
			}
			t.Logf("presto=%v: %d acked writes survived, %d refs all accounted",
				presto, res.AckedWrites, expected)
		})
	}
}
