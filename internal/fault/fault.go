// Package fault is the deterministic fault-injection layer over a cluster:
// scheduled server crashes and reboots driven off simulated time and the
// run's seed, plus the write-durability checker that makes NFS's central
// crash-recovery contract testable — an acked write must survive a server
// crash.
//
// The crash model (what a crash loses and what it keeps) is implemented by
// cluster.Node.Crash/Reboot; this package owns the schedule and the audit.
package fault

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Crash is one scheduled fault: node Node crashes At (absolute simulated
// time) and begins rebooting after Outage.
type Crash struct {
	Node   int
	At     sim.Time
	Outage sim.Duration
}

// Injector schedules crashes against a cluster and records recovery
// outcomes.
type Injector struct {
	c *cluster.Cluster

	// Crashes and Reboots count completed transitions.
	Crashes int
	Reboots int
	// RecoveryTimes records each reboot's remount duration — the time the
	// boot spent re-reading the inode region and rebuilding allocation
	// maps at device speed.
	RecoveryTimes []sim.Duration
	// Failures collects reboot errors (a failed remount is a test failure,
	// not a panic, so sweeps can report it).
	Failures []error
}

// NewInjector builds an injector over c.
func NewInjector(c *cluster.Cluster) *Injector {
	return &Injector{c: c}
}

// Schedule arms one crash/reboot cycle. The crash fires exactly at f.At;
// the reboot process starts after f.Outage and takes additional simulated
// time for the remount (recorded in RecoveryTimes).
func (in *Injector) Schedule(f Crash) {
	node := in.c.Nodes[f.Node]
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: crash time %v already past", f.At))
	}
	s.At(delay, func() {
		if node.Down {
			return // overlapping schedules: already down
		}
		node.Crash()
		in.Crashes++
		s.SpawnAfter(f.Outage, fmt.Sprintf("reboot-%s", node.Name), func(p *sim.Proc) {
			start := p.Now()
			if err := node.Reboot(p); err != nil {
				in.Failures = append(in.Failures, err)
				return
			}
			in.RecoveryTimes = append(in.RecoveryTimes, p.Now().Sub(start))
			in.Reboots++
		})
	})
}

// ScheduleEvery arms count crash cycles on one node, the first at start,
// spaced every period, each with the given outage. Deterministic and
// collision-free by construction: a cycle scheduled while the node is
// still down is skipped.
func (in *Injector) ScheduleEvery(node int, start sim.Time, period, outage sim.Duration, count int) {
	at := start
	for i := 0; i < count; i++ {
		in.Schedule(Crash{Node: node, At: at, Outage: outage})
		at = at.Add(period)
	}
}
