// Package fault is the deterministic fault-injection layer over a cluster:
// scheduled server crashes and reboots driven off simulated time and the
// run's seed, plus the write-durability checker that makes NFS's central
// crash-recovery contract testable — an acked write must survive a server
// crash.
//
// The crash model (what a crash loses and what it keeps) is implemented by
// cluster.Node.Crash/Reboot; this package owns the schedule and the audit.
package fault

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Crash is one scheduled fault: node Node crashes At (absolute simulated
// time) and begins rebooting after Outage.
type Crash struct {
	Node   int
	At     sim.Time
	Outage sim.Duration
}

// Injector schedules faults against a cluster and records recovery
// outcomes. Fault behaviour is pluggable: every fault type implements
// Kind, and the injector just arms each kind's schedule and aggregates
// the shared accounting. The original crash-train methods (Schedule,
// ScheduleEvery) remain as the server-crash primitive the ServerCrash
// kind delegates to.
type Injector struct {
	c     *cluster.Cluster
	kinds []Kind

	// Journal, when non-nil, is the durability journal kinds annotate
	// with their loss semantics (ScheduleAll passes it to each kind).
	Journal *Journal

	// Crashes and Reboots count completed server transitions.
	Crashes int
	Reboots int
	// ClientReboots, BiodsLost, Failovers and LinkOutages count the other
	// kinds' completed injections.
	ClientReboots int
	BiodsLost     int
	Failovers     int
	LinkOutages   int
	// StorageFaults counts storage-plane injections that fired (media
	// read errors, degraded windows, torn-write arms, lying boards).
	StorageFaults int
	// RecoveryTimes records each reboot's (or adoption's) remount duration
	// — the time the boot spent re-reading the inode region and rebuilding
	// allocation maps at device speed.
	RecoveryTimes []sim.Duration
	// Failures collects reboot errors (a failed remount is a test failure,
	// not a panic, so sweeps can report it).
	Failures []error
	// EventsFired is the ordered record of every fault transition, with
	// its simulated timestamp. It is a pure function of the spec and the
	// seed — the determinism contract scenarios assert on.
	EventsFired []string
}

// NewInjector builds an injector over c.
func NewInjector(c *cluster.Cluster) *Injector {
	return &Injector{c: c}
}

// Add registers a fault kind; ScheduleAll arms it.
func (in *Injector) Add(k Kind) { in.kinds = append(in.kinds, k) }

// ScheduleAll arms every added kind, in order, and gives each a chance to
// annotate the durability journal with its loss semantics. Kinds added in
// the same order produce the same same-instant event order — the recorded
// baselines depend on it.
func (in *Injector) ScheduleAll() {
	for _, k := range in.kinds {
		k.Schedule(in)
		if in.Journal != nil {
			k.AnnotateJournal(in, in.Journal)
		}
	}
}

// fired appends one timestamped line to the EventsFired record.
func (in *Injector) fired(format string, args ...any) {
	in.EventsFired = append(in.EventsFired,
		fmt.Sprintf("t=%v ", sim.Duration(in.c.Sim.Now()))+fmt.Sprintf(format, args...))
}

// Schedule arms one crash/reboot cycle. The crash fires exactly at f.At;
// the reboot process starts after f.Outage and takes additional simulated
// time for the remount (recorded in RecoveryTimes).
func (in *Injector) Schedule(f Crash) {
	node := in.c.Nodes[f.Node]
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: crash time %v already past", f.At))
	}
	s.At(delay, func() {
		if node.Down {
			return // overlapping schedules: already down
		}
		node.Crash()
		in.Crashes++
		in.fired("server-crash %s", node.Name)
		s.SpawnAfter(f.Outage, fmt.Sprintf("reboot-%s", node.Name), func(p *sim.Proc) {
			start := p.Now()
			if err := node.Reboot(p); err != nil {
				in.Failures = append(in.Failures, err)
				return
			}
			in.RecoveryTimes = append(in.RecoveryTimes, p.Now().Sub(start))
			in.Reboots++
			in.fired("server-reboot %s", node.Name)
		})
	})
}

// ScheduleEvery arms count crash cycles on one node, the first at start,
// spaced every period, each with the given outage. Deterministic and
// collision-free by construction: a cycle scheduled while the node is
// still down is skipped.
func (in *Injector) ScheduleEvery(node int, start sim.Time, period, outage sim.Duration, count int) {
	at := start
	for i := 0; i < count; i++ {
		in.Schedule(Crash{Node: node, At: at, Outage: outage})
		at = at.Add(period)
	}
}
