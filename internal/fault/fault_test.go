package fault

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
)

// runDurability streams file copies from two clients through a gathering
// server that crashes mid-stream, then verifies the acked-write journal
// against the recovered filesystem.
func runDurability(t *testing.T, presto bool) { runDurabilityDisks(t, presto, 1) }

func runDurabilityDisks(t *testing.T, presto bool, disks int) {
	c := cluster.New(cluster.Config{
		Net: hw.FDDI(), Clients: 2, Servers: 1,
		Gathering: true, Presto: presto, Biods: 4,
		StripeDisks: disks,
		Seed:        42, ClientRetries: 30,
	})
	j := NewJournal()
	for _, cli := range c.Clients {
		j.Attach(cli)
	}
	in := NewInjector(c)
	// Presto absorbs the stream at NVRAM speed, so its crash must come
	// sooner to land mid-stream.
	crashAt := sim.Time(1 * sim.Second)
	if presto {
		crashAt = sim.Time(250 * sim.Millisecond)
	}
	in.Schedule(Crash{Node: 0, At: crashAt, Outage: 500 * sim.Millisecond})

	roots := c.Roots()
	const size = 1 << 20
	done := 0
	for i, cli := range c.Clients {
		i, cli := i, cli
		c.Sim.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("stream-%d.dat", i)
			cres, err := cli.Create(p, roots[0], name, 0644)
			if err != nil || cres.Status != nfsproto.OK {
				t.Errorf("client %d create: %v %v", i, err, cres)
				return
			}
			if _, err := cli.WriteFile(p, cres.File, size); err != nil {
				t.Errorf("client %d stream: %v", i, err)
				return
			}
			done++
		})
	}
	c.Sim.Run(0)
	if done != 2 {
		t.Fatalf("only %d/2 streams completed (writes did not ride out the outage)", done)
	}
	if in.Crashes != 1 || in.Reboots != 1 {
		t.Fatalf("crashes=%d reboots=%d, want 1/1 (failures: %v)", in.Crashes, in.Reboots, in.Failures)
	}
	if len(j.Entries) == 0 {
		t.Fatal("journal is empty; nothing was audited")
	}

	var res CheckResult
	c.Sim.Spawn("verify", func(p *sim.Proc) { res = j.Verify(p, c) })
	c.Sim.Run(0)
	if res.AckedWrites != len(j.Entries) || res.AckedBytes == 0 {
		t.Fatalf("checker did not cover the journal: %+v", res)
	}
	if res.LostBytes != 0 {
		t.Fatalf("durability violated: %d acked bytes lost (first: %s)", res.LostBytes, res.FirstLoss)
	}

	st := c.IntervalStats()
	if st.RebootsSeen == 0 {
		t.Error("no client observed the boot-verifier change")
	}
	var retrans uint64
	for _, cli := range c.Clients {
		retrans += cli.Retransmissions
	}
	if retrans == 0 {
		t.Error("no retransmissions; the crash did not interrupt the stream")
	}
	if presto && c.Nodes[0].RecoveredBlocks == 0 {
		t.Error("crash left no dirty NVRAM to replay; the recovery path went unexercised")
	}
	t.Logf("presto=%v: %d acked writes (%d KB), %d retrans, %d NVRAM blocks replayed, recovery=%v",
		presto, res.AckedWrites, res.AckedBytes/1024, retrans, c.Nodes[0].RecoveredBlocks, in.RecoveryTimes)
}

// TestDurabilityAcrossCrash: with gathering on, no acked byte is lost to a
// mid-stream crash — the engine never acks before stable storage.
func TestDurabilityAcrossCrash(t *testing.T)       { runDurability(t, false) }
func TestDurabilityAcrossCrashPresto(t *testing.T) { runDurability(t, true) }

// TestDurabilityAcrossCrashStripedPresto adds a stripe set under the
// Presto board: a crash can now catch multi-member transfers (drain
// clusters fanned out by stripe-io children) mid-air, and those children
// must die with the host — a surviving one could overwrite the NVRAM
// recovery replay with an older snapshot after the reboot.
func TestDurabilityAcrossCrashStripedPresto(t *testing.T) {
	runDurabilityDisks(t, true, 2)
}

// probe is a raw RPC endpoint that controls its own XIDs, for exercising
// retransmission against the duplicate cache across a reboot.
type probe struct {
	net *netsim.Network
	ep  *netsim.Endpoint
	to  string
}

// rpc sends raw and waits for the reply.
func (pr *probe) rpc(p *sim.Proc, raw []byte) *oncrpc.ReplyMsg {
	pr.net.Send(p, "probe", pr.to, raw)
	dg := pr.ep.Inbox.Get(p)
	defer dg.Release()
	r, err := oncrpc.DecodeReply(dg.Payload)
	if err != nil {
		panic("probe: bad reply: " + err.Error())
	}
	res := make([]byte, len(r.Results))
	copy(res, r.Results)
	r.Results = res
	verf := make([]byte, len(r.Verf.Body))
	copy(verf, r.Verf.Body)
	r.Verf.Body = verf
	return r
}

func encodeCall(xid uint32, proc nfsproto.Proc, args []byte) []byte {
	call := &oncrpc.CallMsg{
		XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version,
		Proc: uint32(proc), Cred: oncrpc.NullAuth(), Verf: oncrpc.NullAuth(),
	}
	call.Args = args
	return call.Encode()
}

// TestDupCacheAcrossReboot pins the volatile-dup-cache semantics: before a
// crash a retransmission is answered from the cache without re-execution;
// after a reboot the cache is gone, so the same bytes re-execute — which
// must be observably safe for acked writes (idempotent re-write of
// identical data) and observably anomalous for non-idempotent ops (the
// classic re-executed CREATE turning into ErrExist).
func TestDupCacheAcrossReboot(t *testing.T) {
	c := cluster.New(cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Seed: 9,
	})
	node := c.Nodes[0]
	pr := &probe{net: c.Net, ep: c.Net.Attach("probe", 0, 0), to: node.Name}
	root := c.Roots()[0]

	data := make([]byte, 8192)
	client.FillPattern(data, 0)

	ok := false
	c.Sim.Spawn("script", func(p *sim.Proc) {
		// Target file.
		cres := pr.rpc(p, encodeCall(99, nfsproto.ProcCreate, (&nfsproto.CreateArgs{
			Where: nfsproto.DirOpArgs{Dir: root, Name: "w.dat"},
			Attr:  nfsproto.DefaultSAttr(0644),
		}).Encode()))
		dres, err := nfsproto.DecodeDirOpRes(cres.Results)
		if err != nil || dres.Status != nfsproto.OK {
			t.Errorf("setup create: %v %v", err, dres)
			return
		}
		fh := dres.File

		// Acked WRITE, then a pre-crash retransmission: served from the
		// dup cache, byte-identical, not re-executed.
		writeRaw := encodeCall(100, nfsproto.ProcWrite, (&nfsproto.WriteArgs{
			File: fh, Offset: 0, TotalCount: uint32(len(data)), Data: data,
		}).Encode())
		first := pr.rpc(p, writeRaw)
		ws, err := nfsproto.DecodeAttrStat(first.Results)
		if err != nil || ws.Status != nfsproto.OK {
			t.Errorf("write: %v %v", err, ws)
			return
		}
		resent := pr.rpc(p, writeRaw)
		if !bytes.Equal(first.Results, resent.Results) {
			t.Error("pre-crash dup resend differs from the cached reply")
		}
		if node.Server.DupResends != 1 {
			t.Errorf("DupResends = %d, want 1", node.Server.DupResends)
		}

		// A completed non-idempotent op.
		createRaw := encodeCall(101, nfsproto.ProcCreate, (&nfsproto.CreateArgs{
			Where: nfsproto.DirOpArgs{Dir: root, Name: "once.dat"},
			Attr:  nfsproto.DefaultSAttr(0644),
		}).Encode())
		c1 := pr.rpc(p, createRaw)
		d1, err := nfsproto.DecodeDirOpRes(c1.Results)
		if err != nil || d1.Status != nfsproto.OK {
			t.Errorf("create once.dat: %v %v", err, d1)
			return
		}
		bootBefore, hasVerf := oncrpc.BootVerf(c1.Verf)
		if !hasVerf {
			t.Error("pre-crash reply carries no boot verifier")
		}

		// Crash; the dup cache dies with the server instance.
		node.Crash()
		p.Sleep(300 * sim.Millisecond)
		if err := node.Reboot(p); err != nil {
			t.Errorf("reboot: %v", err)
			return
		}

		// Retransmitted WRITE re-executes (no cache), and that is safe:
		// identical bytes land on identical offsets.
		re := pr.rpc(p, writeRaw)
		rs, err := nfsproto.DecodeAttrStat(re.Results)
		if err != nil || rs.Status != nfsproto.OK {
			t.Errorf("re-executed write: %v %v", err, rs)
			return
		}
		if node.Server.DupResends != 0 {
			t.Errorf("post-reboot write was served from a dup cache that should be gone")
		}
		bootAfter, _ := oncrpc.BootVerf(re.Verf)
		if hasVerf && bootAfter == bootBefore {
			t.Error("boot verifier did not change across reboot")
		}

		// Retransmitted CREATE re-executes and turns into ErrExist — the
		// observable anomaly a volatile dup cache permits.
		c2 := pr.rpc(p, createRaw)
		d2, err := nfsproto.DecodeDirOpRes(c2.Results)
		if err != nil {
			t.Errorf("re-executed create decode: %v", err)
			return
		}
		if d2.Status != nfsproto.ErrExist {
			t.Errorf("re-executed create status = %v, want ErrExist", d2.Status)
		}
		ok = true
	})
	c.Sim.Run(0)
	if !ok {
		t.Fatal("script did not complete")
	}

	// The acked write's bytes survived the crash and the re-execution.
	var clean bool
	c.Sim.Spawn("verify", func(p *sim.Proc) {
		ino, err := node.FS.Lookup(p, node.FS.Root(), "w.dat")
		if err != nil {
			t.Errorf("w.dat missing after reboot: %v", err)
			return
		}
		got := make([]byte, len(data))
		if _, err := node.FS.Read(p, ino, 0, got); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("acked write corrupted by crash + re-execution")
			return
		}
		clean = true
	})
	c.Sim.Run(0)
	if !clean {
		t.Fatal("verification did not complete")
	}
}
