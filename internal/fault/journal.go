package fault

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// AckedWrite is one WRITE the server acknowledged to a client. NFS v2's
// contract says these bytes are on stable storage the moment the ack left:
// a crash at any later instant must not lose them.
type AckedWrite struct {
	Client string
	FH     nfsproto.FH
	Off    uint32
	Len    int
	When   sim.Time
}

// Journal records every client-acked write during a run. All workloads in
// this repo write the deterministic audit pattern (client.FillPattern), so
// the journal needs offsets only — expected bytes are regenerated at
// verification time. Overlapping acked writes agree by construction (the
// pattern is a pure function of the absolute file offset).
type Journal struct {
	Entries []AckedWrite
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Attach hooks a client so every acked WRITE is journaled.
func (j *Journal) Attach(cli *client.Client) {
	name := cli.Name()
	cli.OnWriteAcked = func(fh nfsproto.FH, off uint32, n int) {
		j.Entries = append(j.Entries, AckedWrite{
			Client: name, FH: fh, Off: off, Len: n, When: cli.Sim().Now(),
		})
	}
}

// AckedBytes sums journaled write sizes (re-acked retransmissions count
// separately; the durability obligation is per ack).
func (j *Journal) AckedBytes() int64 {
	var n int64
	for _, e := range j.Entries {
		n += int64(e.Len)
	}
	return n
}

// CheckResult is the durability verdict after recovery.
type CheckResult struct {
	AckedWrites int
	AckedBytes  int64
	// LostBytes counts acked bytes whose recovered contents differ from
	// the audit pattern (or whose file is gone). The contract demands 0.
	LostBytes int64
	// FirstLoss describes the first violation, for diagnosis.
	FirstLoss string
}

// Verify reads every journaled range back through the owning shard's
// remounted filesystem and compares it with the regenerated audit pattern.
// It must run after all scheduled reboots completed (every shard mounted).
// The reads go through the simulated device stack, so Verify consumes
// simulated time; run it from a dedicated process after the measured
// phase.
func (j *Journal) Verify(p *sim.Proc, c *cluster.Cluster) CheckResult {
	res := CheckResult{AckedWrites: len(j.Entries), AckedBytes: j.AckedBytes()}
	buf := make([]byte, nfsproto.MaxData)
	want := make([]byte, nfsproto.MaxData)
	for _, e := range j.Entries {
		node := c.Shards.ByHandle(e.FH)
		if node == nil || node.FS == nil {
			res.LostBytes += int64(e.Len)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: shard missing or down", e)
			}
			continue
		}
		got := buf[:e.Len]
		n, err := node.FS.Read(p, vfs.Ino(e.FH.Ino()), e.Off, got)
		if err != nil || n != e.Len {
			res.LostBytes += int64(e.Len)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: read %d bytes, err=%v", e, n, err)
			}
			continue
		}
		client.FillPattern(want[:e.Len], e.Off)
		lost := 0
		for i := 0; i < e.Len; i++ {
			if got[i] != want[i] {
				lost++
			}
		}
		if lost > 0 {
			res.LostBytes += int64(lost)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: %d bytes corrupted", e, lost)
			}
		}
	}
	return res
}
