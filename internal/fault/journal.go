package fault

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// AckedWrite is one WRITE the server acknowledged to a client. NFS v2's
// contract says these bytes are on stable storage the moment the ack left:
// a crash at any later instant must not lose them.
type AckedWrite struct {
	Client string
	FH     nfsproto.FH
	Off    uint32
	Len    int
	When   sim.Time
}

// BufferedWrite is one write accepted into a client's write-behind: the
// application was told "done", but no server ack exists yet. NFS promises
// durability only at close, so a client crash may legitimately lose these
// — the checker tracks them so permitted loss is visible and accounted,
// never confused with a durability violation.
type BufferedWrite struct {
	Client string
	FH     nfsproto.FH
	Off    uint32
	Len    int
	When   sim.Time
}

// Journal records every client-acked write during a run. All workloads in
// this repo write the deterministic audit pattern (client.FillPattern), so
// the journal needs offsets only — expected bytes are regenerated at
// verification time. Overlapping acked writes agree by construction (the
// pattern is a pure function of the absolute file offset).
type Journal struct {
	Entries []AckedWrite
	// Buffered records write-behind acceptances (see BufferedWrite).
	Buffered []BufferedWrite
	// crashExposed names clients a scheduled fault may crash (or whose
	// biods it may kill): their unacked buffered writes are an expected
	// loss. Kinds register these via AnnotateJournal.
	crashExposed map[string]bool
	// lossExpected records scheduled faults that may legitimately lose
	// acked bytes (a lying NVRAM board). Verify still counts every lost
	// byte, but the verdict carries the classification.
	lossExpected []string
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Attach hooks a client so every acked WRITE — and every write accepted
// into write-behind ahead of its ack — is journaled.
func (j *Journal) Attach(cli *client.Client) {
	name := cli.Name()
	cli.OnWriteAcked = func(fh nfsproto.FH, off uint32, n int) {
		j.Entries = append(j.Entries, AckedWrite{
			Client: name, FH: fh, Off: off, Len: n, When: cli.Sim().Now(),
		})
	}
	cli.OnWriteBuffered = func(fh nfsproto.FH, off uint32, n int) {
		j.Buffered = append(j.Buffered, BufferedWrite{
			Client: name, FH: fh, Off: off, Len: n, When: cli.Sim().Now(),
		})
	}
}

// NoteLossExpected records that a scheduled fault (a lying NVRAM board,
// an unrecoverable media failure) may legitimately surface acked-byte
// loss: Verify's verdict reports ExpectedLoss so the caller can tell a
// scheduled hardware betrayal from an engine durability bug.
func (j *Journal) NoteLossExpected(reason string) {
	j.lossExpected = append(j.lossExpected, reason)
}

// NoteCrashExposed marks a client as targeted by a client-side fault:
// its buffered-but-never-acked writes become permitted loss.
func (j *Journal) NoteCrashExposed(clientName string) {
	if j.crashExposed == nil {
		j.crashExposed = make(map[string]bool)
	}
	j.crashExposed[clientName] = true
}

// AckedBytes sums journaled write sizes (re-acked retransmissions count
// separately; the durability obligation is per ack).
func (j *Journal) AckedBytes() int64 {
	var n int64
	for _, e := range j.Entries {
		n += int64(e.Len)
	}
	return n
}

// CheckResult is the durability verdict after recovery.
type CheckResult struct {
	AckedWrites int
	AckedBytes  int64
	// LostBytes counts acked bytes whose recovered contents differ from
	// the audit pattern (or whose file is gone). The contract demands 0.
	LostBytes int64
	// FirstLoss describes the first violation, for diagnosis.
	FirstLoss string
	// BufferedWrites/BufferedBytes count write-behind acceptances seen.
	BufferedWrites int
	BufferedBytes  int64
	// DroppedBuffered/DroppedBufferedBytes count buffered writes that
	// never earned a server ack on a crash-exposed client — the loss a
	// client reboot is permitted, excluded from LostBytes by contract.
	DroppedBuffered      int
	DroppedBufferedBytes int64
	// UnackedBuffered counts buffered writes without acks on clients no
	// fault targeted (e.g. retry exhaustion during a long outage). Also
	// excluded from LostBytes — no ack, no obligation — but reported
	// separately because nothing scheduled them.
	UnackedBuffered int
	// ExpectedLoss is true when a scheduled fault declared acked-byte
	// loss permissible (NoteLossExpected); ExpectedLossReasons says which.
	// LostBytes > 0 with ExpectedLoss false is a durability bug.
	ExpectedLoss        bool
	ExpectedLossReasons []string
}

// Verify reads every journaled range back through the filesystem currently
// serving the owning export — the shard's own remounted filesystem, or the
// adopter's after a failover — and compares it with the regenerated audit
// pattern. It must run after all scheduled recoveries completed (every
// surviving export mounted). The reads go through the simulated device
// stack, so Verify consumes simulated time; run it from a dedicated
// process after the measured phase.
func (j *Journal) Verify(p *sim.Proc, c *cluster.Cluster) CheckResult {
	res := CheckResult{
		AckedWrites:         len(j.Entries),
		AckedBytes:          j.AckedBytes(),
		ExpectedLoss:        len(j.lossExpected) > 0,
		ExpectedLossReasons: j.lossExpected,
	}
	buf := make([]byte, nfsproto.MaxData)
	want := make([]byte, nfsproto.MaxData)
	acked := make(map[BufferedWrite]bool, len(j.Entries))
	for _, e := range j.Entries {
		acked[BufferedWrite{Client: e.Client, FH: e.FH, Off: e.Off, Len: e.Len}] = true
		fs := c.FSByFSID(e.FH.FSID())
		if fs == nil {
			res.LostBytes += int64(e.Len)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: no shard serves its export", e)
			}
			continue
		}
		got := buf[:e.Len]
		n, err := fs.Read(p, vfs.Ino(e.FH.Ino()), e.Off, got)
		if err != nil || n != e.Len {
			res.LostBytes += int64(e.Len)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: read %d bytes, err=%v", e, n, err)
			}
			continue
		}
		client.FillPattern(want[:e.Len], e.Off)
		lost := 0
		for i := 0; i < e.Len; i++ {
			if got[i] != want[i] {
				lost++
			}
		}
		if lost > 0 {
			res.LostBytes += int64(lost)
			if res.FirstLoss == "" {
				res.FirstLoss = fmt.Sprintf("write %+v: %d bytes corrupted", e, lost)
			}
		}
	}
	for _, b := range j.Buffered {
		res.BufferedWrites++
		res.BufferedBytes += int64(b.Len)
		if acked[BufferedWrite{Client: b.Client, FH: b.FH, Off: b.Off, Len: b.Len}] {
			continue
		}
		if j.crashExposed[b.Client] {
			res.DroppedBuffered++
			res.DroppedBufferedBytes += int64(b.Len)
		} else {
			res.UnackedBuffered++
		}
	}
	return res
}
