package fault

import (
	"fmt"
	"reflect"
	"testing"

	"strings"

	"repro/internal/block"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// streamRig builds the standard two-client fault testbed and spawns one
// registered stream per client. It returns the cluster, the journal and
// a pointer to the completion counter.
func streamRig(t *testing.T, cfg cluster.Config, size int) (*cluster.Cluster, *Journal, *int) {
	t.Helper()
	c := cluster.New(cfg)
	j := NewJournal()
	for _, cli := range c.Clients {
		j.Attach(cli)
	}
	roots := c.Roots()
	done := new(int)
	for i, cli := range c.Clients {
		i, cli := i, cli
		root := roots[i%len(roots)]
		pr := c.Sim.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("stream-%d.dat", i)
			cres, err := cli.Create(p, root, name, 0644)
			if err != nil || cres.Status != nfsproto.OK {
				t.Errorf("client %d create: %v %v", i, err, cres)
				return
			}
			if _, err := cli.WriteFile(p, cres.File, size); err != nil {
				t.Errorf("client %d stream: %v", i, err)
				return
			}
			*done++
		})
		cli.AdoptApp(pr)
	}
	return c, j, done
}

// verify runs the durability audit on its own process after the run.
func verify(c *cluster.Cluster, j *Journal) CheckResult {
	var res CheckResult
	c.Sim.Spawn("verify", func(p *sim.Proc) { res = j.Verify(p, c) })
	c.Sim.Run(0)
	return res
}

// TestClientRebootDurability is the client-crash half of the durability
// contract: a client power-cycled mid-stream loses its application and
// its dirty write-behind — and ONLY those. Every write the server acked
// before the crash must read back intact (the server never failed), while
// the buffered-but-never-acked writes the reboot dropped are permitted
// loss, excluded from LostBytes. The block-reference accounting closes
// over the crash (queue scrub, staged buffer, unwound biods), proving the
// client kill paths strand nothing.
func TestClientRebootDurability(t *testing.T) {
	refs0 := block.TotalRefs()
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 2, Servers: 1,
		Gathering: true, Biods: 4,
		Seed: 31, ClientRetries: 40,
	}, 2<<20)

	in := NewInjector(c)
	in.Journal = j
	in.Add(ClientReboot{Client: 1, At: sim.Time(300 * sim.Millisecond), Outage: 400 * sim.Millisecond})
	in.ScheduleAll()

	c.Sim.Run(0)
	victim := c.Clients[1]
	if *done != 1 {
		t.Fatalf("done=%d, want 1 (client 1's stream survives, client 2's dies)", *done)
	}
	if victim.AppsKilled() != 1 {
		t.Fatalf("AppsKilled=%d, want 1", victim.AppsKilled())
	}
	if in.ClientReboots != 1 || victim.Boots != 2 || victim.Down {
		t.Fatalf("client reboot did not complete: reboots=%d boots=%d down=%v",
			in.ClientReboots, victim.Boots, victim.Down)
	}

	res := verify(c, j)
	if res.LostBytes != 0 {
		t.Fatalf("acked-at-server bytes lost to a CLIENT crash: %d (first: %s)",
			res.LostBytes, res.FirstLoss)
	}
	victimAcked := 0
	for _, e := range j.Entries {
		if e.Client == victim.Name() {
			victimAcked++
		}
	}
	if victimAcked == 0 {
		t.Fatal("crash fired before the victim acked anything; the scenario tests nothing")
	}
	if res.DroppedBuffered == 0 {
		t.Fatal("reboot dropped no dirty write-behind; the crash landed too late to matter")
	}
	if res.UnackedBuffered != 0 {
		t.Errorf("%d unacked buffered writes on untargeted clients", res.UnackedBuffered)
	}

	expected := accountedRefs(c)
	if got := block.TotalRefs() - refs0; got != expected {
		t.Fatalf("block refs after client crash: %d outstanding, %d accounted — %+d leaked",
			got, expected, got-expected)
	}
	t.Logf("victim acked %d writes (all survived), dropped %d buffered writes/%d bytes",
		victimAcked, res.DroppedBuffered, res.DroppedBufferedBytes)
}

// TestBiodLossDegradesWriteBehind: killing biods mid-stream must settle
// flow control exactly — the stream still completes (Close waits on no
// corpse), the pool stays shrunk, and no acked byte is lost even though
// daemons died mid-RPC.
func TestBiodLossDegradesWriteBehind(t *testing.T) {
	refs0 := block.TotalRefs()
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Biods: 4,
		Seed: 17,
	}, 1<<20)

	in := NewInjector(c)
	in.Journal = j
	in.Add(BiodLoss{Client: 0, At: sim.Time(150 * sim.Millisecond), Lose: 3})
	in.ScheduleAll()

	c.Sim.Run(0)
	if *done != 1 {
		t.Fatal("stream did not complete after biod loss (Close hung on a killed daemon?)")
	}
	if in.BiodsLost != 3 || c.Clients[0].BiodsLost != 3 {
		t.Fatalf("biods lost = %d/%d, want 3", in.BiodsLost, c.Clients[0].BiodsLost)
	}
	if res := verify(c, j); res.LostBytes != 0 {
		t.Fatalf("acked bytes lost to biod deaths: %d (first: %s)", res.LostBytes, res.FirstLoss)
	}
	expected := accountedRefs(c)
	if got := block.TotalRefs() - refs0; got != expected {
		t.Fatalf("block refs after biod loss: %d outstanding, %d accounted — %+d leaked",
			got, expected, got-expected)
	}
}

// TestShardFailoverKeepsAckedReadable: shard 2 dies mid-stream and shard
// 1 adopts its disks. The interrupted stream must finish through the
// adopter (handles keep their FSID; clients reroute mid-call), and every
// byte acked by the dead shard must read back through the migrated
// export.
func TestShardFailoverKeepsAckedReadable(t *testing.T) {
	for _, presto := range []bool{false, true} {
		t.Run(fmt.Sprintf("presto=%v", presto), func(t *testing.T) {
			refs0 := block.TotalRefs()
			c, j, done := streamRig(t, cluster.Config{
				Net: hw.FDDI(), Clients: 2, Servers: 2,
				Gathering: true, Presto: presto, Biods: 4,
				Seed: 53, ClientRetries: 80,
			}, 1<<20)

			in := NewInjector(c)
			in.Journal = j
			in.Add(ShardFailover{Node: 1, To: 0, At: sim.Time(250 * sim.Millisecond), Takeover: 200 * sim.Millisecond})
			in.ScheduleAll()

			c.Sim.Run(0)
			if *done != 2 {
				t.Fatalf("done=%d, want 2 (the orphaned stream must finish through the adopter)", *done)
			}
			if in.Failovers != 1 || in.Crashes != 1 || in.Reboots != 0 {
				t.Fatalf("failovers=%d crashes=%d reboots=%d, want 1/1/0 (failures: %v)",
					in.Failovers, in.Crashes, in.Reboots, in.Failures)
			}
			dead, adopter := c.Nodes[1], c.Nodes[0]
			if !dead.Down || len(adopter.Adopted) != 1 {
				t.Fatalf("adoption state wrong: dead.Down=%v adopted=%d", dead.Down, len(adopter.Adopted))
			}
			if fs := c.FSByFSID(dead.FSID); fs == nil || fs != adopter.Adopted[0].FS {
				t.Fatal("FSByFSID does not resolve the migrated export to the adopter")
			}
			if c.Shards.ByHandle(nfsproto.NewFH(dead.FSID, 1, 0)) != adopter {
				t.Fatal("shard map still routes the dead FSID to the dead node")
			}
			if presto && dead.RecoveredBlocks == 0 {
				t.Error("adoption replayed no NVRAM; the recovery path went unexercised")
			}

			res := verify(c, j)
			if res.LostBytes != 0 {
				t.Fatalf("acked bytes lost across failover: %d (first: %s)", res.LostBytes, res.FirstLoss)
			}

			// Handle stability, end to end: the file created on the dead
			// shard is readable by name through the adopted filesystem.
			found := false
			c.Sim.Spawn("lookup", func(p *sim.Proc) {
				fs := c.FSByFSID(dead.FSID)
				ino, err := fs.Lookup(p, fs.Root(), "stream-1.dat")
				if err != nil {
					t.Errorf("stream-1.dat missing from the adopted export: %v", err)
					return
				}
				got := make([]byte, 8192)
				if _, err := fs.Read(p, vfs.Ino(ino), 0, got); err != nil {
					t.Errorf("read through adopted export: %v", err)
					return
				}
				found = true
			})
			c.Sim.Run(0)
			if !found {
				t.Fatal("adopted-export lookup did not complete")
			}

			expected := accountedRefs(c)
			if got := block.TotalRefs() - refs0; got != expected {
				t.Fatalf("block refs after failover: %d outstanding, %d accounted — %+d leaked",
					got, expected, got-expected)
			}
			t.Logf("presto=%v: %d acked writes survived the migration, %d NVRAM blocks replayed",
				presto, res.AckedWrites, dead.RecoveredBlocks)
		})
	}
}

// TestAdopterCrashCarriesAdoptedNVRAM: the replacement NVRAM board an
// adoption builds lives on the dead peer's disk tray — when the adopter
// itself crashes (reachable through the cluster API; spec validation
// forbids scheduling it), the board's battery-backed dirty map must
// survive on the peer, not vanish with the adopter's volatile state.
// The block-reference equation closing proves no dirty-map reference
// leaked through the teardown.
func TestAdopterCrashCarriesAdoptedNVRAM(t *testing.T) {
	refs0 := block.TotalRefs()
	c := cluster.New(cluster.Config{
		Net: hw.FDDI(), Clients: 2, Servers: 2,
		Gathering: true, Presto: true, Biods: 4,
		Seed: 11, ClientRetries: 6,
	})
	roots := c.Roots()
	for i, cli := range c.Clients {
		i, cli := i, cli
		c.Sim.Spawn(fmt.Sprintf("app%d", i), func(p *sim.Proc) {
			cres, err := cli.Create(p, roots[i%2], fmt.Sprintf("stream-%d.dat", i), 0644)
			if err != nil || cres.Status != nfsproto.OK {
				return
			}
			// Both servers die for good mid-run; the streams are expected
			// to give up.
			_, _ = cli.WriteFile(p, cres.File, 2<<20)
		})
	}
	in := NewInjector(c)
	in.Add(ShardFailover{Node: 1, To: 0, At: sim.Time(250 * sim.Millisecond), Takeover: 200 * sim.Millisecond})
	in.ScheduleAll()
	// Crash the adopter at the instant an ack lands on the migrated
	// export: the acked block was just accepted into the adopted board's
	// NVRAM and its drain lingers (IdleFlush), so the dirty map is
	// provably non-empty when the host dies.
	var dirtyAtCrash int
	c.Clients[1].OnWriteAcked = func(fh nfsproto.FH, off uint32, n int) {
		adopter := c.Nodes[0]
		if adopter.Down || len(adopter.Adopted) == 0 || fh.FSID() != c.Nodes[1].FSID {
			return
		}
		dirtyAtCrash = adopter.Adopted[0].Presto.DirtyBufs()
		adopter.Crash()
	}
	c.Sim.Run(0)

	if in.Failovers != 1 {
		t.Fatalf("failovers=%d, want 1 (failures: %v)", in.Failovers, in.Failures)
	}
	if dirtyAtCrash == 0 {
		t.Fatal("adopted board clean at crash; the carry-over goes unexercised")
	}
	dead := c.Nodes[1]
	if dead.Presto == nil || dead.Presto.DirtyBufs() != dirtyAtCrash {
		t.Fatalf("adopted board (%d dirty blocks) not carried back to the dead peer's tray", dirtyAtCrash)
	}
	if len(c.Nodes[0].Adopted) != 0 {
		t.Fatal("adopter crash left adopted exports attached")
	}
	expected := accountedRefs(c)
	if got := block.TotalRefs() - refs0; got != expected {
		t.Fatalf("block refs after adopter crash: %d outstanding, %d accounted — %+d leaked",
			got, expected, got-expected)
	}
	t.Logf("carried board holds %d dirty blocks, refs all accounted", dead.Presto.DirtyBufs())
}

// TestLinkOutageRidesOnRetransmission: severing the server's attachment
// mid-stream loses datagrams, never acked bytes — the client's
// retransmission machinery carries the stream across the windows, and
// the host-survives semantics (socket buffer intact, no reboot) leave no
// server-side trace beyond the stall.
func TestLinkOutageRidesOnRetransmission(t *testing.T) {
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Biods: 4,
		Seed: 97, ClientRetries: 60,
	}, 1<<20)

	in := NewInjector(c)
	in.Journal = j
	in.Add(LinkOutage{Index: 0, At: sim.Time(150 * sim.Millisecond), Period: 600 * sim.Millisecond,
		Outage: 200 * sim.Millisecond, Count: 2})
	in.ScheduleAll()

	c.Sim.Run(0)
	if *done != 1 {
		t.Fatal("stream did not ride out the link outages")
	}
	if in.LinkOutages != 2 {
		t.Fatalf("link outages = %d, want 2", in.LinkOutages)
	}
	if c.Clients[0].Retransmissions == 0 {
		t.Error("no retransmissions; the outage windows missed the stream")
	}
	if c.Nodes[0].Boots != 1 {
		t.Error("a link outage must not reboot the host")
	}
	if c.Net.DropsLinkDown == 0 {
		t.Error("no datagrams died at the severed attachment")
	}
	if res := verify(c, j); res.LostBytes != 0 {
		t.Fatalf("acked bytes lost to a link outage: %d (first: %s)", res.LostBytes, res.FirstLoss)
	}
}

// TestKillAllBiodsDrainsQueuedJobs: losing the whole pool in the same
// instant a job was queued (Put signals a parked daemon, but the job sits
// in the queue until that daemon runs — which it never will) must settle
// the orphaned job's flow-control slot, or Close waits forever on a write
// nothing can perform.
func TestKillAllBiodsDrainsQueuedJobs(t *testing.T) {
	refs0 := block.TotalRefs()
	c := cluster.New(cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1, Biods: 2, Seed: 5,
	})
	cli := c.Clients[0]
	root := c.Roots()[0]
	closed := false
	c.Sim.Spawn("app", func(p *sim.Proc) {
		cres, err := cli.Create(p, root, "orphan.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		data := make([]byte, 8192)
		client.FillPattern(data, 0)
		if err := cli.WriteBehind(p, cres.File, 0, data); err != nil {
			t.Errorf("write-behind: %v", err)
			return
		}
		// Same instant, no yield: the queued job has no consumer left.
		if killed := cli.KillBiods(2); killed != 2 {
			t.Errorf("killed %d biods, want 2", killed)
		}
		cli.Close(p) // must return, not hang on the orphaned job
		closed = true
	})
	c.Sim.Run(0)
	if !closed {
		t.Fatal("Close hung on a job queued to a dead pool")
	}
	if cli.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain, want 0", cli.Outstanding())
	}
	if got := block.TotalRefs() - refs0; got != accountedRefs(c) {
		t.Fatalf("block refs: %d outstanding, %d accounted", got, accountedRefs(c))
	}
}

// TestLinkOutageSkipsDownHost: a link-outage cycle that fires while its
// target is still remounting from an earlier crash (the device-timed tail
// runs past the scheduled window) must be skipped whole — no counter, no
// EventsFired record — never reported as a cut that did not happen.
func TestLinkOutageSkipsDownHost(t *testing.T) {
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Biods: 4,
		Seed: 23, ClientRetries: 60,
	}, 1<<20)

	in := NewInjector(c)
	in.Journal = j
	// Crash window [100ms,200ms); the reboot's remount runs ~100ms past
	// it, so the outage at 210ms finds the host still down.
	in.Add(ServerCrash{Node: 0, At: sim.Time(100 * sim.Millisecond), Outage: 100 * sim.Millisecond, Count: 1})
	in.Add(LinkOutage{Index: 0, At: sim.Time(210 * sim.Millisecond), Outage: 50 * sim.Millisecond, Count: 1})
	in.ScheduleAll()

	c.Sim.Run(0)
	if c.Nodes[0].Rebooting || c.Nodes[0].Down {
		t.Fatal("node did not finish rebooting")
	}
	if *done != 1 {
		t.Fatal("stream did not complete")
	}
	if in.LinkOutages != 0 {
		t.Fatalf("link outages = %d, want 0 (the cycle fired into a down host); events: %v",
			in.LinkOutages, in.EventsFired)
	}
	for _, ev := range in.EventsFired {
		if strings.Contains(ev, "link-") {
			t.Fatalf("skipped outage left a record: %v", in.EventsFired)
		}
	}
	if res := verify(c, j); res.LostBytes != 0 {
		t.Fatalf("lost %d bytes: %s", res.LostBytes, res.FirstLoss)
	}
}

// TestKillSignaledIdleBiodReissuesWake: a Put signals a parked daemon
// before the daemon resumes to pop the job; killing exactly that daemon
// in the same instant consumes the wake-up with the job still queued.
// KillBiods must re-issue the signal to a surviving daemon, or the job
// (and its flow-control slot) strands and Close hangs.
func TestKillSignaledIdleBiodReissuesWake(t *testing.T) {
	refs0 := block.TotalRefs()
	c := cluster.New(cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1, Biods: 2, Seed: 3,
	})
	cli := c.Clients[0]
	root := c.Roots()[0]
	closed := false
	c.Sim.Spawn("app", func(p *sim.Proc) {
		cres, err := cli.Create(p, root, "race.dat", 0644)
		if err != nil || cres.Status != nfsproto.OK {
			t.Errorf("create: %v %v", err, cres)
			return
		}
		d1, d2 := make([]byte, 8192), make([]byte, 8192)
		client.FillPattern(d1, 0)
		client.FillPattern(d2, 8192)
		// First write: the pool's first daemon serves it and re-parks at
		// the TAIL of the wait list, leaving the last-spawned daemon at
		// the head — exactly the one a FIFO Signal picks and the one
		// KillBiods (end-first) kills.
		_ = cli.WriteBehind(p, cres.File, 0, d1)
		cli.Close(p)
		_ = cli.WriteBehind(p, cres.File, 8192, d2)
		if killed := cli.KillBiods(1); killed != 1 {
			t.Errorf("killed %d, want 1", killed)
		}
		cli.Close(p) // must return: the survivor is re-signaled
		closed = true
	})
	c.Sim.Run(0)
	if !closed {
		t.Fatal("Close hung on a job whose wake-up died with its daemon")
	}
	if cli.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", cli.Outstanding())
	}
	if got := block.TotalRefs() - refs0; got != accountedRefs(c) {
		t.Fatalf("block refs: %d outstanding, %d accounted", got, accountedRefs(c))
	}
}

// TestLinkOutageCutsAdoptedEndpoints: a server host serves one endpoint
// per export — its own and any it adopted. Severing the host's NIC must
// cut them all, or an "outage" of an adopter would leave its migrated
// export reachable and the run would report a cut that mostly did not
// happen.
func TestLinkOutageCutsAdoptedEndpoints(t *testing.T) {
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 2, Servers: 2,
		Gathering: true, Biods: 4,
		Seed: 41, ClientRetries: 100,
	}, 1<<20)

	in := NewInjector(c)
	in.Journal = j
	in.Add(ShardFailover{Node: 1, To: 0, At: sim.Time(250 * sim.Millisecond), Takeover: 200 * sim.Millisecond})
	in.Add(LinkOutage{Index: 0, At: sim.Time(1200 * sim.Millisecond), Outage: 200 * sim.Millisecond, Count: 1})
	in.ScheduleAll()

	cutBoth := false
	c.Sim.At(1300*sim.Millisecond, func() {
		adopter := c.Nodes[0]
		if len(adopter.Adopted) != 1 {
			t.Error("failover did not complete before the outage window")
			return
		}
		own := adopter.Server.Endpoint().LinkDown()
		adopted := adopter.Adopted[0].Server.Endpoint().LinkDown()
		if !own || !adopted {
			t.Errorf("mid-window link state: own=%v adopted=%v, want both down", own, adopted)
			return
		}
		cutBoth = true
	})
	c.Sim.Run(0)
	if !cutBoth {
		t.Fatal("mid-window probe did not confirm both endpoints cut")
	}
	if *done != 2 {
		t.Fatal("streams did not ride out the outage")
	}
	adopter := c.Nodes[0]
	if adopter.Server.Endpoint().LinkDown() || adopter.Adopted[0].Server.Endpoint().LinkDown() {
		t.Fatal("link-up did not restore every endpoint")
	}
	if res := verify(c, j); res.LostBytes != 0 {
		t.Fatalf("lost %d bytes: %s", res.LostBytes, res.FirstLoss)
	}
}

// TestBiodLossZeroKillNotRecorded: a loss aimed at an already-empty pool
// changed nothing and must not be counted or logged — EventsFired is the
// what-actually-ran contract.
func TestBiodLossZeroKillNotRecorded(t *testing.T) {
	c, j, done := streamRig(t, cluster.Config{
		Net: hw.FDDI(), Clients: 1, Servers: 1,
		Gathering: true, Biods: 2,
		Seed: 13,
	}, 1<<20)
	in := NewInjector(c)
	in.Journal = j
	in.Add(BiodLoss{Client: 0, At: sim.Time(150 * sim.Millisecond), Lose: 2})
	in.Add(BiodLoss{Client: 0, At: sim.Time(300 * sim.Millisecond), Lose: 2})
	in.ScheduleAll()
	c.Sim.Run(0)
	if *done != 1 {
		t.Fatal("stream did not complete")
	}
	if in.BiodsLost != 2 {
		t.Fatalf("biods lost = %d, want 2 (second loss found an empty pool)", in.BiodsLost)
	}
	lossLines := 0
	for _, ev := range in.EventsFired {
		if strings.Contains(ev, "biod-loss") {
			lossLines++
		}
	}
	if lossLines != 1 {
		t.Fatalf("%d biod-loss records, want 1: %v", lossLines, in.EventsFired)
	}
}

// TestEventsFiredDeterministic pins the determinism contract: the same
// kinds over the same seed fire the same transitions at the same times.
func TestEventsFiredDeterministic(t *testing.T) {
	run := func() []string {
		c, j, _ := streamRig(t, cluster.Config{
			Net: hw.FDDI(), Clients: 2, Servers: 2,
			Gathering: true, Biods: 4,
			Seed: 7, ClientRetries: 60,
		}, 1<<20)
		in := NewInjector(c)
		in.Journal = j
		in.Add(ServerCrash{Node: 0, At: sim.Time(200 * sim.Millisecond), Outage: 150 * sim.Millisecond, Count: 1})
		in.Add(ClientReboot{Client: 0, At: sim.Time(450 * sim.Millisecond), Outage: 100 * sim.Millisecond})
		in.Add(LinkOutage{TargetClient: true, Index: 1, At: sim.Time(600 * sim.Millisecond),
			Outage: 100 * sim.Millisecond, Count: 1})
		in.ScheduleAll()
		c.Sim.Run(0)
		if len(in.EventsFired) == 0 {
			t.Fatal("no events fired")
		}
		return in.EventsFired
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("EventsFired differ between identical runs:\n%v\n%v", a, b)
	}
	t.Logf("fired: %v", a)
}
