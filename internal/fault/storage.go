package fault

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// Storage fault kind tags (see the disk/NVRAM kinds below). Like the host
// and network kinds, the scenario schema shares this vocabulary.
const (
	KindDiskReadError  = "disk-read-error"
	KindDiskDegraded   = "disk-degraded"
	KindDiskTornWrite  = "disk-torn-write"
	KindNVRAMLyingSync = "nvram-lying-sync"
)

// Healer is implemented by fault kinds whose injection rules can outlive
// the workload — an unconsumed read-error rule, an armed torn write. The
// runner calls HealAll before the durability audit: the audit must read
// what the platters actually hold, not trip over a rule the run never
// consumed. Healing clears injection state only; data a fault already
// destroyed stays destroyed.
type Healer interface {
	Heal(in *Injector)
}

// HealAll disarms every healable kind's remaining injection rules (see
// Healer). Call it after the workload quiesces and before Journal.Verify.
func (in *Injector) HealAll() {
	for _, k := range in.kinds {
		if h, ok := k.(Healer); ok {
			h.Heal(in)
		}
	}
}

// targetDisks resolves a (node, disk) spec target onto member spindles:
// a negative disk index selects every member of the node's stripe.
func targetDisks(in *Injector, node, idx int) []*disk.Disk {
	ds := in.c.Nodes[node].Disks
	if idx < 0 {
		return ds
	}
	return ds[idx : idx+1]
}

// diskName names one spindle for the event log.
func diskName(in *Injector, node, idx int) string {
	n := in.c.Nodes[node]
	if idx < 0 {
		return fmt.Sprintf("%s/all-disks", n.Name)
	}
	return fmt.Sprintf("%s/disk%d", n.Name, idx)
}

// DiskReadError arms a media read error on one spindle (or every member
// of a stripe when Disk is negative): reads overlapping blocks
// [BlockFrom, BlockTo) fail with disk.ErrMedia, starting AfterOps
// overlapping reads after At, for Times occurrences. The platter contents
// are intact — only the transfer fails, as a grown media defect the drive
// later remaps would fail it.
type DiskReadError struct {
	Node      int
	Disk      int
	At        sim.Time
	BlockFrom int64
	BlockTo   int64
	AfterOps  int
	Times     int
}

func (f DiskReadError) Kind() string { return KindDiskReadError }

func (f DiskReadError) Schedule(in *Injector) {
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: disk read error time %v already past", f.At))
	}
	s.At(delay, func() {
		for _, d := range targetDisks(in, f.Node, f.Disk) {
			d.InjectReadError(f.BlockFrom, f.BlockTo, f.AfterOps, f.Times)
		}
		in.StorageFaults++
		in.fired("disk-read-error %s blocks [%d,%d)", diskName(in, f.Node, f.Disk), f.BlockFrom, f.BlockTo)
	})
}

// AnnotateJournal: a media read error destroys no stored byte — every
// acked write remains a hard obligation (retries and recovery absorb the
// failed transfers).
func (f DiskReadError) AnnotateJournal(in *Injector, j *Journal) {}

// Heal clears rules the workload never consumed so the audit reads clean.
func (f DiskReadError) Heal(in *Injector) {
	for _, d := range targetDisks(in, f.Node, f.Disk) {
		d.Heal()
	}
}

// DiskDegraded multiplies one spindle's service time by Factor for the
// window [At, At+Duration) — a drive in internal error recovery, or
// thermal recalibration, slow but correct.
type DiskDegraded struct {
	Node     int
	Disk     int
	At       sim.Time
	Duration sim.Duration
	Factor   float64
}

func (f DiskDegraded) Kind() string { return KindDiskDegraded }

func (f DiskDegraded) Schedule(in *Injector) {
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: disk degrade time %v already past", f.At))
	}
	// The window is registered up front (the disk gates it on simulated
	// time); only the event-log entry waits for the window to open.
	for _, d := range targetDisks(in, f.Node, f.Disk) {
		d.Degrade(f.At, f.At.Add(f.Duration), f.Factor)
	}
	s.At(delay, func() {
		in.StorageFaults++
		in.fired("disk-degraded %s x%.1f for %v", diskName(in, f.Node, f.Disk), f.Factor, f.Duration)
	})
}

// AnnotateJournal: a slow disk loses nothing. No obligations change.
func (f DiskDegraded) AnnotateJournal(in *Injector, j *Journal) {}

// DiskTornWrite arms one torn multi-block write on the target spindle(s):
// the next WriteBufs interrupted by a power event persists only a prefix
// of its blocks. Without a crash the armed tear never manifests. A torn
// write can never violate durability by itself — the interrupted transfer
// was never acknowledged as complete, and an NVRAM board that acked the
// data replays it on recovery.
type DiskTornWrite struct {
	Node int
	Disk int
	At   sim.Time
}

func (f DiskTornWrite) Kind() string { return KindDiskTornWrite }

func (f DiskTornWrite) Schedule(in *Injector) {
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: torn write arm time %v already past", f.At))
	}
	s.At(delay, func() {
		for _, d := range targetDisks(in, f.Node, f.Disk) {
			d.ArmTornWrite()
		}
		in.StorageFaults++
		in.fired("disk-torn-write armed %s", diskName(in, f.Node, f.Disk))
	})
}

// AnnotateJournal: see above — a tear exposes no acked byte to loss.
func (f DiskTornWrite) AnnotateJournal(in *Injector, j *Journal) {}

// Heal disarms a tear no crash ever consumed.
func (f DiskTornWrite) Heal(in *Injector) {
	for _, d := range targetDisks(in, f.Node, f.Disk) {
		d.Heal()
	}
}

// NVRAMLyingSync corrupts one node's NVRAM board at At: from then on the
// board keeps acknowledging stable storage but its "battery-backed" dirty
// map evaporates at the next power event instead of replaying. Every
// acked-but-undrained byte at that instant is lost — the scheduled,
// detectable durability violation the checker must report.
type NVRAMLyingSync struct {
	Node int
	At   sim.Time
}

func (f NVRAMLyingSync) Kind() string { return KindNVRAMLyingSync }

func (f NVRAMLyingSync) Schedule(in *Injector) {
	s := in.c.Sim
	delay := f.At.Sub(s.Now())
	if delay < 0 {
		panic(fmt.Sprintf("fault: lying sync time %v already past", f.At))
	}
	s.At(delay, func() {
		n := in.c.Nodes[f.Node]
		if n.Presto == nil {
			return // validation requires a board; a raced rebuild without one is a no-op
		}
		n.Presto.SetLying()
		in.StorageFaults++
		in.fired("nvram-lying-sync %s", n.Name)
	})
}

// AnnotateJournal flags the run: if bytes are lost, the loss was a
// scheduled hardware betrayal, not an engine bug. The checker still
// counts every lost byte — the point of the kind is that the audit
// catches the lie — but the verdict is classified expected.
func (f NVRAMLyingSync) AnnotateJournal(in *Injector, j *Journal) {
	j.NoteLossExpected(fmt.Sprintf("nvram-lying-sync on %s", in.c.Nodes[f.Node].Name))
}
