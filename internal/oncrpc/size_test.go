package oncrpc

import (
	"testing"

	"repro/internal/xdr"
)

// The "exactly-sized" single-buffer encode paths rely on these size
// functions being exact: an undercount silently costs an append regrowth
// per message, an overcount wastes retained capacity.

func TestCallMsgEncodedSizeExact(t *testing.T) {
	cred := (&UnixCred{MachineName: "client-9", UID: 3, GID: 4, GIDs: []uint32{1, 2, 3}}).Encode()
	for _, c := range []*CallMsg{
		{XID: 1, Prog: 100003, Vers: 2, Proc: 8, Cred: OpaqueAuth{Flavor: AuthUnix, Body: cred}, Verf: NullAuth(), Args: make([]byte, 8200)},
		{XID: 2, Cred: NullAuth(), Verf: NullAuth()},
		{XID: 3, Cred: OpaqueAuth{Flavor: AuthUnix, Body: []byte{1, 2, 3}}, Verf: NullAuth(), Args: []byte{9}},
	} {
		enc := c.Encode()
		if len(enc) != c.EncodedSize() {
			t.Errorf("CallMsg EncodedSize = %d, len(Encode()) = %d", c.EncodedSize(), len(enc))
		}
		hdr := CallHeaderSize(c.Cred, c.Verf)
		if hdr != len(enc)-len(c.Args) {
			t.Errorf("CallHeaderSize = %d, actual header = %d", hdr, len(enc)-len(c.Args))
		}
	}
}

func TestReplyMsgEncodedSizeExact(t *testing.T) {
	for _, r := range []*ReplyMsg{
		AcceptedReply(7, make([]byte, 100)),
		AcceptedReply(8, nil),
		ErrorReply(9, GarbageArgs),
		{XID: 10, Stat: MsgAccepted, AccStat: ProgMismatch, Verf: NullAuth(), MismatchLow: 2, MismatchHigh: 2},
		{XID: 11, Stat: MsgDenied},
	} {
		if len(r.Encode()) != r.EncodedSize() {
			t.Errorf("ReplyMsg (stat=%d acc=%d) EncodedSize = %d, len(Encode()) = %d",
				r.Stat, r.AccStat, r.EncodedSize(), len(r.Encode()))
		}
	}
	// The server fast-path header must match ReplyMsg's accepted-success
	// encoding byte for byte.
	e := xdr.NewEncoder(nil)
	AppendSuccessHeader(e, 7)
	full := AcceptedReply(7, nil).Encode()
	if string(e.Bytes()) != string(full) {
		t.Errorf("AppendSuccessHeader bytes differ from AcceptedReply encoding")
	}
	if len(e.Bytes()) != SuccessHeaderSize {
		t.Errorf("SuccessHeaderSize = %d, actual = %d", SuccessHeaderSize, len(e.Bytes()))
	}
}
