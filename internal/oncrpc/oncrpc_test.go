package oncrpc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCallRoundTrip(t *testing.T) {
	cred := &UnixCred{Stamp: 99, MachineName: "client1", UID: 1000, GID: 100, GIDs: []uint32{100, 20}}
	c := &CallMsg{
		XID:  0xdeadbeef,
		Prog: 100003,
		Vers: 2,
		Proc: 8,
		Cred: OpaqueAuth{Flavor: AuthUnix, Body: cred.Encode()},
		Verf: NullAuth(),
		Args: []byte{1, 2, 3, 4},
	}
	b := c.Encode()
	got, err := DecodeCall(b)
	if err != nil {
		t.Fatalf("DecodeCall: %v", err)
	}
	if got.XID != c.XID || got.Prog != c.Prog || got.Vers != c.Vers || got.Proc != c.Proc {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	if got.Cred.Flavor != AuthUnix {
		t.Fatalf("cred flavor = %v", got.Cred.Flavor)
	}
	if !bytes.Equal(got.Args, c.Args) {
		t.Fatalf("args = %v, want %v", got.Args, c.Args)
	}
	dc, err := DecodeUnixCred(got.Cred.Body)
	if err != nil {
		t.Fatalf("DecodeUnixCred: %v", err)
	}
	if dc.MachineName != "client1" || dc.UID != 1000 || len(dc.GIDs) != 2 {
		t.Fatalf("cred = %+v", dc)
	}
}

func TestReplyRoundTripSuccess(t *testing.T) {
	r := AcceptedReply(42, []byte{9, 8, 7, 6})
	b := r.Encode()
	got, err := DecodeReply(b)
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if got.XID != 42 || got.Stat != MsgAccepted || got.AccStat != Success {
		t.Fatalf("reply = %+v", got)
	}
	if !bytes.Equal(got.Results, []byte{9, 8, 7, 6}) {
		t.Fatalf("results = %v", got.Results)
	}
}

func TestReplyErrorStatuses(t *testing.T) {
	for _, st := range []AcceptStat{ProgUnavail, ProcUnavail, GarbageArgs, SystemErr} {
		r := ErrorReply(7, st)
		got, err := DecodeReply(r.Encode())
		if err != nil {
			t.Fatalf("DecodeReply(%v): %v", st, err)
		}
		if got.AccStat != st {
			t.Fatalf("AccStat = %v, want %v", got.AccStat, st)
		}
		if len(got.Results) != 0 {
			t.Fatalf("error reply carried results")
		}
	}
}

func TestReplyProgMismatch(t *testing.T) {
	r := &ReplyMsg{XID: 1, Stat: MsgAccepted, AccStat: ProgMismatch, Verf: NullAuth(), MismatchLow: 2, MismatchHigh: 3}
	got, err := DecodeReply(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if got.MismatchLow != 2 || got.MismatchHigh != 3 {
		t.Fatalf("mismatch range = %d..%d", got.MismatchLow, got.MismatchHigh)
	}
}

func TestReplyDenied(t *testing.T) {
	r := &ReplyMsg{XID: 5, Stat: MsgDenied}
	got, err := DecodeReply(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReply: %v", err)
	}
	if got.Stat != MsgDenied {
		t.Fatalf("Stat = %v", got.Stat)
	}
}

func TestDecodeCallRejectsReply(t *testing.T) {
	r := AcceptedReply(1, nil)
	if _, err := DecodeCall(r.Encode()); !errors.Is(err, ErrNotCall) {
		t.Fatalf("DecodeCall(reply) = %v, want ErrNotCall", err)
	}
}

func TestDecodeReplyRejectsCall(t *testing.T) {
	c := &CallMsg{XID: 1, Cred: NullAuth(), Verf: NullAuth()}
	if _, err := DecodeReply(c.Encode()); !errors.Is(err, ErrNotReply) {
		t.Fatalf("DecodeReply(call) = %v, want ErrNotReply", err)
	}
}

func TestDecodeCallRejectsBadRPCVersion(t *testing.T) {
	c := &CallMsg{XID: 1, Cred: NullAuth(), Verf: NullAuth()}
	b := c.Encode()
	b[11] = 3 // rpcvers field low byte
	if _, err := DecodeCall(b); !errors.Is(err, ErrRPCMismatch) {
		t.Fatalf("bad rpcvers: %v, want ErrRPCMismatch", err)
	}
}

func TestDecodeCallTruncated(t *testing.T) {
	c := &CallMsg{XID: 1, Cred: NullAuth(), Verf: NullAuth(), Args: []byte{1}}
	b := c.Encode()
	for n := 0; n < len(b)-1; n += 3 {
		if _, err := DecodeCall(b[:n]); err == nil {
			t.Fatalf("DecodeCall accepted %d-byte truncation", n)
		}
	}
}

func TestUnixCredRejectsTooManyGids(t *testing.T) {
	c := &UnixCred{GIDs: make([]uint32, 17)}
	if _, err := DecodeUnixCred(c.Encode()); err == nil {
		t.Fatal("DecodeUnixCred accepted 17 gids")
	}
}

func TestQuickCallRoundTrip(t *testing.T) {
	f := func(xid, prog, vers, proc uint32, args []byte) bool {
		if len(args) > 8192 {
			args = args[:8192]
		}
		c := &CallMsg{XID: xid, Prog: prog, Vers: vers, Proc: proc, Cred: NullAuth(), Verf: NullAuth(), Args: args}
		got, err := DecodeCall(c.Encode())
		return err == nil && got.XID == xid && got.Prog == prog &&
			got.Vers == vers && got.Proc == proc && bytes.Equal(got.Args, args)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReplyRoundTrip(t *testing.T) {
	f := func(xid uint32, results []byte) bool {
		if len(results) > 8192 {
			results = results[:8192]
		}
		r := AcceptedReply(xid, results)
		got, err := DecodeReply(r.Encode())
		return err == nil && got.XID == xid && bytes.Equal(got.Results, results)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
