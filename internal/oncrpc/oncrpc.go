// Package oncrpc implements the ONC Remote Procedure Call message protocol,
// version 2 (RFC 1057): call and reply headers, the AUTH_NULL and AUTH_UNIX
// credential flavors, and accept/reject status handling. It is transport
// neutral; NFS runs it over UDP datagrams.
package oncrpc

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// RPCVersion is the only supported RPC protocol version.
const RPCVersion = 2

// MsgType discriminates calls from replies.
type MsgType uint32

// Message types.
const (
	Call  MsgType = 0
	Reply MsgType = 1
)

// AuthFlavor identifies a credential/verifier style.
type AuthFlavor uint32

// Authentication flavors.
const (
	AuthNull AuthFlavor = 0
	AuthUnix AuthFlavor = 1
)

// ReplyStat is the top-level reply discriminant.
type ReplyStat uint32

// Reply statuses.
const (
	MsgAccepted ReplyStat = 0
	MsgDenied   ReplyStat = 1
)

// AcceptStat describes the fate of an accepted call.
type AcceptStat uint32

// Accept statuses.
const (
	Success      AcceptStat = 0
	ProgUnavail  AcceptStat = 1
	ProgMismatch AcceptStat = 2
	ProcUnavail  AcceptStat = 3
	GarbageArgs  AcceptStat = 4
	SystemErr    AcceptStat = 5
)

// Errors surfaced by the codec.
var (
	ErrBadMessage  = errors.New("oncrpc: malformed message")
	ErrRPCMismatch = errors.New("oncrpc: rpc version mismatch")
	ErrNotCall     = errors.New("oncrpc: message is not a call")
	ErrNotReply    = errors.New("oncrpc: message is not a reply")
)

// OpaqueAuth is a credential or verifier.
type OpaqueAuth struct {
	Flavor AuthFlavor
	Body   []byte
}

// NullAuth is the empty AUTH_NULL credential.
func NullAuth() OpaqueAuth { return OpaqueAuth{Flavor: AuthNull} }

// UnixCred is the AUTH_UNIX credential body.
type UnixCred struct {
	Stamp       uint32
	MachineName string
	UID, GID    uint32
	GIDs        []uint32
}

// Encode serializes the credential body.
func (c *UnixCred) Encode() []byte {
	e := xdr.NewEncoder(nil)
	e.Uint32(c.Stamp)
	e.String(c.MachineName)
	e.Uint32(c.UID)
	e.Uint32(c.GID)
	e.Uint32(uint32(len(c.GIDs)))
	for _, g := range c.GIDs {
		e.Uint32(g)
	}
	return e.Bytes()
}

// DecodeUnixCred parses an AUTH_UNIX credential body.
func DecodeUnixCred(b []byte) (*UnixCred, error) {
	d := xdr.NewDecoder(b)
	c := &UnixCred{}
	var err error
	if c.Stamp, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.MachineName, err = d.String(); err != nil {
		return nil, err
	}
	if c.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 16 {
		return nil, fmt.Errorf("%w: %d gids", ErrBadMessage, n)
	}
	for i := uint32(0); i < n; i++ {
		g, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		c.GIDs = append(c.GIDs, g)
	}
	return c, nil
}

// CallMsg is an RPC call header plus procedure arguments.
type CallMsg struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred OpaqueAuth
	Verf OpaqueAuth
	Args []byte // procedure-specific, already XDR encoded
}

// Encode serializes the call to wire format.
func (c *CallMsg) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, 40+len(c.Args)))
	e.Uint32(c.XID)
	e.Uint32(uint32(Call))
	e.Uint32(RPCVersion)
	e.Uint32(c.Prog)
	e.Uint32(c.Vers)
	e.Uint32(c.Proc)
	e.Uint32(uint32(c.Cred.Flavor))
	e.Opaque(c.Cred.Body)
	e.Uint32(uint32(c.Verf.Flavor))
	e.Opaque(c.Verf.Body)
	out := e.Bytes()
	return append(out, c.Args...)
}

// DecodeCall parses a call message. The Args field aliases the tail of b.
func DecodeCall(b []byte) (*CallMsg, error) {
	d := xdr.NewDecoder(b)
	c := &CallMsg{}
	var err error
	if c.XID, err = d.Uint32(); err != nil {
		return nil, err
	}
	mt, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if MsgType(mt) != Call {
		return nil, ErrNotCall
	}
	v, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if v != RPCVersion {
		return nil, ErrRPCMismatch
	}
	if c.Prog, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.Vers, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.Proc, err = d.Uint32(); err != nil {
		return nil, err
	}
	cf, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	c.Cred.Flavor = AuthFlavor(cf)
	if c.Cred.Body, err = d.Opaque(); err != nil {
		return nil, err
	}
	vf, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	c.Verf.Flavor = AuthFlavor(vf)
	if c.Verf.Body, err = d.Opaque(); err != nil {
		return nil, err
	}
	c.Args = b[d.Offset():]
	return c, nil
}

// ReplyMsg is an accepted or denied RPC reply.
type ReplyMsg struct {
	XID     uint32
	Stat    ReplyStat
	Verf    OpaqueAuth
	AccStat AcceptStat
	// MismatchLow/High are set for ProgMismatch replies.
	MismatchLow, MismatchHigh uint32
	Results                   []byte // procedure-specific, already XDR encoded
}

// AcceptedReply builds a successful reply carrying results.
func AcceptedReply(xid uint32, results []byte) *ReplyMsg {
	return &ReplyMsg{XID: xid, Stat: MsgAccepted, AccStat: Success, Verf: NullAuth(), Results: results}
}

// ErrorReply builds an accepted reply with a non-success status.
func ErrorReply(xid uint32, st AcceptStat) *ReplyMsg {
	return &ReplyMsg{XID: xid, Stat: MsgAccepted, AccStat: st, Verf: NullAuth()}
}

// Encode serializes the reply to wire format.
func (r *ReplyMsg) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, 32+len(r.Results)))
	e.Uint32(r.XID)
	e.Uint32(uint32(Reply))
	e.Uint32(uint32(r.Stat))
	if r.Stat == MsgDenied {
		// Only RPC_MISMATCH denial is modelled.
		e.Uint32(0) // RPC_MISMATCH
		e.Uint32(RPCVersion)
		e.Uint32(RPCVersion)
		return e.Bytes()
	}
	e.Uint32(uint32(r.Verf.Flavor))
	e.Opaque(r.Verf.Body)
	e.Uint32(uint32(r.AccStat))
	if r.AccStat == ProgMismatch {
		e.Uint32(r.MismatchLow)
		e.Uint32(r.MismatchHigh)
	}
	out := e.Bytes()
	if r.AccStat == Success {
		out = append(out, r.Results...)
	}
	return out
}

// DecodeReply parses a reply message. Results aliases the tail of b.
func DecodeReply(b []byte) (*ReplyMsg, error) {
	d := xdr.NewDecoder(b)
	r := &ReplyMsg{}
	var err error
	if r.XID, err = d.Uint32(); err != nil {
		return nil, err
	}
	mt, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if MsgType(mt) != Reply {
		return nil, ErrNotReply
	}
	st, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r.Stat = ReplyStat(st)
	if r.Stat == MsgDenied {
		return r, nil
	}
	if r.Stat != MsgAccepted {
		return nil, fmt.Errorf("%w: reply stat %d", ErrBadMessage, st)
	}
	vf, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r.Verf.Flavor = AuthFlavor(vf)
	if r.Verf.Body, err = d.Opaque(); err != nil {
		return nil, err
	}
	as, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r.AccStat = AcceptStat(as)
	switch r.AccStat {
	case ProgMismatch:
		if r.MismatchLow, err = d.Uint32(); err != nil {
			return nil, err
		}
		if r.MismatchHigh, err = d.Uint32(); err != nil {
			return nil, err
		}
	case Success:
		r.Results = b[d.Offset():]
	}
	return r, nil
}
