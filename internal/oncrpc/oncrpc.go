// Package oncrpc implements the ONC Remote Procedure Call message protocol,
// version 2 (RFC 1057): call and reply headers, the AUTH_NULL and AUTH_UNIX
// credential flavors, and accept/reject status handling. It is transport
// neutral; NFS runs it over UDP datagrams.
package oncrpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// RPCVersion is the only supported RPC protocol version.
const RPCVersion = 2

// MsgType discriminates calls from replies.
type MsgType uint32

// Message types.
const (
	Call  MsgType = 0
	Reply MsgType = 1
)

// AuthFlavor identifies a credential/verifier style.
type AuthFlavor uint32

// Authentication flavors.
const (
	AuthNull AuthFlavor = 0
	AuthUnix AuthFlavor = 1
)

// ReplyStat is the top-level reply discriminant.
type ReplyStat uint32

// Reply statuses.
const (
	MsgAccepted ReplyStat = 0
	MsgDenied   ReplyStat = 1
)

// AcceptStat describes the fate of an accepted call.
type AcceptStat uint32

// Accept statuses.
const (
	Success      AcceptStat = 0
	ProgUnavail  AcceptStat = 1
	ProgMismatch AcceptStat = 2
	ProcUnavail  AcceptStat = 3
	GarbageArgs  AcceptStat = 4
	SystemErr    AcceptStat = 5
)

// Errors surfaced by the codec.
var (
	ErrBadMessage  = errors.New("oncrpc: malformed message")
	ErrRPCMismatch = errors.New("oncrpc: rpc version mismatch")
	ErrNotCall     = errors.New("oncrpc: message is not a call")
	ErrNotReply    = errors.New("oncrpc: message is not a reply")
)

// OpaqueAuth is a credential or verifier.
type OpaqueAuth struct {
	Flavor AuthFlavor
	Body   []byte
}

// NullAuth is the empty AUTH_NULL credential.
func NullAuth() OpaqueAuth { return OpaqueAuth{Flavor: AuthNull} }

// UnixCred is the AUTH_UNIX credential body.
type UnixCred struct {
	Stamp       uint32
	MachineName string
	UID, GID    uint32
	GIDs        []uint32
}

// Encode serializes the credential body.
func (c *UnixCred) Encode() []byte {
	e := xdr.NewEncoder(nil)
	e.Uint32(c.Stamp)
	e.String(c.MachineName)
	e.Uint32(c.UID)
	e.Uint32(c.GID)
	e.Uint32(uint32(len(c.GIDs)))
	for _, g := range c.GIDs {
		e.Uint32(g)
	}
	return e.Bytes()
}

// DecodeUnixCred parses an AUTH_UNIX credential body.
func DecodeUnixCred(b []byte) (*UnixCred, error) {
	d := xdr.NewDecoder(b)
	c := &UnixCred{}
	var err error
	if c.Stamp, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.MachineName, err = d.String(); err != nil {
		return nil, err
	}
	if c.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if c.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 16 {
		return nil, fmt.Errorf("%w: %d gids", ErrBadMessage, n)
	}
	for i := uint32(0); i < n; i++ {
		g, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		c.GIDs = append(c.GIDs, g)
	}
	return c, nil
}

// CallMsg is an RPC call header plus procedure arguments.
type CallMsg struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred OpaqueAuth
	Verf OpaqueAuth
	Args []byte // procedure-specific, already XDR encoded
}

// EncodedSize reports the exact wire size of the call: six fixed header
// words, two auth blocks (flavor word + opaque body each), then the args.
func (c *CallMsg) EncodedSize() int {
	return 32 + xdr.OpaqueSize(len(c.Cred.Body)) + xdr.OpaqueSize(len(c.Verf.Body)) + len(c.Args)
}

// Encode serializes the call to wire format in a single exactly-sized
// buffer (the args are spliced in, not re-encoded).
func (c *CallMsg) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, c.EncodedSize()))
	e.Uint32(c.XID)
	e.Uint32(uint32(Call))
	e.Uint32(RPCVersion)
	e.Uint32(c.Prog)
	e.Uint32(c.Vers)
	e.Uint32(c.Proc)
	e.Uint32(uint32(c.Cred.Flavor))
	e.Opaque(c.Cred.Body)
	e.Uint32(uint32(c.Verf.Flavor))
	e.Opaque(c.Verf.Body)
	e.Raw(c.Args)
	return e.Bytes()
}

// CallHeaderSize reports the exact encoded size of the call header
// (everything before the args) for the given credential and verifier.
func CallHeaderSize(cred, verf OpaqueAuth) int {
	return 32 + xdr.OpaqueSize(len(cred.Body)) + xdr.OpaqueSize(len(verf.Body))
}

// AppendCallHeader appends a call header to e; the caller then encodes the
// procedure arguments directly after it, so header and args share one
// buffer (the client-side twin of AppendSuccessHeader).
func AppendCallHeader(e *xdr.Encoder, xid, prog, vers, proc uint32, cred, verf OpaqueAuth) {
	e.Uint32(xid)
	e.Uint32(uint32(Call))
	e.Uint32(RPCVersion)
	e.Uint32(prog)
	e.Uint32(vers)
	e.Uint32(proc)
	e.Uint32(uint32(cred.Flavor))
	e.Opaque(cred.Body)
	e.Uint32(uint32(verf.Flavor))
	e.Opaque(verf.Body)
}

// DecodeCall parses a call message. The Args field aliases the tail of b.
func DecodeCall(b []byte) (*CallMsg, error) {
	c := &CallMsg{}
	if err := DecodeCallInto(b, c); err != nil {
		return nil, err
	}
	return c, nil
}

// DecodeCallInto parses a call message into a caller-owned struct (which
// may be pooled). The Args, Cred.Body and Verf.Body fields alias b.
func DecodeCallInto(b []byte, c *CallMsg) error {
	d := xdr.NewDecoder(b)
	var err error
	if c.XID, err = d.Uint32(); err != nil {
		return err
	}
	mt, err := d.Uint32()
	if err != nil {
		return err
	}
	if MsgType(mt) != Call {
		return ErrNotCall
	}
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	if v != RPCVersion {
		return ErrRPCMismatch
	}
	if c.Prog, err = d.Uint32(); err != nil {
		return err
	}
	if c.Vers, err = d.Uint32(); err != nil {
		return err
	}
	if c.Proc, err = d.Uint32(); err != nil {
		return err
	}
	cf, err := d.Uint32()
	if err != nil {
		return err
	}
	c.Cred.Flavor = AuthFlavor(cf)
	if c.Cred.Body, err = d.OpaqueRef(); err != nil {
		return err
	}
	vf, err := d.Uint32()
	if err != nil {
		return err
	}
	c.Verf.Flavor = AuthFlavor(vf)
	if c.Verf.Body, err = d.OpaqueRef(); err != nil {
		return err
	}
	c.Args = b[d.Offset():]
	return nil
}

// ReplyMsg is an accepted or denied RPC reply.
type ReplyMsg struct {
	XID     uint32
	Stat    ReplyStat
	Verf    OpaqueAuth
	AccStat AcceptStat
	// MismatchLow/High are set for ProgMismatch replies.
	MismatchLow, MismatchHigh uint32
	Results                   []byte // procedure-specific, already XDR encoded
}

// AcceptedReply builds a successful reply carrying results.
func AcceptedReply(xid uint32, results []byte) *ReplyMsg {
	return &ReplyMsg{XID: xid, Stat: MsgAccepted, AccStat: Success, Verf: NullAuth(), Results: results}
}

// ErrorReply builds an accepted reply with a non-success status.
func ErrorReply(xid uint32, st AcceptStat) *ReplyMsg {
	return &ReplyMsg{XID: xid, Stat: MsgAccepted, AccStat: st, Verf: NullAuth()}
}

// EncodedSize reports the exact wire size of the reply.
func (r *ReplyMsg) EncodedSize() int {
	if r.Stat == MsgDenied {
		return 24
	}
	n := 20 + xdr.OpaqueSize(len(r.Verf.Body))
	switch r.AccStat {
	case ProgMismatch:
		n += 8
	case Success:
		n += len(r.Results)
	}
	return n
}

// Encode serializes the reply to wire format in a single exactly-sized
// buffer.
func (r *ReplyMsg) Encode() []byte {
	e := xdr.NewEncoder(make([]byte, 0, r.EncodedSize()))
	e.Uint32(r.XID)
	e.Uint32(uint32(Reply))
	e.Uint32(uint32(r.Stat))
	if r.Stat == MsgDenied {
		// Only RPC_MISMATCH denial is modelled.
		e.Uint32(0) // RPC_MISMATCH
		e.Uint32(RPCVersion)
		e.Uint32(RPCVersion)
		return e.Bytes()
	}
	e.Uint32(uint32(r.Verf.Flavor))
	e.Opaque(r.Verf.Body)
	e.Uint32(uint32(r.AccStat))
	if r.AccStat == ProgMismatch {
		e.Uint32(r.MismatchLow)
		e.Uint32(r.MismatchHigh)
	}
	if r.AccStat == Success {
		e.Raw(r.Results)
	}
	return e.Bytes()
}

// SuccessHeaderSize is the encoded size of the header AppendSuccessHeader
// writes: an MSG_ACCEPTED/SUCCESS reply with an AUTH_NULL verifier.
const SuccessHeaderSize = 24

// BootVerfSize is the extra wire bytes a boot-instance verifier adds to a
// success header (an 8-byte opaque body).
const BootVerfSize = 8

// AppendSuccessHeader appends the accepted-success reply header for xid to
// e; the caller then encodes the procedure results directly after it. This
// is the server fast path: header and results share one exactly-sized
// buffer instead of being encoded separately and concatenated.
func AppendSuccessHeader(e *xdr.Encoder, xid uint32) {
	e.Uint32(xid)
	e.Uint32(uint32(Reply))
	e.Uint32(uint32(MsgAccepted))
	e.Uint32(uint32(AuthNull))
	e.Uint32(0) // empty verifier body
	e.Uint32(uint32(Success))
}

// AppendSuccessHeaderBootVerf appends an accepted-success reply header
// whose AUTH_NULL verifier carries an 8-byte boot-instance id. Clients
// compare the id across replies to detect that a server rebooted (and thus
// that its duplicate-request cache is gone). The header is
// SuccessHeaderSize+BootVerfSize bytes.
func AppendSuccessHeaderBootVerf(e *xdr.Encoder, xid uint32, bootID uint64) {
	e.Uint32(xid)
	e.Uint32(uint32(Reply))
	e.Uint32(uint32(MsgAccepted))
	e.Uint32(uint32(AuthNull))
	e.Uint32(8) // verifier body length
	e.Uint32(uint32(bootID >> 32))
	e.Uint32(uint32(bootID))
	e.Uint32(uint32(Success))
}

// BootVerf extracts the boot-instance id from a reply verifier, if one is
// present (8-byte body).
func BootVerf(verf OpaqueAuth) (uint64, bool) {
	if len(verf.Body) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(verf.Body), true
}

// PeekXID reads the transaction id of any RPC message without a full
// decode; receivers use it to route a reply before deciding whether to
// spend a decode on it.
func PeekXID(b []byte) (uint32, bool) {
	if len(b) < 4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(b), true
}

// DecodeReply parses a reply message. Results aliases the tail of b.
func DecodeReply(b []byte) (*ReplyMsg, error) {
	r := &ReplyMsg{}
	if err := DecodeReplyInto(b, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeReplyInto parses a reply message into a caller-owned struct (which
// may be pooled). Results and Verf.Body alias b.
func DecodeReplyInto(b []byte, r *ReplyMsg) error {
	d := xdr.NewDecoder(b)
	*r = ReplyMsg{}
	var err error
	if r.XID, err = d.Uint32(); err != nil {
		return err
	}
	mt, err := d.Uint32()
	if err != nil {
		return err
	}
	if MsgType(mt) != Reply {
		return ErrNotReply
	}
	st, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Stat = ReplyStat(st)
	if r.Stat == MsgDenied {
		return nil
	}
	if r.Stat != MsgAccepted {
		return fmt.Errorf("%w: reply stat %d", ErrBadMessage, st)
	}
	vf, err := d.Uint32()
	if err != nil {
		return err
	}
	r.Verf.Flavor = AuthFlavor(vf)
	if r.Verf.Body, err = d.OpaqueRef(); err != nil {
		return err
	}
	as, err := d.Uint32()
	if err != nil {
		return err
	}
	r.AccStat = AcceptStat(as)
	switch r.AccStat {
	case ProgMismatch:
		if r.MismatchLow, err = d.Uint32(); err != nil {
			return err
		}
		if r.MismatchHigh, err = d.Uint32(); err != nil {
			return err
		}
	case Success:
		r.Results = b[d.Offset():]
	}
	return nil
}
