// Package client models a typical workstation NFS client (§4.1): a pool
// of biod daemons performing write-behind, the hand-off-or-do-it-yourself
// flow control that blocks the application when every biod is busy, UDP
// retransmission with exponential backoff starting at 1.1 s, and
// sync-on-close semantics.
package client

import (
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xdr"
)

// Errors returned by the RPC layer.
var (
	ErrTimeout = errors.New("client: rpc timed out")
	ErrDenied  = errors.New("client: rpc denied")
)

// Client is one NFS client host.
type Client struct {
	sim    *sim.Sim
	net    *netsim.Network
	ep     *netsim.Endpoint
	name   string
	server string
	params hw.ClientParams

	// routes maps an export's FSID to the server endpoint serving it; with
	// sharded multi-server clusters every call is routed by its file
	// handle. Handles with no route go to the default server.
	routes map[uint32]string

	xidSeq uint32
	// lastAttempts is the transmission count of the most recent completed
	// call: >1 means the reply answers a retransmission, which
	// non-idempotent ops (CREATE) must account for.
	lastAttempts int
	pending      map[uint32]*pendingCall
	freePC       []*pendingCall // pendingCall pool
	credRaw      []byte         // AUTH_UNIX credential, constant per client
	// pool backs write payload staging: WriteFile and the LADDIS burst
	// workers stage each 8K request in a refcounted buffer that then rides
	// the wire by reference (every in-flight datagram holds its own ref),
	// so the staging buffer is reusable the moment the RPC completes even
	// though retransmitted copies may still be queued somewhere.
	pool *block.Pool
	// bootIDs remembers the last boot-instance verifier seen per server;
	// a change means the server rebooted and its dup cache is gone.
	bootIDs map[string]uint64

	jobs      *sim.Queue[*writeJob]
	idleBiods int
	numBiods  int

	outstanding int
	closeCond   *sim.Cond

	// Volatile host state the fault layer manipulates: the daemon
	// processes (receiver + biods) a crash kills, the application
	// processes registered via AdoptApp that die with the host, and the
	// per-biod in-flight job table KillBiods uses to settle flow-control
	// accounting for daemons killed mid-RPC.
	daemons    []*sim.Proc
	apps       []*sim.Proc
	activeJobs map[*sim.Proc]*writeJob
	appsKilled int

	// Per-client result decode scratch (see the discipline note at call).
	scratchAttrStat   nfsproto.AttrStat
	scratchDirOpRes   nfsproto.DirOpRes
	scratchReadRes    nfsproto.ReadRes
	scratchStatusRes  nfsproto.StatusRes
	scratchReaddirRes nfsproto.ReaddirRes

	// Counters.
	Retransmissions uint64
	Calls           uint64
	// Timeouts counts calls that exhausted every retransmission attempt
	// and returned ErrTimeout — the storm signature of sustained overload.
	Timeouts uint64
	WriteCounter    stats.Counter
	WriteLatency    stats.Latency
	// RebootsSeen counts server boot-verifier changes observed in replies.
	RebootsSeen uint64
	// Down is true between Crash and Reboot; Boots counts completed boot
	// cycles (1 after New). BiodsLost counts daemons KillBiods removed.
	Down      bool
	Boots     int
	BiodsLost int
	// MaxRTO caps backoff growth.
	MaxRTO sim.Duration
	// MaxRetries bounds send attempts per call (default 8). Crash tests
	// raise it so clients ride out a server outage and reconnect.
	MaxRetries int
	// OnWriteEvent, when non-nil, observes write request lifecycles for
	// tracing: event is "send" or "reply".
	OnWriteEvent func(event string, off uint32, n int)
	// OnWriteAcked, when non-nil, observes every successfully acked WRITE;
	// the crash-durability journal records these.
	OnWriteAcked func(fh nfsproto.FH, off uint32, n int)
	// OnWriteBuffered, when non-nil, observes every write accepted into
	// write-behind: the application's write() returned before any server
	// ack existed, so a client crash may legitimately lose it. The
	// durability journal uses this to separate real loss (acked bytes
	// gone) from permitted loss (buffered bytes never acked).
	OnWriteBuffered func(fh nfsproto.FH, off uint32, n int)
	// OnRPC, when non-nil, observes every completed RPC: the issue time,
	// how many transmissions it took (attempts > 1 means retransmitted),
	// and whether a reply arrived. The observability plane turns these
	// into client-side lifecycle spans. Calls unwound by a host crash are
	// never reported — a dead workstation writes no trace.
	OnRPC func(proc nfsproto.Proc, xid uint32, issued sim.Time, attempts int, ok bool)
}

// pendingCall embeds the reply decode target, so the steady-state RPC path
// allocates no ReplyMsg: the record cycles through the client's pool.
type pendingCall struct {
	cond     sim.Cond
	reply    *oncrpc.ReplyMsg // nil until a reply arrives; points at replyBuf
	replyBuf oncrpc.ReplyMsg
}

// getPC takes a pending-call record from the pool.
func (c *Client) getPC() *pendingCall {
	if n := len(c.freePC); n > 0 {
		pc := c.freePC[n-1]
		c.freePC = c.freePC[:n-1]
		pc.reply = nil
		pc.cond.Init(c.sim)
		return pc
	}
	pc := &pendingCall{}
	pc.cond.Init(c.sim)
	return pc
}

// argsEncoder is the argument half of an NFS procedure.
type argsEncoder interface {
	EncodedSize() int
	EncodeTo(e *xdr.Encoder)
}

// GetWriteBuf takes a staging buffer from the client's pool; the caller
// fills it and hands it to WriteSyncBuf/writeBehind, then releases its
// reference when the write has completed.
func (c *Client) GetWriteBuf() *block.Buf { return c.pool.Get() }

type writeJob struct {
	fh  nfsproto.FH
	off uint32
	// Exactly one of data (copying path) and buf (refcounted zero-copy
	// path, n bytes) is set.
	data []byte
	buf  *block.Buf
	n    int
	c    *Client
}

// New attaches a client named name to the network, pointed at server, with
// the given number of biods (0 = fully synchronous writes). acct is the
// buffer ledger the write-staging pool charges (nil = the process-global
// one).
func New(s *sim.Sim, n *netsim.Network, name, server string, params hw.ClientParams, numBiods int, acct *block.Accounting) *Client {
	c := &Client{
		sim:        s,
		net:        n,
		ep:         n.Attach(name, 0, 0),
		name:       name,
		server:     server,
		params:     params,
		pending:    make(map[uint32]*pendingCall),
		jobs:       sim.NewQueue[*writeJob](s, 0),
		numBiods:   numBiods,
		closeCond:  sim.NewCond(s),
		MaxRTO:     params.RetransMax,
		MaxRetries: 8,
		credRaw:    (&oncrpc.UnixCred{MachineName: name, UID: 0, GID: 0}).Encode(),
		pool:       block.Or(acct).NewPool(),
	}
	c.startDaemons()
	return c
}

// startDaemons spawns one boot's volatile processes: the reply receiver
// and the biod pool. New and Reboot both go through here.
func (c *Client) startDaemons() {
	c.daemons = c.daemons[:0]
	c.daemons = append(c.daemons, c.sim.Spawn(c.name+"-recv", c.receiver))
	for i := 0; i < c.numBiods; i++ {
		c.daemons = append(c.daemons, c.sim.Spawn(fmt.Sprintf("%s-biod%d", c.name, i), c.biod))
	}
	c.Boots++
	c.Down = false
}

// Name returns the client's endpoint name.
func (c *Client) Name() string { return c.name }

// Sim returns the owning simulator.
func (c *Client) Sim() *sim.Sim { return c.sim }

// AddRoute directs calls on file handles with the given FSID to the named
// server endpoint. Cluster rigs install one route per export shard.
func (c *Client) AddRoute(fsid uint32, server string) {
	if c.routes == nil {
		c.routes = make(map[uint32]string)
	}
	c.routes[fsid] = server
}

// dest resolves the server endpoint for a file handle.
func (c *Client) dest(fh nfsproto.FH) string {
	if c.routes != nil {
		if s, ok := c.routes[fh.FSID()]; ok {
			return s
		}
	}
	return c.server
}

// receiver demultiplexes replies to waiting callers by XID. Replies are
// decoded into the pending call's embedded record — the steady-state path
// allocates nothing — and late duplicates are dropped without a decode.
func (c *Client) receiver(p *sim.Proc) {
	for {
		dg := c.ep.Inbox.Get(p)
		xid, ok := oncrpc.PeekXID(dg.Payload)
		if !ok {
			dg.Release()
			continue
		}
		pc, active := c.pending[xid]
		if !active || pc.reply != nil {
			dg.Release() // late duplicate reply; drop
			continue
		}
		if err := oncrpc.DecodeReplyInto(dg.Payload, &pc.replyBuf); err != nil {
			dg.Release()
			continue
		}
		// A changed boot-instance verifier is the client's only evidence
		// that the server restarted (and lost its duplicate cache).
		if id, has := oncrpc.BootVerf(pc.replyBuf.Verf); has {
			if last, seen := c.bootIDs[dg.From]; seen && last != id {
				c.RebootsSeen++
			}
			if c.bootIDs == nil {
				c.bootIDs = make(map[string]uint64)
			}
			c.bootIDs[dg.From] = id
		}
		dg.Release()
		pc.reply = &pc.replyBuf
		pc.cond.Signal()
	}
}

// call performs one RPC to the server endpoint to, encoding the RPC header
// and the procedure arguments into a single exactly-sized wire buffer (no
// intermediate args slice), then running the retransmission loop.
//
// Scratch discipline: the returned ReplyMsg points into the pending-call
// record, and the procedure methods decode results into per-client scratch
// structs. Both stay valid only until the calling process next yields
// (sleeps, sends, or performs another RPC): callers must consume a result
// before their next blocking call, exactly like the server's result
// scratch in dispatch.go.
// call routes by fh: the destination is re-resolved from the routing
// table on every transmission attempt, so a handle whose shard migrated
// mid-call (failover) reaches the adopting server on the next retry
// instead of timing out against the dead endpoint.
func (c *Client) call(p *sim.Proc, proc nfsproto.Proc, args argsEncoder, fh nfsproto.FH) (*oncrpc.ReplyMsg, error) {
	cred := oncrpc.OpaqueAuth{Flavor: oncrpc.AuthUnix, Body: c.credRaw}
	verf := oncrpc.NullAuth()
	c.xidSeq++
	xid := c.xidSeq
	e := xdr.NewEncoder(make([]byte, 0, oncrpc.CallHeaderSize(cred, verf)+args.EncodedSize()))
	oncrpc.AppendCallHeader(e, xid, nfsproto.Program, nfsproto.Version, uint32(proc), cred, verf)
	args.EncodeTo(e)
	return c.finishCall(p, proc, xid, fh, true, "", e.Bytes(), nil, 0)
}

// callBody performs one WRITE RPC whose payload rides as a refcounted
// datagram body: only the RPC header and the WRITE argument head are
// encoded into the wire buffer; the 8K data segment is never memmoved.
func (c *Client) callBody(p *sim.Proc, fh nfsproto.FH, off uint32, body *block.Buf, n int) (*oncrpc.ReplyMsg, error) {
	cred := oncrpc.OpaqueAuth{Flavor: oncrpc.AuthUnix, Body: c.credRaw}
	verf := oncrpc.NullAuth()
	c.xidSeq++
	xid := c.xidSeq
	e := xdr.NewEncoder(make([]byte, 0, oncrpc.CallHeaderSize(cred, verf)+nfsproto.WriteArgsHeadSize))
	oncrpc.AppendCallHeader(e, xid, nfsproto.Program, nfsproto.Version, uint32(nfsproto.ProcWrite), cred, verf)
	nfsproto.AppendWriteArgsHead(e, fh, off, n)
	return c.finishCall(p, nfsproto.ProcWrite, xid, fh, true, "", e.Bytes(), body, n)
}

// Call performs one RPC to the default server with pre-encoded args and
// with retransmission and backoff. It blocks p until a reply arrives or
// retransmission gives up (MaxRetries attempts).
func (c *Client) Call(p *sim.Proc, proc nfsproto.Proc, args []byte) (*oncrpc.ReplyMsg, error) {
	return c.CallTo(p, c.server, proc, args)
}

// CallTo is Call aimed at an explicit server endpoint.
func (c *Client) CallTo(p *sim.Proc, to string, proc nfsproto.Proc, args []byte) (*oncrpc.ReplyMsg, error) {
	c.xidSeq++
	xid := c.xidSeq
	call := &oncrpc.CallMsg{
		XID:  xid,
		Prog: nfsproto.Program,
		Vers: nfsproto.Version,
		Proc: uint32(proc),
		Cred: oncrpc.OpaqueAuth{Flavor: oncrpc.AuthUnix, Body: c.credRaw},
		Verf: oncrpc.NullAuth(),
		Args: args,
	}
	return c.finishCall(p, proc, xid, nfsproto.FH{}, false, to, call.Encode(), nil, 0)
}

// finishCall registers the pending call and runs the retransmission loop.
// raw must not be mutated afterwards: in-flight and queued (possibly
// retransmitted) datagrams alias it. A non-nil body is the split WRITE
// payload; each transmission's datagram takes its own reference, the
// caller keeps its own. With routed set, the destination is re-resolved
// from fh's route before every attempt (static routes make this a no-op;
// a mid-call failover redirects the next retry); otherwise to is used
// verbatim.
func (c *Client) finishCall(p *sim.Proc, proc nfsproto.Proc, xid uint32, fh nfsproto.FH, routed bool, to string, raw []byte, body *block.Buf, bodyLen int) (*oncrpc.ReplyMsg, error) {
	pc := c.getPC()
	c.pending[xid] = pc
	defer func() {
		delete(c.pending, xid)
		c.freePC = append(c.freePC, pc)
	}()

	issued := p.Now()
	rto := c.params.RetransTimeout
	c.Calls++
	tries := c.MaxRetries
	if tries <= 0 {
		tries = 8
	}
	for attempt := 0; attempt < tries; attempt++ {
		if attempt > 0 {
			c.Retransmissions++
		}
		if routed {
			to = c.dest(fh)
		}
		if body != nil {
			c.net.SendBuf(p, c.name, to, raw, body, bodyLen)
		} else {
			c.net.Send(p, c.name, to, raw)
		}
		if pc.cond.WaitTimeout(p, rto) || pc.reply != nil {
			reply := pc.reply
			c.lastAttempts = attempt + 1
			if c.OnRPC != nil {
				c.OnRPC(proc, xid, issued, attempt+1, reply.Stat == oncrpc.MsgAccepted && reply.AccStat == oncrpc.Success)
			}
			if reply.Stat != oncrpc.MsgAccepted {
				return reply, ErrDenied
			}
			if reply.AccStat != oncrpc.Success {
				return reply, fmt.Errorf("client: rpc accept status %d", reply.AccStat)
			}
			return reply, nil
		}
		rto *= 2
		if rto > c.MaxRTO {
			rto = c.MaxRTO
		}
	}
	c.lastAttempts = tries
	c.Timeouts++
	if c.OnRPC != nil {
		c.OnRPC(proc, xid, issued, tries, false)
	}
	return nil, ErrTimeout
}

// PendingRPCs reports calls awaiting replies right now — the
// outstanding-RPC probe of the observability plane.
func (c *Client) PendingRPCs() int { return len(c.pending) }

// decodeDone clears a pooled reply record once its results are decoded,
// so records waiting in the pool do not pin the wire payloads they last
// aliased. Call as decodeDone(reply, Decode...(reply.Results, ...)):
// arguments evaluate left to right, so the decode runs first.
func decodeDone(reply *oncrpc.ReplyMsg, err error) error {
	*reply = oncrpc.ReplyMsg{}
	return err
}

// Lookup resolves name in dir.
func (c *Client) Lookup(p *sim.Proc, dir nfsproto.FH, name string) (*nfsproto.DirOpRes, error) {
	args := &nfsproto.DirOpArgs{Dir: dir, Name: name}
	reply, err := c.call(p, nfsproto.ProcLookup, args, dir)
	if err != nil {
		return nil, err
	}
	res := &c.scratchDirOpRes
	if err := decodeDone(reply, nfsproto.DecodeDirOpResInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// Create makes a file in dir.
func (c *Client) Create(p *sim.Proc, dir nfsproto.FH, name string, mode uint32) (*nfsproto.DirOpRes, error) {
	args := &nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: dir, Name: name},
		Attr:  nfsproto.DefaultSAttr(mode),
	}
	reply, err := c.call(p, nfsproto.ProcCreate, args, dir)
	if err != nil {
		return nil, err
	}
	res := &c.scratchDirOpRes
	if err := decodeDone(reply, nfsproto.DecodeDirOpResInto(reply.Results, res)); err != nil {
		return nil, err
	}
	if res.Status == nfsproto.ErrExist && c.lastAttempts > 1 {
		// CREATE is not idempotent and the server keeps no reply cache: a
		// retransmitted CREATE whose first execution's reply was lost (a
		// crash window, a severed link, a dropped datagram) finds the file
		// it just made already there. Recover the way real NFS clients do:
		// treat EXIST on a retried CREATE as success and LOOKUP the handle.
		return c.Lookup(p, dir, name)
	}
	return res, nil
}

// Mkdir makes a directory in dir.
func (c *Client) Mkdir(p *sim.Proc, dir nfsproto.FH, name string, mode uint32) (*nfsproto.DirOpRes, error) {
	args := &nfsproto.CreateArgs{
		Where: nfsproto.DirOpArgs{Dir: dir, Name: name},
		Attr:  nfsproto.DefaultSAttr(mode),
	}
	reply, err := c.call(p, nfsproto.ProcMkdir, args, dir)
	if err != nil {
		return nil, err
	}
	res := &c.scratchDirOpRes
	if err := decodeDone(reply, nfsproto.DecodeDirOpResInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// Getattr fetches attributes.
func (c *Client) Getattr(p *sim.Proc, fh nfsproto.FH) (*nfsproto.AttrStat, error) {
	args := &nfsproto.FHArgs{File: fh}
	reply, err := c.call(p, nfsproto.ProcGetattr, args, fh)
	if err != nil {
		return nil, err
	}
	res := &c.scratchAttrStat
	if err := decodeDone(reply, nfsproto.DecodeAttrStatInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// Setattr applies attributes.
func (c *Client) Setattr(p *sim.Proc, fh nfsproto.FH, sa nfsproto.SAttr) (*nfsproto.AttrStat, error) {
	args := &nfsproto.SetattrArgs{File: fh, Attr: sa}
	reply, err := c.call(p, nfsproto.ProcSetattr, args, fh)
	if err != nil {
		return nil, err
	}
	res := &c.scratchAttrStat
	if err := decodeDone(reply, nfsproto.DecodeAttrStatInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// Read fetches count bytes at off.
func (c *Client) Read(p *sim.Proc, fh nfsproto.FH, off, count uint32) (*nfsproto.ReadRes, error) {
	args := &nfsproto.ReadArgs{File: fh, Offset: off, Count: count}
	reply, err := c.call(p, nfsproto.ProcRead, args, fh)
	if err != nil {
		return nil, err
	}
	res := &c.scratchReadRes
	if err := decodeDone(reply, nfsproto.DecodeReadResInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// Remove unlinks name in dir.
func (c *Client) Remove(p *sim.Proc, dir nfsproto.FH, name string) (nfsproto.Status, error) {
	args := &nfsproto.DirOpArgs{Dir: dir, Name: name}
	reply, err := c.call(p, nfsproto.ProcRemove, args, dir)
	if err != nil {
		return nfsproto.ErrIO, err
	}
	res := &c.scratchStatusRes
	if err := decodeDone(reply, nfsproto.DecodeStatusResInto(reply.Results, res)); err != nil {
		return nfsproto.ErrIO, err
	}
	return res.Status, nil
}

// Readdir lists a directory page.
func (c *Client) Readdir(p *sim.Proc, dir nfsproto.FH, cookie, count uint32) (*nfsproto.ReaddirRes, error) {
	args := &nfsproto.ReaddirArgs{Dir: dir, Cookie: cookie, Count: count}
	reply, err := c.call(p, nfsproto.ProcReaddir, args, dir)
	if err != nil {
		return nil, err
	}
	res := &c.scratchReaddirRes
	if err := decodeDone(reply, nfsproto.DecodeReaddirResInto(reply.Results, res)); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteSync issues one WRITE RPC and waits for its reply, recording write
// latency and throughput counters. The payload is copied into the wire
// buffer (data may be reused by the caller immediately); the zero-copy
// twin is WriteSyncBuf.
func (c *Client) WriteSync(p *sim.Proc, fh nfsproto.FH, off uint32, data []byte) error {
	args := &nfsproto.WriteArgs{File: fh, Offset: off, TotalCount: uint32(len(data)), Data: data}
	start := p.Now()
	if c.OnWriteEvent != nil {
		c.OnWriteEvent("send", off, len(data))
	}
	reply, err := c.call(p, nfsproto.ProcWrite, args, fh)
	return c.writeDone(p, fh, off, len(data), start, reply, err)
}

// WriteSyncBuf issues one WRITE RPC whose n-byte payload travels as a
// refcounted datagram body — never memmoved between the staging buffer
// and the server's buffer cache. The caller keeps its reference to b (and
// may release it as soon as this returns); each transmitted datagram
// holds its own. Payload lengths the XDR opaque would pad fall back to
// the copying path.
func (c *Client) WriteSyncBuf(p *sim.Proc, fh nfsproto.FH, off uint32, b *block.Buf, n int) error {
	if n%4 != 0 {
		return c.WriteSync(p, fh, off, b.Data()[:n])
	}
	start := p.Now()
	if c.OnWriteEvent != nil {
		c.OnWriteEvent("send", off, n)
	}
	reply, err := c.callBody(p, fh, off, b, n)
	return c.writeDone(p, fh, off, n, start, reply, err)
}

// WriteSyncBufRelease is WriteSyncBuf taking ownership of the caller's
// reference: the buffer is released when the RPC completes, via defer, so
// even a kill that unwinds the calling process mid-RPC cannot strand it.
func (c *Client) WriteSyncBufRelease(p *sim.Proc, fh nfsproto.FH, off uint32, b *block.Buf, n int) error {
	defer b.Release()
	return c.WriteSyncBuf(p, fh, off, b, n)
}

// writeDone is the shared reply half of WriteSync/WriteSyncBuf.
func (c *Client) writeDone(p *sim.Proc, fh nfsproto.FH, off uint32, n int, start sim.Time, reply *oncrpc.ReplyMsg, err error) error {
	if c.OnWriteEvent != nil {
		c.OnWriteEvent("reply", off, n)
	}
	if err != nil {
		return err
	}
	res := &c.scratchAttrStat
	if err := decodeDone(reply, nfsproto.DecodeAttrStatInto(reply.Results, res)); err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return res.Status.Err()
	}
	c.WriteLatency.Record(p.Now().Sub(start))
	c.WriteCounter.Add(n)
	if c.OnWriteAcked != nil {
		c.OnWriteAcked(fh, off, n)
	}
	return nil
}

// biod is one block-I/O daemon: it performs queued write-behind requests.
// The active-job table entry (no yield between Get and the insert) lets
// KillBiods settle flow control for a daemon killed mid-RPC.
func (c *Client) biod(p *sim.Proc) {
	for {
		c.idleBiods++
		job := c.jobs.Get(p)
		c.idleBiods--
		if c.activeJobs == nil {
			c.activeJobs = make(map[*sim.Proc]*writeJob)
		}
		c.activeJobs[p] = job
		if job.buf != nil {
			_ = job.c.WriteSyncBufRelease(p, job.fh, job.off, job.buf, job.n)
		} else {
			_ = job.c.WriteSync(p, job.fh, job.off, job.data)
		}
		delete(c.activeJobs, p)
		c.outstanding--
		c.closeCond.Broadcast()
	}
}

// WriteBehind hands one 8K write to a biod if one is idle; otherwise the
// calling process performs the RPC itself and blocks until that particular
// request completes (§4.1's flow control). The queued case returns
// immediately, with the biod encoding data only when it dequeues the job —
// so the caller must not touch data until the write has completed (Close
// provides the barrier).
func (c *Client) WriteBehind(p *sim.Proc, fh nfsproto.FH, off uint32, data []byte) error {
	if c.idleBiods > c.jobs.Len() {
		c.outstanding++
		if c.OnWriteBuffered != nil {
			c.OnWriteBuffered(fh, off, len(data))
		}
		c.jobs.Put(&writeJob{fh: fh, off: off, data: data, c: c})
		return nil
	}
	return c.WriteSync(p, fh, off, data)
}

// writeBehindBuf is WriteBehind for a pooled staging buffer: ownership of
// the caller's reference passes to the write path, which releases it when
// the RPC completes.
func (c *Client) writeBehindBuf(p *sim.Proc, fh nfsproto.FH, off uint32, b *block.Buf, n int) error {
	if c.idleBiods > c.jobs.Len() {
		c.outstanding++
		if c.OnWriteBuffered != nil {
			c.OnWriteBuffered(fh, off, n)
		}
		c.jobs.Put(&writeJob{fh: fh, off: off, buf: b, n: n, c: c})
		return nil
	}
	return c.WriteSyncBufRelease(p, fh, off, b, n)
}

// Close blocks until all outstanding write-behind requests have received
// responses — the sync-on-close semantic most NFS clients impose (§4.1).
func (c *Client) Close(p *sim.Proc) {
	for c.outstanding > 0 {
		c.closeCond.Wait(p)
	}
}

// AdoptApp registers an application process as part of this client host:
// a Crash kills it along with the daemons, because the workstation it ran
// on is gone. Workload runners that support client faults register their
// driver processes here.
func (c *Client) AdoptApp(p *sim.Proc) { c.apps = append(c.apps, p) }

// AppsKilled reports how many registered application processes were still
// running when a Crash took them down — the runner's accounting for
// streams that can never finish.
func (c *Client) AppsKilled() int { return c.appsKilled }

// Crash kills the client host instantaneously: the receiver, the biod
// pool and every adopted application process die mid-operation, the
// socket buffer is lost with the interface, and the dirty write-behind
// queue — writes the application was told "done" about but no server ever
// acked — is discarded, exactly what a workstation power cycle loses.
// Pending RPCs clean themselves up as their killed callers unwind. The
// platters of this story live on the servers; a client has none.
func (c *Client) Crash() {
	if c.Down {
		return
	}
	for _, pr := range c.apps {
		if !pr.Done() && !pr.Killed() {
			c.appsKilled++
		}
		c.sim.Kill(pr)
	}
	c.apps = c.apps[:0]
	for _, pr := range c.daemons {
		c.sim.Kill(pr)
	}
	c.daemons = c.daemons[:0]
	c.activeJobs = nil
	c.net.Detach(c.name)
	// Dirty write-behind dies with host memory; queued jobs still hold
	// their staging-buffer references.
	for {
		job, ok := c.jobs.TryGet()
		if !ok {
			break
		}
		if job.buf != nil {
			job.buf.Release()
		}
	}
	// Flow-control state resets with the daemons: killed biods never run
	// their post-Get bookkeeping, and nothing outstanding can complete.
	c.idleBiods = 0
	c.outstanding = 0
	c.Down = true
}

// Reboot brings the client host back: a fresh interface attachment, a
// fresh receiver and a fresh biod pool. Applications do not restart —
// whatever stream was interrupted stays interrupted, as it would on a
// real workstation — and the write-behind dropped by the crash stays
// dropped: NFS promises durability only for server-acked bytes.
func (c *Client) Reboot() {
	if !c.Down {
		return
	}
	c.ep = c.net.Attach(c.name, 0, 0)
	c.startDaemons()
}

// KillBiods kills up to n biod daemons (the biod-loss fault): the pool
// shrinks for the rest of the run, degrading write-behind to §4.1's
// do-it-yourself flow control. A daemon killed mid-RPC abandons its write
// — never acked, so never a durability obligation — and its flow-control
// slot is settled here so a later Close does not wait on a corpse. It
// returns how many daemons actually died.
func (c *Client) KillBiods(n int) int {
	killed := 0
	for i := len(c.daemons) - 1; i >= 0 && killed < n; i-- {
		pr := c.daemons[i]
		if pr.Done() || pr.Killed() {
			continue
		}
		if pr == c.daemons[0] {
			continue // never the receiver; biods only
		}
		if job, busy := c.activeJobs[pr]; busy {
			delete(c.activeJobs, pr)
			_ = job // the unwinding WriteSyncBufRelease releases job.buf
			c.outstanding--
			c.closeCond.Broadcast()
		} else {
			// An idle biod parked in Get already counted itself idle and
			// will never run the post-Get decrement.
			c.idleBiods--
		}
		c.sim.Kill(pr)
		c.daemons = append(c.daemons[:i], c.daemons[i+1:]...)
		c.numBiods--
		killed++
	}
	// With the whole pool gone, jobs already queued have no consumer left
	// (queueing races the kill within one instant): they are abandoned
	// unacked like a killed daemon's in-flight write, and their
	// flow-control slots settle here so Close never hangs on them.
	if c.numBiods == 0 {
		for {
			job, ok := c.jobs.TryGet()
			if !ok {
				break
			}
			if job.buf != nil {
				job.buf.Release()
			}
			c.outstanding--
		}
		c.closeCond.Broadcast()
	} else {
		// A killed idle daemon may have consumed a same-instant Put's
		// wake-up before ever running; re-queue the jobs so each Put
		// re-issues the signal to a surviving daemon (write-behind is
		// unordered, so the rotation is harmless).
		for i, n := 0, c.jobs.Len(); i < n; i++ {
			if job, ok := c.jobs.TryGet(); ok {
				c.jobs.Put(job)
			}
		}
	}
	c.BiodsLost += killed
	return killed
}

// Outstanding reports in-flight write-behind requests (diagnostics).
func (c *Client) Outstanding() int { return c.outstanding }

// ShardIndex places a key (typically a file name) on one of n export
// shards by FNV-1a hash. It is THE placement function: workloads spreading
// working sets, cluster shard maps, and checkers resolving owners must all
// hash identically, so none of them may roll their own.
func ShardIndex(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// FillPattern writes the deterministic audit pattern for file offset off
// into buf; crash tests regenerate it to check recovered contents.
//
// The byte at absolute offset x is byte(x*2654435761 + x>>13). Within an
// 8K-aligned window the x>>13 term is constant and the x*K term only
// depends on x mod 256, so the pattern repeats every 256 bytes; the fast
// path fills one period and doubles it with copy.
func FillPattern(buf []byte, off uint32) {
	head := len(buf)
	if off&8191 == 0 && head <= 8192 {
		if head > 256 {
			head = 256
		}
		for i := 0; i < head; i++ {
			x := off + uint32(i)
			buf[i] = byte(x*2654435761 + x>>13)
		}
		for i := head; i < len(buf); i *= 2 {
			copy(buf[i:], buf[:i])
		}
		return
	}
	for i := range buf {
		x := off + uint32(i)
		buf[i] = byte(x*2654435761 + x>>13)
	}
}

// WriteFile writes size bytes of audit pattern to fh sequentially in 8K
// requests, modelling the application + kernel cost per request, then
// closes. It returns the elapsed time from first byte to close completion.
func (c *Client) WriteFile(p *sim.Proc, fh nfsproto.FH, size int) (sim.Duration, error) {
	start := p.Now()
	// A host crash can kill this process while a staging buffer is filled
	// but not yet handed to the write path (the WriteGenerate sleep); the
	// deferred release keeps the pool's accounting exact across the kill.
	var staged *block.Buf
	defer func() {
		if staged != nil {
			staged.Release()
		}
	}()
	var off uint32
	for remaining := size; remaining > 0; {
		n := nfsproto.MaxData
		if n > remaining {
			n = remaining
		}
		buf := c.GetWriteBuf()
		staged = buf
		FillPattern(buf.Data()[:n], off)
		p.Sleep(c.params.WriteGenerate)
		staged = nil // ownership passes to the write path, which releases
		if err := c.writeBehindBuf(p, fh, off, buf, n); err != nil {
			return 0, err
		}
		off += uint32(n)
		remaining -= n
	}
	c.Close(p)
	return p.Now().Sub(start), nil
}
