package client

import "testing"

func TestFillPatternFastPathIdentical(t *testing.T) {
	ref := func(buf []byte, off uint32) {
		for i := range buf {
			x := off + uint32(i)
			buf[i] = byte(x*2654435761 + x>>13)
		}
	}
	for _, tc := range []struct {
		off uint32
		n   int
	}{{0, 8192}, {8192, 8192}, {81920, 8192}, {0, 100}, {0, 300}, {16384, 5000}, {24576, 8192}, {7, 512}, {8192, 9000}} {
		a := make([]byte, tc.n)
		b := make([]byte, tc.n)
		FillPattern(a, tc.off)
		ref(b, tc.off)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("off=%d n=%d mismatch at %d: %d != %d", tc.off, tc.n, i, a[i], b[i])
			}
		}
	}
}
