package client

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
	"repro/internal/xdr"
)

// TestReplyDecodeSteadyStateAllocs pins the client-side decode pooling:
// once the pending-call pool has warmed up, a reply costs no ReplyMsg and
// no per-procedure result allocation (both decode into pooled/per-client
// records). The bound below covers what the round trip legitimately
// allocates — the args record and the two wire buffers, which must stay
// fresh because in-flight datagrams alias them — and fails if per-reply
// decode records come back.
func TestReplyDecodeSteadyStateAllocs(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())

	// Minimal echo server: patch the XID into a prebuilt OK attrstat reply.
	ep := n.Attach("server", 0, 0)
	res := &nfsproto.AttrStat{Status: nfsproto.OK}
	e := xdr.NewEncoder(make([]byte, 0, oncrpc.SuccessHeaderSize+res.EncodedSize()))
	oncrpc.AppendSuccessHeader(e, 0)
	res.EncodeTo(e)
	template := e.Bytes()
	s.Spawn("echo", func(p *sim.Proc) {
		for {
			dg := ep.Inbox.Get(p)
			xid, _ := oncrpc.PeekXID(dg.Payload)
			reply := make([]byte, len(template))
			copy(reply, template)
			reply[0], reply[1], reply[2], reply[3] = byte(xid>>24), byte(xid>>16), byte(xid>>8), byte(xid)
			dg.Release()
			n.Send(p, "server", "c", reply)
		}
	})

	c := New(s, n, "c", "server", fastParams(), 0, nil)
	trigger := sim.NewQueue[int](s, 0)
	s.Spawn("app", func(p *sim.Proc) {
		for {
			trigger.Get(p)
			res, err := c.Getattr(p, nfsproto.FH{})
			if err != nil || res.Status != nfsproto.OK {
				t.Errorf("getattr: %v %v", err, res)
				return
			}
		}
	})

	oneOp := func() {
		trigger.Put(0)
		s.Run(0)
	}
	for i := 0; i < 64; i++ {
		oneOp() // warm every pool (events, waiters, datagrams, pending calls)
	}
	allocs := testing.AllocsPerRun(200, oneOp)
	// The 4 legitimate per-op allocations: args record, encoder record,
	// call wire buffer, and the echo server's reply buffer (wire buffers
	// must stay fresh — in-flight datagrams alias them). An un-pooled
	// decode path adds at least two more (ReplyMsg + AttrStat).
	if allocs > 4 {
		t.Fatalf("steady-state round trip allocates %.1f objects/op; decode records are no longer pooled", allocs)
	}
}
