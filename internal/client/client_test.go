package client

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/netsim"
	"repro/internal/nfsproto"
	"repro/internal/oncrpc"
	"repro/internal/sim"
)

// echoServer replies to every call after a fixed service delay; dropFirst
// makes it swallow the first n requests to exercise retransmission.
type echoServer struct {
	net       *netsim.Network
	ep        *netsim.Endpoint
	delay     sim.Duration
	dropFirst int
	seen      int
	replies   uint64
}

func newEchoServer(s *sim.Sim, n *netsim.Network, delay sim.Duration, dropFirst int) *echoServer {
	es := &echoServer{net: n, ep: n.Attach("server", 0, 0), delay: delay, dropFirst: dropFirst}
	s.Spawn("echo", func(p *sim.Proc) {
		for {
			dg := es.ep.Inbox.Get(p)
			es.seen++
			if es.seen <= es.dropFirst {
				continue
			}
			call, err := oncrpc.DecodeCall(dg.Payload)
			if err != nil {
				continue
			}
			if es.delay > 0 {
				p.Sleep(es.delay)
			}
			res := &nfsproto.AttrStat{Status: nfsproto.OK}
			n.Send(p, "server", dg.From, oncrpc.AcceptedReply(call.XID, res.Encode()).Encode())
			es.replies++
		}
	})
	return es
}

func fastParams() hw.ClientParams {
	p := hw.DEC3000Client()
	p.RetransTimeout = 20 * sim.Millisecond
	return p
}

func TestCallRoundTrip(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 0, nil)
	var err error
	s.Spawn("app", func(p *sim.Proc) {
		_, err = c.Call(p, nfsproto.ProcGetattr, (&nfsproto.FHArgs{}).Encode())
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if c.Calls != 1 || c.Retransmissions != 0 {
		t.Fatalf("calls=%d retrans=%d", c.Calls, c.Retransmissions)
	}
}

func TestRetransmissionRecoversDrop(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, sim.Millisecond, 2) // first two attempts eaten
	c := New(s, n, "c", "server", fastParams(), 0, nil)
	var err error
	var done sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		_, err = c.Call(p, nfsproto.ProcGetattr, (&nfsproto.FHArgs{}).Encode())
		done = p.Now()
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("Call after drops: %v", err)
	}
	if c.Retransmissions != 2 {
		t.Fatalf("Retransmissions = %d, want 2", c.Retransmissions)
	}
	// Backoff doubles: 20ms + 40ms before the third attempt lands.
	if done < sim.Time(60*sim.Millisecond) {
		t.Fatalf("recovered implausibly fast: %v", done)
	}
}

func TestCallGivesUpEventually(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	n.Attach("server", 0, 0) // black hole: no responder
	p := fastParams()
	p.RetransMax = 40 * sim.Millisecond
	c := New(s, n, "c", "server", p, 0, nil)
	var err error
	s.Spawn("app", func(q *sim.Proc) {
		_, err = c.Call(q, nfsproto.ProcNull, nil)
	})
	s.Run(0)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if c.Retransmissions != 7 {
		t.Fatalf("Retransmissions = %d, want 7 (8 attempts)", c.Retransmissions)
	}
}

func TestWriteBehindUsesBiods(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	srv := newEchoServer(s, n, 10*sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 4, nil)
	var handoffDone sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		// Four hand-offs return immediately; server takes 10ms each.
		for i := 0; i < 4; i++ {
			if err := c.WriteBehind(p, nfsproto.FH{}, uint32(i*8192), make([]byte, 8192)); err != nil {
				t.Errorf("WriteBehind: %v", err)
			}
		}
		handoffDone = p.Now()
		c.Close(p)
	})
	s.Run(0)
	if handoffDone > sim.Time(5*sim.Millisecond) {
		t.Fatalf("hand-offs blocked until %v", handoffDone)
	}
	// The echo server has no duplicate cache, so queueing delays beyond
	// the shortened RTO can produce extra replies; all four writes must
	// complete regardless.
	if srv.replies < 4 {
		t.Fatalf("server replies = %d, want >= 4", srv.replies)
	}
	if c.WriteCounter.Ops != 4 {
		t.Fatalf("completed writes = %d, want 4", c.WriteCounter.Ops)
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after Close", c.Outstanding())
	}
}

func TestWriteBehindBlocksWithoutBiods(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, 10*sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 0, nil)
	var done sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		c.WriteBehind(p, nfsproto.FH{}, 0, make([]byte, 8192))
		done = p.Now()
	})
	s.Run(0)
	if done < sim.Time(10*sim.Millisecond) {
		t.Fatalf("0-biod write did not block: done at %v", done)
	}
}

func TestCloseWaitsForAllOutstanding(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, 20*sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 2, nil)
	var closed sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		c.WriteBehind(p, nfsproto.FH{}, 0, make([]byte, 8192))
		c.WriteBehind(p, nfsproto.FH{}, 8192, make([]byte, 8192))
		c.Close(p)
		closed = p.Now()
	})
	s.Run(0)
	if closed < sim.Time(20*sim.Millisecond) {
		t.Fatalf("Close returned before replies: %v", closed)
	}
}

func TestWriteFileElapsedAndPattern(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 4, nil)
	var elapsed sim.Duration
	var err error
	s.Spawn("app", func(p *sim.Proc) {
		elapsed, err = c.WriteFile(p, nfsproto.FH{}, 64*1024)
	})
	s.Run(0)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if c.WriteCounter.Ops != 8 || c.WriteCounter.Bytes != 64*1024 {
		t.Fatalf("counter = %+v", c.WriteCounter)
	}
	if c.WriteLatency.N() != 8 {
		t.Fatalf("latency samples = %d", c.WriteLatency.N())
	}
}

func TestFillPatternDeterministicAndOffsetSensitive(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	FillPattern(a, 8192)
	FillPattern(b, 8192)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	FillPattern(b, 16384)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("pattern not offset sensitive")
	}
}

func TestQuickFillPatternConsistency(t *testing.T) {
	// The pattern at offset o computed in one buffer must equal the same
	// bytes computed in a shifted buffer: crash audits depend on it.
	f := func(off uint32, span uint8) bool {
		off %= 1 << 20
		n := int(span%64) + 1
		whole := make([]byte, 128)
		FillPattern(whole, off)
		part := make([]byte, n)
		FillPattern(part, off)
		for i := 0; i < n; i++ {
			if whole[i] != part[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnWriteEventHook(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, hw.FDDI())
	newEchoServer(s, n, sim.Millisecond, 0)
	c := New(s, n, "c", "server", fastParams(), 0, nil)
	var events []string
	c.OnWriteEvent = func(ev string, off uint32, n int) {
		events = append(events, ev)
	}
	s.Spawn("app", func(p *sim.Proc) {
		c.WriteSync(p, nfsproto.FH{}, 0, make([]byte, 8192))
	})
	s.Run(0)
	if len(events) != 2 || events[0] != "send" || events[1] != "reply" {
		t.Fatalf("events = %v", events)
	}
}
