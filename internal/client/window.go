package client

// IssueWindow is the open-loop issue path's admission control: a bounded
// count of operations a client may have in flight at once. Unlike the
// closed-loop generators — which block until each call completes and so
// can never exceed their process count — an open-loop arrival process
// asks for a slot at every arrival instant and must NOT block when none
// is free (blocking would throttle the offered rate and hide overload).
// TryAcquire is therefore non-blocking: the caller sheds or backlogs the
// arrival itself when admission fails.
type IssueWindow struct {
	slots    int
	inFlight int
	// peak is the high-water in-flight count, for reporting.
	peak int
}

// NewIssueWindow returns a window of n slots (n <= 0 means 1).
func NewIssueWindow(n int) *IssueWindow {
	if n <= 0 {
		n = 1
	}
	return &IssueWindow{slots: n}
}

// TryAcquire claims a slot if one is free, without blocking.
func (w *IssueWindow) TryAcquire() bool {
	if w.inFlight >= w.slots {
		return false
	}
	w.inFlight++
	if w.inFlight > w.peak {
		w.peak = w.inFlight
	}
	return true
}

// Release returns a slot claimed by TryAcquire.
func (w *IssueWindow) Release() {
	if w.inFlight <= 0 {
		panic("client: IssueWindow.Release without TryAcquire")
	}
	w.inFlight--
}

// InFlight reports the slots currently claimed.
func (w *IssueWindow) InFlight() int { return w.inFlight }

// Slots reports the window size.
func (w *IssueWindow) Slots() int { return w.slots }

// Peak reports the high-water in-flight count.
func (w *IssueWindow) Peak() int { return w.peak }
