package netsim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// TestDetachReattach: detaching an endpoint loses its queued datagrams and
// drops in-flight deliveries; the name is then free for a fresh Attach
// whose inbox starts empty — the crashed-and-rebooted host.
func TestDetachReattach(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("cli", 0, 0)
	srv := n.Attach("srv", 0, 0)

	s.Spawn("sender", func(p *sim.Proc) {
		n.Send(p, "cli", "srv", make([]byte, 100)) // queued pre-crash: lost
		p.Sleep(1000)
		n.Send(p, "cli", "srv", make([]byte, 100)) // in flight at crash
	})
	// The second datagram finishes serializing just after t=1000 and takes
	// Latency to arrive; detach while it is in flight.
	crashAt := sim.Time(1000).Add(n.Params().Latency)
	s.At(sim.Duration(crashAt), func() {
		if srv.Inbox.Len() != 1 {
			t.Errorf("pre-crash inbox len = %d, want 1", srv.Inbox.Len())
		}
		ep := n.Detach("srv")
		if ep != srv || !srv.Dead() {
			t.Error("Detach did not return the dead endpoint")
		}
		if srv.Inbox.Len() != 0 {
			t.Errorf("detached inbox still holds %d datagrams", srv.Inbox.Len())
		}
	})
	s.Run(0)

	if n.Detach("srv") != nil {
		t.Error("double Detach should be a no-op")
	}

	// Reboot: same name, fresh socket buffer.
	srv2 := n.Attach("srv", 0, 0)
	if srv2.Inbox.Len() != 0 {
		t.Fatalf("rebooted inbox len = %d, want 0", srv2.Inbox.Len())
	}
	var delivered bool
	s.Spawn("sender2", func(p *sim.Proc) {
		if !n.Send(p, "cli", "srv", make([]byte, 100)) {
			t.Error("send to reattached endpoint failed")
		}
	})
	s.Spawn("recv", func(p *sim.Proc) {
		dg := srv2.Inbox.Get(p)
		delivered = true
		dg.Release()
	})
	s.Run(0)
	if !delivered {
		t.Fatal("datagram not delivered to reattached endpoint")
	}
}
