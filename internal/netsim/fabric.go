package netsim

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// SegmentSpec declares one named segment of a bridged fabric. Exactly
// one segment — the root — has an empty Uplink; every other segment is
// joined to its parent by a dedicated two-port store-and-forward bridge
// configured by Bridge. The resulting graph is a tree, so forwarding is
// loop-free by construction.
type SegmentSpec struct {
	Name   string
	Params hw.NetParams
	Uplink string       // parent segment name; "" marks the root
	Bridge BridgeParams // uplink bridge parameters (ignored on the root)
}

// A Fabric is a tree of Network segments joined by uplink bridges, plus
// the placement/routing bookkeeping that lets any attached host reach
// any other by name: placing a host installs a route on every other
// segment pointing one hop closer, and a forwarding entry in the bridge
// between each segment and that hop.
type Fabric struct {
	sim     *sim.Sim
	names   []string // declaration order
	nets    map[string]*Network
	parent  map[string]string
	uplinks map[string]*Bridge // child segment -> its uplink bridge
	child   map[string]*BridgePort
	toward  map[string]*BridgePort // child segment -> parent-side port
	hosts   map[string]string      // host name -> segment
	root    string
}

// NewFabric builds the segment tree. The spec must be well formed
// (unique names, exactly one root, every uplink naming a declared
// segment, no cycles) — scenario validation enforces this; NewFabric
// panics on violations rather than limping.
func NewFabric(s *sim.Sim, segs []SegmentSpec) *Fabric {
	f := &Fabric{
		sim:     s,
		nets:    make(map[string]*Network, len(segs)),
		parent:  make(map[string]string, len(segs)),
		uplinks: make(map[string]*Bridge),
		child:   make(map[string]*BridgePort),
		toward:  make(map[string]*BridgePort),
		hosts:   make(map[string]string),
	}
	for _, sp := range segs {
		if _, dup := f.nets[sp.Name]; dup || sp.Name == "" {
			panic(fmt.Sprintf("netsim: bad segment name %q", sp.Name))
		}
		f.names = append(f.names, sp.Name)
		f.nets[sp.Name] = New(s, sp.Params)
		f.parent[sp.Name] = sp.Uplink
		if sp.Uplink == "" {
			if f.root != "" {
				panic(fmt.Sprintf("netsim: two root segments (%q, %q)", f.root, sp.Name))
			}
			f.root = sp.Name
		}
	}
	if f.root == "" {
		panic("netsim: no root segment")
	}
	// Bridges are attached child-side first, in declaration order, so
	// process spawn order — and with it event ordering — is a pure
	// function of the spec.
	for _, sp := range segs {
		if sp.Uplink == "" {
			continue
		}
		up, ok := f.nets[sp.Uplink]
		if !ok || sp.Uplink == sp.Name {
			panic(fmt.Sprintf("netsim: segment %q has bad uplink %q", sp.Name, sp.Uplink))
		}
		br := NewBridge(s, "bridge:"+sp.Name, sp.Bridge)
		f.uplinks[sp.Name] = br
		f.child[sp.Name] = br.AttachPort(f.nets[sp.Name], sp.Name)
		f.toward[sp.Name] = br.AttachPort(up, sp.Uplink)
	}
	// Cycle check: every segment must reach the root by parent links.
	for _, name := range f.names {
		seen := 0
		for at := name; at != f.root; at = f.parent[at] {
			if seen++; seen > len(f.names) {
				panic(fmt.Sprintf("netsim: segment %q cannot reach root %q", name, f.root))
			}
		}
	}
	return f
}

// Root returns the root segment's name.
func (f *Fabric) Root() string { return f.root }

// Names returns the segment names in declaration order.
func (f *Fabric) Names() []string { return f.names }

// Segment returns a segment's network; "" means the root.
func (f *Fabric) Segment(name string) *Network {
	if name == "" {
		name = f.root
	}
	n, ok := f.nets[name]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown segment %q", name))
	}
	return n
}

// Uplink returns a non-root segment's uplink bridge, or nil for the
// root or an unknown name.
func (f *Fabric) Uplink(segment string) *Bridge { return f.uplinks[segment] }

// SegmentOf reports the segment a placed host lives on ("" if unknown).
func (f *Fabric) SegmentOf(host string) string { return f.hosts[host] }

// depth counts parent hops from a segment to the root.
func (f *Fabric) depth(seg string) int {
	d := 0
	for at := seg; at != f.root; at = f.parent[at] {
		d++
	}
	return d
}

// nextHop returns the neighbouring segment one hop from `from` along
// the unique tree path toward `to`.
func (f *Fabric) nextHop(from, to string) string {
	// Lift `to` until it is at from's depth or shallower, remembering
	// the last segment lifted from — if the walk meets `from`, that
	// segment is the next hop (descend); otherwise the path climbs
	// through from's parent.
	df, dt := f.depth(from), f.depth(to)
	at, last := to, ""
	for dt > df {
		at, last = f.parent[at], at
		dt--
	}
	// Climb both until they meet.
	a, b, lastB := from, at, last
	for a != b {
		a = f.parent[a]
		b, lastB = f.parent[b], b
	}
	if a == from {
		// from is an ancestor of to: descend toward lastB.
		return lastB
	}
	return f.parent[from]
}

// portsBetween returns, for adjacent segments from -> next, the bridge
// joining them and its output port on the next side.
func (f *Fabric) portsBetween(from, next string) (br *Bridge, out *BridgePort) {
	if f.parent[from] == next {
		br = f.uplinks[from]
		return br, f.toward[from]
	}
	if f.parent[next] == from {
		br = f.uplinks[next]
		return br, f.child[next]
	}
	panic(fmt.Sprintf("netsim: segments %q and %q are not adjacent", from, next))
}

// Place registers a host as attached to a segment ("" = root) and
// installs the routes and bridge forwarding entries that make it
// reachable from every other segment. Call it after the host's
// endpoint is attached; re-placing (an adopted export after failover)
// overwrites the old paths.
func (f *Fabric) Place(host, segment string) {
	if segment == "" {
		segment = f.root
	}
	if _, ok := f.nets[segment]; !ok {
		panic(fmt.Sprintf("netsim: placing %q on unknown segment %q", host, segment))
	}
	f.hosts[host] = segment
	for _, other := range f.names {
		if other == segment {
			continue
		}
		next := f.nextHop(other, segment)
		br, out := f.portsBetween(other, next)
		// The route on `other` points at the joining bridge's local
		// endpoint; the bridge forwards out the port facing `next`.
		local := f.child[other] // next is other's parent: its own uplink bridge
		if f.parent[next] == other {
			local = f.toward[next] // next is a child: that child's uplink bridge
		}
		f.nets[other].AddRoute(host, local.ep)
		br.SetForward(host, out)
	}
}

// SetLinkDown severs or restores a host attachment wherever it lives —
// segment membership is irrelevant to the caller. Unknown names are a
// no-op on every segment, matching Network.SetLinkDown.
func (f *Fabric) SetLinkDown(host string, down bool) {
	for _, name := range f.names {
		f.nets[name].SetLinkDown(host, down)
	}
}

// SetUplinkDown severs or restores a non-root segment's uplink: the
// child-side bridge port goes down, so nothing crosses between the
// segment and the rest of the fabric in either direction. It reports
// whether the segment had an uplink.
func (f *Fabric) SetUplinkDown(segment string, down bool) bool {
	bp, ok := f.child[segment]
	if !ok {
		return false
	}
	bp.SetDown(down)
	return true
}

// Bridges returns the uplink bridges in child-segment declaration
// order.
func (f *Fabric) Bridges() []*Bridge {
	var out []*Bridge
	for _, name := range f.names {
		if br, ok := f.uplinks[name]; ok {
			out = append(out, br)
		}
	}
	return out
}
