package netsim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// twoSegFabric builds root "core" (fddi) + leaf "lan" (ethernet) joined
// by an uplink bridge, with a server on core and a client on lan.
func twoSegFabric(s *sim.Sim, bp BridgeParams) (*Fabric, *Endpoint, *Endpoint) {
	f := NewFabric(s, []SegmentSpec{
		{Name: "core", Params: hw.FDDI()},
		{Name: "lan", Params: hw.Ethernet(), Uplink: "core", Bridge: bp},
	})
	srv := f.Segment("core").Attach("server", 0, 0)
	cli := f.Segment("lan").Attach("client", 0, 0)
	f.Place("server", "core")
	f.Place("client", "lan")
	return f, srv, cli
}

func TestBridgeStoreAndForward(t *testing.T) {
	s := sim.New(1)
	f, srv, cli := twoSegFabric(s, BridgeParams{ForwardLatency: 50 * sim.Microsecond})
	var atServer, atClient *Datagram
	s.Spawn("srv", func(p *sim.Proc) {
		atServer = srv.Inbox.Get(p)
		// Reply crosses back over the bridge.
		f.Segment("core").Send(p, "server", "client", []byte("pong"))
	})
	s.Spawn("cli", func(p *sim.Proc) {
		f.Segment("lan").Send(p, "client", "server", []byte("ping"))
		atClient = cli.Inbox.Get(p)
	})
	end := s.Run(0)
	if atServer == nil || string(atServer.Payload) != "ping" {
		t.Fatalf("request not forwarded: %+v", atServer)
	}
	if atServer.From != "client" || atServer.To != "server" {
		t.Fatalf("forwarding rewrote addressing: %s -> %s", atServer.From, atServer.To)
	}
	if atClient == nil || string(atClient.Payload) != "pong" {
		t.Fatalf("reply not forwarded back: %+v", atClient)
	}
	// Both segments carried wire traffic, and the bridge counted both
	// directions.
	if f.Segment("lan").SentDatagrams != 2 || f.Segment("core").SentDatagrams != 2 {
		t.Fatalf("wire accounting: lan=%d core=%d, want 2/2",
			f.Segment("lan").SentDatagrams, f.Segment("core").SentDatagrams)
	}
	br := f.Uplink("lan")
	if got := br.Ports[0].Forwarded + br.Ports[1].Forwarded; got != 2 {
		t.Fatalf("bridge forwarded %d datagrams, want 2", got)
	}
	// Store-and-forward is slower than one segment: request pays lan
	// serialization + forward latency + core serialization.
	if end < sim.Time(200*sim.Microsecond) {
		t.Fatalf("round trip implausibly fast: %v", end)
	}
}

// TestBridgeQueueFullDrops floods a one-deep bridge output queue faster
// than the slow downstream segment drains it, and checks every datagram
// is either forwarded or charged to the port's queue-full budget.
func TestBridgeQueueFullDrops(t *testing.T) {
	s := sim.New(1)
	f := NewFabric(s, []SegmentSpec{
		{Name: "slow", Params: hw.Ethernet()},
		{Name: "fast", Params: hw.FDDI(), Uplink: "slow", Bridge: BridgeParams{QueueItems: 1}},
	})
	f.Segment("slow").Attach("sink", 0, 0)
	f.Segment("fast").Attach("src", 0, 0)
	f.Place("sink", "slow")
	f.Place("src", "fast")
	const burst = 32
	s.Spawn("src", func(p *sim.Proc) {
		for i := 0; i < burst; i++ {
			f.Segment("fast").Send(p, "src", "sink", make([]byte, 8192))
		}
	})
	s.Run(0)
	// The outbound port is the parent-side port (index 1).
	out := f.Uplink("fast").Ports[1]
	if out.DropsQueueFull() == 0 {
		t.Fatal("no queue-full drops despite a 1-deep FIFO and an 8x rate mismatch")
	}
	if got := out.Forwarded + out.DropsQueueFull(); got != burst {
		t.Fatalf("forwarded(%d) + dropped(%d) = %d, want %d",
			out.Forwarded, out.DropsQueueFull(), got, burst)
	}
	if out.Forwarded != f.Segment("slow").SentDatagrams {
		t.Fatalf("forwarded %d but slow segment carried %d", out.Forwarded, f.Segment("slow").SentDatagrams)
	}
}

// TestBridgeUplinkDown severs a leaf's uplink mid-stream: datagrams
// sent during the outage die at the bridge (counted as link-down
// drops), and traffic flows again after restoration.
func TestBridgeUplinkDown(t *testing.T) {
	s := sim.New(1)
	f, srv, _ := twoSegFabric(s, BridgeParams{})
	var delivered int
	s.Spawn("srv", func(p *sim.Proc) {
		for {
			srv.Inbox.Get(p).Release()
			delivered++
		}
	})
	s.Spawn("cli", func(p *sim.Proc) {
		lan := f.Segment("lan")
		lan.Send(p, "client", "server", make([]byte, 1024)) // before: delivered
		p.Sleep(5 * sim.Millisecond)                        // let it propagate through
		f.SetUplinkDown("lan", true)
		lan.Send(p, "client", "server", make([]byte, 1024)) // during: dropped
		lan.Send(p, "client", "server", make([]byte, 1024)) // during: dropped
		p.Sleep(10 * sim.Millisecond)
		f.SetUplinkDown("lan", false)
		lan.Send(p, "client", "server", make([]byte, 1024)) // after: delivered
	})
	s.Run(0)
	if delivered != 2 {
		t.Fatalf("delivered %d datagrams, want 2 (outage should eat the middle two)", delivered)
	}
	br := f.Uplink("lan")
	drops := br.Ports[0].DropsLinkDown() + br.Ports[1].DropsLinkDown() + f.Segment("lan").DropsLinkDown
	if drops != 2 {
		t.Fatalf("link-down drops = %d, want 2", drops)
	}
	if !f.SetUplinkDown("core", true) == false {
		t.Fatal("root segment must report no uplink")
	}
}

// TestBridgeThreePort exercises a single bridge joining three segments
// directly (the Fabric only builds two-port uplinks, but the Bridge
// itself is N-port).
func TestBridgeThreePort(t *testing.T) {
	s := sim.New(1)
	var nets [3]*Network
	for i := range nets {
		nets[i] = New(s, hw.Ethernet())
	}
	br := NewBridge(s, "hub", BridgeParams{})
	var ports [3]*BridgePort
	for i, n := range nets {
		ports[i] = br.AttachPort(n, "")
	}
	a := nets[0].Attach("a", 0, 0)
	b := nets[1].Attach("b", 0, 0)
	c := nets[2].Attach("c", 0, 0)
	_ = a
	for i, n := range nets {
		for j, host := range []string{"a", "b", "c"} {
			if i != j {
				n.AddRoute(host, ports[i].ep)
				br.SetForward(host, ports[j])
			}
		}
	}
	var gotB, gotC *Datagram
	s.Spawn("b", func(p *sim.Proc) { gotB = b.Inbox.Get(p) })
	s.Spawn("c", func(p *sim.Proc) { gotC = c.Inbox.Get(p) })
	s.Spawn("a", func(p *sim.Proc) {
		nets[0].Send(p, "a", "b", []byte("to-b"))
		nets[0].Send(p, "a", "c", []byte("to-c"))
	})
	s.Run(0)
	if gotB == nil || string(gotB.Payload) != "to-b" {
		t.Fatalf("b: %+v", gotB)
	}
	if gotC == nil || string(gotC.Payload) != "to-c" {
		t.Fatalf("c: %+v", gotC)
	}
}

// TestFabricMultiHop routes leaf-to-leaf across a three-deep chain:
// core <- mid <- leaf, with hosts on leaf and core, plus a sibling
// branch to prove next-hop selection descends correctly.
func TestFabricMultiHop(t *testing.T) {
	s := sim.New(1)
	f := NewFabric(s, []SegmentSpec{
		{Name: "core", Params: hw.FDDI()},
		{Name: "mid", Params: hw.Ethernet(), Uplink: "core"},
		{Name: "leaf", Params: hw.Ethernet(), Uplink: "mid"},
		{Name: "side", Params: hw.Ethernet(), Uplink: "core"},
	})
	f.Segment("core").Attach("server", 0, 0)
	deep := f.Segment("leaf").Attach("deep", 0, 0)
	side := f.Segment("side").Attach("peer", 0, 0)
	f.Place("server", "core")
	f.Place("deep", "leaf")
	f.Place("peer", "side")
	var atDeep, atPeer *Datagram
	s.Spawn("deep", func(p *sim.Proc) {
		// deep -> peer crosses leaf, mid, core, side: three bridges.
		f.Segment("leaf").Send(p, "deep", "peer", []byte("x"))
		atDeep = deep.Inbox.Get(p)
	})
	s.Spawn("peer", func(p *sim.Proc) {
		atPeer = side.Inbox.Get(p)
		f.Segment("side").Send(p, "peer", "deep", []byte("y"))
	})
	s.Run(0)
	if atPeer == nil || atPeer.From != "deep" {
		t.Fatalf("leaf->side delivery failed: %+v", atPeer)
	}
	if atDeep == nil || atDeep.From != "peer" {
		t.Fatalf("side->leaf delivery failed: %+v", atDeep)
	}
	// Every segment on the path carried the datagram once per direction.
	for _, seg := range []string{"leaf", "mid", "core", "side"} {
		if got := f.Segment(seg).SentDatagrams; got != 2 {
			t.Fatalf("segment %s carried %d datagrams, want 2", seg, got)
		}
	}
}
