package netsim

import (
	"testing"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

// TestSplitDatagramReleasePaths audits every way a body-carrying datagram
// can die — consumed by the receiver, dropped at a full socket buffer,
// dropped on arrival at a crashed endpoint, scrubbed out of a detached
// inbox, and sent to a nonexistent destination — and asserts each path
// returns the payload reference, so the pool drains to exactly the
// sender's own reference.
func TestSplitDatagramReleasePaths(t *testing.T) {
	live0 := block.Live()
	s := sim.New(3)
	n := New(s, hw.Ethernet())
	n.Attach("cli", 0, 0)
	// A one-datagram inbox: the second queued delivery overflows.
	srv := n.Attach("srv", 1, 0)

	pool := block.NewPool()
	body := pool.Get()

	// Path 1+2: two back-to-back sends; the first is consumed, the second
	// overflows the one-slot inbox.
	s.Spawn("sender", func(p *sim.Proc) {
		n.SendBuf(p, "cli", "srv", []byte("head1"), body, block.Size)
		n.SendBuf(p, "cli", "srv", []byte("head2"), body, block.Size)
	})
	s.Spawn("recv", func(p *sim.Proc) {
		// Start draining only after both deliveries have arrived, so the
		// second one finds the one-slot inbox full and drops.
		p.Sleep(100 * sim.Millisecond)
		dg := srv.Inbox.Get(p)
		if dg.Body == nil || dg.BodyLen != block.Size {
			t.Errorf("consumed datagram lost its body: %v/%d", dg.Body, dg.BodyLen)
		}
		if dg.Size() != len("head1")+block.Size {
			t.Errorf("Size() = %d", dg.Size())
		}
		dg.Release()
		if dg.Body != nil {
			t.Error("Release did not clear Body")
		}
		dg.Release() // double release of the datagram must be a no-op
	})
	s.Run(0)
	if srv.Drops() != 1 {
		t.Fatalf("overflow drops = %d, want 1", srv.Drops())
	}

	// Path 3: queued at detach. Park a datagram in the inbox, then detach.
	s.Spawn("sender2", func(p *sim.Proc) {
		n.SendBuf(p, "cli", "srv", []byte("head3"), body, block.Size)
	})
	s.Run(0)
	if srv.Inbox.Len() != 1 {
		t.Fatalf("inbox len = %d, want 1", srv.Inbox.Len())
	}
	n.Detach("srv")

	// Path 4: in flight toward a crashed endpoint. Reattach, send, and
	// detach the moment serialization completes — the delivery event is
	// still one propagation latency away and must drop on arrival.
	ep2 := n.Attach("srv", 0, 0)
	s.Spawn("sender3", func(p *sim.Proc) {
		n.SendBuf(p, "cli", "srv", []byte("head4"), body, block.Size)
		n.Detach("srv") // SendBuf returns at end of serialization
	})
	s.Run(0)
	if !ep2.Dead() {
		t.Fatal("endpoint not detached")
	}

	// Path 5: no such destination.
	s.Spawn("sender4", func(p *sim.Proc) {
		if n.SendBuf(p, "cli", "ghost", []byte("head5"), body, block.Size) {
			t.Error("send to ghost endpoint reported success")
		}
	})
	s.Run(0)

	// Every datagram reference is gone; only the sender's own remains.
	if got := block.Live() - live0; got != 1 {
		t.Fatalf("%d payload buffers live after the sweep, want 1 (the sender's)", got)
	}
	if body.Refs() != 1 {
		t.Fatalf("body refs = %d, want 1", body.Refs())
	}
	body.Release()
	if got := block.Live() - live0; got != 0 {
		t.Fatalf("%d payload buffers leaked", got)
	}
}

// TestSplitDatagramPadding: a body length the XDR opaque would pad cannot
// ride the split path (the padding bytes would be missing from the wire).
func TestSplitDatagramPadding(t *testing.T) {
	s := sim.New(4)
	n := New(s, hw.Ethernet())
	n.Attach("a", 0, 0)
	n.Attach("b", 0, 0)
	pool := block.NewPool()
	body := pool.Get()
	defer body.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("unpadded split body did not panic")
		}
	}()
	// The length check fires before the medium is touched, so no process
	// context is needed to exercise it.
	n.SendBuf(nil, "a", "b", []byte("head"), body, 8190)
	_ = s
}
