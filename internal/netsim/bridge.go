package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// A Bridge is a store-and-forward node joining two or more Network
// segments. Each port attaches one endpoint on its segment (receiving
// datagrams through the normal delivery path — the "store") and owns a
// bounded FIFO output queue feeding a transmitter process that
// re-serializes forwarded datagrams onto the attached segment (the
// "forward"). Queueing delay is therefore charged in sim time by the
// target medium itself: one transmitter per port drains the FIFO in
// order, and each datagram pays the full wire time of the outgoing
// segment. The queue bound is the bridge's drop budget; overflow and
// down-port losses are counted per port.
//
// Forwarding is static: hosts are registered with SetForward (the Fabric
// does this when a host is placed on a segment), mapping a destination
// host name to the output port one hop closer to it. Datagrams for
// unknown destinations are filtered, as a learning bridge discards
// frames for addresses local to the arrival segment.
type Bridge struct {
	Name  string
	Ports []*BridgePort

	sim     *sim.Sim
	p       BridgeParams
	forward map[string]*BridgePort
}

// BridgeParams configures a bridge's per-port behaviour.
type BridgeParams struct {
	// ForwardLatency is the per-datagram store-and-forward processing
	// time between dequeue and retransmission.
	ForwardLatency sim.Duration
	// QueueItems bounds each port's output FIFO in datagrams
	// (0 = unbounded). This is the drop budget: a full queue drops.
	QueueItems int
	// QueueBytes bounds each port's output FIFO in payload bytes
	// (0 = unbounded).
	QueueBytes int
}

// BridgePort is one attachment of a bridge to a segment, transmitting
// forwarded datagrams onto that segment.
type BridgePort struct {
	Index   int
	Segment string // label for reporting (the attached segment's name)

	bridge *Bridge
	net    *Network
	ep     *Endpoint
	out    *sim.Queue[*Datagram]
	down   bool

	// Counters.
	Forwarded      uint64 // datagrams retransmitted onto this port's segment
	ForwardedBytes uint64 // payload bytes retransmitted
	DropsNoRoute   uint64 // arrivals with no forwarding entry (filtered)
	dropsLinkDown  uint64 // dequeued while the port was down
}

// Net returns the segment network the port is attached to.
func (bp *BridgePort) Net() *Network { return bp.net }

// Down reports whether the port's link is severed.
func (bp *BridgePort) Down() bool { return bp.down }

// QueueLen reports the current output FIFO depth in datagrams.
func (bp *BridgePort) QueueLen() int { return bp.out.Len() }

// PeakQueueLen reports the high-water output FIFO depth.
func (bp *BridgePort) PeakQueueLen() int { return bp.out.PeakLen() }

// DropsQueueFull counts datagrams lost to output FIFO overflow — the
// drop budget spent on this port.
func (bp *BridgePort) DropsQueueFull() uint64 { return bp.out.Drops() }

// DropsLinkDown counts datagrams lost because the port was down: queued
// output drained while severed, plus in-flight deliveries that arrived
// at the severed attachment (counted by the segment, attributed here).
func (bp *BridgePort) DropsLinkDown() uint64 { return bp.dropsLinkDown }

// SetDown severs or restores the port. While down the port neither
// receives (in-flight deliveries to its endpoint are lost, exactly as
// for a host behind SetLinkDown) nor transmits (dequeued datagrams are
// dropped and counted). Queued datagrams in the output FIFO do NOT
// survive an outage: the transmitter keeps draining and dropping, which
// is what a bridge flushing a dead interface does.
func (bp *BridgePort) SetDown(down bool) {
	bp.down = down
	bp.net.SetLinkDown(bp.ep.Name, down)
}

// NewBridge builds a bridge with no ports; call AttachPort once per
// segment it joins (at least two for anything useful).
func NewBridge(s *sim.Sim, name string, p BridgeParams) *Bridge {
	return &Bridge{
		Name:    name,
		sim:     s,
		p:       p,
		forward: make(map[string]*BridgePort),
	}
}

// AttachPort joins the bridge to a segment: it attaches an endpoint
// named after the bridge, and spawns the port's receiver and
// transmitter processes. segment is a reporting label.
func (b *Bridge) AttachPort(n *Network, segment string) *BridgePort {
	bp := &BridgePort{
		Index:   len(b.Ports),
		Segment: segment,
		bridge:  b,
		net:     n,
		ep:      n.Attach(b.Name, 0, 0),
		out: sim.NewByteQueue[*Datagram](b.sim, b.p.QueueItems, b.p.QueueBytes,
			func(d *Datagram) int { return d.Size() }),
	}
	b.Ports = append(b.Ports, bp)
	b.sim.Spawn(fmt.Sprintf("%s.rx%d", b.Name, bp.Index), func(p *sim.Proc) { b.receive(p, bp) })
	b.sim.Spawn(fmt.Sprintf("%s.tx%d", b.Name, bp.Index), func(p *sim.Proc) { bp.transmit(p) })
	return bp
}

// SetForward installs a forwarding entry: datagrams addressed to dest
// leave through out. Re-installing overwrites (a host that moved).
func (b *Bridge) SetForward(dest string, out *BridgePort) {
	b.forward[dest] = out
}

// receive drains one port's inbox, looking up the output port for each
// datagram and enqueueing it on that port's FIFO. A missing entry — or
// an entry pointing back out the arrival port — filters the datagram.
func (b *Bridge) receive(p *sim.Proc, in *BridgePort) {
	for {
		dg := in.ep.Inbox.Get(p)
		out := b.forward[dg.To]
		if out == nil || out == in {
			in.DropsNoRoute++
			dg.Release()
			continue
		}
		if !out.out.Put(dg) {
			// Queue full: the per-port drop budget is spent; the byte
			// queue counted the drop, we just release the record.
			dg.Release()
		}
	}
}

// transmit drains a port's output FIFO onto its segment. The original
// addressing is preserved; the target network resolves the destination
// again (an attached host, or the next bridge via a route) and takes
// its own reference to any body buffer, so pooled datagram records
// never migrate between networks.
func (bp *BridgePort) transmit(p *sim.Proc) {
	for {
		dg := bp.out.Get(p)
		if bp.down {
			bp.dropsLinkDown++
			dg.Release()
			continue
		}
		if d := bp.bridge.p.ForwardLatency; d > 0 {
			p.Sleep(d)
		}
		if bp.down {
			// The port went down while the datagram was being processed.
			bp.dropsLinkDown++
			dg.Release()
			continue
		}
		bp.Forwarded++
		bp.ForwardedBytes += uint64(dg.Size())
		bp.net.send(p, dg.From, dg.To, dg.Payload, dg.Body, dg.BodyLen)
		dg.Release()
	}
}
