package netsim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// TestLinkDownSevers: while an attachment is down, the host cannot
// transmit (the send dies in the driver, never touching the medium) and
// in-flight deliveries to it are lost on arrival — the sender still
// burns medium time, exactly like any lost UDP datagram. Unlike a
// Detach, queued datagrams survive in the socket buffer and the endpoint
// object stays live, so consumers blocked on its inbox resume unharmed
// when the link comes back.
func TestLinkDownSevers(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("cli", 0, 0)
	srv := n.Attach("srv", 0, 0)

	s.Spawn("pre", func(p *sim.Proc) {
		n.Send(p, "cli", "srv", make([]byte, 100)) // delivered before the cut
	})
	cutAt := sim.Duration(5 * sim.Millisecond)
	s.At(cutAt, func() {
		if srv.Inbox.Len() != 1 {
			t.Errorf("pre-cut inbox len = %d, want 1", srv.Inbox.Len())
		}
		n.SetLinkDown("srv", true)
		if !srv.LinkDown() || srv.Dead() {
			t.Error("link-down endpoint should be down but not dead")
		}
		if srv.Inbox.Len() != 1 {
			t.Error("link-down must not discard the socket buffer")
		}
	})

	s.Spawn("cut-traffic", func(p *sim.Proc) {
		p.Sleep(cutAt + sim.Millisecond)
		// A live sender cannot tell the difference: the send succeeds and
		// burns medium time, and the datagram dies on arrival.
		if !n.Send(p, "cli", "srv", make([]byte, 100)) {
			t.Error("send toward a severed link should look like any other send")
		}
		// The cut host itself cannot drive the medium at all.
		util0 := n.Utilization()
		if n.Send(p, "srv", "cli", make([]byte, 100)) {
			t.Error("a severed host transmitted")
		}
		if n.Utilization() != util0 {
			t.Error("a driver-dropped send must not consume medium time")
		}
		p.Sleep(2 * sim.Millisecond) // past the in-flight delivery
		if n.DropsLinkDown != 2 {
			t.Errorf("DropsLinkDown = %d, want 2 (one arrival, one driver drop)", n.DropsLinkDown)
		}
		n.SetLinkDown("srv", false)
		if !n.Send(p, "cli", "srv", make([]byte, 100)) {
			t.Error("send after link-up failed")
		}
	})

	s.Run(0)
	// Exactly two datagrams reached the host: the pre-cut delivery (which
	// sat out the outage in the socket buffer) and the post-restore one.
	if got := srv.Inbox.Len(); got != 2 {
		t.Fatalf("inbox holds %d datagrams, want 2 (pre-cut + post-restore)", got)
	}
	for i := 0; i < 2; i++ {
		dg, ok := srv.Inbox.TryGet()
		if !ok {
			t.Fatal("queued datagram vanished")
		}
		dg.Release()
	}

	// Unknown names are a no-op, so injectors may race crashes.
	n.SetLinkDown("nobody", true)
}
