package netsim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestDeliverySimple(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	dst := n.Attach("server", 0, 0)
	n.Attach("client", 0, 0)
	var got *Datagram
	s.Spawn("recv", func(p *sim.Proc) { got = dst.Inbox.Get(p) })
	s.Spawn("send", func(p *sim.Proc) {
		n.Send(p, "client", "server", []byte("hello"))
	})
	s.Run(0)
	if got == nil || string(got.Payload) != "hello" {
		t.Fatalf("got = %+v", got)
	}
	if got.From != "client" || got.To != "server" {
		t.Fatalf("addressing = %s -> %s", got.From, got.To)
	}
}

func TestFragmentationCounts(t *testing.T) {
	s := sim.New(1)
	eth := New(s, hw.Ethernet())
	fddi := New(s, hw.FDDI())
	// 8K + 28 header = 8220; Ethernet MTU 1500 -> 6 frags; FDDI 4352 -> 2.
	if f := eth.FragCount(8192); f != 6 {
		t.Fatalf("Ethernet frags = %d, want 6", f)
	}
	if f := fddi.FragCount(8192); f != 2 {
		t.Fatalf("FDDI frags = %d, want 2", f)
	}
	if f := eth.FragCount(100); f != 1 {
		t.Fatalf("small frags = %d, want 1", f)
	}
}

func Test8KTransferTimes(t *testing.T) {
	s := sim.New(1)
	eth := New(s, hw.Ethernet())
	d, _, _ := eth.wireTime(8192)
	// 10 Mb/s Ethernet: an 8K datagram should take roughly 6-9 ms.
	if d < 5*sim.Millisecond || d > 10*sim.Millisecond {
		t.Fatalf("Ethernet 8K wire time = %v", d)
	}
	fddi := New(s, hw.FDDI())
	df, _, _ := fddi.wireTime(8192)
	// 100 Mb/s FDDI: well under a millisecond.
	if df > 1200*sim.Microsecond {
		t.Fatalf("FDDI 8K wire time = %v", df)
	}
	if df >= d {
		t.Fatal("FDDI not faster than Ethernet")
	}
}

func TestMediumSerializesSenders(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("a", 0, 0)
	n.Attach("b", 0, 0)
	n.Attach("dst", 0, 0)
	var aDone, bDone sim.Time
	s.Spawn("a", func(p *sim.Proc) {
		n.Send(p, "a", "dst", make([]byte, 8192))
		aDone = p.Now()
	})
	s.Spawn("b", func(p *sim.Proc) {
		n.Send(p, "b", "dst", make([]byte, 8192))
		bDone = p.Now()
	})
	s.Run(0)
	// Second sender must wait for the first to finish the shared medium.
	if bDone < aDone+sim.Time(5*sim.Millisecond) {
		t.Fatalf("senders overlapped: a=%v b=%v", aDone, bDone)
	}
}

func TestSocketBufferOverflowDrops(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.FDDI())
	srv := n.Attach("server", 0, 20000) // tiny socket buffer: fits two 8K
	n.Attach("client", 0, 0)
	s.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			n.Send(p, "client", "server", make([]byte, 8192))
		}
	})
	s.Run(0)
	if srv.Drops() != 3 {
		t.Fatalf("drops = %d, want 3", srv.Drops())
	}
	if srv.Inbox.Len() != 2 {
		t.Fatalf("queued = %d, want 2", srv.Inbox.Len())
	}
}

func TestSendToUnknownEndpoint(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("a", 0, 0)
	ok := true
	s.Spawn("send", func(p *sim.Proc) {
		ok = n.Send(p, "a", "nowhere", []byte("x"))
	})
	s.Run(0)
	if ok {
		t.Fatal("send to unknown endpoint reported success")
	}
	if n.DropsNoDest != 1 {
		t.Fatalf("DropsNoDest = %d", n.DropsNoDest)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("x", 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	n.Attach("x", 0, 0)
}

func TestLatencyOrdering(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.FDDI())
	dst := n.Attach("dst", 0, 0)
	n.Attach("src", 0, 0)
	var order []int
	s.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			d := dst.Inbox.Get(p)
			order = append(order, int(d.Payload[0]))
		}
	})
	s.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Send(p, "src", "dst", []byte{byte(i)})
		}
	})
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("datagrams reordered: %v", order)
		}
	}
}

func TestUtilizationReflectsTraffic(t *testing.T) {
	s := sim.New(1)
	n := New(s, hw.Ethernet())
	n.Attach("a", 0, 0)
	n.Attach("dst", 0, 0)
	s.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			n.Send(p, "a", "dst", make([]byte, 8192))
		}
	})
	s.Run(0)
	if u := n.Utilization(); u < 0.9 {
		t.Fatalf("back-to-back sends yield utilization %v", u)
	}
	if n.SentDatagrams != 10 {
		t.Fatalf("SentDatagrams = %d", n.SentDatagrams)
	}
}
