// Package netsim models a shared-medium LAN (Ethernet or FDDI) carrying
// UDP datagrams between named endpoints: per-fragment serialization on a
// half-duplex medium, fragmentation of 8K NFS datagrams into MTU-sized
// pieces, propagation latency, and bounded receive socket buffers that
// drop on overflow — the behaviour NFS clients' retransmission machinery
// exists to paper over.
package netsim

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/hw"
	"repro/internal/sim"
)

// UDPIPOverhead is the per-datagram header cost added to payloads.
const UDPIPOverhead = 28 // IP (20) + UDP (8)

// PerFragmentHeader is the link+IP framing per fragment.
const PerFragmentHeader = 34

// Datagram is one UDP message in flight or queued at a receiver.
//
// A datagram carries either one contiguous Payload, or — for the
// zero-copy WRITE path — a Payload holding the message head (RPC header
// and argument prefix) plus a refcounted Body buffer carrying the data
// bytes. Body rides by reference: the datagram holds one reference, taken
// at Send and dropped at Release, wherever the datagram dies (consumed,
// socket overflow, crashed destination, detach scrub).
//
// Datagrams are pooled per Network: a consumer that has finished with one
// (the payload may still be referenced — Release only drops the struct's
// references) can hand it back with Release, and the next Send reuses it.
// Consumers that never call Release simply leave collection to the GC —
// except for Body references, which MUST be released.
type Datagram struct {
	From    string
	To      string
	Payload []byte
	// Body is the optional refcounted payload segment; BodyLen is the
	// number of bytes of it on the wire (a multiple of 4, so the XDR
	// padding of the opaque it encodes is complete).
	Body    *block.Buf
	BodyLen int
	// Frags is the number of link-level fragments the datagram needed;
	// receivers charge per-fragment CPU.
	Frags int
	// WireSize is the total bytes that crossed the medium.
	WireSize int
	// Sent is when the datagram finished serializing onto the wire.
	Sent sim.Time
	// Parsed is a memoization slot for receivers that peek at queued
	// datagrams (the server's mbuf hunter).
	Parsed any

	net *Network  // pool owner; nil once released
	dst *Endpoint // delivery target for the in-flight latency event
	// deliver is bound once per pooled record so the per-send latency
	// event needs no fresh closure.
	deliver func()
}

// Size reports the datagram's total UDP payload bytes (head plus body).
func (d *Datagram) Size() int { return len(d.Payload) + d.BodyLen }

// Release returns the datagram record to its network's pool and drops its
// Body reference, if any. The head payload bytes are not recycled — slices
// aliasing them (decoded calls, replies) stay valid. Releasing twice is a
// no-op.
func (d *Datagram) Release() {
	n := d.net
	if n == nil {
		return
	}
	d.net = nil
	d.dst = nil
	d.Payload = nil
	if d.Body != nil {
		d.Body.Release()
		d.Body = nil
	}
	d.BodyLen = 0
	d.Parsed = nil
	d.From, d.To = "", ""
	n.free = append(n.free, d)
}

// Endpoint is a named host attachment with a receive socket buffer.
type Endpoint struct {
	Name string
	// Inbox is the receive socket buffer. For servers it is bounded in
	// bytes (DEC OSF/1 used 0.25 MB); overflow drops datagrams.
	Inbox *sim.Queue[*Datagram]
	// dead marks a detached endpoint (host crashed / interface down);
	// in-flight deliveries to it are dropped like any other lost datagram.
	dead bool
	// linkDown marks a severed attachment (SetLinkDown): the host is alive
	// — queued datagrams stay in the socket buffer — but nothing crosses
	// the interface in either direction until the link comes back.
	linkDown bool
}

// Dead reports whether the endpoint has been detached from its network.
func (e *Endpoint) Dead() bool { return e.dead }

// LinkDown reports whether the endpoint's attachment is severed.
func (e *Endpoint) LinkDown() bool { return e.linkDown }

// Network is one shared-medium LAN segment.
type Network struct {
	sim       *sim.Sim
	p         hw.NetParams
	medium    *sim.Resource
	endpoints map[string]*Endpoint
	// routes maps destination host names that are NOT attached to this
	// segment to the local endpoint of a bridge that is one hop closer to
	// them. A local endpoint always wins over a route.
	routes map[string]*Endpoint
	free   []*Datagram // datagram record pool

	// Counters.
	SentDatagrams uint64
	SentBytes     uint64
	DropsNoDest   uint64
	// DropsLinkDown counts datagrams lost to a severed attachment: sends
	// from a link-down host (the NIC cannot drive the medium) and
	// deliveries arriving at one.
	DropsLinkDown uint64
}

// New builds a network with the given link parameters.
func New(s *sim.Sim, p hw.NetParams) *Network {
	return &Network{
		sim:       s,
		p:         p,
		medium:    sim.NewResource(s, 1),
		endpoints: make(map[string]*Endpoint),
	}
}

// Params returns the link parameters.
func (n *Network) Params() hw.NetParams { return n.p }

// Utilization reports the fraction of time the medium has been busy.
func (n *Network) Utilization() float64 { return n.medium.Utilization() }

// MediumInUse reports whether a sender currently holds the medium
// (diagnostics).
func (n *Network) MediumInUse() int { return n.medium.InUse() }

// MediumBusy reports the cumulative time the medium has been busy
// (probes derive windowed utilization from deltas of this).
func (n *Network) MediumBusy() sim.Duration { return n.medium.BusyTime() }

// AddRoute declares that datagrams addressed to dest — a host name with no
// endpoint on this segment — should be delivered to via, the local
// endpoint of a bridge one hop closer to dest. The original destination
// address is preserved, so the next segment resolves it again; chains of
// routes carry a datagram across a multi-segment fabric. A locally
// attached endpoint always shadows a route with the same name.
func (n *Network) AddRoute(dest string, via *Endpoint) {
	if n.routes == nil {
		n.routes = make(map[string]*Endpoint)
	}
	n.routes[dest] = via
}

// Attach creates an endpoint with a socket buffer bounded to maxBytes of
// payload (0 = unbounded), and at most maxItems datagrams (0 = unbounded).
func (n *Network) Attach(name string, maxItems, maxBytes int) *Endpoint {
	if _, dup := n.endpoints[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate endpoint %q", name))
	}
	ep := &Endpoint{
		Name: name,
		Inbox: sim.NewByteQueue[*Datagram](n.sim, maxItems, maxBytes,
			func(d *Datagram) int { return d.Size() }),
	}
	n.endpoints[name] = ep
	return ep
}

// Detach removes an endpoint from the network, modelling a host crash: the
// socket buffer's queued datagrams are lost, and datagrams still in flight
// toward it are dropped on arrival. The name becomes free for a later
// Attach (the rebooted host's fresh socket buffer). Detaching an unknown
// name is a no-op, so crash injectors may fire at arbitrary times.
func (n *Network) Detach(name string) *Endpoint {
	ep, ok := n.endpoints[name]
	if !ok {
		return nil
	}
	delete(n.endpoints, name)
	ep.dead = true
	for {
		dg, ok := ep.Inbox.TryGet()
		if !ok {
			break
		}
		dg.Release()
	}
	return ep
}

// SetLinkDown severs or restores an endpoint's attachment without
// discarding the host — the link-outage fault primitive, and the stepping
// stone to bridged media (a bridge port going down is exactly this).
// While down, the host cannot transmit (sends are dropped before they
// reach the medium, as a dead NIC cannot drive it) and in-flight
// deliveries to it are lost on arrival; the socket buffer's queued
// datagrams survive, because host memory does. Unknown names are a no-op,
// so outage injectors may race host crashes harmlessly.
func (n *Network) SetLinkDown(name string, down bool) {
	if ep, ok := n.endpoints[name]; ok {
		ep.linkDown = down
	}
}

// FragCount reports how many fragments a payload of n bytes needs.
func (n *Network) FragCount(payload int) int {
	total := payload + UDPIPOverhead
	mtu := n.p.MTU
	frags := (total + mtu - 1) / mtu
	if frags < 1 {
		frags = 1
	}
	return frags
}

// wireTime is the serialization time for a payload on the medium.
func (n *Network) wireTime(payload int) (sim.Duration, int, int) {
	frags := n.FragCount(payload)
	wire := payload + UDPIPOverhead + frags*PerFragmentHeader
	d := sim.Duration(int64(wire)*int64(sim.Second)/(int64(n.p.BandwidthKBps)*1024)) +
		sim.Duration(frags)*n.p.FragOverhead
	return d, frags, wire
}

// Send transmits payload from -> to, blocking p while the datagram
// serializes onto the shared medium (half-duplex: requests and replies
// contend). Delivery into the destination socket buffer happens after the
// propagation latency; a full buffer silently drops the datagram, exactly
// like a UDP socket. It reports whether a destination existed.
func (n *Network) Send(p *sim.Proc, from, to string, payload []byte) bool {
	return n.send(p, from, to, payload, nil, 0)
}

// SendBuf transmits a two-segment message: head (RPC header plus argument
// prefix) followed by bodyLen bytes of the refcounted body buffer. The
// wire behaviour — serialization time, fragmentation, socket-buffer byte
// accounting — is identical to a contiguous Send of the combined bytes;
// only the host-side copies differ. The datagram takes its own reference
// to body for its lifetime; the caller keeps (and eventually releases)
// its own. bodyLen must be a multiple of 4 so the encoded opaque needs no
// trailing padding bytes.
func (n *Network) SendBuf(p *sim.Proc, from, to string, head []byte, body *block.Buf, bodyLen int) bool {
	if bodyLen%4 != 0 {
		panic(fmt.Sprintf("netsim: split body of %d bytes needs XDR padding", bodyLen))
	}
	return n.send(p, from, to, head, body, bodyLen)
}

func (n *Network) send(p *sim.Proc, from, to string, payload []byte, body *block.Buf, bodyLen int) bool {
	if src, ok := n.endpoints[from]; ok && src.linkDown {
		// The sender's attachment is severed: the datagram dies in the
		// driver without ever touching the shared medium.
		n.DropsLinkDown++
		return false
	}
	d, frags, wire := n.wireTime(len(payload) + bodyLen)
	// Use (not Acquire/Release) so a sender killed mid-serialization — a
	// crashing server's nfsd half-way through a reply — frees the shared
	// medium as it unwinds.
	n.medium.Use(p, d)
	n.SentDatagrams++
	n.SentBytes += uint64(wire)
	dst, ok := n.endpoints[to]
	if !ok {
		// Off-segment destination: hand the datagram to the bridge one hop
		// closer, keeping the original addressing.
		if via, routed := n.routes[to]; routed && !via.dead {
			dst = via
		} else {
			n.DropsNoDest++
			return false
		}
	}
	dg := n.getDatagram()
	dg.From, dg.To, dg.Payload = from, to, payload
	if body != nil {
		dg.Body, dg.BodyLen = body.Ref(), bodyLen
	}
	dg.Frags, dg.WireSize, dg.Sent = frags, wire, n.sim.Now()
	dg.dst = dst
	n.sim.At(n.p.Latency, dg.deliver)
	return true
}

// getDatagram takes a record from the pool, or builds one with its
// delivery closure bound.
func (n *Network) getDatagram() *Datagram {
	if k := len(n.free); k > 0 {
		d := n.free[k-1]
		n.free = n.free[:k-1]
		d.net = n
		return d
	}
	d := &Datagram{net: n}
	d.deliver = func() {
		if d.dst.linkDown {
			// The destination's attachment went down while the datagram
			// was in flight: it arrives at a severed interface and is lost.
			d.net.DropsLinkDown++
			d.Release()
			return
		}
		if d.dst.dead || !d.dst.Inbox.Put(d) {
			// Socket buffer overflow — or the destination host crashed
			// while the datagram was in flight: it dies here, exactly as
			// a UDP socket drops it; recycle the record immediately.
			d.Release()
		}
	}
	return d
}

// Drops reports datagrams dropped at an endpoint's socket buffer.
func (e *Endpoint) Drops() uint64 { return e.Inbox.Drops() }
