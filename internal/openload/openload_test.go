package openload

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestArrivalMeetsTargetRate draws a long gap sequence from each process
// and checks the long-run rate lands on the target: the open-loop
// contract is that the offered rate is a property of the arrival clock,
// not of the server.
func TestArrivalMeetsTargetRate(t *testing.T) {
	const rate = 200.0 // ops/s
	const n = 200_000
	for _, kind := range []string{ArrivalFixed, ArrivalPoisson, ArrivalBursty} {
		arr, err := NewArrival(kind, rate, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rng := rand.New(rand.NewSource(1))
		var total sim.Duration
		total += arr.First(rng)
		for i := 1; i < n; i++ {
			total += arr.Gap(rng)
		}
		got := float64(n) / total.Seconds()
		if got < rate*0.97 || got > rate*1.03 {
			t.Errorf("%s: long-run rate = %.1f ops/s, want ~%.0f", kind, got, rate)
		}
	}
}

// TestArrivalDeterministic re-draws the same seed and wants identical
// gap sequences — the determinism the sweep engine's byte-identity
// contract rests on.
func TestArrivalDeterministic(t *testing.T) {
	for _, kind := range []string{ArrivalFixed, ArrivalPoisson, ArrivalBursty} {
		seq := func() []sim.Duration {
			arr, err := NewArrival(kind, 500, 0, 0)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			rng := rand.New(rand.NewSource(42))
			out := []sim.Duration{arr.First(rng)}
			for i := 0; i < 1000; i++ {
				out = append(out, arr.Gap(rng))
			}
			return out
		}
		a, b := seq(), seq()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs: %v vs %v", kind, i, a[i], b[i])
			}
		}
	}
}

func TestArrivalRejectsBadParams(t *testing.T) {
	if _, err := NewArrival(ArrivalPoisson, 0, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewArrival("fractal", 100, 0, 0); err == nil {
		t.Error("unknown arrival kind accepted")
	}
}

// TestZipfSkewsHot checks the Zipf population concentrates picks on the
// low ranks while the flat population does not: the hot-set behavior the
// cache-effect scenarios rely on.
func TestZipfSkewsHot(t *testing.T) {
	const files = 100
	const draws = 100_000
	hotShare := func(kind string, s float64) float64 {
		pop, err := NewPopulation(files, 1, kind, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		hot := 0
		for i := 0; i < draws; i++ {
			if pop.Pick(rng) < files/10 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	flat := hotShare(PopFlat, 0)
	zipf := hotShare(PopZipf, 1.1)
	if flat < 0.08 || flat > 0.12 {
		t.Errorf("flat population hot-decile share = %.3f, want ~0.10", flat)
	}
	if zipf < 0.5 {
		t.Errorf("zipf(1.1) hot-decile share = %.3f, want > 0.5", zipf)
	}
}

func TestPopulationRejectsUnknownKind(t *testing.T) {
	if _, err := NewPopulation(10, 1, "normal", 0, nil); err == nil {
		t.Error("unknown population kind accepted")
	}
}
