// Package openload is the open-loop load-generation subsystem: arrival
// processes emit operations at a target offered rate regardless of
// completions, so a server can be driven past saturation and the
// overload regime measured honestly — queue growth, shed and expired
// arrivals, timeout-driven retransmission storms — instead of the
// closed-loop generators' silent self-throttling.
//
// Three pieces compose a generator:
//
//   - an Arrival process (fixed-rate, Poisson, or bursty on/off
//     MMPP-style), seed-driven and deterministic;
//   - a Population — the per-cell file set, built once and shared by
//     every client, with flat or Zipf-skewed target selection;
//   - an admission path: each arrival claims a slot from a bounded
//     client.IssueWindow without blocking; when the window is full the
//     arrival waits in a bounded backlog queue, and when the backlog is
//     full it is shed. Dequeued arrivals older than a deadline expire
//     unissued. Latency is measured from the arrival instant, so queue
//     wait is part of every reported percentile.
//
// A captured op timeline (trace.OpTrace) replays through the same
// admission path at recorded or speed-scaled instants.
package openload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/client"
	"repro/internal/nfsproto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Arrival kinds (the spec-level vocabulary).
const (
	ArrivalFixed   = "fixed"
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// Arrival generates deterministic inter-arrival gaps.
type Arrival interface {
	// First returns the wait before the first arrival (fixed-rate
	// processes use a seeded uniform phase so sub-1-op populations of
	// many clients still offer the aggregate rate).
	First(rng *rand.Rand) sim.Duration
	// Gap returns the wait between consecutive arrivals.
	Gap(rng *rand.Rand) sim.Duration
}

type fixedArrival struct{ gap float64 }

func (a fixedArrival) First(rng *rand.Rand) sim.Duration { return sim.Duration(rng.Float64() * a.gap) }
func (a fixedArrival) Gap(*rand.Rand) sim.Duration       { return sim.Duration(a.gap) }

type poissonArrival struct{ mean float64 }

func (a poissonArrival) First(rng *rand.Rand) sim.Duration { return a.Gap(rng) }
func (a poissonArrival) Gap(rng *rand.Rand) sim.Duration {
	return sim.Duration(rng.ExpFloat64() * a.mean)
}

// burstyArrival is an on/off MMPP-style process: exponential on and off
// dwell times; while "on", arrivals are Poisson at a hot rate scaled so
// the long-run average still meets the target.
type burstyArrival struct {
	hotMean float64 // mean inter-arrival gap while on, ns
	onMean  float64 // mean on dwell, ns
	offMean float64 // mean off dwell, ns
	onLeft  float64 // remaining budget of the current on period, ns
}

func (a *burstyArrival) First(rng *rand.Rand) sim.Duration { return a.Gap(rng) }

func (a *burstyArrival) Gap(rng *rand.Rand) sim.Duration {
	pause := 0.0
	for {
		if a.onLeft <= 0 {
			pause += rng.ExpFloat64() * a.offMean
			a.onLeft = rng.ExpFloat64() * a.onMean
		}
		g := rng.ExpFloat64() * a.hotMean
		if g <= a.onLeft {
			a.onLeft -= g
			return sim.Duration(pause + g)
		}
		pause += a.onLeft
		a.onLeft = 0
	}
}

// NewArrival builds the named process for a per-client rate in ops/s.
// burstOn/burstOff parameterize "bursty" (mean dwell times).
func NewArrival(kind string, rate float64, burstOn, burstOff sim.Duration) (Arrival, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("openload: arrival rate must be > 0, got %g", rate)
	}
	gap := float64(sim.Second) / rate
	switch kind {
	case ArrivalFixed, "":
		return fixedArrival{gap: gap}, nil
	case ArrivalPoisson:
		return poissonArrival{mean: gap}, nil
	case ArrivalBursty:
		on, off := float64(burstOn), float64(burstOff)
		if on <= 0 {
			on = 200 * float64(sim.Millisecond)
		}
		if off <= 0 {
			off = 200 * float64(sim.Millisecond)
		}
		// Hot-rate scaling: arrivals only flow for on/(on+off) of the
		// time, so the on-period rate is raised to keep the average.
		return &burstyArrival{hotMean: gap * on / (on + off), onMean: on, offMean: off}, nil
	default:
		return nil, fmt.Errorf("openload: unknown arrival kind %q", kind)
	}
}

// Population kinds.
const (
	PopFlat = "flat"
	PopZipf = "zipf"
)

// Population is the shared per-cell file set: built once (by one
// client) and used by every generator, with a pick distribution over
// the files. Names and placement are deterministic, so every cell with
// the same spec sees the same population.
type Population struct {
	Names  []string
	Files  []nfsproto.FH
	Roots  []nfsproto.FH // shard roots; placement by client.ShardIndex
	Blocks int           // file size in 8K blocks
	cdf    []float64     // cumulative pick weights; nil = flat
	built  bool
}

// NewPopulation describes a population of n files of blocks 8K blocks
// each, skewed by kind ("flat" or "zipf" with exponent s; s <= 0 means
// 1.1). Build must run before any Pick target is used.
func NewPopulation(n, blocks int, kind string, s float64, roots []nfsproto.FH) (*Population, error) {
	if n <= 0 {
		n = 64
	}
	if blocks <= 0 {
		blocks = 4
	}
	p := &Population{
		Names:  make([]string, n),
		Files:  make([]nfsproto.FH, n),
		Roots:  roots,
		Blocks: blocks,
	}
	for i := range p.Names {
		p.Names[i] = fmt.Sprintf("ol-%d", i)
	}
	switch kind {
	case PopFlat, "":
	case PopZipf:
		if s <= 0 {
			s = 1.1
		}
		p.cdf = make([]float64, n)
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += 1 / math.Pow(float64(i+1), s)
			p.cdf[i] = acc
		}
		for i := range p.cdf {
			p.cdf[i] /= acc
		}
	default:
		return nil, fmt.Errorf("openload: unknown population kind %q", kind)
	}
	return p, nil
}

// rootFor places name on its shard root (the cluster-wide placement
// function, shared with the closed-loop working sets).
func (p *Population) rootFor(name string) nfsproto.FH {
	if len(p.Roots) == 1 {
		return p.Roots[0]
	}
	return p.Roots[client.ShardIndex(name, len(p.Roots))]
}

// Build creates and fills the file set through cli (unmeasured; run it
// once per cell before the generators start).
func (p *Population) Build(q *sim.Proc, cli *client.Client) error {
	for i, name := range p.Names {
		cres, err := cli.Create(q, p.rootFor(name), name, 0644)
		if err != nil || cres.Status != nfsproto.OK {
			return fmt.Errorf("openload: create %s: %v %v", name, err, cres)
		}
		fh := cres.File // copy: cres is client scratch, dead at the next RPC
		for b := 0; b < p.Blocks; b++ {
			buf := cli.GetWriteBuf()
			client.FillPattern(buf.Data(), uint32(b*nfsproto.MaxData))
			if err := cli.WriteSyncBufRelease(q, fh, uint32(b*nfsproto.MaxData), buf, nfsproto.MaxData); err != nil {
				return fmt.Errorf("openload: fill %s: %w", name, err)
			}
		}
		p.Files[i] = fh
	}
	p.built = true
	return nil
}

// Pick selects a file index per the distribution.
func (p *Population) Pick(rng *rand.Rand) int {
	if p.cdf == nil {
		return rng.Intn(len(p.Files))
	}
	u := rng.Float64()
	return sort.SearchFloat64s(p.cdf, u)
}

// Config parameterizes one client's open-loop generator.
type Config struct {
	// Arrival is the process kind; Rate the per-client offered ops/s.
	Arrival string
	Rate    float64
	// BurstOn/BurstOff are the bursty process's mean dwell times.
	BurstOn  sim.Duration
	BurstOff sim.Duration
	// Mix is the op mix (zero value means the LADDIS mix).
	Mix workload.Mix
	// Window is the admission window (max ops in flight; default 8).
	Window int
	// QueueCap bounds the backlog (default 4x Window).
	QueueCap int
	// Deadline expires backlogged arrivals at dequeue (0 = never).
	Deadline sim.Duration
	// Measure bounds the arrival phase.
	Measure sim.Duration
	// Seed drives this generator's op/file/gap draws.
	Seed int64
	// Replay substitutes a captured timeline for the synthetic process;
	// Speed scales its clock (0 means 1x). Arrival/Rate/Mix are ignored.
	Replay      *trace.OpTrace
	ReplaySpeed float64
}

// Result is one generator's honest accounting of an open-loop run.
type Result struct {
	// Offered counts arrivals emitted (admitted, backlogged or shed).
	Offered uint64
	// Completed counts operations actually issued and finished
	// (successfully or with an RPC error).
	Completed uint64
	// Errors counts completed operations that returned an error.
	Errors int
	// Shed counts arrivals dropped because the backlog was full.
	Shed uint64
	// Expired counts backlogged arrivals dequeued past the deadline and
	// never issued.
	Expired uint64
	// PeakQueue is the backlog high-water mark; PeakInFlight the
	// admission window's.
	PeakQueue    int
	PeakInFlight int
	// Lat streams arrival-to-completion latency (queue wait + service)
	// for successful ops into constant memory (mean/max/percentiles).
	Lat   stats.Latency
	PerOp map[string]int
}

// task is one admitted arrival.
type task struct {
	at   sim.Time
	op   workload.Op
	file int
	off  uint32
}

// Gen is one client's open-loop generator.
type Gen struct {
	cfg     Config
	cli     *client.Client
	pop     *Population
	win     *client.IssueWindow
	backlog *sim.Queue[task]
	rng     *rand.Rand
	res     Result

	scratch nfsproto.FH
	seq     int
	end     sim.Time
	active  int
	done    sim.Cond
}

// NewGen builds a generator bound to one client over the shared
// population.
func NewGen(cli *client.Client, pop *Population, cfg Config) *Gen {
	if cfg.Mix == (workload.Mix{}) {
		cfg.Mix = workload.LADDISMix()
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Window
	}
	return &Gen{cfg: cfg, cli: cli, pop: pop, res: Result{PerOp: make(map[string]int)}}
}

// Setup creates the generator's private scratch directory (create and
// remove ops need a namespace that does not collide across clients).
// The shared population must already be built.
func (g *Gen) Setup(p *sim.Proc) error {
	sname := "olscratch-" + g.cli.Name()
	mres, err := g.cli.Mkdir(p, g.pop.rootFor(sname), sname, 0755)
	if err != nil || mres.Status != nfsproto.OK {
		return fmt.Errorf("openload: scratch mkdir: %v %v", err, mres)
	}
	g.scratch = mres.File
	return nil
}

// Run emits arrivals until Measure elapses (or the replay timeline
// ends), waits for in-flight and backlogged work to drain, and returns
// the accounting. The caller's process blocks for the duration.
func (g *Gen) Run(p *sim.Proc) (Result, error) {
	s := p.Sim()
	g.rng = rand.New(rand.NewSource(g.cfg.Seed))
	g.win = client.NewIssueWindow(g.cfg.Window)
	g.backlog = sim.NewQueue[task](s, g.cfg.QueueCap)
	g.done.Init(s)
	start := s.Now()
	g.end = start.Add(g.cfg.Measure)

	if g.cfg.Replay != nil {
		g.replayArrivals(p, start)
	} else {
		arr, err := NewArrival(g.cfg.Arrival, g.cfg.Rate, g.cfg.BurstOn, g.cfg.BurstOff)
		if err != nil {
			return Result{}, err
		}
		g.syntheticArrivals(p, arr)
	}
	// Drain: every backlogged arrival is either executed or expired by
	// the op processes before they release their window slots.
	for g.active > 0 {
		g.done.Wait(p)
	}
	g.res.PeakQueue = g.backlog.PeakLen()
	g.res.PeakInFlight = g.win.Peak()
	return g.res, nil
}

// InFlight reports operations currently holding admission slots (the
// observability plane's probe; zero before Run starts).
func (g *Gen) InFlight() int {
	if g.win == nil {
		return 0
	}
	return g.win.InFlight()
}

// QueueLen reports the current backlog depth (zero before Run starts).
func (g *Gen) QueueLen() int {
	if g.backlog == nil {
		return 0
	}
	return g.backlog.Len()
}

// Counters reports (offered, shed) so far, for probes.
func (g *Gen) Counters() (offered, shed uint64) { return g.res.Offered, g.res.Shed }

// syntheticArrivals emits mix-driven arrivals on the arrival process's
// clock until the measure window closes.
func (g *Gen) syntheticArrivals(p *sim.Proc, arr Arrival) {
	for gap := arr.First(g.rng); ; gap = arr.Gap(g.rng) {
		now := p.Now()
		if now.Add(gap) >= g.end {
			// The next arrival falls past the window; advance to the
			// boundary so the cell's quiesce stays tight.
			if left := g.end.Sub(now); left > 0 {
				p.Sleep(left)
			}
			return
		}
		if gap > 0 {
			p.Sleep(gap)
		}
		g.admit(p, g.nextTask(p.Now()))
	}
}

// replayArrivals re-emits a captured timeline at recorded (or
// speed-scaled) instants through the same admission path.
func (g *Gen) replayArrivals(p *sim.Proc, start sim.Time) {
	speed := g.cfg.ReplaySpeed
	if speed <= 0 {
		speed = 1
	}
	for _, rec := range g.cfg.Replay.Ops {
		at := start.Add(sim.Duration(float64(rec.At) / speed))
		if g.cfg.Measure > 0 && at >= g.end {
			return
		}
		if wait := at.Sub(p.Now()); wait > 0 {
			p.Sleep(wait)
		}
		op, ok := workload.OpByName(rec.Op)
		if !ok {
			op = workload.OpGetattr // unknown names degrade to the cheapest attr op
		}
		g.admit(p, task{at: p.Now(), op: op, file: rec.File % len(g.pop.Files), off: rec.Off})
	}
}

// nextTask draws one synthetic arrival: op from the mix, file from the
// population, offset within the file.
func (g *Gen) nextTask(now sim.Time) task {
	r := g.rng.Intn(1 << 20)
	acc, op := 0, workload.OpLookup
	for i, pct := 0, r%100; i < workload.Ops(); i++ {
		acc += g.cfg.Mix[i]
		if pct < acc {
			op = workload.Op(i)
			break
		}
	}
	return task{
		at:   now,
		op:   op,
		file: g.pop.Pick(g.rng),
		off:  uint32((r/100)%g.pop.Blocks) * nfsproto.MaxData,
	}
}

// admit is the open-loop admission decision at one arrival instant:
// claim a window slot without blocking, else backlog, else shed. It
// never delays the arrival clock.
func (g *Gen) admit(p *sim.Proc, t task) {
	g.res.Offered++
	if g.win.TryAcquire() {
		g.dispatch(p.Sim(), t)
	} else if !g.backlog.Put(t) {
		g.res.Shed++
	}
}

// dispatch runs one admitted task on its own process; after completing
// it the process keeps its window slot and chains through the backlog
// until the backlog is empty, then releases.
func (g *Gen) dispatch(s *sim.Sim, t task) {
	g.active++
	s.Spawn("openload-"+g.cli.Name(), func(q *sim.Proc) {
		for {
			g.exec(q, t)
			nt, ok := g.nextLive(q)
			if !ok {
				break
			}
			t = nt
		}
		g.win.Release()
		g.active--
		if g.active == 0 {
			g.done.Broadcast()
		}
	})
}

// nextLive pulls backlogged arrivals, expiring the stale ones.
func (g *Gen) nextLive(q *sim.Proc) (task, bool) {
	for {
		t, ok := g.backlog.TryGet()
		if !ok {
			return task{}, false
		}
		if g.cfg.Deadline > 0 && q.Now().Sub(t.at) > g.cfg.Deadline {
			g.res.Expired++
			continue
		}
		return t, true
	}
}

// exec performs one operation and records arrival-to-completion latency.
func (g *Gen) exec(q *sim.Proc, t task) {
	fh := g.pop.Files[t.file]
	var err error
	switch t.op {
	case workload.OpLookup:
		name := g.pop.Names[t.file]
		_, err = g.cli.Lookup(q, g.pop.rootFor(name), name)
	case workload.OpRead:
		_, err = g.cli.Read(q, fh, t.off, nfsproto.MaxData)
	case workload.OpWrite:
		buf := g.cli.GetWriteBuf()
		client.FillPattern(buf.Data(), t.off)
		err = g.cli.WriteSyncBufRelease(q, fh, t.off, buf, nfsproto.MaxData)
	case workload.OpGetattr:
		_, err = g.cli.Getattr(q, fh)
	case workload.OpReaddir:
		_, err = g.cli.Readdir(q, g.pop.Roots[t.file%len(g.pop.Roots)], 0, 512)
	case workload.OpCreate:
		g.seq++
		var cres *nfsproto.DirOpRes
		name := fmt.Sprintf("o%d", g.seq)
		cres, err = g.cli.Create(q, g.scratch, name, 0644)
		if err == nil && cres.Status == nfsproto.OK {
			// Keep the scratch directory bounded: remove as we go.
			g.cli.Remove(q, g.scratch, name)
		}
	case workload.OpRemove:
		// Remove of a nonexistent name exercises the path cheaply.
		_, err = g.cli.Remove(q, g.scratch, "absent")
	case workload.OpStatfs:
		_, err = g.cli.Call(q, nfsproto.ProcStatfs, (&nfsproto.FHArgs{File: g.pop.Roots[0]}).Encode())
	case workload.OpSetattr:
		_, err = g.cli.Setattr(q, fh, nfsproto.DefaultSAttr(0644))
	}
	g.res.Completed++
	g.res.PerOp[t.op.String()]++
	if err != nil {
		g.res.Errors++
		return
	}
	g.res.Lat.Record(q.Now().Sub(t.at))
}
