package vfs

import "testing"

func TestIOFlagsDistinct(t *testing.T) {
	flags := []IOFlags{IOSync, IODataOnly, IODelayData}
	for i, a := range flags {
		for j, b := range flags {
			if i != j && a&b != 0 {
				t.Fatalf("flags %d and %d overlap", i, j)
			}
		}
	}
	combined := IOSync | IODataOnly
	if combined&IOSync == 0 || combined&IODataOnly == 0 {
		t.Fatal("flag combination broken")
	}
}

func TestFsyncFlagsDistinct(t *testing.T) {
	if FWrite&FWriteMetadata != 0 {
		t.Fatal("fsync flags overlap")
	}
}

func TestErrorsDistinct(t *testing.T) {
	errs := []error{ErrNoEnt, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrNoSpace, ErrStale, ErrFBig}
	seen := map[string]bool{}
	for _, e := range errs {
		if e == nil || e.Error() == "" {
			t.Fatal("empty error")
		}
		if seen[e.Error()] {
			t.Fatalf("duplicate error text %q", e.Error())
		}
		seen[e.Error()] = true
	}
}

func TestSetAttrZeroValueLeavesEverything(t *testing.T) {
	var sa SetAttr
	if sa.Mode != nil || sa.UID != nil || sa.GID != nil || sa.Size != nil {
		t.Fatal("zero SetAttr must mean no changes")
	}
}
