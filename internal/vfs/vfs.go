// Package vfs defines the filesystem interface the NFS server layer calls
// through, including the hint flags the paper added to the VFS (GFS on
// ULTRIX) layer so the server could steer the filesystem's write policy
// (§6.4): IO_DATAONLY, IO_DELAYDATA, FWRITE_METADATA, and the new
// VOP_SYNCDATA entry point with byte-range hints.
package vfs

import (
	"errors"

	"repro/internal/block"
	"repro/internal/sim"
)

// Ino is an inode number.
type Ino uint64

// IOFlags modify VOP_WRITE behaviour.
type IOFlags uint32

// Write flags. IOSync is classic synchronous write-through. The paper's
// additions: IODataOnly delivers data to the (accelerated) device now but
// delays metadata; IODelayData leaves even the data dirty in the buffer
// cache so UFS can pick its own clustering policy.
const (
	IOSync IOFlags = 1 << iota
	IODataOnly
	IODelayData
)

// FsyncFlags modify VOP_FSYNC behaviour.
type FsyncFlags uint32

// Fsync flags. FWrite is the classic full flush; FWriteMetadata restricts
// the flush to the inode and indirect blocks.
const (
	FWrite FsyncFlags = 1 << iota
	FWriteMetadata
)

// FileType mirrors the NFS file types the filesystem can hold.
type FileType uint32

// File types.
const (
	TypeReg FileType = 1
	TypeDir FileType = 2
)

// Attr is the attribute set the server layer needs.
type Attr struct {
	Type   FileType
	Mode   uint32
	NLink  uint32
	UID    uint32
	GID    uint32
	Size   uint32
	Blocks uint32
	Gen    uint32
	ATime  sim.Time
	MTime  sim.Time
	CTime  sim.Time
}

// SetAttr carries the fields of a SETATTR; nil pointers mean "leave".
type SetAttr struct {
	Mode *uint32
	UID  *uint32
	GID  *uint32
	Size *uint32
}

// DirEntry is one directory entry.
type DirEntry struct {
	Ino    Ino
	Name   string
	Cookie uint32
}

// Errors returned by filesystem implementations.
var (
	ErrNoEnt    = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrNoSpace  = errors.New("vfs: no space on device")
	ErrStale    = errors.New("vfs: stale file reference")
	ErrFBig     = errors.New("vfs: file too large")
	// ErrIO reports a device-level I/O failure (media error, failed
	// controller); the NFS layer maps it to NFS3ERR_IO-style status.
	ErrIO = errors.New("vfs: I/O error")
)

// FileSystem is the interface between the NFS server layer and the local
// filesystem. All methods that touch the device take the calling process
// so device service time can be charged to it.
type FileSystem interface {
	// Root returns the root directory inode.
	Root() Ino
	// FSID identifies the filesystem in file handles.
	FSID() uint32

	// Lookup resolves name within directory dir.
	Lookup(p *sim.Proc, dir Ino, name string) (Ino, error)
	// Create makes a regular file; it is fully synchronous (data for the
	// directory plus both inodes are durable when it returns), as NFS
	// requires.
	Create(p *sim.Proc, dir Ino, name string, mode uint32) (Ino, error)
	// Mkdir makes a directory, fully synchronously.
	Mkdir(p *sim.Proc, dir Ino, name string, mode uint32) (Ino, error)
	// Remove unlinks a regular file, fully synchronously.
	Remove(p *sim.Proc, dir Ino, name string) error
	// Rmdir removes an empty directory.
	Rmdir(p *sim.Proc, dir Ino, name string) error
	// Rename moves an entry, fully synchronously.
	Rename(p *sim.Proc, fromDir Ino, fromName string, toDir Ino, toName string) error
	// Readdir lists entries starting after cookie, up to count bytes of
	// names.
	Readdir(p *sim.Proc, dir Ino, cookie uint32, count int) ([]DirEntry, bool, error)

	// GetAttr returns attributes.
	GetAttr(p *sim.Proc, ino Ino) (Attr, error)
	// SetAttrs applies attribute changes synchronously.
	SetAttrs(p *sim.Proc, ino Ino, sa SetAttr) (Attr, error)

	// Read fills buf from the file at off; short reads at EOF.
	Read(p *sim.Proc, ino Ino, off uint32, buf []byte) (int, error)
	// Write is VOP_WRITE with the paper's flag extensions.
	Write(p *sim.Proc, ino Ino, off uint32, data []byte, flags IOFlags) error
	// SyncData is VOP_SYNCDATA: flush dirty data blocks overlapping
	// [from,to) to the device, clustering adjacent blocks.
	SyncData(p *sim.Proc, ino Ino, from, to uint32) error
	// Fsync is VOP_FSYNC. With FWriteMetadata only the inode and indirect
	// blocks are flushed; with FWrite alone everything dirty is.
	Fsync(p *sim.Proc, ino Ino, flags FsyncFlags) error

	// Statfs reports capacity.
	Statfs(p *sim.Proc) (blockSize int, blocks, free int64)
}

// BlockWriter is the optional zero-copy write entry point: a filesystem
// that implements it can land a refcounted payload buffer directly in its
// cache (adopting the buffer for aligned full-block writes) instead of
// memmoving the bytes out of the wire. The server write layer probes for
// it once and falls back to Write otherwise. The caller keeps its own
// reference to b; the filesystem takes another if it retains the buffer.
type BlockWriter interface {
	WriteBuf(p *sim.Proc, ino Ino, off uint32, b *block.Buf, n int, flags IOFlags) error
}
